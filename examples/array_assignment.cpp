// SPMD array assignment: executes A(l:u:s) = 100.0 on a simulated
// distributed-memory machine using each of the four Figure-8 node-code
// shapes, and verifies all of them against sequential semantics.
//
//   ./build/examples/array_assignment [n p k l u s]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "cyclick/codegen/node_loop.hpp"
#include "cyclick/runtime/distributed_array.hpp"
#include "cyclick/runtime/section_ops.hpp"

int main(int argc, char** argv) {
  using namespace cyclick;

  i64 n = 320, p = 4, k = 8, l = 4, u = 300, s = 9;
  if (argc == 7) {
    n = std::atoll(argv[1]);
    p = std::atoll(argv[2]);
    k = std::atoll(argv[3]);
    l = std::atoll(argv[4]);
    u = std::atoll(argv[5]);
    s = std::atoll(argv[6]);
  } else if (argc != 1) {
    std::cerr << "usage: " << argv[0] << " [n p k l u s]\n";
    return 1;
  }

  const BlockCyclic dist(p, k);
  const RegularSection sec{l, u, s};
  const SpmdExecutor exec(p);
  std::cout << "A(" << l << ":" << u << ":" << s << ") = 100.0 over " << n
            << " elements, cyclic(" << k << ") on " << p << " processors\n\n";

  // Sequential reference semantics.
  std::vector<double> reference(static_cast<std::size_t>(n), 0.0);
  for (i64 t = 0; t < sec.size(); ++t)
    reference[static_cast<std::size_t>(sec.element(t))] = 100.0;

  const CodeShape shapes[] = {CodeShape::kModCycle, CodeShape::kConditionalReset,
                              CodeShape::kCycleFor, CodeShape::kOffsetIndexed};
  for (const CodeShape shape : shapes) {
    DistributedArray<double> arr(dist, n);
    i64 accesses = 0;
    exec.run([&](i64 m) {
      accesses += run_section_node_code(shape, dist, sec, m, arr.local(m),
                                        [](double& x) { x = 100.0; });
    });
    const bool ok = arr.gather() == reference;
    std::cout << "  " << code_shape_name(shape) << ": " << accesses << " assignments, "
              << (ok ? "verified" : "MISMATCH") << "\n";
    if (!ok) return 1;
  }

  // Per-processor share report.
  std::cout << "\nPer-processor access counts:\n";
  for (i64 m = 0; m < p; ++m) {
    i64 count = 0;
    for_each_local_access(dist, sec, m, [&](i64, i64) { ++count; });
    std::cout << "  processor " << m << ": " << count << " elements\n";
  }
  return 0;
}
