// Quickstart: compute a processor's memory access sequence for a strided
// section of a cyclic(k)-distributed array — the paper's running example
// (p = 4, cyclic(8), section A(4:u:9), processor 1).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [p k l s m]
#include <cstdlib>
#include <iostream>

#include "cyclick/core/iterator.hpp"
#include "cyclick/core/lattice_addresser.hpp"
#include "cyclick/hpf/layout_render.hpp"
#include "cyclick/lattice/lattice.hpp"

int main(int argc, char** argv) {
  using namespace cyclick;

  // Defaults reproduce Figure 6 of the paper.
  i64 p = 4, k = 8, l = 4, s = 9, m = 1;
  if (argc == 6) {
    p = std::atoll(argv[1]);
    k = std::atoll(argv[2]);
    l = std::atoll(argv[3]);
    s = std::atoll(argv[4]);
    m = std::atoll(argv[5]);
  } else if (argc != 1) {
    std::cerr << "usage: " << argv[0] << " [p k l s m]\n";
    return 1;
  }

  const BlockCyclic dist(p, k);
  std::cout << "Distribution: cyclic(" << k << ") over " << p << " processors (row length "
            << dist.row_length() << ")\n"
            << "Section: lower bound " << l << ", stride " << s << "; processor " << m
            << "\n\n";

  // The lattice basis (independent of l and m): the two vectors from which
  // Theorem 3 generates every local memory gap.
  if (const auto basis = select_rl_basis(p, k, s)) {
    std::cout << "Basis vectors (Section 4):\n"
              << "  R = (" << basis->r.v.b << ", " << basis->r.v.a << ")  index "
              << basis->r.index << "  memory gap " << basis->gap_r(k) << "\n"
              << "  L = (" << basis->l.v.b << ", " << basis->l.v.a << ")  index "
              << basis->l.index << "  memory gap " << -basis->gap_minus_l(k) << "\n\n";
  } else {
    std::cout << "Degenerate lattice: gcd(s, pk) >= k, at most one access per block.\n\n";
  }

  // The Figure-5 algorithm: start location + AM gap table.
  const AccessPattern pat = compute_access_pattern(dist, l, s, m);
  if (pat.empty()) {
    std::cout << "Processor " << m << " owns no element of this section.\n";
    return 0;
  }
  std::cout << "Start: global index " << pat.start_global << ", local address "
            << pat.start_local << "\n"
            << "AM gap table (period " << pat.length << "): [";
  for (std::size_t i = 0; i < pat.gaps.size(); ++i)
    std::cout << (i ? ", " : "") << pat.gaps[i];
  std::cout << "]\n\n";

  // Table-free enumeration of the first few accesses (Section 6.2).
  std::cout << "First accesses (global -> local):\n";
  LocalAccessIterator it(dist, l, s, m);
  for (int i = 0; i < 9 && !it.done(); ++i, it.advance())
    std::cout << "  A(" << it.global() << ") -> mem[" << it.local() << "]\n";

  // Render the first rows of the layout, Figure-6 style: processor m's
  // section elements bracketed, the lower bound in parentheses.
  const i64 rows = 5 < 1 + (pat.start_global + pat.cycle_advance()) / dist.row_length()
                       ? 5
                       : 1 + (pat.start_global + pat.cycle_advance()) / dist.row_length();
  std::cout << "\nLayout (first " << rows << " rows, '|' separates processor blocks):\n"
            << render_processor_walk(dist, RegularSection{l, l + 1000 * s, s}, m, rows);
  return 0;
}
