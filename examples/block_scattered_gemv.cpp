// Block-scattered dense linear algebra (the Dongarra / van de Geijn /
// Walker motivation cited in the paper's introduction): y = A*x with the
// matrix's columns distributed cyclic(k) — the "block scattered"
// decomposition used by ScaLAPACK-style libraries.
//
// Each rank owns whole columns; the access-sequence machinery enumerates
// each rank's columns for strided panels, so operations on column sections
// (here: a GEMV over an arbitrary column section A(:, jl:ju:js)) need no
// per-column owner tests.
//
//   ./build/examples/block_scattered_gemv [rows cols p k jl ju js]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <random>
#include <vector>

#include "cyclick/codegen/node_loop.hpp"
#include "cyclick/runtime/spmd.hpp"

int main(int argc, char** argv) {
  using namespace cyclick;

  i64 rows = 512, cols = 768, p = 8, k = 16, jl = 3, ju = 760, js = 7;
  if (argc == 8) {
    rows = std::atoll(argv[1]);
    cols = std::atoll(argv[2]);
    p = std::atoll(argv[3]);
    k = std::atoll(argv[4]);
    jl = std::atoll(argv[5]);
    ju = std::atoll(argv[6]);
    js = std::atoll(argv[7]);
  } else if (argc != 1) {
    std::cerr << "usage: " << argv[0] << " [rows cols p k jl ju js]\n";
    return 1;
  }

  const BlockCyclic col_dist(p, k);
  const RegularSection panel{jl, ju, js};
  const SpmdExecutor exec(p);
  std::cout << "y = A(:, " << jl << ":" << ju << ":" << js << ") * x,  A is " << rows << "x"
            << cols << ", columns cyclic(" << k << ") over " << p << " ranks\n";

  // Generate A (column-major global image) and x.
  std::mt19937_64 rng(1995);
  std::vector<double> a(static_cast<std::size_t>(rows * cols));
  for (auto& v : a) v = static_cast<double>(rng() % 100) / 10.0;
  std::vector<double> x(static_cast<std::size_t>(panel.size()));
  for (auto& v : x) v = static_cast<double>(rng() % 100) / 10.0;

  // Scatter columns into per-rank packed storage.
  std::vector<std::vector<double>> local(static_cast<std::size_t>(p));
  for (i64 m = 0; m < p; ++m)
    local[static_cast<std::size_t>(m)].resize(
        static_cast<std::size_t>(col_dist.local_size(m, cols) * rows));
  for (i64 j = 0; j < cols; ++j) {
    const i64 m = col_dist.owner(j);
    const i64 lj = col_dist.local_index(j);
    for (i64 i = 0; i < rows; ++i)
      local[static_cast<std::size_t>(m)][static_cast<std::size_t>(lj * rows + i)] =
          a[static_cast<std::size_t>(j * rows + i)];
  }

  // SPMD GEMV over the column panel: each rank walks its share of the panel
  // with the table-free iterator (t = position within the panel selects the
  // x entry; lj addresses the packed local column).
  std::vector<std::vector<double>> partial(
      static_cast<std::size_t>(p), std::vector<double>(static_cast<std::size_t>(rows), 0.0));
  i64 total_cols_touched = 0;
  exec.run([&](i64 m) {
    auto& mine = partial[static_cast<std::size_t>(m)];
    const auto& cols_m = local[static_cast<std::size_t>(m)];
    total_cols_touched += for_each_local_access(col_dist, panel, m, [&](i64 j, i64) {
      const i64 t = (j - jl) / js;  // panel position
      const i64 lj = col_dist.local_index(j);
      const double xt = x[static_cast<std::size_t>(t)];
      for (i64 i = 0; i < rows; ++i)
        mine[static_cast<std::size_t>(i)] +=
            cols_m[static_cast<std::size_t>(lj * rows + i)] * xt;
    });
  });

  // All-reduce of the partial products.
  std::vector<double> y(static_cast<std::size_t>(rows), 0.0);
  for (i64 m = 0; m < p; ++m)
    for (i64 i = 0; i < rows; ++i)
      y[static_cast<std::size_t>(i)] +=
          partial[static_cast<std::size_t>(m)][static_cast<std::size_t>(i)];

  // Verify against a serial GEMV.
  double max_err = 0.0;
  for (i64 i = 0; i < rows; ++i) {
    double want = 0.0;
    for (i64 t = 0; t < panel.size(); ++t) {
      const i64 j = panel.element(t);
      want += a[static_cast<std::size_t>(j * rows + i)] * x[static_cast<std::size_t>(t)];
    }
    const double err = std::abs(want - y[static_cast<std::size_t>(i)]);
    if (err > max_err) max_err = err;
  }
  // Partial sums associate differently across ranks; allow rounding slack.
  const bool ok = max_err < 1e-9 && total_cols_touched == panel.size();
  std::cout << "panel columns touched: " << total_cols_touched << " (expected "
            << panel.size() << ")\n"
            << "max |serial - SPMD| = " << max_err << "\n"
            << (ok ? "verified" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}
