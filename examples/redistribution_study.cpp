// Communication-structure study: how much data a redistribution
// A[cyclic(k_dst)] <- A[cyclic(k_src)] moves, across block-size pairs —
// the planning question an HPF-2 compiler faces before honoring a
// REDISTRIBUTE directive. Plans are built with the access-sequence
// machinery (Ablation E measures the construction cost; this example
// reports the resulting message structure).
//
//   ./build/examples/redistribution_study [n p]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "cyclick/runtime/section_ops.hpp"

int main(int argc, char** argv) {
  using namespace cyclick;

  i64 n = 4096, p = 8;
  if (argc == 3) {
    n = std::atoll(argv[1]);
    p = std::atoll(argv[2]);
  } else if (argc != 1) {
    std::cerr << "usage: " << argv[0] << " [n p]\n";
    return 1;
  }

  const SpmdExecutor exec(p);
  const RegularSection whole{0, n - 1, 1};
  const i64 ks[] = {1, 4, 16, 64, 256};

  std::cout << "Redistribution of an n=" << n << " array over p=" << p
            << " ranks: fraction of elements that cross rank boundaries\n"
            << "(rows: source cyclic(k); columns: destination cyclic(k))\n\n";

  std::cout << std::setw(10) << "src\\dst";
  for (const i64 kd : ks) std::cout << std::setw(9) << ("k=" + std::to_string(kd));
  std::cout << std::setw(13) << "max msgs" << "\n";

  for (const i64 ksrc : ks) {
    DistributedArray<double> src(BlockCyclic(p, ksrc), n);
    std::cout << std::setw(10) << ("k=" + std::to_string(ksrc));
    i64 max_messages = 0;
    for (const i64 kdst : ks) {
      DistributedArray<double> dst(BlockCyclic(p, kdst), n);
      const CommPlan plan = build_copy_plan(src, whole, dst, whole, exec);
      const double frac =
          static_cast<double>(plan.remote_elements()) / static_cast<double>(n);
      std::cout << std::setw(9) << std::fixed << std::setprecision(3) << frac;
      if (plan.message_count() > max_messages) max_messages = plan.message_count();
    }
    std::cout << std::setw(12) << max_messages << "\n";
  }

  std::cout << "\nDiagonal entries are 0 (identical mappings need no communication);\n"
               "everything else approaches (p-1)/p = "
            << std::fixed << std::setprecision(3)
            << static_cast<double>(p - 1) / static_cast<double>(p)
            << " as the mappings decorrelate.\n";
  return 0;
}
