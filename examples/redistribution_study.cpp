// Communication-structure study: how much data a redistribution
// A[cyclic(k_dst)] <- A[cyclic(k_src)] moves, across block-size pairs —
// the planning question an HPF-2 compiler faces before honoring a
// REDISTRIBUTE directive. Plans are built with the access-sequence
// machinery (Ablation E measures the construction cost; this example
// reports the resulting message structure), then every exchange is
// actually executed through the redistribution layer and verified
// element-for-element — on the in-process executor, over the socket mesh
// (--backend=proc, one OS process per rank, rank 0 prints), or over the
// discrete-event simulated mesh (--backend=sim). Output is byte-identical
// on all three.
//
//   ./build/examples/redistribution_study [--backend=inproc|proc|sim] [n p]
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "backend_harness.hpp"
#include "cyclick/runtime/redistribute.hpp"
#include "cyclick/runtime/section_ops.hpp"

int main(int argc, char** argv) {
  using namespace cyclick;

  examples::BackendHarness harness;
  i64 n = 4096, p = 8;
  std::vector<i64> sizes;
  try {
    harness.init_from_env();
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (harness.parse_flag(arg)) continue;
      sizes.push_back(std::atoll(arg.c_str()));
    }
  } catch (const std::exception& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 2;
  }
  if (sizes.size() == 2) {
    n = sizes[0];
    p = sizes[1];
  } else if (!sizes.empty()) {
    std::cerr << "usage: " << argv[0] << " [--backend=inproc|proc|sim] [n p]\n";
    return 1;
  }

  if (harness.start(p, argc, argv) == examples::BackendHarness::Role::kExit)
    return harness.exit_code();

  const SpmdExecutor exec(p);
  const RegularSection whole{0, n - 1, 1};
  const i64 ks[] = {1, 4, 16, 64, 256};

  std::vector<double> image(static_cast<std::size_t>(n));
  std::iota(image.begin(), image.end(), 1.0);

  std::cout << "Redistribution of an n=" << n << " array over p=" << p
            << " ranks: fraction of elements that cross rank boundaries\n"
            << "(rows: source cyclic(k); columns: destination cyclic(k))\n\n";

  std::cout << std::setw(10) << "src\\dst";
  for (const i64 kd : ks) std::cout << std::setw(9) << ("k=" + std::to_string(kd));
  std::cout << std::setw(13) << "max msgs" << std::setw(11) << "phases" << "\n";

  i64 executed = 0, verified = 0;
  for (const i64 ksrc : ks) {
    DistributedArray<double> src(BlockCyclic(p, ksrc), n);
    src.scatter(image);
    std::cout << std::setw(10) << ("k=" + std::to_string(ksrc));
    i64 max_messages = 0;
    i64 max_phases = 0;
    for (const i64 kdst : ks) {
      DistributedArray<double> dst(BlockCyclic(p, kdst), n);
      const RedistributionPlan plan = build_redistribution_plan(src, whole, dst, whole, exec);
      const double frac =
          static_cast<double>(plan.remote_elements()) / static_cast<double>(n);
      std::cout << std::setw(9) << std::fixed << std::setprecision(3) << frac;
      if (plan.message_count() > max_messages) max_messages = plan.message_count();
      if (plan.phases > max_phases) max_phases = plan.phases;

      // Execute the exchange for real and verify every landed element.
      execute_redistribution(plan, src, dst, exec);
      ++executed;
      if (dst.gather() == image) ++verified;
    }
    std::cout << std::setw(12) << max_messages << std::setw(11) << max_phases << "\n";
  }

  std::cout << "\nDiagonal entries are 0 (identical mappings need no communication);\n"
               "everything else approaches (p-1)/p = "
            << std::fixed << std::setprecision(3)
            << static_cast<double>(p - 1) / static_cast<double>(p)
            << " as the mappings decorrelate.\n"
            << verified << "/" << executed
            << " exchanges executed and verified element-for-element\n";
  return verified == executed ? 0 : 1;
}
