// Mini-HPF compiler demo: parses and executes a small data-parallel program
// with distribute/align directives and strided array assignments, printing
// both the program's own output and the communication structure of one of
// its statements.
//
//   ./build/examples/hpf_compiler_demo [source.hpf]
#include <fstream>
#include <iostream>
#include <sstream>

#include "cyclick/compiler/interp.hpp"
#include "cyclick/runtime/section_ops.hpp"

namespace {

constexpr const char* kDefaultProgram = R"(# 1-D red/black relaxation on a cyclic(8) array
processors P(4)
template T(320)
distribute T onto P cyclic(8)
array A(320) align with T(i)
array B(320) align with T(i)

A(0:319) = 0
A(0:319:2) = 100          # red points hot
B(1:318) = (A(0:317) + A(2:319)) / 2
A(1:318:2) = B(1:318:2)   # relax black points
print A(0:16:1)
print B(150:158:2)

total = sum(A(0:319))
print total

# Dump the paper's Figure-6 access patterns straight from the compiler.
explain A(4:300:9)

# HPF-2 style dynamic remapping (data moves, values preserved).
redistribute A onto P cyclic(3)
check = sum(A(0:319))
print check
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace cyclick;

  std::string source = kDefaultProgram;
  if (argc == 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  } else if (argc != 1) {
    std::cerr << "usage: " << argv[0] << " [source.hpf]\n";
    return 1;
  }

  std::cout << "--- program ---\n" << source << "\n--- output ---\n";
  try {
    dsl::Machine machine;
    machine.run_source(source);
    std::cout << machine.output();
  } catch (const dsl_error& e) {
    std::cerr << "compile/runtime error: " << e.what() << "\n";
    return 1;
  }

  // Show what the statement engine plans for a redistribution: copying a
  // stride-3 section of a cyclic(8) array into a stride-1 section of a
  // cyclic(5) array forces real communication.
  std::cout << "\n--- communication plan demo ---\n";
  const SpmdExecutor exec(4);
  DistributedArray<double> src(BlockCyclic(4, 8), 320);
  DistributedArray<double> dst(BlockCyclic(4, 5), 200);
  const RegularSection ssec{0, 297, 3};
  const RegularSection dsec{0, 99, 1};
  const CommPlan plan = build_copy_plan(src, ssec, dst, dsec, exec);
  std::cout << "dst(0:99:1) = src(0:297:3) across cyclic(8) -> cyclic(5):\n"
            << "  messages: " << plan.message_count() << "\n"
            << "  elements crossing ranks: " << plan.remote_elements() << " of "
            << ssec.size() << "\n";
  for (i64 m = 0; m < 4; ++m) {
    std::cout << "  recv rank " << m << ":";
    for (i64 q = 0; q < 4; ++q)
      std::cout << " " << plan.channel_size(m, q) << (q == m ? "(self)" : "");
    std::cout << "\n";
  }
  return 0;
}
