// Conjugate-gradient solve of A x = b with the matrix block-scattered
// across a processor grid — an iterative-solver workload where the
// distributed GEMV (grid collectives + access-sequence enumeration) runs
// once per iteration while the vector recurrences stay replicated.
//
//   ./build/examples/conjugate_gradient [n rb cb pr pc]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <random>
#include <vector>

#include "cyclick/linalg/blas.hpp"

int main(int argc, char** argv) {
  using namespace cyclick;

  i64 n = 96, rb = 4, cb = 6, pr = 2, pc = 3;
  if (argc == 6) {
    n = std::atoll(argv[1]);
    rb = std::atoll(argv[2]);
    cb = std::atoll(argv[3]);
    pr = std::atoll(argv[4]);
    pc = std::atoll(argv[5]);
  } else if (argc != 1) {
    std::cerr << "usage: " << argv[0] << " [n rb cb pr pc]\n";
    return 1;
  }

  std::cout << "CG on a " << n << "x" << n << " SPD system, cyclic(" << rb << ")x(" << cb
            << ") over a " << pr << "x" << pc << " grid\n";

  // Symmetric diagonally dominant matrix => SPD.
  std::mt19937_64 rng(7);
  std::vector<double> ai(static_cast<std::size_t>(n * n), 0.0);
  for (i64 i = 0; i < n; ++i)
    for (i64 j = 0; j <= i; ++j) {
      const double v = (i == j) ? 0.0 : static_cast<double>(rng() % 10) / 10.0;
      ai[static_cast<std::size_t>(i * n + j)] = v;
      ai[static_cast<std::size_t>(j * n + i)] = v;
    }
  for (i64 i = 0; i < n; ++i) {
    double rowsum = 0.0;
    for (i64 j = 0; j < n; ++j) rowsum += std::abs(ai[static_cast<std::size_t>(i * n + j)]);
    ai[static_cast<std::size_t>(i * n + i)] = rowsum + 1.0;
  }
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < x_true.size(); ++i)
    x_true[i] = std::sin(static_cast<double>(i) * 0.37);

  DistMatrix<double> a(n, n, rb, cb, pr, pc);
  a.from_dense(ai);
  const SpmdExecutor exec(pr * pc, SpmdExecutor::Mode::kThreads);
  InProcessTransport tr(pr * pc);

  const auto b = gemv<double>(a, x_true, exec, tr);

  const auto dot = [&](const std::vector<double>& u, const std::vector<double>& v) {
    double s = 0.0;
    for (std::size_t i = 0; i < u.size(); ++i) s += u[i] * v[i];
    return s;
  };

  // Plain CG with the distributed GEMV as the only matrix operation.
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> r = b;
  std::vector<double> p_dir = r;
  double rr = dot(r, r);
  const double rr0 = rr;
  int iters = 0;
  for (; iters < 2 * static_cast<int>(n); ++iters) {
    if (rr <= 1e-20 * rr0) break;
    const auto ap = gemv<double>(a, p_dir, exec, tr);
    const double alpha = rr / dot(p_dir, ap);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] += alpha * p_dir[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_new = dot(r, r);
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < p_dir.size(); ++i) p_dir[i] = r[i] + beta * p_dir[i];
  }

  double max_err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    max_err = std::max(max_err, std::abs(x[i] - x_true[i]));
  std::cout << "converged in " << iters << " iterations, relative residual "
            << std::sqrt(rr / rr0) << "\n"
            << "max |x - x_true| = " << max_err << "\n"
            << (max_err < 1e-8 ? "verified" : "MISMATCH") << "\n";
  return max_err < 1e-8 ? 0 : 1;
}
