// 2-D heat diffusion (Jacobi) on a block-cyclic distributed grid — the
// multidimensional case the paper reduces to per-dimension applications of
// the 1-D access-sequence algorithm. The interior update
//
//   U(1:n-2, 1:m-2) = (N + S + E + W) / 4
//
// is executed as shifted-region copies into distribution-aligned
// temporaries followed by a local combine, exactly how an HPF compiler
// lowers the stencil; the result is verified against a serial Jacobi.
//
// Runs byte-identically on all three backends: --backend=proc launches one
// OS process per rank and routes every halo copy's remote channels over the
// socket mesh (only rank 0 prints); --backend=sim replays them through the
// discrete-event simulated mesh.
//
//   ./build/examples/heat2d [--backend=inproc|proc|sim] [rows cols iters]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "backend_harness.hpp"
#include "cyclick/runtime/multidim_array.hpp"

int main(int argc, char** argv) {
  using namespace cyclick;

  examples::BackendHarness harness;
  i64 rows = 48, cols = 36, iters = 25;
  std::vector<i64> sizes;
  try {
    harness.init_from_env();
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (harness.parse_flag(arg)) continue;
      sizes.push_back(std::atoll(arg.c_str()));
    }
  } catch (const std::exception& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 2;
  }
  if (sizes.size() == 3) {
    rows = sizes[0];
    cols = sizes[1];
    iters = sizes[2];
  } else if (!sizes.empty()) {
    std::cerr << "usage: " << argv[0] << " [--backend=inproc|proc|sim] [rows cols iters]\n";
    return 1;
  }

  if (harness.start(6, argc, argv) == examples::BackendHarness::Role::kExit)
    return harness.exit_code();

  // 3x2 processor grid, cyclic(4) rows x cyclic(3) columns.
  const auto make_map = [&] {
    std::vector<DimMapping> dims;
    dims.emplace_back(rows, AffineAlignment::identity(), BlockCyclic(3, 4));
    dims.emplace_back(cols, AffineAlignment::identity(), BlockCyclic(2, 3));
    return MultiDimMapping{std::move(dims), ProcessorGrid({3, 2})};
  };
  const SpmdExecutor exec(6);
  MultiDimArray<double> u(make_map());

  std::cout << "2-D heat diffusion, " << rows << "x" << cols << " grid, " << iters
            << " Jacobi iterations, cyclic(4)x(3) over a 3x2 processor grid\n";

  // Hot west edge, cold east edge.
  std::vector<double> init(static_cast<std::size_t>(rows * cols), 0.0);
  for (i64 i = 0; i < rows; ++i) init[static_cast<std::size_t>(i * cols)] = 100.0;
  u.scatter(init);
  std::vector<double> ref = init;

  const Region interior{{1, rows - 2, 1}, {1, cols - 2, 1}};
  const Region north{{0, rows - 3, 1}, {1, cols - 2, 1}};
  const Region south{{2, rows - 1, 1}, {1, cols - 2, 1}};
  const Region west{{1, rows - 2, 1}, {0, cols - 3, 1}};
  const Region east{{1, rows - 2, 1}, {2, cols - 1, 1}};

  MultiDimArray<double> tn(make_map()), ts(make_map()), tw(make_map()), te(make_map());
  for (i64 it = 0; it < iters; ++it) {
    // Communicate the four shifted neighbours into interior-aligned temps.
    copy_region(u, north, tn, interior, exec);
    copy_region(u, south, ts, interior, exec);
    copy_region(u, west, tw, interior, exec);
    copy_region(u, east, te, interior, exec);
    // Local combine.
    exec.run([&](i64 rank) {
      auto out = u.local(rank);
      auto n = tn.local(rank);
      auto s = ts.local(rank);
      auto w = tw.local(rank);
      auto e = te.local(rank);
      for_each_owned_region(u, interior, rank, [&](const std::vector<i64>&, i64 a) {
        const auto i = static_cast<std::size_t>(a);
        out[i] = (n[i] + s[i] + w[i] + e[i]) / 4.0;
      });
    });

    // Serial reference.
    std::vector<double> next = ref;
    for (i64 i = 1; i < rows - 1; ++i)
      for (i64 j = 1; j < cols - 1; ++j)
        next[static_cast<std::size_t>(i * cols + j)] =
            (ref[static_cast<std::size_t>((i - 1) * cols + j)] +
             ref[static_cast<std::size_t>((i + 1) * cols + j)] +
             ref[static_cast<std::size_t>(i * cols + j - 1)] +
             ref[static_cast<std::size_t>(i * cols + j + 1)]) /
            4.0;
    ref = next;
  }

  const auto image = u.gather();
  double max_err = 0.0;
  for (std::size_t i = 0; i < image.size(); ++i)
    max_err = std::max(max_err, std::abs(image[i] - ref[i]));

  const double center = image[static_cast<std::size_t>((rows / 2) * cols + cols / 2)];
  std::cout << "center temperature after " << iters << " iterations: " << center << "\n"
            << "max |SPMD - serial| = " << max_err << "\n"
            << (max_err == 0.0 ? "verified" : "MISMATCH") << "\n";
  return max_err == 0.0 ? 0 : 1;
}
