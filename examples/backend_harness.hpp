// Shared backend plumbing for the example programs.
//
// Every example accepts --backend=inproc|proc|sim (or CYCLICK_BACKEND) and
// must print byte-identical output on all three. This header packages the
// three roles the hpfc driver plays so each example's main() stays a
// straight-line program:
//
//   launcher  --backend=proc without CYCLICK_RANK: re-exec this binary once
//             per rank, wait, and aggregate per-rank failures.
//   rank      CYCLICK_RANK set: join the socket mesh, install the process
//             context so execute_copy_plan routes remote channels over the
//             wire, and mute stdout on every rank but 0 (the replicated
//             machine model means every rank computes the same output).
//   sim       install the discrete-event SimMachine as the transport
//             provider; the example runs unchanged in this process with
//             every remote channel replayed through the simulated mesh.
//
// Usage:
//   examples::BackendHarness harness;
//   harness.init_from_env();
//   for (each arg) if (harness.parse_flag(arg)) continue;  // else your flags
//   if (harness.start(world, argc, argv) == Role::kExit)
//     return harness.exit_code();
//   ... program body; destructor restores stdout and the process context.
#pragma once

#include <iostream>
#include <memory>
#include <streambuf>
#include <string>
#include <vector>

#include "cyclick/net/backend.hpp"
#include "cyclick/net/launcher.hpp"
#include "cyclick/net/socket_transport.hpp"
#include "cyclick/runtime/transport.hpp"
#include "cyclick/sim/sim_machine.hpp"

namespace cyclick::examples {

/// Swallows everything written to it. Non-zero proc ranks redirect
/// std::cout here so the launched run's stdout is rank 0's alone —
/// byte-identical to the single-process backends.
class NullBuf final : public std::streambuf {
 protected:
  int_type overflow(int_type ch) override { return traits_type::not_eof(ch); }
};

class BackendHarness {
 public:
  net::Backend backend = net::Backend::kInProc;

  BackendHarness() = default;
  BackendHarness(const BackendHarness&) = delete;
  BackendHarness& operator=(const BackendHarness&) = delete;

  ~BackendHarness() {
    if (saved_cout_ != nullptr) std::cout.rdbuf(saved_cout_);
    if (context_installed_) process_context() = ProcessContext{};
  }

  /// Seed the backend from CYCLICK_BACKEND; call before parsing flags so
  /// an explicit --backend= wins. Throws on an unknown env value.
  void init_from_env() { backend = net::backend_from_env(backend); }

  /// True when `arg` was a --backend= flag (now consumed).
  bool parse_flag(const std::string& arg) {
    return net::parse_backend_flag(arg, backend);
  }

  enum class Role {
    kExit,  ///< launcher finished (or a role failed): return exit_code()
    kRun,   ///< backend installed; run the program body
  };

  /// Enter the role the environment selects. `world` is the rank count the
  /// example's SpmdExecutor uses — the proc launcher spawns exactly that
  /// many processes so every copy plan's rank count matches the mesh.
  Role start(i64 world, int argc, char** argv) {
    if (backend != net::Backend::kProc) {
      if (backend == net::Backend::kSim) {
        sim_ = std::make_unique<sim::SimMachine>(sim::SimParams::from_env());
        scope_ = std::make_unique<sim::SimMachine::Scope>(*sim_);
      }
      return Role::kRun;
    }

    const auto env_rank = net::rank_from_env();
    if (!env_rank.has_value()) {
      // Launcher role.
      try {
        net::ProcessGroup group(world);
        group.spawn_exec(std::vector<std::string>(argv, argv + argc));
        const std::string failures = net::describe_failures(group.wait_all());
        if (!failures.empty()) {
          std::cerr << argv[0] << ": rank processes failed:\n" << failures;
          exit_code_ = 1;
        }
      } catch (const std::exception& e) {
        std::cerr << argv[0] << ": launcher error: " << e.what() << "\n";
        exit_code_ = 1;
      }
      return Role::kExit;
    }

    // Rank role.
    const i64 env_world = net::world_from_env(world);
    const std::string dir = net::net_dir_from_env();
    if (env_world != world || dir.empty()) {
      std::cerr << argv[0] << ": rank " << *env_rank
                << ": mesh environment mismatch (world " << env_world
                << ", program needs " << world << ")\n";
      exit_code_ = 2;
      return Role::kExit;
    }
    try {
      transport_ = net::SocketTransport::connect_mesh(*env_rank, world, dir);
      process_context() = ProcessContext{*env_rank, world, transport_.get()};
      context_installed_ = true;
    } catch (const std::exception& e) {
      std::cerr << argv[0] << ": rank " << *env_rank << ": " << e.what() << "\n";
      exit_code_ = 1;
      return Role::kExit;
    }
    if (*env_rank != 0) saved_cout_ = std::cout.rdbuf(&null_buf_);
    return Role::kRun;
  }

  [[nodiscard]] int exit_code() const noexcept { return exit_code_; }

 private:
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<sim::SimMachine> sim_;
  std::unique_ptr<sim::SimMachine::Scope> scope_;
  NullBuf null_buf_;
  std::streambuf* saved_cout_ = nullptr;
  bool context_installed_ = false;
  int exit_code_ = 0;
};

}  // namespace cyclick::examples
