// SUMMA-style distributed matrix multiply C = A * B with all three
// matrices in 2-D block-cyclic ("block scattered") distributions — the
// scalable dense linear algebra setting (Dongarra, van de Geijn, Walker)
// that the paper's introduction gives as the motivation for efficient
// cyclic(k) support.
//
// The algorithm sweeps the inner dimension in panels; in each step the
// owners of the current column panel of A and row panel of B broadcast
// them (simulated), and every rank updates its local C block:
//
//   for t in panels:  C_local += A(:, t) * B(t, :)
//
// Rank-local enumeration of the panels' rows/columns uses the per-dimension
// access-sequence machinery. Verified against a serial GEMM.
//
//   ./build/examples/summa_gemm [n kblock panels]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <random>
#include <vector>

#include "cyclick/runtime/multidim_array.hpp"

int main(int argc, char** argv) {
  using namespace cyclick;

  i64 n = 48, kb = 4;
  if (argc >= 3) {
    n = std::atoll(argv[1]);
    kb = std::atoll(argv[2]);
  } else if (argc != 1) {
    std::cerr << "usage: " << argv[0] << " [n kblock]\n";
    return 1;
  }

  // 2x3 processor grid; all matrices n x n, cyclic(kb) in both dims.
  const auto make_map = [&] {
    std::vector<DimMapping> dims;
    dims.emplace_back(n, AffineAlignment::identity(), BlockCyclic(2, kb));
    dims.emplace_back(n, AffineAlignment::identity(), BlockCyclic(3, kb));
    return MultiDimMapping{std::move(dims), ProcessorGrid({2, 3})};
  };
  const SpmdExecutor exec(6);
  MultiDimArray<double> a(make_map()), b(make_map()), c(make_map());

  std::cout << "SUMMA C = A*B, " << n << "x" << n << " matrices, cyclic(" << kb
            << ")x(" << kb << ") over a 2x3 grid\n";

  std::mt19937_64 rng(42);
  std::vector<double> ai(static_cast<std::size_t>(n * n)), bi(ai.size());
  for (auto& v : ai) v = static_cast<double>(rng() % 10);
  for (auto& v : bi) v = static_cast<double>(rng() % 10);
  a.scatter(ai);
  b.scatter(bi);

  // Panel sweep over the inner dimension. For each inner index t, rank r
  // needs A(i, t) for its owned rows i and B(t, j) for its owned columns j.
  // The "broadcast" is simulated by reading through the global addressing
  // (a message-passing build would broadcast the panels along grid rows /
  // columns); the *local* enumeration — which (i, j) cells rank r updates —
  // is driven by the access-sequence iterators via for_each_owned_region.
  const Region whole{{0, n - 1, 1}, {0, n - 1, 1}};
  std::vector<double> apanel(static_cast<std::size_t>(n));
  std::vector<double> bpanel(static_cast<std::size_t>(n));
  for (i64 t = 0; t < n; ++t) {
    for (i64 i = 0; i < n; ++i) {
      apanel[static_cast<std::size_t>(i)] = a.get({i, t});
      bpanel[static_cast<std::size_t>(i)] = b.get({t, i});
    }
    exec.run([&](i64 rank) {
      auto local = c.local(rank);
      for_each_owned_region(c, whole, rank, [&](const std::vector<i64>& idx, i64 addr) {
        local[static_cast<std::size_t>(addr)] +=
            apanel[static_cast<std::size_t>(idx[0])] * bpanel[static_cast<std::size_t>(idx[1])];
      });
    });
  }

  // Verify against serial GEMM.
  const auto ci = c.gather();
  double max_err = 0.0;
  for (i64 i = 0; i < n; ++i)
    for (i64 j = 0; j < n; ++j) {
      double want = 0.0;
      for (i64 t = 0; t < n; ++t)
        want += ai[static_cast<std::size_t>(i * n + t)] * bi[static_cast<std::size_t>(t * n + j)];
      max_err = std::max(max_err, std::abs(want - ci[static_cast<std::size_t>(i * n + j)]));
    }
  std::cout << "max |serial - SUMMA| = " << max_err << "\n"
            << (max_err == 0.0 ? "verified" : "MISMATCH") << "\n";
  return max_err == 0.0 ? 0 : 1;
}
