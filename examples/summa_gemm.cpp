// SUMMA-style distributed matrix multiply C = A * B with all three
// matrices in 2-D block-cyclic ("block scattered") distributions — the
// scalable dense linear algebra setting (Dongarra, van de Geijn, Walker)
// that the paper's introduction gives as the motivation for efficient
// cyclic(k) support.
//
// The algorithm sweeps the inner dimension in panels; in each step the
// owners of the current column panel of A and row panel of B spread them
// across the machine (HPF's SPREAD intrinsic, lowered to a size-1-source
// redistribution plan by spread_region), and every rank updates its local
// C block:
//
//   for t in panels:  C_local += A(:, t) * B(t, :)
//
// The panel movement is real communication through the redistribution
// layer, so the example runs byte-identically on --backend=inproc, proc
// (one OS process per rank, panels crossing the socket mesh, rank 0
// prints), and sim (panels replayed over the simulated mesh). Verified
// against a serial GEMM.
//
//   ./build/examples/summa_gemm [--backend=inproc|proc|sim] [n kblock]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "backend_harness.hpp"
#include "cyclick/runtime/multidim_array.hpp"

int main(int argc, char** argv) {
  using namespace cyclick;

  examples::BackendHarness harness;
  i64 n = 48, kb = 4;
  std::vector<i64> sizes;
  try {
    harness.init_from_env();
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (harness.parse_flag(arg)) continue;
      sizes.push_back(std::atoll(arg.c_str()));
    }
  } catch (const std::exception& e) {
    std::cerr << argv[0] << ": " << e.what() << "\n";
    return 2;
  }
  if (sizes.size() == 2) {
    n = sizes[0];
    kb = sizes[1];
  } else if (!sizes.empty()) {
    std::cerr << "usage: " << argv[0] << " [--backend=inproc|proc|sim] [n kblock]\n";
    return 1;
  }

  if (harness.start(6, argc, argv) == examples::BackendHarness::Role::kExit)
    return harness.exit_code();

  // 2x3 processor grid; all matrices n x n, cyclic(kb) in both dims.
  const auto make_map = [&] {
    std::vector<DimMapping> dims;
    dims.emplace_back(n, AffineAlignment::identity(), BlockCyclic(2, kb));
    dims.emplace_back(n, AffineAlignment::identity(), BlockCyclic(3, kb));
    return MultiDimMapping{std::move(dims), ProcessorGrid({2, 3})};
  };
  const SpmdExecutor exec(6);
  MultiDimArray<double> a(make_map()), b(make_map()), c(make_map());

  std::cout << "SUMMA C = A*B, " << n << "x" << n << " matrices, cyclic(" << kb
            << ")x(" << kb << ") over a 2x3 grid\n";

  std::mt19937_64 rng(42);
  std::vector<double> ai(static_cast<std::size_t>(n * n)), bi(ai.size());
  for (auto& v : ai) v = static_cast<double>(rng() % 10);
  for (auto& v : bi) v = static_cast<double>(rng() % 10);
  a.scatter(ai);
  b.scatter(bi);

  // Panel sweep over the inner dimension. For each inner index t, rank r
  // needs A(i, t) for its owned rows i and B(t, j) for its owned columns j.
  // spread_region pins the size-1 source dimension — ta(i, j) = A(i, t),
  // tb(i, j) = B(t, j) — landing each panel replicated across the grid in
  // C's own distribution, so the update is purely local. The panels move
  // as real redistribution-plan messages on every backend; the *local*
  // enumeration — which (i, j) cells rank r updates — is driven by the
  // access-sequence iterators via for_each_owned_region.
  const Region whole{{0, n - 1, 1}, {0, n - 1, 1}};
  MultiDimArray<double> ta(make_map()), tb(make_map());
  for (i64 t = 0; t < n; ++t) {
    spread_region(a, Region{{0, n - 1, 1}, {t, t, 1}}, ta, whole, exec);
    spread_region(b, Region{{t, t, 1}, {0, n - 1, 1}}, tb, whole, exec);
    exec.run([&](i64 rank) {
      auto local = c.local(rank);
      const auto pa = ta.local(rank);
      const auto pb = tb.local(rank);
      for_each_owned_region(c, whole, rank, [&](const std::vector<i64>&, i64 addr) {
        const auto i = static_cast<std::size_t>(addr);
        local[i] += pa[i] * pb[i];
      });
    });
  }

  // Verify against serial GEMM.
  const auto ci = c.gather();
  double max_err = 0.0;
  for (i64 i = 0; i < n; ++i)
    for (i64 j = 0; j < n; ++j) {
      double want = 0.0;
      for (i64 t = 0; t < n; ++t)
        want += ai[static_cast<std::size_t>(i * n + t)] * bi[static_cast<std::size_t>(t * n + j)];
      max_err = std::max(max_err, std::abs(want - ci[static_cast<std::size_t>(i * n + j)]));
    }
  std::cout << "max |serial - SUMMA| = " << max_err << "\n"
            << (max_err == 0.0 ? "verified" : "MISMATCH") << "\n";
  return max_err == 0.0 ? 0 : 1;
}
