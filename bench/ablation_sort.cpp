// Ablation A (google-benchmark): the sorting policy inside the Chatterjee
// baseline. The paper notes its comparison implementation switched to a
// linear-time radix sort at k >= 64, which keeps the Lattice/Sorting ratio
// roughly constant for large k ("if a sorting method that sorts the
// sequence in place were used, for larger values of k relative performance
// improvement would also increase"). This ablation quantifies that choice:
// comparison sort vs radix sort vs the lattice method, across k.
#include <benchmark/benchmark.h>

#include "cyclick/baselines/chatterjee.hpp"
#include "cyclick/core/lattice_addresser.hpp"

namespace {

using namespace cyclick;

constexpr i64 kProcs = 32;
constexpr i64 kStride = 7;

void BM_Lattice(benchmark::State& state) {
  const i64 k = state.range(0);
  const BlockCyclic dist(kProcs, k);
  for (auto _ : state) {
    for (i64 m = 0; m < kProcs; ++m)
      benchmark::DoNotOptimize(compute_access_pattern(dist, 0, kStride, m).gaps.data());
  }
  state.SetItemsProcessed(state.iterations() * kProcs);
}

void BM_SortingComparison(benchmark::State& state) {
  const i64 k = state.range(0);
  const BlockCyclic dist(kProcs, k);
  for (auto _ : state) {
    for (i64 m = 0; m < kProcs; ++m)
      benchmark::DoNotOptimize(
          chatterjee_access_pattern(dist, 0, kStride, m, SortKind::kComparison).gaps.data());
  }
  state.SetItemsProcessed(state.iterations() * kProcs);
}

void BM_SortingRadix(benchmark::State& state) {
  const i64 k = state.range(0);
  const BlockCyclic dist(kProcs, k);
  for (auto _ : state) {
    for (i64 m = 0; m < kProcs; ++m)
      benchmark::DoNotOptimize(
          chatterjee_access_pattern(dist, 0, kStride, m, SortKind::kRadix).gaps.data());
  }
  state.SetItemsProcessed(state.iterations() * kProcs);
}

}  // namespace

BENCHMARK(BM_Lattice)->RangeMultiplier(2)->Range(4, 512);
BENCHMARK(BM_SortingComparison)->RangeMultiplier(2)->Range(4, 512);
BENCHMARK(BM_SortingRadix)->RangeMultiplier(2)->Range(4, 512);

BENCHMARK_MAIN();
