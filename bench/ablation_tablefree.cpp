// Ablation B (google-benchmark): the time/space tradeoff of Section 6.2 —
// traversing a processor's accesses through the materialized AM table
// (node-code shapes 8(b) and 8(d)) versus the table-free R/L iterator that
// stores no tables at all. The paper claims the table-free variant
// "eliminates memory overhead with only a small penalty in execution time".
#include <benchmark/benchmark.h>

#include <vector>

#include "cyclick/codegen/node_loop.hpp"
#include "cyclick/codegen/nodecode.hpp"
#include "cyclick/core/iterator.hpp"

namespace {

using namespace cyclick;

constexpr i64 kProcs = 32;
constexpr i64 kAccessesPerProc = 10'000;

struct Fixture {
  BlockCyclic dist;
  RegularSection sec;
  std::vector<double> buffer;
  AccessPattern pattern;
  OffsetTables tables;
  i64 last_local;

  Fixture(i64 k, i64 s)
      : dist(kProcs, k),
        sec(0, (kAccessesPerProc * kProcs - 1) * s, s),
        buffer(static_cast<std::size_t>(dist.local_capacity(sec.upper + 1)), 0.0),
        pattern(compute_access_pattern(dist, 0, s, /*proc=*/kProcs / 2)),
        tables(compute_offset_tables(dist, 0, s, kProcs / 2)),
        last_local(dist.local_index(*find_last(dist, sec, kProcs / 2))) {}
};

void BM_TableShapeB(benchmark::State& state) {
  Fixture f(state.range(0), state.range(1));
  i64 count = 0;
  for (auto _ : state) {
    count = run_node_code(CodeShape::kConditionalReset, std::span<double>(f.buffer),
                          f.pattern, f.tables, f.last_local, [](double& x) { x = 100.0; });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * count);
}

void BM_TableShapeD(benchmark::State& state) {
  Fixture f(state.range(0), state.range(1));
  i64 count = 0;
  for (auto _ : state) {
    count = run_node_code(CodeShape::kOffsetIndexed, std::span<double>(f.buffer), f.pattern,
                          f.tables, f.last_local, [](double& x) { x = 100.0; });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * count);
}

void BM_TableFreeIterator(benchmark::State& state) {
  Fixture f(state.range(0), state.range(1));
  i64 count = 0;
  for (auto _ : state) {
    count = 0;
    for (LocalAccessIterator it(f.dist, 0, f.sec.stride, kProcs / 2);
         !it.done() && it.local() <= f.last_local; it.advance()) {
      f.buffer[static_cast<std::size_t>(it.local())] = 100.0;
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * count);
}

}  // namespace

BENCHMARK(BM_TableShapeB)->Args({4, 3})->Args({32, 15})->Args({256, 99});
BENCHMARK(BM_TableShapeD)->Args({4, 3})->Args({32, 15})->Args({256, 99});
BENCHMARK(BM_TableFreeIterator)->Args({4, 3})->Args({32, 15})->Args({256, 99});

BENCHMARK_MAIN();
