// Microbenchmarks (google-benchmark) for the primitives underlying the
// address-generation algorithms: the extended Euclid term (the
// min(log s, log p) part of the complexity), the incremental residue scan
// (the O(k) part), single iterator advances (the O(1) table-free step), and
// the distribution's O(1) index algebra.
//
// `--json` additionally writes the measured runs to BENCH_micro.json (the
// same row-object format the table harnesses emit), via a reporter that
// captures runs on their way to the console.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cyclick/core/iterator.hpp"
#include "cyclick/support/residue_scan.hpp"

namespace {

using namespace cyclick;

void BM_ExtendedEuclid(benchmark::State& state) {
  const i64 s = state.range(0);
  i64 x = 0;
  for (auto _ : state) {
    const EgcdResult r = extended_euclid(s, 32 * 64);
    x += r.x;
    benchmark::DoNotOptimize(x);
  }
}

void BM_ResidueScan(benchmark::State& state) {
  const i64 k = state.range(0);
  const ResidueScan scan(7, 32 * k);
  for (auto _ : state) {
    i64 acc = 0;
    scan.for_each_solvable(0, k, [&](i64, i64 j) { acc += j; });
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * (k / scan.d));
}

void BM_IteratorAdvance(benchmark::State& state) {
  const BlockCyclic dist(32, state.range(0));
  LocalAccessIterator it(dist, 0, 7, 16);
  for (auto _ : state) {
    it.advance();
    benchmark::DoNotOptimize(it.local());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_LocalIndex(benchmark::State& state) {
  const BlockCyclic dist(32, 64);
  i64 g = 1;
  i64 acc = 0;
  for (auto _ : state) {
    acc += dist.local_index(g);
    g = (g * 2862933555777941757LL + 3037000493LL) & 0x3fffffff;  // cheap LCG
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Owner(benchmark::State& state) {
  const BlockCyclic dist(32, 64);
  i64 g = 1;
  i64 acc = 0;
  for (auto _ : state) {
    acc += dist.owner(g);
    g = (g * 2862933555777941757LL + 3037000493LL) & 0x3fffffff;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
}

/// Console reporter that also captures each run's name / time / throughput,
/// so the harness can re-emit them through the shared JsonWriter.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      std::vector<std::string> row;
      row.push_back(run.benchmark_name());
      row.push_back(TextTable::fixed(run.GetAdjustedRealTime(), 2));
      row.push_back(TextTable::fixed(run.GetAdjustedCPUTime(), 2));
      row.push_back(std::to_string(run.iterations));
      const auto items = run.counters.find("items_per_second");
      row.push_back(items != run.counters.end()
                        ? TextTable::fixed(static_cast<double>(items->second.value), 0)
                        : std::string("0"));
      rows_.push_back(std::move(row));
    }
  }

  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace

BENCHMARK(BM_ExtendedEuclid)->Arg(7)->Arg(99)->Arg(1 << 20);
BENCHMARK(BM_ResidueScan)->RangeMultiplier(4)->Range(4, 1024);
BENCHMARK(BM_IteratorAdvance)->Arg(8)->Arg(256);
BENCHMARK(BM_LocalIndex);
BENCHMARK(BM_Owner);

int main(int argc, char** argv) {
  // Pull our flag out before google-benchmark sees the argument vector.
  const bool json = cyclick::bench::want_json(argc, argv);
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i)
    if (std::string(argv[i]) != "--json") args.push_back(argv[i]);
  int nargs = static_cast<int>(args.size());

  benchmark::Initialize(&nargs, args.data());
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (json) {
    cyclick::bench::JsonWriter w("BENCH_micro.json");
    w.add_table("micro_primitives",
                {"name", "real_time_ns", "cpu_time_ns", "iterations", "items_per_second"},
                reporter.rows());
    w.write();
  }
  return 0;
}
