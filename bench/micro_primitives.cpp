// Microbenchmarks (google-benchmark) for the primitives underlying the
// address-generation algorithms: the extended Euclid term (the
// min(log s, log p) part of the complexity), the incremental residue scan
// (the O(k) part), single iterator advances (the O(1) table-free step), and
// the distribution's O(1) index algebra.
#include <benchmark/benchmark.h>

#include "cyclick/core/iterator.hpp"
#include "cyclick/support/residue_scan.hpp"

namespace {

using namespace cyclick;

void BM_ExtendedEuclid(benchmark::State& state) {
  const i64 s = state.range(0);
  i64 x = 0;
  for (auto _ : state) {
    const EgcdResult r = extended_euclid(s, 32 * 64);
    x += r.x;
    benchmark::DoNotOptimize(x);
  }
}

void BM_ResidueScan(benchmark::State& state) {
  const i64 k = state.range(0);
  const ResidueScan scan(7, 32 * k);
  for (auto _ : state) {
    i64 acc = 0;
    scan.for_each_solvable(0, k, [&](i64, i64 j) { acc += j; });
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * (k / scan.d));
}

void BM_IteratorAdvance(benchmark::State& state) {
  const BlockCyclic dist(32, state.range(0));
  LocalAccessIterator it(dist, 0, 7, 16);
  for (auto _ : state) {
    it.advance();
    benchmark::DoNotOptimize(it.local());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_LocalIndex(benchmark::State& state) {
  const BlockCyclic dist(32, 64);
  i64 g = 1;
  i64 acc = 0;
  for (auto _ : state) {
    acc += dist.local_index(g);
    g = (g * 2862933555777941757LL + 3037000493LL) & 0x3fffffff;  // cheap LCG
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Owner(benchmark::State& state) {
  const BlockCyclic dist(32, 64);
  i64 g = 1;
  i64 acc = 0;
  for (auto _ : state) {
    acc += dist.owner(g);
    g = (g * 2862933555777941757LL + 3037000493LL) & 0x3fffffff;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_ExtendedEuclid)->Arg(7)->Arg(99)->Arg(1 << 20);
BENCHMARK(BM_ResidueScan)->RangeMultiplier(4)->Range(4, 1024);
BENCHMARK(BM_IteratorAdvance)->Arg(8)->Arg(256);
BENCHMARK(BM_LocalIndex);
BENCHMARK(BM_Owner);

BENCHMARK_MAIN();
