// AddressEngine dispatch benchmark: for one section shape per strategy
// class, compare the engine's classified traversal (run_section_auto — the
// loop shape the dispatch layer picks) against the forced general-lattice
// walk (per-element nav through the full offset tables, the shape every
// section would get without classification).
//
// The fill workload writes one value per owned element; timing is the
// paper's max-over-ranks discipline. `--json` writes
// BENCH_engine_dispatch.json; the CI perf-smoke gate asserts the dense-runs
// row's speedup there.
#include <vector>

#include "bench_common.hpp"
#include "cyclick/codegen/node_loop.hpp"
#include "cyclick/core/engine.hpp"
#include "cyclick/core/lattice_addresser.hpp"

namespace {

using namespace cyclick;
using namespace cyclick::bench;

struct Config {
  const char* label;
  i64 p, k, s, accesses;
};

// The general-lattice node code, applied unconditionally: find the start,
// then one table-nav step (delta / dglobal / next_offset) per element. The
// full tables cover the degenerate classes too (identity next, fixed
// steps), so this is exactly what every class would cost without dispatch.
i64 run_forced_general(const BlockCyclic& dist, const RegularSection& sec, i64 proc,
                       std::span<double> local, double value) {
  const RegularSection asc = sec.ascending();
  const auto si = find_start(dist, asc.lower, asc.stride, proc);
  if (!si || si->start_global > asc.upper) return 0;
  const auto t = AddressEngine::global().tables(dist, asc.stride);
  i64 g = si->start_global;
  i64 la = dist.local_index(g);
  i64 q = dist.block_offset(g);
  i64 count = 0;
  while (g <= asc.upper) {
    local[static_cast<std::size_t>(la)] = value;
    ++count;
    la += t->offsets.delta[static_cast<std::size_t>(q)];
    g += t->dglobal[static_cast<std::size_t>(q)];
    q = t->offsets.next_offset[static_cast<std::size_t>(q)];
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = want_csv(argc, argv);
  const bool json = want_json(argc, argv);
  const obs::CliOptions obs_opt = obs_options(argc, argv);
  // Best-of-15: the large-footprint rows (hiranandani at 8.7 MB/rank) are
  // DRAM-sensitive, and max-over-ranks amplifies a single noisy rank.
  const int repeats = 15;

  // One representative shape per strategy class (section lower 0, the
  // access count fixed so every row does comparable work).
  const Config configs[] = {
      {"trivial-local", 1, 64, 3, 500'000},
      {"dense-runs", 16, 64, 1, 2'000'000},
      {"pure-cyclic", 16, 1, 3, 1'000'000},
      {"fixed-step", 16, 8, 16, 1'000'000},
      {"hiranandani", 16, 64, 35, 500'000},
      {"general-lattice", 16, 64, 67, 250'000},
  };

  std::cout << "AddressEngine dispatch vs forced general-lattice walk "
               "(fill workload, max over ranks, best of "
            << repeats << ")\n\n";

  TextTable table({"label", "p", "k", "s", "n", "strategy", "engine_us", "general_us",
                   "speedup"});
  bool ok = true;
  for (const Config& c : configs) {
    const BlockCyclic dist(c.p, c.k);
    const RegularSection sec{0, (c.accesses - 1) * c.s, c.s};
    const AddressStrategy strategy = AddressEngine::classify(dist, c.s);
    if (std::string(address_strategy_name(strategy)) != c.label) {
      std::cerr << "CONFIG ERROR: " << c.label << " classified as "
                << address_strategy_name(strategy) << "\n";
      ok = false;
      continue;
    }
    const i64 size = sec.last() + 1;
    std::vector<std::vector<double>> engine_mem, general_mem;
    for (i64 m = 0; m < c.p; ++m) {
      const auto cap = static_cast<std::size_t>(dist.local_size(m, size));
      engine_mem.emplace_back(cap, 0.0);
      general_mem.emplace_back(cap, 0.0);
    }

    // Correctness gate before timing: identical visit counts and buffers.
    for (i64 m = 0; m < c.p; ++m) {
      auto& em = engine_mem[static_cast<std::size_t>(m)];
      auto& gm = general_mem[static_cast<std::size_t>(m)];
      const i64 ne = run_section_auto(dist, sec, m, std::span<double>(em),
                                      [](double& x) { x = 1.0; });
      const i64 ng = run_forced_general(dist, sec, m, std::span<double>(gm), 1.0);
      if (ne != ng || em != gm) {
        std::cerr << "VERIFICATION FAILED: " << c.label << " rank " << m
                  << " (engine " << ne << " vs general " << ng << ")\n";
        ok = false;
      }
    }

    const double engine_us = max_over_ranks_us(c.p, repeats, [&](i64 m) {
      auto& mem = engine_mem[static_cast<std::size_t>(m)];
      run_section_auto(dist, sec, m, std::span<double>(mem), [](double& x) { x += 1.0; });
      do_not_optimize(mem.data());
    });
    const double general_us = max_over_ranks_us(c.p, repeats, [&](i64 m) {
      auto& mem = general_mem[static_cast<std::size_t>(m)];
      run_forced_general(dist, sec, m, std::span<double>(mem), 2.0);
      do_not_optimize(mem.data());
    });

    table.add_row({c.label, TextTable::num(c.p), TextTable::num(c.k), TextTable::num(c.s),
                   TextTable::num(c.accesses), address_strategy_name(strategy),
                   TextTable::fixed(engine_us, 1), TextTable::fixed(general_us, 1),
                   TextTable::fixed(general_us / engine_us, 2)});
  }

  emit(table, csv);
  if (json) {
    JsonWriter w("BENCH_engine_dispatch.json");
    w.add_table("engine_dispatch", table);
    w.write();
  }
  emit_obs(obs_opt);
  return ok ? 0 : 1;
}
