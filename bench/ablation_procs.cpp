// Ablation C: the paper asserts "the effects of varying the number of
// processors are only minor" on table construction (which is why its
// experiments fix p = 32). This harness varies p at fixed k and s and
// reports construction times for both methods; the lattice column should be
// essentially flat apart from the O(min(log s, log p)) Euclid term.
#include "bench_common.hpp"
#include "cyclick/baselines/chatterjee.hpp"
#include "cyclick/core/lattice_addresser.hpp"

int main(int argc, char** argv) {
  using namespace cyclick;
  using namespace cyclick::bench;
  const bool csv = want_csv(argc, argv);

  const i64 k = 64;
  const i64 s = 7;
  const int repeats = 200;

  std::cout << "Ablation C: construction time vs processor count, k = " << k << ", s = " << s
            << " (expected: only minor variation with p)\n\n";

  TextTable table({"p", "Lattice (us)", "Sorting (us)"});
  for (i64 p = 2; p <= 512; p *= 2) {
    const BlockCyclic dist(p, k);
    for (const i64 m : {i64{0}, p / 2, p - 1}) {
      if (compute_access_pattern(dist, 0, s, m) != chatterjee_access_pattern(dist, 0, s, m)) {
        std::cerr << "VERIFICATION FAILED p=" << p << " m=" << m << "\n";
        return 1;
      }
    }
    // Time a fixed rank sample (timing all ranks would conflate p with work).
    const i64 sample[] = {0, p / 2, p - 1};
    double lat = 0.0, sort = 0.0;
    for (const i64 m : sample) {
      lat = std::max(lat, time_best_us(repeats, [&] {
              do_not_optimize(compute_access_pattern(dist, 0, s, m).gaps.data());
            }));
      sort = std::max(sort, time_best_us(repeats, [&] {
               do_not_optimize(chatterjee_access_pattern(dist, 0, s, m).gaps.data());
             }));
    }
    table.add_row({TextTable::num(p), TextTable::fixed(lat, 3), TextTable::fixed(sort, 3)});
  }
  emit(table, csv);
  return 0;
}
