// Communication-plan execution benchmark (the perf-trajectory smoke run).
//
// Configuration fixed to the ablation-E redistribution: p = 32,
// dst(cyclic(8)) <- src(cyclic(3)), n = 100k strided sections. Reports,
// for the seed per-item plan vs the compressed periodic plan:
//
//   * steady-state plan execution time (prebuilt plan, warm arena),
//   * cached replay time (hash lookup + execution, the copy_section path),
//   * heap allocations per steady-state execution (counted with a global
//     operator new override — the compressed path must report 0),
//   * plan memory (per-item items vs run descriptors + gap tables),
//   * plan-cache hit/miss counters over the replay loop.
//
// `--csv` prints machine-readable rows; `--json` writes
// BENCH_commplan.json for the perf trajectory.
#include <atomic>
#include <cstdlib>
#include <new>

#include "bench_common.hpp"
#include "cyclick/runtime/section_ops.hpp"

// --- global allocation counter -------------------------------------------
// Counts every operator new in the process; the bench reads the delta
// around execution calls. Plain (non-aligned) forms only: the containers
// under measurement all use default-aligned allocations.

namespace {
std::atomic<long long> g_alloc_calls{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
// GCC's -Wmismatched-new-delete pairs the replaced operator new with
// std::free once both ends get inlined into container code and flags the
// (correct, malloc-backed) combination; silence the heuristic here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace cyclick;
using namespace cyclick::bench;

long long allocs_during(int rounds, const std::function<void()>& fn) {
  const long long before = g_alloc_calls.load(std::memory_order_relaxed);
  for (int r = 0; r < rounds; ++r) fn();
  const long long after = g_alloc_calls.load(std::memory_order_relaxed);
  return (after - before) / rounds;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = want_csv(argc, argv);
  const bool json = want_json(argc, argv);
  const obs::CliOptions obs_opt = obs_options(argc, argv);
  const i64 p = 32;
  const i64 n = 100'000;
  const int repeats = 10;
  const SpmdExecutor exec(p);

  std::cout << "Communication-plan execution: p = " << p
            << ", dst(cyclic(8)) <- src(cyclic(3)), n = " << n << "\n\n";

  DistributedArray<double> src(BlockCyclic(p, 3), 2 * n + 10);
  DistributedArray<double> dst_legacy(BlockCyclic(p, 8), 3 * n + 20);
  DistributedArray<double> dst_fast(BlockCyclic(p, 8), 3 * n + 20);
  const RegularSection ssec{0, 2 * n - 1, 2};
  const RegularSection dsec{10, 10 + 3 * (n - 1), 3};
  {
    std::vector<double> image(static_cast<std::size_t>(src.size()));
    for (std::size_t i = 0; i < image.size(); ++i) image[i] = static_cast<double>(i) * 0.5;
    src.scatter(image);
  }

  // Seed implementation: per-item plan, modular address solve per element.
  const LegacyCommPlan legacy = build_legacy_copy_plan(src, ssec, dst_legacy, dsec, exec);
  // Compressed periodic plan, executed through the reusable arena.
  const CommPlan fast = build_copy_plan(src, ssec, dst_fast, dsec, exec);

  // Correctness gate before timing anything.
  execute_legacy_copy_plan(legacy, src, dst_legacy, exec);
  execute_copy_plan(fast, src, dst_fast, exec);
  if (dst_legacy.gather() != dst_fast.gather()) {
    std::cerr << "VERIFICATION FAILED: compressed execution differs from seed\n";
    return 1;
  }

  const double legacy_us = time_best_us(repeats, [&] {
    execute_legacy_copy_plan(legacy, src, dst_legacy, exec);
    do_not_optimize(dst_legacy.local(0).data());
  });
  const double fast_us = time_best_us(repeats, [&] {
    execute_copy_plan(fast, src, dst_fast, exec);
    do_not_optimize(dst_fast.local(0).data());
  });

  // Cached replay: what copy_section does in a solver sweep after the
  // first iteration — one hash lookup plus the compressed execution.
  PlanCache cache(16);
  {
    const auto plan = cached_copy_plan(src, ssec, dst_fast, dsec, exec, cache);
    execute_copy_plan(*plan, src, dst_fast, exec);  // warm the arena
  }
  const double cached_us = time_best_us(repeats, [&] {
    const auto plan = cached_copy_plan(src, ssec, dst_fast, dsec, exec, cache);
    execute_copy_plan(*plan, src, dst_fast, exec);
    do_not_optimize(dst_fast.local(0).data());
  });
  const PlanCache::Stats stats = cache.stats();

  const long long legacy_allocs = allocs_during(5, [&] {
    execute_legacy_copy_plan(legacy, src, dst_legacy, exec);
  });
  const long long fast_allocs = allocs_during(5, [&] {
    execute_copy_plan(fast, src, dst_fast, exec);
  });

  const auto legacy_bytes = static_cast<i64>(legacy.plan_bytes());
  const auto fast_bytes = static_cast<i64>(fast.plan_bytes());

  TextTable table({"Metric", "Value"});
  table.add_row({"legacy_exec_us", TextTable::fixed(legacy_us, 1)});
  table.add_row({"compressed_exec_us", TextTable::fixed(fast_us, 1)});
  table.add_row({"cached_replay_us", TextTable::fixed(cached_us, 1)});
  table.add_row({"exec_speedup", TextTable::fixed(legacy_us / fast_us, 2)});
  table.add_row({"cached_speedup", TextTable::fixed(legacy_us / cached_us, 2)});
  table.add_row({"legacy_allocs_per_exec", TextTable::num(legacy_allocs)});
  table.add_row({"compressed_allocs_per_exec", TextTable::num(fast_allocs)});
  table.add_row({"legacy_plan_bytes", TextTable::num(legacy_bytes)});
  table.add_row({"compressed_plan_bytes", TextTable::num(fast_bytes)});
  table.add_row({"plan_bytes_ratio",
                 TextTable::fixed(static_cast<double>(legacy_bytes) /
                                      static_cast<double>(fast_bytes), 1)});
  table.add_row({"scratch_bytes", TextTable::num(static_cast<i64>(fast.scratch_bytes()))});
  table.add_row({"plan_messages", TextTable::num(fast.message_count())});
  table.add_row({"plan_remote_elements", TextTable::num(fast.remote_elements())});
  table.add_row({"cache_hits", TextTable::num(stats.hits)});
  table.add_row({"cache_misses", TextTable::num(stats.misses)});
  emit(table, csv);
  if (json) {
    JsonWriter w("BENCH_commplan.json");
    w.add_table("commplan_exec", table);
    w.write();
  }
  emit_obs(obs_opt);

  // Hard gates mirroring the PR's acceptance criteria, so CI smoke runs
  // catch regressions: >= 2x cached execution speedup, zero steady-state
  // allocations, >= 10x plan-memory compression.
  bool ok = true;
  if (legacy_us < 2.0 * cached_us) {
    std::cerr << "GATE FAILED: cached replay not >= 2x faster than seed execution\n";
    ok = false;
  }
  if (fast_allocs != 0) {
    std::cerr << "GATE FAILED: compressed execution allocates in steady state\n";
    ok = false;
  }
  if (fast_bytes * 10 > legacy_bytes) {
    std::cerr << "GATE FAILED: compressed plan not >= 10x smaller than per-item plan\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
