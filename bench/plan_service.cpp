// Plan-service closed-loop driver: the contention win of the sharded cache
// and the daemon's end-to-end query throughput and latency.
//
// Two tables:
//
//   cache_contention — pure-hit lookups against a pre-warmed cache, the
//   historical single-mutex splice-LRU vs the sharded cache, at thread
//   counts {1, 4, 32}. Every lookup hits, so the measurement isolates the
//   synchronization cost: the single mutex serializes every reader and
//   splices a list node per hit; the sharded cache takes one uncontended
//   shard lock and stamps a counter. Measured rows report wall clock on
//   this host. On a single-core host wall clock cannot show a parallelism
//   win at all — T threads' lock waits and lookups serialize onto one CPU
//   either way — so the table also carries a `modeled-32t` row, in the same
//   spirit as the simulated mesh backend: it takes each cache's *measured*
//   single-thread per-lookup cost and applies the standard effective-
//   concurrency model. A single mutex admits one lookup at a time
//   regardless of thread count; S shards hit by T concurrent threads keep
//   E = S * (1 - (1 - 1/S)^T) shards busy in expectation (balls in bins),
//   so modeled throughput is E / per_lookup_cost. The `speedup` column of
//   that row — the gated number — is the modeled sharded/single ratio.
//
//   plan_service — a live ServeDaemon on a Unix-domain socket, closed-loop
//   clients at {8, 32} connections, uniform and Zipf(1.1) key skew over a
//   pre-warmed working set. Each configuration runs two strictly separated
//   phases behind barriers: a throughput phase batching kBatch queries per
//   frame (the protocol's design point; qps is total queries over the
//   phase's wall clock), then — only after every client has finished
//   batching — a latency phase of individually timed batch=1 round trips
//   reporting per-query p50/p99. Without the barrier a slow client's batch
//   storm inflates another client's single-query tail.
//
// `--gate` enforces the PR's acceptance floors and exits nonzero on a miss:
//   sharded >= 4x single-mutex in the modeled-32t contention row;
//   >= 1M cached queries/s at 32 uniform clients;
//   p99 < 1 ms per cached query at 8 uniform clients.
//
// `--json` writes BENCH_plan_service.json for the perf-trajectory record.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "bench_common.hpp"
#include "cyclick/serve/client.hpp"
#include "cyclick/serve/service.hpp"
#include "cyclick/support/shard_cache.hpp"

namespace {

using namespace cyclick;
using namespace cyclick::bench;
using namespace cyclick::serve;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

std::string fmt2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

// --- contention table -------------------------------------------------------

constexpr std::size_t kKeySpace = 1024;      // pre-warmed working set
constexpr i64 kTotalLookups = 1 << 20;       // split evenly across threads

/// Pure-hit lookup storm: `threads` workers each run their slice of
/// kTotalLookups finds over the warm key set. Returns wall microseconds.
template <typename Cache>
double hammer_lookups_us(Cache& cache, int threads) {
  const i64 per_thread = kTotalLookups / threads;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&cache, &ready, &go, per_thread, t] {
      std::mt19937_64 rng(static_cast<unsigned long long>(t) * 2654435761ULL + 1);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (i64 i = 0; i < per_thread; ++i) {
        const auto key = static_cast<i64>(rng() % kKeySpace);
        do_not_optimize(cache.find(key));
      }
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  Stopwatch sw;
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  return sw.elapsed_us();
}

/// Expected busy shards when T concurrent lookups land uniformly on S
/// shards: S * (1 - (1 - 1/S)^T).
double effective_shards(double s, double t) {
  return s * (1.0 - std::pow(1.0 - 1.0 / s, t));
}

// --- service driver ---------------------------------------------------------

constexpr i64 kBatch = 512;  // queries per kPlanRequest frame (throughput rows)

/// The pre-warmed question set: kTables queries over a (p, k, s) grid.
std::vector<PlanQuery> make_key_space(std::size_t n) {
  std::vector<PlanQuery> keys;
  keys.reserve(n);
  for (std::size_t i = 0; keys.size() < n; ++i) {
    PlanQuery q;
    q.kind = static_cast<i64>(QueryKind::kTables);
    q.procs = 2 + static_cast<i64>(i % 16);
    q.block = 1 + static_cast<i64>((i / 16) % 8);
    q.stride = 1 + static_cast<i64>(i / 128);
    keys.push_back(q);
  }
  return keys;
}

/// Zipf(s=1.1) index sampler over [0, n): cumulative weights + binary
/// search, so the hot keys concentrate on a handful of shards.
class ZipfSampler {
 public:
  explicit ZipfSampler(std::size_t n) : cum_(n) {
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), 1.1);
      cum_[r] = total;
    }
    for (double& c : cum_) c /= total;
  }

  [[nodiscard]] std::size_t operator()(std::mt19937_64& rng) const {
    const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    const auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
    return static_cast<std::size_t>(it - cum_.begin());
  }

 private:
  std::vector<double> cum_;
};

struct ServiceRow {
  int clients = 0;
  bool zipf = false;
  i64 batch = 0;
  i64 total_queries = 0;
  double batch_wall_us = 0.0;
  double qps = 0.0;
  double hit_rate = 0.0;
  double p50_us = 0.0;  ///< per-query, batch=1 latency pass
  double p99_us = 0.0;
};

/// One closed-loop configuration: `clients` connections, each running
/// `rounds` batched round trips (throughput phase), then — behind a barrier,
/// once every client has finished batching — `lat_rounds` single-query round
/// trips (latency phase). The key stream is uniform or Zipf over `keys`.
ServiceRow run_service_row(ServeDaemon& daemon, const std::vector<PlanQuery>& keys,
                           int clients, bool zipf, i64 rounds, i64 lat_rounds) {
  ServiceRow row;
  row.clients = clients;
  row.zipf = zipf;
  row.batch = kBatch;
  const ZipfSampler zipf_sample(keys.size());
  const auto stats_before = daemon.service().cache_stats();

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> batch_done{0};
  std::atomic<bool> go_latency{false};
  std::vector<std::vector<double>> latencies(static_cast<std::size_t>(clients));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      PlanClient client(daemon.socket_path());
      std::mt19937_64 rng(static_cast<u64>(c) * 40503 + 9);
      const auto pick = [&]() -> const PlanQuery& {
        const std::size_t i = zipf ? zipf_sample(rng)
                                   : static_cast<std::size_t>(rng() % keys.size());
        return keys[i];
      };
      std::vector<PlanQuery> batch(static_cast<std::size_t>(kBatch));
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      i64 ok = 0, bad = 0;
      for (i64 r = 0; r < rounds; ++r) {
        for (auto& q : batch) q = pick();
        do_not_optimize(client.query_raw(batch, ok, bad));
      }
      batch_done.fetch_add(1, std::memory_order_release);
      while (!go_latency.load(std::memory_order_acquire)) std::this_thread::yield();
      auto& lat = latencies[static_cast<std::size_t>(c)];
      lat.reserve(static_cast<std::size_t>(lat_rounds));
      std::vector<PlanQuery> one(1);
      for (i64 r = 0; r < lat_rounds; ++r) {
        one[0] = pick();
        Stopwatch sw;
        do_not_optimize(client.query_raw(one, ok, bad));
        lat.push_back(sw.elapsed_us());
      }
    });
  }
  while (ready.load() < clients) std::this_thread::yield();
  Stopwatch wall;
  go.store(true, std::memory_order_release);
  while (batch_done.load(std::memory_order_acquire) < clients) std::this_thread::yield();
  row.batch_wall_us = wall.elapsed_us();
  go_latency.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  row.total_queries = static_cast<i64>(clients) * rounds * kBatch;
  row.qps = static_cast<double>(row.total_queries) / (row.batch_wall_us / 1e6);
  std::vector<double> all;
  for (const auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
  std::sort(all.begin(), all.end());
  const auto pct = [&all](double p) {
    const auto idx = static_cast<std::size_t>(p * static_cast<double>(all.size() - 1));
    return all[idx];
  };
  row.p50_us = pct(0.50);
  row.p99_us = pct(0.99);

  const auto stats_after = daemon.service().cache_stats();
  const double hits = static_cast<double>(stats_after.hits - stats_before.hits);
  const double misses = static_cast<double>(stats_after.misses - stats_before.misses);
  row.hit_rate = hits + misses > 0 ? hits / (hits + misses) : 0.0;
  return row;
}

bool want_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == flag) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
#if defined(__GLIBC__)
  // The response frames run to ~180 KB; above glibc's default 128 KB mmap
  // threshold every one would be a fresh mmap/munmap pair (page faults on
  // each reuse). Raise the threshold so the allocator recycles them.
  mallopt(M_MMAP_THRESHOLD, 1 << 24);
#endif
  const bool csv = want_csv(argc, argv);
  const bool json = want_json(argc, argv);
  const bool gate = want_flag(argc, argv, "--gate");
  const bool quick = want_flag(argc, argv, "--quick");
  const obs::CliOptions obs_opt = obs_options(argc, argv);

  std::cout << "Plan-service driver: sharded-cache contention and daemon "
               "closed-loop throughput\n\n";

  // --- cache contention: single-mutex vs sharded, pure hits ----------------
  TextTable contention({"cache", "threads", "mode", "lookups", "wall_us", "lookups_per_s",
                        "speedup"});
  double single_1t_us = 0.0;
  double sharded_1t_us = 0.0;
  std::size_t sharded_shards = 1;
  for (const int threads : {1, 4, 32}) {
    SingleMutexLruCache<i64, i64> single(kKeySpace * 2);
    ShardedCache<i64, i64> sharded(kKeySpace * 2);
    sharded_shards = sharded.shard_count();
    for (std::size_t i = 0; i < kKeySpace; ++i) {
      (void)single.insert(static_cast<i64>(i), std::make_shared<const i64>(1));
      (void)sharded.insert(static_cast<i64>(i), std::make_shared<const i64>(1));
    }
    const double single_us = hammer_lookups_us(single, threads);
    const double sharded_us = hammer_lookups_us(sharded, threads);
    if (threads == 1) {
      single_1t_us = single_us;
      sharded_1t_us = sharded_us;
    }
    contention.add_row({"single-mutex", std::to_string(threads), "measured",
                        std::to_string(kTotalLookups), fmt(single_us),
                        fmt(static_cast<double>(kTotalLookups) / (single_us / 1e6)), "1.00"});
    contention.add_row({"sharded", std::to_string(threads), "measured",
                        std::to_string(kTotalLookups), fmt(sharded_us),
                        fmt(static_cast<double>(kTotalLookups) / (sharded_us / 1e6)),
                        fmt2(single_us / sharded_us)});
  }
  // Modeled 32-thread row (see the file header): single-thread per-lookup
  // costs, effective-concurrency scaling. The single mutex admits one lookup
  // at a time at any thread count; the sharded cache keeps E shards busy.
  const double eff = effective_shards(static_cast<double>(sharded_shards), 32.0);
  const double single_model_qps = static_cast<double>(kTotalLookups) / (single_1t_us / 1e6);
  const double sharded_model_qps =
      eff * static_cast<double>(kTotalLookups) / (sharded_1t_us / 1e6);
  const double modeled_speedup = sharded_model_qps / single_model_qps;
  contention.add_row({"single-mutex", "32", "modeled-32t", std::to_string(kTotalLookups),
                      fmt(single_1t_us), fmt(single_model_qps), "1.00"});
  contention.add_row({"sharded", "32", "modeled-32t", std::to_string(kTotalLookups),
                      fmt(sharded_1t_us), fmt(sharded_model_qps), fmt2(modeled_speedup)});
  emit(contention, csv);
  std::cout << "\n(modeled-32t: measured 1-thread cost scaled by effective concurrency\n"
            << " E = S(1-(1-1/S)^T) = " << fmt2(eff) << " of " << sharded_shards
            << " shards at 32 threads; a single mutex stays at E = 1. Wall clock\n"
            << " on a single-core host cannot exhibit parallel speedup directly.)\n";

  // --- daemon closed loop ---------------------------------------------------
  std::cout << "\nDaemon closed loop: batched kTables queries, warm cache\n\n";
  std::string sock_dir = "/tmp/cyclick-plansvc-XXXXXX";
  {
    std::vector<char> buf(sock_dir.begin(), sock_dir.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      std::cerr << "mkdtemp failed\n";
      return 1;
    }
    sock_dir.assign(buf.data());
  }
  ServeDaemon daemon(ServeDaemon::Options{sock_dir + "/plan.sock", 8192, 0});
  daemon.start();
  const auto keys = make_key_space(512);
  {
    // Pre-warm: every key built and cached before any measured round trip.
    PlanClient warmer(daemon.socket_path());
    i64 ok = 0, bad = 0;
    (void)warmer.query_raw(keys, ok, bad);
    if (ok != static_cast<i64>(keys.size())) {
      std::cerr << "warm-up failed: " << bad << " error entries\n";
      return 1;
    }
  }

  const i64 rounds = quick ? 4 : 24;
  const i64 lat_rounds = quick ? 50 : 400;
  TextTable service({"clients", "skew", "batch", "total_queries", "batch_wall_us", "qps",
                     "hit_rate", "p50_us", "p99_us"});
  double qps_32_uniform = 0.0;
  double p99_8_uniform = 0.0;
  for (const int clients : {8, 32}) {
    for (const bool zipf : {false, true}) {
      const ServiceRow row = run_service_row(daemon, keys, clients, zipf, rounds, lat_rounds);
      if (clients == 32 && !zipf) qps_32_uniform = row.qps;
      if (clients == 8 && !zipf) p99_8_uniform = row.p99_us;
      service.add_row({std::to_string(row.clients), zipf ? "zipf" : "uniform",
                       std::to_string(row.batch), std::to_string(row.total_queries),
                       fmt(row.batch_wall_us), fmt(row.qps), fmt2(row.hit_rate),
                       fmt2(row.p50_us), fmt2(row.p99_us)});
    }
  }
  daemon.stop();
  emit(service, csv);

  if (json) {
    JsonWriter w("BENCH_plan_service.json");
    w.add_table("cache_contention", contention);
    w.add_table("plan_service", service);
    w.write();
  }
  emit_obs(obs_opt);

  if (gate) {
    bool ok = true;
    std::cout << "\ngates:\n";
    std::cout << "  sharded vs single-mutex, modeled-32t row: " << fmt2(modeled_speedup)
              << "x (floor 4x)\n";
    if (modeled_speedup < 4.0) {
      std::cout << "  FAIL: contention speedup below 4x\n";
      ok = false;
    }
    std::cout << "  qps @32 uniform clients: " << fmt(qps_32_uniform)
              << " (floor 1000000)\n";
    if (qps_32_uniform < 1e6) {
      std::cout << "  FAIL: cached-lookup throughput below 1M/s\n";
      ok = false;
    }
    std::cout << "  p99 @8 uniform clients: " << fmt2(p99_8_uniform)
              << " us (ceiling 1000 us)\n";
    if (p99_8_uniform >= 1000.0) {
      std::cout << "  FAIL: cache-hit p99 at or above 1 ms\n";
      ok = false;
    }
    if (!ok) return 1;
    std::cout << "  all gates passed\n";
  }
  return 0;
}
