// Shared measurement discipline for the paper-shaped benchmark harnesses.
//
// The paper reports, for each configuration, the *maximum over all 32
// processors* of the per-processor running time on an iPSC/860. We
// reproduce that: each rank's computation is timed separately (best of R
// repetitions to suppress additive noise) and the maximum over ranks is
// reported, in microseconds.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "cyclick/support/table.hpp"
#include "cyclick/support/timer.hpp"
#include "cyclick/support/types.hpp"

namespace cyclick::bench {

/// Best-of-`repeats` timing of fn(m), maximized over ranks [0, p).
template <typename Fn>
double max_over_ranks_us(i64 p, int repeats, Fn&& fn) {
  double worst = 0.0;
  for (i64 m = 0; m < p; ++m) {
    const double t = time_best_us(repeats, [&] { fn(m); });
    if (t > worst) worst = t;
  }
  return worst;
}

/// True when the harness should emit CSV instead of an aligned table.
inline bool want_csv(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--csv") return true;
  return false;
}

inline void emit(const TextTable& table, bool csv) {
  if (csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
}

}  // namespace cyclick::bench
