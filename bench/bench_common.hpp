// Shared measurement discipline for the paper-shaped benchmark harnesses.
//
// The paper reports, for each configuration, the *maximum over all 32
// processors* of the per-processor running time on an iPSC/860. We
// reproduce that: each rank's computation is timed separately (best of R
// repetitions to suppress additive noise) and the maximum over ranks is
// reported, in microseconds.
//
// Output plumbing: every harness prints an aligned table by default,
// `--csv` switches to CSV on stdout, and `--json` additionally writes the
// table as a JSON array of row objects to a file (BENCH_<name>.json by
// default) so results land in the perf-trajectory record.
#pragma once

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cyclick/obs/metrics.hpp"
#include "cyclick/obs/report.hpp"
#include "cyclick/support/table.hpp"
#include "cyclick/support/timer.hpp"
#include "cyclick/support/types.hpp"

namespace cyclick::bench {

/// Best-of-`repeats` timing of fn(m), maximized over ranks [0, p).
template <typename Fn>
double max_over_ranks_us(i64 p, int repeats, Fn&& fn) {
  double worst = 0.0;
  for (i64 m = 0; m < p; ++m) {
    const double t = time_best_us(repeats, [&] { fn(m); });
    if (t > worst) worst = t;
  }
  return worst;
}

/// As above, but each rank's best time is also recorded into the process
/// telemetry registry under `name` (per-rank histogram rows), so `--metrics`
/// runs expose the full per-rank distribution, not just the maximum.
template <typename Fn>
double max_over_ranks_us(const char* name, i64 p, int repeats, Fn&& fn) {
  double worst = 0.0;
  for (i64 m = 0; m < p; ++m) {
    const double t = time_best_us(repeats, [&] { fn(m); });
    if (obs::enabled())
      obs::Registry::global().histogram(name).record_us(m, static_cast<i64>(t));
    if (t > worst) worst = t;
  }
  return worst;
}

/// Scan argv for the shared telemetry flags (--metrics[=json],
/// --trace=FILE.json) and enable collection when any is present. Call
/// emit_obs(opts) once the harness is done measuring.
inline obs::CliOptions obs_options(int argc, char** argv) {
  obs::CliOptions opt;
  for (int i = 1; i < argc; ++i) obs::parse_cli_flag(argv[i], opt);
  if (opt.any()) obs::set_enabled(true);
  return opt;
}

/// Emit the telemetry report / trace requested by obs_options (stderr, so
/// stdout stays parseable as a table or CSV).
inline void emit_obs(const obs::CliOptions& opt) { obs::emit_cli_outputs(opt, std::cerr); }

/// True when the harness should emit CSV instead of an aligned table.
inline bool want_csv(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--csv") return true;
  return false;
}

/// True when the harness should also write its table(s) as JSON.
inline bool want_json(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--json") return true;
  return false;
}

inline void emit(const TextTable& table, bool csv) {
  if (csv)
    table.print_csv(std::cout);
  else
    table.print(std::cout);
}

namespace detail {

/// True when the cell prints as a bare JSON number (strtod consumes it
/// entirely and it is finite).
inline bool is_numeric_cell(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  (void)v;
  return end == s.c_str() + s.size();
}

inline void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace detail

/// Append one table to a JSON document as an array of {header: cell}
/// objects under `label`. Call json_begin / json_end around the tables.
class JsonWriter {
 public:
  explicit JsonWriter(std::string path) : path_(std::move(path)) {}

  void add_table(const std::string& label, const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows) {
    labels_.push_back(label);
    headers_.push_back(header);
    tables_.push_back(rows);
  }

  void add_table(const std::string& label, const TextTable& table) {
    add_table(label, table.header(), table.cells());
  }

  /// Write {"label": [ {col: val, ...}, ... ], ...} to the path.
  void write() const {
    std::ofstream os(path_);
    if (!os) {
      std::cerr << "cannot write " << path_ << "\n";
      return;
    }
    os << "{\n";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      os << "  ";
      detail::write_json_string(os, labels_[t]);
      os << ": [\n";
      for (std::size_t r = 0; r < tables_[t].size(); ++r) {
        os << "    {";
        for (std::size_t c = 0; c < headers_[t].size(); ++c) {
          if (c > 0) os << ", ";
          detail::write_json_string(os, headers_[t][c]);
          os << ": ";
          const std::string& cell = tables_[t][r][c];
          if (detail::is_numeric_cell(cell))
            os << cell;
          else
            detail::write_json_string(os, cell);
        }
        os << "}" << (r + 1 < tables_[t].size() ? "," : "") << "\n";
      }
      os << "  ]" << (t + 1 < tables_.size() ? "," : "") << "\n";
    }
    os << "}\n";
    std::cout << "wrote " << path_ << "\n";
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::vector<std::string> labels_;
  std::vector<std::vector<std::string>> headers_;
  std::vector<std::vector<std::vector<std::string>>> tables_;
};

}  // namespace cyclick::bench
