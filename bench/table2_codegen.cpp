// Reproduces Table 2 of the paper: execution time of the four node-code
// shapes of Figure 8 for the array assignment A(l:u:s) = 100.0, with
//
//   p = 32, l = 0, k in {4, 32, 256}, s in {3, 15, 99},
//
// and the upper bound scaled in proportion to the stride so that *each
// processor performs assignments to 10,000 array elements* (the paper's
// workload). Reported times are maxima over the 32 processors.
//
// Expected shape (paper): 8(a)'s mod makes it several times slower than the
// rest; 8(c) edges out 8(b) at larger k; 8(d) is the fastest overall.
#include "bench_common.hpp"
#include "cyclick/codegen/node_loop.hpp"
#include "cyclick/codegen/nodecode.hpp"
#include "cyclick/core/lattice_addresser.hpp"

namespace {

using namespace cyclick;
using namespace cyclick::bench;

constexpr i64 kAccessesPerProc = 10'000;

struct Config {
  BlockCyclic dist;
  RegularSection sec;
  i64 last_local_max = 0;

  Config(i64 p, i64 k, i64 s)
      : dist(p, k), sec(0, (kAccessesPerProc * p - 1) * s, s) {}
};

}  // namespace

int main(int argc, char** argv) {
  const bool csv = want_csv(argc, argv);
  const bool json = want_json(argc, argv);
  const obs::CliOptions obs_opt = obs_options(argc, argv);
  const i64 p = 32;
  const int repeats = 15;

  std::cout << "Table 2: node-code execution time (microseconds) for A(l:u:s) = 100.0,\n"
            << "p = " << p << ", " << kAccessesPerProc
            << " assignments per processor; max over processors, best of " << repeats
            << "\n\n";

  // The fifth column is our extension beyond the paper's four shapes: the
  // table-free traversal of Section 6.2 (R/L registers only, no tables).
  TextTable table(
      {"Config", "8(a) mod", "8(b) reset", "8(c) for", "8(d) offset", "free (6.2)"});

  for (const i64 k : {4, 32, 256}) {
    for (const i64 s : {3, 15, 99}) {
      const Config cfg(p, k, s);
      const i64 n = cfg.sec.upper + 1;

      // One reusable local buffer sized for the largest rank share.
      std::vector<double> buffer(static_cast<std::size_t>(cfg.dist.local_capacity(n)), 0.0);

      // Precompute per-rank tables and bounds (construction cost is Table 1's
      // subject; Table 2 measures the traversal only).
      std::vector<AccessPattern> patterns;
      std::vector<OffsetTables> offsets;
      std::vector<i64> last_locals;
      i64 total_accesses = 0;
      for (i64 m = 0; m < p; ++m) {
        patterns.push_back(compute_access_pattern(cfg.dist, 0, s, m));
        offsets.push_back(compute_offset_tables(cfg.dist, 0, s, m));
        const auto lastg = find_last(cfg.dist, cfg.sec, m);
        last_locals.push_back(lastg ? cfg.dist.local_index(*lastg) : -1);
        // Verify every shape visits the same number of elements.
        if (!patterns.back().empty() && lastg) {
          const i64 c1 = run_node_code(CodeShape::kModCycle, std::span<double>(buffer),
                                       patterns.back(), offsets.back(), last_locals.back(),
                                       [](double& x) { x = 100.0; });
          const i64 c4 = run_node_code(CodeShape::kOffsetIndexed, std::span<double>(buffer),
                                       patterns.back(), offsets.back(), last_locals.back(),
                                       [](double& x) { x = 100.0; });
          if (c1 != c4) {
            std::cerr << "VERIFICATION FAILED k=" << k << " s=" << s << " m=" << m << "\n";
            return 1;
          }
          total_accesses += c1;
        }
      }
      if (total_accesses != cfg.sec.size()) {
        std::cerr << "COVERAGE FAILED k=" << k << " s=" << s << ": " << total_accesses
                  << " != " << cfg.sec.size() << "\n";
        return 1;
      }

      std::vector<std::string> row{"k=" + std::to_string(k) + " s=" + std::to_string(s)};
      for (const CodeShape shape :
           {CodeShape::kModCycle, CodeShape::kConditionalReset, CodeShape::kCycleFor,
            CodeShape::kOffsetIndexed}) {
        const double us = max_over_ranks_us(p, repeats, [&](i64 m) {
          const auto mi = static_cast<std::size_t>(m);
          const i64 count = run_node_code(shape, std::span<double>(buffer), patterns[mi],
                                          offsets[mi], last_locals[mi],
                                          [](double& x) { x = 100.0; });
          do_not_optimize(count);
        });
        row.push_back(TextTable::fixed(us, 1));
      }
      const double free_us = max_over_ranks_us(p, repeats, [&](i64 m) {
        const auto mi = static_cast<std::size_t>(m);
        const i64 count =
            run_table_free(cfg.dist, 0, s, m, std::span<double>(buffer), last_locals[mi],
                           [](double& x) { x = 100.0; });
        do_not_optimize(count);
      });
      row.push_back(TextTable::fixed(free_us, 1));
      table.add_row(std::move(row));
    }
  }
  emit(table, csv);
  if (json) {
    JsonWriter w("BENCH_table2.json");
    w.add_table("table2_codegen", table);
    w.write();
  }
  emit_obs(obs_opt);
  std::cout << "\n(Compare shapes with the paper's Table 2: the mod-based 8(a) is the\n"
               " clear loser; 8(d)'s two-table lookup is the fastest.)\n";
  return 0;
}
