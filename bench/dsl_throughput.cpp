// End-to-end DSL statement throughput: the same relaxation programs driven
// through the tree-walking interpreter tier and the bytecode tier, timed
// over full `repeat` sweeps. This measures what the bytecode tier exists
// for — amortizing per-statement lowering (plan resolution, temp shaping,
// kernel selection) across loop iterations and fusing the interpreter's
// multi-pass arithmetic into single-pass superinstructions.
//
// Two programs, both 1-D so the bytecode tier compiles every statement:
//   jacobi   3-point average ping-pong (the paper's relaxation shape)
//   heat2d   4-point average over a row-flattened 2-D grid (stencil
//            neighbors at +-1 and +-W in the flat index space)
//
// `--json` writes BENCH_dsl_throughput.json; the CI perf-smoke gate asserts
// bytecode/interp speedup >= 2x on both programs.
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "cyclick/compiler/interp.hpp"

namespace {

using namespace cyclick;
using namespace cyclick::bench;

struct Workload {
  const char* name;
  std::string prologue;  // declarations + initialization, run once
  std::string sweep;     // one relaxation sweep (two statements)
};

Workload jacobi(i64 n) {
  std::ostringstream pro, sweep;
  pro << "processors P(4)\n"
      << "template T(" << n << ")\n"
      << "distribute T onto P cyclic(64)\n"
      << "array U(" << n << ") align with T(i)\n"
      << "array V(" << n << ") align with T(i)\n"
      << "forall (i = 0:" << n - 1 << ") U(i) = i * (" << n - 1 << " - i)\n"
      << "V(0:" << n - 1 << ") = 0\n";
  sweep << "V(1:" << n - 2 << ") = (U(0:" << n - 3 << ") + U(2:" << n - 1 << ")) / 2\n"
        << "U(1:" << n - 2 << ") = V(1:" << n - 2 << ")\n";
  return {"jacobi", pro.str(), sweep.str()};
}

Workload heat2d_flat(i64 w, i64 rows) {
  const i64 n = w * rows;
  const i64 lo = w, hi = n - w - 1;  // interior rows of the flattened grid
  std::ostringstream pro, sweep;
  pro << "processors P(4)\n"
      << "template T(" << n << ")\n"
      << "distribute T onto P cyclic(64)\n"
      << "array U(" << n << ") align with T(i)\n"
      << "array V(" << n << ") align with T(i)\n"
      << "U(0:" << n - 1 << ") = 0\n"
      << "U(0:" << w - 1 << ") = 100\n"
      << "V(0:" << n - 1 << ") = 0\n";
  sweep << "V(" << lo << ":" << hi << ") = (U(" << lo - 1 << ":" << hi - 1 << ") + U("
        << lo + 1 << ":" << hi + 1 << ") + U(" << lo - w << ":" << hi - w << ") + U("
        << lo + w << ":" << hi + w << ")) / 4\n"
        << "U(" << lo << ":" << hi << ") = V(" << lo << ":" << hi << ")\n";
  return {"heat2d", pro.str(), sweep.str()};
}

/// Run `sweeps` relaxation sweeps under `tier`, returning the best-of-
/// `repeats` wall time in microseconds (one parse of the repeat block is
/// included; it is identical work for both tiers and negligible against
/// the array traffic).
double time_tier(const Workload& wl, dsl::Tier tier, i64 sweeps, int repeats) {
  dsl::Machine machine;
  machine.set_tier(tier);
  machine.run_source(wl.prologue);
  std::ostringstream loop;
  loop << "repeat " << sweeps << "\n" << wl.sweep << "end\n";
  const std::string loop_src = loop.str();
  machine.run_source(loop_src);  // warm plan/program caches before timing
  return time_best_us(repeats, [&] { machine.run_source(loop_src); });
}

/// Correctness gate: both tiers must leave byte-identical global images.
bool verify(const Workload& wl, i64 sweeps) {
  dsl::Machine mi, mb;
  mi.set_tier(dsl::Tier::kInterp);
  mb.set_tier(dsl::Tier::kBytecode);
  std::ostringstream loop;
  loop << "repeat " << sweeps << "\n" << wl.sweep << "end\n";
  const std::string program = wl.prologue + loop.str();
  mi.run_source(program);
  mb.run_source(program);
  return mi.global_image("U") == mb.global_image("U") &&
         mi.global_image("V") == mb.global_image("V");
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = want_csv(argc, argv);
  const bool json = want_json(argc, argv);
  const obs::CliOptions obs_opt = obs_options(argc, argv);
  const int repeats = 5;
  const i64 n = 16384;
  const i64 sweeps = 50;

  const Workload workloads[] = {jacobi(n), heat2d_flat(128, n / 128)};

  std::cout << "DSL statement throughput: interpreter tier vs bytecode tier\n"
            << "(n=" << n << ", " << sweeps << " sweeps per run, best of " << repeats
            << ")\n\n";

  TextTable table({"program", "n", "sweeps", "interp_us", "bytecode_us", "per_sweep_us",
                   "speedup"});
  bool ok = true;
  for (const Workload& wl : workloads) {
    if (!verify(wl, 3)) {
      std::cerr << "VERIFICATION FAILED: tiers disagree on " << wl.name << "\n";
      ok = false;
      continue;
    }
    const double interp_us = time_tier(wl, dsl::Tier::kInterp, sweeps, repeats);
    const double bytecode_us = time_tier(wl, dsl::Tier::kBytecode, sweeps, repeats);
    table.add_row({wl.name, TextTable::num(n), TextTable::num(sweeps),
                   TextTable::fixed(interp_us, 1), TextTable::fixed(bytecode_us, 1),
                   TextTable::fixed(bytecode_us / static_cast<double>(sweeps), 2),
                   TextTable::fixed(interp_us / bytecode_us, 2)});
  }

  emit(table, csv);
  if (json) {
    JsonWriter w("BENCH_dsl_throughput.json");
    w.add_table("dsl_throughput", table);
    w.write();
  }
  emit_obs(obs_opt);
  return ok ? 0 : 1;
}
