// Ablation E: communication-plan construction and execution cost. An HPF
// run-time system must derive, for dst(dsec) = src(ssec), which elements
// each rank sends and receives, and then actually move the bytes — often
// every sweep of an iterative solver.
//
// Construction: the naive method scans the whole section on every rank and
// computes both owners per element (O(p * |section|)); the access-sequence
// machinery lets each rank enumerate only its own elements (O(|section|)
// total across ranks, O(k + log) setup each); the compressed builder adds
// owner-run source resolution and gap-table compression on top.
//
// Execution: the legacy per-item plan re-solves the source local address
// (a modular solve) per element and allocates payload buffers per call;
// the compressed plan replays periodic gap tables through a reusable
// arena (zero steady-state allocations); the cached path adds only a hash
// lookup on top of that.
#include "bench_common.hpp"
#include "cyclick/runtime/section_ops.hpp"

namespace {

using namespace cyclick;
using namespace cyclick::bench;

// Naive plan: every rank scans all t and keeps what it receives.
LegacyCommPlan naive_plan(const DistributedArray<double>& src, const RegularSection& ssec,
                          const DistributedArray<double>& dst, const RegularSection& dsec,
                          const SpmdExecutor& exec) {
  LegacyCommPlan plan;
  plan.ranks = exec.ranks();
  plan.pairwise.resize(static_cast<std::size_t>(plan.ranks * plan.ranks));
  exec.run([&](i64 rank) {
    for (i64 t = 0; t < dsec.size(); ++t) {
      const i64 dg = dsec.element(t);
      if (dst.owner_of(dg) != rank) continue;
      const i64 sg = ssec.element(t);
      plan.pairwise[static_cast<std::size_t>(rank * plan.ranks + src.owner_of(sg))]
          .push_back({sg, dst.local_address(dg)});
    }
  });
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = want_csv(argc, argv);
  const bool json = want_json(argc, argv);
  const i64 p = 32;
  const int repeats = 10;
  const SpmdExecutor exec(p);

  std::cout << "Ablation E: communication plans for a redistribution\n"
            << "dst(cyclic(8)) <- src(cyclic(3)), strided sections, p = " << p << "\n\n";

  TextTable build_table({"Elements", "Naive owner-scan (us)", "Access-sequence (us)",
                         "Compressed (us)", "Naive/compressed"});
  TextTable exec_table({"Elements", "Legacy exec (us)", "Compressed exec (us)",
                        "Cached replay (us)", "Legacy/compressed", "Plan bytes legacy",
                        "Plan bytes compressed"});
  for (const i64 n : {1'000, 10'000, 100'000}) {
    DistributedArray<double> src(BlockCyclic(p, 3), 2 * n + 10);
    DistributedArray<double> dst(BlockCyclic(p, 8), 3 * n + 20);
    const RegularSection ssec{0, 2 * n - 1, 2};
    const RegularSection dsec{10, 10 + 3 * (n - 1), 3};

    // Verify all three builders agree channel-by-channel.
    const LegacyCommPlan a = naive_plan(src, ssec, dst, dsec, exec);
    const LegacyCommPlan b = build_legacy_copy_plan(src, ssec, dst, dsec, exec);
    const CommPlan c = build_copy_plan(src, ssec, dst, dsec, exec);
    for (i64 m = 0; m < p; ++m)
      for (i64 q = 0; q < p; ++q)
        if (a.items(m, q).size() != b.items(m, q).size() ||
            static_cast<i64>(a.items(m, q).size()) != c.channel_size(m, q)) {
          std::cerr << "VERIFICATION FAILED at n=" << n << "\n";
          return 1;
        }

    const double naive_us = time_best_us(repeats, [&] {
      const LegacyCommPlan plan = naive_plan(src, ssec, dst, dsec, exec);
      do_not_optimize(plan.pairwise.data());
    });
    const double fast_us = time_best_us(repeats, [&] {
      const LegacyCommPlan plan = build_legacy_copy_plan(src, ssec, dst, dsec, exec);
      do_not_optimize(plan.pairwise.data());
    });
    const double compressed_us = time_best_us(repeats, [&] {
      const CommPlan plan = build_copy_plan(src, ssec, dst, dsec, exec);
      do_not_optimize(plan.channels.data());
    });
    build_table.add_row({TextTable::num(n), TextTable::fixed(naive_us, 1),
                         TextTable::fixed(fast_us, 1), TextTable::fixed(compressed_us, 1),
                         TextTable::fixed(naive_us / compressed_us, 1)});

    // Execution: legacy per-item replay vs compressed gap-stepping replay
    // vs the full cached path (hash lookup + replay).
    const double legacy_exec_us = time_best_us(repeats, [&] {
      execute_legacy_copy_plan(b, src, dst, exec);
      do_not_optimize(dst.local(0).data());
    });
    execute_copy_plan(c, src, dst, exec);  // warm the arena
    const double compressed_exec_us = time_best_us(repeats, [&] {
      execute_copy_plan(c, src, dst, exec);
      do_not_optimize(dst.local(0).data());
    });
    PlanCache cache(16);
    const auto cached = cached_copy_plan(src, ssec, dst, dsec, exec, cache);
    execute_copy_plan(*cached, src, dst, exec);  // warm the arena
    const double cached_us = time_best_us(repeats, [&] {
      const auto plan = cached_copy_plan(src, ssec, dst, dsec, exec, cache);
      execute_copy_plan(*plan, src, dst, exec);
      do_not_optimize(dst.local(0).data());
    });
    exec_table.add_row({TextTable::num(n), TextTable::fixed(legacy_exec_us, 1),
                        TextTable::fixed(compressed_exec_us, 1),
                        TextTable::fixed(cached_us, 1),
                        TextTable::fixed(legacy_exec_us / compressed_exec_us, 1),
                        TextTable::num(static_cast<i64>(b.plan_bytes())),
                        TextTable::num(static_cast<i64>(c.plan_bytes()))});
  }
  std::cout << "construction:\n";
  emit(build_table, csv);
  std::cout << "\nexecution:\n";
  emit(exec_table, csv);
  if (json) {
    JsonWriter w("BENCH_ablation_commplan.json");
    w.add_table("construction", build_table);
    w.add_table("execution", exec_table);
    w.write();
  }
  std::cout << "\n(The naive scan repeats the whole section on every rank; the\n"
               " access-sequence build touches each element exactly once machine-wide;\n"
               " the compressed plan replays periodic gap tables with no per-element\n"
               " address solves and no steady-state allocations.)\n";
  return 0;
}
