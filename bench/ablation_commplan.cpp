// Ablation E: communication-set construction cost. An HPF run-time system
// must derive, for dst(dsec) = src(ssec), which elements each rank sends
// and receives. The naive method scans the whole section on every rank and
// computes both owners per element (O(p * |section|)); the access-sequence
// machinery lets each rank enumerate only its own elements (O(|section|)
// total across ranks, O(k + log) setup each). This is precisely the payoff
// the paper's introduction promises for compilers and run-time systems.
#include "bench_common.hpp"
#include "cyclick/runtime/section_ops.hpp"

namespace {

using namespace cyclick;
using namespace cyclick::bench;

// Naive plan: every rank scans all t and keeps what it receives.
CommPlan naive_plan(const DistributedArray<double>& src, const RegularSection& ssec,
                    const DistributedArray<double>& dst, const RegularSection& dsec,
                    const SpmdExecutor& exec) {
  CommPlan plan;
  plan.ranks = exec.ranks();
  plan.pairwise.resize(static_cast<std::size_t>(plan.ranks * plan.ranks));
  exec.run([&](i64 rank) {
    for (i64 t = 0; t < dsec.size(); ++t) {
      const i64 dg = dsec.element(t);
      if (dst.owner_of(dg) != rank) continue;
      const i64 sg = ssec.element(t);
      plan.pairwise[static_cast<std::size_t>(rank * plan.ranks + src.owner_of(sg))]
          .push_back({sg, dst.local_address(dg)});
    }
  });
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = want_csv(argc, argv);
  const i64 p = 32;
  const int repeats = 10;
  const SpmdExecutor exec(p);

  std::cout << "Ablation E: communication-plan construction for a redistribution\n"
            << "dst(cyclic(8)) <- src(cyclic(3)), strided sections, p = " << p << "\n\n";

  TextTable table({"Elements", "Naive owner-scan (us)", "Access-sequence (us)",
                   "Speedup"});
  for (const i64 n : {1'000, 10'000, 100'000}) {
    DistributedArray<double> src(BlockCyclic(p, 3), 2 * n + 10);
    DistributedArray<double> dst(BlockCyclic(p, 8), 3 * n + 20);
    const RegularSection ssec{0, 2 * n - 1, 2};
    const RegularSection dsec{10, 10 + 3 * (n - 1), 3};

    // Verify both builders agree.
    const CommPlan a = naive_plan(src, ssec, dst, dsec, exec);
    const CommPlan b = build_copy_plan(src, ssec, dst, dsec, exec);
    for (i64 m = 0; m < p; ++m)
      for (i64 q = 0; q < p; ++q)
        if (a.items(m, q).size() != b.items(m, q).size()) {
          std::cerr << "VERIFICATION FAILED at n=" << n << "\n";
          return 1;
        }

    const double naive_us = time_best_us(repeats, [&] {
      const CommPlan plan = naive_plan(src, ssec, dst, dsec, exec);
      do_not_optimize(plan.pairwise.data());
    });
    const double fast_us = time_best_us(repeats, [&] {
      const CommPlan plan = build_copy_plan(src, ssec, dst, dsec, exec);
      do_not_optimize(plan.pairwise.data());
    });
    table.add_row({TextTable::num(n), TextTable::fixed(naive_us, 1),
                   TextTable::fixed(fast_us, 1), TextTable::fixed(naive_us / fast_us, 1)});
  }
  emit(table, csv);
  std::cout << "\n(The naive scan repeats the whole section on every rank; the\n"
               " access-sequence build touches each element exactly once machine-wide.)\n";
  return 0;
}
