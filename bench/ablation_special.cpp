// Ablation D: special-case handling.
//  - Hiranandani et al.'s O(k) method applies when s mod pk < k; inside its
//    domain it competes with the lattice algorithm (both are O(k)).
//  - When gcd(s, pk) = 1, every processor's AM table is a cyclic shift of
//    every other's (noted by Chatterjee et al. and in Section 6.1), so a
//    run-time system can compute the table once and only solve per-processor
//    start locations. This harness measures that reuse strategy against
//    computing the full table on every processor.
#include "bench_common.hpp"
#include "cyclick/baselines/hiranandani.hpp"
#include "cyclick/core/lattice_addresser.hpp"

int main(int argc, char** argv) {
  using namespace cyclick;
  using namespace cyclick::bench;
  const bool csv = want_csv(argc, argv);
  const i64 p = 32;
  const int repeats = 200;

  std::cout << "Ablation D1: inside the Hiranandani case (s mod pk < k)\n\n";
  {
    TextTable table({"Config", "Lattice (us)", "Hiranandani (us)"});
    for (const i64 k : {16, 64, 256}) {
      for (const i64 s : {i64{3}, i64{7}, k - 1}) {
        const BlockCyclic dist(p, k);
        if (!hiranandani_applicable(dist, s)) continue;
        for (i64 m = 0; m < p; ++m) {
          if (compute_access_pattern(dist, 0, s, m) !=
              hiranandani_access_pattern(dist, 0, s, m)) {
            std::cerr << "VERIFICATION FAILED k=" << k << " s=" << s << " m=" << m << "\n";
            return 1;
          }
        }
        const double lat = max_over_ranks_us(p, repeats, [&](i64 m) {
          do_not_optimize(compute_access_pattern(dist, 0, s, m).gaps.data());
        });
        const double hir = max_over_ranks_us(p, repeats, [&](i64 m) {
          do_not_optimize(hiranandani_access_pattern(dist, 0, s, m).gaps.data());
        });
        table.add_row({"k=" + std::to_string(k) + " s=" + std::to_string(s),
                       TextTable::fixed(lat, 2), TextTable::fixed(hir, 2)});
      }
    }
    emit(table, csv);
  }

  std::cout << "\nAblation D2: gcd(s, pk) = 1 shift-reuse (compute the table once,\n"
               "then find only start locations per processor) vs full per-processor runs\n\n";
  {
    TextTable table({"Config", "Full per-proc (us)", "Shift reuse (us)"});
    for (const i64 k : {16, 64, 256}) {
      for (const i64 s : {7, 99}) {
        const BlockCyclic dist(p, k);
        if (gcd_i64(s, p * k) != 1) continue;
        // Full: every processor constructs its own table (total work).
        const double full = time_best_us(repeats, [&] {
          for (i64 m = 0; m < p; ++m)
            do_not_optimize(compute_access_pattern(dist, 0, s, m).gaps.data());
        });
        // Reuse: one table + p start-location scans.
        const double reuse = time_best_us(repeats, [&] {
          do_not_optimize(compute_access_pattern(dist, 0, s, 0).gaps.data());
          for (i64 m = 1; m < p; ++m) do_not_optimize(find_start(dist, 0, s, m)->start_global);
        });
        table.add_row({"k=" + std::to_string(k) + " s=" + std::to_string(s),
                       TextTable::fixed(full, 2), TextTable::fixed(reuse, 2)});
      }
    }
    emit(table, csv);
  }
  return 0;
}
