// Ablation F: cost of non-identity affine alignments. The paper notes that
// "the memory access problem for any affine alignment can be solved by two
// applications of the access sequence computation algorithm"; this harness
// measures that overhead: identity-alignment table construction (pure
// Figure-5) vs the two-application packed-layout solver for several
// alignment coefficients.
#include "bench_common.hpp"
#include "cyclick/core/aligned.hpp"
#include "cyclick/core/lattice_addresser.hpp"

int main(int argc, char** argv) {
  using namespace cyclick;
  using namespace cyclick::bench;
  const bool csv = want_csv(argc, argv);

  const i64 p = 32;
  const int repeats = 50;

  std::cout << "Ablation F: identity vs affine-aligned table construction, p = " << p
            << "\n(aligned solver = two applications + O(k) rank queries per entry)\n\n";

  TextTable table({"Config", "Identity (us)", "Align 2i+1 (us)", "Align 3i+7 (us)"});
  for (const i64 k : {8, 32, 128}) {
    for (const i64 s : {7, 25}) {
      const BlockCyclic dist(p, k);
      const i64 n = 64 * p * k;  // array large enough for full cycles
      const RegularSection sec{3, 3 + s * (n / (2 * s)), s};

      // Verify the aligned solver agrees with the core pattern under
      // identity alignment before timing anything.
      for (const i64 m : {i64{0}, p / 2}) {
        const AlignedAccessPattern ap =
            compute_aligned_pattern(dist, AffineAlignment::identity(), n, sec, m);
        const AccessPattern core = compute_access_pattern(dist, sec.lower, s, m);
        if (!ap.empty() && !core.empty() && ap.gaps != core.gaps) {
          std::cerr << "VERIFICATION FAILED k=" << k << " s=" << s << " m=" << m << "\n";
          return 1;
        }
      }

      const auto time_align = [&](const AffineAlignment& al, i64 array_n) {
        return max_over_ranks_us(p, repeats, [&](i64 m) {
          const AlignedAccessPattern ap = compute_aligned_pattern(dist, al, array_n, sec, m);
          do_not_optimize(ap.gaps.data());
        });
      };
      const double ident = max_over_ranks_us(p, repeats, [&](i64 m) {
        const AccessPattern pat = compute_access_pattern(dist, sec.lower, s, m);
        do_not_optimize(pat.gaps.data());
      });
      const double a21 = time_align(AffineAlignment{2, 1}, n);
      const double a37 = time_align(AffineAlignment{3, 7}, n);
      table.add_row({"k=" + std::to_string(k) + " s=" + std::to_string(s),
                     TextTable::fixed(ident, 2), TextTable::fixed(a21, 2),
                     TextTable::fixed(a37, 2)});
    }
  }
  emit(table, csv);
  std::cout << "\n(Alignment coefficients > 1 pay the rank-query overhead; identity\n"
               " sections keep the pure O(k + log) Figure-5 cost.)\n";
  return 0;
}
