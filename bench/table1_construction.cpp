// Reproduces Table 1 of the paper: execution time in microseconds for
// constructing the memory-gap table (the AM sequence), comparing the
// lattice algorithm (this paper) against the sorting-based method of
// Chatterjee et al., on the paper's exact parameter grid:
//
//   p = 32, l = 0, k in {4 .. 512} (powers of two),
//   s in {7, 99, k+1, pk-1, pk+1}.
//
// Every processor runs the complete algorithm with its own processor
// number; reported times are maxima over the 32 processors, matching the
// paper's measurement discipline. Before timing, both methods' outputs are
// verified to be identical.
#include <cstdlib>

#include "bench_common.hpp"
#include "cyclick/baselines/chatterjee.hpp"
#include "cyclick/core/lattice_addresser.hpp"

namespace {

using namespace cyclick;
using namespace cyclick::bench;

struct StrideCase {
  const char* label;
  i64 value;  // -1 => k+1, -2 => pk-1, -3 => pk+1 (resolved per k)
};

i64 resolve_stride(const StrideCase& c, i64 k, i64 pk) {
  switch (c.value) {
    case -1: return k + 1;
    case -2: return pk - 1;
    case -3: return pk + 1;
    default: return c.value;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = want_csv(argc, argv);
  const bool json = want_json(argc, argv);
  const obs::CliOptions obs_opt = obs_options(argc, argv);
  const i64 p = 32;
  const int repeats = 200;
  const StrideCase strides[] = {
      {"s=7", 7}, {"s=99", 99}, {"s=k+1", -1}, {"s=pk-1", -2}, {"s=pk+1", -3}};

  std::cout << "Table 1: gap-table construction time (microseconds), p = " << p
            << ", l = 0; max over all processors, best of " << repeats << " runs\n\n";

  TextTable table({"Block size", "s=7 Lat", "s=7 Sort", "s=99 Lat", "s=99 Sort",
                   "s=k+1 Lat", "s=k+1 Sort", "s=pk-1 Lat", "s=pk-1 Sort", "s=pk+1 Lat",
                   "s=pk+1 Sort"});

  for (i64 k = 4; k <= 512; k *= 2) {
    const BlockCyclic dist(p, k);
    const i64 pk = p * k;
    std::vector<std::string> row{"k=" + std::to_string(k)};
    for (const StrideCase& sc : strides) {
      const i64 s = resolve_stride(sc, k, pk);

      // Self-check: both methods must produce identical patterns.
      for (i64 m = 0; m < p; ++m) {
        if (compute_access_pattern(dist, 0, s, m) != chatterjee_access_pattern(dist, 0, s, m)) {
          std::cerr << "VERIFICATION FAILED at k=" << k << " s=" << s << " m=" << m << "\n";
          return 1;
        }
      }

      const double lattice_us = max_over_ranks_us("table1.lattice_us", p, repeats, [&](i64 m) {
        const AccessPattern pat = compute_access_pattern(dist, 0, s, m);
        do_not_optimize(pat.gaps.data());
      });
      const double sorting_us = max_over_ranks_us("table1.sorting_us", p, repeats, [&](i64 m) {
        const AccessPattern pat = chatterjee_access_pattern(dist, 0, s, m);
        do_not_optimize(pat.gaps.data());
      });
      row.push_back(TextTable::fixed(lattice_us, 2));
      row.push_back(TextTable::fixed(sorting_us, 2));
    }
    table.add_row(std::move(row));
  }
  emit(table, csv);
  if (json) {
    JsonWriter w("BENCH_table1.json");
    w.add_table("table1_construction", table);
    w.write();
  }
  emit_obs(obs_opt);
  std::cout << "\n(Lat = lattice algorithm of this paper; Sort = Chatterjee et al.;"
               "\n paper ran on an iPSC/860, so absolute values differ — compare shapes:"
               "\n Sort/Lat ratio should grow with k and exceed ~4x by k = 512.)\n";
  return 0;
}
