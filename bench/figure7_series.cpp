// Reproduces Figure 7 of the paper: the s = 7 column of Table 1 as a series
// over block size k, for plotting (the paper plots Lattice vs Sorting
// construction time against k and shows the sorting curve growing away from
// the lattice curve). Emits both the series and a crude ASCII rendering.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "cyclick/baselines/chatterjee.hpp"
#include "cyclick/core/lattice_addresser.hpp"

int main(int argc, char** argv) {
  using namespace cyclick;
  using namespace cyclick::bench;
  const bool csv = want_csv(argc, argv);
  const bool json = want_json(argc, argv);
  const obs::CliOptions obs_opt = obs_options(argc, argv);

  const i64 p = 32;
  const i64 s = 7;
  const int repeats = 200;

  std::cout << "Figure 7: construction time vs block size, s = " << s << ", p = " << p
            << "\n\n";

  std::vector<i64> ks;
  std::vector<double> lat, sort;
  for (i64 k = 4; k <= 512; k *= 2) {
    const BlockCyclic dist(p, k);
    for (i64 m = 0; m < p; ++m) {
      if (compute_access_pattern(dist, 0, s, m) != chatterjee_access_pattern(dist, 0, s, m)) {
        std::cerr << "VERIFICATION FAILED at k=" << k << " m=" << m << "\n";
        return 1;
      }
    }
    ks.push_back(k);
    lat.push_back(max_over_ranks_us("figure7.lattice_us", p, repeats, [&](i64 m) {
      do_not_optimize(compute_access_pattern(dist, 0, s, m).gaps.data());
    }));
    sort.push_back(max_over_ranks_us("figure7.sorting_us", p, repeats, [&](i64 m) {
      do_not_optimize(chatterjee_access_pattern(dist, 0, s, m).gaps.data());
    }));
  }

  TextTable table({"k", "Lattice (us)", "Sorting (us)", "Sorting/Lattice"});
  for (std::size_t i = 0; i < ks.size(); ++i)
    table.add_row({TextTable::num(ks[i]), TextTable::fixed(lat[i], 2),
                   TextTable::fixed(sort[i], 2), TextTable::fixed(sort[i] / lat[i], 2)});
  emit(table, csv);
  if (json) {
    JsonWriter w("BENCH_figure7.json");
    w.add_table("figure7_series", table);
    w.write();
  }
  emit_obs(obs_opt);

  if (!csv) {
    // ASCII plot: one row per k, bar length proportional to time.
    const double peak = *std::max_element(sort.begin(), sort.end());
    const int width = 60;
    std::cout << "\n  (L = lattice, S = sorting; bar width ~ time)\n";
    for (std::size_t i = 0; i < ks.size(); ++i) {
      const int lw = std::max(1, static_cast<int>(std::lround(lat[i] / peak * width)));
      const int sw = std::max(1, static_cast<int>(std::lround(sort[i] / peak * width)));
      std::cout << "  k=" << ks[i] << (ks[i] < 10 ? "   " : ks[i] < 100 ? "  " : " ")
                << "L " << std::string(static_cast<std::size_t>(lw), '#') << "\n"
                << "        S " << std::string(static_cast<std::size_t>(sw), '#') << "\n";
    }
  }
  return 0;
}
