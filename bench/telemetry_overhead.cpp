// Telemetry overhead gate: times the instrumented addresser-construction
// hot loop (the code path carrying CYCLICK_COUNT / CYCLICK_TIME_SCOPE) with
// collection *disabled* — the default — and compares against a baseline
// from a -DCYCLICK_NO_TELEMETRY=ON build of the same source.
//
//   telemetry_overhead [--json]                 measure, write BENCH_telemetry_overhead.json
//   telemetry_overhead --baseline=FILE.json     additionally compare against FILE
//                                               (a previous --json output) and exit
//                                               nonzero if slower by more than the
//                                               tolerance (default 1%)
//   telemetry_overhead --tolerance=0.05         override the tolerance
//
// CI builds the tree twice (telemetry compiled in but disabled vs compiled
// out), runs the NO_TELEMETRY binary with --json to produce the baseline,
// then runs this build with --baseline= pointing at it: disabled telemetry
// must cost no more than a never-taken branch per probe.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "bench_common.hpp"
#include "cyclick/core/lattice_addresser.hpp"

namespace {

using namespace cyclick;
using namespace cyclick::bench;

/// One pass of the instrumented hot loop: build gap tables across the
/// paper's parameter grid. Returns a sink value so nothing folds away.
i64 hot_loop(i64 p) {
  i64 sink = 0;
  for (i64 k = 4; k <= 256; k *= 4) {
    const BlockCyclic dist(p, k);
    for (const i64 s : {i64{7}, i64{99}, k + 1, p * k - 1}) {
      for (i64 m = 0; m < p; ++m) {
        const AccessPattern pat = compute_access_pattern(dist, 0, s, m);
        sink += pat.length;
        do_not_optimize(pat.gaps.data());
      }
    }
  }
  return sink;
}

/// Pull the first "us": <number> out of a previous --json output. The file
/// is our own JsonWriter's format, so a string scan is sufficient.
double baseline_us_from(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "telemetry_overhead: cannot open baseline " << path << "\n";
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::size_t key = text.find("\"us\":");
  if (key == std::string::npos) {
    std::cerr << "telemetry_overhead: no \"us\" field in " << path << "\n";
    std::exit(2);
  }
  return std::strtod(text.c_str() + key + 5, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = want_csv(argc, argv);
  const bool json = want_json(argc, argv);
  std::string baseline_path;
  double tolerance = 0.01;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--baseline=", 0) == 0) baseline_path = arg.substr(11);
    if (arg.rfind("--tolerance=", 0) == 0) tolerance = std::strtod(arg.c_str() + 12, nullptr);
  }

  const i64 p = 32;
  const int repeats = 40;

  std::cout << "Telemetry overhead: addresser construction sweep, p = " << p
            << ", telemetry "
            << (obs::compiled_in() ? "compiled in (disabled)" : "compiled out")
            << ", best of " << repeats << "\n\n";
  CYCLICK_REQUIRE(!obs::enabled(), "gate must measure the disabled state");

  // Warm up (first call initializes metric statics when compiled in).
  do_not_optimize(hot_loop(p));
  const double us = time_best_us(repeats, [&] { do_not_optimize(hot_loop(p)); });

  TextTable table({"metric", "us", "telemetry"});
  table.add_row({"addresser_sweep", TextTable::fixed(us, 2),
                 obs::compiled_in() ? "disabled" : "compiled_out"});
  emit(table, csv);
  if (json) {
    JsonWriter w("BENCH_telemetry_overhead.json");
    w.add_table("telemetry_overhead", table);
    w.write();
  }

  if (!baseline_path.empty()) {
    const double base = baseline_us_from(baseline_path);
    const double ratio = us / base;
    std::cout << "baseline " << base << " us, current " << us << " us, ratio "
              << TextTable::fixed(ratio, 4) << " (tolerance " << tolerance << ")\n";
    if (ratio > 1.0 + tolerance) {
      std::cerr << "GATE FAILED: disabled telemetry is " << TextTable::fixed(ratio, 4)
                << "x the telemetry-free baseline (allowed 1 + " << tolerance << ")\n";
      return 1;
    }
  }
  return 0;
}
