// Redistribution-exchange benchmark: the figure-7-shaped sweep over
// (k_src, k_dst) block-size pairs, executed through the redistribution
// layer on two backends per pair:
//
//   inproc  the in-process executors — build the scheduled plan once,
//           execute it repeatedly (warm arena), report best-of-R wall time
//           for both the sequential arena shape (seq_us, the PR 8
//           baseline) and the fused single-pass pipeline (pipe_us), plus
//           their ratio (speedup) and the fused bytes/s;
//   sim     the discrete-event mesh — replay the plan's wire traffic in
//           rotation order and report the *predicted* phase time and the
//           bytes/s the cost model credits the exchange.
//
// The perf-smoke CI job gates speedup >= 1.5 on the decorrelated
// (1,64)/(64,1) rows: those channels are contiguous on exactly one side,
// so the fused executor halves the four memory passes of pack+unpack.
//
// (The proc backend runs the same schedule; its parity is gated by
// net_process_test and the CI example diffs rather than timed here.)
// Every row also carries the schedule's phase count and remote fraction,
// so the table records how the rotation's cost tracks communication
// volume across the redistribution grid.
//
// `--incast` switches to the scheduling study the simulation CI job gates
// on: a full cyclic(1) -> cyclic(p) all-to-all at p = 1024 (override with
// --ranks=N), replayed twice through identical simulated meshes — naive
// posting order (every sender's round-f message targets receiver f: a
// p-way incast per round) versus the rotated schedule (round f is a
// perfect matching). Per-link bytes are identical by construction, so the
// schedules differ exactly in receiver congestion: the naive order's peak
// concurrent in-network messages to one rank must be >= 2x the rotated
// order's, and the process exits nonzero when it is not.
//
// `--csv` prints machine-readable rows; `--json` writes
// BENCH_redistribution_exchange.json for the perf trajectory.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cyclick/runtime/redistribute.hpp"
#include "cyclick/runtime/section_ops.hpp"
#include "cyclick/sim/sim_transport.hpp"

namespace {

using namespace cyclick;
using namespace cyclick::bench;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

int run_sweep(i64 n, i64 p, bool csv, bool json) {
  std::cout << "Redistribution exchange dst(cyclic(k_dst)) <- src(cyclic(k_src)), n=" << n
            << " doubles, p=" << p << "\n\n";

  const SpmdExecutor exec(p);
  const RegularSection whole{0, n - 1, 1};
  const double total_mb = static_cast<double>(n * 8) / (1024.0 * 1024.0);
  const int repeats = 5;

  TextTable table({"k_src", "k_dst", "phases", "messages", "remote_frac", "seq_us",
                   "pipe_us", "speedup", "pipe_MB_per_s", "sim_virtual_us",
                   "sim_MB_per_s"});

  for (const i64 k1 : {1, 2, 3, 5, 7, 64}) {
    DistributedArray<double> src(BlockCyclic(p, k1), n);
    for (const i64 k2 : {1, 2, 3, 5, 7, 64}) {
      DistributedArray<double> dst(BlockCyclic(p, k2), n);
      const RedistributionPlan plan = build_redistribution_plan(src, whole, dst, whole, exec);
      const double frac =
          static_cast<double>(plan.remote_elements()) / static_cast<double>(n);

      const double seq_us = time_best_us(
          repeats, [&] { execute_copy_plan_sequential(plan.comm, src, dst, exec); });
      const double pipe_us = time_best_us(
          repeats, [&] { execute_copy_plan_fused(plan.comm, src, dst, exec); });

      // Predicted wire time: one fresh mesh per measurement so endpoint
      // and link clocks start at zero.
      sim::SimTransport mesh(p, sim::SimParams{});
      replay_plan_traffic(plan.comm, mesh, ScheduleOrder::kRotated, sizeof(double));
      const double sim_us = static_cast<double>(mesh.virtual_ns()) / 1000.0;
      const double remote_mb = static_cast<double>(plan.remote_elements() * 8) /
                               (1024.0 * 1024.0);

      table.add_row({std::to_string(k1), std::to_string(k2), std::to_string(plan.phases),
                     std::to_string(plan.message_count()), fmt(frac), fmt(seq_us),
                     fmt(pipe_us), fmt(pipe_us > 0.0 ? seq_us / pipe_us : 0.0),
                     fmt(total_mb / (pipe_us / 1e6)),
                     fmt(sim_us),
                     sim_us > 0.0 ? fmt(remote_mb / (sim_us / 1e6)) : "-"});
    }
  }

  emit(table, csv);
  if (json) {
    JsonWriter w("BENCH_redistribution_exchange.json");
    w.add_table("redistribution_exchange", table);
    w.write();
  }
  return 0;
}

int run_incast(i64 p, bool csv, bool json) {
  // Full all-to-all: cyclic(1) -> cyclic(p) with one block round per rank
  // makes every (receiver, sender) channel nonempty.
  const i64 n = p * p;
  std::cout << "Incast study: cyclic(1) -> cyclic(" << p << ") all-to-all, p=" << p
            << ", n=" << n << " doubles, naive vs rotated posting order\n\n";

  const SpmdExecutor exec(p);
  DistributedArray<double> src(BlockCyclic(p, 1), n);
  DistributedArray<double> dst(BlockCyclic(p, p), n);
  const CommPlan plan = build_copy_plan(src, {0, n - 1, 1}, dst, {0, n - 1, 1}, exec);

  TextTable table({"order", "messages", "bytes", "max_in_flight", "link_balance",
                   "virtual_us"});
  i64 naive_peak = 0, rotated_peak = 0;
  for (const auto order : {ScheduleOrder::kNaive, ScheduleOrder::kRotated}) {
    sim::SimTransport mesh(p, sim::SimParams{});
    replay_plan_traffic(plan, mesh, order, sizeof(double));
    const auto rep = mesh.report();
    (order == ScheduleOrder::kNaive ? naive_peak : rotated_peak) = rep.max_in_flight;
    table.add_row({order == ScheduleOrder::kNaive ? "naive" : "rotated",
                   std::to_string(rep.messages), std::to_string(rep.bytes),
                   std::to_string(rep.max_in_flight), fmt(rep.balance()),
                   fmt(static_cast<double>(rep.virtual_ns) / 1000.0)});
  }

  emit(table, csv);
  if (json) {
    JsonWriter w("BENCH_redistribution_exchange.json");
    w.add_table("incast", table);
    w.write();
  }

  const double ratio = rotated_peak > 0
                           ? static_cast<double>(naive_peak) / static_cast<double>(rotated_peak)
                           : 0.0;
  std::cout << "\nincast ratio (naive / rotated peak in-flight): " << fmt(ratio) << "\n";
  if (naive_peak < 2 * rotated_peak) {
    std::cout << "FAIL: rotation did not improve peak receiver congestion >= 2x\n";
    return 1;
  }
  std::cout << "PASS: rotated schedule bounds incast >= 2x better than naive order\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = want_csv(argc, argv);
  const bool json = want_json(argc, argv);
  const obs::CliOptions obs_opt = obs_options(argc, argv);
  bool incast = false;
  i64 n = i64{1} << 16;
  i64 ranks = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--incast") incast = true;
    if (arg.rfind("--ranks=", 0) == 0) ranks = std::atoll(arg.c_str() + 8);
    if (arg.rfind("--n=", 0) == 0) n = std::atoll(arg.c_str() + 4);
  }

  const int rc = incast ? run_incast(ranks > 0 ? ranks : 1024, csv, json)
                        : run_sweep(n, ranks > 0 ? ranks : 32, csv, json);
  emit_obs(obs_opt);
  return rc;
}
