// Ablation G: enumeration-order tradeoff (paper §7 vs its own method).
// The virtual-cyclic scheme of Gupta et al. traverses a processor's share
// offset-class by offset-class with constant strides — fast, but NOT in
// increasing index order, so it only serves order-insensitive statements.
// This harness measures an order-insensitive reduction under (a) the
// lattice method's in-order table walk, (b) the table-free iterator, and
// (c) the virtual-cyclic class walk, quantifying what the ordering
// guarantee costs and what the lattice algorithm buys relative to it.
#include "bench_common.hpp"
#include "cyclick/baselines/gupta_virtual.hpp"
#include "cyclick/codegen/node_loop.hpp"

namespace {

using namespace cyclick;
using namespace cyclick::bench;

constexpr i64 kAccessesPerProc = 10'000;

}  // namespace

int main(int argc, char** argv) {
  const bool csv = want_csv(argc, argv);
  const i64 p = 32;
  const int repeats = 15;

  std::cout << "Ablation G: order-insensitive sum over a processor's share —\n"
            << "in-order table walk vs table-free iterator vs virtual-cyclic classes\n"
            << "(" << kAccessesPerProc << " elements per processor)\n\n";

  TextTable table({"Config", "table 8(b) (us)", "table-free (us)", "virtual-cyclic (us)"});
  for (const i64 k : {4, 32, 256}) {
    for (const i64 s : {3, 15, 99}) {
      const BlockCyclic dist(p, k);
      const RegularSection sec{0, (kAccessesPerProc * p - 1) * s, s};
      const i64 n = sec.upper + 1;
      std::vector<double> buffer(static_cast<std::size_t>(dist.local_capacity(n)), 1.0);

      // Verify all traversals see the same element count and sum.
      for (const i64 m : {i64{0}, p - 1}) {
        double s1 = 0.0, s3 = 0.0;
        i64 c1 = 0, c3 = 0;
        run_section_node_code(CodeShape::kConditionalReset, dist, sec, m,
                              std::span<double>(buffer), [&](double& x) {
                                s1 += x;
                                ++c1;
                              });
        for_each_virtual_cyclic(dist, sec, m, [&](i64, i64 la) {
          s3 += buffer[static_cast<std::size_t>(la)];
          ++c3;
        });
        if (c1 != c3 || s1 != s3) {
          std::cerr << "VERIFICATION FAILED k=" << k << " s=" << s << " m=" << m << "\n";
          return 1;
        }
      }

      const double t_table = max_over_ranks_us(p, repeats, [&](i64 m) {
        double acc = 0.0;
        run_section_node_code(CodeShape::kConditionalReset, dist, sec, m,
                              std::span<double>(buffer), [&](double& x) { acc += x; });
        do_not_optimize(acc);
      });
      const auto last_of = [&](i64 m) {
        const auto lg = find_last(dist, sec, m);
        return lg ? dist.local_index(*lg) : -1;
      };
      const double t_free = max_over_ranks_us(p, repeats, [&](i64 m) {
        double acc = 0.0;
        run_table_free(dist, sec.lower, sec.stride, m, std::span<double>(buffer), last_of(m),
                       [&](double& x) { acc += x; });
        do_not_optimize(acc);
      });
      const double t_virtual = max_over_ranks_us(p, repeats, [&](i64 m) {
        double acc = 0.0;
        for_each_virtual_cyclic(dist, sec, m,
                                [&](i64, i64 la) { acc += buffer[static_cast<std::size_t>(la)]; });
        do_not_optimize(acc);
      });
      table.add_row({"k=" + std::to_string(k) + " s=" + std::to_string(s),
                     TextTable::fixed(t_table, 1), TextTable::fixed(t_free, 1),
                     TextTable::fixed(t_virtual, 1)});
    }
  }
  emit(table, csv);
  std::cout << "\n(Virtual-cyclic trades away index order for constant-stride class\n"
               " walks; the lattice methods deliver index order at comparable cost —\n"
               " the gap the paper's contribution closes.)\n";
  return 0;
}
