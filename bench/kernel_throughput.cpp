// Kernel-layer throughput benchmark: for each kernel class (run-copy,
// strided, periodic-gap), compare the compiled bulk gather against the
// scalar AM gap-table walk — make_pattern()'s start + serially dependent
// cyclic gap chain, the node-code shape every consumer used before the
// kernel layer — across element sizes 1/4/8/16.
//
// Timing is the paper's max-over-ranks discipline (best of R repeats per
// rank). `--json` writes BENCH_kernel_throughput.json; the CI perf-smoke
// gate asserts the esize-8 run-copy and strided speedup rows there.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cyclick/core/engine.hpp"
#include "cyclick/core/kernels.hpp"

namespace {

using namespace cyclick;
using namespace cyclick::bench;

struct Config {
  const char* label;
  i64 p, k, s, accesses;
};

// One representative section shape per kernel class. The strided class
// gets two feeders: pure-cyclic (local step 3 — several elements per cache
// line, so address arithmetic is the bottleneck) and fixed-step (local
// step 8 — one cache line per element, memory-latency bound, reported for
// honesty). Both periodic-gap feeders — ICS'94-applicable and general —
// are covered too.
// Sizes keep per-rank working sets cache-resident (except strided-fs,
// deliberately sized to stream) so the rows measure address-sequence cost,
// not DRAM bandwidth.
const Config kConfigs[] = {
    {"run-copy", 16, 64, 1, 512'000},
    {"strided", 16, 1, 3, 256'000},
    {"strided-fs", 16, 8, 16, 1'000'000},
    {"periodic-gap", 16, 64, 35, 128'000},
    {"periodic-gap-gl", 16, 64, 67, 128'000},
};

// 16-byte lowerable element (alignof 8): a complex-double stand-in.
struct Pair {
  double re, im;
  friend bool operator==(const Pair&, const Pair&) = default;
};
static_assert(sizeof(Pair) == 16 && kdetail::lowerable_v<Pair>);

template <typename T>
T make_value(i64 i) {
  if constexpr (std::is_same_v<T, Pair>) {
    return Pair{static_cast<double>(i), static_cast<double>(i) * 0.5};
  } else {
    return static_cast<T>(i & 0x7f);
  }
}

// The pre-kernel scalar walk: one AM-table gap per element, each address
// serially dependent on the previous (`la += gaps[gi]`).
template <typename T>
void gather_am_walk(const AccessPattern& pat, i64 n, const T* local, T* out) {
  i64 la = pat.start_local;
  std::size_t gi = 0;
  const std::size_t glen = pat.gaps.size();
  for (i64 i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] = local[static_cast<std::size_t>(la)];
    la += pat.gaps[gi];
    if (++gi == glen) gi = 0;
  }
}

struct Row {
  KernelClass cls = KernelClass::kScalar;
  double base_us = 0.0;
  double kern_us = 0.0;
  i64 base_count = 0;  ///< element count of the slowest-baseline rank
  i64 kern_count = 0;  ///< element count of the slowest-kernel rank
  bool ok = true;
};

template <typename T>
Row run_config(const Config& c, int repeats) {
  Row row;
  const BlockCyclic dist(c.p, c.k);
  const RegularSection sec{0, (c.accesses - 1) * c.s, c.s};
  const i64 size = sec.last() + 1;
  for (i64 m = 0; m < c.p; ++m) {
    const SectionPlan plan = AddressEngine::global().plan(dist, sec, m);
    if (plan.empty()) continue;
    const KernelPlan kp = compile_kernel(plan);
    if (!kp.bulk()) {
      row.ok = false;
      continue;
    }
    row.cls = kp.cls();
    const i64 n = kp.count();
    const AccessPattern pat = plan.make_pattern();
    std::vector<T> local(static_cast<std::size_t>(dist.local_size(m, size)));
    for (std::size_t i = 0; i < local.size(); ++i) local[i] = make_value<T>(static_cast<i64>(i));
    std::vector<T> base_out(static_cast<std::size_t>(n)), kern_out(static_cast<std::size_t>(n));

    // Correctness gate before timing: the kernel gather must densify the
    // exact element sequence the scalar walk produces.
    gather_am_walk(pat, n, local.data(), base_out.data());
    kernel_gather(kp, local.data(), kern_out.data());
    if (base_out != kern_out) {
      std::cerr << "VERIFICATION FAILED: " << c.label << " esize " << sizeof(T) << " rank "
                << m << "\n";
      row.ok = false;
      continue;
    }

    const double bt = time_best_us(repeats, [&] {
      gather_am_walk(pat, n, local.data(), base_out.data());
      do_not_optimize(base_out.data());
    });
    const double kt = time_best_us(repeats, [&] {
      kernel_gather(kp, local.data(), kern_out.data());
      do_not_optimize(kern_out.data());
    });
    if (bt > row.base_us) {
      row.base_us = bt;
      row.base_count = n;
    }
    if (kt > row.kern_us) {
      row.kern_us = kt;
      row.kern_count = n;
    }
  }
  return row;
}

/// Bytes moved per microsecond == MB/s.
double mbps(i64 count, std::size_t esize, double us) {
  return static_cast<double>(count) * static_cast<double>(esize) / us;
}

template <typename T>
void add_row(TextTable& table, const Config& c, int repeats, bool& ok) {
  const Row r = run_config<T>(c, repeats);
  ok = ok && r.ok;
  table.add_row({c.label, kernel_class_name(r.cls), TextTable::num(static_cast<i64>(sizeof(T))),
                 TextTable::num(c.p), TextTable::num(c.k), TextTable::num(c.s),
                 TextTable::num(c.accesses), TextTable::fixed(r.base_us, 1),
                 TextTable::fixed(r.kern_us, 1),
                 TextTable::fixed(mbps(r.base_count, sizeof(T), r.base_us), 0),
                 TextTable::fixed(mbps(r.kern_count, sizeof(T), r.kern_us), 0),
                 TextTable::fixed(r.base_us / r.kern_us, 2)});
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = want_csv(argc, argv);
  const bool json = want_json(argc, argv);
  const obs::CliOptions obs_opt = obs_options(argc, argv);
  const int repeats = 7;

  std::cout << "Kernel gather throughput vs scalar AM gap-table walk "
               "(max over ranks, best of "
            << repeats << ")\n"
            << "SIMD variants active: " << (kdetail::simd_active() ? "yes" : "no") << "\n\n";

  TextTable table({"label", "kernel", "esize", "p", "k", "s", "n", "scalar_us", "kernel_us",
                   "scalar_mbps", "kernel_mbps", "speedup"});
  bool ok = true;
  for (const Config& c : kConfigs) {
    add_row<unsigned char>(table, c, repeats, ok);
    add_row<float>(table, c, repeats, ok);
    add_row<double>(table, c, repeats, ok);
    add_row<Pair>(table, c, repeats, ok);
  }

  emit(table, csv);
  if (json) {
    JsonWriter w("BENCH_kernel_throughput.json");
    w.add_table("kernel_throughput", table);
    w.write();
  }
  emit_obs(obs_opt);
  return ok ? 0 : 1;
}
