// Transport throughput: messages/s and MB/s per backend across payload
// sizes.
//
// For each backend (inproc: mutex-guarded deques; socket: loopback mesh —
// real kernel sockets, framing, checksums, writer/reader threads) and each
// payload size from 64 B to 1 MiB, rank 0 posts a burst of messages to
// rank 1 and rank 1 drains them; the measured wall time covers the full
// delivery path, since the socket backend's recv blocks until the reader
// thread has validated and demultiplexed every frame. Reported per
// configuration: burst size, total payload volume, best-of-R time, and the
// derived msgs/s and MB/s.
//
// The sim backend measures the *simulator's* throughput — how many
// discrete events per wall-clock second the engine retires (events_per_s;
// "-" for the real transports) — since its delivery path moves no real
// network bytes.
//
// `--csv` prints machine-readable rows; `--json` writes
// BENCH_transport_throughput.json for the perf trajectory.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "cyclick/net/socket_transport.hpp"
#include "cyclick/runtime/transport.hpp"
#include "cyclick/sim/sim_transport.hpp"

namespace {

using namespace cyclick;
using namespace cyclick::bench;

std::unique_ptr<Transport> make_backend(const std::string& name, i64 ranks) {
  if (name == "inproc") return std::make_unique<InProcessTransport>(ranks);
  if (name == "sim") return std::make_unique<sim::SimTransport>(ranks, sim::SimParams{});
  return net::SocketTransport::loopback_mesh(ranks);
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = want_csv(argc, argv);
  const bool json = want_json(argc, argv);
  const obs::CliOptions obs_opt = obs_options(argc, argv);
  const int repeats = 5;

  std::cout << "Transport throughput: burst of payloads rank 0 -> rank 1, "
               "drained by blocking recv\n\n";

  TextTable table({"backend", "payload_B", "messages", "total_MB", "best_us",
                   "msgs_per_s", "MB_per_s", "events_per_s"});

  for (const char* backend : {"inproc", "socket", "sim"}) {
    for (const i64 payload_bytes :
         {i64{64}, i64{1} << 10, i64{16} << 10, i64{256} << 10, i64{1} << 20}) {
      // Size each burst for ~16 MiB of traffic so small payloads measure
      // per-message overhead and large ones measure streaming bandwidth,
      // without letting any configuration run away.
      const i64 messages = std::clamp<i64>((i64{16} << 20) / payload_bytes, 16, 8192);
      const std::vector<std::byte> payload(static_cast<std::size_t>(payload_bytes),
                                           std::byte{0x42});
      const auto tr = make_backend(backend, 2);
      const double best_us = time_best_us(repeats, [&] {
        for (i64 i = 0; i < messages; ++i) tr->send(0, 1, payload);
        for (i64 i = 0; i < messages; ++i) (void)tr->recv(1, 0);
      });
      const double secs = best_us / 1e6;
      const double total_mb =
          static_cast<double>(messages * payload_bytes) / (1024.0 * 1024.0);
      // Simulator-specific throughput: every message retires two discrete
      // events (depart + arrive), so the engine's event rate over the best
      // run is 2 * messages / time.
      const std::string events_per_s =
          dynamic_cast<sim::SimTransport*>(tr.get()) != nullptr
              ? fmt(static_cast<double>(2 * messages) / secs)
              : "-";
      table.add_row({backend, std::to_string(payload_bytes), std::to_string(messages),
                     fmt(total_mb), fmt(best_us), fmt(static_cast<double>(messages) / secs),
                     fmt(total_mb / secs), events_per_s});
    }
  }

  emit(table, csv);

  // Nonblocking path: the same burst drained through pre-posted irecvs on
  // a CompletionQueue at pipeline depth W — the primitive the pipelined
  // redistribution executors are built on. W=1 is the degenerate window
  // (post, wait, repost: the blocking shape with queue overhead); deeper
  // windows let the socket reader thread and the sim's event engine retire
  // receives ahead of the consumer.
  std::cout << "\nNonblocking path: windowed irecv drain, 4 KiB payloads\n\n";
  TextTable nb({"backend", "payload_B", "window", "messages", "best_us", "msgs_per_s"});
  for (const char* backend : {"inproc", "socket", "sim"}) {
    const i64 payload_bytes = i64{4} << 10;
    const i64 messages = 2048;
    const std::vector<std::byte> payload(static_cast<std::size_t>(payload_bytes),
                                         std::byte{0x42});
    for (const i64 window : {i64{1}, i64{2}, i64{4}, i64{8}}) {
      const auto tr = make_backend(backend, 2);
      const double best_us = time_best_us(repeats, [&] {
        for (i64 i = 0; i < messages; ++i)
          tr->isend(0, 1, std::vector<std::byte>(payload), nullptr, i);
        CompletionQueue cq(window);
        i64 posted = 0;
        for (; posted < std::min(window, messages); ++posted) tr->irecv(1, 0, cq, posted);
        for (i64 reaped = 0; reaped < messages; ++reaped) {
          (void)cq.wait(tr->recv_timeout_ms());
          if (posted < messages) tr->irecv(1, 0, cq, posted++);
        }
      });
      const double secs = best_us / 1e6;
      nb.add_row({backend, std::to_string(payload_bytes), std::to_string(window),
                  std::to_string(messages), fmt(best_us),
                  fmt(static_cast<double>(messages) / secs)});
    }
  }
  emit(nb, csv);

  if (json) {
    JsonWriter w("BENCH_transport_throughput.json");
    w.add_table("transport_throughput", table);
    w.add_table("nonblocking_window", nb);
    w.write();
  }
  emit_obs(obs_opt);
  return 0;
}
