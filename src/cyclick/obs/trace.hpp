// Phase spans and chrome://tracing export.
//
// CYCLICK_SPAN("plan_build", rank) opens an RAII span; its destructor
// appends one complete event (name, tid = rank, begin, duration) to a
// per-rank-slot ring in the process-wide TraceSink. Rings are append-only
// up to a fixed capacity (earliest events win — a trace of an iterative
// program must keep the one-time setup phases); overflow is counted, not
// silently discarded. Writers are lock-free: each event claims its index
// with a relaxed fetch_add, and rank slots shard contention the same way
// metric slots do.
//
// Export (write_chrome_trace) produces the chrome://tracing /
// ui.perfetto.dev JSON object format: one "X" (complete) event per span,
// one process, one chrome "thread" per rank. Export is intended for
// quiescent sinks (after SpmdExecutor::run has joined all rank threads);
// exporting concurrently with active spans may miss in-flight events.
//
// Span names must be string literals (the sink stores the pointer).
#pragma once

#include <array>
#include <atomic>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cyclick/obs/metrics.hpp"

namespace cyclick::obs {

/// tid used for spans recorded by the driving thread rather than a
/// particular rank (DSL statements, whole SPMD phases).
inline constexpr i64 kMainTid = -1;

/// One completed span.
struct TraceEvent {
  const char* name = nullptr;
  i64 tid = 0;     ///< rank, or kMainTid
  i64 ts_ns = 0;   ///< begin, nanoseconds since process start
  i64 dur_ns = 0;  ///< duration in nanoseconds
};

/// Aggregated per-name span totals (the report's "spans" section).
struct SpanTotal {
  std::string name;
  i64 count = 0;
  double total_us = 0.0;
};

class TraceSink {
 public:
  static TraceSink& global();

  /// Events kept per rank slot. Must be called while the sink is empty
  /// (before the first span or after clear()).
  void set_capacity(i64 events_per_rank);
  [[nodiscard]] i64 capacity() const noexcept { return capacity_; }

  /// Append a completed span. Lock-free; drops (and counts) once the
  /// rank slot's ring is full.
  void complete(const char* name, i64 tid, i64 begin_ns, i64 end_ns) noexcept;

  /// Total events currently recorded / dropped across all rank slots.
  [[nodiscard]] i64 event_count() const noexcept;
  [[nodiscard]] i64 dropped_count() const noexcept;

  /// All recorded events, ordered by begin timestamp.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Per-name count and total duration, ordered by total descending.
  [[nodiscard]] std::vector<SpanTotal> span_totals() const;

  /// Write the chrome://tracing JSON object format.
  void write_chrome_trace(std::ostream& os) const;

  /// Drop all recorded events (bench/test isolation).
  void clear();

 private:
  struct Ring {
    explicit Ring(i64 capacity) : events(static_cast<std::size_t>(capacity)) {}
    std::vector<TraceEvent> events;
    std::atomic<i64> next{0};  ///< claimed indices; may exceed events.size()
  };

  Ring* ring_for(i64 tid) noexcept;

  i64 capacity_ = 1 << 15;
  std::array<std::atomic<Ring*>, static_cast<std::size_t>(kRankSlots)> rings_{};
};

#if defined(CYCLICK_NO_TELEMETRY)
class SpanRecorder {
 public:
  constexpr SpanRecorder(const char*, i64) noexcept {}
};
#else
/// RAII span: reads the clock only when telemetry is enabled at entry.
class SpanRecorder {
 public:
  SpanRecorder(const char* name, i64 tid) noexcept {
    if (enabled()) {
      name_ = name;
      tid_ = tid;
      begin_ns_ = now_ns();
    }
  }
  ~SpanRecorder() {
    if (name_ != nullptr)
      TraceSink::global().complete(name_, tid_, begin_ns_, now_ns());
  }
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

 private:
  const char* name_ = nullptr;
  i64 tid_ = 0;
  i64 begin_ns_ = 0;
};
#endif

}  // namespace cyclick::obs

/// Open a span covering the rest of the enclosing scope. `name` must be a
/// string literal; `rank` becomes the chrome-trace thread id (use
/// cyclick::obs::kMainTid for driver-side work).
#define CYCLICK_SPAN(name, rank)                                          \
  ::cyclick::obs::SpanRecorder CYCLICK_OBS_CAT(cyclick_obs_span_,         \
                                               __LINE__)((name), (rank))
