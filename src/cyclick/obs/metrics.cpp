#include "cyclick/obs/metrics.hpp"

namespace cyclick::obs {

i64 now_ns() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point t0 = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
      .count();
}

Counter::Counter(std::string name) : name_(std::move(name)) {}

i64 Counter::total() const noexcept {
  i64 sum = 0;
#if !defined(CYCLICK_NO_TELEMETRY)
  for (const Slot& s : slots_) sum += s.v.load(std::memory_order_relaxed);
#endif
  return sum;
}

std::vector<i64> Counter::per_rank(i64 ranks) const {
  const i64 n = ranks < kRankSlots ? ranks : kRankSlots;
  std::vector<i64> out(static_cast<std::size_t>(n < 0 ? 0 : n), 0);
#if !defined(CYCLICK_NO_TELEMETRY)
  for (std::size_t r = 0; r < out.size(); ++r)
    out[r] = slots_[r].v.load(std::memory_order_relaxed);
#endif
  return out;
}

void Counter::reset() noexcept {
#if !defined(CYCLICK_NO_TELEMETRY)
  for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
#endif
}

Histogram::Histogram(std::string name) : name_(std::move(name)) {}

std::pair<double, double> Histogram::bucket_bounds(i64 b) noexcept {
  if (b <= 0) return {0.0, 0.0};
  const double lo = static_cast<double>(u64{1} << (b - 1));
  const double hi = b >= 63 ? lo * 2.0 : static_cast<double>((u64{1} << b) - 1);
  return {lo, hi};
}

std::vector<i64> Histogram::merged_buckets() const {
  std::vector<i64> merged(static_cast<std::size_t>(kHistogramBuckets), 0);
#if !defined(CYCLICK_NO_TELEMETRY)
  for (const Row& row : rows_)
    for (std::size_t b = 0; b < merged.size(); ++b)
      merged[b] += row.buckets[b].load(std::memory_order_relaxed);
#endif
  return merged;
}

Histogram::Summary Histogram::summary() const {
  Summary s;
  const std::vector<i64> merged = merged_buckets();
  i64 count = 0;
  i64 sum_ns = 0;
#if !defined(CYCLICK_NO_TELEMETRY)
  for (const Row& row : rows_) {
    count += row.count.load(std::memory_order_relaxed);
    sum_ns += row.sum_ns.load(std::memory_order_relaxed);
  }
#endif
  s.count = count;
  s.sum_us = static_cast<double>(sum_ns) * 1e-3;
  s.mean_us = count > 0 ? s.sum_us / static_cast<double>(count) : 0.0;
  if (count == 0) return s;

  // Quantile estimate: find the bucket where the cumulative count crosses
  // q * count, then interpolate linearly across the bucket's value range.
  const auto quantile_us = [&](double q) -> double {
    const double target = q * static_cast<double>(count);
    double cum = 0.0;
    for (i64 b = 0; b < kHistogramBuckets; ++b) {
      const double in_bucket = static_cast<double>(merged[static_cast<std::size_t>(b)]);
      if (in_bucket == 0.0) continue;
      if (cum + in_bucket >= target) {
        const auto [lo, hi] = bucket_bounds(b);
        const double frac = (target - cum) / in_bucket;
        return (lo + (hi - lo) * frac) * 1e-3;  // ns -> us
      }
      cum += in_bucket;
    }
    return bucket_bounds(kHistogramBuckets - 1).second * 1e-3;
  };
  s.p50_us = quantile_us(0.50);
  s.p90_us = quantile_us(0.90);
  s.p99_us = quantile_us(0.99);
  return s;
}

void Histogram::reset() noexcept {
#if !defined(CYCLICK_NO_TELEMETRY)
  for (Row& row : rows_) {
    row.count.store(0, std::memory_order_relaxed);
    row.sum_ns.store(0, std::memory_order_relaxed);
    for (auto& b : row.buckets) b.store(0, std::memory_order_relaxed);
  }
#endif
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& c : counters_)
    if (c->name() == name) return *c;
  counters_.push_back(std::make_unique<Counter>(std::string(name)));
  return *counters_.back();
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& h : histograms_)
    if (h->name() == name) return *h;
  histograms_.push_back(std::make_unique<Histogram>(std::string(name)));
  return *histograms_.back();
}

std::vector<const Counter*> Registry::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Counter*> out;
  out.reserve(counters_.size());
  for (const auto& c : counters_) out.push_back(c.get());
  return out;
}

std::vector<const Histogram*> Registry::histograms() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Histogram*> out;
  out.reserve(histograms_.size());
  for (const auto& h : histograms_) out.push_back(h.get());
  return out;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& c : counters_) c->reset();
  for (const auto& h : histograms_) h->reset();
}

}  // namespace cyclick::obs
