// Process-wide runtime telemetry: named per-rank counters and microsecond
// histograms.
//
// Design constraints, in order:
//   1. Zero cost when compiled out: -DCYCLICK_NO_TELEMETRY turns every
//      recording macro and inline hook into nothing.
//   2. Near-zero cost when compiled in but disabled (the default): each
//      hook is one relaxed atomic load and a never-taken branch. The
//      bench/telemetry_overhead gate holds this to <= 1% on the addresser
//      construction hot loop.
//   3. No locks on the enabled hot path: every metric owns a fixed array
//      of cache-line-padded per-rank slots updated with relaxed atomic
//      adds; readers merge the slots. The simulated machines are small
//      (tens to a few hundred ranks), so a fixed power-of-two slot count
//      covers them one-to-one; larger rank ids fold modulo the slot count
//      — totals stay exact (atomic adds still serialize), only the
//      per-rank attribution folds.
//
// Metric handles are created (or found) by name through Registry::global()
// under a mutex; call sites cache the returned reference in a
// function-local static so the name lookup happens once per process.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cyclick/support/types.hpp"

namespace cyclick::obs {

/// Per-metric rank slots. Power of two; rank ids fold modulo this.
inline constexpr i64 kRankSlots = 256;

/// Histogram bucket count: bucket b holds values whose nanosecond
/// magnitude has bit-width b (bucket 0 is exactly zero).
inline constexpr i64 kHistogramBuckets = 64;

#if defined(CYCLICK_NO_TELEMETRY)
[[nodiscard]] constexpr bool compiled_in() noexcept { return false; }
[[nodiscard]] constexpr bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
#else
[[nodiscard]] constexpr bool compiled_in() noexcept { return true; }

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// The single runtime switch all recording hooks check.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}
#endif

[[nodiscard]] inline std::size_t rank_slot(i64 rank) noexcept {
  return static_cast<std::size_t>(static_cast<u64>(rank) &
                                  static_cast<u64>(kRankSlots - 1));
}

/// Monotonic nanoseconds since process start (what spans and timers use).
[[nodiscard]] i64 now_ns() noexcept;

/// Named monotonically increasing count with per-rank slots.
class Counter {
 public:
  explicit Counter(std::string name);

  /// Hot path. Does NOT check enabled(); the macros below do, so that the
  /// disabled cost is exactly one branch.
  void add(i64 rank, i64 n = 1) noexcept {
#if !defined(CYCLICK_NO_TELEMETRY)
    slots_[rank_slot(rank)].v.fetch_add(n, std::memory_order_relaxed);
#else
    (void)rank;
    (void)n;
#endif
  }

  /// Merge all rank slots (exact regardless of rank folding).
  [[nodiscard]] i64 total() const noexcept;

  /// Per-slot values for the first `ranks` slots (per-rank breakdown for
  /// machines with ranks <= kRankSlots).
  [[nodiscard]] std::vector<i64> per_rank(i64 ranks) const;

  void reset() noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  struct alignas(64) Slot {
    std::atomic<i64> v{0};
  };
  std::string name_;
#if !defined(CYCLICK_NO_TELEMETRY)
  std::vector<Slot> slots_{static_cast<std::size_t>(kRankSlots)};
#endif
};

/// Named microsecond histogram: power-of-two nanosecond buckets plus
/// count/sum, all with per-rank slots merged on read. Quantiles are
/// estimated by linear interpolation inside the containing bucket.
class Histogram {
 public:
  explicit Histogram(std::string name);

  /// Hot path; unchecked like Counter::add.
  void record_us(i64 rank, double us) noexcept {
#if !defined(CYCLICK_NO_TELEMETRY)
    const i64 ns = us <= 0.0 ? 0 : static_cast<i64>(us * 1e3);
    Row& row = rows_[rank_slot(rank)];
    row.buckets[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
    row.count.fetch_add(1, std::memory_order_relaxed);
    row.sum_ns.fetch_add(ns, std::memory_order_relaxed);
#else
    (void)rank;
    (void)us;
#endif
  }

  struct Summary {
    i64 count = 0;
    double sum_us = 0.0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p90_us = 0.0;
    double p99_us = 0.0;
  };
  [[nodiscard]] Summary summary() const;

  /// Merged bucket counts (index = nanosecond bit-width), for tests.
  [[nodiscard]] std::vector<i64> merged_buckets() const;

  void reset() noexcept;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] static i64 bucket_of(i64 ns) noexcept {
    i64 b = 0;
    for (u64 v = static_cast<u64>(ns < 0 ? 0 : ns); v != 0; v >>= 1) ++b;
    return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
  }
  /// Inclusive nanosecond value range covered by a bucket.
  [[nodiscard]] static std::pair<double, double> bucket_bounds(i64 b) noexcept;

 private:
  struct Row {
    std::atomic<i64> count{0};
    std::atomic<i64> sum_ns{0};
    std::atomic<i64> buckets[static_cast<std::size_t>(kHistogramBuckets)]{};
  };
  std::string name_;
#if !defined(CYCLICK_NO_TELEMETRY)
  std::vector<Row> rows_{static_cast<std::size_t>(kRankSlots)};
#endif
};

/// Process-wide directory of metrics. Creation/lookup is mutex-protected
/// (cold: call sites cache references); recording never touches the
/// registry. Handles are stable for the life of the process — reset()
/// zeroes values but never invalidates references.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Snapshot of registered metrics in registration order.
  [[nodiscard]] std::vector<const Counter*> counters() const;
  [[nodiscard]] std::vector<const Histogram*> histograms() const;

  /// Zero every metric (bench/test isolation). References stay valid.
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

/// Times a scope into a registry histogram; reads the clock only when
/// telemetry is enabled at construction.
class ScopedTimer {
 public:
  ScopedTimer(Histogram& hist, i64 rank) noexcept {
#if !defined(CYCLICK_NO_TELEMETRY)
    if (enabled()) {
      hist_ = &hist;
      rank_ = rank;
      start_ns_ = now_ns();
    }
#else
    (void)hist;
    (void)rank;
#endif
  }
  ~ScopedTimer() {
#if !defined(CYCLICK_NO_TELEMETRY)
    if (hist_ != nullptr)
      hist_->record_us(rank_, static_cast<double>(now_ns() - start_ns_) * 1e-3);
#endif
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
#if !defined(CYCLICK_NO_TELEMETRY)
  Histogram* hist_ = nullptr;
  i64 rank_ = 0;
  i64 start_ns_ = 0;
#endif
};

}  // namespace cyclick::obs

#define CYCLICK_OBS_CAT2(a, b) a##b
#define CYCLICK_OBS_CAT(a, b) CYCLICK_OBS_CAT2(a, b)

// Recording macros: one relaxed load + branch when disabled; nothing at
// all under CYCLICK_NO_TELEMETRY. The metric name must be a constant
// expression (it is looked up once via a function-local static).
#if defined(CYCLICK_NO_TELEMETRY)
#define CYCLICK_COUNT(name, rank, n) \
  do {                               \
  } while (false)
#define CYCLICK_TIME_SCOPE(name, rank) \
  do {                                 \
  } while (false)
#else
#define CYCLICK_COUNT(name, rank, n)                               \
  do {                                                             \
    if (::cyclick::obs::enabled()) {                               \
      static ::cyclick::obs::Counter& cyclick_obs_counter_ =       \
          ::cyclick::obs::Registry::global().counter(name);        \
      cyclick_obs_counter_.add((rank), (n));                       \
    }                                                              \
  } while (false)
// Declares a block-scoped timer; use at most once per line.
#define CYCLICK_TIME_SCOPE(name, rank)                                        \
  static ::cyclick::obs::Histogram& CYCLICK_OBS_CAT(cyclick_obs_hist_,        \
                                                    __LINE__) =               \
      ::cyclick::obs::Registry::global().histogram(name);                     \
  ::cyclick::obs::ScopedTimer CYCLICK_OBS_CAT(cyclick_obs_timer_, __LINE__)(  \
      CYCLICK_OBS_CAT(cyclick_obs_hist_, __LINE__), (rank))
#endif
