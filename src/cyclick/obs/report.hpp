// Human- and machine-readable summaries of the telemetry registry and the
// trace sink: counters, histogram quantiles, and per-name span totals.
// This is what `hpfc --metrics` / `amtool --metrics` print and what the
// benches dump next to their measurement JSON.
#pragma once

#include <iosfwd>
#include <string>

#include "cyclick/obs/metrics.hpp"
#include "cyclick/obs/trace.hpp"

namespace cyclick::obs {

/// Aligned text report: one line per counter (total), histogram (count,
/// mean, p50/p90/p99) and span name (count, total us).
void render_text_report(std::ostream& os,
                        Registry& registry = Registry::global(),
                        TraceSink& sink = TraceSink::global());

/// The same content as one JSON object:
/// {"counters":{...},"histograms":{...},"spans":{...},"trace":{...}}.
void render_json_report(std::ostream& os,
                        Registry& registry = Registry::global(),
                        TraceSink& sink = TraceSink::global());

/// Shared CLI argument handling for the user surfaces (hpfc, amtool,
/// benches): recognizes --metrics, --metrics=json and --trace=FILE.
struct CliOptions {
  bool metrics = false;      ///< print a report when done
  bool metrics_json = false; ///< ... as JSON instead of text
  std::string trace_path;    ///< write a chrome trace here when non-empty
  [[nodiscard]] bool any() const noexcept { return metrics || !trace_path.empty(); }
};

/// True when `arg` is a telemetry flag (and was folded into `opts`).
bool parse_cli_flag(std::string_view arg, CliOptions& opts);

/// Emit whatever `opts` asked for: report to `os`, trace to opts.trace_path
/// (logs the written path to std::cerr). No-op when !opts.any().
void emit_cli_outputs(const CliOptions& opts, std::ostream& os);

}  // namespace cyclick::obs
