#include "cyclick/obs/report.hpp"

#include <fstream>
#include <iomanip>
#include <iostream>
#include <ostream>

namespace cyclick::obs {

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void render_text_report(std::ostream& os, Registry& registry, TraceSink& sink) {
  os << "== cyclick telemetry ==\n";
  if (!compiled_in()) {
    os << "(compiled out: CYCLICK_NO_TELEMETRY)\n";
    return;
  }

  os << "counters:\n";
  bool any = false;
  for (const Counter* c : registry.counters()) {
    const i64 total = c->total();
    if (total == 0) continue;
    any = true;
    os << "  " << std::left << std::setw(32) << c->name() << std::right
       << std::setw(14) << total << "\n";
  }
  if (!any) os << "  (none)\n";

  os << "histograms (us):\n";
  any = false;
  for (const Histogram* h : registry.histograms()) {
    const Histogram::Summary s = h->summary();
    if (s.count == 0) continue;
    any = true;
    os << "  " << std::left << std::setw(32) << h->name() << std::right
       << " count " << std::setw(8) << s.count << "  mean " << std::setw(10)
       << std::fixed << std::setprecision(2) << s.mean_us << "  p50 "
       << std::setw(10) << s.p50_us << "  p90 " << std::setw(10) << s.p90_us
       << "  p99 " << std::setw(10) << s.p99_us << "\n";
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
  }
  if (!any) os << "  (none)\n";

  os << "spans:\n";
  const auto totals = sink.span_totals();
  for (const SpanTotal& t : totals)
    os << "  " << std::left << std::setw(32) << t.name << std::right
       << " count " << std::setw(8) << t.count << "  total_us " << std::setw(12)
       << std::fixed << std::setprecision(1) << t.total_us << "\n";
  os.unsetf(std::ios::fixed);
  os << std::setprecision(6);
  if (totals.empty()) os << "  (none)\n";
  if (sink.dropped_count() > 0)
    os << "trace: " << sink.dropped_count() << " spans dropped (ring full; "
       << "raise TraceSink::set_capacity)\n";
}

void render_json_report(std::ostream& os, Registry& registry, TraceSink& sink) {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const Counter* c : registry.counters()) {
    const i64 total = c->total();
    if (total == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "\n    ";
    write_json_string(os, c->name());
    os << ": " << total;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const Histogram* h : registry.histograms()) {
    const Histogram::Summary s = h->summary();
    if (s.count == 0) continue;
    if (!first) os << ",";
    first = false;
    os << "\n    ";
    write_json_string(os, h->name());
    os << ": {\"count\": " << s.count << ", \"sum_us\": " << s.sum_us
       << ", \"mean_us\": " << s.mean_us << ", \"p50_us\": " << s.p50_us
       << ", \"p90_us\": " << s.p90_us << ", \"p99_us\": " << s.p99_us << "}";
  }
  os << "\n  },\n  \"spans\": {";
  first = true;
  for (const SpanTotal& t : sink.span_totals()) {
    if (!first) os << ",";
    first = false;
    os << "\n    ";
    write_json_string(os, t.name);
    os << ": {\"count\": " << t.count << ", \"total_us\": " << t.total_us << "}";
  }
  os << "\n  },\n  \"trace\": {\"events\": " << sink.event_count()
     << ", \"dropped\": " << sink.dropped_count() << "}\n}\n";
}

bool parse_cli_flag(std::string_view arg, CliOptions& opts) {
  if (arg == "--metrics") {
    opts.metrics = true;
    return true;
  }
  if (arg == "--metrics=json") {
    opts.metrics = true;
    opts.metrics_json = true;
    return true;
  }
  if (arg.rfind("--trace=", 0) == 0) {
    opts.trace_path = std::string(arg.substr(8));
    return true;
  }
  return false;
}

void emit_cli_outputs(const CliOptions& opts, std::ostream& os) {
  if (opts.metrics) {
    if (opts.metrics_json)
      render_json_report(os);
    else
      render_text_report(os);
  }
  if (!opts.trace_path.empty()) {
    std::ofstream out(opts.trace_path);
    if (!out) {
      std::cerr << "cannot write trace file " << opts.trace_path << "\n";
      return;
    }
    TraceSink::global().write_chrome_trace(out);
    // Keep stderr pure JSON in --metrics=json mode (CI captures it).
    if (!opts.metrics_json) std::cerr << "wrote " << opts.trace_path << "\n";
  }
}

}  // namespace cyclick::obs
