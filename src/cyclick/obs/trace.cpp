#include "cyclick/obs/trace.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <ostream>
#include <set>

namespace cyclick::obs {

TraceSink& TraceSink::global() {
  static TraceSink sink;
  return sink;
}

void TraceSink::set_capacity(i64 events_per_rank) {
  CYCLICK_REQUIRE(events_per_rank >= 1, "trace capacity must be positive");
  CYCLICK_REQUIRE(event_count() == 0 && dropped_count() == 0,
                  "trace capacity must be set while the sink is empty");
  clear();  // release any previously sized (empty) rings
  capacity_ = events_per_rank;
}

TraceSink::Ring* TraceSink::ring_for(i64 tid) noexcept {
  std::atomic<Ring*>& slot = rings_[rank_slot(tid)];
  Ring* ring = slot.load(std::memory_order_acquire);
  if (ring != nullptr) return ring;
  auto fresh = std::make_unique<Ring>(capacity_);
  if (slot.compare_exchange_strong(ring, fresh.get(), std::memory_order_acq_rel))
    return fresh.release();
  return ring;  // another thread won the race; ours is freed
}

void TraceSink::complete(const char* name, i64 tid, i64 begin_ns,
                         i64 end_ns) noexcept {
  Ring* ring = ring_for(tid);
  const i64 idx = ring->next.fetch_add(1, std::memory_order_relaxed);
  if (idx >= static_cast<i64>(ring->events.size())) return;  // counted as dropped
  ring->events[static_cast<std::size_t>(idx)] =
      TraceEvent{name, tid, begin_ns, end_ns - begin_ns};
}

i64 TraceSink::event_count() const noexcept {
  i64 n = 0;
  for (const auto& slot : rings_) {
    const Ring* ring = slot.load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const i64 claimed = ring->next.load(std::memory_order_relaxed);
    n += claimed < static_cast<i64>(ring->events.size())
             ? claimed
             : static_cast<i64>(ring->events.size());
  }
  return n;
}

i64 TraceSink::dropped_count() const noexcept {
  i64 n = 0;
  for (const auto& slot : rings_) {
    const Ring* ring = slot.load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const i64 claimed = ring->next.load(std::memory_order_relaxed);
    const i64 cap = static_cast<i64>(ring->events.size());
    if (claimed > cap) n += claimed - cap;
  }
  return n;
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::vector<TraceEvent> out;
  for (const auto& slot : rings_) {
    const Ring* ring = slot.load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const i64 claimed = ring->next.load(std::memory_order_relaxed);
    const i64 n = claimed < static_cast<i64>(ring->events.size())
                      ? claimed
                      : static_cast<i64>(ring->events.size());
    for (i64 i = 0; i < n; ++i) {
      const TraceEvent& ev = ring->events[static_cast<std::size_t>(i)];
      if (ev.name != nullptr) out.push_back(ev);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ns < b.ts_ns; });
  return out;
}

std::vector<SpanTotal> TraceSink::span_totals() const {
  std::map<std::string, SpanTotal> by_name;
  for (const TraceEvent& ev : snapshot()) {
    SpanTotal& tot = by_name[ev.name];
    if (tot.name.empty()) tot.name = ev.name;
    ++tot.count;
    tot.total_us += static_cast<double>(ev.dur_ns) * 1e-3;
  }
  std::vector<SpanTotal> out;
  out.reserve(by_name.size());
  for (auto& [name, tot] : by_name) out.push_back(std::move(tot));
  std::sort(out.begin(), out.end(),
            [](const SpanTotal& a, const SpanTotal& b) { return a.total_us > b.total_us; });
  return out;
}

namespace {

void write_escaped(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') os << '\\';
    os << *s;
  }
  os << '"';
}

}  // namespace

void TraceSink::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();

  // One metadata event per distinct tid names the chrome "thread" rows.
  std::set<i64> tids;
  for (const TraceEvent& ev : events) tids.insert(ev.tid);

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const i64 tid : tids) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":" << tid
       << ",\"args\":{\"name\":"
       << (tid == kMainTid ? "\"driver\"" : "\"rank " + std::to_string(tid) + "\"")
       << "}}";
  }
  for (const TraceEvent& ev : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\":\"X\",\"cat\":\"cyclick\",\"name\":";
    write_escaped(os, ev.name);
    os << ",\"pid\":0,\"tid\":" << ev.tid
       << ",\"ts\":" << static_cast<double>(ev.ts_ns) * 1e-3
       << ",\"dur\":" << static_cast<double>(ev.dur_ns) * 1e-3 << "}";
  }
  os << "\n]}\n";
}

void TraceSink::clear() {
  for (auto& slot : rings_) {
    Ring* ring = slot.exchange(nullptr, std::memory_order_acq_rel);
    delete ring;
  }
}

}  // namespace cyclick::obs
