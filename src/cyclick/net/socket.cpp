#include "cyclick/net/socket.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "cyclick/obs/metrics.hpp"
#include "cyclick/runtime/transport.hpp"

namespace cyclick::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path))
    throw TransportError("socket path too long for sun_path: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

[[nodiscard]] i64 now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd unix_listen(const std::string& path, int backlog) {
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket() for listener " + path);
  ::unlink(path.c_str());  // stale socket file from a crashed run
  const sockaddr_un addr = make_addr(path);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    throw_errno("bind(" + path + ")");
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen(" + path + ")");
  return fd;
}

Fd unix_accept(const Fd& listener, i64 timeout_ms) {
  if (timeout_ms > 0) {
    pollfd pfd{listener.get(), POLLIN, 0};
    const int r = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (r < 0) throw_errno("poll() on listener");
    if (r == 0)
      throw TransportError("rendezvous timeout: no peer connected within " +
                           std::to_string(timeout_ms) + " ms");
  }
  Fd fd(::accept(listener.get(), nullptr, nullptr));
  if (!fd.valid()) throw_errno("accept()");
  return fd;
}

Fd unix_connect_retry(const std::string& path, i64 timeout_ms, i64 backoff_ms,
                      i64 obs_rank) {
  const i64 deadline = now_ms() + (timeout_ms > 0 ? timeout_ms : 10000);
  i64 delay = backoff_ms > 0 ? backoff_ms : 1;
  for (;;) {
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) throw_errno("socket() for connect to " + path);
    const sockaddr_un addr = make_addr(path);
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0)
      return fd;
    // The peer's listener may simply not exist yet (rendezvous race) —
    // those errnos are retryable; anything else is a hard failure.
    if (errno != ENOENT && errno != ECONNREFUSED && errno != EAGAIN)
      throw_errno("connect(" + path + ")");
    if (now_ms() >= deadline)
      throw TransportError("connect to " + path + " timed out after " +
                           std::to_string(timeout_ms) + " ms (" + std::strerror(errno) +
                           "); peer rank never started listening?");
    CYCLICK_COUNT("net.retries", obs_rank, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    delay = std::min<i64>(delay * 2, 100);
  }
}

std::pair<Fd, Fd> socket_pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) throw_errno("socketpair()");
  return {Fd(fds[0]), Fd(fds[1])};
}

void write_fully(int fd, const std::byte* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("send() of " + std::to_string(n) + " bytes");
    }
    done += static_cast<std::size_t>(w);
  }
}

bool read_fully(int fd, std::byte* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::recv(fd, data + done, n - done, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv() of " + std::to_string(n) + " bytes");
    }
    if (r == 0) {
      if (done == 0) return false;  // clean EOF on a frame boundary
      throw TransportError("peer closed mid-frame (" + std::to_string(done) + " of " +
                           std::to_string(n) + " bytes read)");
    }
    done += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace cyclick::net
