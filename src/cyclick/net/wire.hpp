// Wire protocol for the socket transport: length-prefixed frames with a
// fixed 32-byte header carrying magic, version, frame type, the channel
// (from rank -> to rank), the payload length, and an FNV-1a 64 checksum of
// the payload.
//
// Layout (all fields little-endian on the wire):
//
//   offset  size  field
//        0     4  magic     "CYK1" (0x314B5943)
//        4     2  version   kWireVersion
//        6     2  type      FrameType (hello / data)
//        8     4  from      sending rank
//       12     4  to        receiving rank
//       16     8  payload_bytes
//       24     8  checksum  FNV-1a 64 over the payload bytes
//
// Hello frames carry no payload; each side of a freshly accepted
// connection identifies itself with one so the mesh can map fds to ranks.
// Every header is validated on receipt (magic, version, type, rank range,
// payload bound) and every payload is re-checksummed; a mismatch is a
// protocol error the transport surfaces as a TransportError naming the
// channel — corrupt frames are rejected, never delivered.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "cyclick/support/types.hpp"

namespace cyclick::net {

inline constexpr u64 kWireMagic = 0x314B5943;  // "CYK1"
inline constexpr u64 kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 32;

/// Frames larger than this are rejected as protocol errors (a corrupt
/// length prefix would otherwise turn into an absurd allocation).
inline constexpr u64 kMaxPayloadBytes = u64{1} << 40;

enum class FrameType : u64 {
  kHello = 0,        ///< connection handshake: identifies the sending rank
  kData = 1,         ///< one Transport message
  kPlanRequest = 2,  ///< plan service: batch of PlanQuery records
  kPlanResponse = 3, ///< plan service: batch of serialized plan replies
  kError = 4,        ///< plan service: connection-fatal error, UTF-8 text payload
};

struct FrameHeader {
  u64 magic = kWireMagic;
  u64 version = kWireVersion;
  FrameType type = FrameType::kData;
  i64 from = 0;
  i64 to = 0;
  u64 payload_bytes = 0;
  u64 checksum = 0;
};

/// FNV-1a 64-bit checksum (dependency-free, byte-order independent).
[[nodiscard]] u64 fnv1a64(const std::byte* data, std::size_t n) noexcept;

/// Word-folded FNV-1a: one multiply per 8-byte little-endian word (byte-wise
/// over the tail). ~8x cheaper than the byte-wise variant on large payloads;
/// the plan-service frames (kPlanRequest / kPlanResponse and their hello /
/// error traffic) use it because a batched response runs to hundreds of
/// kilobytes and the checksum would otherwise dominate the serving cost.
/// kData transport frames keep the byte-wise checksum.
[[nodiscard]] u64 fnv1a64w(const std::byte* data, std::size_t n) noexcept;

/// Serialize `h` into exactly kHeaderBytes at `out`.
void encode_header(const FrameHeader& h, std::byte* out) noexcept;

/// Parse kHeaderBytes at `in`. Returns the header, or an error description
/// in `error` (magic / version / type / payload-bound violations) with
/// nullopt. Rank-range and checksum validation are the caller's job (they
/// need the world size and the payload).
[[nodiscard]] std::optional<FrameHeader> decode_header(const std::byte* in,
                                                       std::string& error);

/// Lenient parse for servers that must *answer* a bad peer rather than drop
/// the connection silently: validates only the magic and the payload bound
/// (the two properties needed to keep the stream framed), and passes the
/// version and type through unchecked so the caller can reject a
/// version-mismatched or unknown-type frame with a named error reply. The
/// returned header's `type` is the raw field value; callers must range-check
/// it before switching on it.
[[nodiscard]] std::optional<FrameHeader> decode_header_lenient(const std::byte* in,
                                                               std::string& error);

}  // namespace cyclick::net
