#include "cyclick/net/backend.hpp"

#include <cstdlib>

namespace cyclick::net {

const char* backend_name(Backend b) noexcept {
  return b == Backend::kProc ? "proc" : "inproc";
}

std::optional<Backend> parse_backend_name(std::string_view name) noexcept {
  if (name == "inproc") return Backend::kInProc;
  if (name == "proc") return Backend::kProc;
  return std::nullopt;
}

bool parse_backend_flag(std::string_view arg, Backend& out) {
  constexpr std::string_view prefix = "--backend=";
  if (arg.substr(0, prefix.size()) != prefix) return false;
  const auto parsed = parse_backend_name(arg.substr(prefix.size()));
  CYCLICK_REQUIRE(parsed.has_value(), "--backend must be one of: inproc, proc");
  out = *parsed;
  return true;
}

Backend backend_from_env(Backend fallback) {
  const char* env = std::getenv("CYCLICK_BACKEND");
  if (env == nullptr || *env == '\0') return fallback;
  return parse_backend_name(env).value_or(fallback);
}

}  // namespace cyclick::net
