#include "cyclick/net/backend.hpp"

#include <cstdlib>

namespace cyclick::net {

const char* backend_name(Backend b) noexcept {
  switch (b) {
    case Backend::kProc: return "proc";
    case Backend::kSim: return "sim";
    case Backend::kInProc: break;
  }
  return "inproc";
}

std::optional<Backend> parse_backend_name(std::string_view name) noexcept {
  if (name == "inproc") return Backend::kInProc;
  if (name == "proc") return Backend::kProc;
  if (name == "sim") return Backend::kSim;
  return std::nullopt;
}

namespace {

[[noreturn]] void reject_backend(const char* where, std::string_view value) {
  throw precondition_error("unknown backend \"" + std::string(value) + "\" in " +
                           where + "; valid backends are: inproc, proc, sim");
}

}  // namespace

bool parse_backend_flag(std::string_view arg, Backend& out) {
  constexpr std::string_view prefix = "--backend=";
  if (arg.substr(0, prefix.size()) != prefix) return false;
  const std::string_view name = arg.substr(prefix.size());
  const auto parsed = parse_backend_name(name);
  if (!parsed.has_value()) reject_backend("--backend", name);
  out = *parsed;
  return true;
}

Backend backend_from_env(Backend fallback) {
  const char* env = std::getenv("CYCLICK_BACKEND");
  if (env == nullptr || *env == '\0') return fallback;
  const auto parsed = parse_backend_name(env);
  if (!parsed.has_value()) reject_backend("CYCLICK_BACKEND", env);
  return *parsed;
}

}  // namespace cyclick::net
