// Thin RAII layer over Unix-domain stream sockets: listeners, blocking
// connect with retry/backoff (rendezvous peers race each other to start
// listening), and full-buffer read/write loops that absorb EINTR and
// partial transfers. Everything reports failure as TransportError with
// errno text; nothing here knows about ranks or framing.
#pragma once

#include <cstddef>
#include <string>
#include <utility>

#include "cyclick/support/types.hpp"

namespace cyclick::net {

/// Owning file descriptor. Movable, closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void reset() noexcept;
  /// Release ownership without closing.
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Create a Unix-domain stream listener bound to `path` (unlinked first if
/// a stale socket file exists). `backlog` pending connections are queued by
/// the kernel, so peers may connect before the owner calls accept.
[[nodiscard]] Fd unix_listen(const std::string& path, int backlog);

/// Accept one connection; blocks up to `timeout_ms` (<= 0: forever).
/// Throws TransportError on timeout or error.
[[nodiscard]] Fd unix_accept(const Fd& listener, i64 timeout_ms);

/// Connect to `path`, retrying with exponential backoff (starting at
/// `backoff_ms`, capped at 100 ms) while the listener does not exist yet or
/// refuses, up to `timeout_ms` total. Each retry is counted into the
/// `net.retries` telemetry counter under `obs_rank`. Throws TransportError
/// when the budget is exhausted.
[[nodiscard]] Fd unix_connect_retry(const std::string& path, i64 timeout_ms,
                                    i64 backoff_ms, i64 obs_rank);

/// Connected AF_UNIX stream pair (the loopback mesh's "wire").
[[nodiscard]] std::pair<Fd, Fd> socket_pair();

/// Write exactly `n` bytes (loops over partial writes and EINTR; sends with
/// MSG_NOSIGNAL so a dead peer surfaces as an error, not SIGPIPE). Throws
/// TransportError on failure.
void write_fully(int fd, const std::byte* data, std::size_t n);

/// Read exactly `n` bytes. Returns false on clean EOF *before the first
/// byte*; throws TransportError on errors or EOF mid-buffer (a truncated
/// frame).
[[nodiscard]] bool read_fully(int fd, std::byte* data, std::size_t n);

}  // namespace cyclick::net
