#include "cyclick/net/socket_transport.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <utility>

#include <poll.h>
#include <sys/socket.h>

#include "cyclick/net/wire.hpp"
#include "cyclick/obs/metrics.hpp"
#include "cyclick/obs/trace.hpp"

namespace cyclick::net {

namespace {

[[nodiscard]] std::string channel_name(i64 from, i64 to) {
  return std::to_string(from) + "->" + std::to_string(to);
}

/// How often the reader re-checks its stop flag while polling.
constexpr int kReaderPollMs = 50;

}  // namespace

/// Per-sender receive queue. `closed` flips on clean EOF from the peer;
/// `error` records the first protocol/checksum failure (sticky — the
/// stream is desynchronized beyond repair once framing is violated).
/// `posted` holds pre-posted receives in FIFO match order; arrivals are
/// routed to them before the queue, and a failed/closed channel fails
/// them all (cancellation on rank failure).
struct SocketTransport::Inbox {
  struct PostedRecv {
    CompletionQueue* cq = nullptr;
    u64 op = 0;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::vector<std::byte>> queue;
  std::deque<PostedRecv> posted;
  bool closed = false;
  std::string error;
  ChannelStats stats;
};

struct SocketTransport::Endpoint {
  explicit Endpoint(i64 r, i64 world) : rank(r), peer_fds(static_cast<std::size_t>(world)) {
    inboxes.reserve(static_cast<std::size_t>(world));
    for (i64 q = 0; q < world; ++q) inboxes.push_back(std::make_unique<Inbox>());
    send_broken.assign(static_cast<std::size_t>(world), false);
    send_error.resize(static_cast<std::size_t>(world));
  }

  i64 rank;
  std::vector<Fd> peer_fds;  ///< [world]; invalid for self and non-peers
  std::vector<std::unique_ptr<Inbox>> inboxes;
  Fd listener;  ///< connect_mesh only; held so the rendezvous path stays bound

  struct OutMsg {
    i64 to = -1;
    std::array<std::byte, kHeaderBytes> header{};
    std::vector<std::byte> payload;
    CompletionQueue* cq = nullptr;  ///< isend completion target (may be null)
    u64 op = 0;
  };
  std::mutex out_mu;
  std::condition_variable out_cv;
  std::deque<OutMsg> outbox;
  bool out_stop = false;
  std::vector<char> send_broken;        ///< guarded by out_mu
  std::vector<std::string> send_error;  ///< guarded by out_mu

  std::atomic<bool> reader_stop{false};
  std::thread writer, reader;
};

SocketTransport::SocketTransport(i64 world, Options opts) : world_(world), opts_(opts) {
  CYCLICK_REQUIRE(world >= 1, "transport needs at least one rank");
  endpoints_.resize(static_cast<std::size_t>(world));
}

std::unique_ptr<SocketTransport> SocketTransport::loopback_mesh(i64 world, Options opts) {
  std::unique_ptr<SocketTransport> tr(new SocketTransport(world, opts));
  for (i64 r = 0; r < world; ++r)
    tr->endpoints_[static_cast<std::size_t>(r)] = std::make_unique<Endpoint>(r, world);
  for (i64 a = 0; a < world; ++a)
    for (i64 b = a + 1; b < world; ++b) {
      auto [fa, fb] = socket_pair();
      tr->endpoints_[static_cast<std::size_t>(a)]->peer_fds[static_cast<std::size_t>(b)] =
          std::move(fa);
      tr->endpoints_[static_cast<std::size_t>(b)]->peer_fds[static_cast<std::size_t>(a)] =
          std::move(fb);
    }
  tr->start_endpoint_threads();
  return tr;
}

std::unique_ptr<SocketTransport> SocketTransport::connect_mesh(i64 rank, i64 world,
                                                               const std::string& dir,
                                                               Options opts) {
  CYCLICK_REQUIRE(rank >= 0 && rank < world, "rank out of range for world");
  std::unique_ptr<SocketTransport> tr(new SocketTransport(world, opts));
  auto ep = std::make_unique<Endpoint>(rank, world);
  CYCLICK_SPAN("net.connect", rank);

  const auto sock_path = [&dir](i64 r) {
    return dir + "/rank-" + std::to_string(r) + ".sock";
  };
  ep->listener = unix_listen(sock_path(rank), static_cast<int>(world));

  // Connect to every lower rank (its listener may not exist yet — the
  // retry/backoff loop absorbs the startup race) and identify ourselves
  // with a hello frame.
  for (i64 q = 0; q < rank; ++q) {
    Fd fd = unix_connect_retry(sock_path(q), opts.connect_timeout_ms,
                               opts.connect_backoff_ms, rank);
    FrameHeader hello;
    hello.type = FrameType::kHello;
    hello.from = rank;
    hello.to = q;
    hello.checksum = fnv1a64(nullptr, 0);
    std::array<std::byte, kHeaderBytes> buf{};
    encode_header(hello, buf.data());
    write_fully(fd.get(), buf.data(), buf.size());
    ep->peer_fds[static_cast<std::size_t>(q)] = std::move(fd);
  }

  // Accept every higher rank; its hello frame says who connected.
  for (i64 n = rank + 1; n < world; ++n) {
    Fd fd = unix_accept(ep->listener, opts.connect_timeout_ms);
    std::array<std::byte, kHeaderBytes> buf{};
    if (!read_fully(fd.get(), buf.data(), buf.size()))
      throw TransportError("rendezvous: peer closed before sending hello to rank " +
                           std::to_string(rank));
    std::string err;
    const auto hello = decode_header(buf.data(), err);
    if (!hello) throw TransportError("rendezvous: " + err);
    if (hello->type != FrameType::kHello || hello->to != rank || hello->from <= rank ||
        hello->from >= world)
      throw TransportError("rendezvous: malformed hello (from " +
                           std::to_string(hello->from) + ", to " +
                           std::to_string(hello->to) + ") at rank " + std::to_string(rank));
    Fd& slot = ep->peer_fds[static_cast<std::size_t>(hello->from)];
    if (slot.valid())
      throw TransportError("rendezvous: rank " + std::to_string(hello->from) +
                           " connected twice");
    slot = std::move(fd);
  }

  tr->endpoints_[static_cast<std::size_t>(rank)] = std::move(ep);
  tr->start_endpoint_threads();
  return tr;
}

SocketTransport::~SocketTransport() {
  // Stop writers after their outboxes drain, so everything already sent
  // reaches the wire before we signal EOF.
  for (auto& ep : endpoints_) {
    if (!ep) continue;
    {
      const std::lock_guard<std::mutex> lock(ep->out_mu);
      ep->out_stop = true;
    }
    ep->out_cv.notify_all();
  }
  for (auto& ep : endpoints_)
    if (ep && ep->writer.joinable()) ep->writer.join();
  // Half-close every connection: peers observe EOF (clean channel close)
  // while their in-flight frames can still drain to our readers.
  for (auto& ep : endpoints_) {
    if (!ep) continue;
    for (Fd& fd : ep->peer_fds)
      if (fd.valid()) ::shutdown(fd.get(), SHUT_WR);
  }
  for (auto& ep : endpoints_) {
    if (!ep) continue;
    ep->reader_stop.store(true, std::memory_order_relaxed);
    if (ep->reader.joinable()) ep->reader.join();
  }
}

void SocketTransport::start_endpoint_threads() {
  for (auto& ep : endpoints_) {
    if (!ep) continue;
    Endpoint* p = ep.get();
    p->writer = std::thread([this, p] { writer_loop(*p); });
    p->reader = std::thread([this, p] { reader_loop(*p); });
  }
}

SocketTransport::Endpoint& SocketTransport::endpoint_for(i64 rank, const char* role) {
  CYCLICK_REQUIRE(rank >= 0 && rank < world_, "rank out of range");
  Endpoint* ep = endpoints_[static_cast<std::size_t>(rank)].get();
  CYCLICK_REQUIRE(ep != nullptr, role);
  return *ep;
}

bool SocketTransport::is_local(i64 rank) const {
  return rank >= 0 && rank < world_ && endpoints_[static_cast<std::size_t>(rank)] != nullptr;
}

void SocketTransport::send(i64 from, i64 to, std::vector<std::byte> payload) {
  Endpoint& ep = endpoint_for(from, "send requires a rank local to this process");
  CYCLICK_REQUIRE(to >= 0 && to < world_, "rank out of range");
  const i64 bytes = static_cast<i64>(payload.size());
  if (to == from) {
    deliver(ep, from, std::move(payload));
  } else {
    Endpoint::OutMsg msg;
    msg.to = to;
    FrameHeader h;
    h.from = from;
    h.to = to;
    h.payload_bytes = payload.size();
    h.checksum = fnv1a64(payload.data(), payload.size());
    encode_header(h, msg.header.data());
    msg.payload = std::move(payload);
    {
      const std::lock_guard<std::mutex> lock(ep.out_mu);
      if (ep.send_broken[static_cast<std::size_t>(to)])
        throw TransportError(ep.send_error[static_cast<std::size_t>(to)]);
      ep.outbox.push_back(std::move(msg));
    }
    ep.out_cv.notify_all();
  }
  CYCLICK_COUNT("net.messages", from, 1);
  CYCLICK_COUNT("net.bytes", from, bytes);
}

void SocketTransport::isend(i64 from, i64 to, std::vector<std::byte> payload,
                            CompletionQueue* cq, i64 tag) {
  if (cq == nullptr) {
    send(from, to, std::move(payload));
    return;
  }
  Endpoint& ep = endpoint_for(from, "isend requires a rank local to this process");
  CYCLICK_REQUIRE(to >= 0 && to < world_, "rank out of range");
  const i64 bytes = static_cast<i64>(payload.size());
  const u64 op = cq->post(Completion::Kind::kSend, from, to, tag);
  if (to == from) {
    deliver(ep, from, std::move(payload));
    cq->complete(op);
  } else {
    Endpoint::OutMsg msg;
    msg.to = to;
    msg.cq = cq;
    msg.op = op;
    FrameHeader h;
    h.from = from;
    h.to = to;
    h.payload_bytes = payload.size();
    h.checksum = fnv1a64(payload.data(), payload.size());
    encode_header(h, msg.header.data());
    msg.payload = std::move(payload);
    {
      const std::lock_guard<std::mutex> lock(ep.out_mu);
      if (ep.send_broken[static_cast<std::size_t>(to)]) {
        cq->cancel(op);
        throw TransportError(ep.send_error[static_cast<std::size_t>(to)]);
      }
      ep.outbox.push_back(std::move(msg));
    }
    ep.out_cv.notify_all();
  }
  CYCLICK_COUNT("net.messages", from, 1);
  CYCLICK_COUNT("net.bytes", from, bytes);
}

void SocketTransport::irecv(i64 to, i64 from, CompletionQueue& cq, i64 tag) {
  Endpoint& ep = endpoint_for(to, "irecv requires a rank local to this process");
  CYCLICK_REQUIRE(from >= 0 && from < world_, "rank out of range");
  // Claim the credit before touching the inbox: post() may block at the
  // credit limit, and the reader thread must stay free to deliver (and so
  // unblock the consumer that frees a credit).
  const u64 op = cq.post(Completion::Kind::kRecv, from, to, tag);
  Inbox& ib = *ep.inboxes[static_cast<std::size_t>(from)];
  std::vector<std::byte> payload;
  enum class State { kPosted, kImmediate, kError, kClosed } state = State::kPosted;
  std::string error;
  i64 delivered = 0;
  {
    const std::lock_guard<std::mutex> lock(ib.mu);
    if (!ib.queue.empty()) {
      payload = std::move(ib.queue.front());
      ib.queue.pop_front();
      state = State::kImmediate;
    } else if (!ib.error.empty()) {
      error = ib.error;
      state = State::kError;
    } else if (ib.closed) {
      delivered = ib.stats.messages;
      state = State::kClosed;
    } else {
      ib.posted.push_back(Inbox::PostedRecv{&cq, op});
    }
  }
  switch (state) {
    case State::kPosted:
      break;
    case State::kImmediate:
      cq.complete(op, std::move(payload));
      break;
    case State::kError:
      cq.fail(op, error);
      break;
    case State::kClosed:
      cq.fail(op, "channel " + channel_name(from, to) + " closed: rank " +
                      std::to_string(from) + " exited before sending (" +
                      std::to_string(delivered) + " messages delivered)");
      break;
  }
}

bool SocketTransport::try_recv(i64 to, i64 from, std::vector<std::byte>& out) {
  Endpoint& ep = endpoint_for(to, "try_recv requires a rank local to this process");
  CYCLICK_REQUIRE(from >= 0 && from < world_, "rank out of range");
  Inbox& ib = *ep.inboxes[static_cast<std::size_t>(from)];
  const std::lock_guard<std::mutex> lock(ib.mu);
  if (ib.queue.empty()) return false;
  out = std::move(ib.queue.front());
  ib.queue.pop_front();
  return true;
}

void SocketTransport::cancel_posted(CompletionQueue& cq) {
  for (auto& ep : endpoints_) {
    if (!ep) continue;
    for (auto& ibp : ep->inboxes) {
      Inbox& ib = *ibp;
      std::vector<u64> ops;
      {
        const std::lock_guard<std::mutex> lock(ib.mu);
        for (auto it = ib.posted.begin(); it != ib.posted.end();) {
          if (it->cq == &cq) {
            ops.push_back(it->op);
            it = ib.posted.erase(it);
          } else {
            ++it;
          }
        }
      }
      for (const u64 op : ops) cq.cancel(op);
    }
    // Queued isends still reach the wire (cancellation does not un-send);
    // only their completions are withdrawn.
    std::vector<u64> ops;
    {
      const std::lock_guard<std::mutex> lock(ep->out_mu);
      for (auto& msg : ep->outbox) {
        if (msg.cq == &cq) {
          ops.push_back(msg.op);
          msg.cq = nullptr;
        }
      }
    }
    for (const u64 op : ops) cq.cancel(op);
  }
}

std::vector<std::byte> SocketTransport::recv(i64 to, i64 from) {
  Endpoint& ep = endpoint_for(to, "recv requires a rank local to this process");
  CYCLICK_REQUIRE(from >= 0 && from < world_, "rank out of range");
  Inbox& ib = *ep.inboxes[static_cast<std::size_t>(from)];
  std::unique_lock<std::mutex> lock(ib.mu);
  const auto have = [&] { return !ib.queue.empty() || ib.closed || !ib.error.empty(); };
  if (!have()) {
    CYCLICK_SPAN("net.recv_wait", to);
    if (opts_.recv_timeout_ms > 0) {
      if (!ib.cv.wait_for(lock, std::chrono::milliseconds(opts_.recv_timeout_ms), have))
        throw_recv_timeout(from, to, opts_.recv_timeout_ms);
    } else {
      ib.cv.wait(lock, have);
    }
  }
  if (!ib.queue.empty()) {
    std::vector<std::byte> payload = std::move(ib.queue.front());
    ib.queue.pop_front();
    return payload;
  }
  if (!ib.error.empty()) throw TransportError(ib.error);
  throw TransportError("channel " + channel_name(from, to) + " closed: rank " +
                       std::to_string(from) + " exited before sending (" +
                       std::to_string(ib.stats.messages) + " messages delivered)");
}

bool SocketTransport::ready(i64 to, i64 from) {
  Endpoint& ep = endpoint_for(to, "ready requires a rank local to this process");
  CYCLICK_REQUIRE(from >= 0 && from < world_, "rank out of range");
  Inbox& ib = *ep.inboxes[static_cast<std::size_t>(from)];
  const std::lock_guard<std::mutex> lock(ib.mu);
  return !ib.queue.empty();
}

ChannelStats SocketTransport::channel_stats(i64 from, i64 to) {
  Endpoint& ep = endpoint_for(to, "channel_stats requires the receiving rank local");
  CYCLICK_REQUIRE(from >= 0 && from < world_, "rank out of range");
  Inbox& ib = *ep.inboxes[static_cast<std::size_t>(from)];
  const std::lock_guard<std::mutex> lock(ib.mu);
  return ib.stats;
}

void SocketTransport::deliver(Endpoint& ep, i64 from, std::vector<std::byte> payload) {
  Inbox& ib = *ep.inboxes[static_cast<std::size_t>(from)];
  const i64 bytes = static_cast<i64>(payload.size());
  Inbox::PostedRecv matched{};
  {
    const std::lock_guard<std::mutex> lock(ib.mu);
    if (obs::enabled()) {
      ++ib.stats.messages;
      ib.stats.bytes += bytes;
    }
    if (!ib.posted.empty()) {
      // A pre-posted receive claims the message directly (FIFO match
      // order); it never touches the queue.
      matched = ib.posted.front();
      ib.posted.pop_front();
    } else {
      ib.queue.push_back(std::move(payload));
    }
  }
  if (matched.cq != nullptr)
    matched.cq->complete(matched.op, std::move(payload));
  else
    ib.cv.notify_all();
}

void SocketTransport::fail_channel(Endpoint& ep, i64 from, const std::string& error) {
  Inbox& ib = *ep.inboxes[static_cast<std::size_t>(from)];
  std::deque<Inbox::PostedRecv> orphans;
  std::string full;
  {
    const std::lock_guard<std::mutex> lock(ib.mu);
    if (ib.error.empty())
      ib.error = "channel " + channel_name(from, ep.rank) + ": " + error;
    full = ib.error;
    orphans.swap(ib.posted);
  }
  ib.cv.notify_all();
  // Pipelines waiting on this channel learn of the failure through their
  // completions instead of hanging until a deadline.
  for (const Inbox::PostedRecv& pr : orphans) pr.cq->fail(pr.op, full);
}

void SocketTransport::writer_loop(Endpoint& ep) {
  for (;;) {
    Endpoint::OutMsg msg;
    bool broken = false;
    std::string broken_error;
    {
      std::unique_lock<std::mutex> lock(ep.out_mu);
      ep.out_cv.wait(lock, [&] { return ep.out_stop || !ep.outbox.empty(); });
      if (ep.outbox.empty()) return;  // stopped and fully drained
      msg = std::move(ep.outbox.front());
      ep.outbox.pop_front();
      if (ep.send_broken[static_cast<std::size_t>(msg.to)]) {  // peer already dead
        broken = true;
        broken_error = ep.send_error[static_cast<std::size_t>(msg.to)];
      }
    }
    if (broken) {
      if (msg.cq != nullptr) msg.cq->fail(msg.op, broken_error);
      continue;
    }
    try {
      const int fd = ep.peer_fds[static_cast<std::size_t>(msg.to)].get();
      write_fully(fd, msg.header.data(), msg.header.size());
      if (!msg.payload.empty()) write_fully(fd, msg.payload.data(), msg.payload.size());
      // The isend completes only once its bytes are genuinely accepted by
      // the kernel socket — the writer thread surfaced as completions.
      if (msg.cq != nullptr) msg.cq->complete(msg.op);
    } catch (const TransportError& e) {
      // Record and keep serving other peers; the failure surfaces on the
      // next send() to this peer (and as EOF on its recv side).
      {
        const std::lock_guard<std::mutex> lock(ep.out_mu);
        ep.send_broken[static_cast<std::size_t>(msg.to)] = true;
        ep.send_error[static_cast<std::size_t>(msg.to)] =
            "channel " + channel_name(ep.rank, msg.to) + " broken: " + e.what();
      }
      if (msg.cq != nullptr)
        msg.cq->fail(msg.op, "channel " + channel_name(ep.rank, msg.to) +
                                 " broken: " + e.what());
    }
  }
}

void SocketTransport::reader_loop(Endpoint& ep) {
  // Peers whose stream is still live (not EOF, not poisoned).
  std::vector<i64> live;
  for (i64 q = 0; q < world_; ++q)
    if (ep.peer_fds[static_cast<std::size_t>(q)].valid()) live.push_back(q);

  std::vector<std::byte> header(kHeaderBytes);
  while (!live.empty() && !ep.reader_stop.load(std::memory_order_relaxed)) {
    std::vector<pollfd> pfds;
    pfds.reserve(live.size());
    for (const i64 q : live)
      pfds.push_back(pollfd{ep.peer_fds[static_cast<std::size_t>(q)].get(), POLLIN, 0});
    const int r = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), kReaderPollMs);
    if (r <= 0) continue;  // timeout (or EINTR): re-check the stop flag

    std::vector<i64> still_live;
    still_live.reserve(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      const i64 q = live[i];
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        still_live.push_back(q);
        continue;
      }
      const int fd = ep.peer_fds[static_cast<std::size_t>(q)].get();
      bool keep = false;
      try {
        if (!read_fully(fd, header.data(), kHeaderBytes)) {
          // Clean EOF on a frame boundary: the peer is done sending.
          // Receives posted past the peer's last message fail with the
          // same channel-naming error blocking recv() would throw.
          Inbox& ib = *ep.inboxes[static_cast<std::size_t>(q)];
          std::deque<Inbox::PostedRecv> orphans;
          i64 delivered = 0;
          {
            const std::lock_guard<std::mutex> lock(ib.mu);
            ib.closed = true;
            delivered = ib.stats.messages;
            orphans.swap(ib.posted);
          }
          ib.cv.notify_all();
          for (const Inbox::PostedRecv& pr : orphans)
            pr.cq->fail(pr.op, "channel " + channel_name(q, ep.rank) + " closed: rank " +
                                   std::to_string(q) + " exited before sending (" +
                                   std::to_string(delivered) + " messages delivered)");
        } else {
          std::string err;
          const auto h = decode_header(header.data(), err);
          if (!h) {
            fail_channel(ep, q, err);
          } else if (h->type != FrameType::kData || h->from != q || h->to != ep.rank) {
            fail_channel(ep, q,
                         "misrouted frame (claims " + channel_name(h->from, h->to) + ")");
          } else {
            std::vector<std::byte> payload(h->payload_bytes);
            if (!payload.empty() && !read_fully(fd, payload.data(), payload.size()))
              throw TransportError("peer closed mid-payload");
            const u64 sum = fnv1a64(payload.data(), payload.size());
            if (sum != h->checksum) {
              CYCLICK_COUNT("net.checksum_errors", ep.rank, 1);
              fail_channel(ep, q,
                           "checksum mismatch (header says " + std::to_string(h->checksum) +
                               ", payload hashes to " + std::to_string(sum) +
                               "); frame rejected");
            } else {
              deliver(ep, q, std::move(payload));
              keep = true;
            }
          }
        }
      } catch (const TransportError& e) {
        fail_channel(ep, q, e.what());
      }
      if (keep) still_live.push_back(q);
    }
    live = std::move(still_live);
  }
}

}  // namespace cyclick::net
