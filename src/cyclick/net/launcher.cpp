#include "cyclick/net/launcher.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <thread>

#include <dirent.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "cyclick/runtime/transport.hpp"

namespace cyclick::net {

namespace {

[[nodiscard]] i64 now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void remove_tree(const std::string& dir) {
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name != "." && name != "..") ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

}  // namespace

ProcessGroup::ProcessGroup(i64 world) : world_(world) {
  CYCLICK_REQUIRE(world >= 1, "process group needs at least one rank");
  const char* tmp = std::getenv("TMPDIR");
  std::string tmpl = std::string(tmp != nullptr && *tmp != '\0' ? tmp : "/tmp") +
                     "/cyclick-net-XXXXXX";
  if (::mkdtemp(tmpl.data()) == nullptr)
    throw TransportError(std::string("mkdtemp for rendezvous dir failed: ") +
                         std::strerror(errno));
  dir_ = tmpl;
}

ProcessGroup::~ProcessGroup() {
  kill_remaining(SIGKILL);
  for (std::size_t r = 0; r < pids_.size(); ++r) {
    if (pids_[r] < 0) continue;
    int status = 0;
    ::waitpid(static_cast<pid_t>(pids_[r]), &status, 0);
    pids_[r] = -1;
  }
  remove_tree(dir_);
}

void ProcessGroup::spawn(const std::function<int(i64)>& fn) {
  CYCLICK_REQUIRE(pids_.empty(), "process group already spawned");
  pids_.assign(static_cast<std::size_t>(world_), -1);
  for (i64 r = 0; r < world_; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      kill_remaining(SIGKILL);
      throw TransportError(std::string("fork failed: ") + std::strerror(errno));
    }
    if (pid == 0) {
      // Child: run the rank function and leave via _exit so the parent's
      // atexit handlers and stdio buffers are never replayed.
      int code = 1;
      try {
        code = fn(r);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "rank %lld: uncaught exception: %s\n",
                     static_cast<long long>(r), e.what());
      } catch (...) {
        std::fprintf(stderr, "rank %lld: uncaught non-standard exception\n",
                     static_cast<long long>(r));
      }
      std::fflush(nullptr);
      ::_exit(code);
    }
    pids_[static_cast<std::size_t>(r)] = pid;
  }
}

void ProcessGroup::spawn_exec(const std::vector<std::string>& argv) {
  CYCLICK_REQUIRE(!argv.empty(), "spawn_exec needs an argv");
  spawn([&argv, this](i64 r) -> int {
    ::setenv(kRankEnv, std::to_string(r).c_str(), 1);
    ::setenv(kWorldEnv, std::to_string(world_).c_str(), 1);
    ::setenv(kNetDirEnv, dir_.c_str(), 1);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    // Prefer the concrete binary over a PATH search: the launcher re-runs
    // exactly the image that is already executing.
    ::execv("/proc/self/exe", cargv.data());
    ::execvp(argv[0].c_str(), cargv.data());
    std::fprintf(stderr, "rank %lld: exec %s failed: %s\n", static_cast<long long>(r),
                 argv[0].c_str(), std::strerror(errno));
    return 127;
  });
}

std::vector<ExitStatus> ProcessGroup::wait_all(i64 timeout_ms) {
  std::vector<ExitStatus> statuses(pids_.size());
  for (std::size_t r = 0; r < pids_.size(); ++r) statuses[r].rank = static_cast<i64>(r);

  const i64 deadline = timeout_ms > 0 ? now_ms() + timeout_ms : 0;
  bool killed = false;
  std::size_t remaining = 0;
  for (const i64 pid : pids_)
    if (pid >= 0) ++remaining;

  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t r = 0; r < pids_.size(); ++r) {
      if (pids_[r] < 0) continue;
      int status = 0;
      const pid_t w = ::waitpid(static_cast<pid_t>(pids_[r]), &status, WNOHANG);
      if (w == 0) continue;
      progressed = true;
      --remaining;
      pids_[r] = -1;
      if (w < 0) {
        statuses[r].exit_code = 255;  // lost track of the child entirely
        continue;
      }
      if (WIFEXITED(status)) {
        statuses[r].exit_code = WEXITSTATUS(status);
      } else if (WIFSIGNALED(status)) {
        statuses[r].signal = WTERMSIG(status);
      }
    }
    if (remaining == 0) break;
    if (!progressed) {
      if (deadline > 0 && now_ms() >= deadline && !killed) {
        // A hung world (deadlocked channel, wedged rank): kill stragglers
        // so the failure is a reported signal, not a hung parent.
        kill_remaining(SIGTERM);
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        kill_remaining(SIGKILL);
        killed = true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  return statuses;
}

void ProcessGroup::kill_remaining(int sig) {
  for (const i64 pid : pids_)
    if (pid >= 0) ::kill(static_cast<pid_t>(pid), sig);
}

std::string describe_failures(const std::vector<ExitStatus>& statuses) {
  std::string out;
  for (const ExitStatus& st : statuses) {
    if (st.ok()) continue;
    out += "rank " + std::to_string(st.rank);
    if (st.signal != 0)
      out += " killed by signal " + std::to_string(st.signal);
    else
      out += " exited with code " + std::to_string(st.exit_code);
    out += "\n";
  }
  return out;
}

std::optional<i64> rank_from_env() {
  const char* env = std::getenv(kRankEnv);
  if (env == nullptr || *env == '\0') return std::nullopt;
  return static_cast<i64>(std::atoll(env));
}

i64 world_from_env(i64 fallback) {
  const char* env = std::getenv(kWorldEnv);
  if (env == nullptr || *env == '\0') return fallback;
  return static_cast<i64>(std::atoll(env));
}

std::string net_dir_from_env() {
  const char* env = std::getenv(kNetDirEnv);
  return env != nullptr ? env : "";
}

}  // namespace cyclick::net
