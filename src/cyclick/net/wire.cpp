#include "cyclick/net/wire.hpp"

namespace cyclick::net {

namespace {

void put_u16(std::byte* out, u64 v) noexcept {
  out[0] = static_cast<std::byte>(v & 0xff);
  out[1] = static_cast<std::byte>((v >> 8) & 0xff);
}

void put_u32(std::byte* out, u64 v) noexcept {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
}

void put_u64(std::byte* out, u64 v) noexcept {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
}

[[nodiscard]] u64 get_n(const std::byte* in, int n) noexcept {
  u64 v = 0;
  for (int i = 0; i < n; ++i) v |= static_cast<u64>(in[i]) << (8 * i);
  return v;
}

}  // namespace

u64 fnv1a64(const std::byte* data, std::size_t n) noexcept {
  u64 h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<u64>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

u64 fnv1a64w(const std::byte* data, std::size_t n) noexcept {
  u64 h = 0xcbf29ce484222325ULL;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    h ^= get_n(data + i, 8);
    h *= 0x100000001b3ULL;
  }
  for (; i < n; ++i) {
    h ^= static_cast<u64>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void encode_header(const FrameHeader& h, std::byte* out) noexcept {
  put_u32(out + 0, h.magic);
  put_u16(out + 4, h.version);
  put_u16(out + 6, static_cast<u64>(h.type));
  put_u32(out + 8, static_cast<u64>(static_cast<u64>(h.from) & 0xffffffffULL));
  put_u32(out + 12, static_cast<u64>(static_cast<u64>(h.to) & 0xffffffffULL));
  put_u64(out + 16, h.payload_bytes);
  put_u64(out + 24, h.checksum);
}

namespace {

/// Shared field extraction for both decode paths; validates nothing.
[[nodiscard]] FrameHeader read_fields(const std::byte* in, u64& raw_type) noexcept {
  FrameHeader h;
  h.magic = get_n(in + 0, 4);
  h.version = get_n(in + 4, 2);
  raw_type = get_n(in + 6, 2);
  h.from = static_cast<i64>(get_n(in + 8, 4));
  h.to = static_cast<i64>(get_n(in + 12, 4));
  h.payload_bytes = get_n(in + 16, 8);
  h.checksum = get_n(in + 24, 8);
  return h;
}

}  // namespace

std::optional<FrameHeader> decode_header(const std::byte* in, std::string& error) {
  u64 type = 0;
  FrameHeader h = read_fields(in, type);
  if (h.magic != kWireMagic) {
    error = "bad frame magic 0x" + std::to_string(h.magic) + " (stream desynchronized?)";
    return std::nullopt;
  }
  if (h.version != kWireVersion) {
    error = "unsupported wire version " + std::to_string(h.version) + " (expected " +
            std::to_string(kWireVersion) + ")";
    return std::nullopt;
  }
  if (type > static_cast<u64>(FrameType::kError)) {
    error = "unknown frame type " + std::to_string(type);
    return std::nullopt;
  }
  h.type = static_cast<FrameType>(type);
  if (h.payload_bytes > kMaxPayloadBytes) {
    error = "frame payload length " + std::to_string(h.payload_bytes) +
            " exceeds the protocol maximum";
    return std::nullopt;
  }
  return h;
}

std::optional<FrameHeader> decode_header_lenient(const std::byte* in, std::string& error) {
  u64 type = 0;
  FrameHeader h = read_fields(in, type);
  if (h.magic != kWireMagic) {
    error = "bad frame magic 0x" + std::to_string(h.magic) + " (stream desynchronized?)";
    return std::nullopt;
  }
  if (h.payload_bytes > kMaxPayloadBytes) {
    error = "frame payload length " + std::to_string(h.payload_bytes) +
            " exceeds the protocol maximum";
    return std::nullopt;
  }
  // Version and type deliberately unvalidated: the plan-service daemon reads
  // a mismatched peer's header this way so it can *reply* with a named
  // kError rejection before closing, instead of dropping the stream mid-
  // handshake. Clamp the enum to keep the stored value well-defined.
  h.type = static_cast<FrameType>(type);
  return h;
}

}  // namespace cyclick::net
