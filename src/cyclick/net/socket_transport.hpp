// Socket-backed Transport: per-channel FIFO messaging over Unix-domain
// stream sockets with the wire.hpp framing.
//
// Topology. A SocketTransport owns one *endpoint* per rank that is local
// to the calling process:
//
//   - loopback_mesh(world): every rank is local; endpoints are joined by a
//     socketpair per rank pair. Same address space as InProcessTransport,
//     but every message crosses a real kernel socket, the framing layer,
//     and the reader threads — the conformance configuration.
//   - connect_mesh(rank, world, dir): exactly one rank is local; peers are
//     other OS processes reached through Unix sockets rendezvoused in
//     `dir` (each rank listens on dir/rank-<r>.sock, connects to all lower
//     ranks with retry/backoff, accepts from all higher ranks, and
//     identifies itself with a hello frame) — the multi-process backend.
//
// Threads. Each endpoint runs a writer thread (drains a FIFO outbox, so
// send() never blocks the SPMD rank even when the kernel socket buffer is
// full) and a reader thread (polls all peer sockets, reassembles frames,
// validates header + checksum, and demultiplexes into per-sender inboxes).
// Per-channel FIFO order holds end to end: the sender's outbox preserves
// enqueue order and a stream socket preserves byte order.
//
// Failure semantics. recv() converts every failure mode into a
// TransportError naming the channel: a deadline expiry (recv_timeout_ms,
// default CYCLICK_RECV_TIMEOUT_MS), a peer that closed or died (EOF with
// an empty queue), and checksum or protocol violations (the frame is
// rejected, never delivered). send() to a peer whose connection already
// failed throws likewise. Telemetry: net.messages / net.bytes /
// net.retries / net.checksum_errors counters and net.connect /
// net.recv_wait spans.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cyclick/net/socket.hpp"
#include "cyclick/runtime/transport.hpp"

namespace cyclick::net {

class SocketTransport final : public Transport {
 public:
  struct Options {
    i64 recv_timeout_ms = 0;      ///< <= 0: block forever
    i64 connect_timeout_ms = 10000;
    i64 connect_backoff_ms = 1;   ///< initial retry backoff (doubles, cap 100)

    /// Defaults with the recv deadline taken from CYCLICK_RECV_TIMEOUT_MS.
    [[nodiscard]] static Options from_env() {
      Options o;
      o.recv_timeout_ms = recv_timeout_ms_from_env();
      return o;
    }
  };

  /// All `world` ranks local to this process, joined by socketpairs.
  [[nodiscard]] static std::unique_ptr<SocketTransport> loopback_mesh(
      i64 world, Options opts = Options::from_env());

  /// One local rank of a `world`-process machine; peers rendezvous through
  /// Unix sockets in `dir`. Blocks until the full mesh is connected.
  [[nodiscard]] static std::unique_ptr<SocketTransport> connect_mesh(
      i64 rank, i64 world, const std::string& dir, Options opts = Options::from_env());

  ~SocketTransport() override;

  [[nodiscard]] i64 ranks() const override { return world_; }
  void send(i64 from, i64 to, std::vector<std::byte> payload) override;
  std::vector<std::byte> recv(i64 to, i64 from) override;
  [[nodiscard]] bool ready(i64 to, i64 from) override;

  /// Nonblocking primitives. isend completions are produced by the writer
  /// thread *after* the frame reaches the kernel socket (self sends
  /// complete at delivery); irecv completions by the reader thread at
  /// demux time. A peer that dies or poisons its stream fails every
  /// receive posted on its channel with the channel-naming error instead
  /// of leaving the pipeline hanging.
  void isend(i64 from, i64 to, std::vector<std::byte> payload, CompletionQueue* cq,
             i64 tag) override;
  void irecv(i64 to, i64 from, CompletionQueue& cq, i64 tag) override;
  [[nodiscard]] bool try_recv(i64 to, i64 from, std::vector<std::byte>& out) override;
  void cancel_posted(CompletionQueue& cq) override;
  [[nodiscard]] i64 recv_timeout_ms() const override { return opts_.recv_timeout_ms; }

  /// True when `rank`'s endpoint lives in this process (its channels may
  /// be used as `from` in send / `to` in recv).
  [[nodiscard]] bool is_local(i64 rank) const;

  /// Cumulative delivered traffic on channel (from -> to); `to` must be
  /// local. Counts accrue only while telemetry is enabled (parity with
  /// InProcessTransport::channel_stats).
  [[nodiscard]] ChannelStats channel_stats(i64 from, i64 to);

 private:
  struct Inbox;
  struct Endpoint;

  explicit SocketTransport(i64 world, Options opts);

  Endpoint& endpoint_for(i64 rank, const char* role);
  void start_endpoint_threads();
  void writer_loop(Endpoint& ep);
  void reader_loop(Endpoint& ep);
  void deliver(Endpoint& ep, i64 from, std::vector<std::byte> payload);
  void fail_channel(Endpoint& ep, i64 from, const std::string& error);

  i64 world_;
  Options opts_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;  ///< [world]; null if remote
};

}  // namespace cyclick::net
