// Execution-backend selection shared by the CLI tools: `inproc` (the
// single-process transport simulation) or `proc` (one OS process per rank
// over the socket transport). Tools accept --backend=inproc|proc; the
// CYCLICK_BACKEND environment variable supplies the default so whole test
// suites can be flipped without touching command lines.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "cyclick/support/types.hpp"

namespace cyclick::net {

enum class Backend {
  kInProc,  ///< shared-address-space machine (InProcessTransport)
  kProc,    ///< one OS process per rank (SocketTransport + launcher)
};

[[nodiscard]] const char* backend_name(Backend b) noexcept;

/// "inproc" or "proc" (case-sensitive); nullopt otherwise.
[[nodiscard]] std::optional<Backend> parse_backend_name(std::string_view name) noexcept;

/// True when `arg` is --backend=<name> (folded into `out`). Throws
/// precondition_error on an unknown backend name.
bool parse_backend_flag(std::string_view arg, Backend& out);

/// CYCLICK_BACKEND when set and valid, else `fallback`.
[[nodiscard]] Backend backend_from_env(Backend fallback);

}  // namespace cyclick::net
