// Execution-backend selection shared by the CLI tools: `inproc` (the
// single-process transport simulation), `proc` (one OS process per rank
// over the socket transport) or `sim` (the discrete-event simulated mesh —
// thousands of virtual ranks in one process with modelled link costs).
// Tools accept --backend=inproc|proc|sim; the CYCLICK_BACKEND environment
// variable supplies the default so whole test suites can be flipped
// without touching command lines. Unknown names — on the flag or in the
// environment — fail with a precondition_error listing the valid backends
// rather than silently falling through to a default.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "cyclick/support/types.hpp"

namespace cyclick::net {

enum class Backend {
  kInProc,  ///< shared-address-space machine (InProcessTransport)
  kProc,    ///< one OS process per rank (SocketTransport + launcher)
  kSim,     ///< discrete-event simulated mesh (sim::SimTransport)
};

[[nodiscard]] const char* backend_name(Backend b) noexcept;

/// "inproc", "proc" or "sim" (case-sensitive); nullopt otherwise.
[[nodiscard]] std::optional<Backend> parse_backend_name(std::string_view name) noexcept;

/// True when `arg` is --backend=<name> (folded into `out`). Throws
/// precondition_error naming the rejected value and listing the valid
/// backends on an unknown name.
bool parse_backend_flag(std::string_view arg, Backend& out);

/// CYCLICK_BACKEND when set, else `fallback`. A set-but-invalid value is
/// rejected with a precondition_error listing the valid backends (a typo'd
/// environment must not silently run on the default backend).
[[nodiscard]] Backend backend_from_env(Backend fallback);

}  // namespace cyclick::net
