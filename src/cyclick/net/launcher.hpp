// Rank launcher for the multi-process backend: forks one OS process per
// rank, hands each a rendezvous directory for the socket mesh, waits for
// the world to finish, and aggregates exit codes. Children either run a
// caller-supplied function (spawn) or re-exec the current binary with
// CYCLICK_RANK / CYCLICK_WORLD / CYCLICK_NET_DIR set (spawn_exec) so any
// tool can become rank-aware by checking rank_from_env() at startup.
//
// Failure handling: wait_all reaps every child; once the deadline passes
// (or a child already failed and the rest would block forever on its
// channels), stragglers are killed (SIGTERM, then SIGKILL) rather than
// orphaned, and each rank's exit code / fatal signal is reported. The
// destructor is a last-resort reaper for groups that were never waited.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cyclick/support/types.hpp"

namespace cyclick::net {

/// Environment variables the launcher sets for exec'd rank processes.
inline constexpr const char* kRankEnv = "CYCLICK_RANK";
inline constexpr const char* kWorldEnv = "CYCLICK_WORLD";
inline constexpr const char* kNetDirEnv = "CYCLICK_NET_DIR";

/// One rank process's fate.
struct ExitStatus {
  i64 rank = -1;
  int exit_code = -1;  ///< valid when signal == 0
  int signal = 0;      ///< nonzero when the child died on a signal
  [[nodiscard]] bool ok() const noexcept { return signal == 0 && exit_code == 0; }
};

class ProcessGroup {
 public:
  /// Creates a fresh rendezvous directory under TMPDIR.
  explicit ProcessGroup(i64 world);
  ~ProcessGroup();  ///< kills and reaps any still-running children, removes the dir
  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  [[nodiscard]] i64 world() const noexcept { return world_; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Fork one child per rank; each runs fn(rank) and _exits with its
  /// return value (or 1 on an uncaught exception, which is printed to
  /// stderr). Call before creating any threads in the parent.
  void spawn(const std::function<int(i64)>& fn);

  /// Fork+exec `argv` (argv[0] resolved via /proc/self/exe when it is this
  /// binary's name) once per rank with the rank/world/net-dir environment
  /// set.
  void spawn_exec(const std::vector<std::string>& argv);

  /// Wait for every child. Children still running when the deadline
  /// passes (timeout_ms > 0) are killed — SIGTERM, then SIGKILL — so a
  /// wedged world reports per-rank signals instead of hanging the parent.
  /// Returns one status per rank.
  std::vector<ExitStatus> wait_all(i64 timeout_ms = 30000);

 private:
  void kill_remaining(int sig);

  i64 world_;
  std::string dir_;
  std::vector<i64> pids_;  ///< -1 once reaped
};

/// Render a failed world's statuses as one diagnostic line per bad rank.
[[nodiscard]] std::string describe_failures(const std::vector<ExitStatus>& statuses);

/// CYCLICK_RANK if set: this process is a spawned rank.
[[nodiscard]] std::optional<i64> rank_from_env();
/// CYCLICK_WORLD, or `fallback` when unset.
[[nodiscard]] i64 world_from_env(i64 fallback);
/// CYCLICK_NET_DIR ("" when unset).
[[nodiscard]] std::string net_dir_from_env();

}  // namespace cyclick::net
