// High-level per-processor traversal driver: combines the table (or
// table-free) machinery with bounds handling, hiding the choice of node-code
// shape from the runtime. This is the "compiler-emitted loop" a downstream
// HPF-like system would generate around a statement body.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "cyclick/codegen/nodecode.hpp"
#include "cyclick/core/iterator.hpp"
#include "cyclick/core/lattice_addresser.hpp"
#include "cyclick/hpf/distribution.hpp"
#include "cyclick/hpf/section.hpp"

namespace cyclick {

/// Visit every on-`proc` element of the bounded section, in traversal order
/// (descending for negative strides), without building any table: the
/// table-free R/L enumeration of Section 6.2. The body receives
/// (global index, local address).
template <typename Body>
i64 for_each_local_access(const BlockCyclic& dist, const RegularSection& sec, i64 proc,
                          Body&& body) {
  if (sec.empty()) return 0;
  const RegularSection asc = sec.ascending();
  i64 count = 0;
  if (sec.stride > 0) {
    LocalAccessIterator it(dist, asc.lower, asc.stride, proc);
    for (; !it.done() && it.global() <= asc.upper; it.advance()) {
      body(it.global(), it.local());
      ++count;
    }
    return count;
  }
  // Descending traversal: walk ascending, then replay in reverse. The
  // number of on-proc accesses is bounded by the local size, so buffering
  // is proportional to the processor's share.
  std::vector<std::pair<i64, i64>> buffer;  // (global, local)
  LocalAccessIterator it(dist, asc.lower, asc.stride, proc);
  for (; !it.done() && it.global() <= asc.upper; it.advance())
    buffer.emplace_back(it.global(), it.local());
  for (auto rit = buffer.rbegin(); rit != buffer.rend(); ++rit, ++count)
    body(rit->first, rit->second);
  return count;
}

/// Table-free node code (the fifth shape, Section 6.2): traverse local
/// memory using only the R/L state machine — no AM table, no offset tables.
/// `last` is the local address of the last in-bounds access.
template <typename T, typename Body>
i64 run_table_free(const BlockCyclic& dist, i64 lower, i64 stride, i64 proc,
                   std::span<T> local, i64 last, Body&& body) {
  i64 count = 0;
  for (LocalAccessIterator it(dist, lower, stride, proc); !it.done() && it.local() <= last;
       it.advance()) {
    body(local[static_cast<std::size_t>(it.local())]);
    ++count;
  }
  return count;
}

/// Visit every on-`proc` element of the bounded *ascending* section through
/// the AM table and a node-code shape, applying `body(local_element_ref)`.
/// This is the exact structure the Table-2 benchmark measures.
template <typename T, typename Body>
i64 run_section_node_code(CodeShape shape, const BlockCyclic& dist, const RegularSection& sec,
                          i64 proc, std::span<T> local, Body&& body) {
  CYCLICK_REQUIRE(sec.stride > 0, "node-code shapes run over ascending sections");
  if (sec.empty()) return 0;
  const AccessPattern pattern = compute_access_pattern(dist, sec.lower, sec.stride, proc);
  if (pattern.empty()) return 0;
  OffsetTables tables;
  if (shape == CodeShape::kOffsetIndexed)
    tables = compute_offset_tables(dist, sec.lower, sec.stride, proc);
  const auto last_global = find_last(dist, sec, proc);
  if (!last_global) return 0;
  const i64 last_local = dist.local_index(*last_global);
  return run_node_code(shape, local, pattern, tables, last_local, std::forward<Body>(body));
}

}  // namespace cyclick
