// High-level per-processor traversal driver: combines the table (or
// table-free) machinery with bounds handling, hiding the choice of node-code
// shape from the runtime. This is the "compiler-emitted loop" a downstream
// HPF-like system would generate around a statement body. All entry points
// route through the AddressEngine so strategy selection (dense runs, fixed
// step, nav tables) happens in one place.
#pragma once

#include <span>
#include <utility>

#include "cyclick/codegen/nodecode.hpp"
#include "cyclick/core/engine.hpp"
#include "cyclick/core/iterator.hpp"
#include "cyclick/core/kernels.hpp"
#include "cyclick/hpf/distribution.hpp"
#include "cyclick/hpf/section.hpp"

namespace cyclick {

/// Visit every on-`proc` element of the bounded section, in traversal order
/// (descending for negative strides), via the engine's classified plan.
/// The body receives (global index, local address).
template <typename Body>
i64 for_each_local_access(const BlockCyclic& dist, const RegularSection& sec, i64 proc,
                          Body&& body) {
  return AddressEngine::global().plan(dist, sec, proc).for_each(std::forward<Body>(body));
}

/// Table-free node code (the fifth shape, Section 6.2): traverse local
/// memory using only the R/L state machine — no AM table, no offset tables.
/// `last` is the local address of the last in-bounds access.
template <typename T, typename Body>
i64 run_table_free(const BlockCyclic& dist, i64 lower, i64 stride, i64 proc,
                   std::span<T> local, i64 last, Body&& body) {
  i64 count = 0;
  for (LocalAccessIterator it = AddressEngine::global().stream(dist, lower, stride, proc);
       !it.done() && it.local() <= last; it.advance()) {
    body(local[static_cast<std::size_t>(it.local())]);
    ++count;
  }
  return count;
}

/// Visit every on-`proc` element of the bounded *ascending* section through
/// the AM table and a node-code shape, applying `body(local_element_ref)`.
/// This is the exact structure the Table-2 benchmark measures.
template <typename T, typename Body>
i64 run_section_node_code(CodeShape shape, const BlockCyclic& dist, const RegularSection& sec,
                          i64 proc, std::span<T> local, Body&& body) {
  CYCLICK_REQUIRE(sec.stride > 0, "node-code shapes run over ascending sections");
  if (sec.empty()) return 0;
  const SectionPlan plan = AddressEngine::global().plan(dist, sec, proc);
  if (plan.empty()) return 0;
  const AccessPattern pattern = plan.make_pattern();
  CYCLICK_ASSERT(!pattern.empty());
  OffsetTables tables;
  if (shape == CodeShape::kOffsetIndexed) tables = plan.offset_tables();
  return run_node_code(shape, local, pattern, tables, plan.last_local(),
                       std::forward<Body>(body));
}

/// Strategy-directed local traversal: let the engine's classification pick
/// the loop shape — tight contiguous run loops (std::fill-style) when the
/// plan is dense, the generic enumeration otherwise. Returns the visit
/// count. The body receives `local_element_ref`.
template <typename T, typename Body>
i64 run_section_auto(const BlockCyclic& dist, const RegularSection& sec, i64 proc,
                     std::span<T> local, Body&& body) {
  const SectionPlan plan = AddressEngine::global().plan(dist, sec, proc);
  if (plan.empty()) return 0;
  // Kernels visit local addresses in ascending order; descending sections
  // keep traversal order unless the class is run-copy (whose old contiguous
  // fast path already ran runs low-to-high).
  const KernelPlan kp = compile_kernel(plan);
  if (kp.bulk() && (sec.stride > 0 || kp.cls() == KernelClass::kRunCopy)) {
    kernel_for_each_local(kp, [&](i64 la) { body(local[static_cast<std::size_t>(la)]); });
    return kp.count();
  }
  if (plan.contiguous()) {
    return plan.for_each_run([&](i64, i64 la, i64 len) {
      T* cell = local.data() + la;
      for (i64 i = 0; i < len; ++i) body(cell[i]);
    });
  }
  return plan.for_each(
      [&](i64, i64 la) { body(local[static_cast<std::size_t>(la)]); });
}

}  // namespace cyclick
