// The four node-code shapes of Figure 8: given the AM gap table, traverse a
// processor's local memory and apply a body to every owned section element.
//
//   (a) kModCycle        — advance the table index with i = (i+1) % length
//                          (Chatterjee et al.'s conceptual template; the mod
//                          makes it by far the slowest, Table 2)
//   (b) kConditionalReset— replace the mod by a compare-and-reset
//   (c) kCycleFor        — a for-loop over one table cycle inside an
//                          infinite loop, exiting on the bounds check
//   (d) kOffsetIndexed   — two-table form indexed by block offset
//                          (delta + next_offset), the fastest in the paper
//
// All shapes are expressed over *indices* into the local buffer rather than
// raw pointers so the final advance past `last` stays well-defined; the
// generated machine code is the same strength-reduced add-compare loop.
// Shapes operate on ascending patterns (positive gaps); descending sections
// are normalized by the runtime before reaching node code.
#pragma once

#include <span>

#include "cyclick/core/access_pattern.hpp"
#include "cyclick/support/types.hpp"

namespace cyclick {

enum class CodeShape { kModCycle, kConditionalReset, kCycleFor, kOffsetIndexed };

/// Figure 8(a): mod-advance of the cyclic gap index.
/// `start`/`last` are local addresses; returns the number of accesses made.
template <typename T, typename Body>
i64 run_mod_cycle(std::span<T> local, i64 start, i64 last, std::span<const i64> gaps,
                  Body&& body) {
  if (gaps.empty() || start < 0 || start > last) return 0;
  i64 addr = start;
  std::size_t i = 0;
  i64 count = 0;
  while (addr <= last) {
    body(local[static_cast<std::size_t>(addr)]);
    ++count;
    addr += gaps[i];
    i = (i + 1) % gaps.size();
  }
  return count;
}

/// Figure 8(b): compare-and-reset instead of mod.
template <typename T, typename Body>
i64 run_conditional_reset(std::span<T> local, i64 start, i64 last, std::span<const i64> gaps,
                          Body&& body) {
  if (gaps.empty() || start < 0 || start > last) return 0;
  i64 addr = start;
  std::size_t i = 0;
  i64 count = 0;
  while (addr <= last) {
    body(local[static_cast<std::size_t>(addr)]);
    ++count;
    addr += gaps[i++];
    if (i == gaps.size()) i = 0;
  }
  return count;
}

/// Figure 8(c): for-loop over one cycle inside an infinite loop; the bounds
/// check doubles as the loop exit (the paper's goto done).
template <typename T, typename Body>
i64 run_cycle_for(std::span<T> local, i64 start, i64 last, std::span<const i64> gaps,
                  Body&& body) {
  if (gaps.empty() || start < 0 || start > last) return 0;
  i64 addr = start;
  i64 count = 0;
  while (true) {
    for (std::size_t i = 0; i < gaps.size(); ++i) {
      body(local[static_cast<std::size_t>(addr)]);
      ++count;
      addr += gaps[i];
      if (addr > last) return count;
    }
  }
}

/// Figure 8(d): offset-indexed two-table form. `tables.delta` gives the gap
/// leaving each block offset and `tables.next_offset` the offset it leads
/// to; no cycle counter is needed at all.
template <typename T, typename Body>
i64 run_offset_indexed(std::span<T> local, i64 start, i64 last, const OffsetTables& tables,
                       Body&& body) {
  if (tables.empty() || start < 0 || start > last) return 0;
  i64 addr = start;
  i64 off = tables.start_offset;
  i64 count = 0;
  while (addr <= last) {
    body(local[static_cast<std::size_t>(addr)]);
    ++count;
    addr += tables.delta[static_cast<std::size_t>(off)];
    off = tables.next_offset[static_cast<std::size_t>(off)];
  }
  return count;
}

/// Uniform dispatch over the four shapes. `pattern` supplies the gap table
/// (shapes a-c) and `tables` the offset-indexed form (shape d); `last` is
/// the local address of the processor's last in-bounds access (from
/// find_last), or any value < pattern.start_local for an empty range.
template <typename T, typename Body>
i64 run_node_code(CodeShape shape, std::span<T> local, const AccessPattern& pattern,
                  const OffsetTables& tables, i64 last, Body&& body) {
  if (pattern.empty()) return 0;
  switch (shape) {
    case CodeShape::kModCycle:
      return run_mod_cycle(local, pattern.start_local, last, std::span<const i64>(pattern.gaps),
                           std::forward<Body>(body));
    case CodeShape::kConditionalReset:
      return run_conditional_reset(local, pattern.start_local, last,
                                   std::span<const i64>(pattern.gaps), std::forward<Body>(body));
    case CodeShape::kCycleFor:
      return run_cycle_for(local, pattern.start_local, last, std::span<const i64>(pattern.gaps),
                           std::forward<Body>(body));
    case CodeShape::kOffsetIndexed:
      return run_offset_indexed(local, pattern.start_local, last, tables,
                                std::forward<Body>(body));
  }
  return 0;  // unreachable
}

[[nodiscard]] constexpr const char* code_shape_name(CodeShape shape) noexcept {
  switch (shape) {
    case CodeShape::kModCycle: return "8(a) mod-cycle";
    case CodeShape::kConditionalReset: return "8(b) cond-reset";
    case CodeShape::kCycleFor: return "8(c) cycle-for";
    case CodeShape::kOffsetIndexed: return "8(d) offset-indexed";
  }
  return "?";
}

}  // namespace cyclick
