// ASCII rendering of cyclic(k) layouts in the style of the paper's
// Figures 1, 2 and 6: the template as a matrix of rows of p*k cells,
// processor blocks separated by '|', and selected elements bracketed.
//
//   [0]  1   2   3 |  4   5   6   7     <- row 0, p=2, k=4, section marks
//    8  [9] 10  11 | 12  13  14  15
//
// Used by the amtool CLI and by documentation tests; the rendering is a
// faithful, machine-checkable reproduction of the paper's figures.
#pragma once

#include <functional>
#include <string>

#include "cyclick/hpf/distribution.hpp"
#include "cyclick/hpf/section.hpp"

namespace cyclick {

/// Render `rows` rows of the layout, bracketing every global index for
/// which `mark` returns true.
std::string render_layout(const BlockCyclic& dist, i64 rows,
                          const std::function<bool(i64)>& mark);

/// Figure 1/2 style: bracket the elements of a regular section.
std::string render_section_layout(const BlockCyclic& dist, const RegularSection& sec,
                                  i64 rows);

/// Figure 6 style: bracket only the section elements owned by `proc`
/// (the points the algorithm visits for that processor), and circle the
/// section's lower bound with parentheses.
std::string render_processor_walk(const BlockCyclic& dist, const RegularSection& sec,
                                  i64 proc, i64 rows);

}  // namespace cyclick
