// Fortran-90 regular sections `l : u : s` (subscript triplets).
//
// The access-sequence problem is posed for a section of a distributed array:
// the elements l, l+s, l+2s, ... , bounded by u. Strides may be negative
// (descending sections); stride zero is invalid. The paper computes the gap
// table from (l, s) only — u merely truncates the sequence — and treats
// s < 0 "analogously"; `ascending()` provides that reduction.
#pragma once

#include <string>

#include "cyclick/support/math.hpp"
#include "cyclick/support/types.hpp"

namespace cyclick {

/// A regular section of a one-dimensional index space.
struct RegularSection {
  i64 lower;   ///< first element l
  i64 upper;   ///< inclusive bound u (>= l for s > 0, <= l for s < 0)
  i64 stride;  ///< step s, nonzero

  RegularSection(i64 l, i64 u, i64 s) : lower(l), upper(u), stride(s) {
    CYCLICK_REQUIRE(s != 0, "section stride must be nonzero");
  }

  /// Number of elements: max(0, floor((u - l)/s) + 1).
  [[nodiscard]] i64 size() const noexcept {
    const i64 n = floor_div(upper - lower, stride) + 1;
    return n > 0 ? n : 0;
  }

  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// t-th element, t in [0, size()).
  [[nodiscard]] i64 element(i64 t) const {
    CYCLICK_REQUIRE(t >= 0 && t < size(), "section element index out of range");
    return lower + t * stride;
  }

  /// Last element actually reached (lower + (size()-1)*stride). Requires
  /// a nonempty section.
  [[nodiscard]] i64 last() const {
    CYCLICK_REQUIRE(!empty(), "last() of empty section");
    return lower + (size() - 1) * stride;
  }

  /// True when `v` is one of the section's elements.
  [[nodiscard]] bool contains(i64 v) const noexcept {
    const i64 d = v - lower;
    if (d % stride != 0) return false;
    const i64 t = d / stride;
    return t >= 0 && t < size();
  }

  /// The same element *set* enumerated in ascending order. For s > 0 this is
  /// the section itself (with u tightened to the last reached element); for
  /// s < 0 it runs from last() up to lower with stride -s.
  [[nodiscard]] RegularSection ascending() const {
    CYCLICK_REQUIRE(!empty(), "ascending() of empty section");
    if (stride > 0) return {lower, last(), stride};
    return {last(), lower, -stride};
  }

  /// Apply the affine map i -> a*i + b elementwise. For a < 0 the resulting
  /// stride flips sign; the element order is preserved (element t maps to
  /// element t).
  [[nodiscard]] RegularSection affine_image(i64 a, i64 b) const {
    CYCLICK_REQUIRE(a != 0, "affine alignment must have nonzero coefficient");
    return {a * lower + b, a * upper + b, a * stride};
  }

  /// Intersection of the element sets of two ascending sections, as an
  /// ascending section (empty -> a section with size() == 0). Solves
  /// l1 + s1*t1 = l2 + s2*t2 (CRT); used by the communication-set builder.
  [[nodiscard]] RegularSection intersect(const RegularSection& other) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const RegularSection&, const RegularSection&) = default;
};

}  // namespace cyclick
