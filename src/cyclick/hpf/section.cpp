#include "cyclick/hpf/section.hpp"

#include <sstream>

namespace cyclick {

RegularSection RegularSection::intersect(const RegularSection& other) const {
  static const RegularSection kEmpty{0, -1, 1};
  if (empty() || other.empty()) return kEmpty;
  const RegularSection a = ascending();
  const RegularSection b = other.ascending();

  // Solve v ≡ a.lower (mod a.stride), v ≡ b.lower (mod b.stride).
  const i64 g = gcd_i64(a.stride, b.stride);
  if (floor_mod(b.lower - a.lower, g) != 0) return kEmpty;
  const i64 step = lcm_i64(a.stride, b.stride);

  // v = a.lower + a.stride * t with a.lower + a.stride*t ≡ b.lower (mod b.stride).
  const auto t0 = solve_congruence_min_nonneg(a.stride, b.lower - a.lower, b.stride);
  CYCLICK_ASSERT(t0.has_value());
  i64 v = a.lower + a.stride * *t0;  // smallest common value >= a.lower

  const i64 lo = a.lower > b.lower ? a.lower : b.lower;
  const i64 hi = a.upper < b.upper ? a.upper : b.upper;
  if (v < lo) v += ceil_div(lo - v, step) * step;
  if (v > hi) return kEmpty;
  return {v, hi, step};
}

std::string RegularSection::to_string() const {
  std::ostringstream ss;
  ss << '(' << lower << ':' << upper << ':' << stride << ')';
  return ss.str();
}

}  // namespace cyclick
