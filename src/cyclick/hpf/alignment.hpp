// Affine alignments of arrays to distributed templates (paper, Section 2).
//
// HPF aligns array element A(i) with template cell a*i + b. Identity
// alignment is (a, b) = (1, 0). The access-sequence problem for an aligned
// array reduces to two applications of the identity-alignment algorithm
// (Chatterjee et al.): one for the *layout* lattice (template cells
// occupied by any array element, stride a) and one for the *section*
// lattice (cells occupied by section elements, stride a*s). The reduction
// itself lives in core/aligned.hpp; this header is the descriptor.
#pragma once

#include "cyclick/hpf/section.hpp"
#include "cyclick/support/types.hpp"

namespace cyclick {

/// Affine alignment  template_cell(i) = a*i + b.
struct AffineAlignment {
  i64 a;  ///< coefficient, nonzero
  i64 b;  ///< offset

  AffineAlignment(i64 coeff, i64 off) : a(coeff), b(off) {
    CYCLICK_REQUIRE(coeff != 0, "alignment coefficient must be nonzero");
  }

  static AffineAlignment identity() { return {1, 0}; }

  [[nodiscard]] bool is_identity() const noexcept { return a == 1 && b == 0; }

  /// Template cell of array element i.
  [[nodiscard]] i64 cell(i64 i) const noexcept { return a * i + b; }

  /// Array index occupying template cell t, if any.
  [[nodiscard]] std::optional<i64> index_of_cell(i64 t) const noexcept {
    const i64 d = t - b;
    if (d % a != 0) return std::nullopt;
    return d / a;
  }

  /// Image of an array section in template space: (a*l+b : a*u+b : a*s).
  [[nodiscard]] RegularSection image(const RegularSection& s) const {
    return s.affine_image(a, b);
  }

  /// Template cells occupied by the whole n-element array [0, n), as an
  /// ascending template section.
  [[nodiscard]] RegularSection layout(i64 n) const {
    CYCLICK_REQUIRE(n >= 1, "array must have at least one element");
    return RegularSection{b, a * (n - 1) + b, a}.ascending();
  }

  friend bool operator==(const AffineAlignment&, const AffineAlignment&) = default;
};

}  // namespace cyclick
