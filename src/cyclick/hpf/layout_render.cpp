#include "cyclick/hpf/layout_render.hpp"

#include <sstream>
#include <string>

namespace cyclick {
namespace {

// Width of the decimal rendering of the largest index shown.
int digits_for(i64 max_value) {
  int w = 1;
  for (i64 v = max_value; v >= 10; v /= 10) ++w;
  return w;
}

std::string render(const BlockCyclic& dist, i64 rows,
                   const std::function<char(i64)>& decoration) {
  CYCLICK_REQUIRE(rows >= 1, "must render at least one row");
  const i64 pk = dist.row_length();
  const i64 k = dist.block_size();
  const int width = digits_for(rows * pk - 1);
  std::ostringstream out;
  for (i64 r = 0; r < rows; ++r) {
    for (i64 x = 0; x < pk; ++x) {
      const i64 g = r * pk + x;
      const char deco = decoration(g);
      std::string cell = std::to_string(g);
      while (static_cast<int>(cell.size()) < width) cell.insert(cell.begin(), ' ');
      switch (deco) {
        case '[': out << '[' << cell << ']'; break;
        case '(': out << '(' << cell << ')'; break;
        default: out << ' ' << cell << ' '; break;
      }
      if (x % k == k - 1 && x != pk - 1) out << '|';
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace

std::string render_layout(const BlockCyclic& dist, i64 rows,
                          const std::function<bool(i64)>& mark) {
  return render(dist, rows, [&](i64 g) -> char { return mark(g) ? '[' : ' '; });
}

std::string render_section_layout(const BlockCyclic& dist, const RegularSection& sec,
                                  i64 rows) {
  return render(dist, rows, [&](i64 g) -> char {
    if (!sec.contains(g)) return ' ';
    return g == sec.lower ? '(' : '[';
  });
}

std::string render_processor_walk(const BlockCyclic& dist, const RegularSection& sec,
                                  i64 proc, i64 rows) {
  CYCLICK_REQUIRE(proc >= 0 && proc < dist.procs(), "processor id out of range");
  return render(dist, rows, [&](i64 g) -> char {
    if (g == sec.lower) return '(';
    if (sec.contains(g) && dist.owner(g) == proc) return '[';
    return ' ';
  });
}

}  // namespace cyclick
