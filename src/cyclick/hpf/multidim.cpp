#include "cyclick/hpf/multidim.hpp"

namespace cyclick {

ProcessorGrid::ProcessorGrid(std::vector<i64> extents)
    : extents_(std::move(extents)), total_(1) {
  CYCLICK_REQUIRE(!extents_.empty(), "processor grid needs at least one dimension");
  for (const i64 e : extents_) {
    CYCLICK_REQUIRE(e >= 1, "grid extent must be >= 1");
    CYCLICK_REQUIRE(total_ <= INT64_MAX / e, "grid size overflows");
    total_ *= e;
  }
}

i64 ProcessorGrid::rank_of(const std::vector<i64>& coords) const {
  CYCLICK_REQUIRE(coords.size() == extents_.size(), "grid coordinate arity mismatch");
  i64 rank = 0;
  for (std::size_t d = 0; d < extents_.size(); ++d) {
    CYCLICK_REQUIRE(coords[d] >= 0 && coords[d] < extents_[d], "grid coordinate out of range");
    rank = rank * extents_[d] + coords[d];
  }
  return rank;
}

std::vector<i64> ProcessorGrid::coords_of(i64 rank) const {
  CYCLICK_REQUIRE(rank >= 0 && rank < total_, "rank out of range");
  std::vector<i64> coords(extents_.size());
  for (std::size_t d = extents_.size(); d-- > 0;) {
    coords[d] = rank % extents_[d];
    rank /= extents_[d];
  }
  return coords;
}

MultiDimMapping::MultiDimMapping(std::vector<DimMapping> dims, ProcessorGrid grid)
    : dims_(std::move(dims)), grid_(std::move(grid)), capacity_(1) {
  CYCLICK_REQUIRE(dims_.size() == grid_.dims(),
                  "array dimensionality must match processor grid");
  local_extent_.reserve(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    const DimMapping& dm = dims_[d];
    CYCLICK_REQUIRE(dm.dist.procs() == grid_.extent(d),
                    "dimension distribution must match grid extent");
    const i64 first_cell = dm.align.cell(0);
    const i64 last_cell = dm.align.cell(dm.extent - 1);
    const i64 min_cell = first_cell < last_cell ? first_cell : last_cell;
    const i64 max_cell = first_cell < last_cell ? last_cell : first_cell;
    CYCLICK_REQUIRE(min_cell >= 0, "alignment maps array outside template");
    const i64 cap = dm.dist.local_capacity(max_cell + 1);
    local_extent_.push_back(cap);
    CYCLICK_REQUIRE(cap == 0 || capacity_ <= INT64_MAX / (cap == 0 ? 1 : cap),
                    "local capacity overflows");
    capacity_ *= cap;
  }
}

i64 MultiDimMapping::owner_rank(const std::vector<i64>& index) const {
  CYCLICK_REQUIRE(index.size() == dims_.size(), "subscript arity mismatch");
  std::vector<i64> coords(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    CYCLICK_REQUIRE(index[d] >= 0 && index[d] < dims_[d].extent, "subscript out of range");
    coords[d] = dims_[d].owner(index[d]);
  }
  return grid_.rank_of(coords);
}

i64 MultiDimMapping::local_address(const std::vector<i64>& index) const {
  CYCLICK_REQUIRE(index.size() == dims_.size(), "subscript arity mismatch");
  i64 addr = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    CYCLICK_REQUIRE(index[d] >= 0 && index[d] < dims_[d].extent, "subscript out of range");
    const i64 cell = dims_[d].align.cell(index[d]);
    addr = addr * local_extent_[d] + dims_[d].dist.local_index(cell);
  }
  return addr;
}

i64 MultiDimMapping::total_elements() const noexcept {
  i64 total = 1;
  for (const DimMapping& dm : dims_) total *= dm.extent;
  return total;
}

}  // namespace cyclick
