// Multidimensional arrays under per-dimension cyclic(k) distributions.
//
// HPF distributes each dimension independently onto one axis of a processor
// grid (paper, Section 2: "In multidimensional arrays, alignments and
// distributions of each dimension are independent of one another"), so the
// multidimensional access problem factors into one one-dimensional problem
// per dimension. This module provides the processor grid, the per-dimension
// mapping descriptor, and the owner / local-address algebra; the cross
// product of per-dimension access sequences is assembled in the runtime.
#pragma once

#include <vector>

#include "cyclick/hpf/alignment.hpp"
#include "cyclick/hpf/distribution.hpp"
#include "cyclick/hpf/section.hpp"
#include "cyclick/support/types.hpp"

namespace cyclick {

/// A Cartesian grid of processors; ranks are linearized row-major
/// (last dimension fastest), matching HPF PROCESSORS arrays.
class ProcessorGrid {
 public:
  explicit ProcessorGrid(std::vector<i64> extents);

  [[nodiscard]] i64 rank_count() const noexcept { return total_; }
  [[nodiscard]] std::size_t dims() const noexcept { return extents_.size(); }
  [[nodiscard]] i64 extent(std::size_t d) const { return extents_.at(d); }

  /// Linear rank of a grid coordinate tuple.
  [[nodiscard]] i64 rank_of(const std::vector<i64>& coords) const;

  /// Grid coordinates of a linear rank.
  [[nodiscard]] std::vector<i64> coords_of(i64 rank) const;

 private:
  std::vector<i64> extents_;
  i64 total_;
};

/// Mapping of one array dimension: extent, affine alignment to a template
/// dimension, and the distribution of that template dimension.
struct DimMapping {
  i64 extent;             ///< array extent in this dimension
  AffineAlignment align;  ///< array index -> template cell
  BlockCyclic dist;       ///< distribution of the template dimension

  DimMapping(i64 n, AffineAlignment al, BlockCyclic d)
      : extent(n), align(al), dist(d) {
    CYCLICK_REQUIRE(n >= 1, "dimension extent must be >= 1");
  }

  /// Owning grid coordinate of array index i in this dimension.
  [[nodiscard]] i64 owner(i64 i) const noexcept { return dist.owner(align.cell(i)); }
};

/// Full mapping of a multidimensional array onto a processor grid. The
/// number of dimensions must match the grid's. Local storage on each rank is
/// dense row-major over the per-dimension *template* local capacities, so
/// that per-dimension local addresses compose linearly. (A packed layout per
/// alignment is what core/aligned.hpp computes for 1-D; for multidimensional
/// arrays we use the standard template-capacity layout that HPF compilers
/// use, which wastes space only for non-unit alignment coefficients.)
class MultiDimMapping {
 public:
  MultiDimMapping(std::vector<DimMapping> dims, ProcessorGrid grid);

  [[nodiscard]] std::size_t dims() const noexcept { return dims_.size(); }
  [[nodiscard]] const DimMapping& dim(std::size_t d) const { return dims_.at(d); }
  [[nodiscard]] const ProcessorGrid& grid() const noexcept { return grid_; }

  /// Linear rank owning the array element at `index` (one subscript per dim).
  [[nodiscard]] i64 owner_rank(const std::vector<i64>& index) const;

  /// Row-major local address of `index` on its owning rank.
  [[nodiscard]] i64 local_address(const std::vector<i64>& index) const;

  /// Per-rank local storage size (identical on all ranks by construction).
  [[nodiscard]] i64 local_capacity() const noexcept { return capacity_; }

  /// Local storage extent of dimension d (local addresses are row-major
  /// over these extents).
  [[nodiscard]] i64 local_extent(std::size_t d) const { return local_extent_.at(d); }

  /// Total number of array elements.
  [[nodiscard]] i64 total_elements() const noexcept;

 private:
  std::vector<DimMapping> dims_;
  ProcessorGrid grid_;
  std::vector<i64> local_extent_;  ///< per-dim local capacity
  i64 capacity_;
};

}  // namespace cyclick
