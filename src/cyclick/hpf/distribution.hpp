// HPF data-mapping substrate: the cyclic(k) block-cyclic distribution.
//
// A template of cells 0,1,2,... distributed cyclic(k) onto p processors is
// viewed (paper, Section 2 and Figure 1) as a matrix whose rows each hold
// p*k consecutive cells; processor m owns the offsets [k*m, k*(m+1)) of
// every row and stores them contiguously, k cells of local memory per row:
//
//   global i  ->  row  r = i div (p*k)
//                 off  x = i mod (p*k)          (offset within the row)
//                 owner    m = x div k
//                 local    r*k + (x - k*m)      (packed local address)
//
// `cyclic` is cyclic(1) and `block` is cyclic(ceil(n/p)); both are exposed
// as factories.
#pragma once

#include "cyclick/support/math.hpp"
#include "cyclick/support/types.hpp"

namespace cyclick {

/// Decomposition of a global index under a block-cyclic distribution.
struct GlobalCoords {
  i64 row;     ///< global block-row, i div (p*k)
  i64 offset;  ///< offset within the row, i mod (p*k), in [0, p*k)
  i64 owner;   ///< owning processor, offset div k
  i64 local;   ///< packed local address on `owner`
};

/// A one-dimensional cyclic(k) distribution over p processors.
///
/// Immutable value type; all queries are O(1). Global indices may be any
/// signed 64-bit value (negative template cells arise under affine
/// alignments with negative offsets), handled with floor semantics.
class BlockCyclic {
 public:
  /// cyclic(k) over p processors. Requires p >= 1, k >= 1.
  BlockCyclic(i64 procs, i64 block)
      : p_(procs), k_(block) {
    CYCLICK_REQUIRE(procs >= 1, "processor count must be >= 1");
    CYCLICK_REQUIRE(block >= 1, "block size must be >= 1");
    CYCLICK_REQUIRE(procs <= (INT64_MAX / block), "p*k overflows");
  }

  /// cyclic distribution == cyclic(1).
  static BlockCyclic cyclic(i64 procs) { return {procs, 1}; }

  /// HPF block distribution of an n-element template == cyclic(ceil(n/p)).
  static BlockCyclic block(i64 n, i64 procs) {
    CYCLICK_REQUIRE(n >= 1, "template size must be >= 1");
    CYCLICK_REQUIRE(procs >= 1, "processor count must be >= 1");
    return {procs, ceil_div(n, procs)};
  }

  [[nodiscard]] i64 procs() const noexcept { return p_; }
  [[nodiscard]] i64 block_size() const noexcept { return k_; }
  /// Row length p*k — the fundamental modulus of the access problem.
  [[nodiscard]] i64 row_length() const noexcept { return p_ * k_; }

  [[nodiscard]] i64 row(i64 global) const noexcept { return floor_div(global, row_length()); }
  [[nodiscard]] i64 offset(i64 global) const noexcept { return floor_mod(global, row_length()); }
  [[nodiscard]] i64 owner(i64 global) const noexcept { return offset(global) / k_; }
  /// Offset of the element within its owner's k-wide block.
  [[nodiscard]] i64 block_offset(i64 global) const noexcept { return offset(global) % k_; }

  /// Packed local address of `global` on its owning processor.
  [[nodiscard]] i64 local_index(i64 global) const noexcept {
    return row(global) * k_ + block_offset(global);
  }

  /// Full decomposition in one call.
  [[nodiscard]] GlobalCoords coords(i64 global) const noexcept {
    const i64 r = row(global);
    const i64 x = global - r * row_length();
    const i64 m = x / k_;
    return {r, x, m, r * k_ + (x - k_ * m)};
  }

  /// Inverse of local_index: global index of local cell `local` on `proc`.
  [[nodiscard]] i64 global_index(i64 proc, i64 local) const {
    CYCLICK_REQUIRE(proc >= 0 && proc < p_, "processor id out of range");
    CYCLICK_REQUIRE(local >= 0, "local index must be nonnegative");
    const i64 r = local / k_;
    const i64 o = local % k_;
    return r * row_length() + proc * k_ + o;
  }

  /// True when `global` lives on processor `proc`.
  [[nodiscard]] bool is_local(i64 global, i64 proc) const noexcept {
    return owner(global) == proc;
  }

  /// Number of cells of an n-cell template [0, n) owned by `proc`
  /// (the ScaLAPACK "numroc" quantity).
  [[nodiscard]] i64 local_size(i64 proc, i64 n) const {
    CYCLICK_REQUIRE(proc >= 0 && proc < p_, "processor id out of range");
    CYCLICK_REQUIRE(n >= 0, "template size must be nonnegative");
    const i64 full_rows = n / row_length();
    const i64 rem = n % row_length();
    i64 tail = rem - proc * k_;
    if (tail < 0) tail = 0;
    if (tail > k_) tail = k_;
    return full_rows * k_ + tail;
  }

  /// Local storage needed on every processor for an n-cell template: the
  /// maximum local_size over processors (processor 0 is always maximal).
  [[nodiscard]] i64 local_capacity(i64 n) const { return local_size(0, n); }

  friend bool operator==(const BlockCyclic&, const BlockCyclic&) = default;

 private:
  i64 p_;
  i64 k_;
};

}  // namespace cyclick
