// Sharded concurrent LRU cache: the serving layer's answer to the
// single-mutex LRUs that every plan cache in the system grew up with.
//
// The access-sequence artifacts this system caches (EngineTables, CommPlans,
// serialized plan-service replies) are immutable once built and keyed by
// small value structs, so the cache's job is pure read scaling: thousands of
// concurrent lookups against a mostly-warm table. A single mutex serializes
// every reader *and* forces a list splice per hit; under load the lock convoy
// dominates the lookup itself. This cache stripes the key space over N
// independent shards:
//
//   - shard selection hashes the key once and takes the high bits of a
//     Fibonacci remix, so shard load stays balanced even for clustered keys;
//   - each shard owns a mutex, an open hash map, and an exact per-shard LRU
//     implemented with monotonic touch tags (every hit stamps the entry with
//     the shard's clock; eviction removes the minimum stamp). No intrusive
//     list means a hit's critical section is a hash probe plus two stores;
//   - values are shared_ptr<const V>: readers leave the lock with a
//     refcounted snapshot, and an evicted value stays alive for every holder;
//   - insert is keep-existing: when two threads build the same value after
//     racing through a miss, the first insert wins and both converge on one
//     canonical object (the dedup AddressEngine relies on for table sharing);
//   - each shard carries a *content generation* counter bumped by every
//     insert / eviction / clear (never by a hit). Snapshot readers use it to
//     bracket quiescence: two stats() calls that observe the same generation
//     saw the same key set. The generation is the one atomic on the hot
//     path; hit/miss/eviction counters are plain fields guarded by the shard
//     mutex (stats() briefly locks each shard in turn), keeping a cache hit's
//     critical section free of read-modify-write atomics.
//
// Capacity semantics: total capacity is split evenly across shards and
// eviction is per-shard, so the cache is exactly-LRU within a shard and
// approximately-LRU globally. When the shard count is 1 (the automatic
// choice for small capacities) the behavior is bit-for-bit the classic
// single-LRU discipline — which is how the differential tests pin the
// sharded engine against the historical single-mutex path.
//
// This header lives in support/ (dependency-free beyond types.hpp) so the
// core engine, the runtime plan caches, and the serve daemon all share one
// cache without any of them depending on another layer's namespace.
#pragma once

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "cyclick/support/types.hpp"

namespace cyclick {

/// Automatic shard count for a given total capacity: the largest power of
/// two that still leaves >= 16 entries per shard, capped at 64. Small
/// caches (capacity < 32) get one shard and therefore exact global LRU.
[[nodiscard]] inline std::size_t auto_shard_count(std::size_t capacity) noexcept {
  std::size_t shards = 1;
  while (shards < 64 && shards * 2 * 16 <= capacity) shards *= 2;
  return shards;
}

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedCache {
 public:
  struct Stats {
    i64 hits = 0;
    i64 misses = 0;
    i64 evictions = 0;
    std::size_t size = 0;
    u64 generation = 0;  ///< sum of shard content generations
  };

  /// `shards` == 0 selects auto_shard_count(capacity); otherwise it is
  /// rounded down to a power of two (minimum 1).
  explicit ShardedCache(std::size_t capacity, std::size_t shards = 0)
      : capacity_(capacity == 0 ? 1 : capacity) {
    std::size_t n = shards == 0 ? auto_shard_count(capacity_) : shards;
    std::size_t pow2 = 1;
    while (pow2 * 2 <= n) pow2 *= 2;
    shard_mask_ = pow2 - 1;
    const std::size_t per_shard = (capacity_ + pow2 - 1) / pow2;
    // One contiguous allocation: shard_for() resolves to base + index with
    // no per-shard pointer chase.
    shards_ = std::make_unique<Shard[]>(pow2);
    for (std::size_t i = 0; i < pow2; ++i) shards_[i].cap = per_shard == 0 ? 1 : per_shard;
  }

  /// Look up `key`; counts a hit (stamping recency) or a miss. Lock scope is
  /// one shard.
  [[nodiscard]] std::shared_ptr<const Value> find(const Key& key) {
    Shard& s = shard_for(key);
    const std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.map.find(key);
    if (it == s.map.end()) {
      ++s.misses;
      return nullptr;
    }
    it->second.touch = ++s.clock;
    ++s.hits;
    return it->second.value;
  }

  /// Insert `value` under `key`, evicting the shard's least recently used
  /// entry when the shard is over its slice of the capacity. Keep-existing:
  /// if the key is already present the stored value is refreshed in recency
  /// and returned unchanged, so racing builders converge on one object.
  /// This is only sound because every cached artifact here is fully
  /// determined by its key; there is deliberately no replace path, so a
  /// caller that ever needs refresh-with-new-value semantics (e.g. after an
  /// invalidation) must clear() first or grow an explicit replace API —
  /// inserting over a live key silently keeps the old value.
  /// `evicted`, when non-null, reports whether this insert displaced an
  /// entry (callers mirror it into their own obs counters).
  std::shared_ptr<const Value> insert(const Key& key, std::shared_ptr<const Value> value,
                                      bool* evicted = nullptr) {
    if (evicted != nullptr) *evicted = false;
    Shard& s = shard_for(key);
    const std::lock_guard<std::mutex> lock(s.mu);
    const auto [it, fresh] = s.map.try_emplace(key);
    it->second.touch = ++s.clock;
    if (!fresh) return it->second.value;
    it->second.value = std::move(value);
    s.gen.fetch_add(1, std::memory_order_relaxed);
    if (s.map.size() > s.cap) {
      // The new entry holds the maximum touch stamp, so the scan can never
      // pick it; erasing another key leaves `it` valid.
      auto victim = s.map.begin();
      for (auto j = s.map.begin(); j != s.map.end(); ++j)
        if (j->second.touch < victim->second.touch) victim = j;
      s.map.erase(victim);
      ++s.evictions;
      s.gen.fetch_add(1, std::memory_order_relaxed);
      if (evicted != nullptr) *evicted = true;
    }
    return it->second.value;
  }

  /// Drop every entry (counters keep their values; reset_stats() zeroes
  /// them separately). Each shard's content generation advances.
  void clear() {
    for (std::size_t i = 0; i <= shard_mask_; ++i) {
      Shard& s = shards_[i];
      const std::lock_guard<std::mutex> lock(s.mu);
      if (!s.map.empty()) s.gen.fetch_add(1, std::memory_order_relaxed);
      s.map.clear();
    }
  }

  /// Zero the hit/miss/eviction counters (bench and test isolation).
  void reset_stats() {
    for (std::size_t i = 0; i <= shard_mask_; ++i) {
      Shard& s = shards_[i];
      const std::lock_guard<std::mutex> lock(s.mu);
      s.hits = 0;
      s.misses = 0;
      s.evictions = 0;
    }
  }

  /// Aggregate snapshot; briefly locks each shard in turn, so sizes are
  /// exact per shard (the aggregate can still interleave with writers on
  /// other shards — that is what the generation bracket is for).
  [[nodiscard]] Stats stats() const {
    Stats st;
    for (std::size_t i = 0; i <= shard_mask_; ++i) {
      Shard& s = shards_[i];
      const std::lock_guard<std::mutex> lock(s.mu);
      st.hits += s.hits;
      st.misses += s.misses;
      st.evictions += s.evictions;
      st.size += s.map.size();
      st.generation += s.gen.load(std::memory_order_relaxed);
    }
    return st;
  }

  /// Content generation of the shard `key` maps to: changes exactly when
  /// that shard's key set changes (insert / evict / clear), never on a hit.
  [[nodiscard]] u64 shard_generation(const Key& key) const {
    return shard_for(key).gen.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t shard_count() const noexcept { return shard_mask_ + 1; }

 private:
  struct Entry {
    std::shared_ptr<const Value> value;
    u64 touch = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Entry, Hash> map;
    u64 clock = 0;  ///< recency stamp source; guarded by mu
    std::size_t cap = 1;
    // Guarded by mu: plain fields keep the hit path free of atomic RMWs.
    i64 hits = 0;
    i64 misses = 0;
    i64 evictions = 0;
    std::atomic<u64> gen{0};  ///< content generation; readable without mu
  };

  [[nodiscard]] Shard& shard_for(const Key& key) const {
    // Fibonacci remix of the key hash; high bits pick the shard so maps
    // whose low bits collide (common for small integer keys) still spread.
    const u64 h = static_cast<u64>(Hash{}(key)) * 0x9e3779b97f4a7c15ULL;
    return shards_[static_cast<std::size_t>(h >> 32) & shard_mask_];
  }

  std::size_t capacity_;
  std::size_t shard_mask_ = 0;
  std::unique_ptr<Shard[]> shards_;
};

/// The historical discipline: one mutex, one intrusive LRU list, one map.
/// Kept as the differential-testing oracle for ShardedCache (a 1-shard
/// ShardedCache must reproduce its hit/miss/eviction stream exactly) and as
/// the contention baseline in bench/plan_service. Not used on any hot path.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class SingleMutexLruCache {
 public:
  struct Stats {
    i64 hits = 0;
    i64 misses = 0;
    i64 evictions = 0;
    std::size_t size = 0;
  };

  explicit SingleMutexLruCache(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  [[nodiscard]] std::shared_ptr<const Value> find(const Key& key) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }

  std::shared_ptr<const Value> insert(const Key& key, std::shared_ptr<const Value> value,
                                      bool* evicted = nullptr) {
    if (evicted != nullptr) *evicted = false;
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
    lru_.emplace_front(key, std::move(value));
    map_.emplace(key, lru_.begin());
    if (map_.size() > capacity_) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
      ++evictions_;
      if (evicted != nullptr) *evicted = true;
    }
    return lru_.front().second;
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
  }

  [[nodiscard]] Stats stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return Stats{hits_, misses_, evictions_, map_.size()};
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  using ListEntry = std::pair<Key, std::shared_ptr<const Value>>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<ListEntry> lru_;
  std::unordered_map<Key, typename std::list<ListEntry>::iterator, Hash> map_;
  i64 hits_ = 0;
  i64 misses_ = 0;
  i64 evictions_ = 0;
};

}  // namespace cyclick
