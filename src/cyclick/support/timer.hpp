// Timing utilities for the benchmark harnesses.
//
// The paper reports table-construction and node-code execution times in
// microseconds, taking the maximum over all 32 processors (each processor
// runs the full algorithm with its own processor number m). We reproduce
// that measurement discipline: run the per-rank computation for every rank,
// time each rank's run, and report the maximum; repeat the whole sweep and
// keep the minimum-of-maxima to suppress scheduler noise.
#pragma once

#include <chrono>
#include <utility>

#include "cyclick/support/types.hpp"

namespace cyclick {

/// Monotonic stopwatch with microsecond readout.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed time in microseconds (fractional).
  [[nodiscard]] double elapsed_us() const {
    const auto d = clock::now() - start_;
    return std::chrono::duration<double, std::micro>(d).count();
  }

  [[nodiscard]] double elapsed_ns() const {
    const auto d = clock::now() - start_;
    return std::chrono::duration<double, std::nano>(d).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Time `fn()` once, in microseconds.
template <typename Fn>
double time_once_us(Fn&& fn) {
  Stopwatch sw;
  std::forward<Fn>(fn)();
  return sw.elapsed_us();
}

/// Best (minimum) of `repeats` timings of `fn`, in microseconds. The minimum
/// is the standard estimator for a deterministic computation's cost: all
/// noise (interrupts, frequency ramps) is additive.
template <typename Fn>
double time_best_us(int repeats, Fn&& fn) {
  double best = time_once_us(fn);
  for (int r = 1; r < repeats; ++r) {
    const double t = time_once_us(fn);
    if (t < best) best = t;
  }
  return best;
}

/// Prevent the optimizer from discarding a computed value.
template <typename T>
inline void do_not_optimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

}  // namespace cyclick
