#include "cyclick/support/math.hpp"

namespace cyclick {

i64 lcm_i64(i64 a, i64 b) {
  if (a == 0 || b == 0) return 0;
  const i64 g = gcd_i64(a, b);
  const i128 l = static_cast<i128>(a / g) * static_cast<i128>(b);
  const i128 pos = l < 0 ? -l : l;
  CYCLICK_REQUIRE(pos <= static_cast<i128>(INT64_MAX), "lcm overflows 64 bits");
  return static_cast<i64>(pos);
}

std::optional<i64> solve_congruence_min_nonneg(i64 a, i64 c, i64 n) {
  CYCLICK_REQUIRE(n > 0, "congruence modulus must be positive");
  const EgcdResult eg = extended_euclid(floor_mod(a, n), n);
  return solve_congruence_min_nonneg(a, c, n, eg);
}

std::optional<i64> mod_inverse(i64 a, i64 n) {
  CYCLICK_REQUIRE(n > 0, "modulus must be positive");
  const EgcdResult eg = extended_euclid(floor_mod(a, n), n);
  if (eg.g != 1) return std::nullopt;
  return floor_mod(eg.x, n);
}

}  // namespace cyclick
