// The shared Diophantine scan used by both the lattice algorithm and the
// Chatterjee et al. baseline (the paper coded these common segments
// identically for a fair comparison; we share the actual code).
//
// For a window of target residues [lo, hi), the scan visits every solvable
// equation  s*j ≡ i (mod pk)  — exactly the multiples of d = gcd(s, pk) —
// and yields the smallest nonnegative solution j for each. The paper notes
// (Section 5) that "successive solvable equations are d offsets apart" and
// exploits this to remove the conditionals from the loops; solutions also
// advance by a constant (x mod (pk/d)) between successive solvable
// residues, so after one initial modular solve each step is an add and a
// conditional subtract.
#pragma once

#include "cyclick/support/math.hpp"
#include "cyclick/support/types.hpp"

namespace cyclick {

/// Precomputed state for residue scans against a fixed (stride, pk) pair.
struct ResidueScan {
  i64 pk;       ///< row length
  i64 d;        ///< gcd(stride, pk)
  i64 period;   ///< pk / d — the j-period of any fixed residue
  i64 x_step;   ///< x mod period: j advances by this per solvable residue
  EgcdResult eg;

  ResidueScan(i64 stride, i64 row_length)
      : pk(row_length), eg(extended_euclid(floor_mod(stride, row_length), row_length)) {
    d = eg.g;
    period = pk / d;
    x_step = floor_mod(eg.x, period);
  }

  /// Visit every solvable residue i in [lo, hi) in increasing order,
  /// calling fn(i, j) with j the smallest nonnegative solution of
  /// s*j ≡ i (mod pk). O(#multiples of d in the window) after one
  /// initial O(1) modular solve.
  template <typename Fn>
  void for_each_solvable(i64 lo, i64 hi, Fn&& fn) const {
    i64 i = lo + floor_mod(-lo, d);  // first multiple of d at or above lo
    if (i >= hi) return;
    i64 j = mulmod(x_step, i / d, period);  // exact division: d | i
    for (; i < hi; i += d) {
      fn(i, j);
      j += x_step;
      if (j >= period) j -= period;
    }
  }
};

}  // namespace cyclick
