// Minimal text/CSV table writer used by the benchmark harnesses to print
// paper-shaped tables (Table 1, Table 2, Figure 7 series) to stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cyclick/support/types.hpp"

namespace cyclick {

/// Accumulates rows of string cells and renders them either as an aligned
/// ASCII table (for humans) or as CSV (for plotting scripts).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with padded columns, a rule under the header.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (no quoting needed for our numeric cells).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return header_.size(); }

  /// Raw cell access for alternative emitters (e.g. the bench JSON writer).
  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }
  [[nodiscard]] const std::vector<std::vector<std::string>>& cells() const { return rows_; }

  /// Format helpers for numeric cells.
  static std::string num(i64 v);
  static std::string fixed(double v, int decimals);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cyclick
