// Integer number theory used by every address-generation algorithm in the
// library: floor division/modulo (Fortran-style for negative operands),
// the extended Euclid algorithm, and solvers for the linear Diophantine
// equations `s*j - pk*q = c` that locate regular-section elements on a
// processor (paper, Section 2).
#pragma once

#include <numeric>
#include <optional>

#include "cyclick/support/types.hpp"

namespace cyclick {

/// Floor division: largest q with q*b <= a. Requires b != 0.
/// (C++ `/` truncates toward zero; the paper's `div` is floor division.)
constexpr i64 floor_div(i64 a, i64 b) noexcept {
  i64 q = a / b;
  i64 r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

/// Floor modulo: a - floor_div(a, b) * b. Result has the sign of b.
constexpr i64 floor_mod(i64 a, i64 b) noexcept {
  i64 r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r;
}

/// Ceiling division for possibly-negative numerators. Requires b != 0.
constexpr i64 ceil_div(i64 a, i64 b) noexcept { return -floor_div(-a, b); }

/// Result of the extended Euclid algorithm: g = gcd(a, b) = a*x + b*y.
/// For a, b >= 0 (the library only calls it that way), g >= 0 and the
/// Bezout coefficients satisfy |x| <= b/(2g), |y| <= a/(2g) when a,b > 0.
struct EgcdResult {
  i64 g;  ///< gcd(a, b), nonnegative for nonnegative inputs
  i64 x;  ///< coefficient of a
  i64 y;  ///< coefficient of b
};

/// Extended Euclid (iterative). O(log min(a, b)) — this is the
/// `min(log s, log p)` term in the algorithm's complexity (paper §5.1).
constexpr EgcdResult extended_euclid(i64 a, i64 b) noexcept {
  i64 old_r = a, r = b;
  i64 old_x = 1, x = 0;
  i64 old_y = 0, y = 1;
  while (r != 0) {
    const i64 q = old_r / r;
    i64 t = old_r - q * r;
    old_r = r;
    r = t;
    t = old_x - q * x;
    old_x = x;
    x = t;
    t = old_y - q * y;
    old_y = y;
    y = t;
  }
  if (old_r < 0) {
    old_r = -old_r;
    old_x = -old_x;
    old_y = -old_y;
  }
  return {old_r, old_x, old_y};
}

constexpr i64 gcd_i64(i64 a, i64 b) noexcept {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const i64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// lcm with 128-bit intermediate; saturates preconditions rather than
/// overflowing silently.
i64 lcm_i64(i64 a, i64 b);

/// Multiply-then-floor-mod without 64-bit overflow: (a*b) floor_mod n.
/// Requires n > 0.
constexpr i64 mulmod(i64 a, i64 b, i64 n) noexcept {
  i128 prod = static_cast<i128>(a) * static_cast<i128>(b);
  i128 r = prod % n;
  if (r < 0) r += n;
  return static_cast<i64>(r);
}

/// Smallest nonnegative j with  a*j ≡ c (mod n).  Returns nullopt when the
/// congruence has no solution (gcd(a, n) does not divide c). Requires n > 0.
///
/// This is the "smallest nonnegative j such that km <= (l + s*j) mod pk <
/// k(m+1)" building block shared by our algorithm and the Chatterjee et al.
/// baseline (both papers solve per-offset Diophantine equations this way).
std::optional<i64> solve_congruence_min_nonneg(i64 a, i64 c, i64 n);

/// Same congruence, but given a precomputed egcd of (a, n): the hot loops in
/// the address-generation algorithms solve k congruences against the same
/// modulus, and recomputing the egcd per offset would change the complexity
/// class. `eg` must equal extended_euclid(a, n) and n > 0.
constexpr std::optional<i64> solve_congruence_min_nonneg(i64 /*a*/, i64 c, i64 n,
                                                         const EgcdResult& eg) noexcept {
  if (eg.g == 0) return std::nullopt;
  if (c % eg.g != 0) return std::nullopt;
  const i64 n_over_g = n / eg.g;
  // j0 = x * (c/g) mod (n/g), reduced to the least nonnegative residue.
  return mulmod(eg.x, c / eg.g, n_over_g);
}

/// Modular inverse of a modulo n (n > 0); nullopt when gcd(a, n) != 1.
std::optional<i64> mod_inverse(i64 a, i64 n);

/// True when x is a power of two (x >= 1).
constexpr bool is_pow2(i64 x) noexcept { return x > 0 && (x & (x - 1)) == 0; }

}  // namespace cyclick
