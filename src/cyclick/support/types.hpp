// Fundamental integer types and contract macros used across cyclick.
//
// All index arithmetic in the library uses signed 64-bit integers: HPF array
// indices, strides (which may be negative), and lattice coordinates are all
// signed quantities, and the PPoPP'95 algorithm relies on floor semantics for
// division of possibly-negative values. Intermediate products that can exceed
// 64 bits (e.g. `j * s` when solving Diophantine equations for large strides)
// are computed in 128-bit arithmetic; see math.hpp.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace cyclick {

using i64 = std::int64_t;
using u64 = std::uint64_t;
using i128 = __int128;

/// Error thrown when a public-API precondition is violated (bad distribution
/// parameters, zero stride, processor id out of range, ...).
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Error thrown when an internal invariant fails. Seeing this indicates a bug
/// in cyclick itself, not in the caller.
class internal_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* cond, const char* what) {
  throw precondition_error(std::string("cyclick precondition failed: ") + cond +
                           " (" + what + ")");
}
[[noreturn]] inline void throw_internal(const char* cond, const char* file, int line) {
  throw internal_error(std::string("cyclick internal invariant failed: ") + cond +
                       " at " + file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace cyclick

/// Validate a user-facing precondition; throws cyclick::precondition_error.
#define CYCLICK_REQUIRE(cond, what)                            \
  do {                                                         \
    if (!(cond)) ::cyclick::detail::throw_precondition(#cond, (what)); \
  } while (false)

/// Validate an internal invariant; throws cyclick::internal_error.
/// Kept on in all build types: the checks guard O(1) scalar conditions on
/// code paths that are already O(k), so the cost is negligible.
#define CYCLICK_ASSERT(cond)                                              \
  do {                                                                    \
    if (!(cond)) ::cyclick::detail::throw_internal(#cond, __FILE__, __LINE__); \
  } while (false)
