#include "cyclick/support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace cyclick {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  CYCLICK_REQUIRE(!header_.empty(), "table must have at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  CYCLICK_REQUIRE(cells.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      os << (c == 0 ? std::left : std::right)
         << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c == 0 ? "" : ",") << row[c];
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::num(i64 v) { return std::to_string(v); }

std::string TextTable::fixed(double v, int decimals) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(decimals) << v;
  return ss.str();
}

}  // namespace cyclick
