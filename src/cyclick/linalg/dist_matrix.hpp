// Block-scattered dense matrices: the ScaLAPACK-style 2-D block-cyclic
// decomposition that Dongarra, van de Geijn and Walker advocate — the use
// case the paper's introduction cites for efficient cyclic(k) support.
//
// A DistMatrix wraps a 2-D MultiDimArray whose rows are cyclic(rb) over the
// grid's row dimension and columns cyclic(cb) over its column dimension.
// The key structural property (used by SUMMA, `blas.hpp`): every rank in
// one grid row owns the same set of matrix rows, and every rank in one grid
// column owns the same set of matrix columns.
#pragma once

#include "cyclick/runtime/multidim_array.hpp"

namespace cyclick {

template <typename T>
class DistMatrix {
 public:
  /// rows x cols matrix, cyclic(rb) x cyclic(cb) over a pr x pc grid.
  DistMatrix(i64 rows, i64 cols, i64 rb, i64 cb, i64 pr, i64 pc)
      : rows_(rows),
        cols_(cols),
        row_dist_(pr, rb),
        col_dist_(pc, cb),
        data_(make_mapping(rows, cols, row_dist_, col_dist_)) {}

  [[nodiscard]] i64 rows() const noexcept { return rows_; }
  [[nodiscard]] i64 cols() const noexcept { return cols_; }
  [[nodiscard]] const BlockCyclic& row_dist() const noexcept { return row_dist_; }
  [[nodiscard]] const BlockCyclic& col_dist() const noexcept { return col_dist_; }
  [[nodiscard]] const ProcessorGrid& grid() const noexcept { return data_.mapping().grid(); }
  [[nodiscard]] i64 ranks() const noexcept { return grid().rank_count(); }

  [[nodiscard]] MultiDimArray<T>& data() noexcept { return data_; }
  [[nodiscard]] const MultiDimArray<T>& data() const noexcept { return data_; }

  [[nodiscard]] T get(i64 i, i64 j) const { return data_.get({i, j}); }
  void set(i64 i, i64 j, const T& v) { data_.set({i, j}, v); }

  /// Load from a dense row-major image.
  void from_dense(std::span<const T> image) { data_.scatter(image); }

  /// Assemble the dense row-major image.
  [[nodiscard]] std::vector<T> to_dense() const { return data_.gather(); }

  /// Matrix rows owned by grid-row coordinate `gr` (ascending).
  [[nodiscard]] std::vector<i64> owned_rows(i64 gr) const {
    return owned_indices(row_dist_, rows_, gr);
  }
  /// Matrix columns owned by grid-column coordinate `gc` (ascending).
  [[nodiscard]] std::vector<i64> owned_cols(i64 gc) const {
    return owned_indices(col_dist_, cols_, gc);
  }

 private:
  static MultiDimMapping make_mapping(i64 rows, i64 cols, const BlockCyclic& rd,
                                      const BlockCyclic& cd) {
    std::vector<DimMapping> dims;
    dims.emplace_back(rows, AffineAlignment::identity(), rd);
    dims.emplace_back(cols, AffineAlignment::identity(), cd);
    return {std::move(dims), ProcessorGrid({rd.procs(), cd.procs()})};
  }

  static std::vector<i64> owned_indices(const BlockCyclic& dist, i64 n, i64 coord) {
    std::vector<i64> out;
    if (n == 0) return out;
    out.reserve(static_cast<std::size_t>(dist.local_size(coord, n)));
    // Unit stride classifies as dense runs: whole owned blocks at a time.
    AddressEngine::global().plan(dist, {0, n - 1, 1}, coord).for_each_run(
        [&](i64 g0, i64, i64 len) {
          for (i64 i = 0; i < len; ++i) out.push_back(g0 + i);
        });
    return out;
  }

  i64 rows_;
  i64 cols_;
  BlockCyclic row_dist_;
  BlockCyclic col_dist_;
  MultiDimArray<T> data_;
};

}  // namespace cyclick
