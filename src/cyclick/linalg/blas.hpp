// Distributed dense kernels over block-scattered matrices: GEMV, SUMMA
// GEMM, transpose, and norms. Communication is explicit — grid-row /
// grid-column broadcasts and all-reduces over the Transport — so these
// routines have the exact structure of their ScaLAPACK/PUMMA ancestors,
// while per-rank index enumeration runs on the access-sequence machinery.
//
// All kernels are SPMD over the matrix's grid and, because they use
// blocking collectives, require the one-thread-per-rank executor.
#pragma once

#include <cmath>

#include "cyclick/linalg/dist_matrix.hpp"
#include "cyclick/runtime/collectives.hpp"
#include "cyclick/runtime/spmd.hpp"

namespace cyclick {
namespace detail {

/// Broadcast within one grid row: the rank at (my_row, root_col) sends to
/// every other rank in the same grid row.
template <typename T>
void row_bcast(Transport& tr, const ProcessorGrid& grid, i64 rank, i64 root_col,
               std::vector<T>& values) {
  const auto coords = grid.coords_of(rank);
  const i64 my_row = coords[0];
  const i64 my_col = coords[1];
  const i64 cols = grid.extent(1);
  const i64 root = grid.rank_of({my_row, root_col});
  if (my_col == root_col) {
    for (i64 c = 0; c < cols; ++c)
      if (c != root_col) send_values<T>(tr, root, grid.rank_of({my_row, c}), values);
    return;
  }
  values = recv_values<T>(tr, rank, root);
}

/// Broadcast within one grid column (root at (root_row, my_col)).
template <typename T>
void col_bcast(Transport& tr, const ProcessorGrid& grid, i64 rank, i64 root_row,
               std::vector<T>& values) {
  const auto coords = grid.coords_of(rank);
  const i64 my_row = coords[0];
  const i64 my_col = coords[1];
  const i64 rows = grid.extent(0);
  const i64 root = grid.rank_of({root_row, my_col});
  if (my_row == root_row) {
    for (i64 r = 0; r < rows; ++r)
      if (r != root_row) send_values<T>(tr, root, grid.rank_of({r, my_col}), values);
    return;
  }
  values = recv_values<T>(tr, rank, root);
}

}  // namespace detail

/// y = A * x with x and y replicated on every rank. Each rank multiplies
/// its local block against its share of x, then an all-reduce assembles y.
template <typename T>
std::vector<T> gemv(const DistMatrix<T>& a, std::span<const T> x, const SpmdExecutor& exec,
                    Transport& tr) {
  CYCLICK_REQUIRE(static_cast<i64>(x.size()) == a.cols(), "gemv dimension mismatch");
  CYCLICK_REQUIRE(exec.ranks() == a.ranks(), "executor/matrix rank mismatch");
  CYCLICK_REQUIRE(exec.mode() == SpmdExecutor::Mode::kThreads,
                  "collective kernels need the threaded executor");
  std::vector<std::vector<T>> results(static_cast<std::size_t>(a.ranks()));
  const Region whole{{0, a.rows() - 1, 1}, {0, a.cols() - 1, 1}};
  exec.run([&](i64 rank) {
    std::vector<T> y(static_cast<std::size_t>(a.rows()), T{});
    auto local = a.data().local(rank);
    for_each_owned_region(a.data(), whole, rank, [&](const std::vector<i64>& idx, i64 addr) {
      y[static_cast<std::size_t>(idx[0])] +=
          local[static_cast<std::size_t>(addr)] * x[static_cast<std::size_t>(idx[1])];
    });
    allreduce(tr, rank, y, [](T u, T v) { return u + v; });
    results[static_cast<std::size_t>(rank)] = std::move(y);
  });
  // All ranks hold the same y; return rank 0's copy.
  return results.front();
}

/// C = A * B via SUMMA: for every inner index t, the grid column owning
/// A(:, t) broadcasts its column piece along grid rows, the grid row owning
/// B(t, :) broadcasts its row piece along grid columns, and every rank
/// rank-1-updates its local C block. Matrices must share the grid, with C's
/// rows distributed like A's rows and C's columns like B's columns (the
/// inner dimension's distributions are independent: A's columns map to grid
/// columns, B's rows to grid rows).
template <typename T>
void summa(const DistMatrix<T>& a, const DistMatrix<T>& b, DistMatrix<T>& c,
           const SpmdExecutor& exec, Transport& tr) {
  CYCLICK_REQUIRE(a.cols() == b.rows() && c.rows() == a.rows() && c.cols() == b.cols(),
                  "summa dimension mismatch");
  CYCLICK_REQUIRE(a.ranks() == b.ranks() && a.ranks() == c.ranks(),
                  "summa matrices must share a grid");
  CYCLICK_REQUIRE(exec.ranks() == a.ranks(), "executor/matrix rank mismatch");
  CYCLICK_REQUIRE(exec.mode() == SpmdExecutor::Mode::kThreads,
                  "collective kernels need the threaded executor");
  CYCLICK_REQUIRE(a.row_dist() == c.row_dist() && b.col_dist() == c.col_dist(),
                  "summa requires conformal distributions");

  const i64 inner = a.cols();
  exec.run([&](i64 rank) {
    const auto coords = c.grid().coords_of(rank);
    const i64 my_grow = coords[0];
    const i64 my_gcol = coords[1];
    const std::vector<i64> my_rows = c.owned_rows(my_grow);
    const std::vector<i64> my_cols = c.owned_cols(my_gcol);
    auto clocal = c.data().local(rank);
    const auto alocal = a.data().local(rank);
    const auto blocal = b.data().local(rank);

    for (i64 t = 0; t < inner; ++t) {
      // A's column t lives on grid column col_dist(a).owner(t); its owner in
      // my grid row holds exactly the values for my row set.
      const i64 a_gcol = a.col_dist().owner(t);
      std::vector<T> acol(my_rows.size());
      if (my_gcol == a_gcol) {
        for (std::size_t r = 0; r < my_rows.size(); ++r)
          acol[r] = alocal[static_cast<std::size_t>(
              a.data().mapping().local_address({my_rows[r], t}))];
      }
      detail::row_bcast(tr, c.grid(), rank, a_gcol, acol);

      // B's row t lives on grid row row_dist(b).owner(t).
      const i64 b_grow = b.row_dist().owner(t);
      std::vector<T> brow(my_cols.size());
      if (my_grow == b_grow) {
        for (std::size_t q = 0; q < my_cols.size(); ++q)
          brow[q] = blocal[static_cast<std::size_t>(
              b.data().mapping().local_address({t, my_cols[q]}))];
      }
      detail::col_bcast(tr, c.grid(), rank, b_grow, brow);

      // Local rank-1 update over the owned (i, j) block.
      for (std::size_t r = 0; r < my_rows.size(); ++r)
        for (std::size_t q = 0; q < my_cols.size(); ++q)
          clocal[static_cast<std::size_t>(
              c.data().mapping().local_address({my_rows[r], my_cols[q]}))] +=
              acol[r] * brow[q];
    }
  });
}

/// B = A^T. Message-shaped: each receiver enumerates its (i, j) share of B
/// and pulls A(j, i) from the owner via a bucketed exchange.
template <typename T>
void transpose(const DistMatrix<T>& a, DistMatrix<T>& b, const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(a.rows() == b.cols() && a.cols() == b.rows(), "transpose shape mismatch");
  CYCLICK_REQUIRE(exec.ranks() == a.ranks() && a.ranks() == b.ranks(),
                  "executor/matrix rank mismatch");
  const i64 p = exec.ranks();
  struct Item {
    i64 src_local;
    i64 dst_local;
  };
  std::vector<std::vector<Item>> requests(static_cast<std::size_t>(p * p));
  const Region whole{{0, b.rows() - 1, 1}, {0, b.cols() - 1, 1}};
  exec.run([&](i64 rank) {
    for_each_owned_region(b.data(), whole, rank, [&](const std::vector<i64>& idx, i64 addr) {
      const std::vector<i64> src_idx{idx[1], idx[0]};
      const i64 q = a.data().mapping().owner_rank(src_idx);
      requests[static_cast<std::size_t>(rank * p + q)].push_back(
          {a.data().mapping().local_address(src_idx), addr});
    });
  });
  std::vector<std::vector<T>> payload(static_cast<std::size_t>(p * p));
  exec.run([&](i64 q) {
    auto local = a.data().local(q);
    for (i64 m = 0; m < p; ++m) {
      const auto& items = requests[static_cast<std::size_t>(m * p + q)];
      auto& buf = payload[static_cast<std::size_t>(m * p + q)];
      buf.reserve(items.size());
      for (const Item& it : items) buf.push_back(local[static_cast<std::size_t>(it.src_local)]);
    }
  });
  exec.run([&](i64 m) {
    auto local = b.data().local(m);
    for (i64 q = 0; q < p; ++q) {
      const auto& items = requests[static_cast<std::size_t>(m * p + q)];
      const auto& buf = payload[static_cast<std::size_t>(m * p + q)];
      for (std::size_t i = 0; i < items.size(); ++i)
        local[static_cast<std::size_t>(items[i].dst_local)] = buf[i];
    }
  });
}

/// In-place right-looking LU factorization without pivoting (suitable for
/// diagonally dominant systems): after the call, the strictly lower part
/// of A holds L (unit diagonal implied) and the upper part holds U. The
/// classic block-scattered elimination: at step t the pivot is broadcast,
/// the grid column owning t forms the multipliers, grid-row/column
/// broadcasts carry the multiplier column and pivot row, and every rank
/// rank-1-updates its trailing block. Requires the threaded executor.
template <typename T>
void lu_factor(DistMatrix<T>& a, const SpmdExecutor& exec, Transport& tr) {
  CYCLICK_REQUIRE(a.rows() == a.cols(), "lu_factor requires a square matrix");
  CYCLICK_REQUIRE(exec.ranks() == a.ranks(), "executor/matrix rank mismatch");
  CYCLICK_REQUIRE(exec.mode() == SpmdExecutor::Mode::kThreads,
                  "collective kernels need the threaded executor");
  const i64 n = a.rows();
  exec.run([&](i64 rank) {
    const auto coords = a.grid().coords_of(rank);
    const i64 my_grow = coords[0];
    const i64 my_gcol = coords[1];
    const std::vector<i64> my_rows = a.owned_rows(my_grow);
    const std::vector<i64> my_cols = a.owned_cols(my_gcol);
    auto local = a.data().local(rank);
    const auto addr = [&](i64 i, i64 j) {
      return static_cast<std::size_t>(a.data().mapping().local_address({i, j}));
    };

    for (i64 t = 0; t < n - 1; ++t) {
      const i64 p_grow = a.row_dist().owner(t);
      const i64 p_gcol = a.col_dist().owner(t);

      // Pivot value to every rank (owner broadcasts machine-wide).
      std::vector<T> pivot(1);
      if (my_grow == p_grow && my_gcol == p_gcol) pivot[0] = local[addr(t, t)];
      bcast(tr, rank, a.grid().rank_of({p_grow, p_gcol}), pivot);
      CYCLICK_REQUIRE(pivot[0] != T{}, "zero pivot (lu_factor does not pivot)");

      // Multiplier column: owners scale A(i, t) for their rows i > t, then
      // the column travels along grid rows.
      std::vector<T> mult;
      std::vector<i64> rows_gt;
      for (const i64 i : my_rows)
        if (i > t) rows_gt.push_back(i);
      mult.resize(rows_gt.size());
      if (my_gcol == p_gcol) {
        for (std::size_t r = 0; r < rows_gt.size(); ++r) {
          const std::size_t at = addr(rows_gt[r], t);
          local[at] /= pivot[0];
          mult[r] = local[at];
        }
      }
      detail::row_bcast(tr, a.grid(), rank, p_gcol, mult);

      // Pivot row: owners read A(t, j) for their columns j > t, then the
      // row travels along grid columns.
      std::vector<T> urow;
      std::vector<i64> cols_gt;
      for (const i64 j : my_cols)
        if (j > t) cols_gt.push_back(j);
      urow.resize(cols_gt.size());
      if (my_grow == p_grow) {
        for (std::size_t q = 0; q < cols_gt.size(); ++q)
          urow[q] = local[addr(t, cols_gt[q])];
      }
      detail::col_bcast(tr, a.grid(), rank, p_grow, urow);

      // Trailing update of the owned block.
      for (std::size_t r = 0; r < rows_gt.size(); ++r)
        for (std::size_t q = 0; q < cols_gt.size(); ++q)
          local[addr(rows_gt[r], cols_gt[q])] -= mult[r] * urow[q];
    }
  });
}

/// Frobenius norm of the whole matrix (exact reduction over ranks).
template <typename T>
T frobenius_norm(const DistMatrix<T>& a, const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(exec.ranks() == a.ranks(), "executor/matrix rank mismatch");
  const Region whole{{0, a.rows() - 1, 1}, {0, a.cols() - 1, 1}};
  std::vector<T> partial(static_cast<std::size_t>(exec.ranks()), T{});
  exec.run([&](i64 rank) {
    auto local = a.data().local(rank);
    T acc{};
    for_each_owned_region(a.data(), whole, rank, [&](const std::vector<i64>&, i64 addr) {
      const T v = local[static_cast<std::size_t>(addr)];
      acc += v * v;
    });
    partial[static_cast<std::size_t>(rank)] = acc;
  });
  T total{};
  for (const T v : partial) total += v;
  return static_cast<T>(std::sqrt(static_cast<double>(total)));
}

}  // namespace cyclick
