#include "cyclick/baselines/oracle.hpp"

namespace cyclick {

std::vector<Access> oracle_local_sequence(const BlockCyclic& dist, const RegularSection& sec,
                                          i64 proc) {
  CYCLICK_REQUIRE(proc >= 0 && proc < dist.procs(), "processor id out of range");
  std::vector<Access> seq;
  const i64 n = sec.size();
  for (i64 t = 0; t < n; ++t) {
    const i64 g = sec.element(t);
    if (dist.owner(g) == proc) seq.push_back({g, dist.local_index(g)});
  }
  return seq;
}

AccessPattern oracle_access_pattern(const BlockCyclic& dist, i64 lower, i64 stride, i64 proc) {
  CYCLICK_REQUIRE(stride != 0, "stride must be nonzero");
  CYCLICK_REQUIRE(proc >= 0 && proc < dist.procs(), "processor id out of range");
  AccessPattern pat;
  pat.proc = proc;

  // One period of the offset pattern is pk/d progression steps; scan two
  // periods so that at least one full cycle follows the first on-proc hit.
  const i64 pk = dist.row_length();
  const i64 d = gcd_i64(stride, pk);
  const i64 period = pk / d;

  std::vector<Access> hits;
  i64 first_j = -1;
  for (i64 j = 0; j <= 2 * period; ++j) {
    const i64 g = lower + j * stride;
    if (dist.owner(g) != proc) continue;
    if (first_j < 0) first_j = j;
    if (j > first_j + period) break;
    hits.push_back({g, dist.local_index(g)});
  }
  if (first_j < 0) return pat;

  pat.start_global = hits.front().global;
  pat.start_local = hits.front().local;
  pat.length = static_cast<i64>(hits.size()) - 1;  // hits spans exactly one period + anchor
  pat.gaps.resize(static_cast<std::size_t>(pat.length));
  for (std::size_t i = 0; i + 1 < hits.size(); ++i)
    pat.gaps[i] = hits[i + 1].local - hits[i].local;
  return pat;
}

}  // namespace cyclick
