#include "cyclick/baselines/chatterjee.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "cyclick/support/residue_scan.hpp"

namespace cyclick {

void radix_sort_i64(std::vector<i64>& keys) {
  if (keys.size() < 2) return;
  i64 max_key = 0;
  for (const i64 v : keys) {
    CYCLICK_REQUIRE(v >= 0, "radix sort requires nonnegative keys");
    if (v > max_key) max_key = v;
  }
  std::vector<i64> scratch(keys.size());
  for (int shift = 0; shift < 64 && (max_key >> shift) != 0; shift += 8) {
    std::array<std::size_t, 256> count{};
    for (const i64 v : keys) ++count[static_cast<std::size_t>((v >> shift) & 0xff)];
    std::size_t pos = 0;
    for (std::size_t b = 0; b < 256; ++b) {
      const std::size_t c = count[b];
      count[b] = pos;
      pos += c;
    }
    for (const i64 v : keys)
      scratch[count[static_cast<std::size_t>((v >> shift) & 0xff)]++] = v;
    keys.swap(scratch);
  }
}

AccessPattern chatterjee_access_pattern(const BlockCyclic& dist, i64 lower, i64 stride,
                                        i64 proc, SortKind sort) {
  CYCLICK_REQUIRE(stride > 0, "the sorting baseline requires a positive stride");
  CYCLICK_REQUIRE(proc >= 0 && proc < dist.procs(), "processor id out of range");
  AccessPattern pat;
  pat.proc = proc;

  const i64 k = dist.block_size();
  const i64 pk = dist.row_length();
  const ResidueScan scan(stride, pk);

  // Solve the k Diophantine equations (identical machinery to the lattice
  // algorithm's start-location scan — shared code, as in the paper's
  // experimental setup) and *store* every smallest nonnegative solution —
  // the space overhead the paper notes the lattice method avoids.
  const i64 window_lo = k * proc - lower;
  std::vector<i64> sols;
  scan.for_each_solvable(window_lo, window_lo + k,
                         [&](i64, i64 j) { sols.push_back(j); });
  if (sols.empty()) return pat;

  // Sort the initial cycle to obtain the accesses in increasing index order.
  const bool use_radix =
      sort == SortKind::kRadix || (sort == SortKind::kAuto && k >= 64);
  if (use_radix) {
    radix_sort_i64(sols);
  } else {
    std::sort(sols.begin(), sols.end());
  }

  pat.length = static_cast<i64>(sols.size());
  pat.start_global = lower + sols.front() * stride;
  pat.start_local = dist.local_index(pat.start_global);

  // Linear scan through the sorted sequence (plus the wrap-around to the
  // first access of the next cycle, j0 + pk/d) yields the gap table.
  pat.gaps.resize(sols.size());
  i64 prev_local = pat.start_local;
  for (std::size_t i = 1; i < sols.size(); ++i) {
    const i64 loc = dist.local_index(lower + sols[i] * stride);
    pat.gaps[i - 1] = loc - prev_local;
    prev_local = loc;
  }
  const i64 wrap_local = dist.local_index(lower + (sols.front() + scan.period) * stride);
  pat.gaps[sols.size() - 1] = wrap_local - prev_local;
  return pat;
}

}  // namespace cyclick
