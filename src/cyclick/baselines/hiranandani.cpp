#include "cyclick/baselines/hiranandani.hpp"

#include "cyclick/core/lattice_addresser.hpp"
#include "cyclick/support/math.hpp"

namespace cyclick {

bool hiranandani_applicable(const BlockCyclic& dist, i64 stride) {
  return stride > 0 && floor_mod(stride, dist.row_length()) < dist.block_size();
}

AccessPattern hiranandani_access_pattern(const BlockCyclic& dist, i64 lower, i64 stride,
                                         i64 proc) {
  CYCLICK_REQUIRE(hiranandani_applicable(dist, stride),
                  "Hiranandani et al. requires s mod pk < k");
  CYCLICK_REQUIRE(proc >= 0 && proc < dist.procs(), "processor id out of range");
  AccessPattern pat;
  pat.proc = proc;

  const i64 k = dist.block_size();
  const i64 pk = dist.row_length();
  const i64 s_off = floor_mod(stride, pk);  // per-step offset advance, < k

  const auto si = find_start(dist, lower, stride, proc);
  if (!si) return pat;
  pat.start_global = si->start_global;
  pat.start_local = dist.local_index(si->start_global);
  pat.length = si->length;

  if (s_off == 0) {
    // pk | s: every element shares one offset; constant gap of s/pk rows.
    pat.gaps.assign(static_cast<std::size_t>(pat.length), k * (stride / pk));
    return pat;
  }

  // Forward walk. Because each step advances the offset by s_off < k, the
  // walk can never jump over the processor's k-wide window: after leaving
  // it, the first position at or beyond the window's next periodic image is
  // inside the window. Each access is therefore found in O(1) arithmetic.
  const i64 block_lo = k * proc;
  const i64 block_hi = block_lo + k;
  pat.gaps.resize(static_cast<std::size_t>(pat.length));
  i64 v = pat.start_global;
  i64 o = floor_mod(v, pk);
  i64 local = pat.start_local;
  for (i64 idx = 0; idx < pat.length; ++idx) {
    i64 t;       // progression steps to the next on-proc element
    i64 next_o;  // its offset
    if (o + s_off < block_hi) {
      t = 1;
      next_o = o + s_off;
    } else {
      // Steps needed to reach the window's next periodic image (it may
      // already be reached when the wrap overshoots, e.g. p == 1).
      i64 extra = ceil_div(block_lo + pk - (o + s_off), s_off);
      if (extra < 0) extra = 0;
      t = 1 + extra;
      next_o = o + t * s_off - pk;
      CYCLICK_ASSERT(next_o >= block_lo && next_o < block_hi);
    }
    const i64 next_v = v + t * stride;
    const i64 next_local = dist.local_index(next_v);
    pat.gaps[static_cast<std::size_t>(idx)] = next_local - local;
    v = next_v;
    o = next_o;
    local = next_local;
  }
  return pat;
}

}  // namespace cyclick
