#include "cyclick/baselines/hiranandani.hpp"

#include "cyclick/core/lattice_addresser.hpp"
#include "cyclick/support/math.hpp"

namespace cyclick {

bool hiranandani_applicable(const BlockCyclic& dist, i64 stride) {
  return stride > 0 && floor_mod(stride, dist.row_length()) < dist.block_size();
}

AccessPattern hiranandani_access_pattern(const BlockCyclic& dist, i64 lower, i64 stride,
                                         i64 proc) {
  CYCLICK_REQUIRE(hiranandani_applicable(dist, stride),
                  "Hiranandani et al. requires s mod pk < k");
  CYCLICK_REQUIRE(proc >= 0 && proc < dist.procs(), "processor id out of range");
  AccessPattern pat;
  pat.proc = proc;

  const i64 k = dist.block_size();
  const i64 pk = dist.row_length();
  const i64 s_off = floor_mod(stride, pk);  // per-step offset advance, < k

  const auto si = find_start(dist, lower, stride, proc);
  if (!si) return pat;
  pat.start_global = si->start_global;
  pat.start_local = dist.local_index(si->start_global);
  pat.length = si->length;

  if (s_off == 0) {
    // pk | s: every element shares one offset; constant gap of s/pk rows.
    pat.gaps.assign(static_cast<std::size_t>(pat.length), k * (stride / pk));
    return pat;
  }

  // Forward walk. Because each step advances the offset by s_off < k, the
  // walk can never jump over the processor's k-wide window: after leaving
  // it, the first position at or beyond the window's next periodic image is
  // inside the window. Each access is therefore found in O(1) arithmetic.
  //
  // Local addresses are row * k + (offset - block_lo), so a move of t
  // progression steps that takes the row-offset from o to next_o crosses
  // (t*stride - (next_o - o)) / pk rows (exact division) and the local gap
  // is rows * k + (next_o - o) — no per-access local_index divisions. For
  // the common in-window step (t == 1, offset advance s_off) the gap is the
  // loop-invariant ((stride - s_off) / pk) * k + s_off.
  const i64 block_lo = k * proc;
  const i64 block_hi = block_lo + k;
  const i64 gap_in = ((stride - s_off) / pk) * k + s_off;
  pat.gaps.resize(static_cast<std::size_t>(pat.length));
  i64 o = floor_mod(pat.start_global, pk);
  for (i64 idx = 0; idx < pat.length; ++idx) {
    if (o + s_off < block_hi) {
      pat.gaps[static_cast<std::size_t>(idx)] = gap_in;
      o += s_off;
    } else {
      // Steps needed to reach the window's next periodic image (it may
      // already be reached when the wrap overshoots, e.g. p == 1).
      i64 extra = ceil_div(block_lo + pk - (o + s_off), s_off);
      if (extra < 0) extra = 0;
      const i64 t = 1 + extra;
      const i64 next_o = o + t * s_off - pk;
      CYCLICK_ASSERT(next_o >= block_lo && next_o < block_hi);
      const i64 adv = next_o - o;
      pat.gaps[static_cast<std::size_t>(idx)] = ((t * stride - adv) / pk) * k + adv;
      o = next_o;
    }
  }
  return pat;
}

}  // namespace cyclick
