#include "cyclick/baselines/gupta_virtual.hpp"

#include "cyclick/support/residue_scan.hpp"

namespace cyclick {

std::vector<VirtualClass> virtual_cyclic_classes(const BlockCyclic& dist,
                                                 const RegularSection& sec, i64 proc) {
  CYCLICK_REQUIRE(proc >= 0 && proc < dist.procs(), "processor id out of range");
  std::vector<VirtualClass> classes;
  if (sec.empty()) return classes;
  const RegularSection asc = sec.ascending();
  const i64 k = dist.block_size();
  const i64 pk = dist.row_length();
  const ResidueScan scan(asc.stride, pk);
  const i64 t_max = asc.size() - 1;

  // Within one offset class, consecutive section elements differ by
  // lcm(s, pk) = (pk/d)*s globally and by (s/d)*k in local memory.
  const i64 global_stride = scan.period * asc.stride;
  const i64 local_stride = (asc.stride / scan.d) * k;

  const i64 window_lo = k * proc - asc.lower;
  scan.for_each_solvable(window_lo, window_lo + k, [&](i64 i, i64 j0) {
    if (j0 > t_max) return;  // class never reached within bounds
    const i64 first = asc.lower + j0 * asc.stride;
    classes.push_back({/*block_offset=*/i - window_lo,
                       /*first_global=*/first,
                       /*first_local=*/dist.local_index(first),
                       /*count=*/(t_max - j0) / scan.period + 1,
                       global_stride, local_stride});
  });
  return classes;
}

}  // namespace cyclick
