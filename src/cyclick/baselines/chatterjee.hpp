// The sorting-based baseline of Chatterjee, Gilbert, Long, Schreiber, Teng,
// "Generating local addresses and communication sets for data-parallel
// programs" (PPoPP 1993) — the method the paper compares against.
//
// It shares the Diophantine start-location machinery with the lattice
// algorithm (the PPoPP'95 experiments deliberately coded the common
// segments identically; we share the actual functions), but builds the gap
// table by solving all k equations, *sorting* the smallest nonnegative
// solutions j to obtain the processor's accesses in increasing order, and
// differencing the sorted sequence: O(k log k + min(log s, log p)).
//
// Matching the paper's experimental setup, the sort is std::sort for small
// k and an LSD radix sort for k >= 64 ("the implementation of the latter
// method uses the linear-time radix sort when k >= 64").
#pragma once

#include "cyclick/core/access_pattern.hpp"
#include "cyclick/hpf/distribution.hpp"

namespace cyclick {

/// Sort used for the initial cycle of accesses.
enum class SortKind {
  kAuto,        ///< paper's policy: comparison sort below k = 64, radix at and above
  kComparison,  ///< always std::sort
  kRadix,       ///< always LSD radix sort
};

/// Sorting-based access-pattern construction (Chatterjee et al.). Produces
/// bit-identical AccessPattern results to compute_access_pattern; only the
/// construction cost differs.
AccessPattern chatterjee_access_pattern(const BlockCyclic& dist, i64 lower, i64 stride,
                                        i64 proc, SortKind sort = SortKind::kAuto);

/// LSD radix sort (base 256) for nonnegative 64-bit keys; exposed for the
/// sorting-policy ablation benchmark.
void radix_sort_i64(std::vector<i64>& keys);

}  // namespace cyclick
