// The "virtual processor" enumeration of Gupta, Kaushik, Huang, Sadayappan
// (paper §7, related work): view a cyclic(k) distribution as k interleaved
// cyclic(1) distributions, one per offset within the block. In the
// *virtual-cyclic* scheme a processor visits its elements offset class by
// offset class; within one class the section elements form an arithmetic
// progression in both index and local-memory space, so traversal needs no
// tables at all — but, as the paper points out, "only array elements that
// have the same offset are accessed in increasing order, while the order of
// accesses for elements with different offsets is determined by the values
// of the offsets, and not by the array indices."
//
// That makes the scheme valid for order-insensitive operations (fills,
// reductions) and invalid as a general replacement for the lattice
// algorithm — precisely the gap the paper's contribution fills.
#pragma once

#include <vector>

#include "cyclick/hpf/distribution.hpp"
#include "cyclick/hpf/section.hpp"

namespace cyclick {

/// One offset class of a processor's share: an arithmetic progression of
/// accesses with constant global and local strides.
struct VirtualClass {
  i64 block_offset;   ///< offset within the processor's block, in [0, k)
  i64 first_global;   ///< first section element in this class (within bounds)
  i64 first_local;    ///< its packed local address
  i64 count;          ///< number of in-bounds elements in this class
  i64 global_stride;  ///< global index distance between consecutive elements
  i64 local_stride;   ///< local-memory distance (constant: (s/d)*k per step... see below)
};

/// Decompose processor `proc`'s share of the bounded ascending section into
/// its offset classes (the virtual-cyclic scheme). O(k + log) setup; the
/// classes jointly cover exactly the oracle's element set, but concatenated
/// class order differs from increasing-index order in general.
std::vector<VirtualClass> virtual_cyclic_classes(const BlockCyclic& dist,
                                                 const RegularSection& sec, i64 proc);

/// Order-insensitive traversal over the classes: body(global, local) for
/// every owned element, class by class. Returns the access count.
template <typename Body>
i64 for_each_virtual_cyclic(const BlockCyclic& dist, const RegularSection& sec, i64 proc,
                            Body&& body) {
  i64 count = 0;
  for (const VirtualClass& cls : virtual_cyclic_classes(dist, sec, proc)) {
    i64 g = cls.first_global;
    i64 la = cls.first_local;
    for (i64 i = 0; i < cls.count; ++i) {
      body(g, la);
      g += cls.global_stride;
      la += cls.local_stride;
      ++count;
    }
  }
  return count;
}

}  // namespace cyclick
