// Exhaustive reference implementations ("oracles") used as ground truth in
// tests and for self-verification in the benchmark harnesses. These scan
// every section element and are deliberately simple: O(section size), no
// number theory beyond the distribution algebra itself.
#pragma once

#include <vector>

#include "cyclick/core/access_pattern.hpp"
#include "cyclick/hpf/distribution.hpp"
#include "cyclick/hpf/section.hpp"

namespace cyclick {

/// One access of a bounded traversal: global array index + packed local
/// address on the owning processor.
struct Access {
  i64 global;
  i64 local;
  friend bool operator==(const Access&, const Access&) = default;
};

/// Every access processor `proc` performs for the bounded section, in
/// traversal order (ascending for stride > 0, descending for stride < 0).
std::vector<Access> oracle_local_sequence(const BlockCyclic& dist, const RegularSection& sec,
                                          i64 proc);

/// Ground-truth AccessPattern (start + cyclic AM table) for the unbounded
/// progression lower, lower+stride, ... on `proc`, computed by brute-force
/// enumeration of two full periods. Stride may be negative.
AccessPattern oracle_access_pattern(const BlockCyclic& dist, i64 lower, i64 stride, i64 proc);

}  // namespace cyclick
