// The special-case linear-time baseline of Hiranandani, Kennedy,
// Mellor-Crummey, Sethi, "Compilation techniques for block-cyclic
// distributions" (ICS 1994): an O(k) gap-table construction that applies
// only when  s mod pk < k  (the section's per-step offset advance is
// smaller than a block, so a processor's accesses can be enumerated by a
// simple forward walk that never needs sorting).
#pragma once

#include "cyclick/core/access_pattern.hpp"
#include "cyclick/hpf/distribution.hpp"

namespace cyclick {

/// True when the ICS'94 method applies: s mod pk < k.
[[nodiscard]] bool hiranandani_applicable(const BlockCyclic& dist, i64 stride);

/// O(k) access-pattern construction for the special case s mod pk < k.
/// Produces results identical to compute_access_pattern. Throws
/// precondition_error when the case condition does not hold.
AccessPattern hiranandani_access_pattern(const BlockCyclic& dist, i64 lower, i64 stride,
                                         i64 proc);

}  // namespace cyclick
