// The paper's contribution: the linear-time lattice algorithm (Figure 5)
// for computing a processor's memory access sequence under cyclic(k),
// in O(k + min(log s, log p)) time.
#pragma once

#include <optional>

#include "cyclick/core/access_pattern.hpp"
#include "cyclick/hpf/distribution.hpp"
#include "cyclick/hpf/section.hpp"
#include "cyclick/lattice/lattice.hpp"

namespace cyclick {

/// Find the first element of the section (l : +inf : s), s > 0, that lives
/// on processor m: the smallest nonnegative j with km <= (l + s*j) mod pk <
/// k(m+1) (paper, Section 2; lines 4-11 of Figure 5). Returns the global
/// array index l + s*j, or nullopt when no section element ever lands on m.
/// Also reports the cycle length (number of solvable Diophantine equations,
/// == the AM table period).
struct StartInfo {
  i64 start_global;
  i64 length;
};
std::optional<StartInfo> find_start(const BlockCyclic& dist, i64 lower, i64 stride, i64 proc,
                                    WorkStats* stats = nullptr);

/// Largest section element of A(l:u:s), s > 0, u >= l, living on processor
/// m (used for `lastmem` in the node code; paper notes u plays no role in
/// the table itself). O(k + log min(s, pk)).
std::optional<i64> find_last(const BlockCyclic& dist, const RegularSection& section, i64 proc);

/// The Figure-5 algorithm: start location + AM gap table for processor
/// `proc`. Requires stride > 0; for negative strides use
/// compute_access_pattern_signed. O(k + min(log s, log p)) time, O(k) space.
AccessPattern compute_access_pattern(const BlockCyclic& dist, i64 lower, i64 stride, i64 proc,
                                     WorkStats* stats = nullptr);

/// Negative-stride-aware variant ("the case when s is negative can be
/// treated analogously", Section 2): for s < 0 the traversal visits the same
/// element set in descending order, so the gap table is the ascending
/// table reversed and negated, re-phased to the descending start element.
/// For s > 0 this is exactly compute_access_pattern.
AccessPattern compute_access_pattern_signed(const BlockCyclic& dist, i64 lower, i64 stride,
                                            i64 proc);

/// Offset-indexed variant of the gap table for the Figure 8(d) node code:
/// same asymptotic cost, produces delta/next_offset tables indexed by the
/// offset of the access within the processor's block (Section 6.2).
OffsetTables compute_offset_tables(const BlockCyclic& dist, i64 lower, i64 stride, i64 proc);

/// Offset tables populated for *every* block offset in [0, k), straight
/// from Theorem 3's geometry (Equation 1 when offset + br stays inside the
/// block, else Equation 2 corrected by Equation 3): delta/next at offset q
/// do not depend on the processor number or the section's lower bound, so
/// one table pair serves every processor and every phase — the hoisting
/// opportunity used for coupled-subscript loop nests. start_offset is left
/// at -1 (the caller supplies the phase). O(k + min(log s, log p)).
OffsetTables compute_full_offset_tables(const BlockCyclic& dist, i64 stride);

}  // namespace cyclick
