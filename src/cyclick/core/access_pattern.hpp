// Result types for the memory-access-sequence problem.
//
// For processor m, a distribution cyclic(k) over p processors, and a regular
// section A(l:u:s), the *access pattern* is: the first section element that
// lives on m (start), and the cyclic table AM of local-memory gaps between
// consecutive on-processor section elements (paper, Section 2). The table's
// period is `length <= k`; the upper bound u only truncates the walk and
// never changes the table.
#pragma once

#include <vector>

#include "cyclick/support/types.hpp"

namespace cyclick {

/// The memory access sequence for one processor: start location plus the
/// cyclic gap table AM (the paper's Figure-5 output).
struct AccessPattern {
  i64 proc = 0;          ///< processor number m
  i64 start_global = -1; ///< global array index of the first on-m section element; -1 if none
  i64 start_local = -1;  ///< its packed local-memory address; -1 if none
  i64 length = 0;        ///< period of the gap sequence (0 => m owns no section element)
  std::vector<i64> gaps; ///< AM table, `length` entries; gaps[i] = local gap from the
                         ///< i-th to the (i+1)-th access (cyclically)

  [[nodiscard]] bool empty() const noexcept { return length == 0; }

  /// Sum of one full cycle of gaps: the local-memory distance covered per
  /// period. Invariant: equals (s/gcd(s,pk)) * k for nonempty patterns.
  [[nodiscard]] i64 cycle_advance() const noexcept {
    i64 sum = 0;
    for (const i64 g : gaps) sum += g;
    return sum;
  }

  friend bool operator==(const AccessPattern&, const AccessPattern&) = default;
};

/// Offset-indexed tables for the Figure 8(d) node-code shape: `delta` and
/// `next_offset` are indexed by the element's offset within the processor's
/// k-wide block (paper, Section 6.2: "deltaM table in Figure 8(d) must be
/// indexed by local offsets"). Entries at offsets that carry no section
/// element are never read; they are left as 0 / -1.
struct OffsetTables {
  i64 start_offset = -1;        ///< block offset of the start element, in [0, k);
                                ///< -1 for phase-free tables (compute_full_offset_tables)
  std::vector<i64> delta;       ///< k entries: local gap leaving this offset
  std::vector<i64> next_offset; ///< k entries: block offset of the next access

  [[nodiscard]] bool empty() const noexcept { return delta.empty(); }
};

/// Instrumentation for the complexity claims of Section 5.1: number of
/// lattice points examined while building the gap table (proved <= 2k+1)
/// and number of Diophantine equations solved (<= 2k).
struct WorkStats {
  i64 points_visited = 0;
  i64 equations_solved = 0;
};

}  // namespace cyclick
