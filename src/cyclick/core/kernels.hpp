// Pattern-specialized bulk kernels under the AddressEngine.
//
// A SectionPlan tells a consumer *which* local addresses to touch; this
// layer decides *how* to touch them in bulk. Theorem 3 says the access
// sequence is periodic with at most k distinct gaps, so every classified
// plan compiles — once — into one of three replay shapes:
//
//   class          plan shape                     lowering
//   run-copy       dense-runs / trivial |s|==1    memcpy / std::fill_n span
//   strided        degenerate lattice             stride-g gather/scatter,
//                  (k==1, gcd(|s|,pk)>=k, p==1)   unroll-by-8 + SIMD
//   periodic-gap   general nav tables             per-period offset vector
//                                                 (<= k entries) replayed
//                                                 with an unrolled
//                                                 offset-indexed inner loop
//
// The periodic-gap offset vector is tiled: the period is replicated (with
// the per-period local advance folded in) until it covers at least
// kKernelTileTarget elements, so short periods still amortize loop
// overhead and feed whole SIMD lanes. Compiled patterns are cached on the
// EngineTables they derive from — one per start offset q0 — so all ranks
// and phases of an SPMD loop share one compilation.
//
// SIMD policy: the size-dispatched primitives in kdetail use AVX2 gathers
// (and AVX512VL scatters) on x86 via function multi-versioning with a
// runtime CPU check, NEON lane loads on arm, and always carry an unrolled
// scalar fallback. Building with -DCYCLICK_FORCE_SCALAR=ON compiles the
// explicit SIMD out entirely (differential-testing toggle; see
// docs/RUNTIME.md).
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "cyclick/core/engine.hpp"

namespace cyclick {

/// The kernel classes a SectionPlan can lower to. kScalar means "no bulk
/// lowering" (empty plan); callers fall back to the plan's own walk.
enum class KernelClass {
  kScalar,       ///< no bulk shape; use SectionPlan::for_each
  kRunCopy,      ///< one contiguous local span: memcpy / std::fill_n
  kStrided,      ///< constant local gap: strided gather/scatter
  kPeriodicGap,  ///< per-period offset vector replay (Theorem 3)
};

[[nodiscard]] const char* kernel_class_name(KernelClass c) noexcept;

/// Replicate the per-period offsets until a tile covers at least this many
/// elements (whole periods only), so tiny periods still run unrolled.
inline constexpr i64 kKernelTileTarget = 64;

/// One compiled periodic access pattern: the local/global offsets of one
/// nav-table cycle starting at offset q0 (both strictly ascending,
/// local_off[0] == global_off[0] == 0), the per-period advances, and the
/// tiled replica of the local offsets the inner loops actually index.
struct PeriodicPattern {
  i64 period = 0;          ///< cycle length k / gcd(|s|, pk)
  i64 local_advance = 0;   ///< local-address advance per period
  i64 global_advance = 0;  ///< global-index advance per period
  std::vector<i64> local_off;
  std::vector<i64> global_off;
  i64 tile_len = 0;      ///< ceil-replicated period, >= min(tile target, period)
  i64 tile_advance = 0;  ///< local advance per tile
  std::vector<i64> tile_off;
};

/// The compiled kernel for one SectionPlan: class, element count, the
/// ascending-first local address, and the class-specific replay state.
/// Element-type-agnostic; the typed entry points below dispatch on
/// sizeof/alignof at the call site.
class KernelPlan {
 public:
  KernelPlan() = default;

  [[nodiscard]] KernelClass cls() const noexcept { return cls_; }
  /// True when a bulk kernel exists (the plan was nonempty and classified).
  [[nodiscard]] bool bulk() const noexcept {
    return cls_ != KernelClass::kScalar && count_ > 0;
  }
  [[nodiscard]] i64 count() const noexcept { return count_; }
  /// Ascending-first local address (base of the replay).
  [[nodiscard]] i64 first_local() const noexcept { return first_local_; }
  /// Constant local gap (strided class only).
  [[nodiscard]] i64 step() const noexcept { return step_; }
  /// Compiled offsets (periodic-gap class only).
  [[nodiscard]] const PeriodicPattern* pattern() const noexcept { return pattern_.get(); }

 private:
  friend KernelPlan compile_kernel(const SectionPlan& plan);

  KernelClass cls_ = KernelClass::kScalar;
  i64 count_ = 0;
  i64 first_local_ = 0;
  i64 step_ = 0;
  std::shared_ptr<const PeriodicPattern> pattern_;
};

/// Compile a plan into its kernel: selects the class from the plan's
/// strategy, derives the ascending count in O(log k), and (for the
/// periodic-gap class) fetches or builds the cached PeriodicPattern.
/// Counts a per-class `kernel.hit.*` tick; pattern builds open a
/// `kernel_compile` span.
[[nodiscard]] KernelPlan compile_kernel(const SectionPlan& plan);

/// Kernel class a (dist, stride) problem will lower to — classification
/// only, no tables touched (for amtool / interp explain output).
[[nodiscard]] KernelClass kernel_class_for(const BlockCyclic& dist, i64 stride) noexcept;

namespace kdetail {

/// True for element types the size-dispatched primitives can move as raw
/// integers of the same width: trivially copyable and naturally aligned
/// (an element-aligned base then guarantees every access is aligned for
/// the integer type used, which matters under -fsanitize=alignment).
template <typename T>
inline constexpr bool lowerable_v =
    std::is_trivially_copyable_v<T> &&
    (sizeof(T) == 1 || (sizeof(T) == 2 && alignof(T) == 2) ||
     (sizeof(T) == 4 && alignof(T) == 4) || (sizeof(T) == 8 && alignof(T) == 8) ||
     (sizeof(T) == 16 && alignof(T) >= 8));

/// out[i] = base[i * step] for i in [0, count).
void gather_strided(std::size_t esize, const void* base, i64 step, i64 count, void* out);
/// base[i * step] = in[i] for i in [0, count).
void scatter_strided(std::size_t esize, void* base, i64 step, i64 count, const void* in);
/// out[j*tile + r] = base[j*advance + off[r]]; off holds `tile` entries,
/// base advances by `advance` elements per whole tile, tail handled.
void gather_offsets(std::size_t esize, const void* base, const i64* off, i64 tile,
                    i64 advance, i64 count, void* out);
/// base[j*advance + off[r]] = in[j*tile + r] (scatter mirror).
void scatter_offsets(std::size_t esize, void* base, const i64* off, i64 tile, i64 advance,
                     i64 count, const void* in);
/// True when the build + CPU will use explicit SIMD for 4/8-byte moves.
[[nodiscard]] bool simd_active() noexcept;

}  // namespace kdetail

/// Replay the kernel's local addresses in ascending order: body(la) per
/// element. The scalar escape hatch every typed kernel shares; also the
/// generic path for non-lowerable element types.
template <typename Body>
i64 kernel_for_each_local(const KernelPlan& kp, Body&& body) {
  const i64 n = kp.count();
  switch (kp.cls()) {
    case KernelClass::kRunCopy: {
      const i64 first = kp.first_local();
      for (i64 i = 0; i < n; ++i) body(first + i);
      return n;
    }
    case KernelClass::kStrided: {
      const i64 step = kp.step();
      i64 la = kp.first_local();
      for (i64 i = 0; i < n; ++i, la += step) body(la);
      return n;
    }
    case KernelClass::kPeriodicGap: {
      const PeriodicPattern& pat = *kp.pattern();
      const i64* off = pat.tile_off.data();
      const i64 tile = pat.tile_len;
      i64 base = kp.first_local();
      i64 i = 0;
      for (; i + tile <= n; i += tile, base += pat.tile_advance)
        for (i64 j = 0; j < tile; ++j) body(base + off[j]);
      for (i64 j = 0; i < n; ++i, ++j) body(base + off[j]);
      return n;
    }
    case KernelClass::kScalar: break;
  }
  return 0;
}

/// local[la] = value over the kernel's addresses (fill_section core).
template <typename T>
i64 kernel_fill(const KernelPlan& kp, T* local, const T& value) {
  if (kp.cls() == KernelClass::kRunCopy) {
    std::fill_n(local + kp.first_local(), static_cast<std::size_t>(kp.count()), value);
    return kp.count();
  }
  return kernel_for_each_local(kp, [&](i64 la) { local[la] = value; });
}

/// out[la] = in[la] over the kernel's addresses (same-mapping copy core).
template <typename T>
i64 kernel_copy_same(const KernelPlan& kp, const T* in, T* out) {
  if (kp.cls() == KernelClass::kRunCopy) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      std::memcpy(out + kp.first_local(), in + kp.first_local(),
                  static_cast<std::size_t>(kp.count()) * sizeof(T));
    } else {
      std::copy_n(in + kp.first_local(), static_cast<std::size_t>(kp.count()),
                  out + kp.first_local());
    }
    return kp.count();
  }
  return kernel_for_each_local(kp, [&](i64 la) { out[la] = in[la]; });
}

/// out[i] = local[address i] — densify the kernel's elements into a packed
/// buffer (the pack-side primitive comm plans and reductions build on).
template <typename T>
i64 kernel_gather(const KernelPlan& kp, const T* local, T* out) {
  const i64 n = kp.count();
  if (n <= 0) return 0;
  switch (kp.cls()) {
    case KernelClass::kRunCopy:
      if constexpr (std::is_trivially_copyable_v<T>) {
        std::memcpy(out, local + kp.first_local(), static_cast<std::size_t>(n) * sizeof(T));
      } else {
        std::copy_n(local + kp.first_local(), static_cast<std::size_t>(n), out);
      }
      return n;
    case KernelClass::kStrided:
      if constexpr (kdetail::lowerable_v<T>) {
        kdetail::gather_strided(sizeof(T), local + kp.first_local(), kp.step(), n, out);
        return n;
      }
      break;
    case KernelClass::kPeriodicGap:
      if constexpr (kdetail::lowerable_v<T>) {
        const PeriodicPattern& pat = *kp.pattern();
        kdetail::gather_offsets(sizeof(T), local + kp.first_local(), pat.tile_off.data(),
                                pat.tile_len, pat.tile_advance, n, out);
        return n;
      }
      break;
    case KernelClass::kScalar: return 0;
  }
  i64 i = 0;
  return kernel_for_each_local(kp, [&](i64 la) { out[i++] = local[la]; });
}

/// local[address i] = in[i] — the unpack-side mirror of kernel_gather.
template <typename T>
i64 kernel_scatter(const KernelPlan& kp, T* local, const T* in) {
  const i64 n = kp.count();
  if (n <= 0) return 0;
  switch (kp.cls()) {
    case KernelClass::kRunCopy:
      if constexpr (std::is_trivially_copyable_v<T>) {
        std::memcpy(local + kp.first_local(), in, static_cast<std::size_t>(n) * sizeof(T));
      } else {
        std::copy_n(in, static_cast<std::size_t>(n), local + kp.first_local());
      }
      return n;
    case KernelClass::kStrided:
      if constexpr (kdetail::lowerable_v<T>) {
        kdetail::scatter_strided(sizeof(T), local + kp.first_local(), kp.step(), n, in);
        return n;
      }
      break;
    case KernelClass::kPeriodicGap:
      if constexpr (kdetail::lowerable_v<T>) {
        const PeriodicPattern& pat = *kp.pattern();
        kdetail::scatter_offsets(sizeof(T), local + kp.first_local(), pat.tile_off.data(),
                                 pat.tile_len, pat.tile_advance, n, in);
        return n;
      }
      break;
    case KernelClass::kScalar: return 0;
  }
  i64 i = 0;
  return kernel_for_each_local(kp, [&](i64 la) { local[la] = in[i++]; });
}

/// sum over the kernel's addresses of a[la] * b[la] (dot_product core).
/// Accumulation order is the ascending address order.
template <typename T>
T kernel_dot(const KernelPlan& kp, const T* a, const T* b) {
  T acc{};
  if (kp.cls() == KernelClass::kRunCopy) {
    const T* pa = a + kp.first_local();
    const T* pb = b + kp.first_local();
    const i64 n = kp.count();
    for (i64 i = 0; i < n; ++i) acc += pa[i] * pb[i];
    return acc;
  }
  kernel_for_each_local(kp, [&](i64 la) { acc += a[la] * b[la]; });
  return acc;
}

/// Periodic-offset gather outside a KernelPlan: out[j*period + r] =
/// base[j*advance + off[r]]. This is the comm-plan channel pack primitive —
/// a channel's gap table is exactly such an offset vector (prefix sums of
/// the gaps), so wire packing shares the SIMD path with section_ops.
template <typename T>
void kernel_gather_offsets(const T* base, const i64* off, i64 period, i64 advance,
                           i64 count, T* out) {
  if constexpr (kdetail::lowerable_v<T>) {
    kdetail::gather_offsets(sizeof(T), base, off, period, advance, count, out);
  } else {
    i64 i = 0;
    while (i < count) {
      const i64 lim = std::min(period, count - i);
      for (i64 j = 0; j < lim; ++j) out[i + j] = base[off[j]];
      i += lim;
      base += advance;
    }
  }
}

/// Periodic-offset scatter (comm-plan channel unpack primitive).
template <typename T>
void kernel_scatter_offsets(T* base, const i64* off, i64 period, i64 advance, i64 count,
                            const T* in) {
  if constexpr (kdetail::lowerable_v<T>) {
    kdetail::scatter_offsets(sizeof(T), base, off, period, advance, count, in);
  } else {
    i64 i = 0;
    while (i < count) {
      const i64 lim = std::min(period, count - i);
      for (i64 j = 0; j < lim; ++j) base[off[j]] = in[i + j];
      i += lim;
      base += advance;
    }
  }
}

/// Constant-stride gather: out[i] = base[i * step].
template <typename T>
void kernel_gather_strided(const T* base, i64 step, i64 count, T* out) {
  if constexpr (kdetail::lowerable_v<T>) {
    kdetail::gather_strided(sizeof(T), base, step, count, out);
  } else {
    for (i64 i = 0; i < count; ++i) out[i] = base[i * step];
  }
}

/// Constant-stride scatter: base[i * step] = in[i].
template <typename T>
void kernel_scatter_strided(T* base, i64 step, i64 count, const T* in) {
  if constexpr (kdetail::lowerable_v<T>) {
    kdetail::scatter_strided(sizeof(T), base, step, count, in);
  } else {
    for (i64 i = 0; i < count; ++i) base[i * step] = in[i];
  }
}

}  // namespace cyclick
