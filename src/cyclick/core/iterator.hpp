// Table-free enumeration of a processor's accesses using only the basis
// vectors R and L (paper, Section 6.2: "the algorithm can be modified to
// return only vectors R and L, without storing any tables. Based on these
// values, every processor can generate its local addresses as needed" —
// the time/space tradeoff pointed out by Knies, O'Keefe, and MacDonald).
//
// Each advance applies Theorem 3: ascending, step by R if that stays inside
// the processor's offset block, otherwise by -L, correcting to R - L when -L
// undershoots the block. For descending traversals (stride < 0) the same
// theorem runs backwards: the predecessor of an access differs by -R when
// that stays in the block, else by +L, correcting to -(R - L) when +L
// overshoots. O(1) state, O(1) amortized per element either way.
#pragma once

#include <optional>

#include "cyclick/core/lattice_addresser.hpp"
#include "cyclick/hpf/distribution.hpp"
#include "cyclick/lattice/lattice.hpp"

namespace cyclick {

/// Streams the on-processor elements of the unbounded progression
/// l, l+s, l+2s, ... (s != 0) for one processor, yielding global indices
/// and packed local addresses in traversal order (increasing for s > 0,
/// decreasing for s < 0) without materializing the AM table. The caller
/// decides when to stop (e.g. global() > u, or global() < u for s < 0).
class LocalAccessIterator {
 public:
  /// Positions the iterator at the processor's first access. If the
  /// processor owns no element of the progression, done() is true at once.
  LocalAccessIterator(const BlockCyclic& dist, i64 lower, i64 stride, i64 proc)
      : block_lo_(dist.block_size() * proc),
        block_hi_(dist.block_size() * (proc + 1)) {
    CYCLICK_REQUIRE(stride != 0, "iterator requires a nonzero stride");
    const i64 k = dist.block_size();
    const i64 pk = dist.row_length();
    const i64 mag = stride > 0 ? stride : -stride;
    descending_ = stride < 0;

    if (!descending_) {
      const auto si = find_start(dist, lower, mag, proc);
      if (!si) return;
      global_ = si->start_global;
    } else {
      // The descending progression's first on-proc element is the largest
      // on-proc value within one full period at or below the lower bound
      // (same anchor as compute_access_pattern_signed).
      const i64 d = gcd_i64(mag, pk);
      const i64 period_values = (pk / d) * mag;  // lcm(|s|, pk)
      const auto e0 = find_last(dist, {lower - period_values + mag, lower, mag}, proc);
      if (!e0) return;
      global_ = *e0;
    }
    done_ = false;
    local_ = dist.local_index(global_);
    offset_ = floor_mod(global_, pk);

    if (const auto basis = select_rl_basis(dist.procs(), k, mag)) {
      br_ = basis->r.v.b;
      bl_ = basis->l.v.b;
      value_r_ = basis->r.index * mag;
      value_l_ = -basis->l.index * mag;  // l.index < 0, so this is positive
      gap_r_ = basis->gap_r(k);
      gap_l_ = basis->gap_minus_l(k);
    } else {
      // Degenerate lattice (gcd(|s|, pk) >= k): at most one offset per block
      // carries elements; successive accesses are a fixed stride of
      // lcm(|s|, pk) in value and (|s|/d)*k in local memory.
      const i64 d = gcd_i64(mag, pk);
      fixed_step_ = true;
      value_r_ = (pk / d) * mag;
      gap_r_ = k * (mag / d);
      br_ = 0;
    }
  }

  /// True when the processor owns no element of the progression at all.
  /// (The progression is unbounded, so a started iterator never finishes.)
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Global array index of the current access.
  [[nodiscard]] i64 global() const noexcept { return global_; }

  /// Packed local-memory address of the current access.
  [[nodiscard]] i64 local() const noexcept { return local_; }

  /// Local-memory gap the next advance() will take (an AM table entry;
  /// negative when the traversal is descending).
  [[nodiscard]] i64 peek_gap() const noexcept {
    if (!descending_) {
      if (fixed_step_) return gap_r_;
      if (offset_ + br_ < block_hi_) return gap_r_;
      const i64 o = offset_ - bl_;
      return o < block_lo_ ? gap_l_ + gap_r_ : gap_l_;
    }
    if (fixed_step_) return -gap_r_;
    if (offset_ - br_ >= block_lo_) return -gap_r_;
    const i64 o = offset_ + bl_;
    return o < block_hi_ ? -gap_l_ : -(gap_l_ + gap_r_);
  }

  /// Move to the processor's next access in traversal order (Theorem 3,
  /// run backwards for descending traversals).
  void advance() noexcept {
    if (fixed_step_) {
      if (!descending_) {
        global_ += value_r_;
        local_ += gap_r_;
      } else {
        global_ -= value_r_;
        local_ -= gap_r_;
      }
      return;
    }
    if (!descending_) {
      if (offset_ + br_ < block_hi_) {  // Equation 1: step by R
        step(value_r_, gap_r_, br_);
        return;
      }
      step(value_l_, gap_l_, -bl_);     // Equation 2: step by -L
      if (offset_ < block_lo_) {
        step(value_r_, gap_r_, br_);    // Equation 3: correct by +R
      }
      return;
    }
    if (offset_ - br_ >= block_lo_) {   // undo Equation 1: step back by R
      step(-value_r_, -gap_r_, -br_);
      return;
    }
    step(-value_l_, -gap_l_, bl_);      // undo Equation 2: step back by -L
    if (offset_ >= block_hi_) {
      step(-value_r_, -gap_r_, -br_);   // undo Equation 3: correct by -R
    }
  }

 private:
  void step(i64 dvalue, i64 dlocal, i64 doffset) noexcept {
    global_ += dvalue;
    local_ += dlocal;
    offset_ += doffset;
  }

  bool done_ = true;
  bool fixed_step_ = false;
  bool descending_ = false;
  i64 block_lo_;
  i64 block_hi_;
  i64 global_ = 0;
  i64 local_ = 0;
  i64 offset_ = 0;
  i64 br_ = 0, bl_ = 0;
  i64 value_r_ = 0, value_l_ = 0;
  i64 gap_r_ = 0, gap_l_ = 0;
};

}  // namespace cyclick
