// Table-free enumeration of a processor's accesses using only the basis
// vectors R and L (paper, Section 6.2: "the algorithm can be modified to
// return only vectors R and L, without storing any tables. Based on these
// values, every processor can generate its local addresses as needed" —
// the time/space tradeoff pointed out by Knies, O'Keefe, and MacDonald).
//
// Each advance applies Theorem 3: step by R if that stays inside the
// processor's offset block, otherwise by -L, correcting to R - L when -L
// undershoots the block. O(1) state, O(1) amortized per element.
#pragma once

#include <optional>

#include "cyclick/core/lattice_addresser.hpp"
#include "cyclick/hpf/distribution.hpp"
#include "cyclick/lattice/lattice.hpp"

namespace cyclick {

/// Streams the on-processor elements of the unbounded ascending progression
/// l, l+s, l+2s, ... (s > 0) for one processor, yielding global indices and
/// packed local addresses in increasing order without materializing the AM
/// table. The caller decides when to stop (e.g. global() > u).
class LocalAccessIterator {
 public:
  /// Positions the iterator at the processor's first access. If the
  /// processor owns no element of the progression, done() is true at once.
  LocalAccessIterator(const BlockCyclic& dist, i64 lower, i64 stride, i64 proc)
      : block_lo_(dist.block_size() * proc),
        block_hi_(dist.block_size() * (proc + 1)) {
    CYCLICK_REQUIRE(stride > 0, "iterator requires a positive stride");
    const i64 k = dist.block_size();
    const auto si = find_start(dist, lower, stride, proc);
    if (!si) return;
    done_ = false;
    global_ = si->start_global;
    local_ = dist.local_index(global_);
    offset_ = floor_mod(global_, dist.row_length());

    if (const auto basis = select_rl_basis(dist.procs(), k, stride)) {
      br_ = basis->r.v.b;
      bl_ = basis->l.v.b;
      value_r_ = basis->r.index * stride;
      value_l_ = -basis->l.index * stride;  // l.index < 0, so this is positive
      gap_r_ = basis->gap_r(k);
      gap_l_ = basis->gap_minus_l(k);
    } else {
      // Degenerate lattice (gcd(s, pk) >= k): at most one offset per block
      // carries elements; successive accesses are a fixed stride of
      // lcm(s, pk) in value and (s/d)*k in local memory.
      const i64 d = gcd_i64(stride, dist.row_length());
      fixed_step_ = true;
      value_r_ = (dist.row_length() / d) * stride;
      gap_r_ = k * (stride / d);
      br_ = 0;
    }
  }

  /// True when the processor owns no element of the progression at all.
  /// (The progression is unbounded, so a started iterator never finishes.)
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Global array index of the current access.
  [[nodiscard]] i64 global() const noexcept { return global_; }

  /// Packed local-memory address of the current access.
  [[nodiscard]] i64 local() const noexcept { return local_; }

  /// Local-memory gap the next advance() will take (an AM table entry).
  [[nodiscard]] i64 peek_gap() const noexcept {
    if (fixed_step_) return gap_r_;
    if (offset_ + br_ < block_hi_) return gap_r_;
    const i64 o = offset_ - bl_;
    return o < block_lo_ ? gap_l_ + gap_r_ : gap_l_;
  }

  /// Move to the processor's next access (Theorem 3).
  void advance() noexcept {
    if (fixed_step_) {
      global_ += value_r_;
      local_ += gap_r_;
      return;
    }
    if (offset_ + br_ < block_hi_) {  // Equation 1: step by R
      step(value_r_, gap_r_, br_);
      return;
    }
    step(value_l_, gap_l_, -bl_);     // Equation 2: step by -L
    if (offset_ < block_lo_) {
      step(value_r_, gap_r_, br_);    // Equation 3: correct by +R
    }
  }

 private:
  void step(i64 dvalue, i64 dlocal, i64 doffset) noexcept {
    global_ += dvalue;
    local_ += dlocal;
    offset_ += doffset;
  }

  bool done_ = true;
  bool fixed_step_ = false;
  i64 block_lo_;
  i64 block_hi_;
  i64 global_ = 0;
  i64 local_ = 0;
  i64 offset_ = 0;
  i64 br_ = 0, bl_ = 0;
  i64 value_r_ = 0, value_l_ = 0;
  i64 gap_r_ = 0, gap_l_ = 0;
};

}  // namespace cyclick
