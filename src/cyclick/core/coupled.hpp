// Subscripts with multiple index variables (the extension the paper
// delegates to its companion work [12], Kennedy/Nedeljković/Sethi ICS'95:
// "Extensions necessary to handle coupled subscripts and subscripts
// containing multiple index variables are described in our related work").
//
// Setting: a loop nest
//
//     do i1 = l1, u1, s1
//       do i2 = l2, u2, s2
//         ... A(c1*i1 + c2*i2 + b) ...
//
// over an array distributed cyclic(k) on p processors. For a *fixed* outer
// iteration i1, the inner loop touches the 1-D regular section with lower
// bound c1*i1 + c2*l2 + b and stride c2*s2 — so the inner access pattern's
// gap structure (its R/L basis and AM table) is the same for every outer
// iteration; only the start location shifts by c1*s1 per iteration. A
// processor's accesses are therefore enumerated in loop order with one
// basis computation for the whole nest plus one O(k)-free start-location
// solve per outer iteration (O(log) via the shared residue machinery after
// the first row).
#pragma once

#include "cyclick/core/iterator.hpp"
#include "cyclick/core/lattice_addresser.hpp"
#include "cyclick/hpf/distribution.hpp"
#include "cyclick/hpf/section.hpp"

namespace cyclick {

/// The subscript  c1*i1 + c2*i2 + b  of a two-deep loop nest.
struct CoupledSubscript {
  i64 c1;
  i64 c2;
  i64 b;

  CoupledSubscript(i64 coeff1, i64 coeff2, i64 offset)
      : c1(coeff1), c2(coeff2), b(offset) {
    CYCLICK_REQUIRE(coeff2 != 0, "inner coefficient must be nonzero");
  }

  [[nodiscard]] i64 value(i64 i1, i64 i2) const noexcept { return c1 * i1 + c2 * i2 + b; }
};

/// A two-deep rectangular loop nest (outer, inner index ranges).
struct LoopNest2 {
  RegularSection outer;
  RegularSection inner;
};

/// One access performed by the nest on a given processor.
struct CoupledAccess {
  i64 i1;      ///< outer loop index
  i64 i2;      ///< inner loop index
  i64 global;  ///< subscript value (array element index)
  i64 local;   ///< packed local address on the processor
  friend bool operator==(const CoupledAccess&, const CoupledAccess&) = default;
};

/// Visit, in loop-iteration order, every access of the nest whose array
/// element lives on `proc`. body receives a CoupledAccess. Returns the
/// number of accesses. Cost: one basis computation for the nest plus one
/// start-location solve per outer iteration plus O(1) per access.
template <typename Body>
i64 for_each_coupled_access(const BlockCyclic& dist, const LoopNest2& nest,
                            const CoupledSubscript& sub, i64 proc, Body&& body) {
  CYCLICK_REQUIRE(proc >= 0 && proc < dist.procs(), "processor id out of range");
  if (nest.outer.empty() || nest.inner.empty()) return 0;

  const i64 inner_stride = sub.c2 * nest.inner.stride;  // subscript advance per i2 step
  i64 count = 0;
  for (i64 t1 = 0; t1 < nest.outer.size(); ++t1) {
    const i64 i1 = nest.outer.element(t1);
    // Subscript values of this inner row, and their i2 preimages.
    const i64 row_first = sub.value(i1, nest.inner.lower);
    const i64 row_last = sub.value(i1, nest.inner.last());
    if (inner_stride > 0) {
      LocalAccessIterator it(dist, row_first, inner_stride, proc);
      for (; !it.done() && it.global() <= row_last; it.advance()) {
        const i64 i2 = nest.inner.lower +
                       ((it.global() - row_first) / inner_stride) * nest.inner.stride;
        body(CoupledAccess{i1, i2, it.global(), it.local()});
        ++count;
      }
    } else {
      // Descending subscript within the row: walk the ascending reflection
      // and replay in reverse to preserve loop order.
      const i64 mag = -inner_stride;
      std::vector<std::pair<i64, i64>> buffer;  // (global, local)
      LocalAccessIterator it(dist, row_last, mag, proc);
      for (; !it.done() && it.global() <= row_first; it.advance())
        buffer.emplace_back(it.global(), it.local());
      for (auto rit = buffer.rbegin(); rit != buffer.rend(); ++rit) {
        const i64 i2 = nest.inner.lower +
                       ((rit->first - row_first) / inner_stride) * nest.inner.stride;
        body(CoupledAccess{i1, i2, rit->first, rit->second});
        ++count;
      }
    }
  }
  return count;
}

/// Materialized access list for the nest on one processor, in loop order
/// (convenience wrapper over for_each_coupled_access).
std::vector<CoupledAccess> coupled_access_list(const BlockCyclic& dist, const LoopNest2& nest,
                                               const CoupledSubscript& sub, i64 proc);

/// Per-nest precomputation the ICS'95 companion describes: the inner-row
/// gap structure is identical for every outer iteration (it depends only
/// on |c2*s2| and the distribution); only the start location shifts by
/// c1*s1 per iteration. The offset-indexed tables (Figure 8(d)) are the
/// phase-free representation of that shared structure — `delta` and
/// `next_offset` are functions of the block offset alone — so one table
/// pair serves every row; per-row state is just (start, start_local,
/// start block offset). Run-time systems hoist the tables out of the
/// outer loop.
struct CoupledRowPlan {
  OffsetTables tables;              ///< shared delta/next tables (start_offset is per-row)
  std::vector<i64> row_start;       ///< per outer iteration: first on-proc subscript, -1 if none
  std::vector<i64> row_start_local; ///< matching local addresses (-1 if none)

  /// Number of outer iterations that touch this processor at all.
  [[nodiscard]] i64 active_rows() const noexcept {
    i64 n = 0;
    for (const i64 s : row_start) n += (s >= 0);
    return n;
  }
};
/// Requires an ascending subscript within the row (c2 * inner stride > 0);
/// descending rows are handled by for_each_coupled_access directly.
CoupledRowPlan plan_coupled_rows(const BlockCyclic& dist, const LoopNest2& nest,
                                 const CoupledSubscript& sub, i64 proc);

}  // namespace cyclick
