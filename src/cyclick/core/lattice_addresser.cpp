#include "cyclick/core/lattice_addresser.hpp"

#include <algorithm>

#include "cyclick/obs/metrics.hpp"
#include "cyclick/support/residue_scan.hpp"

namespace cyclick {

std::optional<StartInfo> find_start(const BlockCyclic& dist, i64 lower, i64 stride, i64 proc,
                                    WorkStats* stats) {
  CYCLICK_REQUIRE(stride > 0, "find_start requires a positive stride");
  CYCLICK_REQUIRE(proc >= 0 && proc < dist.procs(), "processor id out of range");
  const ResidueScan scan(stride, dist.row_length());
  const i64 k = dist.block_size();

  // Lines 4-11 of Figure 5: solve s*j ≡ i (mod pk) for every target residue
  // i = o - l with o in [km, k(m+1)); solutions exist iff d | i. The scan
  // iterates only the solvable residues (d apart) with incrementally
  // maintained solutions.
  const i64 window_lo = k * proc - lower;
  i64 best_j = INT64_MAX;
  i64 length = 0;
  scan.for_each_solvable(window_lo, window_lo + k, [&](i64, i64 j) {
    if (j < best_j) best_j = j;
    ++length;
  });
  if (stats) stats->equations_solved += length;
  CYCLICK_COUNT("addresser.start_solves", proc, 1);
  CYCLICK_COUNT("addresser.equations_solved", proc, length);
  if (length == 0) return std::nullopt;
  return StartInfo{lower + best_j * stride, length};
}

std::optional<i64> find_last(const BlockCyclic& dist, const RegularSection& section, i64 proc) {
  CYCLICK_REQUIRE(proc >= 0 && proc < dist.procs(), "processor id out of range");
  if (section.empty()) return std::nullopt;
  const RegularSection asc = section.ascending();
  const ResidueScan scan(asc.stride, dist.row_length());
  const i64 k = dist.block_size();
  const i64 t_max = asc.size() - 1;  // largest admissible progression step

  const i64 window_lo = k * proc - asc.lower;
  i64 best_j = -1;
  scan.for_each_solvable(window_lo, window_lo + k, [&](i64, i64 j0) {
    if (j0 > t_max) return;  // this offset is never reached within bounds
    const i64 j_last = j0 + ((t_max - j0) / scan.period) * scan.period;
    if (j_last > best_j) best_j = j_last;
  });
  if (best_j < 0) return std::nullopt;
  return asc.lower + best_j * asc.stride;
}

AccessPattern compute_access_pattern(const BlockCyclic& dist, i64 lower, i64 stride, i64 proc,
                                     WorkStats* stats) {
  CYCLICK_REQUIRE(stride > 0, "compute_access_pattern requires a positive stride;"
                              " use compute_access_pattern_signed for s < 0");
  CYCLICK_COUNT("addresser.tables_built", proc, 1);
  CYCLICK_TIME_SCOPE("addresser.build_us", proc);
  AccessPattern pat;
  pat.proc = proc;

  const auto si = find_start(dist, lower, stride, proc, stats);
  if (!si) return pat;  // lines 13-14: no section element ever lands on proc

  const i64 k = dist.block_size();
  const i64 pk = dist.row_length();
  const i64 d = gcd_i64(stride, pk);
  pat.start_global = si->start_global;
  pat.start_local = dist.local_index(si->start_global);
  pat.length = si->length;
  if (stats) ++stats->points_visited;  // the start point itself

  if (pat.length == 1) {
    // Lines 15-17: a single offset repeats every lcm(s, pk)/s steps; the
    // local gap is (s/d) rows of k cells.
    pat.gaps.assign(1, k * (stride / d));
    CYCLICK_COUNT("addresser.table_cells", proc, 1);
    return pat;
  }

  // Lines 19-30: R and L from the initial cycle of processor 0 (length >= 2
  // implies at least two multiples of d inside a k-window, hence d < k and
  // the basis exists).
  const auto basis = select_rl_basis(dist.procs(), k, stride);
  CYCLICK_ASSERT(basis.has_value());
  CYCLICK_COUNT("addresser.basis_searches", proc, 1);
  if (stats) stats->equations_solved += (k - 1) / basis->d;

  const i64 br = basis->r.v.b, ar = basis->r.v.a;
  const i64 bl = basis->l.v.b, al = basis->l.v.a;
  const i64 gap_r = ar * k + br;
  const i64 gap_l = -(al * k + bl);

  // Lines 31-49: walk the initial cycle applying Theorem 3.
  pat.gaps.resize(static_cast<std::size_t>(pat.length));
  i64 offset = floor_mod(pat.start_global, pk);
  const i64 block_hi = k * (proc + 1);
  const i64 block_lo = k * proc;
  i64 i = 0;
  while (i < pat.length) {
    while (i < pat.length && offset + br < block_hi) {
      pat.gaps[static_cast<std::size_t>(i)] = gap_r;  // Equation 1: step by R
      offset += br;
      ++i;
      if (stats) ++stats->points_visited;
    }
    if (i == pat.length) break;
    pat.gaps[static_cast<std::size_t>(i)] = gap_l;  // Equation 2: step by -L
    offset -= bl;
    if (stats) ++stats->points_visited;
    if (offset < block_lo) {
      // Equation 3: the -L point fell below the block; step by R - L.
      pat.gaps[static_cast<std::size_t>(i)] += gap_r;
      offset += br;
      if (stats) ++stats->points_visited;
    }
    ++i;
  }
  CYCLICK_COUNT("addresser.table_cells", proc, pat.length);
  return pat;
}

AccessPattern compute_access_pattern_signed(const BlockCyclic& dist, i64 lower, i64 stride,
                                            i64 proc) {
  CYCLICK_REQUIRE(stride != 0, "stride must be nonzero");
  if (stride > 0) return compute_access_pattern(dist, lower, stride, proc);

  // Descending traversal: the element set below `lower` with step |s| is
  // visited in decreasing order. Its first on-processor element e0 is the
  // largest on-proc value in one full period below the lower bound; the
  // descending gap table is the ascending table anchored at e0, reversed
  // and negated (the gap into a cyclic sequence's anchor is its last entry).
  const i64 mag = -stride;
  const i64 pk = dist.row_length();
  const i64 d = gcd_i64(mag, pk);
  const i64 period_values = (pk / d) * mag;  // lcm(|s|, pk)
  const RegularSection one_period{lower - period_values + mag, lower, mag};
  const auto e0 = find_last(dist, one_period, proc);

  AccessPattern pat;
  pat.proc = proc;
  if (!e0) return pat;  // no element of the progression ever lands on proc

  const AccessPattern asc = compute_access_pattern(dist, *e0, mag, proc);
  CYCLICK_ASSERT(asc.start_global == *e0);
  pat.start_global = *e0;
  pat.start_local = asc.start_local;
  pat.length = asc.length;
  pat.gaps.resize(asc.gaps.size());
  std::transform(asc.gaps.rbegin(), asc.gaps.rend(), pat.gaps.begin(),
                 [](i64 g) { return -g; });
  return pat;
}

OffsetTables compute_offset_tables(const BlockCyclic& dist, i64 lower, i64 stride, i64 proc) {
  CYCLICK_REQUIRE(stride > 0, "offset tables require a positive stride");
  OffsetTables tables;
  const AccessPattern pat = compute_access_pattern(dist, lower, stride, proc);
  if (pat.empty()) return tables;

  const i64 k = dist.block_size();
  tables.start_offset = dist.block_offset(pat.start_global);
  tables.delta.assign(static_cast<std::size_t>(k), 0);
  tables.next_offset.assign(static_cast<std::size_t>(k), -1);

  // Re-walk the cycle recording, for each visited block offset, the gap
  // leaving it and the offset it leads to (Section 6.2's modification of
  // lines 36-38 / 42-46). The walk's offsets repeat with period `length`,
  // so one cycle fills every reachable table slot.
  i64 q = tables.start_offset;
  for (i64 i = 0; i < pat.length; ++i) {
    const i64 gap = pat.gaps[static_cast<std::size_t>(i)];
    // A gap of a*k + b moves b offsets within the block pattern.
    const i64 next_q = floor_mod(q + gap, k);
    tables.delta[static_cast<std::size_t>(q)] = gap;
    tables.next_offset[static_cast<std::size_t>(q)] = next_q;
    q = next_q;
  }
  CYCLICK_ASSERT(q == tables.start_offset);  // the cycle closes
  return tables;
}

OffsetTables compute_full_offset_tables(const BlockCyclic& dist, i64 stride) {
  CYCLICK_REQUIRE(stride > 0, "offset tables require a positive stride");
  const i64 k = dist.block_size();
  OffsetTables tables;
  tables.start_offset = -1;  // phase is supplied by the caller
  tables.delta.assign(static_cast<std::size_t>(k), 0);
  tables.next_offset.assign(static_cast<std::size_t>(k), -1);

  const auto basis = select_rl_basis(dist.procs(), k, stride);
  if (!basis) {
    // Degenerate lattice (gcd(s, pk) >= k): each populated offset repeats in
    // place every lcm(s, pk) elements.
    const i64 d = gcd_i64(stride, dist.row_length());
    for (i64 q = 0; q < k; ++q) {
      tables.delta[static_cast<std::size_t>(q)] = k * (stride / d);
      tables.next_offset[static_cast<std::size_t>(q)] = q;
    }
    return tables;
  }

  const i64 br = basis->r.v.b;
  const i64 bl = basis->l.v.b;
  const i64 gap_r = basis->gap_r(k);
  const i64 gap_l = basis->gap_minus_l(k);
  for (i64 q = 0; q < k; ++q) {
    if (q + br < k) {  // Equation 1
      tables.delta[static_cast<std::size_t>(q)] = gap_r;
      tables.next_offset[static_cast<std::size_t>(q)] = q + br;
    } else {
      i64 next = q - bl;  // Equation 2
      i64 gap = gap_l;
      if (next < 0) {  // Equation 3
        next += br;
        gap += gap_r;
      }
      tables.delta[static_cast<std::size_t>(q)] = gap;
      tables.next_offset[static_cast<std::size_t>(q)] = next;
    }
  }
  return tables;
}

}  // namespace cyclick
