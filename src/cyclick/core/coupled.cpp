#include "cyclick/core/coupled.hpp"

namespace cyclick {

std::vector<CoupledAccess> coupled_access_list(const BlockCyclic& dist, const LoopNest2& nest,
                                               const CoupledSubscript& sub, i64 proc) {
  std::vector<CoupledAccess> out;
  for_each_coupled_access(dist, nest, sub, proc,
                          [&](const CoupledAccess& a) { out.push_back(a); });
  return out;
}

CoupledRowPlan plan_coupled_rows(const BlockCyclic& dist, const LoopNest2& nest,
                                 const CoupledSubscript& sub, i64 proc) {
  CYCLICK_REQUIRE(proc >= 0 && proc < dist.procs(), "processor id out of range");
  const i64 stride = sub.c2 * nest.inner.stride;
  CYCLICK_REQUIRE(stride > 0, "plan_coupled_rows requires an ascending row subscript");
  CoupledRowPlan plan;
  if (nest.outer.empty() || nest.inner.empty()) return plan;

  const i64 rows = nest.outer.size();
  plan.row_start.assign(static_cast<std::size_t>(rows), -1);
  plan.row_start_local.assign(static_cast<std::size_t>(rows), -1);

  // One phase-free table pair serves every row (and every processor):
  // different rows may start in different residue classes of offsets, so
  // the full-geometry tables are required rather than one row's cycle.
  plan.tables = compute_full_offset_tables(dist, stride);

  for (i64 t1 = 0; t1 < rows; ++t1) {
    const i64 i1 = nest.outer.element(t1);
    const i64 row_first = sub.value(i1, nest.inner.lower);
    const i64 row_last = sub.value(i1, nest.inner.last());
    const auto si = find_start(dist, row_first, stride, proc);
    if (!si || si->start_global > row_last) continue;  // row misses this processor
    plan.row_start[static_cast<std::size_t>(t1)] = si->start_global;
    plan.row_start_local[static_cast<std::size_t>(t1)] = dist.local_index(si->start_global);
  }
  return plan;
}

}  // namespace cyclick
