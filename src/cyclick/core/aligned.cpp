#include "cyclick/core/aligned.hpp"

#include <algorithm>

#include "cyclick/core/iterator.hpp"
#include "cyclick/core/lattice_addresser.hpp"

namespace cyclick {

PackedLayout::PackedLayout(const BlockCyclic& dist, const AffineAlignment& align, i64 n,
                           i64 proc) {
  CYCLICK_REQUIRE(n >= 1, "array must have at least one element");
  CYCLICK_REQUIRE(proc >= 0 && proc < dist.procs(), "processor id out of range");
  const RegularSection layout = align.layout(n);  // ascending, stride |a|
  const i64 a = layout.stride;
  const i64 pk = dist.row_length();
  const i64 k = dist.block_size();
  const EgcdResult eg = extended_euclid(floor_mod(a, pk), pk);
  const i64 d = eg.g;
  const i64 steps = pk / d;  // j-period at a fixed offset
  period_ = steps * a;

  const i64 window_lo = k * proc;
  for (i64 o = window_lo + floor_mod(layout.lower - window_lo, d); o < window_lo + k; o += d) {
    const auto j0 = solve_congruence_min_nonneg(a, o - layout.lower, pk, eg);
    CYCLICK_ASSERT(j0.has_value());
    // Offsets first reached beyond the array extent (j0 >= n) hold no real
    // element (count 0) but still belong to the idealized unbounded layout.
    const i64 count = *j0 >= n ? 0 : (n - 1 - *j0) / steps + 1;
    classes_.push_back({layout.lower + *j0 * a, count});
    size_ += count;
  }
}

i64 PackedLayout::rank(i64 cell) const {
  i64 below = 0;
  for (const OffsetClass& cls : classes_) {
    if (cls.first_cell >= cell) continue;
    const i64 in_range = (cell - 1 - cls.first_cell) / period_ + 1;
    below += in_range < cls.count ? in_range : cls.count;
  }
  return below;
}

i64 PackedLayout::rank_unbounded(i64 cell) const {
  i64 below = 0;
  for (const OffsetClass& cls : classes_) {
    if (cls.first_cell >= cell) continue;
    below += (cell - 1 - cls.first_cell) / period_ + 1;
  }
  return below;
}

AlignedAccessPattern compute_aligned_pattern(const BlockCyclic& dist,
                                             const AffineAlignment& align, i64 n,
                                             const RegularSection& sec, i64 proc) {
  AlignedAccessPattern out;
  out.proc = proc;
  if (sec.empty()) return out;
  CYCLICK_REQUIRE(sec.lower >= 0 && sec.lower < n && sec.last() >= 0 && sec.last() < n,
                  "section must lie within the array");

  const RegularSection image = align.image(sec);  // cell-space section, any stride sign
  const i64 cell_stride = image.stride > 0 ? image.stride : -image.stride;
  const bool descending = image.stride < 0;

  // Anchor: the first cell touched in traversal order that lives on `proc`.
  i64 anchor;
  if (!descending) {
    const auto si = find_start(dist, image.lower, cell_stride, proc);
    if (!si) return out;
    anchor = si->start_global;
    out.length = si->length;
  } else {
    // Descending traversal: the anchor is the largest on-proc cell within
    // one full period below the starting cell (cf. compute_access_pattern_signed).
    const i64 d = gcd_i64(cell_stride, dist.row_length());
    const i64 period_values = (dist.row_length() / d) * cell_stride;
    const RegularSection one_period{image.lower - period_values + cell_stride, image.lower,
                                    cell_stride};
    const auto e0 = find_last(dist, one_period, proc);
    if (!e0) return out;
    anchor = *e0;
    const auto si = find_start(dist, anchor, cell_stride, proc);
    CYCLICK_ASSERT(si && si->start_global == anchor);
    out.length = si->length;
  }

  // Walk one full cycle of cell-space accesses anchored at `anchor`, convert
  // each cell to its packed rank (application 1), and differentiate.
  const PackedLayout packed(dist, align, n, proc);
  LocalAccessIterator it(dist, anchor, cell_stride, proc);
  CYCLICK_ASSERT(!it.done() && it.global() == anchor);

  std::vector<i64> ranks;
  ranks.reserve(static_cast<std::size_t>(out.length) + 1);
  for (i64 i = 0; i <= out.length; ++i) {
    // The cycle's wrap-around may step past the array's last cell; rank
    // against the idealized unbounded layout so the table stays periodic
    // (clamped and unbounded ranks agree for in-extent cells).
    ranks.push_back(packed.rank_unbounded(it.global()));
    it.advance();
  }

  out.gaps.resize(static_cast<std::size_t>(out.length));
  for (std::size_t i = 0; i + 1 < ranks.size(); ++i) out.gaps[i] = ranks[i + 1] - ranks[i];

  if (descending) {
    std::reverse(out.gaps.begin(), out.gaps.end());
    for (i64& g : out.gaps) g = -g;
  }

  const auto idx = align.index_of_cell(anchor);
  CYCLICK_ASSERT(idx.has_value());
  out.start_array_index = *idx;
  out.start_packed_local = ranks.front();
  return out;
}

}  // namespace cyclick
