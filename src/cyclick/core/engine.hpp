// Unified address-dispatch layer: one facade that classifies every
// (BlockCyclic, section, processor) access problem and hands back the
// cheapest enumerator for it.
//
// The paper's Section 6.2 observes that the delta/next tables of Theorem 3
// depend only on (p, k, s) — not on the processor number or the section's
// lower bound — so one table pair serves every rank and every phase of an
// SPMD loop. AddressEngine exploits that twice over: it keeps a keyed LRU
// cache of compute_full_offset_tables results (p ranks asking for the same
// section pay one table construction), and it classifies each problem into
// the cheapest of six strategies before any table is even consulted:
//
//   condition            class             enumerator
//   p == 1               trivial-local     local == global, closed loop
//   |s| == 1             dense-runs        (start, len) block runs
//   k == 1               pure-cyclic       fixed global/local step
//   gcd(|s|, pk) >= k    fixed-step        fixed global/local step
//   |s| mod pk < k       hiranandani       nav tables; O(k) pattern (ICS'94)
//   otherwise            general-lattice   nav tables (Figure 5 / Theorem 3)
//
// Consumers receive a SectionPlan: the chosen strategy plus a uniform
// for_each / for_each_run API, so runtime layers branch on the
// classification (memcpy/std::fill on dense runs) without re-deriving it.
#pragma once

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "cyclick/core/access_pattern.hpp"
#include "cyclick/core/iterator.hpp"
#include "cyclick/core/lattice_addresser.hpp"
#include "cyclick/hpf/distribution.hpp"
#include "cyclick/hpf/section.hpp"
#include "cyclick/support/shard_cache.hpp"

namespace cyclick {

/// The six access-structure classes, in classification priority order.
enum class AddressStrategy {
  kTrivialLocal,    ///< p == 1: every global index is its own local address
  kDenseRuns,       ///< |s| == 1: owned elements form k-wide contiguous runs
  kPureCyclic,      ///< k == 1: one offset per row, fixed step
  kFixedStep,       ///< gcd(|s|, pk) >= k: at most one offset per block
  kHiranandani,     ///< |s| mod pk < k: nav tables + O(k) pattern (ICS'94)
  kGeneralLattice,  ///< the general Figure-5 lattice path
};

[[nodiscard]] const char* address_strategy_name(AddressStrategy s) noexcept;

struct PeriodicPattern;  // kernels.hpp: the compiled per-period offset vector

/// Processor- and phase-independent navigation state for one (p, k, |s|)
/// problem: the full offset tables of Section 6.2 plus the matching
/// global-index gaps, the inverse offset map for descending traversals, and
/// the closed-form step of the degenerate cases. Built once, shared via the
/// engine's table cache.
struct EngineTables {
  i64 procs = 1;
  i64 block = 1;
  i64 stride = 1;  ///< stride magnitude |s| the tables were built for
  AddressStrategy strategy = AddressStrategy::kGeneralLattice;
  OffsetTables offsets;          ///< full delta/next tables (start_offset -1)
  std::vector<i64> dglobal;      ///< k entries: global-index gap leaving offset q
  std::vector<i64> prev_offset;  ///< k entries: inverse of offsets.next_offset
  bool degenerate = false;       ///< gcd(|s|, pk) >= k (includes k == 1)
  i64 fixed_dglobal = 0;         ///< degenerate global step, lcm(|s|, pk)
  i64 fixed_dlocal = 0;          ///< degenerate local step, k * (|s|/d)
  /// Calibration result: the ICS'94 O(k) pattern construction measured
  /// faster than the signed Figure-5 path for this (p, k, |s|). Set once at
  /// table-build time; pattern() consults it so no specialized construction
  /// is ever promoted when it loses on the actual hardware.
  bool ics94_pattern_wins = false;
  /// Kernel-layer cache: one compiled PeriodicPattern per start offset q0
  /// (kernels.hpp). Lazily sized to `block`; guarded by kernel_mu because
  /// plans sharing the tables compile kernels concurrently.
  mutable std::mutex kernel_mu;
  mutable std::vector<std::shared_ptr<const PeriodicPattern>> kernel_patterns;
};

/// The engine's answer for one bounded section on one processor: the chosen
/// strategy, the shared navigation tables, and the traversal endpoints.
/// Enumeration respects the section's direction (descending for s < 0);
/// for_each_run always yields ascending runs.
class SectionPlan {
 public:
  SectionPlan() = default;

  [[nodiscard]] AddressStrategy strategy() const noexcept { return strategy_; }
  /// True when the processor owns no in-bounds section element.
  [[nodiscard]] bool empty() const noexcept { return empty_; }
  [[nodiscard]] const BlockCyclic& dist() const noexcept { return dist_; }
  [[nodiscard]] i64 proc() const noexcept { return proc_; }
  /// The section's original (signed) stride.
  [[nodiscard]] i64 stride() const noexcept { return stride_; }
  [[nodiscard]] const std::shared_ptr<const EngineTables>& tables() const noexcept {
    return tables_;
  }

  /// Traversal-order endpoints (descending traversal for stride < 0).
  /// Meaningful only for nonempty plans.
  [[nodiscard]] i64 first_global() const noexcept { return stride_ < 0 ? al_global_ : af_global_; }
  [[nodiscard]] i64 first_local() const noexcept { return stride_ < 0 ? al_local_ : af_local_; }
  [[nodiscard]] i64 last_global() const noexcept { return stride_ < 0 ? af_global_ : al_global_; }
  [[nodiscard]] i64 last_local() const noexcept { return stride_ < 0 ? af_local_ : al_local_; }

  /// True when consecutive owned elements occupy consecutive local cells,
  /// so for_each_run yields memcpy/std::fill-able block runs.
  [[nodiscard]] bool contiguous() const noexcept {
    return !empty_ &&
           (strategy_ == AddressStrategy::kDenseRuns ||
            (strategy_ == AddressStrategy::kTrivialLocal && (stride_ == 1 || stride_ == -1)));
  }

  /// Visit every owned in-bounds element as (global index, local address),
  /// in traversal order. Returns the visit count.
  template <typename Body>
  i64 for_each(Body&& body) const {
    if (empty_) return 0;
    switch (strategy_) {
      case AddressStrategy::kTrivialLocal: {
        // p == 1: the packed local address equals the global index.
        const i64 step = stride_ > 0 ? stride_ : -stride_;
        i64 count = 0;
        if (stride_ > 0) {
          for (i64 g = af_global_; g <= asc_hi_; g += step, ++count) body(g, g);
        } else {
          for (i64 g = al_global_; g >= asc_lo_; g -= step, ++count) body(g, g);
        }
        return count;
      }
      case AddressStrategy::kDenseRuns: {
        const i64 k = dist_.block_size();
        const i64 row_skip = dist_.row_length() - k;
        i64 count = 0;
        if (stride_ > 0) {
          i64 g = af_global_;
          i64 la = af_local_;
          while (g <= asc_hi_) {
            const i64 block_end = g + (k - 1 - dist_.block_offset(g));
            const i64 run_end = block_end < asc_hi_ ? block_end : asc_hi_;
            for (; g <= run_end; ++g, ++la, ++count) body(g, la);
            g += row_skip;
          }
        } else {
          i64 g = al_global_;
          i64 la = al_local_;
          while (g >= asc_lo_) {
            const i64 block_start = g - dist_.block_offset(g);
            const i64 run_end = block_start > asc_lo_ ? block_start : asc_lo_;
            for (; g >= run_end; --g, --la, ++count) body(g, la);
            g -= row_skip;
          }
        }
        return count;
      }
      default:
        return stride_ < 0 ? walk_descending(std::forward<Body>(body))
                           : walk_ascending(std::forward<Body>(body));
    }
  }

  /// Enumerate the owned elements as ascending runs (global start, local
  /// start, length) with both addresses contiguous within a run. Dense
  /// strategies yield whole-block runs; the others yield length-1 runs.
  /// Returns the element count (sum of lengths).
  template <typename Body>
  i64 for_each_run(Body&& body) const {
    if (empty_) return 0;
    switch (strategy_) {
      case AddressStrategy::kTrivialLocal: {
        if (stride_ == 1 || stride_ == -1) {
          const i64 len = asc_hi_ - asc_lo_ + 1;
          body(asc_lo_, asc_lo_, len);
          return len;
        }
        const i64 step = stride_ > 0 ? stride_ : -stride_;
        i64 count = 0;
        for (i64 g = af_global_; g <= asc_hi_; g += step, ++count) body(g, g, i64{1});
        return count;
      }
      case AddressStrategy::kDenseRuns: {
        const i64 k = dist_.block_size();
        const i64 row_skip = dist_.row_length() - k;
        i64 g = af_global_;
        i64 la = af_local_;
        i64 count = 0;
        while (g <= asc_hi_) {
          const i64 block_end = g + (k - 1 - dist_.block_offset(g));
          const i64 run_end = block_end < asc_hi_ ? block_end : asc_hi_;
          const i64 len = run_end - g + 1;
          body(g, la, len);
          count += len;
          la += len;
          g = run_end + 1 + row_skip;
        }
        return count;
      }
      default:
        return walk_ascending([&](i64 g, i64 la) { body(g, la, i64{1}); });
    }
  }

  /// Materialize the classic AccessPattern (start + cyclic AM gap table)
  /// for this plan, routed through the engine's classification: the ICS'94
  /// O(k) construction when applicable, else the signed Figure-5 path.
  [[nodiscard]] AccessPattern make_pattern() const;

  /// The full offset tables phased to this plan's start element, shaped for
  /// the Figure 8(d) offset-indexed node code. Requires a nonempty plan.
  [[nodiscard]] OffsetTables offset_tables() const;

 private:
  friend class AddressEngine;

  /// Ascending nav-table / fixed-step walk over [asc_lo_, asc_hi_].
  template <typename Body>
  i64 walk_ascending(Body&& body) const {
    i64 count = 0;
    if (tables_->degenerate) {
      const i64 dg = tables_->fixed_dglobal;
      const i64 dl = tables_->fixed_dlocal;
      for (i64 g = af_global_, la = af_local_; g <= asc_hi_; g += dg, la += dl, ++count)
        body(g, la);
      return count;
    }
    const i64* delta = tables_->offsets.delta.data();
    const i64* next = tables_->offsets.next_offset.data();
    const i64* dglobal = tables_->dglobal.data();
    i64 g = af_global_;
    i64 la = af_local_;
    auto q = static_cast<std::size_t>(dist_.block_offset(g));
    while (g <= asc_hi_) {
      body(g, la);
      ++count;
      g += dglobal[q];
      la += delta[q];
      q = static_cast<std::size_t>(next[q]);
    }
    return count;
  }

  /// Descending walk: inverts the offset map (Theorem 3 run backwards).
  template <typename Body>
  i64 walk_descending(Body&& body) const {
    i64 count = 0;
    if (tables_->degenerate) {
      const i64 dg = tables_->fixed_dglobal;
      const i64 dl = tables_->fixed_dlocal;
      for (i64 g = al_global_, la = al_local_; g >= asc_lo_; g -= dg, la -= dl, ++count)
        body(g, la);
      return count;
    }
    const i64* delta = tables_->offsets.delta.data();
    const i64* dglobal = tables_->dglobal.data();
    const i64* prev = tables_->prev_offset.data();
    i64 g = al_global_;
    i64 la = al_local_;
    auto q = static_cast<std::size_t>(dist_.block_offset(g));
    while (g >= asc_lo_) {
      body(g, la);
      ++count;
      q = static_cast<std::size_t>(prev[q]);
      g -= dglobal[q];
      la -= delta[q];
    }
    return count;
  }

  BlockCyclic dist_{1, 1};
  i64 proc_ = 0;
  i64 stride_ = 1;               ///< original signed stride
  i64 asc_lo_ = 0, asc_hi_ = -1; ///< tightened ascending bounds
  AddressStrategy strategy_ = AddressStrategy::kGeneralLattice;
  std::shared_ptr<const EngineTables> tables_;
  bool empty_ = true;
  i64 af_global_ = 0, af_local_ = 0;  ///< ascending-first owned access
  i64 al_global_ = 0, al_local_ = 0;  ///< ascending-last owned access
};

/// The dispatch facade. Stateless except for the (p, k, |s|)-keyed sharded
/// LRU table cache; thread-safe. Most callers use the process-wide global().
class AddressEngine {
 public:
  struct CacheStats {
    i64 hits = 0;
    i64 misses = 0;
    i64 evictions = 0;
    std::size_t size = 0;
  };

  /// `table_shards` == 0 picks the automatic shard count for the capacity
  /// (1 for small caches, so exact-LRU semantics hold; striped for large).
  explicit AddressEngine(std::size_t table_capacity = 256, std::size_t table_shards = 0);

  /// Strategy classification from the distribution and (signed) stride
  /// alone — no tables touched.
  [[nodiscard]] static AddressStrategy classify(const BlockCyclic& dist, i64 stride) noexcept;

  /// Plan a bounded (possibly descending, possibly empty) section on one
  /// processor. Counts the chosen strategy in the obs registry.
  [[nodiscard]] SectionPlan plan(const BlockCyclic& dist, const RegularSection& sec,
                                 i64 proc) const;

  /// The shared navigation tables for (dist, |stride|), from the cache.
  [[nodiscard]] std::shared_ptr<const EngineTables> tables(const BlockCyclic& dist,
                                                           i64 stride) const;

  /// Signed-stride AccessPattern for the unbounded progression
  /// lower, lower+stride, ...: the ICS'94 O(k) fast path when s mod pk < k,
  /// else the signed Figure-5 construction.
  [[nodiscard]] AccessPattern pattern(const BlockCyclic& dist, i64 lower, i64 stride,
                                      i64 proc) const;

  /// Table-free streaming enumeration (signed): the R/L state machine of
  /// Section 6.2, descending for stride < 0.
  [[nodiscard]] LocalAccessIterator stream(const BlockCyclic& dist, i64 lower, i64 stride,
                                           i64 proc) const;

  [[nodiscard]] CacheStats cache_stats() const;
  void clear_cache() const;
  [[nodiscard]] std::size_t cache_capacity() const noexcept { return cache_.capacity(); }
  [[nodiscard]] std::size_t cache_shards() const noexcept { return cache_.shard_count(); }

  /// The process-wide engine every runtime layer dispatches through.
  static AddressEngine& global();

 private:
  struct TableKey {
    i64 procs;
    i64 block;
    i64 stride;  ///< magnitude
    friend bool operator==(const TableKey&, const TableKey&) = default;
  };
  struct TableKeyHash {
    std::size_t operator()(const TableKey& k) const noexcept {
      // FNV-1a over the key's fields (same scheme as PlanKeyHash).
      u64 h = 1469598103934665603ULL;
      for (const i64 v : {k.procs, k.block, k.stride}) {
        h ^= static_cast<u64>(v);
        h *= 1099511628211ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };
  mutable ShardedCache<TableKey, EngineTables, TableKeyHash> cache_;
};

}  // namespace cyclick
