#include "cyclick/core/kernels.hpp"

#include <cstddef>
#include <cstdint>

#include "cyclick/obs/metrics.hpp"
#include "cyclick/obs/trace.hpp"

// Explicit-SIMD policy: the library is built without arch flags, so the
// x86 vector variants are emitted per-function via the GCC/Clang `target`
// attribute and selected at runtime with __builtin_cpu_supports — no
// global -mavx2 requirement, and the scalar fallbacks stay the baseline
// ISA. NEON needs no runtime probe (it is baseline on aarch64), so those
// variants gate on __ARM_NEON alone. -DCYCLICK_FORCE_SCALAR compiles all
// of it out for differential testing.
#if (defined(__x86_64__) || defined(__i386__)) && !defined(CYCLICK_FORCE_SCALAR)
#define CYCLICK_KERNELS_X86 1
#include <immintrin.h>
#elif defined(__ARM_NEON) && !defined(CYCLICK_FORCE_SCALAR)
#define CYCLICK_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace cyclick {

const char* kernel_class_name(KernelClass c) noexcept {
  switch (c) {
    case KernelClass::kScalar: return "scalar";
    case KernelClass::kRunCopy: return "run-copy";
    case KernelClass::kStrided: return "strided";
    case KernelClass::kPeriodicGap: return "periodic-gap";
  }
  return "unknown";
}

namespace kdetail {
namespace {

// The typed views the primitives move elements through. may_alias because
// callers hand us double/float/struct storage reinterpreted as the
// same-width unsigned integer; the attribute makes those accesses legal
// under strict aliasing. 16-byte elements move as a pair of 8-byte lanes.
using u8a = unsigned char __attribute__((__may_alias__));
using u16a = std::uint16_t __attribute__((__may_alias__));
using u32a = std::uint32_t __attribute__((__may_alias__));
using u64a = std::uint64_t __attribute__((__may_alias__));
struct B16 {
  u64a lo;
  u64a hi;
};

// --- portable scalar variants (always compiled; unrolled by 8 / 4) ------

template <typename U>
void gather_strided_t(const U* base, i64 step, i64 n, U* out) {
  i64 i = 0;
  const U* p = base;
  for (; i + 8 <= n; i += 8, p += 8 * step) {
    out[i + 0] = p[0];
    out[i + 1] = p[step];
    out[i + 2] = p[2 * step];
    out[i + 3] = p[3 * step];
    out[i + 4] = p[4 * step];
    out[i + 5] = p[5 * step];
    out[i + 6] = p[6 * step];
    out[i + 7] = p[7 * step];
  }
  for (; i < n; ++i) out[i] = base[i * step];
}

template <typename U>
void scatter_strided_t(U* base, i64 step, i64 n, const U* in) {
  i64 i = 0;
  U* p = base;
  for (; i + 8 <= n; i += 8, p += 8 * step) {
    p[0] = in[i + 0];
    p[step] = in[i + 1];
    p[2 * step] = in[i + 2];
    p[3 * step] = in[i + 3];
    p[4 * step] = in[i + 4];
    p[5 * step] = in[i + 5];
    p[6 * step] = in[i + 6];
    p[7 * step] = in[i + 7];
  }
  for (; i < n; ++i) base[i * step] = in[i];
}

template <typename U>
void gather_offsets_t(const U* base, const i64* off, i64 tile, i64 adv, i64 n, U* out) {
  i64 i = 0;
  while (i < n) {
    const i64 lim = tile < n - i ? tile : n - i;
    i64 j = 0;
    for (; j + 4 <= lim; j += 4) {
      out[i + j + 0] = base[off[j + 0]];
      out[i + j + 1] = base[off[j + 1]];
      out[i + j + 2] = base[off[j + 2]];
      out[i + j + 3] = base[off[j + 3]];
    }
    for (; j < lim; ++j) out[i + j] = base[off[j]];
    i += lim;
    base += adv;
  }
}

template <typename U>
void scatter_offsets_t(U* base, const i64* off, i64 tile, i64 adv, i64 n, const U* in) {
  i64 i = 0;
  while (i < n) {
    const i64 lim = tile < n - i ? tile : n - i;
    i64 j = 0;
    for (; j + 4 <= lim; j += 4) {
      base[off[j + 0]] = in[i + j + 0];
      base[off[j + 1]] = in[i + j + 1];
      base[off[j + 2]] = in[i + j + 2];
      base[off[j + 3]] = in[i + j + 3];
    }
    for (; j < lim; ++j) base[off[j]] = in[i + j];
    i += lim;
    base += adv;
  }
}

// Arbitrary element sizes (non-power-of-two structs): per-element memcpy.
void gather_strided_bytes(std::size_t esize, const std::byte* base, i64 step, i64 n,
                          std::byte* out) {
  const i64 es = static_cast<i64>(esize);
  for (i64 i = 0; i < n; ++i) std::memcpy(out + i * es, base + i * step * es, esize);
}

void scatter_strided_bytes(std::size_t esize, std::byte* base, i64 step, i64 n,
                           const std::byte* in) {
  const i64 es = static_cast<i64>(esize);
  for (i64 i = 0; i < n; ++i) std::memcpy(base + i * step * es, in + i * es, esize);
}

void gather_offsets_bytes(std::size_t esize, const std::byte* base, const i64* off, i64 tile,
                          i64 adv, i64 n, std::byte* out) {
  const i64 es = static_cast<i64>(esize);
  i64 i = 0;
  while (i < n) {
    const i64 lim = tile < n - i ? tile : n - i;
    for (i64 j = 0; j < lim; ++j) std::memcpy(out + (i + j) * es, base + off[j] * es, esize);
    i += lim;
    base += adv * es;
  }
}

void scatter_offsets_bytes(std::size_t esize, std::byte* base, const i64* off, i64 tile,
                           i64 adv, i64 n, const std::byte* in) {
  const i64 es = static_cast<i64>(esize);
  i64 i = 0;
  while (i < n) {
    const i64 lim = tile < n - i ? tile : n - i;
    for (i64 j = 0; j < lim; ++j) std::memcpy(base + off[j] * es, in + (i + j) * es, esize);
    i += lim;
    base += adv * es;
  }
}

#if CYCLICK_KERNELS_X86

bool has_avx2() noexcept {
  static const bool v = __builtin_cpu_supports("avx2");
  return v;
}

bool has_avx512() noexcept {
  static const bool v =
      __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512vl");
  return v;
}

__attribute__((target("avx2"))) void gather_strided_u64_avx2(const u64a* base, i64 step,
                                                             i64 n, u64a* out) {
  const __m256i idx = _mm256_setr_epi64x(0, step, 2 * step, 3 * step);
  i64 i = 0;
  const u64a* p = base;
  for (; i + 4 <= n; i += 4, p += 4 * step)
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_i64gather_epi64(reinterpret_cast<const long long*>(p), idx, 8));
  for (; i < n; ++i) out[i] = base[i * step];
}

__attribute__((target("avx2"))) void gather_strided_u32_avx2(const u32a* base, i64 step,
                                                             i64 n, u32a* out) {
  const __m256i idx = _mm256_setr_epi64x(0, step, 2 * step, 3 * step);
  i64 i = 0;
  const u32a* p = base;
  for (; i + 4 <= n; i += 4, p += 4 * step)
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm256_i64gather_epi32(reinterpret_cast<const int*>(p), idx, 4));
  for (; i < n; ++i) out[i] = base[i * step];
}

__attribute__((target("avx2"))) void gather_offsets_u64_avx2(const u64a* base,
                                                             const i64* off, i64 tile,
                                                             i64 adv, i64 n, u64a* out) {
  i64 i = 0;
  while (i < n) {
    const i64 lim = tile < n - i ? tile : n - i;
    i64 j = 0;
    for (; j + 4 <= lim; j += 4) {
      const __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(off + j));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + i + j),
          _mm256_i64gather_epi64(reinterpret_cast<const long long*>(base), idx, 8));
    }
    for (; j < lim; ++j) out[i + j] = base[off[j]];
    i += lim;
    base += adv;
  }
}

__attribute__((target("avx2"))) void gather_offsets_u32_avx2(const u32a* base,
                                                             const i64* off, i64 tile,
                                                             i64 adv, i64 n, u32a* out) {
  i64 i = 0;
  while (i < n) {
    const i64 lim = tile < n - i ? tile : n - i;
    i64 j = 0;
    for (; j + 4 <= lim; j += 4) {
      const __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(off + j));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i + j),
                       _mm256_i64gather_epi32(reinterpret_cast<const int*>(base), idx, 4));
    }
    for (; j < lim; ++j) out[i + j] = base[off[j]];
    i += lim;
    base += adv;
  }
}

__attribute__((target("avx512f,avx512vl"))) void scatter_strided_u64_avx512(u64a* base,
                                                                            i64 step, i64 n,
                                                                            const u64a* in) {
  const __m256i idx = _mm256_setr_epi64x(0, step, 2 * step, 3 * step);
  i64 i = 0;
  u64a* p = base;
  for (; i + 4 <= n; i += 4, p += 4 * step)
    _mm256_i64scatter_epi64(reinterpret_cast<void*>(p), idx,
                            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i)), 8);
  for (; i < n; ++i) base[i * step] = in[i];
}

__attribute__((target("avx512f,avx512vl"))) void scatter_strided_u32_avx512(u32a* base,
                                                                            i64 step, i64 n,
                                                                            const u32a* in) {
  const __m256i idx = _mm256_setr_epi64x(0, step, 2 * step, 3 * step);
  i64 i = 0;
  u32a* p = base;
  for (; i + 4 <= n; i += 4, p += 4 * step)
    _mm256_i64scatter_epi32(reinterpret_cast<void*>(p), idx,
                            _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i)), 4);
  for (; i < n; ++i) base[i * step] = in[i];
}

__attribute__((target("avx512f,avx512vl"))) void scatter_offsets_u64_avx512(
    u64a* base, const i64* off, i64 tile, i64 adv, i64 n, const u64a* in) {
  i64 i = 0;
  while (i < n) {
    const i64 lim = tile < n - i ? tile : n - i;
    i64 j = 0;
    for (; j + 4 <= lim; j += 4) {
      const __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(off + j));
      _mm256_i64scatter_epi64(
          reinterpret_cast<void*>(base), idx,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i + j)), 8);
    }
    for (; j < lim; ++j) base[off[j]] = in[i + j];
    i += lim;
    base += adv;
  }
}

__attribute__((target("avx512f,avx512vl"))) void scatter_offsets_u32_avx512(
    u32a* base, const i64* off, i64 tile, i64 adv, i64 n, const u32a* in) {
  i64 i = 0;
  while (i < n) {
    const i64 lim = tile < n - i ? tile : n - i;
    i64 j = 0;
    for (; j + 4 <= lim; j += 4) {
      const __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(off + j));
      _mm256_i64scatter_epi32(reinterpret_cast<void*>(base), idx,
                              _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i + j)),
                              4);
    }
    for (; j < lim; ++j) base[off[j]] = in[i + j];
    i += lim;
    base += adv;
  }
}

#elif CYCLICK_KERNELS_NEON

// NEON has no hardware gather/scatter; the win over plain scalar code is
// batching four 32-bit lane loads into one 128-bit store (and vice versa),
// which keeps the store port fed. 64-bit elements gain nothing over the
// unrolled scalar template, so only the 32-bit variants are specialized.
void gather_strided_u32_neon(const u32a* base, i64 step, i64 n, u32a* out) {
  i64 i = 0;
  const u32a* p = base;
  for (; i + 4 <= n; i += 4, p += 4 * step) {
    uint32x4_t v = vdupq_n_u32(p[0]);
    v = vsetq_lane_u32(p[step], v, 1);
    v = vsetq_lane_u32(p[2 * step], v, 2);
    v = vsetq_lane_u32(p[3 * step], v, 3);
    vst1q_u32(reinterpret_cast<std::uint32_t*>(out + i), v);
  }
  for (; i < n; ++i) out[i] = base[i * step];
}

void gather_offsets_u32_neon(const u32a* base, const i64* off, i64 tile, i64 adv, i64 n,
                             u32a* out) {
  i64 i = 0;
  while (i < n) {
    const i64 lim = tile < n - i ? tile : n - i;
    i64 j = 0;
    for (; j + 4 <= lim; j += 4) {
      uint32x4_t v = vdupq_n_u32(base[off[j + 0]]);
      v = vsetq_lane_u32(base[off[j + 1]], v, 1);
      v = vsetq_lane_u32(base[off[j + 2]], v, 2);
      v = vsetq_lane_u32(base[off[j + 3]], v, 3);
      vst1q_u32(reinterpret_cast<std::uint32_t*>(out + i + j), v);
    }
    for (; j < lim; ++j) out[i + j] = base[off[j]];
    i += lim;
    base += adv;
  }
}

#endif  // CYCLICK_KERNELS_X86 / CYCLICK_KERNELS_NEON

}  // namespace

void gather_strided(std::size_t esize, const void* base, i64 step, i64 count, void* out) {
  if (count <= 0) return;
  switch (esize) {
    case 1:
      gather_strided_t(static_cast<const u8a*>(base), step, count, static_cast<u8a*>(out));
      return;
    case 2:
      gather_strided_t(static_cast<const u16a*>(base), step, count,
                       static_cast<u16a*>(out));
      return;
    case 4:
#if CYCLICK_KERNELS_X86
      if (has_avx2()) {
        gather_strided_u32_avx2(static_cast<const u32a*>(base), step, count,
                                static_cast<u32a*>(out));
        return;
      }
#elif CYCLICK_KERNELS_NEON
      gather_strided_u32_neon(static_cast<const u32a*>(base), step, count,
                              static_cast<u32a*>(out));
      return;
#endif
      gather_strided_t(static_cast<const u32a*>(base), step, count,
                       static_cast<u32a*>(out));
      return;
    case 8:
#if CYCLICK_KERNELS_X86
      if (has_avx2()) {
        gather_strided_u64_avx2(static_cast<const u64a*>(base), step, count,
                                static_cast<u64a*>(out));
        return;
      }
#endif
      gather_strided_t(static_cast<const u64a*>(base), step, count,
                       static_cast<u64a*>(out));
      return;
    case 16:
      gather_strided_t(static_cast<const B16*>(base), step, count, static_cast<B16*>(out));
      return;
    default:
      gather_strided_bytes(esize, static_cast<const std::byte*>(base), step, count,
                           static_cast<std::byte*>(out));
      return;
  }
}

void scatter_strided(std::size_t esize, void* base, i64 step, i64 count, const void* in) {
  if (count <= 0) return;
  switch (esize) {
    case 1:
      scatter_strided_t(static_cast<u8a*>(base), step, count, static_cast<const u8a*>(in));
      return;
    case 2:
      scatter_strided_t(static_cast<u16a*>(base), step, count,
                        static_cast<const u16a*>(in));
      return;
    case 4:
#if CYCLICK_KERNELS_X86
      if (has_avx512()) {
        scatter_strided_u32_avx512(static_cast<u32a*>(base), step, count,
                                   static_cast<const u32a*>(in));
        return;
      }
#endif
      scatter_strided_t(static_cast<u32a*>(base), step, count,
                        static_cast<const u32a*>(in));
      return;
    case 8:
#if CYCLICK_KERNELS_X86
      if (has_avx512()) {
        scatter_strided_u64_avx512(static_cast<u64a*>(base), step, count,
                                   static_cast<const u64a*>(in));
        return;
      }
#endif
      scatter_strided_t(static_cast<u64a*>(base), step, count,
                        static_cast<const u64a*>(in));
      return;
    case 16:
      scatter_strided_t(static_cast<B16*>(base), step, count, static_cast<const B16*>(in));
      return;
    default:
      scatter_strided_bytes(esize, static_cast<std::byte*>(base), step, count,
                            static_cast<const std::byte*>(in));
      return;
  }
}

void gather_offsets(std::size_t esize, const void* base, const i64* off, i64 tile,
                    i64 advance, i64 count, void* out) {
  if (count <= 0) return;
  switch (esize) {
    case 1:
      gather_offsets_t(static_cast<const u8a*>(base), off, tile, advance, count,
                       static_cast<u8a*>(out));
      return;
    case 2:
      gather_offsets_t(static_cast<const u16a*>(base), off, tile, advance, count,
                       static_cast<u16a*>(out));
      return;
    case 4:
#if CYCLICK_KERNELS_X86
      if (has_avx2()) {
        gather_offsets_u32_avx2(static_cast<const u32a*>(base), off, tile, advance, count,
                                static_cast<u32a*>(out));
        return;
      }
#elif CYCLICK_KERNELS_NEON
      gather_offsets_u32_neon(static_cast<const u32a*>(base), off, tile, advance, count,
                              static_cast<u32a*>(out));
      return;
#endif
      gather_offsets_t(static_cast<const u32a*>(base), off, tile, advance, count,
                       static_cast<u32a*>(out));
      return;
    case 8:
#if CYCLICK_KERNELS_X86
      if (has_avx2()) {
        gather_offsets_u64_avx2(static_cast<const u64a*>(base), off, tile, advance, count,
                                static_cast<u64a*>(out));
        return;
      }
#endif
      gather_offsets_t(static_cast<const u64a*>(base), off, tile, advance, count,
                       static_cast<u64a*>(out));
      return;
    case 16:
      gather_offsets_t(static_cast<const B16*>(base), off, tile, advance, count,
                       static_cast<B16*>(out));
      return;
    default:
      gather_offsets_bytes(esize, static_cast<const std::byte*>(base), off, tile, advance,
                           count, static_cast<std::byte*>(out));
      return;
  }
}

void scatter_offsets(std::size_t esize, void* base, const i64* off, i64 tile, i64 advance,
                     i64 count, const void* in) {
  if (count <= 0) return;
  switch (esize) {
    case 1:
      scatter_offsets_t(static_cast<u8a*>(base), off, tile, advance, count,
                        static_cast<const u8a*>(in));
      return;
    case 2:
      scatter_offsets_t(static_cast<u16a*>(base), off, tile, advance, count,
                        static_cast<const u16a*>(in));
      return;
    case 4:
#if CYCLICK_KERNELS_X86
      if (has_avx512()) {
        scatter_offsets_u32_avx512(static_cast<u32a*>(base), off, tile, advance, count,
                                   static_cast<const u32a*>(in));
        return;
      }
#endif
      scatter_offsets_t(static_cast<u32a*>(base), off, tile, advance, count,
                        static_cast<const u32a*>(in));
      return;
    case 8:
#if CYCLICK_KERNELS_X86
      if (has_avx512()) {
        scatter_offsets_u64_avx512(static_cast<u64a*>(base), off, tile, advance, count,
                                   static_cast<const u64a*>(in));
        return;
      }
#endif
      scatter_offsets_t(static_cast<u64a*>(base), off, tile, advance, count,
                        static_cast<const u64a*>(in));
      return;
    case 16:
      scatter_offsets_t(static_cast<B16*>(base), off, tile, advance, count,
                        static_cast<const B16*>(in));
      return;
    default:
      scatter_offsets_bytes(esize, static_cast<std::byte*>(base), off, tile, advance, count,
                            static_cast<const std::byte*>(in));
      return;
  }
}

bool simd_active() noexcept {
#if CYCLICK_KERNELS_X86
  return has_avx2();
#elif CYCLICK_KERNELS_NEON
  return true;
#else
  return false;
#endif
}

}  // namespace kdetail

namespace {

// One obs counter per kernel class (same textual-call-site discipline as
// the engine's strategy counters).
void count_kernel_class(KernelClass c, i64 proc) {
  switch (c) {
    case KernelClass::kScalar:
      CYCLICK_COUNT("kernel.hit.scalar", proc, 1);
      break;
    case KernelClass::kRunCopy:
      CYCLICK_COUNT("kernel.hit.run_copy", proc, 1);
      break;
    case KernelClass::kStrided:
      CYCLICK_COUNT("kernel.hit.strided", proc, 1);
      break;
    case KernelClass::kPeriodicGap:
      CYCLICK_COUNT("kernel.hit.periodic_gap", proc, 1);
      break;
  }
}

// Fetch (or build and cache) the compiled pattern for the nav-table cycle
// starting at offset q0. The cache lives on the EngineTables, so every
// rank/phase sharing the (p, k, |s|) tables shares at most k compiled
// patterns; next_offset is a permutation, so the cycle through q0 is
// well-defined and its local/global offsets ascend strictly.
std::shared_ptr<const PeriodicPattern> periodic_pattern_for(
    const std::shared_ptr<const EngineTables>& tp, i64 q0) {
  const EngineTables& t = *tp;
  std::scoped_lock lock(t.kernel_mu);
  if (t.kernel_patterns.empty())
    t.kernel_patterns.resize(static_cast<std::size_t>(t.block));
  auto& slot = t.kernel_patterns[static_cast<std::size_t>(q0)];
  if (slot) {
    CYCLICK_COUNT("kernel.pattern_cache.hits", 0, 1);
    return slot;
  }
  CYCLICK_SPAN("kernel_compile", 0);
  CYCLICK_COUNT("kernel.compiles", 0, 1);
  auto pat = std::make_shared<PeriodicPattern>();
  const i64* delta = t.offsets.delta.data();
  const i64* dglobal = t.dglobal.data();
  const i64* next = t.offsets.next_offset.data();
  i64 q = q0;
  i64 lo = 0;
  i64 go = 0;
  do {
    pat->local_off.push_back(lo);
    pat->global_off.push_back(go);
    lo += delta[q];
    go += dglobal[q];
    q = next[q];
  } while (q != q0);
  pat->period = static_cast<i64>(pat->local_off.size());
  pat->local_advance = lo;
  pat->global_advance = go;
  const i64 reps = std::max<i64>(1, kKernelTileTarget / pat->period);
  pat->tile_len = reps * pat->period;
  pat->tile_advance = reps * pat->local_advance;
  pat->tile_off.reserve(static_cast<std::size_t>(pat->tile_len));
  for (i64 r = 0; r < reps; ++r)
    for (i64 j = 0; j < pat->period; ++j)
      pat->tile_off.push_back(pat->local_off[static_cast<std::size_t>(j)] +
                              r * pat->local_advance);
  slot = std::move(pat);
  return slot;
}

}  // namespace

KernelPlan compile_kernel(const SectionPlan& plan) {
  KernelPlan kp;
  if (plan.empty()) return kp;
  const i64 stride = plan.stride();
  const i64 mag = stride < 0 ? -stride : stride;
  const bool desc = stride < 0;
  // Kernels replay in ascending local-address order regardless of the
  // section's direction (every consumer below is order-insensitive or
  // guards on stride sign).
  const i64 af_g = desc ? plan.last_global() : plan.first_global();
  const i64 al_g = desc ? plan.first_global() : plan.last_global();
  const i64 af_l = desc ? plan.last_local() : plan.first_local();
  const i64 al_l = desc ? plan.first_local() : plan.last_local();
  switch (plan.strategy()) {
    case AddressStrategy::kTrivialLocal:
      kp.first_local_ = af_l;
      if (mag == 1) {
        kp.cls_ = KernelClass::kRunCopy;
        kp.count_ = al_l - af_l + 1;
      } else {
        kp.cls_ = KernelClass::kStrided;
        kp.step_ = mag;
        kp.count_ = (al_l - af_l) / mag + 1;
      }
      break;
    case AddressStrategy::kDenseRuns:
      // |s| == 1: the owned local span between the endpoints is fully
      // contiguous (packed storage drops the inter-block holes).
      kp.cls_ = KernelClass::kRunCopy;
      kp.first_local_ = af_l;
      kp.count_ = al_l - af_l + 1;
      break;
    default: {
      const std::shared_ptr<const EngineTables>& tp = plan.tables();
      CYCLICK_ASSERT(tp != nullptr);
      if (tp->degenerate) {
        kp.cls_ = KernelClass::kStrided;
        kp.first_local_ = af_l;
        kp.step_ = tp->fixed_dlocal;
        kp.count_ = (al_g - af_g) / tp->fixed_dglobal + 1;
        break;
      }
      auto pat = periodic_pattern_for(tp, plan.dist().block_offset(af_g));
      // Count in O(log k): whole periods advance the global index by
      // global_advance; the remainder's rank inside the period comes from
      // the ascending global_off vector.
      const i64 span = al_g - af_g;
      const i64 full = span / pat->global_advance;
      const i64 rem = span % pat->global_advance;
      const auto it = std::lower_bound(pat->global_off.begin(), pat->global_off.end(), rem);
      CYCLICK_ASSERT(it != pat->global_off.end() && *it == rem);
      kp.cls_ = KernelClass::kPeriodicGap;
      kp.first_local_ = af_l;
      kp.count_ = full * pat->period + (it - pat->global_off.begin()) + 1;
      kp.pattern_ = std::move(pat);
      break;
    }
  }
  count_kernel_class(kp.cls_, plan.proc());
  return kp;
}

KernelClass kernel_class_for(const BlockCyclic& dist, i64 stride) noexcept {
  const i64 mag = stride < 0 ? -stride : stride;
  if (mag == 0) return KernelClass::kScalar;
  switch (AddressEngine::classify(dist, stride)) {
    case AddressStrategy::kTrivialLocal:
      return mag == 1 ? KernelClass::kRunCopy : KernelClass::kStrided;
    case AddressStrategy::kDenseRuns:
      return KernelClass::kRunCopy;
    case AddressStrategy::kPureCyclic:
    case AddressStrategy::kFixedStep:
      return KernelClass::kStrided;
    case AddressStrategy::kHiranandani:
    case AddressStrategy::kGeneralLattice:
      return KernelClass::kPeriodicGap;
  }
  return KernelClass::kScalar;
}

}  // namespace cyclick
