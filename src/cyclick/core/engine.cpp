#include "cyclick/core/engine.hpp"

#include <chrono>
#include <limits>

#include "cyclick/baselines/hiranandani.hpp"
#include "cyclick/obs/metrics.hpp"
#include "cyclick/support/math.hpp"

namespace cyclick {

const char* address_strategy_name(AddressStrategy s) noexcept {
  switch (s) {
    case AddressStrategy::kTrivialLocal: return "trivial-local";
    case AddressStrategy::kDenseRuns: return "dense-runs";
    case AddressStrategy::kPureCyclic: return "pure-cyclic";
    case AddressStrategy::kFixedStep: return "fixed-step";
    case AddressStrategy::kHiranandani: return "hiranandani";
    case AddressStrategy::kGeneralLattice: return "general-lattice";
  }
  return "unknown";
}

namespace {

// One obs counter per strategy class. CYCLICK_COUNT caches its registry
// lookup in a function-local static per call site, so each class needs its
// own textual call — hence the switch rather than a name-composing helper.
void count_strategy(AddressStrategy s, i64 proc) {
  switch (s) {
    case AddressStrategy::kTrivialLocal:
      CYCLICK_COUNT("engine.strategy.trivial_local", proc, 1);
      break;
    case AddressStrategy::kDenseRuns:
      CYCLICK_COUNT("engine.strategy.dense_runs", proc, 1);
      break;
    case AddressStrategy::kPureCyclic:
      CYCLICK_COUNT("engine.strategy.pure_cyclic", proc, 1);
      break;
    case AddressStrategy::kFixedStep:
      CYCLICK_COUNT("engine.strategy.fixed_step", proc, 1);
      break;
    case AddressStrategy::kHiranandani:
      CYCLICK_COUNT("engine.strategy.hiranandani", proc, 1);
      break;
    case AddressStrategy::kGeneralLattice:
      CYCLICK_COUNT("engine.strategy.general_lattice", proc, 1);
      break;
  }
}

// Measure whether the ICS'94 O(k) pattern construction actually beats the
// signed Figure-5 path for this (p, k, |s|) on the machine at hand. Both
// constructions are O(k), so the duel costs a few microseconds and runs
// once per table build (the result is cached with the tables). Calibrating
// instead of assuming keeps the classifier's promise that no specialized
// path is ever slower than the general one.
bool ics94_pattern_wins(const BlockCyclic& dist, i64 mag) {
  using clock = std::chrono::steady_clock;
  const auto best_of_3 = [](auto&& fn) {
    auto best = std::numeric_limits<clock::duration::rep>::max();
    for (int round = 0; round < 3; ++round) {
      const auto t0 = clock::now();
      fn();
      const auto t1 = clock::now();
      best = std::min(best, (t1 - t0).count());
    }
    return best;
  };
  // Warm both paths once so first-touch allocator effects don't bias round 1.
  (void)hiranandani_access_pattern(dist, 0, mag, 0);
  (void)compute_access_pattern_signed(dist, 0, mag, 0);
  const auto ics94 = best_of_3([&] { (void)hiranandani_access_pattern(dist, 0, mag, 0); });
  const auto general = best_of_3([&] { (void)compute_access_pattern_signed(dist, 0, mag, 0); });
  return ics94 < general;
}

// Proc-independent table construction for one (p, k, |s|) problem: the
// full Section-6.2 offset tables plus the matching global-index gaps and
// the inverted offset map for descending walks.
std::shared_ptr<const EngineTables> build_tables(const BlockCyclic& dist, i64 mag) {
  auto t = std::make_shared<EngineTables>();
  const i64 k = dist.block_size();
  const i64 pk = dist.row_length();
  t->procs = dist.procs();
  t->block = k;
  t->stride = mag;
  t->strategy = AddressEngine::classify(dist, mag);
  t->offsets = compute_full_offset_tables(dist, mag);
  t->dglobal.assign(static_cast<std::size_t>(k), 0);
  t->prev_offset.assign(static_cast<std::size_t>(k), -1);

  const i64 d = gcd_i64(mag, pk);
  if (d >= k) {
    // Degenerate lattice: every populated offset repeats in place with a
    // fixed global step of lcm(|s|, pk) and local step of (|s|/d)*k.
    t->degenerate = true;
    t->fixed_dglobal = (pk / d) * mag;
    t->fixed_dlocal = k * (mag / d);
    for (i64 q = 0; q < k; ++q) {
      t->dglobal[static_cast<std::size_t>(q)] = t->fixed_dglobal;
      t->prev_offset[static_cast<std::size_t>(q)] = q;  // next is the identity
    }
    return t;
  }

  const auto basis = select_rl_basis(dist.procs(), k, mag);
  CYCLICK_ASSERT(basis.has_value());  // d < k guarantees the basis exists
  const i64 br = basis->r.v.b;
  const i64 bl = basis->l.v.b;
  const i64 vr = basis->r.index * mag;
  const i64 vl = -basis->l.index * mag;  // l.index < 0, so this is positive
  for (i64 q = 0; q < k; ++q) {
    i64 dg;
    if (q + br < k) {
      dg = vr;            // Equation 1
    } else if (q - bl >= 0) {
      dg = vl;            // Equation 2
    } else {
      dg = vl + vr;       // Equation 3
    }
    t->dglobal[static_cast<std::size_t>(q)] = dg;
  }
  // next_offset is a bijection on [0, k) (each residue class mod d is
  // cyclically permuted), so inverting it slot by slot cannot clobber.
  for (i64 q = 0; q < k; ++q) {
    const i64 nq = t->offsets.next_offset[static_cast<std::size_t>(q)];
    t->prev_offset[static_cast<std::size_t>(nq)] = q;
  }
  if (t->strategy == AddressStrategy::kHiranandani)
    t->ics94_pattern_wins = ics94_pattern_wins(dist, mag);
  return t;
}

}  // namespace

AccessPattern SectionPlan::make_pattern() const {
  // The section's original lower bound is asc_lo_ for ascending traversals
  // and asc_hi_ for descending ones (ascending() swaps the endpoints).
  const i64 anchor = stride_ < 0 ? asc_hi_ : asc_lo_;
  return AddressEngine::global().pattern(dist_, anchor, stride_, proc_);
}

OffsetTables SectionPlan::offset_tables() const {
  CYCLICK_REQUIRE(!empty_, "offset tables need a nonempty plan");
  OffsetTables t = tables_->offsets;
  // Phase the proc-independent tables at this plan's ascending start (the
  // Figure 8(d) node code walks local addresses upward).
  t.start_offset = dist_.block_offset(af_global_);
  return t;
}

AddressEngine::AddressEngine(std::size_t table_capacity, std::size_t table_shards)
    : cache_(table_capacity, table_shards) {}

AddressStrategy AddressEngine::classify(const BlockCyclic& dist, i64 stride) noexcept {
  const i64 mag = stride > 0 ? stride : -stride;
  if (dist.procs() == 1) return AddressStrategy::kTrivialLocal;
  if (mag == 1) return AddressStrategy::kDenseRuns;
  if (dist.block_size() == 1) return AddressStrategy::kPureCyclic;
  if (gcd_i64(mag, dist.row_length()) >= dist.block_size()) return AddressStrategy::kFixedStep;
  if (floor_mod(mag, dist.row_length()) < dist.block_size()) return AddressStrategy::kHiranandani;
  return AddressStrategy::kGeneralLattice;
}

std::shared_ptr<const EngineTables> AddressEngine::tables(const BlockCyclic& dist,
                                                          i64 stride) const {
  CYCLICK_REQUIRE(stride != 0, "engine tables require a nonzero stride");
  const i64 mag = stride > 0 ? stride : -stride;
  const TableKey key{dist.procs(), dist.block_size(), mag};
  if (auto hit = cache_.find(key)) {
    CYCLICK_COUNT("engine.tables.hits", 0, 1);
    return hit;
  }
  CYCLICK_COUNT("engine.tables.misses", 0, 1);
  auto built = build_tables(dist, mag);
  // Keep-existing insert: a racing builder of the same key converges on one
  // canonical table object (SectionPlan identity tests rely on this).
  bool evicted = false;
  auto canonical = cache_.insert(key, std::move(built), &evicted);
  if (evicted) CYCLICK_COUNT("engine.tables.evictions", 0, 1);
  return canonical;
}

SectionPlan AddressEngine::plan(const BlockCyclic& dist, const RegularSection& sec,
                                i64 proc) const {
  CYCLICK_REQUIRE(proc >= 0 && proc < dist.procs(), "processor id out of range");
  SectionPlan pl;
  pl.dist_ = dist;
  pl.proc_ = proc;
  pl.stride_ = sec.stride;
  pl.strategy_ = classify(dist, sec.stride);
  count_strategy(pl.strategy_, proc);
  CYCLICK_COUNT("engine.plans", proc, 1);
  if (sec.empty()) return pl;

  const RegularSection asc = sec.ascending();
  pl.asc_lo_ = asc.lower;
  pl.asc_hi_ = asc.upper;
  pl.tables_ = tables(dist, asc.stride);

  const i64 k = dist.block_size();
  const i64 pk = dist.row_length();
  switch (pl.strategy_) {
    case AddressStrategy::kTrivialLocal:
      // One processor owns everything and packing is the identity, so the
      // endpoints are the section's own (local == global, even below zero).
      pl.af_global_ = pl.af_local_ = asc.lower;
      pl.al_global_ = pl.al_local_ = asc.upper;
      pl.empty_ = false;
      return pl;
    case AddressStrategy::kDenseRuns: {
      // |s| == 1: first owned element at or above asc.lower and last owned
      // element at or below asc.upper, in O(1) block arithmetic.
      const i64 blk_lo = k * proc;
      const i64 lo_off = floor_mod(asc.lower, pk);
      i64 first = asc.lower;
      if (lo_off < blk_lo) {
        first += blk_lo - lo_off;
      } else if (lo_off >= blk_lo + k) {
        first += (pk - lo_off) + blk_lo;
      }
      const i64 hi_off = floor_mod(asc.upper, pk);
      i64 last = asc.upper;
      if (hi_off >= blk_lo + k) {
        last -= hi_off - (blk_lo + k - 1);
      } else if (hi_off < blk_lo) {
        last -= hi_off + pk - (blk_lo + k - 1);
      }
      if (first > last) return pl;  // the section misses this block row
      pl.af_global_ = first;
      pl.af_local_ = dist.local_index(first);
      pl.al_global_ = last;
      pl.al_local_ = dist.local_index(last);
      pl.empty_ = false;
      return pl;
    }
    default: {
      const auto si = find_start(dist, asc.lower, asc.stride, proc);
      if (!si || si->start_global > asc.upper) return pl;
      const auto last = find_last(dist, asc, proc);
      CYCLICK_ASSERT(last.has_value());  // a start inside bounds implies a last
      pl.af_global_ = si->start_global;
      pl.af_local_ = dist.local_index(si->start_global);
      pl.al_global_ = *last;
      pl.al_local_ = dist.local_index(*last);
      pl.empty_ = false;
      return pl;
    }
  }
}

AccessPattern AddressEngine::pattern(const BlockCyclic& dist, i64 lower, i64 stride,
                                     i64 proc) const {
  if (stride > 0 && hiranandani_applicable(dist, stride) &&
      classify(dist, stride) == AddressStrategy::kHiranandani &&
      tables(dist, stride)->ics94_pattern_wins) {
    // The ICS'94 O(k) construction — used only where build-time calibration
    // measured it faster than the general signed path, so the specialized
    // class can never regress below general-lattice.
    CYCLICK_COUNT("engine.pattern.hiranandani", proc, 1);
    return hiranandani_access_pattern(dist, lower, stride, proc);
  }
  CYCLICK_COUNT("engine.pattern.general", proc, 1);
  return compute_access_pattern_signed(dist, lower, stride, proc);
}

LocalAccessIterator AddressEngine::stream(const BlockCyclic& dist, i64 lower, i64 stride,
                                          i64 proc) const {
  return LocalAccessIterator(dist, lower, stride, proc);
}

AddressEngine::CacheStats AddressEngine::cache_stats() const {
  const auto st = cache_.stats();
  return CacheStats{st.hits, st.misses, st.evictions, st.size};
}

void AddressEngine::clear_cache() const { cache_.clear(); }

AddressEngine& AddressEngine::global() {
  static AddressEngine engine;
  return engine;
}

}  // namespace cyclick
