// Access sequences for arrays with non-identity affine alignments.
//
// HPF aligns A(i) with template cell a*i + b; the template, not the array,
// is distributed. The paper (Section 2, citing Chatterjee et al.) reduces
// the aligned problem to two applications of the identity-alignment
// machinery:
//
//   application 1 (the *layout* problem): the template cells occupied by
//     any element of A form the regular section (b : a(n-1)+b : a); a
//     processor stores its share packed in increasing-cell order, so the
//     packed local address of a cell is its *rank* among the processor's
//     layout cells;
//   application 2 (the *section* problem): the cells touched by A(l:u:s)
//     form the section (al+b : au+b : as); enumerating them on a processor
//     is the identity-alignment access problem for stride a*s.
//
// The packed-memory gap table is then the rank difference between
// consecutive section accesses. Ranks are evaluated in O(k) per query from
// per-offset closed forms, giving an O(k^2) table build — acceptable for a
// runtime (the identity fast path, which the benchmarks exercise, stays
// O(k)).
#pragma once

#include <vector>

#include "cyclick/core/access_pattern.hpp"
#include "cyclick/hpf/alignment.hpp"
#include "cyclick/hpf/distribution.hpp"
#include "cyclick/hpf/section.hpp"

namespace cyclick {

/// Access pattern of an aligned array's section in *packed* local storage
/// (one slot per array element owned, no holes for skipped template cells).
struct AlignedAccessPattern {
  i64 proc = 0;
  i64 start_array_index = -1;  ///< array index (not template cell) of first access
  i64 start_packed_local = -1; ///< packed local address of first access
  i64 length = 0;
  std::vector<i64> gaps;       ///< gaps in packed local addresses

  [[nodiscard]] bool empty() const noexcept { return length == 0; }
};

/// Rank oracle for application 1: packed local addresses of template cells
/// on one processor. Construction is O(k); each rank query is O(k).
class PackedLayout {
 public:
  /// Layout of an n-element array aligned by `align` to a template
  /// distributed by `dist`, on processor `proc`.
  PackedLayout(const BlockCyclic& dist, const AffineAlignment& align, i64 n, i64 proc);

  /// Number of array elements stored on this processor.
  [[nodiscard]] i64 size() const noexcept { return size_; }

  /// Packed local address of template cell `cell` (must hold an array
  /// element owned by this processor): the number of owned layout cells
  /// strictly below `cell`.
  [[nodiscard]] i64 rank(i64 cell) const;

  /// rank() against the idealized *unbounded* layout (the array extended
  /// past n with the same alignment). Coincides with rank() for cells
  /// within the layout extent; used to build the periodic gap table, whose
  /// wrap-around entries may reference cells beyond the array's end.
  [[nodiscard]] i64 rank_unbounded(i64 cell) const;

 private:
  struct OffsetClass {
    i64 first_cell;  ///< smallest layout cell at this offset
    i64 count;       ///< how many layout cells at this offset (bounded by n)
  };
  std::vector<OffsetClass> classes_;
  i64 period_ = 0;  ///< cell distance between consecutive layout cells at one offset
  i64 size_ = 0;
};

/// Two-application solver: the packed-storage access pattern of section
/// `sec` (in array index space) of an n-element array aligned by `align`
/// onto a template distributed by `dist`. The section stride may be
/// negative (descending traversal).
AlignedAccessPattern compute_aligned_pattern(const BlockCyclic& dist,
                                             const AffineAlignment& align, i64 n,
                                             const RegularSection& sec, i64 proc);

}  // namespace cyclick
