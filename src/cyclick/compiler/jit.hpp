// Jit tier driver: compiles DSL statements into bytecode programs
// (compiler/bytecode.hpp) keyed in the process-wide ProgramCache, and
// executes them with a computed-goto dispatch loop over per-rank lane
// vectors backed by the PR-4 pattern kernels.
//
// The engine is deliberately conservative: any statement shape it cannot
// prove equivalent to the interpreter (multidimensional arrays, non-identity
// alignments, mismatched processor arrangements, invalid sections, ...)
// makes try_* return false and the caller falls back to the tree walker, so
// the bytecode tier never changes results — only the number of passes taken
// to produce them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cyclick/compiler/bytecode.hpp"
#include "cyclick/compiler/interp.hpp"

namespace cyclick::dsl {

class JitEngine {
 public:
  explicit JitEngine(Machine& machine) : m_(machine) {}

  /// Compile (or fetch from cache) and execute a statement under the
  /// bytecode tier. Returns false — with no side effects — when the
  /// statement is not bytecode-compilable; runtime errors (division by
  /// zero, unknown scalars) throw the same dsl_error the interpreter would.
  bool try_assign(const AssignStmt& s);
  bool try_where(const WhereStmt& s);
  bool try_scalar_assign(const ScalarAssignStmt& s);

  /// Disassembly of the program `target = value` compiles to, or "" when
  /// the statement falls back to the interpreter tier.
  std::string listing_for(const SectionRef& target, const Expr& value, int line);

 private:
  std::shared_ptr<const bc::CompiledProgram> program_for(
      const std::string& key, const AssignStmt* assign, const WhereStmt* where,
      const ScalarAssignStmt* scalar_assign);
  void execute(const bc::CompiledProgram& p);

  Machine& m_;
  std::vector<std::vector<double>> arena_;  // per-rank lane buffers, reused
};

}  // namespace cyclick::dsl
