// Bytecode form of compiled DSL array statements: the portable program
// representation the jit tier lowers statements into, plus the process-wide
// statement-shape-keyed program cache.
//
// A compiled program is a small register machine split into three phases:
//
//   prelude  scalar registers — variable lookups, reductions over bare
//            sections, scalar arithmetic. Runs once, on the control thread,
//            before any array data moves (loop-invariant scalars are folded
//            into sreg_init at compile time and never re-evaluated).
//   loads    operand communication — each remote operand lands in a
//            destination-shaped scratch array through a CommPlan resolved at
//            compile time (shared with the interpreter's PlanCache).
//   lanes    the per-rank dense phase — every rank materializes its owned
//            elements of the statement section as contiguous "lane" vectors
//            (zero-copy aliases of the local span when the destination
//            kernel class is a single dense run) and applies straight-line
//            arithmetic, ending in a store / masked store / reduction fold.
//
// Fused superinstructions (kMulAddVSV, kAddDivVVS, kMulAddVSS, ...) collapse
// the interpreter's separate transform+combine passes into one loop without
// changing the per-element operation sequence, so results stay bit-identical
// with the interpreter tier.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cyclick/core/engine.hpp"
#include "cyclick/core/kernels.hpp"
#include "cyclick/runtime/redistribute.hpp"
#include "cyclick/support/types.hpp"

namespace cyclick::dsl {
// Narrow register / operand-index types used by the bytecode tier.
using u8 = std::uint8_t;
using i32 = std::int32_t;
}  // namespace cyclick::dsl

namespace cyclick::dsl::bc {

enum class Op : u8 {
  // scalar prelude
  kScalarVar,   ///< s[a] = value of scalar variable operands[aux]
  kReduceSec,   ///< s[a] = reduce_section over operands[aux]; b = Reduce code
  kScalarNeg,   ///< s[a] = -s[a]
  kScalarBin,   ///< s[a] = s[b] <x> s[c]
  // operand loads
  kLoadSection,  ///< scratch[a] = plan copy of operands[aux]
  kLoadShift,    ///< scratch[a] = plan copy of cshift/eoshift(operands[aux])
  // lane phase
  kLaneDirect,   ///< l[a] = owned lanes of operands[aux] (alias when dense)
  kLaneScratch,  ///< l[a] = owned lanes of scratch[b]   (alias when dense)
  kLaneRamp,     ///< l[a] = forall index ramp operands[aux]
  kLaneNeg,      ///< l[a] = -l[a]
  kAddVV,        ///< l[a] = l[a] + l[b]
  kSubVV,        ///< l[a] = l[a] - l[b]
  kMulVV,        ///< l[a] = l[a] * l[b]
  kDivVV,        ///< l[a] = l[a] / l[b]   (throws on zero element)
  kAddVS,        ///< l[a] = l[a] + s[b]
  kSubVS,        ///< l[a] = l[a] - s[b]
  kMulVS,        ///< l[a] = l[a] * s[b]
  kDivVS,        ///< l[a] = l[a] / s[b]   (throws when s[b] == 0)
  kSubSV,        ///< l[a] = s[b] - l[a]
  kDivSV,        ///< l[a] = s[b] / l[a]   (throws on zero element)
  // fused superinstructions (one pass instead of two or three)
  kMulAddVSV,  ///< l[a] = l[a]*s[b] + l[c]        (copy+axpy shape)
  kMulSubVSV,  ///< l[a] = l[a]*s[b] - l[c]
  kAddDivVVS,  ///< l[a] = (l[a] + l[c]) / s[b]    (stencil average shape)
  kMulAddVSS,  ///< l[a] = l[a]*s[b] + s[c]        (fill+transform shape)
  // terminals
  kStoreLanes,   ///< dst owned lanes = l[a]
  kStoreMasked,  ///< dst lanes where mask holds; a=value b=maskL c=maskR
  kReduceLanes,  ///< s[a] = rank-ordered fold of l[b]; c = Reduce code
  kFillDst,      ///< fill_section(dst, dsec, s[a])        (control phase)
  kCopyDst,      ///< copy_section(operands[aux] -> dst)   (control phase)
};

[[nodiscard]] const char* op_name(Op op) noexcept;

/// Reduction codes (Instr::b for kReduceSec, Instr::c for kReduceLanes).
enum Reduce : u8 { kRedSum = 0, kRedMin = 1, kRedMax = 2 };

/// Relational codes for kStoreMasked (Instr::aux).
enum Relop : i32 { kLT = 0, kGT, kLE, kGE, kEQ, kNE };

/// kStoreMasked flag bits: which inputs are scalar registers (else lanes).
inline constexpr u8 kMaskValScalar = 1;
inline constexpr u8 kMaskLhsScalar = 2;
inline constexpr u8 kMaskRhsScalar = 4;

/// Resolved operand: everything a load or lane-source instruction needs,
/// including the communication plan built (and cached process-wide) at
/// compile time. Plans depend only on array mappings, which the program
/// cache key pins, so a cached program's plans stay valid.
struct Operand {
  std::string array;              // source array / scalar-variable name
  RegularSection sec{0, 0, 1};    // source section
  i64 shift = 0;                  // kLoadShift
  bool circular = true;           // kLoadShift: cshift vs eoshift
  double boundary = 0.0;          // kLoadShift: eoshift boundary value
  i64 ramp_lower = 0;             // kLaneRamp
  i64 ramp_stride = 1;            // kLaneRamp
  std::shared_ptr<const CommPlan> plan;  // kLoadSection / kLoadShift
};

struct Instr {
  Op op = Op::kStoreLanes;
  u8 a = 0;       // destination register
  u8 b = 0;       // source register / scratch slot / reduce code
  u8 c = 0;       // second source register / reduce code
  u8 flags = 0;   // kStoreMasked scalar-input bits
  char x = 0;     // kScalarBin operator character
  i32 aux = -1;   // operand table index, or Relop for kStoreMasked
  i32 line = 0;   // source line for runtime diagnostics
};

struct CompiledProgram {
  std::string target;         // array whose mapping shapes the lane phase
  std::string scalar_target;  // nonempty for reduction programs: result var
  RegularSection dsec{0, 0, 1};
  i64 ranks = 0;
  i64 lane_count = 0;  // dsec.size()

  std::vector<double> sreg_init;  // compile-time-folded scalar registers
  std::vector<Instr> prelude;
  std::vector<Instr> loads;
  std::vector<Instr> lanes;  // includes the terminal instruction
  std::vector<Operand> operands;

  std::vector<KernelPlan> kernels;  // per rank, dst mapping over dsec
  std::vector<SectionPlan> plans;   // per rank (ramps, scalar-class walks)

  int n_sregs = 0;
  int n_lanes = 0;
  int n_scratch = 0;
  u8 store_reg = 0;        // lane register consumed by the terminal
  u8 result_sreg = 0;      // kReduceLanes result register
  bool store_fused = false;      // final arith op may write the dst span
  bool lanes_may_throw = false;  // a lane instruction can raise (div by 0)
  std::vector<std::string> notes;  // fusion decisions, for listings

  /// Human-readable disassembly: per-phase instructions, per-rank kernel
  /// classes, and the fusion decisions taken.
  [[nodiscard]] std::string listing() const;
};

/// Process-wide LRU of compiled programs keyed by statement shape (structure
/// + every referenced array's mapping), mirroring the PlanCache discipline.
/// A present-but-null entry is a negative result: the statement shape was
/// seen and declined, so repeat loops don't re-attempt compilation.
class ProgramCache {
 public:
  explicit ProgramCache(std::size_t capacity = 128) : capacity_(capacity) {}

  /// True when `key` is cached (out may be null: negative entry).
  bool find(const std::string& key, std::shared_ptr<const CompiledProgram>& out);
  void insert(const std::string& key, std::shared_ptr<const CompiledProgram> program);

  struct Stats {
    i64 hits = 0;
    i64 misses = 0;
    i64 evictions = 0;
  };
  [[nodiscard]] Stats stats() const;
  void clear();

  static ProgramCache& global();

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const CompiledProgram>>;
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> order_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
  Stats stats_;
};

}  // namespace cyclick::dsl::bc
