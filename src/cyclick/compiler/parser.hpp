// Recursive-descent parser for the mini-HPF DSL.
#pragma once

#include <string_view>

#include "cyclick/compiler/ast.hpp"
#include "cyclick/compiler/lexer.hpp"

namespace cyclick::dsl {

/// Parse a whole program; throws dsl_error with a line number on syntax
/// errors.
Program parse(std::string_view source);

}  // namespace cyclick::dsl
