// Lexer for the mini-HPF DSL (see compiler/README section in the top-level
// README). The language is line-oriented Fortran-ish pseudocode:
//
//   processors P(4)
//   template T(320)
//   distribute T onto P cyclic(8)
//   array A(320) align with T(i)
//   A(4:300:9) = 100
//   A(0:318:3) = A(1:319:3) + 2 * A(0:318:3)
//   print A(0:40:9)
//
// '#' starts a comment running to end of line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "cyclick/support/types.hpp"

namespace cyclick {

enum class TokKind {
  kIdent,
  kNumber,
  kLParen,
  kRParen,
  kColon,
  kComma,
  kAssign,  // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kLess,      // <
  kGreater,   // >
  kLessEq,    // <=
  kGreaterEq, // >=
  kEqEq,      // ==
  kNotEq,     // !=
  kNewline,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;  ///< identifier spelling or number spelling
  i64 value = 0;     ///< numeric value for kNumber
  int line = 0;      ///< 1-based source line, for diagnostics
};

/// Error raised on malformed DSL source (lexing, parsing, or semantic).
class dsl_error : public std::runtime_error {
 public:
  dsl_error(const std::string& message, int line)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

/// Tokenize a whole program. Newlines are significant (statement
/// separators) and surface as kNewline tokens; the list ends with kEnd.
std::vector<Token> lex(std::string_view source);

}  // namespace cyclick
