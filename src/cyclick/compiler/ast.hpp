// AST for the mini-HPF DSL.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "cyclick/support/types.hpp"

namespace cyclick::dsl {

/// One subscript triplet l:u[:s] of a section reference.
struct Triplet {
  i64 lower = 0;
  i64 upper = 0;
  i64 stride = 1;
};

/// A section reference A(l:u[:s] {, l:u[:s]}) — one triplet per dimension.
struct SectionRef {
  std::string array;
  std::vector<Triplet> subs;
  int line = 0;

  /// Convenience for the (common) one-dimensional case.
  [[nodiscard]] const Triplet& dim0() const { return subs.at(0); }
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node: scalar literal, scalar variable, section reference,
/// reduction intrinsic (sum/min/max over a section), array shift
/// (cshift/eoshift, 1-D arrays), unary minus, or a binary arithmetic
/// operation applied elementwise.
struct Expr {
  enum class Kind {
    kScalar,
    kScalarVar,
    kSection,
    kReduce,
    kShift,
    kRamp,  ///< forall index used as a value: element t is ramp_lower + t*ramp_stride
    kUnaryMinus,
    kBinary,
  };
  Kind kind = Kind::kScalar;
  double scalar = 0.0;        // kScalar / kShift (eoshift boundary value)
  std::string name;           // kScalarVar / kShift (the shifted array)
  SectionRef section;         // kSection / kReduce (the reduced section)
  std::string reduce_op;      // kReduce: "sum" | "min" | "max"
  i64 shift = 0;              // kShift: shift amount
  bool circular = true;       // kShift: cshift vs eoshift
  i64 ramp_lower = 0;         // kRamp
  i64 ramp_stride = 1;        // kRamp
  char op = 0;                // kBinary: + - * /
  ExprPtr lhs;                // kBinary / kUnaryMinus (operand in lhs)
  ExprPtr rhs;                // kBinary
  int line = 0;
};

/// processors P(4) | processors G(2, 3)
struct ProcsDecl {
  std::string name;
  std::vector<i64> extents;
  int line = 0;
};

/// template T(320) | template T(64, 48)
struct TemplateDecl {
  std::string name;
  std::vector<i64> extents;
  int line = 0;
};

/// One per-dimension distribution clause.
struct DistClause {
  enum class Kind { kCyclicK, kCyclic, kBlock } kind = Kind::kCyclicK;
  i64 block = 1;  // for kCyclicK
};

/// distribute T onto P cyclic(8) | distribute T onto G cyclic(8) block
struct DistributeDecl {
  using Kind = DistClause::Kind;  // historical alias used by RedistributeStmt
  std::string tmpl;
  std::string procs;
  std::vector<DistClause> clauses;  // one per template dimension
  int line = 0;
};

/// One per-dimension affine alignment a*<var>+b; the d-th dimension's
/// index variable is the d-th of i, j, k, ...
struct AlignTerm {
  i64 a = 1;
  i64 b = 0;
};

/// array A(320) align with T(i) | array M(64, 48) align with T(i, 2*j+1)
struct ArrayDecl {
  std::string name;
  std::vector<i64> extents;
  std::string tmpl;
  std::vector<AlignTerm> align;  // one per dimension
  int line = 0;
};

struct AssignStmt {
  SectionRef target;
  ExprPtr value;
  int line = 0;
};

/// x = <scalar expression>  (may contain reductions over sections).
struct ScalarAssignStmt {
  std::string name;
  ExprPtr value;
  int line = 0;
};

/// print A(l:u:s) | print A(l:u, l:u) | print x
struct PrintStmt {
  bool is_scalar = false;
  SectionRef section;  // when !is_scalar
  std::string name;    // when is_scalar
  int line = 0;
};

/// explain A(l:u:s) — dump every processor's access pattern (1-D arrays).
/// explain A(l:u:s) = expr — disassemble the bytecode program the statement
/// compiles to (kernel classes and fusion decisions per instruction).
struct ExplainStmt {
  SectionRef section;
  ExprPtr value;  // null for the access-pattern form
  int line = 0;
};

/// redistribute A onto P cyclic(4) — HPF-2 style dynamic remapping
/// (1-D arrays).
struct RedistributeStmt {
  std::string array;
  std::string procs;
  DistClause::Kind kind = DistClause::Kind::kCyclicK;
  i64 block = 1;
  int line = 0;
};

/// where (maskL <relop> maskR) A(l:u:s) = expr — masked assignment
/// (HPF WHERE); only the elements whose mask comparison holds are stored.
struct WhereStmt {
  ExprPtr mask_lhs;
  ExprPtr mask_rhs;
  std::string relop;  // "<" ">" "<=" ">=" "==" "!="
  SectionRef target;
  ExprPtr value;
  int line = 0;
};

struct Program;

/// repeat N <newline> { statements } end — fixed-count iteration block.
struct RepeatStmt {
  i64 count = 0;
  std::unique_ptr<Program> body;
  int line = 0;
};

using Statement =
    std::variant<ProcsDecl, TemplateDecl, DistributeDecl, ArrayDecl, AssignStmt,
                 ScalarAssignStmt, PrintStmt, ExplainStmt, RedistributeStmt, WhereStmt,
                 RepeatStmt>;

struct Program {
  std::vector<Statement> statements;
};

}  // namespace cyclick::dsl
