// Executor for mini-HPF DSL programs: binds declarations to cyclick runtime
// objects and lowers array-assignment statements onto the section/region
// operation engines (communicate into destination-shaped temporaries, then
// compute locally) — the shape of node code an HPF compiler would emit.
//
// One-dimensional arrays use the full DistributedArray feature set (packed
// aligned storage, shifts, redistribute, explain); multidimensional arrays
// use MultiDimArray region operations (fills, copies, elementwise
// expressions, reductions, print).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cyclick/compiler/ast.hpp"
#include "cyclick/compiler/lexer.hpp"  // dsl_error
#include "cyclick/runtime/distributed_array.hpp"
#include "cyclick/runtime/multidim_array.hpp"
#include "cyclick/runtime/spmd.hpp"

namespace cyclick::dsl {

class JitEngine;
struct JitCompiler;

/// First array-section operand of an expression tree (lhs before rhs;
/// shifts and reductions do not count) — the section a fused
/// reduction-over-expression anchors its element ordering to. Shared by
/// the interpreter and the bytecode compiler so both tiers pick the same
/// anchor. Null when the tree holds no section.
[[nodiscard]] const SectionRef* find_reduce_anchor(const Expr& e) noexcept;

/// Execution tiers for array statements. kBytecode compiles statements into
/// compact register programs (compiler/bytecode.hpp) executed by the jit
/// dispatch loop, falling back to the tree-walking interpreter for any
/// statement shape the compiler declines; kInterp forces the tree walker.
enum class Tier {
  kInterp,
  kBytecode,
};

/// Tier selected by the CYCLICK_TIER environment variable ("interp" or
/// "bytecode"), or `fallback` when unset/unrecognized.
[[nodiscard]] Tier tier_from_env(Tier fallback) noexcept;

/// Parse a --tier=interp|bytecode command-line flag. Returns false when the
/// argument is not a tier flag; throws nothing (unknown values are ignored
/// and leave `out` untouched, returning true so callers can warn).
bool parse_tier_flag(const std::string& arg, Tier& out) noexcept;

[[nodiscard]] const char* tier_name(Tier tier) noexcept;

class Machine {
 public:
  explicit Machine(SpmdExecutor::Mode mode = SpmdExecutor::Mode::kSequential);
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Select the execution tier for subsequent statements (default: bytecode,
  /// or whatever CYCLICK_TIER says).
  void set_tier(Tier tier) noexcept { tier_ = tier; }
  [[nodiscard]] Tier tier() const noexcept { return tier_; }

  /// Parse and execute a program; print output accumulates in output().
  void run_source(std::string_view source);

  /// Execute an already-parsed program.
  void run(const Program& program);

  /// Text produced by print/explain statements so far.
  [[nodiscard]] const std::string& output() const noexcept { return output_; }

  /// Record a lowering trace: one line per runtime operation each statement
  /// lowers to (fills, copies, local combines, shifts, reductions). The
  /// compiler's "-v" view of what it emits.
  void enable_trace() noexcept { tracing_ = true; }
  [[nodiscard]] const std::string& trace_log() const noexcept { return trace_; }

  /// Access a declared 1-D array (throws dsl_error if unknown or N-D).
  [[nodiscard]] const DistributedArray<double>& array(const std::string& name) const;

  /// Access a declared multidimensional array (throws if unknown or 1-D).
  [[nodiscard]] const MultiDimArray<double>& nd_array(const std::string& name) const;

  /// The assembled global image (row-major for N-D arrays).
  [[nodiscard]] std::vector<double> global_image(const std::string& name) const;

  /// Value of a scalar variable (throws dsl_error if unknown).
  [[nodiscard]] double scalar(const std::string& name) const;

 private:
  struct TemplateInfo {
    std::vector<i64> extents;
    std::vector<BlockCyclic> dists;  // set by a distribute statement (one per dim)
    int line = 0;
    [[nodiscard]] bool distributed() const noexcept { return !dists.empty(); }
  };

  struct ArrayInfo {
    std::unique_ptr<DistributedArray<double>> d1;  // 1-D arrays
    std::unique_ptr<MultiDimArray<double>> dn;     // N-D arrays
    std::string tmpl;
    [[nodiscard]] bool is_1d() const noexcept { return d1 != nullptr; }
  };

  void exec(const ProcsDecl& d);
  void exec(const TemplateDecl& d);
  void exec(const DistributeDecl& d);
  void exec(const ArrayDecl& d);
  void exec(const AssignStmt& s);
  void exec(const ScalarAssignStmt& s);
  void exec(const PrintStmt& s);
  void exec(const ExplainStmt& s);
  void exec(const RedistributeStmt& s);
  void exec(const WhereStmt& s);
  void exec(const RepeatStmt& s);

  ArrayInfo& lookup(const std::string& name, int line);
  const ArrayInfo& lookup(const std::string& name, int line) const;
  static RegularSection make_section(const SectionRef& ref, const DistributedArray<double>& arr);
  static Region make_region(const SectionRef& ref, const MultiDimArray<double>& arr);

  /// Evaluation result: scalar, or a destination-shaped temporary holding
  /// per-element values at the destination section/region local slots.
  struct Value {
    double scalar = 0.0;
    std::unique_ptr<DistributedArray<double>> temp;   // 1-D statements
    std::unique_ptr<MultiDimArray<double>> temp_nd;   // N-D statements
    [[nodiscard]] bool is_scalar() const noexcept { return !temp && !temp_nd; }
  };

  Value eval1(const Expr& e, const DistributedArray<double>& dst, const RegularSection& dsec,
              const SpmdExecutor& exec_ctx);
  Value evaln(const Expr& e, const MultiDimArray<double>& dst, const Region& dregion,
              const SpmdExecutor& exec_ctx);

  /// Evaluate an expression that must come out scalar (no free sections).
  /// Memoizes literal-closed subtrees (see const_memo_); the uncached
  /// variant is the raw tree walk.
  double eval_scalar(const Expr& e, int line);
  double eval_scalar_uncached(const Expr& e, int line);

  static double apply_op(char op, double x, double y, int line);
  void trace(const std::string& line);

  /// True when `e` is a literal-closed scalar subtree (no variables,
  /// sections, or reductions) whose value cannot change between statements.
  static bool is_const_scalar(const Expr& e) noexcept;

  /// Scratch-temporary pool: destination-shaped temporaries are recycled
  /// across statements instead of reallocated (and re-zeroed) per operand.
  /// Safe because every consumer fully writes the section-owned slots it
  /// later reads.
  std::unique_ptr<DistributedArray<double>> acquire_temp(
      const DistributedArray<double>& like);
  std::unique_ptr<DistributedArray<double>> acquire_temp(const BlockCyclic& dist, i64 n,
                                                         const AffineAlignment& align);
  void release_temp(std::unique_ptr<DistributedArray<double>> temp);

  JitEngine& jit();

  friend class JitEngine;
  friend struct JitCompiler;

  bool tracing_ = false;
  std::string trace_;
  SpmdExecutor::Mode mode_;
  Tier tier_;
  std::map<std::string, std::vector<i64>> procs_;
  std::map<std::string, TemplateInfo> templates_;
  std::map<std::string, ArrayInfo> arrays_;
  std::map<std::string, double> scalars_;
  std::string output_;

  /// Memo for loop-invariant (literal-closed) scalar subexpressions, keyed
  /// by AST node address. Cleared at the start of every top-level run() so
  /// node addresses from a destroyed Program can never be confused with a
  /// new one; inside repeat bodies (run_depth_ > 0) entries persist, which
  /// is where the hoisting pays off.
  std::unordered_map<const Expr*, double> const_memo_;
  int run_depth_ = 0;
  std::vector<std::unique_ptr<DistributedArray<double>>> temp_pool_;
  std::unique_ptr<JitEngine> jit_;
};

}  // namespace cyclick::dsl
