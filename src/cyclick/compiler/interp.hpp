// Executor for mini-HPF DSL programs: binds declarations to cyclick runtime
// objects and lowers array-assignment statements onto the section/region
// operation engines (communicate into destination-shaped temporaries, then
// compute locally) — the shape of node code an HPF compiler would emit.
//
// One-dimensional arrays use the full DistributedArray feature set (packed
// aligned storage, shifts, redistribute, explain); multidimensional arrays
// use MultiDimArray region operations (fills, copies, elementwise
// expressions, reductions, print).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "cyclick/compiler/ast.hpp"
#include "cyclick/compiler/lexer.hpp"  // dsl_error
#include "cyclick/runtime/distributed_array.hpp"
#include "cyclick/runtime/multidim_array.hpp"
#include "cyclick/runtime/spmd.hpp"

namespace cyclick::dsl {

class Machine {
 public:
  explicit Machine(SpmdExecutor::Mode mode = SpmdExecutor::Mode::kSequential)
      : mode_(mode) {}

  /// Parse and execute a program; print output accumulates in output().
  void run_source(std::string_view source);

  /// Execute an already-parsed program.
  void run(const Program& program);

  /// Text produced by print/explain statements so far.
  [[nodiscard]] const std::string& output() const noexcept { return output_; }

  /// Record a lowering trace: one line per runtime operation each statement
  /// lowers to (fills, copies, local combines, shifts, reductions). The
  /// compiler's "-v" view of what it emits.
  void enable_trace() noexcept { tracing_ = true; }
  [[nodiscard]] const std::string& trace_log() const noexcept { return trace_; }

  /// Access a declared 1-D array (throws dsl_error if unknown or N-D).
  [[nodiscard]] const DistributedArray<double>& array(const std::string& name) const;

  /// Access a declared multidimensional array (throws if unknown or 1-D).
  [[nodiscard]] const MultiDimArray<double>& nd_array(const std::string& name) const;

  /// The assembled global image (row-major for N-D arrays).
  [[nodiscard]] std::vector<double> global_image(const std::string& name) const;

  /// Value of a scalar variable (throws dsl_error if unknown).
  [[nodiscard]] double scalar(const std::string& name) const;

 private:
  struct TemplateInfo {
    std::vector<i64> extents;
    std::vector<BlockCyclic> dists;  // set by a distribute statement (one per dim)
    int line = 0;
    [[nodiscard]] bool distributed() const noexcept { return !dists.empty(); }
  };

  struct ArrayInfo {
    std::unique_ptr<DistributedArray<double>> d1;  // 1-D arrays
    std::unique_ptr<MultiDimArray<double>> dn;     // N-D arrays
    std::string tmpl;
    [[nodiscard]] bool is_1d() const noexcept { return d1 != nullptr; }
  };

  void exec(const ProcsDecl& d);
  void exec(const TemplateDecl& d);
  void exec(const DistributeDecl& d);
  void exec(const ArrayDecl& d);
  void exec(const AssignStmt& s);
  void exec(const ScalarAssignStmt& s);
  void exec(const PrintStmt& s);
  void exec(const ExplainStmt& s);
  void exec(const RedistributeStmt& s);
  void exec(const WhereStmt& s);
  void exec(const RepeatStmt& s);

  ArrayInfo& lookup(const std::string& name, int line);
  const ArrayInfo& lookup(const std::string& name, int line) const;
  static RegularSection make_section(const SectionRef& ref, const DistributedArray<double>& arr);
  static Region make_region(const SectionRef& ref, const MultiDimArray<double>& arr);

  /// Evaluation result: scalar, or a destination-shaped temporary holding
  /// per-element values at the destination section/region local slots.
  struct Value {
    double scalar = 0.0;
    std::unique_ptr<DistributedArray<double>> temp;   // 1-D statements
    std::unique_ptr<MultiDimArray<double>> temp_nd;   // N-D statements
    [[nodiscard]] bool is_scalar() const noexcept { return !temp && !temp_nd; }
  };

  Value eval1(const Expr& e, const DistributedArray<double>& dst, const RegularSection& dsec,
              const SpmdExecutor& exec_ctx);
  Value evaln(const Expr& e, const MultiDimArray<double>& dst, const Region& dregion,
              const SpmdExecutor& exec_ctx);

  /// Evaluate an expression that must come out scalar (no free sections).
  double eval_scalar(const Expr& e, int line);

  static double apply_op(char op, double x, double y, int line);
  void trace(const std::string& line);

  bool tracing_ = false;
  std::string trace_;
  SpmdExecutor::Mode mode_;
  std::map<std::string, std::vector<i64>> procs_;
  std::map<std::string, TemplateInfo> templates_;
  std::map<std::string, ArrayInfo> arrays_;
  std::map<std::string, double> scalars_;
  std::string output_;
};

}  // namespace cyclick::dsl
