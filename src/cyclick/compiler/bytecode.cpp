#include "cyclick/compiler/bytecode.hpp"

#include <sstream>

#include "cyclick/obs/metrics.hpp"

namespace cyclick::dsl::bc {

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kScalarVar: return "svar";
    case Op::kReduceSec: return "sreduce";
    case Op::kScalarNeg: return "sneg";
    case Op::kScalarBin: return "sbin";
    case Op::kLoadSection: return "load";
    case Op::kLoadShift: return "load.shift";
    case Op::kLaneDirect: return "lane.direct";
    case Op::kLaneScratch: return "lane.scratch";
    case Op::kLaneRamp: return "lane.ramp";
    case Op::kLaneNeg: return "neg.v";
    case Op::kAddVV: return "add.vv";
    case Op::kSubVV: return "sub.vv";
    case Op::kMulVV: return "mul.vv";
    case Op::kDivVV: return "div.vv";
    case Op::kAddVS: return "add.vs";
    case Op::kSubVS: return "sub.vs";
    case Op::kMulVS: return "mul.vs";
    case Op::kDivVS: return "div.vs";
    case Op::kSubSV: return "sub.sv";
    case Op::kDivSV: return "div.sv";
    case Op::kMulAddVSV: return "muladd.vsv";
    case Op::kMulSubVSV: return "mulsub.vsv";
    case Op::kAddDivVVS: return "adddiv.vvs";
    case Op::kMulAddVSS: return "muladd.vss";
    case Op::kStoreLanes: return "store";
    case Op::kStoreMasked: return "store.masked";
    case Op::kReduceLanes: return "reduce.lanes";
    case Op::kFillDst: return "fill.dst";
    case Op::kCopyDst: return "copy.dst";
  }
  return "?";
}

namespace {

const char* reduce_name(u8 code) noexcept {
  switch (code) {
    case kRedSum: return "sum";
    case kRedMin: return "min";
    case kRedMax: return "max";
    default: return "?";
  }
}

const char* relop_name(i32 code) noexcept {
  switch (code) {
    case kLT: return "<";
    case kGT: return ">";
    case kLE: return "<=";
    case kGE: return ">=";
    case kEQ: return "==";
    case kNE: return "!=";
    default: return "?";
  }
}

void format_instr(std::ostringstream& ss, const Instr& in,
                  const std::vector<Operand>& operands) {
  const auto opnd = [&]() -> const Operand& {
    return operands[static_cast<std::size_t>(in.aux)];
  };
  ss << "    " << op_name(in.op);
  switch (in.op) {
    case Op::kScalarVar:
      ss << "      s" << +in.a << " = " << opnd().array;
      break;
    case Op::kReduceSec:
      ss << "    s" << +in.a << " = " << reduce_name(in.b) << ' ' << opnd().array
         << opnd().sec.to_string();
      break;
    case Op::kScalarNeg:
      ss << "     s" << +in.a << " = -s" << +in.a;
      break;
    case Op::kScalarBin:
      ss << "     s" << +in.a << " = s" << +in.b << ' ' << in.x << " s" << +in.c;
      break;
    case Op::kLoadSection:
      ss << "       t" << +in.a << " = " << opnd().array << opnd().sec.to_string()
         << "  [messages=" << opnd().plan->message_count()
         << ", remote=" << opnd().plan->remote_elements() << "]";
      break;
    case Op::kLoadShift:
      ss << " t" << +in.a << " = " << (opnd().circular ? "cshift(" : "eoshift(")
         << opnd().array << ", " << opnd().shift << ")";
      break;
    case Op::kLaneDirect:
      ss << "  l" << +in.a << " = " << opnd().array << opnd().sec.to_string()
         << "  [no comm]";
      break;
    case Op::kLaneScratch:
      ss << " l" << +in.a << " = t" << +in.b;
      break;
    case Op::kLaneRamp:
      ss << "    l" << +in.a << " = " << opnd().ramp_lower << " + t*"
         << opnd().ramp_stride;
      break;
    case Op::kLaneNeg:
      ss << "        l" << +in.a << " = -l" << +in.a;
      break;
    case Op::kAddVV:
    case Op::kSubVV:
    case Op::kMulVV:
    case Op::kDivVV:
      ss << "       l" << +in.a << " = l" << +in.a << ", l" << +in.b;
      break;
    case Op::kAddVS:
    case Op::kSubVS:
    case Op::kMulVS:
    case Op::kDivVS:
    case Op::kSubSV:
    case Op::kDivSV:
      ss << "       l" << +in.a << " = l" << +in.a << ", s" << +in.b;
      break;
    case Op::kMulAddVSV:
      ss << "   l" << +in.a << " = l" << +in.a << "*s" << +in.b << " + l" << +in.c;
      break;
    case Op::kMulSubVSV:
      ss << "   l" << +in.a << " = l" << +in.a << "*s" << +in.b << " - l" << +in.c;
      break;
    case Op::kAddDivVVS:
      ss << "   l" << +in.a << " = (l" << +in.a << " + l" << +in.c << ") / s" << +in.b;
      break;
    case Op::kMulAddVSS:
      ss << "   l" << +in.a << " = l" << +in.a << "*s" << +in.b << " + s" << +in.c;
      break;
    case Op::kStoreLanes:
      ss << "        dst = l" << +in.a;
      break;
    case Op::kStoreMasked:
      ss << " dst = " << ((in.flags & kMaskValScalar) ? 's' : 'l') << +in.a
         << " where " << ((in.flags & kMaskLhsScalar) ? 's' : 'l') << +in.b << ' '
         << relop_name(in.aux) << ' ' << ((in.flags & kMaskRhsScalar) ? 's' : 'l')
         << +in.c;
      break;
    case Op::kReduceLanes:
      ss << " s" << +in.a << " = " << reduce_name(in.c) << "(l" << +in.b << ")";
      break;
    case Op::kFillDst:
      ss << "     dst = s" << +in.a;
      break;
    case Op::kCopyDst:
      ss << "     dst = " << opnd().array << opnd().sec.to_string();
      break;
  }
  ss << '\n';
}

}  // namespace

std::string CompiledProgram::listing() const {
  std::ostringstream ss;
  ss << "bytecode program for " << (scalar_target.empty() ? target : scalar_target)
     << (scalar_target.empty() ? dsec.to_string() : " (reduction over " + target +
                                                        dsec.to_string() + ")")
     << " on " << ranks << " ranks (" << lane_count << " lanes";
  if (store_fused) ss << ", store-fused";
  if (lanes_may_throw) ss << ", guarded";
  ss << "):\n";
  if (!kernels.empty()) {
    ss << "  kernels:\n";
    for (std::size_t r = 0; r < kernels.size(); ++r)
      ss << "    rank " << r << ": " << kernel_class_name(kernels[r].cls())
         << " count=" << kernels[r].count() << '\n';
  }
  if (!prelude.empty()) {
    ss << "  prelude:\n";
    for (const Instr& in : prelude) format_instr(ss, in, operands);
  }
  if (!loads.empty()) {
    ss << "  loads:\n";
    for (const Instr& in : loads) format_instr(ss, in, operands);
  }
  if (!lanes.empty()) {
    ss << "  lanes:\n";
    for (const Instr& in : lanes) format_instr(ss, in, operands);
  }
  if (!notes.empty()) {
    ss << "  fusion:\n";
    for (const std::string& n : notes) ss << "    " << n << '\n';
  }
  return ss.str();
}

bool ProgramCache::find(const std::string& key,
                        std::shared_ptr<const CompiledProgram>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    CYCLICK_COUNT("jitcache.misses", 0, 1);
    return false;
  }
  order_.splice(order_.begin(), order_, it->second);
  ++stats_.hits;
  CYCLICK_COUNT("jitcache.hits", 0, 1);
  out = it->second->second;
  return true;
}

void ProgramCache::insert(const std::string& key,
                          std::shared_ptr<const CompiledProgram> program) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = std::move(program);
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  order_.emplace_front(key, std::move(program));
  map_[key] = order_.begin();
  if (map_.size() > capacity_) {
    map_.erase(order_.back().first);
    order_.pop_back();
    ++stats_.evictions;
    CYCLICK_COUNT("jitcache.evictions", 0, 1);
  }
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ProgramCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  order_.clear();
  map_.clear();
  stats_ = Stats{};
}

ProgramCache& ProgramCache::global() {
  static ProgramCache cache;
  return cache;
}

}  // namespace cyclick::dsl::bc
