#include "cyclick/compiler/lexer.hpp"

#include <cctype>

namespace cyclick {

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> toks;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  const auto push = [&](TokKind kind, std::string text, i64 value = 0) {
    toks.push_back({kind, std::move(text), value, line});
  };

  while (i < n) {
    const char c = source[i];
    if (c == '#') {  // comment to end of line
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '\n') {
      // Collapse runs of newlines into one separator token.
      if (!toks.empty() && toks.back().kind != TokKind::kNewline) push(TokKind::kNewline, "\\n");
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      i64 value = 0;
      while (j < n && std::isdigit(static_cast<unsigned char>(source[j])) != 0) {
        value = value * 10 + (source[j] - '0');
        ++j;
      }
      push(TokKind::kNumber, std::string(source.substr(i, j - i)), value);
      i = j;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) != 0 ||
                       source[j] == '_')) {
        ++j;
      }
      push(TokKind::kIdent, std::string(source.substr(i, j - i)));
      i = j;
      continue;
    }
    const bool eq_next = i + 1 < n && source[i + 1] == '=';
    switch (c) {
      case '(': push(TokKind::kLParen, "("); break;
      case ')': push(TokKind::kRParen, ")"); break;
      case ':': push(TokKind::kColon, ":"); break;
      case ',': push(TokKind::kComma, ","); break;
      case '+': push(TokKind::kPlus, "+"); break;
      case '-': push(TokKind::kMinus, "-"); break;
      case '*': push(TokKind::kStar, "*"); break;
      case '/': push(TokKind::kSlash, "/"); break;
      case '=':
        if (eq_next) {
          push(TokKind::kEqEq, "==");
          ++i;
        } else {
          push(TokKind::kAssign, "=");
        }
        break;
      case '<':
        if (eq_next) {
          push(TokKind::kLessEq, "<=");
          ++i;
        } else {
          push(TokKind::kLess, "<");
        }
        break;
      case '>':
        if (eq_next) {
          push(TokKind::kGreaterEq, ">=");
          ++i;
        } else {
          push(TokKind::kGreater, ">");
        }
        break;
      case '!':
        if (eq_next) {
          push(TokKind::kNotEq, "!=");
          ++i;
        } else {
          throw dsl_error("unexpected character '!' (did you mean '!='?)", line);
        }
        break;
      default:
        throw dsl_error(std::string("unexpected character '") + c + "'", line);
    }
    ++i;
  }
  if (!toks.empty() && toks.back().kind != TokKind::kNewline) push(TokKind::kNewline, "\\n");
  push(TokKind::kEnd, "<end>");
  return toks;
}

}  // namespace cyclick
