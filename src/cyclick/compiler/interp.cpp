#include "cyclick/compiler/interp.hpp"

#include <cstdlib>
#include <limits>
#include <sstream>

#include "cyclick/compiler/jit.hpp"
#include "cyclick/compiler/parser.hpp"
#include "cyclick/core/aligned.hpp"
#include "cyclick/core/engine.hpp"
#include "cyclick/obs/metrics.hpp"
#include "cyclick/obs/trace.hpp"
#include "cyclick/runtime/intrinsics.hpp"
#include "cyclick/runtime/section_ops.hpp"

namespace cyclick::dsl {
namespace {

// Per-statement-kind trace labels (string literals: TraceEvent stores the
// pointer, so span names must have static lifetime).
constexpr const char* stmt_label(const ProcsDecl&) { return "dsl.procs"; }
constexpr const char* stmt_label(const TemplateDecl&) { return "dsl.template"; }
constexpr const char* stmt_label(const DistributeDecl&) { return "dsl.distribute"; }
constexpr const char* stmt_label(const ArrayDecl&) { return "dsl.array"; }
constexpr const char* stmt_label(const AssignStmt&) { return "dsl.assign"; }
constexpr const char* stmt_label(const ScalarAssignStmt&) { return "dsl.scalar_assign"; }
constexpr const char* stmt_label(const PrintStmt&) { return "dsl.print"; }
constexpr const char* stmt_label(const ExplainStmt&) { return "dsl.explain"; }
constexpr const char* stmt_label(const RedistributeStmt&) { return "dsl.redistribute"; }
constexpr const char* stmt_label(const WhereStmt&) { return "dsl.where"; }
constexpr const char* stmt_label(const RepeatStmt&) { return "dsl.repeat"; }

}  // namespace

const SectionRef* find_reduce_anchor(const Expr& e) noexcept {
  switch (e.kind) {
    case Expr::Kind::kSection:
      return &e.section;
    case Expr::Kind::kUnaryMinus:
      return find_reduce_anchor(*e.lhs);
    case Expr::Kind::kBinary: {
      const SectionRef* a = find_reduce_anchor(*e.lhs);
      return a != nullptr ? a : find_reduce_anchor(*e.rhs);
    }
    default:
      return nullptr;  // shifts and nested reductions don't pin an ordering
  }
}

Tier tier_from_env(Tier fallback) noexcept {
  const char* v = std::getenv("CYCLICK_TIER");
  if (v == nullptr) return fallback;
  const std::string_view sv(v);
  if (sv == "interp") return Tier::kInterp;
  if (sv == "bytecode") return Tier::kBytecode;
  return fallback;
}

bool parse_tier_flag(const std::string& arg, Tier& out) noexcept {
  if (arg.rfind("--tier=", 0) != 0) return false;
  const std::string_view value(arg.c_str() + 7);
  if (value == "interp") out = Tier::kInterp;
  if (value == "bytecode") out = Tier::kBytecode;
  return true;
}

const char* tier_name(Tier tier) noexcept {
  return tier == Tier::kBytecode ? "bytecode" : "interp";
}

Machine::Machine(SpmdExecutor::Mode mode)
    : mode_(mode), tier_(tier_from_env(Tier::kBytecode)) {}

Machine::~Machine() = default;

JitEngine& Machine::jit() {
  if (!jit_) jit_ = std::make_unique<JitEngine>(*this);
  return *jit_;
}

void Machine::run_source(std::string_view source) { run(parse(source)); }

void Machine::run(const Program& program) {
  // The const memo keys on AST node addresses; a fresh top-level run may see
  // a different Program object at the same addresses, so only nested runs
  // (repeat bodies — where hoisting pays off) keep their entries.
  if (run_depth_ == 0) const_memo_.clear();
  ++run_depth_;
  struct Depth {
    int& d;
    ~Depth() { --d; }
  } depth{run_depth_};
  for (const Statement& stmt : program.statements)
    std::visit(
        [this](const auto& s) {
          CYCLICK_COUNT("dsl.statements", 0, 1);
          CYCLICK_SPAN(stmt_label(s), obs::kMainTid);
          exec(s);
        },
        stmt);
}

std::unique_ptr<DistributedArray<double>> Machine::acquire_temp(
    const DistributedArray<double>& like) {
  return acquire_temp(like.dist(), like.size(), like.alignment());
}

std::unique_ptr<DistributedArray<double>> Machine::acquire_temp(
    const BlockCyclic& dist, i64 n, const AffineAlignment& align) {
  for (auto it = temp_pool_.begin(); it != temp_pool_.end(); ++it) {
    DistributedArray<double>& t = **it;
    if (t.dist() == dist && t.size() == n && t.alignment() == align) {
      auto out = std::move(*it);
      temp_pool_.erase(it);
      CYCLICK_COUNT("dsl.temp_pool_hits", 0, 1);
      // Stale values are fine: every consumer fully writes the owned slots
      // it later reads (plan unpacks, ramps, and shifts cover the section).
      return out;
    }
  }
  CYCLICK_COUNT("dsl.temp_pool_misses", 0, 1);
  return std::make_unique<DistributedArray<double>>(dist, n, align);
}

void Machine::release_temp(std::unique_ptr<DistributedArray<double>> temp) {
  constexpr std::size_t kPoolCap = 16;
  if (temp && temp_pool_.size() < kPoolCap) temp_pool_.push_back(std::move(temp));
}

const DistributedArray<double>& Machine::array(const std::string& name) const {
  const ArrayInfo& info = lookup(name, 0);
  if (!info.is_1d()) throw dsl_error("array '" + name + "' is multidimensional", 0);
  return *info.d1;
}

const MultiDimArray<double>& Machine::nd_array(const std::string& name) const {
  const ArrayInfo& info = lookup(name, 0);
  if (info.is_1d()) throw dsl_error("array '" + name + "' is one-dimensional", 0);
  return *info.dn;
}

std::vector<double> Machine::global_image(const std::string& name) const {
  const ArrayInfo& info = lookup(name, 0);
  return info.is_1d() ? info.d1->gather() : info.dn->gather();
}

double Machine::scalar(const std::string& name) const {
  const auto it = scalars_.find(name);
  if (it == scalars_.end()) throw dsl_error("unknown scalar '" + name + "'", 0);
  return it->second;
}

void Machine::trace(const std::string& line) {
  if (tracing_) {
    trace_ += line;
    trace_ += '\n';
  }
}

void Machine::exec(const ProcsDecl& d) {
  for (const i64 e : d.extents)
    if (e < 1) throw dsl_error("processor count must be positive", d.line);
  procs_[d.name] = d.extents;
}

void Machine::exec(const TemplateDecl& d) {
  for (const i64 e : d.extents)
    if (e < 1) throw dsl_error("template size must be positive", d.line);
  templates_[d.name] = TemplateInfo{d.extents, {}, d.line};
}

void Machine::exec(const DistributeDecl& d) {
  const auto t = templates_.find(d.tmpl);
  if (t == templates_.end()) throw dsl_error("unknown template '" + d.tmpl + "'", d.line);
  const auto p = procs_.find(d.procs);
  if (p == procs_.end())
    throw dsl_error("unknown processor arrangement '" + d.procs + "'", d.line);
  const std::size_t dims = t->second.extents.size();
  if (p->second.size() != dims)
    throw dsl_error("processor arrangement '" + d.procs + "' has " +
                        std::to_string(p->second.size()) + " dimensions, template needs " +
                        std::to_string(dims),
                    d.line);
  if (d.clauses.size() != dims)
    throw dsl_error("distribute needs one clause per template dimension (" +
                        std::to_string(dims) + ")",
                    d.line);
  std::vector<BlockCyclic> dists;
  for (std::size_t dim = 0; dim < dims; ++dim) {
    const DistClause& c = d.clauses[dim];
    const i64 pd = p->second[dim];
    switch (c.kind) {
      case DistClause::Kind::kCyclicK:
        if (c.block < 1) throw dsl_error("block size must be positive", d.line);
        dists.emplace_back(pd, c.block);
        break;
      case DistClause::Kind::kCyclic:
        dists.push_back(BlockCyclic::cyclic(pd));
        break;
      case DistClause::Kind::kBlock:
        dists.push_back(BlockCyclic::block(t->second.extents[dim], pd));
        break;
    }
  }
  t->second.dists = std::move(dists);
}

void Machine::exec(const ArrayDecl& d) {
  for (const i64 e : d.extents)
    if (e < 1) throw dsl_error("array size must be positive", d.line);
  const auto t = templates_.find(d.tmpl);
  if (t == templates_.end()) throw dsl_error("unknown template '" + d.tmpl + "'", d.line);
  if (!t->second.distributed())
    throw dsl_error("template '" + d.tmpl + "' is not distributed yet", d.line);
  const std::size_t dims = d.extents.size();
  if (t->second.extents.size() != dims)
    throw dsl_error("array and template dimensionality differ", d.line);
  if (d.align.size() != dims) throw dsl_error("alignment arity mismatch", d.line);

  // Per-dimension alignment validation: the whole array must land inside
  // the template.
  std::vector<AffineAlignment> aligns;
  for (std::size_t dim = 0; dim < dims; ++dim) {
    if (d.align[dim].a == 0)
      throw dsl_error("alignment coefficient must be nonzero", d.line);
    const AffineAlignment al{d.align[dim].a, d.align[dim].b};
    const i64 c0 = al.cell(0);
    const i64 c1 = al.cell(d.extents[dim] - 1);
    const i64 lo = c0 < c1 ? c0 : c1;
    const i64 hi = c0 < c1 ? c1 : c0;
    if (lo < 0 || hi >= t->second.extents[dim])
      throw dsl_error("alignment maps array outside template '" + d.tmpl + "'", d.line);
    aligns.push_back(al);
  }

  ArrayInfo info;
  info.tmpl = d.tmpl;
  if (dims == 1) {
    info.d1 = std::make_unique<DistributedArray<double>>(t->second.dists[0], d.extents[0],
                                                         aligns[0]);
  } else {
    std::vector<DimMapping> mapping;
    std::vector<i64> grid_extents;
    for (std::size_t dim = 0; dim < dims; ++dim) {
      mapping.emplace_back(d.extents[dim], aligns[dim], t->second.dists[dim]);
      grid_extents.push_back(t->second.dists[dim].procs());
    }
    info.dn = std::make_unique<MultiDimArray<double>>(
        MultiDimMapping{std::move(mapping), ProcessorGrid{grid_extents}});
  }
  arrays_[d.name] = std::move(info);
}

Machine::ArrayInfo& Machine::lookup(const std::string& name, int line) {
  const auto it = arrays_.find(name);
  if (it == arrays_.end()) throw dsl_error("unknown array '" + name + "'", line);
  return it->second;
}

const Machine::ArrayInfo& Machine::lookup(const std::string& name, int line) const {
  const auto it = arrays_.find(name);
  if (it == arrays_.end()) throw dsl_error("unknown array '" + name + "'", line);
  return it->second;
}

RegularSection Machine::make_section(const SectionRef& ref,
                                     const DistributedArray<double>& arr) {
  if (ref.subs.size() != 1)
    throw dsl_error("array '" + ref.array + "' is one-dimensional", ref.line);
  const Triplet& t = ref.dim0();
  if (t.stride == 0) throw dsl_error("section stride must be nonzero", ref.line);
  const RegularSection sec{t.lower, t.upper, t.stride};
  if (sec.empty()) throw dsl_error("section " + sec.to_string() + " is empty", ref.line);
  if (sec.lower < 0 || sec.lower >= arr.size() || sec.last() < 0 || sec.last() >= arr.size())
    throw dsl_error("section " + sec.to_string() + " out of bounds for array of size " +
                        std::to_string(arr.size()),
                    ref.line);
  return sec;
}

Region Machine::make_region(const SectionRef& ref, const MultiDimArray<double>& arr) {
  if (ref.subs.size() != arr.dims())
    throw dsl_error("array '" + ref.array + "' has " + std::to_string(arr.dims()) +
                        " dimensions, reference has " + std::to_string(ref.subs.size()),
                    ref.line);
  Region region;
  for (std::size_t dim = 0; dim < ref.subs.size(); ++dim) {
    const Triplet& t = ref.subs[dim];
    if (t.stride == 0) throw dsl_error("section stride must be nonzero", ref.line);
    const RegularSection sec{t.lower, t.upper, t.stride};
    const i64 extent = arr.mapping().dim(dim).extent;
    if (sec.empty())
      throw dsl_error("empty section in dimension " + std::to_string(dim), ref.line);
    if (sec.lower < 0 || sec.lower >= extent || sec.last() < 0 || sec.last() >= extent)
      throw dsl_error("section " + sec.to_string() + " out of bounds in dimension " +
                          std::to_string(dim),
                      ref.line);
    region.push_back(sec);
  }
  return region;
}

double Machine::apply_op(char op, double x, double y, int line) {
  switch (op) {
    case '+': return x + y;
    case '-': return x - y;
    case '*': return x * y;
    case '/':
      if (y == 0.0) throw dsl_error("division by zero", line);
      return x / y;
    default: throw dsl_error("bad operator", line);
  }
}

bool Machine::is_const_scalar(const Expr& e) noexcept {
  switch (e.kind) {
    case Expr::Kind::kScalar:
      return true;
    case Expr::Kind::kUnaryMinus:
      return is_const_scalar(*e.lhs);
    case Expr::Kind::kBinary:
      return is_const_scalar(*e.lhs) && is_const_scalar(*e.rhs);
    default:
      return false;  // variables, sections, and reductions can change
  }
}

double Machine::eval_scalar(const Expr& e, int line) {
  if (!is_const_scalar(e)) return eval_scalar_uncached(e, line);
  const auto it = const_memo_.find(&e);
  if (it != const_memo_.end()) return it->second;
  // Division by zero in a constant subtree throws before the emplace, so a
  // failing expression is re-evaluated (and re-raises) on every iteration —
  // the same behavior as the unmemoized walk.
  const double v = eval_scalar_uncached(e, line);
  const_memo_.emplace(&e, v);
  return v;
}

double Machine::eval_scalar_uncached(const Expr& e, int line) {
  switch (e.kind) {
    case Expr::Kind::kScalar:
      return e.scalar;
    case Expr::Kind::kScalarVar: {
      const auto it = scalars_.find(e.name);
      if (it == scalars_.end()) throw dsl_error("unknown scalar '" + e.name + "'", e.line);
      return it->second;
    }
    case Expr::Kind::kReduce: {
      if (e.lhs) {
        // Reduction over an expression: evaluate the operand tree into a
        // destination-shaped temporary against the anchor section (first
        // array section in the tree), then reduce that temporary.
        const SectionRef* anchor = find_reduce_anchor(*e.lhs);
        if (anchor == nullptr)
          throw dsl_error("reduction over an expression needs an array section operand",
                          e.line);
        const ArrayInfo& ainfo = lookup(anchor->array, e.line);
        if (!ainfo.is_1d())
          throw dsl_error("reduction over expressions supports one-dimensional arrays",
                          e.line);
        const DistributedArray<double>& arr = *ainfo.d1;
        const RegularSection sec = make_section(*anchor, arr);
        const SpmdExecutor exec_ctx(arr.dist().procs(), mode_);
        Value v = eval1(*e.lhs, arr, sec, exec_ctx);
        if (v.is_scalar())
          throw dsl_error("reduction over an expression needs an array section operand",
                          e.line);
        const auto sum = [](double a, double b) { return a + b; };
        const auto mn = [](double a, double b) { return a < b ? a : b; };
        const auto mx = [](double a, double b) { return a > b ? a : b; };
        double out = 0.0;
        if (e.reduce_op == "sum") {
          out = reduce_section(*v.temp, sec, 0.0, sum, exec_ctx);
        } else if (e.reduce_op == "min") {
          out = reduce_section(*v.temp, sec, std::numeric_limits<double>::infinity(), mn,
                               exec_ctx);
        } else {
          out = reduce_section(*v.temp, sec, -std::numeric_limits<double>::infinity(), mx,
                               exec_ctx);
        }
        release_temp(std::move(v.temp));
        return out;
      }
      const ArrayInfo& info = lookup(e.section.array, e.line);
      const auto sum = [](double a, double b) { return a + b; };
      const auto mn = [](double a, double b) { return a < b ? a : b; };
      const auto mx = [](double a, double b) { return a > b ? a : b; };
      if (info.is_1d()) {
        const RegularSection sec = make_section(e.section, *info.d1);
        const SpmdExecutor exec_ctx(info.d1->dist().procs(), mode_);
        if (e.reduce_op == "sum") return reduce_section(*info.d1, sec, 0.0, sum, exec_ctx);
        if (e.reduce_op == "min")
          return reduce_section(*info.d1, sec, std::numeric_limits<double>::infinity(), mn,
                                exec_ctx);
        return reduce_section(*info.d1, sec, -std::numeric_limits<double>::infinity(), mx,
                              exec_ctx);
      }
      const Region region = make_region(e.section, *info.dn);
      const SpmdExecutor exec_ctx(info.dn->mapping().grid().rank_count(), mode_);
      if (e.reduce_op == "sum") return reduce_region(*info.dn, region, 0.0, sum, exec_ctx);
      if (e.reduce_op == "min")
        return reduce_region(*info.dn, region, std::numeric_limits<double>::infinity(), mn,
                             exec_ctx);
      return reduce_region(*info.dn, region, -std::numeric_limits<double>::infinity(), mx,
                           exec_ctx);
    }
    case Expr::Kind::kUnaryMinus:
      return -eval_scalar(*e.lhs, line);
    case Expr::Kind::kBinary:
      return apply_op(e.op, eval_scalar(*e.lhs, line), eval_scalar(*e.rhs, line), e.line);
    case Expr::Kind::kSection:
    case Expr::Kind::kShift:
    case Expr::Kind::kRamp:
      throw dsl_error("array-valued expression not allowed in scalar context", e.line);
  }
  throw dsl_error("bad expression", line);
}

Machine::Value Machine::eval1(const Expr& e, const DistributedArray<double>& dst,
                              const RegularSection& dsec, const SpmdExecutor& exec_ctx) {
  switch (e.kind) {
    case Expr::Kind::kScalar:
    case Expr::Kind::kScalarVar:
    case Expr::Kind::kReduce: {
      Value v;
      v.scalar = eval_scalar(e, e.line);
      return v;
    }
    case Expr::Kind::kShift: {
      const ArrayInfo& info = lookup(e.name, e.line);
      if (!info.is_1d())
        throw dsl_error("cshift/eoshift require a one-dimensional array", e.line);
      const DistributedArray<double>& src = *info.d1;
      const i64 n = src.size();
      if (dsec.size() != n)
        throw dsl_error("shift expression has " + std::to_string(n) +
                            " elements, statement needs " + std::to_string(dsec.size()),
                        e.line);
      auto shifted = acquire_temp(src.dist(), n, AffineAlignment::identity());
      trace(std::string("  ") + (e.circular ? "cshift " : "eoshift ") + e.name + " by " +
            std::to_string(e.shift));
      if (e.circular) {
        cshift(src, *shifted, e.shift, exec_ctx);
      } else {
        eoshift(src, *shifted, e.shift, e.scalar, exec_ctx);
      }
      Value v;
      v.temp = acquire_temp(dst);
      copy_section(*shifted, RegularSection{0, n - 1, 1}, *v.temp, dsec, exec_ctx);
      release_temp(std::move(shifted));
      return v;
    }
    case Expr::Kind::kSection: {
      const ArrayInfo& info = lookup(e.section.array, e.line);
      if (!info.is_1d())
        throw dsl_error("cannot mix array dimensionalities in one statement", e.line);
      const DistributedArray<double>& src = *info.d1;
      const RegularSection ssec = make_section(e.section, src);
      if (ssec.size() != dsec.size())
        throw dsl_error("section length mismatch: " + ssec.to_string() + " has " +
                            std::to_string(ssec.size()) + " elements, statement needs " +
                            std::to_string(dsec.size()),
                        e.line);
      if (src.dist().procs() != dst.dist().procs())
        throw dsl_error("arrays in one statement must share a processor arrangement", e.line);
      Value v;
      v.temp = acquire_temp(dst);
      // One cached plan serves both the trace diagnostics and the copy;
      // repeated statements with the same shape replay it from the cache.
      const auto plan = cached_copy_plan(src, ssec, *v.temp, dsec, exec_ctx);
      if (tracing_) {
        trace("  copy " + e.section.array + ssec.to_string() + " -> temp@" +
              dsec.to_string() + "  [messages=" + std::to_string(plan->message_count()) +
              ", remote=" + std::to_string(plan->remote_elements()) + "/" +
              std::to_string(ssec.size()) + "]");
      }
      execute_copy_plan(*plan, src, *v.temp, exec_ctx);
      return v;
    }
    case Expr::Kind::kRamp: {
      // forall index as a value: the t-th element of the statement is the
      // index value ramp_lower + t*ramp_stride.
      Value v;
      v.temp = acquire_temp(dst);
      exec_ctx.run([&](i64 rank) {
        auto local = v.temp->local(rank);
        for_each_owned(*v.temp, dsec, rank, [&](i64 t, i64 addr) {
          local[static_cast<std::size_t>(addr)] =
              static_cast<double>(e.ramp_lower + t * e.ramp_stride);
        });
      });
      return v;
    }
    case Expr::Kind::kUnaryMinus: {
      Value v = eval1(*e.lhs, dst, dsec, exec_ctx);
      if (v.is_scalar()) {
        v.scalar = -v.scalar;
        return v;
      }
      transform_section(*v.temp, dsec, [](double x) { return -x; }, exec_ctx);
      return v;
    }
    case Expr::Kind::kBinary: {
      Value a = eval1(*e.lhs, dst, dsec, exec_ctx);
      Value b = eval1(*e.rhs, dst, dsec, exec_ctx);
      const char op = e.op;
      const int line = e.line;
      if (a.is_scalar() && b.is_scalar()) {
        a.scalar = apply_op(op, a.scalar, b.scalar, line);
        return a;
      }
      if (!a.is_scalar() && b.is_scalar()) {
        transform_section(*a.temp, dsec,
                          [&](double x) { return apply_op(op, x, b.scalar, line); },
                          exec_ctx);
        return a;
      }
      if (a.is_scalar() && !b.is_scalar()) {
        transform_section(*b.temp, dsec,
                          [&](double y) { return apply_op(op, a.scalar, y, line); },
                          exec_ctx);
        return b;
      }
      trace(std::string("  combine local '") + op + "' over " + dsec.to_string());
      exec_ctx.run([&](i64 rank) {
        auto la = a.temp->local(rank);
        auto lb = b.temp->local(rank);
        for_each_owned(*a.temp, dsec, rank, [&](i64, i64 addr) {
          const auto i = static_cast<std::size_t>(addr);
          la[i] = apply_op(op, la[i], lb[i], line);
        });
      });
      release_temp(std::move(b.temp));
      return a;
    }
  }
  throw dsl_error("bad expression", e.line);
}

Machine::Value Machine::evaln(const Expr& e, const MultiDimArray<double>& dst,
                              const Region& dregion, const SpmdExecutor& exec_ctx) {
  switch (e.kind) {
    case Expr::Kind::kScalar:
    case Expr::Kind::kScalarVar:
    case Expr::Kind::kReduce: {
      Value v;
      v.scalar = eval_scalar(e, e.line);
      return v;
    }
    case Expr::Kind::kShift:
      throw dsl_error("cshift/eoshift are not supported for multidimensional arrays",
                      e.line);
    case Expr::Kind::kRamp:
      throw dsl_error("forall is not supported for multidimensional arrays", e.line);
    case Expr::Kind::kSection: {
      const ArrayInfo& info = lookup(e.section.array, e.line);
      if (info.is_1d())
        throw dsl_error("cannot mix array dimensionalities in one statement", e.line);
      const MultiDimArray<double>& src = *info.dn;
      const Region sregion = make_region(e.section, src);
      if (sregion.size() != dregion.size())
        throw dsl_error("operand dimensionality mismatch", e.line);
      for (std::size_t d = 0; d < sregion.size(); ++d)
        if (sregion[d].size() != dregion[d].size())
          throw dsl_error("section extent mismatch in dimension " + std::to_string(d),
                          e.line);
      if (src.mapping().grid().rank_count() != dst.mapping().grid().rank_count())
        throw dsl_error("arrays in one statement must share a processor arrangement", e.line);
      Value v;
      v.temp_nd = std::make_unique<MultiDimArray<double>>(dst.mapping());
      copy_region(src, sregion, *v.temp_nd, dregion, exec_ctx);
      return v;
    }
    case Expr::Kind::kUnaryMinus: {
      Value v = evaln(*e.lhs, dst, dregion, exec_ctx);
      if (v.is_scalar()) {
        v.scalar = -v.scalar;
        return v;
      }
      transform_region(*v.temp_nd, dregion, [](double x) { return -x; }, exec_ctx);
      return v;
    }
    case Expr::Kind::kBinary: {
      Value a = evaln(*e.lhs, dst, dregion, exec_ctx);
      Value b = evaln(*e.rhs, dst, dregion, exec_ctx);
      const char op = e.op;
      const int line = e.line;
      if (a.is_scalar() && b.is_scalar()) {
        a.scalar = apply_op(op, a.scalar, b.scalar, line);
        return a;
      }
      if (!a.is_scalar() && b.is_scalar()) {
        transform_region(*a.temp_nd, dregion,
                         [&](double x) { return apply_op(op, x, b.scalar, line); },
                         exec_ctx);
        return a;
      }
      if (a.is_scalar() && !b.is_scalar()) {
        transform_region(*b.temp_nd, dregion,
                         [&](double y) { return apply_op(op, a.scalar, y, line); },
                         exec_ctx);
        return b;
      }
      exec_ctx.run([&](i64 rank) {
        auto la = a.temp_nd->local(rank);
        auto lb = b.temp_nd->local(rank);
        for_each_owned_region(*a.temp_nd, dregion, rank,
                              [&](const std::vector<i64>&, i64 addr) {
                                const auto i = static_cast<std::size_t>(addr);
                                la[i] = apply_op(op, la[i], lb[i], line);
                              });
      });
      return a;
    }
  }
  throw dsl_error("bad expression", e.line);
}

void Machine::exec(const AssignStmt& s) {
  if (tier_ == Tier::kBytecode && jit().try_assign(s)) return;
  ArrayInfo& info = lookup(s.target.array, s.line);
  if (info.is_1d()) {
    DistributedArray<double>& dst = *info.d1;
    const RegularSection dsec = make_section(s.target, dst);
    trace("assign " + s.target.array + dsec.to_string());
    const SpmdExecutor exec_ctx(dst.dist().procs(), mode_);
    Value v = eval1(*s.value, dst, dsec, exec_ctx);
    if (v.is_scalar()) {
      trace("  fill scalar");
      fill_section(dst, dsec, v.scalar, exec_ctx);
      return;
    }
    trace("  store local from temp");
    exec_ctx.run([&](i64 rank) {
      auto out = dst.local(rank);
      auto in = v.temp->local(rank);
      for_each_owned(dst, dsec, rank, [&](i64, i64 addr) {
        out[static_cast<std::size_t>(addr)] = in[static_cast<std::size_t>(addr)];
      });
    });
    release_temp(std::move(v.temp));
    return;
  }

  MultiDimArray<double>& dst = *info.dn;
  const Region dregion = make_region(s.target, dst);
  const SpmdExecutor exec_ctx(dst.mapping().grid().rank_count(), mode_);
  Value v = evaln(*s.value, dst, dregion, exec_ctx);
  if (v.is_scalar()) {
    fill_region(dst, dregion, v.scalar, exec_ctx);
    return;
  }
  exec_ctx.run([&](i64 rank) {
    auto out = dst.local(rank);
    auto in = v.temp_nd->local(rank);
    for_each_owned_region(dst, dregion, rank, [&](const std::vector<i64>&, i64 addr) {
      out[static_cast<std::size_t>(addr)] = in[static_cast<std::size_t>(addr)];
    });
  });
}

void Machine::exec(const ScalarAssignStmt& s) {
  if (tier_ == Tier::kBytecode && jit().try_scalar_assign(s)) return;
  scalars_[s.name] = eval_scalar(*s.value, s.line);
}

void Machine::exec(const RedistributeStmt& s) {
  const auto it = arrays_.find(s.array);
  if (it == arrays_.end()) throw dsl_error("unknown array '" + s.array + "'", s.line);
  if (!it->second.is_1d())
    throw dsl_error("redistribute supports one-dimensional arrays", s.line);
  const auto pr = procs_.find(s.procs);
  if (pr == procs_.end())
    throw dsl_error("unknown processor arrangement '" + s.procs + "'", s.line);
  if (pr->second.size() != 1)
    throw dsl_error("redistribute target must be a 1-D processor arrangement", s.line);
  DistributedArray<double>& old = *it->second.d1;
  const i64 p = pr->second[0];
  if (p != old.dist().procs())
    throw dsl_error("redistribute cannot change the processor count", s.line);

  BlockCyclic new_dist = old.dist();
  switch (s.kind) {
    case DistClause::Kind::kCyclicK:
      if (s.block < 1) throw dsl_error("block size must be positive", s.line);
      new_dist = BlockCyclic(p, s.block);
      break;
    case DistClause::Kind::kCyclic:
      new_dist = BlockCyclic::cyclic(p);
      break;
    case DistClause::Kind::kBlock:
      new_dist = BlockCyclic::block(old.size(), p);
      break;
  }
  trace("redistribute " + s.array + " -> cyclic(" + std::to_string(new_dist.block_size()) +
        ") [index-free symmetric copy of " + std::to_string(old.size()) + " elements]");
  auto fresh = std::make_unique<DistributedArray<double>>(new_dist, old.size());
  const RegularSection whole{0, old.size() - 1, 1};
  const SpmdExecutor exec_ctx(p, mode_);
  symmetric_copy_section(old, whole, *fresh, whole, exec_ctx);
  it->second.d1 = std::move(fresh);
  it->second.tmpl.clear();  // the array now lives on an anonymous template
}

void Machine::exec(const WhereStmt& s) {
  if (tier_ == Tier::kBytecode && jit().try_where(s)) return;
  ArrayInfo& info = lookup(s.target.array, s.line);
  if (!info.is_1d())
    throw dsl_error("where supports one-dimensional arrays", s.line);
  DistributedArray<double>& dst = *info.d1;
  const RegularSection dsec = make_section(s.target, dst);
  const SpmdExecutor exec_ctx(dst.dist().procs(), mode_);

  const auto holds = [&](double x, double y) -> bool {
    if (s.relop == "<") return x < y;
    if (s.relop == ">") return x > y;
    if (s.relop == "<=") return x <= y;
    if (s.relop == ">=") return x >= y;
    if (s.relop == "==") return x == y;
    return x != y;  // "!="
  };

  // Evaluate both mask operands and the value against the target section.
  Value ml = eval1(*s.mask_lhs, dst, dsec, exec_ctx);
  Value mr = eval1(*s.mask_rhs, dst, dsec, exec_ctx);
  Value v = eval1(*s.value, dst, dsec, exec_ctx);

  exec_ctx.run([&](i64 rank) {
    auto out = dst.local(rank);
    auto lml = ml.is_scalar() ? std::span<double>() : ml.temp->local(rank);
    auto lmr = mr.is_scalar() ? std::span<double>() : mr.temp->local(rank);
    auto lv = v.is_scalar() ? std::span<double>() : v.temp->local(rank);
    for_each_owned(dst, dsec, rank, [&](i64, i64 addr) {
      const auto i = static_cast<std::size_t>(addr);
      const double x = ml.is_scalar() ? ml.scalar : lml[i];
      const double y = mr.is_scalar() ? mr.scalar : lmr[i];
      if (holds(x, y)) out[i] = v.is_scalar() ? v.scalar : lv[i];
    });
  });
  release_temp(std::move(ml.temp));
  release_temp(std::move(mr.temp));
  release_temp(std::move(v.temp));
}

void Machine::exec(const RepeatStmt& s) {
  for (i64 c = 0; c < s.count; ++c) run(*s.body);
}

void Machine::exec(const PrintStmt& s) {
  std::ostringstream ss;
  if (s.is_scalar) {
    const auto it = scalars_.find(s.name);
    if (it == scalars_.end()) throw dsl_error("unknown scalar '" + s.name + "'", s.line);
    ss << s.name << " = " << it->second << '\n';
    output_ += ss.str();
    return;
  }
  const ArrayInfo& info = lookup(s.section.array, s.line);
  if (info.is_1d()) {
    const DistributedArray<double>& arr = *info.d1;
    const RegularSection sec = make_section(s.section, arr);
    ss << s.section.array << sec.to_string() << " =";
    for (i64 t = 0; t < sec.size(); ++t) ss << ' ' << arr.get(sec.element(t));
    ss << '\n';
    output_ += ss.str();
    return;
  }
  const MultiDimArray<double>& arr = *info.dn;
  const Region region = make_region(s.section, arr);
  ss << s.section.array << '(';
  for (std::size_t d = 0; d < region.size(); ++d) {
    if (d) ss << ", ";
    ss << region[d].lower << ':' << region[d].upper << ':' << region[d].stride;
  }
  ss << ") =";
  // Row-major walk of the region (last dimension fastest), one line per
  // leading-dimension slice for 2-D arrays.
  std::vector<i64> pos(region.size(), 0);
  std::vector<i64> index(region.size());
  while (true) {
    if (region.size() == 2 && pos[1] == 0) ss << "\n ";
    for (std::size_t d = 0; d < region.size(); ++d) index[d] = region[d].element(pos[d]);
    ss << ' ' << arr.get(index);
    std::size_t d = region.size();
    bool done = true;
    while (d-- > 0) {
      if (++pos[d] < region[d].size()) {
        done = false;
        break;
      }
      pos[d] = 0;
      if (d == 0) break;
    }
    if (done) break;
  }
  ss << '\n';
  output_ += ss.str();
}

void Machine::exec(const ExplainStmt& s) {
  if (s.value) {
    // explain A(sec) = expr: show the bytecode tier's compilation of the
    // statement (or report the fallback) without executing it.
    const std::string listing = jit().listing_for(s.section, *s.value, s.line);
    if (listing.empty()) {
      output_ +=
          "explain " + s.section.array + ": statement falls back to the interpreter tier\n";
    } else {
      output_ += listing;
    }
    return;
  }
  const ArrayInfo& info = lookup(s.section.array, s.line);
  if (!info.is_1d()) {
    // Multidimensional arrays factor into one 1-D access problem per
    // dimension (paper, Section 2); dump each dimension's patterns per
    // grid coordinate.
    const MultiDimArray<double>& arr = *info.dn;
    const Region region = make_region(s.section, arr);
    std::ostringstream ss;
    ss << "explain " << s.section.array << " (" << arr.dims()
       << "-D; per-dimension patterns):\n";
    for (std::size_t d = 0; d < arr.dims(); ++d) {
      const DimMapping& dm = arr.mapping().dim(d);
      const RegularSection image = dm.align.image(region[d]).ascending();
      ss << " dim " << d << " " << region[d].to_string() << " over cyclic("
         << dm.dist.block_size() << ") x " << dm.dist.procs() << ", dispatch "
         << address_strategy_name(AddressEngine::classify(dm.dist, image.stride))
         << ", kernel " << kernel_class_name(kernel_class_for(dm.dist, image.stride))
         << ":\n";
      for (i64 c = 0; c < dm.dist.procs(); ++c) {
        const SectionPlan plan = AddressEngine::global().plan(dm.dist, image, c);
        if (plan.empty()) {
          ss << "   coord " << c << ": no elements\n";
          continue;
        }
        const AccessPattern pat = plan.make_pattern();
        ss << "   coord " << c << ": start cell " << pat.start_global << " local "
           << pat.start_local << ", period " << pat.length << ", AM = [";
        for (std::size_t i = 0; i < pat.gaps.size(); ++i)
          ss << (i ? ", " : "") << pat.gaps[i];
        ss << "]\n";
      }
    }
    output_ += ss.str();
    return;
  }
  const DistributedArray<double>& arr = *info.d1;
  const RegularSection sec = make_section(s.section, arr);
  const BlockCyclic& dist = arr.dist();
  std::ostringstream ss;
  ss << "explain " << s.section.array << sec.to_string() << " on " << dist.procs()
     << " processors [cyclic(" << dist.block_size() << ")], dispatch "
     << address_strategy_name(AddressEngine::classify(dist, sec.stride * arr.alignment().a))
     << ", kernel "
     << kernel_class_name(kernel_class_for(dist, sec.stride * arr.alignment().a)) << ":\n";
  for (i64 m = 0; m < dist.procs(); ++m) {
    const AlignedAccessPattern pat =
        compute_aligned_pattern(dist, arr.alignment(), arr.size(), sec, m);
    if (pat.empty() || !sec.contains(pat.start_array_index)) {
      ss << "  proc " << m << ": no elements\n";
      continue;
    }
    ss << "  proc " << m << ": start " << s.section.array << "(" << pat.start_array_index
       << ") local " << pat.start_packed_local << ", period " << pat.length << ", AM = [";
    for (std::size_t i = 0; i < pat.gaps.size(); ++i) ss << (i ? ", " : "") << pat.gaps[i];
    ss << "]\n";
  }
  output_ += ss.str();
}

}  // namespace cyclick::dsl
