#include "cyclick/compiler/parser.hpp"

namespace cyclick::dsl {
namespace {

// Index variable expected in the d-th alignment subscript: i, j, k, m, n.
const char* kDimVars[] = {"i", "j", "k", "m", "n"};
constexpr std::size_t kMaxDims = sizeof(kDimVars) / sizeof(kDimVars[0]);

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Program parse_program() {
    Program prog;
    skip_newlines();
    while (peek().kind != TokKind::kEnd) {
      prog.statements.push_back(parse_statement());
      expect_separator();
      skip_newlines();
    }
    return prog;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead < toks_.size() ? pos_ + ahead : toks_.size() - 1;
    return toks_[i];
  }
  const Token& advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }

  bool check(TokKind kind) const { return peek().kind == kind; }
  bool match(TokKind kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }
  const Token& expect(TokKind kind, const char* what) {
    if (!check(kind)) throw dsl_error(std::string("expected ") + what, peek().line);
    return advance();
  }
  void expect_separator() {
    if (!check(TokKind::kEnd)) expect(TokKind::kNewline, "end of statement");
  }
  void skip_newlines() {
    while (match(TokKind::kNewline)) {
    }
  }
  bool is_keyword(const char* kw) const {
    return check(TokKind::kIdent) && peek().text == kw;
  }
  i64 expect_number(const char* what) { return expect(TokKind::kNumber, what).value; }
  std::string expect_ident(const char* what) {
    return expect(TokKind::kIdent, what).text;
  }
  i64 parse_signed_number(const char* what) {
    i64 sign = 1;
    if (match(TokKind::kMinus)) sign = -1;
    return sign * expect_number(what);
  }

  /// "( n {, n} )" — positive extents of processors/templates/arrays.
  std::vector<i64> parse_extents(const char* what) {
    expect(TokKind::kLParen, "'('");
    std::vector<i64> extents;
    do {
      extents.push_back(expect_number(what));
    } while (match(TokKind::kComma));
    expect(TokKind::kRParen, "')'");
    if (extents.size() > kMaxDims)
      throw dsl_error("too many dimensions (max " + std::to_string(kMaxDims) + ")",
                      peek().line);
    return extents;
  }

  Statement parse_statement() {
    const int line = peek().line;
    if (is_keyword("processors")) return parse_processors(line);
    if (is_keyword("template")) return parse_template(line);
    if (is_keyword("distribute")) return parse_distribute(line);
    if (is_keyword("array")) return parse_array(line);
    if (is_keyword("print")) return parse_print(line);
    if (is_keyword("explain")) return parse_explain(line);
    if (is_keyword("redistribute")) return parse_redistribute(line);
    if (is_keyword("forall")) return parse_forall(line);
    if (is_keyword("where")) return parse_where(line);
    if (is_keyword("repeat")) return parse_repeat(line);
    if (check(TokKind::kIdent)) {
      // IDENT '(' ... -> section assignment; IDENT '=' ... -> scalar.
      if (peek(1).kind == TokKind::kAssign) return parse_scalar_assignment(line);
      return parse_assignment(line);
    }
    throw dsl_error("expected a statement", line);
  }

  Statement parse_processors(int line) {
    advance();  // 'processors'
    ProcsDecl d;
    d.line = line;
    d.name = expect_ident("processor arrangement name");
    d.extents = parse_extents("processor count");
    return d;
  }

  Statement parse_template(int line) {
    advance();  // 'template'
    TemplateDecl d;
    d.line = line;
    d.name = expect_ident("template name");
    d.extents = parse_extents("template size");
    return d;
  }

  DistClause parse_dist_clause() {
    DistClause c;
    if (is_keyword("cyclic")) {
      advance();
      if (match(TokKind::kLParen)) {
        c.kind = DistClause::Kind::kCyclicK;
        c.block = expect_number("block size");
        expect(TokKind::kRParen, "')'");
      } else {
        c.kind = DistClause::Kind::kCyclic;
      }
    } else if (is_keyword("block")) {
      advance();
      c.kind = DistClause::Kind::kBlock;
    } else {
      throw dsl_error("expected 'cyclic', 'cyclic(k)', or 'block'", peek().line);
    }
    return c;
  }

  Statement parse_distribute(int line) {
    advance();  // 'distribute'
    DistributeDecl d;
    d.line = line;
    d.tmpl = expect_ident("template name");
    if (!is_keyword("onto")) throw dsl_error("expected 'onto'", peek().line);
    advance();
    d.procs = expect_ident("processor arrangement name");
    // One clause per template dimension, whitespace-separated.
    d.clauses.push_back(parse_dist_clause());
    while (is_keyword("cyclic") || is_keyword("block")) d.clauses.push_back(parse_dist_clause());
    return d;
  }

  Statement parse_array(int line) {
    advance();  // 'array'
    ArrayDecl d;
    d.line = line;
    d.name = expect_ident("array name");
    d.extents = parse_extents("array size");
    if (!is_keyword("align")) throw dsl_error("expected 'align with <template>(...)'", peek().line);
    advance();
    if (!is_keyword("with")) throw dsl_error("expected 'with'", peek().line);
    advance();
    d.tmpl = expect_ident("template name");
    expect(TokKind::kLParen, "'('");
    for (std::size_t dim = 0; dim < d.extents.size(); ++dim) {
      if (dim > 0) expect(TokKind::kComma, "','");
      AlignTerm term;
      parse_affine(term.a, term.b, kDimVars[dim]);
      d.align.push_back(term);
    }
    expect(TokKind::kRParen, "')'");
    return d;
  }

  // Affine subscript in a single index variable `var`, e.g. "i", "2*i",
  // "2*i+1", "i-3", "-i+99", "3+i".
  void parse_affine(i64& a, i64& b, const char* var) {
    a = 0;
    b = 0;
    bool first = true;
    while (true) {
      i64 sign = 1;
      if (match(TokKind::kMinus)) {
        sign = -1;
      } else if (match(TokKind::kPlus)) {
        sign = 1;
      } else if (!first) {
        break;  // no more terms
      }
      first = false;
      if (check(TokKind::kNumber)) {
        const i64 v = advance().value;
        if (match(TokKind::kStar)) {
          const std::string got = expect_ident("index variable");
          if (got != var)
            throw dsl_error(std::string("alignment index variable must be '") + var + "'",
                            peek().line);
          a += sign * v;
        } else {
          b += sign * v;
        }
      } else if (check(TokKind::kIdent)) {
        const std::string got = advance().text;
        if (got != var)
          throw dsl_error(std::string("alignment index variable must be '") + var + "'",
                          peek().line);
        a += sign;
      } else {
        throw dsl_error("expected affine term", peek().line);
      }
    }
  }

  Statement parse_print(int line) {
    advance();  // 'print'
    PrintStmt s;
    s.line = line;
    if (check(TokKind::kIdent) && peek(1).kind != TokKind::kLParen) {
      s.is_scalar = true;
      s.name = expect_ident("scalar name");
    } else {
      s.section = parse_section_ref();
    }
    return s;
  }

  // explain A(l:u:s)            access-pattern dump
  // explain A(l:u:s) = expr     bytecode-tier disassembly of the statement
  Statement parse_explain(int line) {
    advance();  // 'explain'
    ExplainStmt s;
    s.line = line;
    s.section = parse_section_ref();
    if (match(TokKind::kAssign)) s.value = parse_expr();
    return s;
  }

  Statement parse_redistribute(int line) {
    advance();  // 'redistribute'
    RedistributeStmt s;
    s.line = line;
    s.array = expect_ident("array name");
    if (!is_keyword("onto")) throw dsl_error("expected 'onto'", peek().line);
    advance();
    s.procs = expect_ident("processor arrangement name");
    const DistClause c = parse_dist_clause();
    s.kind = c.kind;
    s.block = c.block;
    return s;
  }

  // repeat N <newline> { statements } end
  Statement parse_repeat(int line) {
    advance();  // 'repeat'
    RepeatStmt s;
    s.line = line;
    s.count = expect_number("repeat count");
    if (s.count < 0) throw dsl_error("repeat count must be nonnegative", line);
    expect_separator();
    skip_newlines();
    s.body = std::make_unique<Program>();
    while (!is_keyword("end")) {
      if (check(TokKind::kEnd)) throw dsl_error("unterminated repeat block", line);
      s.body->statements.push_back(parse_statement());
      expect_separator();
      skip_newlines();
    }
    advance();  // 'end'
    return s;
  }

  Statement parse_assignment(int line) {
    AssignStmt s;
    s.line = line;
    s.target = parse_section_ref();
    expect(TokKind::kAssign, "'='");
    s.value = parse_expr();
    return s;
  }

  // forall (i = l:u[:s]) A(a*i+b) = expr
  //
  // Normalized at parse time into an ordinary section assignment (the
  // classic HPF FORALL lowering): the affine target subscript becomes the
  // section (a*l+b : a*u+b : a*s); affine array references inside the body
  // become matching sections; a bare use of the index variable becomes a
  // ramp expression whose t-th element is the index value l + t*s.
  Statement parse_forall(int line) {
    advance();  // 'forall'
    expect(TokKind::kLParen, "'('");
    forall_var_ = expect_ident("forall index variable");
    expect(TokKind::kAssign, "'='");
    forall_range_ = parse_triplet();
    if (forall_range_.stride == 0) throw dsl_error("forall stride must be nonzero", line);
    expect(TokKind::kRParen, "')'");

    AssignStmt s;
    s.line = line;
    s.target.line = line;
    s.target.array = expect_ident("array name");
    expect(TokKind::kLParen, "'('");
    i64 a = 0, b = 0;
    parse_affine(a, b, forall_var_.c_str());
    expect(TokKind::kRParen, "')'");
    if (a == 0)
      throw dsl_error("forall target subscript must depend on the index variable", line);
    s.target.subs.push_back(affine_triplet(a, b));
    expect(TokKind::kAssign, "'='");
    s.value = parse_expr();
    forall_var_.clear();
    return s;
  }

  /// The section a*i+b traces as i runs over the forall range.
  Triplet affine_triplet(i64 a, i64 b) const {
    return Triplet{a * forall_range_.lower + b, a * forall_range_.upper + b,
                   a * forall_range_.stride};
  }

  // where (exprL <relop> exprR) A(l:u:s) = expr
  Statement parse_where(int line) {
    advance();  // 'where'
    expect(TokKind::kLParen, "'('");
    WhereStmt s;
    s.line = line;
    s.mask_lhs = parse_expr();
    switch (peek().kind) {
      case TokKind::kLess: s.relop = "<"; break;
      case TokKind::kGreater: s.relop = ">"; break;
      case TokKind::kLessEq: s.relop = "<="; break;
      case TokKind::kGreaterEq: s.relop = ">="; break;
      case TokKind::kEqEq: s.relop = "=="; break;
      case TokKind::kNotEq: s.relop = "!="; break;
      default: throw dsl_error("expected a comparison operator", peek().line);
    }
    advance();
    s.mask_rhs = parse_expr();
    expect(TokKind::kRParen, "')'");
    s.target = parse_section_ref();
    expect(TokKind::kAssign, "'='");
    s.value = parse_expr();
    return s;
  }

  Statement parse_scalar_assignment(int line) {
    ScalarAssignStmt s;
    s.line = line;
    s.name = expect_ident("scalar name");
    expect(TokKind::kAssign, "'='");
    s.value = parse_expr();
    return s;
  }

  Triplet parse_triplet() {
    Triplet t;
    t.lower = parse_signed_number("section lower bound");
    expect(TokKind::kColon, "':'");
    t.upper = parse_signed_number("section upper bound");
    if (match(TokKind::kColon)) {
      t.stride = parse_signed_number("section stride");
    } else {
      t.stride = 1;
    }
    return t;
  }

  SectionRef parse_section_ref() {
    SectionRef ref;
    ref.line = peek().line;
    ref.array = expect_ident("array name");
    expect(TokKind::kLParen, "'('");
    do {
      ref.subs.push_back(parse_triplet());
    } while (match(TokKind::kComma));
    expect(TokKind::kRParen, "')'");
    if (ref.subs.size() > kMaxDims)
      throw dsl_error("too many dimensions (max " + std::to_string(kMaxDims) + ")",
                      ref.line);
    return ref;
  }

  ExprPtr parse_expr() {
    ExprPtr lhs = parse_term();
    while (check(TokKind::kPlus) || check(TokKind::kMinus)) {
      const char op = advance().text[0];
      ExprPtr node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = op;
      node->line = lhs->line;
      node->lhs = std::move(lhs);
      node->rhs = parse_term();
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_term() {
    ExprPtr lhs = parse_factor();
    while (check(TokKind::kStar) || check(TokKind::kSlash)) {
      const char op = advance().text[0];
      ExprPtr node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = op;
      node->line = lhs->line;
      node->lhs = std::move(lhs);
      node->rhs = parse_factor();
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_factor() {
    const int line = peek().line;
    if (match(TokKind::kMinus)) {
      ExprPtr node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kUnaryMinus;
      node->line = line;
      node->lhs = parse_factor();
      return node;
    }
    if (match(TokKind::kLParen)) {
      ExprPtr inner = parse_expr();
      expect(TokKind::kRParen, "')'");
      return inner;
    }
    if (check(TokKind::kNumber)) {
      ExprPtr node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kScalar;
      node->scalar = static_cast<double>(advance().value);
      node->line = line;
      return node;
    }
    if (check(TokKind::kIdent)) {
      ExprPtr node = std::make_unique<Expr>();
      node->line = line;
      const std::string& word = peek().text;
      if (!forall_var_.empty()) {
        // Inside a forall body: a bare index variable is a ramp; a
        // parenthesized reference is an affine-subscripted element.
        if (word == forall_var_ && peek(1).kind != TokKind::kLParen) {
          advance();
          node->kind = Expr::Kind::kRamp;
          node->ramp_lower = forall_range_.lower;
          node->ramp_stride = forall_range_.stride;
          return node;
        }
        if (peek(1).kind == TokKind::kLParen) {
          node->kind = Expr::Kind::kSection;
          node->section.line = line;
          node->section.array = advance().text;
          expect(TokKind::kLParen, "'('");
          i64 a = 0, b = 0;
          parse_affine(a, b, forall_var_.c_str());
          expect(TokKind::kRParen, "')'");
          if (a == 0)
            throw dsl_error(
                "forall references must depend on the index variable (constant "
                "subscripts are not supported)",
                line);
          node->section.subs.push_back(affine_triplet(a, b));
          return node;
        }
      }
      if ((word == "cshift" || word == "eoshift") && peek(1).kind == TokKind::kLParen) {
        // cshift(A, 3) | eoshift(A, -2, 0)
        node->kind = Expr::Kind::kShift;
        node->circular = (word == "cshift");
        advance();
        expect(TokKind::kLParen, "'('");
        node->name = expect_ident("array name");
        expect(TokKind::kComma, "','");
        node->shift = parse_signed_number("shift amount");
        if (!node->circular) {
          expect(TokKind::kComma, "','");
          node->scalar = static_cast<double>(parse_signed_number("boundary value"));
        }
        expect(TokKind::kRParen, "')'");
        return node;
      }
      if ((word == "sum" || word == "min" || word == "max") &&
          peek(1).kind == TokKind::kLParen) {
        // Reduction intrinsic over a section — sum(A(l:u:s)), sum(M(l:u, l:u))
        // — or over an elementwise expression: sum(A(0:9) * B(0:9)).
        node->kind = Expr::Kind::kReduce;
        node->reduce_op = word;
        advance();
        expect(TokKind::kLParen, "'('");
        ExprPtr inner = parse_expr();
        expect(TokKind::kRParen, "')'");
        if (inner->kind == Expr::Kind::kSection) {
          node->section = std::move(inner->section);  // bare-section form (1-D or N-D)
        } else {
          node->lhs = std::move(inner);
        }
        return node;
      }
      if (peek(1).kind == TokKind::kLParen) {
        node->kind = Expr::Kind::kSection;
        node->section = parse_section_ref();
        return node;
      }
      node->kind = Expr::Kind::kScalarVar;
      node->name = expect_ident("scalar name");
      return node;
    }
    throw dsl_error("expected expression", line);
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::string forall_var_;  // nonempty while parsing a forall body
  Triplet forall_range_;
};

}  // namespace

Program parse(std::string_view source) { return Parser(lex(source)).parse_program(); }

}  // namespace cyclick::dsl
