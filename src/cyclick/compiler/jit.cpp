// The bytecode tier: statement compiler (AST -> bc::CompiledProgram) and the
// dispatch loop that executes compiled programs over per-rank lane vectors.
//
// Compilation is all-or-nothing: any shape the compiler cannot prove
// equivalent to the interpreter raises BailOut, the ProgramCache records a
// negative entry for the statement key, and the tree walker runs the
// statement. Equivalence here means *bit-identical results*: fused
// superinstructions keep the interpreter's per-element operation sequence
// (this file is built with -ffp-contract=off so no mul+add pair is ever
// contracted into an FMA), reductions fold in the same per-rank
// ascending-cell order reduce_section uses, and runtime errors carry the
// same message and source line the interpreter would report.
#include "cyclick/compiler/jit.hpp"

#include <cstring>
#include <limits>
#include <optional>
#include <sstream>

#include "cyclick/obs/metrics.hpp"
#include "cyclick/obs/trace.hpp"
#include "cyclick/runtime/intrinsics.hpp"
#include "cyclick/runtime/plan_cache.hpp"
#include "cyclick/runtime/section_ops.hpp"

namespace cyclick::dsl {
namespace {

/// Register-file limits. Lane registers are dense per-rank vectors (arena
/// slices), so the cap bounds VM memory at 16 x section elements per rank;
/// statements needing more fall back to the interpreter.
constexpr int kMaxLanes = 16;
constexpr int kMaxSregs = 64;
constexpr int kMaxScratch = 32;

/// Raised for "not bytecode-compilable" (as opposed to dsl_error, which is
/// a real program error the interpreter would also raise).
struct BailOut {};

[[nodiscard]] bool scalar_shape(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kScalar:
    case Expr::Kind::kScalarVar:
    case Expr::Kind::kReduce:
      return true;
    case Expr::Kind::kSection:
    case Expr::Kind::kShift:
    case Expr::Kind::kRamp:
      return false;
    case Expr::Kind::kUnaryMinus:
      return scalar_shape(*e.lhs);
    case Expr::Kind::kBinary:
      return scalar_shape(*e.lhs) && scalar_shape(*e.rhs);
  }
  return false;
}

[[nodiscard]] u8 reduce_code(const std::string& op) {
  if (op == "sum") return bc::kRedSum;
  if (op == "min") return bc::kRedMin;
  if (op == "max") return bc::kRedMax;
  throw BailOut{};
}

[[nodiscard]] i32 relop_code(const std::string& op) {
  if (op == "<") return bc::kLT;
  if (op == ">") return bc::kGT;
  if (op == "<=") return bc::kLE;
  if (op == ">=") return bc::kGE;
  if (op == "==") return bc::kEQ;
  return bc::kNE;
}

}  // namespace

// ---------------------------------------------------------------------------
// Statement compiler
// ---------------------------------------------------------------------------

struct JitCompiler {
  explicit JitCompiler(Machine& machine) : m(machine) {}

  Machine& m;
  bc::CompiledProgram p;
  std::vector<u8> free_lanes;
  std::vector<bool> skonst;  // sreg value known at compile time
  std::vector<double> sval;
  DistributedArray<double>* dst = nullptr;
  std::optional<SpmdExecutor> exec;

  // -- lookup / validation ---------------------------------------------------

  DistributedArray<double>* find1d(const std::string& name) {
    const auto it = m.arrays_.find(name);
    if (it == m.arrays_.end() || !it->second.is_1d()) return nullptr;
    return it->second.d1.get();
  }

  // -- cache keys ------------------------------------------------------------
  //
  // The key pins everything compilation depends on: statement structure,
  // operator characters, literal bits, source lines (so cached runtime
  // errors report the interpreter's line numbers), and — crucially — every
  // referenced array's mapping, so a redistribute makes the statement hash
  // to a different program.

  static void mapping_sig(std::ostringstream& ss, const DistributedArray<double>& a) {
    ss << '[' << a.dist().procs() << ',' << a.dist().block_size() << ',' << a.alignment().a
       << ',' << a.alignment().b << ',' << a.size() << ']';
  }

  static void triplet_sig(std::ostringstream& ss, const SectionRef& ref) {
    ss << '(';
    for (std::size_t d = 0; d < ref.subs.size(); ++d)
      ss << (d ? "," : "") << ref.subs[d].lower << ':' << ref.subs[d].upper << ':'
         << ref.subs[d].stride;
    ss << ')';
  }

  bool key_expr(std::ostringstream& ss, const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kScalar:
        ss << 'c' << std::hexfloat << e.scalar << std::defaultfloat << '@' << e.line << ';';
        return true;
      case Expr::Kind::kScalarVar:
        ss << 'v' << e.name << '@' << e.line << ';';
        return true;
      case Expr::Kind::kSection: {
        const DistributedArray<double>* a = find1d(e.section.array);
        if (a == nullptr) return false;
        ss << 's' << e.section.array;
        mapping_sig(ss, *a);
        triplet_sig(ss, e.section);
        ss << '@' << e.line;
        return true;
      }
      case Expr::Kind::kReduce: {
        if (e.lhs) return false;  // expression reduces only fuse at statement root
        const DistributedArray<double>* a = find1d(e.section.array);
        if (a == nullptr) return false;  // N-D reduces stay on the interpreter
        ss << 'r' << e.reduce_op << e.section.array;
        mapping_sig(ss, *a);
        triplet_sig(ss, e.section);
        ss << '@' << e.line;
        return true;
      }
      case Expr::Kind::kShift: {
        const DistributedArray<double>* a = find1d(e.name);
        if (a == nullptr) return false;
        ss << 'h' << e.name << (e.circular ? 'c' : 'e') << e.shift << ':' << std::hexfloat
           << e.scalar << std::defaultfloat;
        mapping_sig(ss, *a);
        ss << '@' << e.line;
        return true;
      }
      case Expr::Kind::kRamp:
        ss << 'i' << e.ramp_lower << ':' << e.ramp_stride << '@' << e.line << ';';
        return true;
      case Expr::Kind::kUnaryMinus:
        ss << "n{";
        if (!key_expr(ss, *e.lhs)) return false;
        ss << '}';
        return true;
      case Expr::Kind::kBinary:
        ss << 'b' << e.op << '{';
        if (!key_expr(ss, *e.lhs) || !key_expr(ss, *e.rhs)) return false;
        ss << "}@" << e.line;
        return true;
    }
    return false;
  }

  bool key_target(std::ostringstream& ss, const SectionRef& target, int line) {
    const DistributedArray<double>* a = find1d(target.array);
    if (a == nullptr) return false;
    ss << target.array;
    mapping_sig(ss, *a);
    triplet_sig(ss, target);
    ss << '@' << line << '=';
    return true;
  }

  std::optional<std::string> key_assign(const AssignStmt& s) {
    std::ostringstream ss;
    ss << "A|";
    if (!key_target(ss, s.target, s.line)) return std::nullopt;
    if (!key_expr(ss, *s.value)) return std::nullopt;
    return ss.str();
  }

  std::optional<std::string> key_where(const WhereStmt& s) {
    std::ostringstream ss;
    ss << "W|";
    if (!key_target(ss, s.target, s.line)) return std::nullopt;
    ss << s.relop << '{';
    if (!key_expr(ss, *s.mask_lhs)) return std::nullopt;
    ss << "}{";
    if (!key_expr(ss, *s.mask_rhs)) return std::nullopt;
    ss << "}{";
    if (!key_expr(ss, *s.value)) return std::nullopt;
    ss << '}';
    return ss.str();
  }

  std::optional<std::string> key_scalar(const ScalarAssignStmt& s) {
    // Only fused reductions over expressions compile; plain scalar
    // assignments are cheap on the tree walker.
    const Expr& root = *s.value;
    if (root.kind != Expr::Kind::kReduce || !root.lhs) return std::nullopt;
    std::ostringstream ss;
    ss << "S|" << s.name << '@' << s.line << '=' << 'R' << root.reduce_op << '{';
    if (!key_expr(ss, *root.lhs)) return std::nullopt;
    ss << "}@" << root.line;
    return ss.str();
  }

  // -- register allocation ---------------------------------------------------

  u8 new_sreg(double v, bool known) {
    if (p.n_sregs >= kMaxSregs) throw BailOut{};
    const u8 r = static_cast<u8>(p.n_sregs++);
    p.sreg_init.push_back(v);
    skonst.push_back(known);
    sval.push_back(v);
    return r;
  }

  u8 alloc_lane() {
    if (!free_lanes.empty()) {
      const u8 r = free_lanes.back();
      free_lanes.pop_back();
      return r;
    }
    if (p.n_lanes >= kMaxLanes) throw BailOut{};
    return static_cast<u8>(p.n_lanes++);
  }

  void free_lane(u8 r) { free_lanes.push_back(r); }

  i32 add_operand(bc::Operand op) {
    p.operands.push_back(std::move(op));
    return static_cast<i32>(p.operands.size() - 1);
  }

  // -- scalar subtree -> sreg ------------------------------------------------

  u8 compile_scalar(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kScalar:
        return new_sreg(e.scalar, true);
      case Expr::Kind::kScalarVar: {
        const u8 r = new_sreg(0.0, false);
        const i32 aux = add_operand(bc::Operand{.array = e.name, .plan = nullptr});
        p.prelude.push_back(
            bc::Instr{.op = bc::Op::kScalarVar, .a = r, .aux = aux, .line = e.line});
        return r;
      }
      case Expr::Kind::kReduce: {
        if (e.lhs) throw BailOut{};
        const DistributedArray<double>* a = find1d(e.section.array);
        if (a == nullptr) throw BailOut{};
        const RegularSection sec = Machine::make_section(e.section, *a);
        const u8 r = new_sreg(0.0, false);
        const i32 aux = add_operand(bc::Operand{.array = e.section.array, .sec = sec, .plan = nullptr});
        p.prelude.push_back(bc::Instr{.op = bc::Op::kReduceSec,
                                      .a = r,
                                      .b = reduce_code(e.reduce_op),
                                      .aux = aux,
                                      .line = e.line});
        return r;
      }
      case Expr::Kind::kUnaryMinus: {
        const u8 r = compile_scalar(*e.lhs);
        if (skonst[r]) {
          sval[r] = -sval[r];
          p.sreg_init[r] = sval[r];
          return r;
        }
        p.prelude.push_back(bc::Instr{.op = bc::Op::kScalarNeg, .a = r, .line = e.line});
        return r;
      }
      case Expr::Kind::kBinary: {
        const u8 rl = compile_scalar(*e.lhs);
        const u8 rr = compile_scalar(*e.rhs);
        if (skonst[rl] && skonst[rr]) {
          // Compile-time fold; a dsl_error here (division by zero in a
          // literal subtree) aborts compilation and the interpreter raises
          // the identical error at run time.
          const double v = Machine::apply_op(e.op, sval[rl], sval[rr], e.line);
          sval[rl] = v;
          p.sreg_init[rl] = v;
          return rl;
        }
        const u8 r = new_sreg(0.0, false);
        p.prelude.push_back(bc::Instr{
            .op = bc::Op::kScalarBin, .a = r, .b = rl, .c = rr, .x = e.op, .line = e.line});
        return r;
      }
      case Expr::Kind::kSection:
      case Expr::Kind::kShift:
      case Expr::Kind::kRamp:
        throw BailOut{};  // unreachable: callers check scalar_shape first
    }
    throw BailOut{};
  }

  /// True when sreg r is a compile-time constant equal to zero — the case
  /// where a division is *guaranteed* to throw (bail; the interpreter
  /// raises it) — and its complement, guaranteed-nonzero, where the
  /// division can never throw and the store may fuse.
  [[nodiscard]] bool const_zero(u8 r) const { return skonst[r] && sval[r] == 0.0; }
  [[nodiscard]] bool const_nonzero(u8 r) const { return skonst[r] && sval[r] != 0.0; }

  // -- vector subtree -> lane register --------------------------------------

  u8 lane_from_section(const Expr& e) {
    DistributedArray<double>* src = find1d(e.section.array);
    if (src == nullptr) throw BailOut{};
    const RegularSection ssec = Machine::make_section(e.section, *src);
    if (ssec.size() != p.dsec.size()) throw BailOut{};  // interp raises at run time
    if (src->dist().procs() != dst->dist().procs()) throw BailOut{};
    const u8 lane = alloc_lane();
    if (src->dist() == dst->dist() && src->alignment() == dst->alignment() &&
        src->size() == dst->size() && ssec == p.dsec) {
      // Same mapping, same section: every element is already local at the
      // destination address — the lane aliases the source span directly.
      const i32 aux = add_operand(bc::Operand{.array = e.section.array, .sec = ssec, .plan = nullptr});
      p.lanes.push_back(
          bc::Instr{.op = bc::Op::kLaneDirect, .a = lane, .aux = aux, .line = e.line});
      return lane;
    }
    if (p.n_scratch >= kMaxScratch) throw BailOut{};
    const u8 slot = static_cast<u8>(p.n_scratch++);
    auto plan = cached_copy_plan(*src, ssec, *dst, p.dsec, *exec);
    const i32 aux =
        add_operand(bc::Operand{.array = e.section.array, .sec = ssec, .plan = std::move(plan)});
    p.loads.push_back(
        bc::Instr{.op = bc::Op::kLoadSection, .a = slot, .aux = aux, .line = e.line});
    p.lanes.push_back(
        bc::Instr{.op = bc::Op::kLaneScratch, .a = lane, .b = slot, .line = e.line});
    return lane;
  }

  u8 lane_from_shift(const Expr& e) {
    DistributedArray<double>* src = find1d(e.name);
    if (src == nullptr) throw BailOut{};
    const i64 n = src->size();
    if (p.dsec.size() != n) throw BailOut{};  // interp raises at run time
    if (src->dist().procs() != dst->dist().procs()) throw BailOut{};
    if (p.n_scratch >= kMaxScratch) throw BailOut{};
    const u8 slot = static_cast<u8>(p.n_scratch++);
    // The shift lands in an identity-aligned src-distributed temporary, then
    // plan-copies whole-array -> dsec. Using a proxy with exactly the
    // interpreter's temporary mapping means both tiers share one PlanCache
    // entry for this copy.
    DistributedArray<double> proxy(src->dist(), n);
    auto plan = cached_copy_plan(proxy, RegularSection{0, n - 1, 1}, *dst, p.dsec, *exec);
    const i32 aux = add_operand(bc::Operand{.array = e.name,
                                            .shift = e.shift,
                                            .circular = e.circular,
                                            .boundary = e.scalar,
                                            .plan = std::move(plan)});
    p.loads.push_back(
        bc::Instr{.op = bc::Op::kLoadShift, .a = slot, .aux = aux, .line = e.line});
    const u8 lane = alloc_lane();
    p.lanes.push_back(
        bc::Instr{.op = bc::Op::kLaneScratch, .a = lane, .b = slot, .line = e.line});
    return lane;
  }

  /// Splits a `X * s` / `s * X` product node into (vector factor, scalar
  /// factor); null when the node is not such a product. IEEE multiplication
  /// commutes bit-exactly, so either operand order fuses.
  static const Expr* mul_vector_factor(const Expr& e, const Expr** scalar_factor) {
    if (e.kind != Expr::Kind::kBinary || e.op != '*') return nullptr;
    if (!scalar_shape(*e.lhs) && scalar_shape(*e.rhs)) {
      *scalar_factor = e.rhs.get();
      return e.lhs.get();
    }
    if (scalar_shape(*e.lhs) && !scalar_shape(*e.rhs)) {
      *scalar_factor = e.lhs.get();
      return e.rhs.get();
    }
    return nullptr;
  }

  void note_fusion(int line, const std::string& what) {
    p.notes.push_back("line " + std::to_string(line) + ": " + what);
  }

  u8 compile_vec(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kSection:
        return lane_from_section(e);
      case Expr::Kind::kShift:
        return lane_from_shift(e);
      case Expr::Kind::kRamp: {
        const u8 lane = alloc_lane();
        bc::Operand ramp;
        ramp.ramp_lower = e.ramp_lower;
        ramp.ramp_stride = e.ramp_stride;
        const i32 aux = add_operand(std::move(ramp));
        p.lanes.push_back(
            bc::Instr{.op = bc::Op::kLaneRamp, .a = lane, .aux = aux, .line = e.line});
        return lane;
      }
      case Expr::Kind::kUnaryMinus: {
        const u8 r = compile_vec(*e.lhs);
        p.lanes.push_back(bc::Instr{.op = bc::Op::kLaneNeg, .a = r, .line = e.line});
        return r;
      }
      case Expr::Kind::kBinary:
        return compile_binary(e);
      case Expr::Kind::kScalar:
      case Expr::Kind::kScalarVar:
      case Expr::Kind::kReduce:
        throw BailOut{};  // unreachable: callers check scalar_shape first
    }
    throw BailOut{};
  }

  u8 compile_binary(const Expr& e) {
    const bool ls = scalar_shape(*e.lhs);
    const bool rs = scalar_shape(*e.rhs);

    // --- fused superinstructions -------------------------------------------
    // (X + Y) / s  ->  adddiv.vvs : the jacobi/stencil-average shape.
    if (e.op == '/' && rs && !ls && e.lhs->kind == Expr::Kind::kBinary &&
        e.lhs->op == '+' && !scalar_shape(*e.lhs->lhs) && !scalar_shape(*e.lhs->rhs)) {
      const u8 x = compile_vec(*e.lhs->lhs);
      const u8 y = compile_vec(*e.lhs->rhs);
      const u8 s = compile_scalar(*e.rhs);
      if (const_zero(s)) throw BailOut{};
      if (!const_nonzero(s)) p.lanes_may_throw = true;
      p.lanes.push_back(bc::Instr{
          .op = bc::Op::kAddDivVVS, .a = x, .b = s, .c = y, .line = e.line});
      free_lane(y);
      note_fusion(e.line, "fused add+divide (stencil average): one pass over the lanes");
      return x;
    }
    // X*s + Y / Y + X*s / X*s - Y  ->  muladd.vsv / mulsub.vsv (copy+axpy),
    // X*s + c / c + X*s            ->  muladd.vss (fill+transform).
    if ((e.op == '+' || e.op == '-') && !(ls && rs)) {
      const Expr* sc = nullptr;
      const Expr* xv = ls ? nullptr : mul_vector_factor(*e.lhs, &sc);
      const Expr* other = e.rhs.get();
      if (xv == nullptr && e.op == '+' && !rs) {
        // addition commutes bit-exactly: try the product on the right.
        xv = mul_vector_factor(*e.rhs, &sc);
        other = e.lhs.get();
      }
      if (xv != nullptr) {
        if (scalar_shape(*other)) {
          const u8 x = compile_vec(*xv);
          const u8 s = compile_scalar(*sc);
          const u8 c = compile_scalar(*other);
          if (e.op == '+') {
            p.lanes.push_back(bc::Instr{
                .op = bc::Op::kMulAddVSS, .a = x, .b = s, .c = c, .line = e.line});
            note_fusion(e.line, "fused multiply+add-scalar (fill+transform): one pass");
            return x;
          }
          // X*s - c: negate the constant and reuse the same superinstruction
          // only when c is a compile-time literal (x - c == x + (-c) exactly).
          if (skonst[c]) {
            sval[c] = -sval[c];
            p.sreg_init[c] = sval[c];
            p.lanes.push_back(bc::Instr{
                .op = bc::Op::kMulAddVSS, .a = x, .b = s, .c = c, .line = e.line});
            note_fusion(e.line, "fused multiply+subtract-scalar: one pass");
            return x;
          }
          p.lanes.push_back(
              bc::Instr{.op = bc::Op::kMulVS, .a = x, .b = s, .line = e.line});
          p.lanes.push_back(
              bc::Instr{.op = bc::Op::kSubVS, .a = x, .b = c, .line = e.line});
          return x;
        }
        const u8 x = compile_vec(*xv);
        const u8 s = compile_scalar(*sc);
        const u8 y = compile_vec(*other);
        p.lanes.push_back(
            bc::Instr{.op = e.op == '+' ? bc::Op::kMulAddVSV : bc::Op::kMulSubVSV,
                      .a = x,
                      .b = s,
                      .c = y,
                      .line = e.line});
        free_lane(y);
        note_fusion(e.line, "fused multiply+add (copy+axpy): one pass over the lanes");
        return x;
      }
    }

    // --- generic lowering ---------------------------------------------------
    if (!ls && !rs) {
      const u8 a = compile_vec(*e.lhs);
      const u8 b = compile_vec(*e.rhs);
      bc::Op op = bc::Op::kAddVV;
      switch (e.op) {
        case '+': op = bc::Op::kAddVV; break;
        case '-': op = bc::Op::kSubVV; break;
        case '*': op = bc::Op::kMulVV; break;
        case '/':
          op = bc::Op::kDivVV;
          p.lanes_may_throw = true;
          break;
        default: throw BailOut{};
      }
      p.lanes.push_back(bc::Instr{.op = op, .a = a, .b = b, .line = e.line});
      free_lane(b);
      return a;
    }
    if (!ls && rs) {
      const u8 a = compile_vec(*e.lhs);
      const u8 s = compile_scalar(*e.rhs);
      bc::Op op = bc::Op::kAddVS;
      switch (e.op) {
        case '+': op = bc::Op::kAddVS; break;
        case '-': op = bc::Op::kSubVS; break;
        case '*': op = bc::Op::kMulVS; break;
        case '/':
          op = bc::Op::kDivVS;
          if (const_zero(s)) throw BailOut{};
          if (!const_nonzero(s)) p.lanes_may_throw = true;
          break;
        default: throw BailOut{};
      }
      p.lanes.push_back(bc::Instr{.op = op, .a = a, .b = s, .line = e.line});
      return a;
    }
    // scalar op vector: + and * commute bit-exactly onto the vs forms;
    // - and / need the swapped-operand instructions.
    const u8 s = compile_scalar(*e.lhs);
    const u8 a = compile_vec(*e.rhs);
    bc::Op op = bc::Op::kAddVS;
    switch (e.op) {
      case '+': op = bc::Op::kAddVS; break;
      case '*': op = bc::Op::kMulVS; break;
      case '-': op = bc::Op::kSubSV; break;
      case '/':
        op = bc::Op::kDivSV;
        p.lanes_may_throw = true;  // any lane element may be zero
        break;
      default: throw BailOut{};
    }
    p.lanes.push_back(bc::Instr{.op = op, .a = a, .b = s, .line = e.line});
    return a;
  }

  // -- statement entry points ------------------------------------------------

  void open_target(const std::string& array, const SectionRef& section) {
    dst = find1d(array);
    if (dst == nullptr || !dst->alignment().is_identity()) throw BailOut{};
    p.dsec = Machine::make_section(section, *dst);
    p.target = array;
    p.ranks = dst->dist().procs();
    p.lane_count = p.dsec.size();
    exec.emplace(p.ranks, m.mode_);
  }

  void build_kernels() {
    for (i64 r = 0; r < p.ranks; ++r) {
      SectionPlan sp = owned_plan(*dst, p.dsec, r);
      p.kernels.push_back(compile_kernel(sp));
      p.plans.push_back(std::move(sp));
    }
  }

  /// True when `in` writes lane register `r`'s backing buffer. kLaneDirect
  /// and kLaneScratch are excluded: in dense-run mode they only re-point the
  /// register at a source span, and fusion is a dense-run-only rewrite.
  [[nodiscard]] static bool writes_lane_buf(const bc::Instr& in, u8 r) {
    if (in.a != r) return false;
    return in.op == bc::Op::kLaneRamp ||
           (in.op >= bc::Op::kLaneNeg && in.op <= bc::Op::kMulAddVSS);
  }

  void finalize_store(u8 store_reg) {
    p.store_reg = store_reg;
    build_kernels();
    if (p.lanes_may_throw) return;
    // Store fusion redirects EVERY buffer write of the store register into
    // the destination span, so intermediate results become visible through
    // any kLaneDirect alias of the target before the statement completes
    // (A = B + C + A would read back B+C instead of A). It preserves the
    // interpreter's evaluate-whole-RHS-then-store semantics only when
    //   (a) the sole buffer write to the store register is the root pass —
    //       the last lane instruction before the terminal: everything
    //       reading the target runs before or inside that pass, sees its
    //       pristine values, and the root's same-index read-then-write
    //       aliasing within one element-wise loop is safe; or
    //   (b) no lane instruction aliases the target at all, so intermediates
    //       parked in the span are never observed.
    int writers = 0;
    std::size_t last_writer = 0;
    bool reads_target = false;
    const std::size_t body = p.lanes.size() - 1;  // exclude the terminal
    for (std::size_t i = 0; i < body; ++i) {
      const bc::Instr& in = p.lanes[i];
      if (writes_lane_buf(in, store_reg)) {
        ++writers;
        last_writer = i;
      }
      if (in.op == bc::Op::kLaneDirect &&
          p.operands[static_cast<std::size_t>(in.aux)].array == p.target)
        reads_target = true;
    }
    if (writers == 0) return;
    const bool sole_root_writer = writers == 1 && last_writer == body - 1;
    if (!sole_root_writer && reads_target) return;
    p.store_fused = true;
    p.notes.push_back("store fused into the final arithmetic pass (dense runs)");
  }

  std::shared_ptr<const bc::CompiledProgram> take() {
    return std::make_shared<const bc::CompiledProgram>(std::move(p));
  }

  std::shared_ptr<const bc::CompiledProgram> compile_assign(const SectionRef& target,
                                                            const Expr& value, int line) {
    (void)line;
    open_target(target.array, target);
    if (value.kind == Expr::Kind::kSection) {
      // Whole-statement copy: delegate to copy_section, which owns the
      // same-mapping fast path and the pack-then-unpack aliasing discipline.
      DistributedArray<double>* src = find1d(value.section.array);
      if (src == nullptr) throw BailOut{};
      const RegularSection ssec = Machine::make_section(value.section, *src);
      if (ssec.size() != p.dsec.size()) throw BailOut{};
      if (src->dist().procs() != dst->dist().procs()) throw BailOut{};
      const i32 aux = add_operand(bc::Operand{.array = value.section.array, .sec = ssec, .plan = nullptr});
      p.lanes.push_back(
          bc::Instr{.op = bc::Op::kCopyDst, .aux = aux, .line = value.line});
      p.notes.push_back("whole-statement section copy: delegated to the copy engine");
      return take();
    }
    if (scalar_shape(value)) {
      const u8 s = compile_scalar(value);
      p.lanes.push_back(bc::Instr{.op = bc::Op::kFillDst, .a = s, .line = value.line});
      return take();
    }
    const u8 r = compile_vec(value);
    p.lanes.push_back(bc::Instr{.op = bc::Op::kStoreLanes, .a = r, .line = value.line});
    finalize_store(r);
    return take();
  }

  std::shared_ptr<const bc::CompiledProgram> compile_where(const WhereStmt& s) {
    open_target(s.target.array, s.target);
    u8 flags = 0;
    u8 ml = 0, mr = 0, v = 0;
    if (scalar_shape(*s.mask_lhs)) {
      ml = compile_scalar(*s.mask_lhs);
      flags |= bc::kMaskLhsScalar;
    } else {
      ml = compile_vec(*s.mask_lhs);
    }
    if (scalar_shape(*s.mask_rhs)) {
      mr = compile_scalar(*s.mask_rhs);
      flags |= bc::kMaskRhsScalar;
    } else {
      mr = compile_vec(*s.mask_rhs);
    }
    if (scalar_shape(*s.value)) {
      v = compile_scalar(*s.value);
      flags |= bc::kMaskValScalar;
    } else {
      v = compile_vec(*s.value);
    }
    p.lanes.push_back(bc::Instr{.op = bc::Op::kStoreMasked,
                                .a = v,
                                .b = ml,
                                .c = mr,
                                .flags = flags,
                                .aux = relop_code(s.relop),
                                .line = s.line});
    p.store_reg = v;
    build_kernels();
    return take();
  }

  std::shared_ptr<const bc::CompiledProgram> compile_reduce_assign(
      const ScalarAssignStmt& s) {
    const Expr& root = *s.value;
    if (root.kind != Expr::Kind::kReduce || !root.lhs) throw BailOut{};
    if (scalar_shape(*root.lhs)) throw BailOut{};
    const SectionRef* anchor = find_reduce_anchor(*root.lhs);
    if (anchor == nullptr) throw BailOut{};
    open_target(anchor->array, *anchor);
    const u8 r = compile_vec(*root.lhs);
    const u8 out = new_sreg(0.0, false);
    p.lanes.push_back(bc::Instr{.op = bc::Op::kReduceLanes,
                                .a = out,
                                .b = r,
                                .c = reduce_code(root.reduce_op),
                                .line = root.line});
    p.result_sreg = out;
    p.scalar_target = s.name;
    p.store_reg = r;
    build_kernels();
    note_fusion(root.line, "fused transform+reduce: no materialized temporary array");
    return take();
  }
};

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

namespace {

/// Which part of the lane phase to run. Programs whose lane arithmetic can
/// throw (divisions) run kArith then kTerminal under two barriers, so the
/// destination array is never mutated when a division by zero aborts the
/// statement — exactly the interpreter's all-or-nothing behavior.
enum class Phase { kAll, kArith, kTerminal };

void run_lanes(const bc::CompiledProgram& p, i64 rank, const std::vector<double>& s,
               const std::vector<const DistributedArray<double>*>& direct,
               const std::vector<std::unique_ptr<DistributedArray<double>>>& scratch,
               DistributedArray<double>& dst, std::vector<double>& arena, double* partial,
               char* seen, Phase phase) {
  const KernelPlan& kp = p.kernels[static_cast<std::size_t>(rank)];
  const std::size_t cnt = static_cast<std::size_t>(kp.count());
  if (cnt == 0) return;
  const bool span_mode = kp.cls() == KernelClass::kRunCopy;
  double* dloc = dst.local(rank).data();
  double* dspan = dloc + kp.first_local();

  arena.resize(static_cast<std::size_t>(p.n_lanes) * cnt);
  struct Reg {
    const double* cur;  // where the register's value lives right now
    double* buf;        // where the next write to it lands
  };
  Reg regs[kMaxLanes];
  for (int i = 0; i < p.n_lanes; ++i) {
    regs[i].buf = arena.data() + static_cast<std::size_t>(i) * cnt;
    regs[i].cur = regs[i].buf;
  }
  // Store fusion: the final arithmetic instruction targeting the store
  // register writes the destination span directly (dense-run class only,
  // and only when no lane instruction can throw).
  if (p.store_fused && span_mode && phase == Phase::kAll)
    regs[p.store_reg].buf = dspan;

  const bc::Instr* ip = p.lanes.data();
  if (phase == Phase::kTerminal) ip = &p.lanes.back();

  const auto materialize = [&](u8 r) {
    if (regs[r].cur != regs[r].buf) {
      std::memcpy(regs[r].buf, regs[r].cur, cnt * sizeof(double));
      regs[r].cur = regs[r].buf;
    }
  };

// The dispatch loop. GNU toolchains get a computed-goto threaded
// interpreter (one indirect branch per instruction, better predicted than
// a shared switch); everything else falls back to a switch loop with
// identical handler bodies.
#if defined(__GNUC__) && !defined(CYCLICK_NO_COMPUTED_GOTO)
#define VM_NEXT                                       \
  do {                                                \
    ++ip;                                             \
    goto* jump[static_cast<std::size_t>(ip->op)];     \
  } while (0)
  static const void* const jump[] = {
      &&vm_bad,          // kScalarVar (prelude only)
      &&vm_bad,          // kReduceSec
      &&vm_bad,          // kScalarNeg
      &&vm_bad,          // kScalarBin
      &&vm_bad,          // kLoadSection (load phase only)
      &&vm_bad,          // kLoadShift
      &&vm_lane_direct,  &&vm_lane_scratch, &&vm_lane_ramp, &&vm_lane_neg,
      &&vm_add_vv,       &&vm_sub_vv,       &&vm_mul_vv,    &&vm_div_vv,
      &&vm_add_vs,       &&vm_sub_vs,       &&vm_mul_vs,    &&vm_div_vs,
      &&vm_sub_sv,       &&vm_div_sv,       &&vm_muladd_vsv, &&vm_mulsub_vsv,
      &&vm_adddiv_vvs,   &&vm_muladd_vss,   &&vm_store,     &&vm_store_masked,
      &&vm_reduce,
      &&vm_bad,  // kFillDst (control phase only)
      &&vm_bad,  // kCopyDst
  };
  goto* jump[static_cast<std::size_t>(ip->op)];
#else
#define VM_NEXT                                       \
  do {                                                \
    ++ip;                                             \
    goto vm_dispatch;                                 \
  } while (0)
vm_dispatch:
  switch (ip->op) {
    case bc::Op::kLaneDirect: goto vm_lane_direct;
    case bc::Op::kLaneScratch: goto vm_lane_scratch;
    case bc::Op::kLaneRamp: goto vm_lane_ramp;
    case bc::Op::kLaneNeg: goto vm_lane_neg;
    case bc::Op::kAddVV: goto vm_add_vv;
    case bc::Op::kSubVV: goto vm_sub_vv;
    case bc::Op::kMulVV: goto vm_mul_vv;
    case bc::Op::kDivVV: goto vm_div_vv;
    case bc::Op::kAddVS: goto vm_add_vs;
    case bc::Op::kSubVS: goto vm_sub_vs;
    case bc::Op::kMulVS: goto vm_mul_vs;
    case bc::Op::kDivVS: goto vm_div_vs;
    case bc::Op::kSubSV: goto vm_sub_sv;
    case bc::Op::kDivSV: goto vm_div_sv;
    case bc::Op::kMulAddVSV: goto vm_muladd_vsv;
    case bc::Op::kMulSubVSV: goto vm_mulsub_vsv;
    case bc::Op::kAddDivVVS: goto vm_adddiv_vvs;
    case bc::Op::kMulAddVSS: goto vm_muladd_vss;
    case bc::Op::kStoreLanes: goto vm_store;
    case bc::Op::kStoreMasked: goto vm_store_masked;
    case bc::Op::kReduceLanes: goto vm_reduce;
    default: goto vm_bad;
  }
#endif

vm_lane_direct: {
  const DistributedArray<double>* src = direct[static_cast<std::size_t>(ip->aux)];
  Reg& r = regs[ip->a];
  const double* sl = src->local(rank).data();
  if (span_mode) {
    r.cur = sl + kp.first_local();
  } else {
    kernel_gather(kp, sl, r.buf);
    r.cur = r.buf;
  }
}
  VM_NEXT;

vm_lane_scratch: {
  Reg& r = regs[ip->a];
  const double* sl = scratch[ip->b]->local(rank).data();
  if (span_mode) {
    r.cur = sl + kp.first_local();
  } else {
    kernel_gather(kp, sl, r.buf);
    r.cur = r.buf;
  }
}
  VM_NEXT;

vm_lane_ramp: {
  const bc::Operand& o = p.operands[static_cast<std::size_t>(ip->aux)];
  Reg& r = regs[ip->a];
  double* out = r.buf;
  std::size_t i = 0;
  p.plans[static_cast<std::size_t>(rank)].for_each([&](i64 cell, i64) {
    const i64 t = (cell - p.dsec.lower) / p.dsec.stride;
    out[i++] = static_cast<double>(o.ramp_lower + t * o.ramp_stride);
  });
  r.cur = r.buf;
}
  VM_NEXT;

vm_lane_neg: {
  Reg& r = regs[ip->a];
  const double* x = r.cur;
  double* o = r.buf;
  for (std::size_t i = 0; i < cnt; ++i) o[i] = -x[i];
  r.cur = o;
}
  VM_NEXT;

vm_add_vv: {
  Reg& r = regs[ip->a];
  const double* x = r.cur;
  const double* y = regs[ip->b].cur;
  double* o = r.buf;
  for (std::size_t i = 0; i < cnt; ++i) o[i] = x[i] + y[i];
  r.cur = o;
}
  VM_NEXT;

vm_sub_vv: {
  Reg& r = regs[ip->a];
  const double* x = r.cur;
  const double* y = regs[ip->b].cur;
  double* o = r.buf;
  for (std::size_t i = 0; i < cnt; ++i) o[i] = x[i] - y[i];
  r.cur = o;
}
  VM_NEXT;

vm_mul_vv: {
  Reg& r = regs[ip->a];
  const double* x = r.cur;
  const double* y = regs[ip->b].cur;
  double* o = r.buf;
  for (std::size_t i = 0; i < cnt; ++i) o[i] = x[i] * y[i];
  r.cur = o;
}
  VM_NEXT;

vm_div_vv: {
  Reg& r = regs[ip->a];
  const double* x = r.cur;
  const double* y = regs[ip->b].cur;
  double* o = r.buf;
  for (std::size_t i = 0; i < cnt; ++i) {
    if (y[i] == 0.0) throw dsl_error("division by zero", ip->line);
    o[i] = x[i] / y[i];
  }
  r.cur = o;
}
  VM_NEXT;

vm_add_vs: {
  Reg& r = regs[ip->a];
  const double* x = r.cur;
  const double sv = s[ip->b];
  double* o = r.buf;
  for (std::size_t i = 0; i < cnt; ++i) o[i] = x[i] + sv;
  r.cur = o;
}
  VM_NEXT;

vm_sub_vs: {
  Reg& r = regs[ip->a];
  const double* x = r.cur;
  const double sv = s[ip->b];
  double* o = r.buf;
  for (std::size_t i = 0; i < cnt; ++i) o[i] = x[i] - sv;
  r.cur = o;
}
  VM_NEXT;

vm_mul_vs: {
  Reg& r = regs[ip->a];
  const double* x = r.cur;
  const double sv = s[ip->b];
  double* o = r.buf;
  for (std::size_t i = 0; i < cnt; ++i) o[i] = x[i] * sv;
  r.cur = o;
}
  VM_NEXT;

vm_div_vs: {
  Reg& r = regs[ip->a];
  const double* x = r.cur;
  const double sv = s[ip->b];
  // Every rank that owns elements raises exactly what apply_op would on
  // its first element; the executor propagates the lowest rank's error.
  if (sv == 0.0) throw dsl_error("division by zero", ip->line);
  double* o = r.buf;
  for (std::size_t i = 0; i < cnt; ++i) o[i] = x[i] / sv;
  r.cur = o;
}
  VM_NEXT;

vm_sub_sv: {
  Reg& r = regs[ip->a];
  const double* x = r.cur;
  const double sv = s[ip->b];
  double* o = r.buf;
  for (std::size_t i = 0; i < cnt; ++i) o[i] = sv - x[i];
  r.cur = o;
}
  VM_NEXT;

vm_div_sv: {
  Reg& r = regs[ip->a];
  const double* x = r.cur;
  const double sv = s[ip->b];
  double* o = r.buf;
  for (std::size_t i = 0; i < cnt; ++i) {
    if (x[i] == 0.0) throw dsl_error("division by zero", ip->line);
    o[i] = sv / x[i];
  }
  r.cur = o;
}
  VM_NEXT;

vm_muladd_vsv: {
  Reg& r = regs[ip->a];
  const double* x = r.cur;
  const double sv = s[ip->b];
  const double* y = regs[ip->c].cur;
  double* o = r.buf;
  for (std::size_t i = 0; i < cnt; ++i) {
    const double t = x[i] * sv;  // explicit intermediate: no FMA contraction
    o[i] = t + y[i];
  }
  r.cur = o;
}
  VM_NEXT;

vm_mulsub_vsv: {
  Reg& r = regs[ip->a];
  const double* x = r.cur;
  const double sv = s[ip->b];
  const double* y = regs[ip->c].cur;
  double* o = r.buf;
  for (std::size_t i = 0; i < cnt; ++i) {
    const double t = x[i] * sv;
    o[i] = t - y[i];
  }
  r.cur = o;
}
  VM_NEXT;

vm_adddiv_vvs: {
  Reg& r = regs[ip->a];
  const double* x = r.cur;
  const double sv = s[ip->b];
  const double* y = regs[ip->c].cur;
  if (sv == 0.0) throw dsl_error("division by zero", ip->line);
  double* o = r.buf;
  for (std::size_t i = 0; i < cnt; ++i) {
    const double t = x[i] + y[i];
    o[i] = t / sv;
  }
  r.cur = o;
}
  VM_NEXT;

vm_muladd_vss: {
  Reg& r = regs[ip->a];
  const double* x = r.cur;
  const double sv = s[ip->b];
  const double cv = s[ip->c];
  double* o = r.buf;
  for (std::size_t i = 0; i < cnt; ++i) {
    const double t = x[i] * sv;
    o[i] = t + cv;
  }
  r.cur = o;
}
  VM_NEXT;

vm_store: {
  if (phase == Phase::kArith) {
    materialize(ip->a);
    return;
  }
  const double* x = regs[ip->a].cur;
  if (span_mode) {
    if (x != dspan) std::memcpy(dspan, x, cnt * sizeof(double));
  } else {
    kernel_scatter(kp, dloc, x);
  }
  return;
}

vm_store_masked: {
  const u8 fl = ip->flags;
  const bool vs = (fl & bc::kMaskValScalar) != 0;
  const bool lsc = (fl & bc::kMaskLhsScalar) != 0;
  const bool rsc = (fl & bc::kMaskRhsScalar) != 0;
  if (phase == Phase::kArith) {
    if (!vs) materialize(ip->a);
    if (!lsc) materialize(ip->b);
    if (!rsc) materialize(ip->c);
    return;
  }
  const double* xv = vs ? nullptr : regs[ip->a].cur;
  const double* lv = lsc ? nullptr : regs[ip->b].cur;
  const double* rv = rsc ? nullptr : regs[ip->c].cur;
  const double xs = vs ? s[ip->a] : 0.0;
  const double lsv = lsc ? s[ip->b] : 0.0;
  const double rsv = rsc ? s[ip->c] : 0.0;
  const i32 rel = ip->aux;
  std::size_t i = 0;
  kernel_for_each_local(kp, [&](i64 la) {
    const double x = lsc ? lsv : lv[i];
    const double y = rsc ? rsv : rv[i];
    bool h = false;
    switch (rel) {
      case bc::kLT: h = x < y; break;
      case bc::kGT: h = x > y; break;
      case bc::kLE: h = x <= y; break;
      case bc::kGE: h = x >= y; break;
      case bc::kEQ: h = x == y; break;
      default: h = x != y; break;
    }
    if (h) dloc[la] = vs ? xs : xv[i];
    ++i;
  });
  return;
}

vm_reduce: {
  const double* x = regs[ip->b].cur;
  double acc = x[0];
  switch (ip->c) {
    case bc::kRedSum:
      for (std::size_t i = 1; i < cnt; ++i) acc = acc + x[i];
      break;
    case bc::kRedMin:
      for (std::size_t i = 1; i < cnt; ++i) acc = acc < x[i] ? acc : x[i];
      break;
    default:  // kRedMax
      for (std::size_t i = 1; i < cnt; ++i) acc = acc > x[i] ? acc : x[i];
      break;
  }
  *partial = acc;
  *seen = 1;
  return;
}

vm_bad:
  // Unreachable by construction: the compiler never places non-lane opcodes
  // in the lane stream.
  return;

#undef VM_NEXT
}

}  // namespace

// ---------------------------------------------------------------------------
// JitEngine
// ---------------------------------------------------------------------------

std::shared_ptr<const bc::CompiledProgram> JitEngine::program_for(
    const std::string& key, const AssignStmt* assign, const WhereStmt* where,
    const ScalarAssignStmt* scalar_assign) {
  std::shared_ptr<const bc::CompiledProgram> prog;
  if (bc::ProgramCache::global().find(key, prog)) return prog;
  CYCLICK_SPAN("jit.compile", obs::kMainTid);
  JitCompiler jc(m_);
  try {
    if (assign != nullptr) {
      prog = jc.compile_assign(assign->target, *assign->value, assign->line);
    } else if (where != nullptr) {
      prog = jc.compile_where(*where);
    } else {
      prog = jc.compile_reduce_assign(*scalar_assign);
    }
  } catch (const BailOut&) {
    prog = nullptr;
  } catch (const dsl_error&) {
    // Real program error (bad section, constant division by zero): leave a
    // negative entry so the interpreter raises it, now and on every replay.
    prog = nullptr;
  }
  CYCLICK_COUNT("jit.compiles", 0, 1);
  bc::ProgramCache::global().insert(key, prog);
  return prog;
}

void JitEngine::execute(const bc::CompiledProgram& p) {
  CYCLICK_COUNT("jit.exec", 0, 1);
  DistributedArray<double>& dst = *m_.lookup(p.target, 0).d1;
  const SpmdExecutor exec(p.ranks, m_.mode_);

  // Scalar prelude (control thread).
  std::vector<double> s(p.sreg_init);
  for (const bc::Instr& in : p.prelude) {
    switch (in.op) {
      case bc::Op::kScalarVar: {
        const bc::Operand& o = p.operands[static_cast<std::size_t>(in.aux)];
        const auto it = m_.scalars_.find(o.array);
        if (it == m_.scalars_.end())
          throw dsl_error("unknown scalar '" + o.array + "'", in.line);
        s[in.a] = it->second;
        break;
      }
      case bc::Op::kReduceSec: {
        const bc::Operand& o = p.operands[static_cast<std::size_t>(in.aux)];
        const DistributedArray<double>& arr = *m_.lookup(o.array, in.line).d1;
        const SpmdExecutor rexec(arr.dist().procs(), m_.mode_);
        switch (in.b) {
          case bc::kRedSum:
            s[in.a] = reduce_section(
                arr, o.sec, 0.0, [](double a, double b) { return a + b; }, rexec);
            break;
          case bc::kRedMin:
            s[in.a] = reduce_section(
                arr, o.sec, std::numeric_limits<double>::infinity(),
                [](double a, double b) { return a < b ? a : b; }, rexec);
            break;
          default:
            s[in.a] = reduce_section(
                arr, o.sec, -std::numeric_limits<double>::infinity(),
                [](double a, double b) { return a > b ? a : b; }, rexec);
            break;
        }
        break;
      }
      case bc::Op::kScalarNeg:
        s[in.a] = -s[in.a];
        break;
      case bc::Op::kScalarBin:
        s[in.a] = Machine::apply_op(in.x, s[in.b], s[in.c], in.line);
        break;
      default:
        break;
    }
  }

  if (m_.tracing_) {
    m_.trace("bytecode " +
             (p.scalar_target.empty() ? p.target + p.dsec.to_string()
                                      : p.scalar_target + " = reduce " + p.target +
                                            p.dsec.to_string()) +
             " [" + std::to_string(p.lanes.size()) + " lane instrs, " +
             std::to_string(p.loads.size()) + " loads]");
  }

  // Control-phase terminals (no lane vectors at all).
  const bc::Instr& term = p.lanes.back();
  if (term.op == bc::Op::kFillDst) {
    fill_section(dst, p.dsec, s[term.a], exec);
    return;
  }
  if (term.op == bc::Op::kCopyDst) {
    const bc::Operand& o = p.operands[static_cast<std::size_t>(term.aux)];
    const DistributedArray<double>& src = *m_.lookup(o.array, term.line).d1;
    copy_section(src, o.sec, dst, p.dsec, exec);
    return;
  }

  // Load phase: land remote operands in destination-shaped scratch arrays
  // through the compile-time plans.
  std::vector<std::unique_ptr<DistributedArray<double>>> scratch(
      static_cast<std::size_t>(p.n_scratch));
  for (const bc::Instr& in : p.loads) {
    const bc::Operand& o = p.operands[static_cast<std::size_t>(in.aux)];
    const DistributedArray<double>& src = *m_.lookup(o.array, in.line).d1;
    auto t = m_.acquire_temp(dst);
    if (in.op == bc::Op::kLoadSection) {
      execute_copy_plan(*o.plan, src, *t, exec);
    } else {  // kLoadShift
      auto sh = m_.acquire_temp(src.dist(), src.size(), AffineAlignment::identity());
      if (o.circular) {
        cshift(src, *sh, o.shift, exec);
      } else {
        eoshift(src, *sh, o.shift, o.boundary, exec);
      }
      execute_copy_plan(*o.plan, *sh, *t, exec);
      m_.release_temp(std::move(sh));
    }
    scratch[in.a] = std::move(t);
  }

  // Resolve direct-lane source arrays once.
  std::vector<const DistributedArray<double>*> direct(p.operands.size(), nullptr);
  for (const bc::Instr& in : p.lanes)
    if (in.op == bc::Op::kLaneDirect)
      direct[static_cast<std::size_t>(in.aux)] =
          m_.lookup(p.operands[static_cast<std::size_t>(in.aux)].array, in.line).d1.get();

  if (arena_.size() < static_cast<std::size_t>(p.ranks))
    arena_.resize(static_cast<std::size_t>(p.ranks));
  std::vector<double> partial(static_cast<std::size_t>(p.ranks), 0.0);
  std::vector<char> seen(static_cast<std::size_t>(p.ranks), 0);

  const bool guarded = p.lanes_may_throw && term.op != bc::Op::kReduceLanes;
  if (guarded) {
    exec.run([&](i64 rank) {
      run_lanes(p, rank, s, direct, scratch, dst, arena_[static_cast<std::size_t>(rank)],
                nullptr, nullptr, Phase::kArith);
    });
    exec.run([&](i64 rank) {
      run_lanes(p, rank, s, direct, scratch, dst, arena_[static_cast<std::size_t>(rank)],
                nullptr, nullptr, Phase::kTerminal);
    });
  } else {
    exec.run([&](i64 rank) {
      run_lanes(p, rank, s, direct, scratch, dst, arena_[static_cast<std::size_t>(rank)],
                partial.data() + rank, seen.data() + rank, Phase::kAll);
    });
  }

  if (!p.scalar_target.empty()) {
    // Cross-rank fold, ascending rank order — reduce_section's exact
    // combination sequence.
    double out = 0.0;
    switch (term.c) {
      case bc::kRedSum: out = 0.0; break;
      case bc::kRedMin: out = std::numeric_limits<double>::infinity(); break;
      default: out = -std::numeric_limits<double>::infinity(); break;
    }
    for (i64 r = 0; r < p.ranks; ++r) {
      if (!seen[static_cast<std::size_t>(r)]) continue;
      const double v = partial[static_cast<std::size_t>(r)];
      switch (term.c) {
        case bc::kRedSum: out = out + v; break;
        case bc::kRedMin: out = out < v ? out : v; break;
        default: out = out > v ? out : v; break;
      }
    }
    m_.scalars_[p.scalar_target] = out;
  }

  for (auto& t : scratch)
    if (t) m_.release_temp(std::move(t));
}

bool JitEngine::try_assign(const AssignStmt& s) {
  JitCompiler keyer(m_);
  const auto key = keyer.key_assign(s);
  if (!key) {
    CYCLICK_COUNT("jit.fallbacks", 0, 1);
    return false;
  }
  const auto prog = program_for(*key, &s, nullptr, nullptr);
  if (!prog) {
    CYCLICK_COUNT("jit.fallbacks", 0, 1);
    return false;
  }
  execute(*prog);
  return true;
}

bool JitEngine::try_where(const WhereStmt& s) {
  JitCompiler keyer(m_);
  const auto key = keyer.key_where(s);
  if (!key) {
    CYCLICK_COUNT("jit.fallbacks", 0, 1);
    return false;
  }
  const auto prog = program_for(*key, nullptr, &s, nullptr);
  if (!prog) {
    CYCLICK_COUNT("jit.fallbacks", 0, 1);
    return false;
  }
  execute(*prog);
  return true;
}

bool JitEngine::try_scalar_assign(const ScalarAssignStmt& s) {
  JitCompiler keyer(m_);
  const auto key = keyer.key_scalar(s);
  if (!key) {
    CYCLICK_COUNT("jit.fallbacks", 0, 1);
    return false;
  }
  const auto prog = program_for(*key, nullptr, nullptr, &s);
  if (!prog) {
    CYCLICK_COUNT("jit.fallbacks", 0, 1);
    return false;
  }
  execute(*prog);
  return true;
}

std::string JitEngine::listing_for(const SectionRef& target, const Expr& value, int line) {
  JitCompiler jc(m_);
  try {
    const auto prog = jc.compile_assign(target, value, line);
    return prog ? prog->listing() : std::string();
  } catch (const BailOut&) {
    return std::string();
  } catch (const dsl_error&) {
    return std::string();
  }
}

}  // namespace cyclick::dsl
