#include "cyclick/serve/client.hpp"

#include "cyclick/runtime/transport.hpp"

namespace cyclick::serve {

namespace {

[[nodiscard]] std::string error_text(const Frame& f) {
  return std::string(reinterpret_cast<const char*>(f.payload.data()), f.payload.size());
}

/// Receive the next frame, converting server kError frames and EOF into
/// TransportError so callers only handle the expected type.
[[nodiscard]] Frame expect_frame(int fd, net::FrameType want) {
  auto f = recv_frame(fd);
  if (!f) throw TransportError("plan service: server closed the connection");
  if (f->header.type == net::FrameType::kError)
    throw TransportError("plan service rejected the request: " + error_text(*f));
  if (f->header.type != want)
    throw TransportError("plan service: unexpected frame type " +
                         std::to_string(static_cast<u64>(f->header.type)));
  return std::move(*f);
}

}  // namespace

PlanClient::PlanClient(const std::string& socket_path, Options opt)
    : fd_(net::unix_connect_retry(socket_path, opt.connect_timeout_ms, 1, 0)),
      version_(opt.advertise_version) {
  send_frame(fd_.get(), net::FrameType::kHello, nullptr, 0, version_);
  (void)expect_frame(fd_.get(), net::FrameType::kHello);
}

std::vector<std::byte> PlanClient::round_trip(const std::vector<PlanQuery>& qs) {
  const std::vector<std::byte> payload = encode_queries(qs);
  send_frame(fd_.get(), net::FrameType::kPlanRequest, payload.data(), payload.size(), version_);
  return expect_frame(fd_.get(), net::FrameType::kPlanResponse).payload;
}

std::vector<ReplyEntry> PlanClient::query(const std::vector<PlanQuery>& qs) {
  const std::vector<std::byte> payload = round_trip(qs);
  std::vector<QueryKind> kinds;
  kinds.reserve(qs.size());
  for (const PlanQuery& q : qs) kinds.push_back(static_cast<QueryKind>(q.kind));
  std::string err;
  auto entries = decode_response(payload, kinds, err);
  if (!entries) throw TransportError("plan service: " + err);
  return std::move(*entries);
}

std::vector<std::byte> PlanClient::query_raw(const std::vector<PlanQuery>& qs, i64& ok_entries,
                                             i64& error_entries) {
  std::vector<std::byte> payload = round_trip(qs);
  if (!scan_response(payload, ok_entries, error_entries))
    throw TransportError("plan service: malformed response payload");
  return payload;
}

ReplyEntry PlanClient::query_tables(i64 procs, i64 block, i64 stride) {
  PlanQuery q;
  q.kind = static_cast<i64>(QueryKind::kTables);
  q.procs = procs;
  q.block = block;
  q.stride = stride;
  return query({q}).front();
}

ReplyEntry PlanClient::query_copy_plan(i64 procs, i64 block, i64 lower, i64 upper, i64 stride,
                                       i64 dst_block) {
  PlanQuery q;
  q.kind = static_cast<i64>(QueryKind::kCopyPlan);
  q.procs = procs;
  q.block = block;
  q.stride = stride;
  q.lower = lower;
  q.upper = upper;
  q.dst_block = dst_block;
  return query({q}).front();
}

}  // namespace cyclick::serve
