#include "cyclick/serve/protocol.hpp"

#include <cstring>

#include "cyclick/core/engine.hpp"
#include "cyclick/net/socket.hpp"
#include "cyclick/runtime/comm_plan.hpp"
#include "cyclick/runtime/transport.hpp"

namespace cyclick::serve {

namespace {

// Little-endian i64 stream codecs; the reply blobs are flat i64 dumps so
// one pair of helpers covers every message.
void put_i64(std::vector<std::byte>& out, i64 v) {
  const u64 u = static_cast<u64>(v);
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::byte>((u >> (8 * i)) & 0xff));
}

void put_vec(std::vector<std::byte>& out, const std::vector<i64>& v) {
  put_i64(out, static_cast<i64>(v.size()));
  for (const i64 x : v) put_i64(out, x);
}

/// Bounds-checked reader over a byte span; `ok` latches false on underrun.
struct Reader {
  const std::byte* p;
  std::size_t left;
  bool ok = true;

  i64 i64v() {
    if (left < 8) {
      ok = false;
      return 0;
    }
    u64 u = 0;
    for (int i = 0; i < 8; ++i) u |= static_cast<u64>(p[i]) << (8 * i);
    p += 8;
    left -= 8;
    return static_cast<i64>(u);
  }

  bool vec(std::vector<i64>& out, i64 max_len) {
    const i64 n = i64v();
    if (!ok || n < 0 || n > max_len || static_cast<u64>(n) * 8 > left) {
      ok = false;
      return false;
    }
    out.resize(static_cast<std::size_t>(n));
    for (auto& x : out) x = i64v();
    return ok;
  }
};

/// Sanity bound on decoded vector lengths: no legitimate table or offset
/// pool in this protocol exceeds it, and it keeps a corrupt length from
/// turning into a giant allocation.
constexpr i64 kMaxVecLen = i64{1} << 24;

}  // namespace

std::vector<std::byte> encode_queries(const std::vector<PlanQuery>& qs) {
  std::vector<std::byte> out;
  out.reserve(8 + qs.size() * kQueryBytes);
  put_i64(out, static_cast<i64>(qs.size()));
  for (const PlanQuery& q : qs) {
    put_i64(out, q.kind);
    put_i64(out, q.procs);
    put_i64(out, q.block);
    put_i64(out, q.stride);
    put_i64(out, q.lower);
    put_i64(out, q.upper);
    put_i64(out, q.dst_block);
  }
  return out;
}

std::optional<std::vector<PlanQuery>> decode_queries(const std::vector<std::byte>& payload,
                                                     std::string& error) {
  Reader r{payload.data(), payload.size()};
  const i64 n = r.i64v();
  // Divide, never multiply: `n * kQueryBytes` wraps mod 2^64, so a crafted
  // count near 2^60 could match a small payload and drive a huge resize.
  if (!r.ok || n < 0 || r.left % kQueryBytes != 0 ||
      static_cast<u64>(n) != r.left / kQueryBytes) {
    error = "malformed plan request (count " + std::to_string(n) + ", " +
            std::to_string(payload.size()) + " payload bytes)";
    return std::nullopt;
  }
  if (n > kMaxBatchQueries) {
    error = "plan request batch of " + std::to_string(n) + " queries exceeds " +
            std::to_string(kMaxBatchQueries);
    return std::nullopt;
  }
  std::vector<PlanQuery> qs(static_cast<std::size_t>(n));
  for (PlanQuery& q : qs) {
    q.kind = r.i64v();
    q.procs = r.i64v();
    q.block = r.i64v();
    q.stride = r.i64v();
    q.lower = r.i64v();
    q.upper = r.i64v();
    q.dst_block = r.i64v();
  }
  return qs;
}

std::vector<std::byte> serialize_tables(const EngineTables& t) {
  std::vector<std::byte> out;
  out.reserve(80 + 8 * 4 * static_cast<std::size_t>(t.block));
  put_i64(out, 0);  // status ok
  put_i64(out, t.procs);
  put_i64(out, t.block);
  put_i64(out, t.stride);
  put_i64(out, static_cast<i64>(t.strategy));
  put_i64(out, t.degenerate ? 1 : 0);
  put_i64(out, t.fixed_dglobal);
  put_i64(out, t.fixed_dlocal);
  put_i64(out, t.offsets.start_offset);
  put_vec(out, t.offsets.delta);
  put_vec(out, t.offsets.next_offset);
  put_vec(out, t.dglobal);
  put_vec(out, t.prev_offset);
  return out;
}

std::vector<std::byte> serialize_plan(const CommPlan& p) {
  std::vector<std::byte> out;
  out.reserve(64 + 72 * p.channels.size() + 8 * (p.src_off.size() + p.dst_off.size()));
  put_i64(out, 0);  // status ok
  put_i64(out, p.ranks);
  put_i64(out, static_cast<i64>(p.channels.size()));
  for (const CommPlan::Channel& c : p.channels) {
    put_i64(out, c.count);
    put_i64(out, c.src_start);
    put_i64(out, c.dst_start);
    put_i64(out, c.period);
    put_i64(out, c.gap_begin);
    put_i64(out, c.src_advance);
    put_i64(out, c.dst_advance);
    put_i64(out, c.src_contig ? 1 : 0);
    put_i64(out, c.dst_contig ? 1 : 0);
  }
  put_vec(out, p.src_off);
  put_vec(out, p.dst_off);
  put_i64(out, p.message_count());
  put_i64(out, p.remote_elements());
  put_i64(out, p.total_elements());
  return out;
}

std::vector<std::byte> serialize_error(i64 status, const std::string& text) {
  CYCLICK_REQUIRE(status != 0, "error replies need a nonzero status");
  std::vector<std::byte> out;
  out.reserve(8 + text.size());
  put_i64(out, status);
  for (const char c : text) out.push_back(static_cast<std::byte>(c));
  return out;
}

std::vector<std::byte> encode_response(const std::vector<std::vector<std::byte>>& blobs) {
  std::size_t total = 8;
  for (const auto& b : blobs) total += 8 + b.size();
  std::vector<std::byte> out;
  out.reserve(total);
  put_i64(out, static_cast<i64>(blobs.size()));
  for (const auto& b : blobs) {
    put_i64(out, static_cast<i64>(b.size()));
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

std::vector<std::byte> encode_response_shared(
    const std::vector<std::shared_ptr<const std::vector<std::byte>>>& blobs,
    std::size_t headroom) {
  std::size_t total = headroom + 8;
  for (const auto& b : blobs) total += 8 + b->size();
  std::vector<std::byte> out;
  out.reserve(total);
  out.resize(headroom);
  put_i64(out, static_cast<i64>(blobs.size()));
  for (const auto& b : blobs) {
    put_i64(out, static_cast<i64>(b->size()));
    out.insert(out.end(), b->begin(), b->end());
  }
  return out;
}

std::optional<std::vector<ReplyEntry>> decode_response(const std::vector<std::byte>& payload,
                                                       const std::vector<QueryKind>& kinds,
                                                       std::string& error) {
  Reader r{payload.data(), payload.size()};
  const i64 n = r.i64v();
  if (!r.ok || n < 0 || static_cast<std::size_t>(n) != kinds.size()) {
    error = "plan response entry count " + std::to_string(n) + " does not match the " +
            std::to_string(kinds.size()) + " queries sent";
    return std::nullopt;
  }
  std::vector<ReplyEntry> entries(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const i64 len = r.i64v();
    if (!r.ok || len < 8 || static_cast<u64>(len) > r.left) {
      error = "malformed plan response entry " + std::to_string(i);
      return std::nullopt;
    }
    Reader e{r.p, static_cast<std::size_t>(len)};
    r.p += len;
    r.left -= static_cast<std::size_t>(len);
    ReplyEntry& out = entries[i];
    out.kind = kinds[i];
    out.status = e.i64v();
    if (out.status != 0) {
      out.error.assign(reinterpret_cast<const char*>(e.p), e.left);
      continue;
    }
    bool ok = true;
    if (out.kind == QueryKind::kTables) {
      WireTables& t = out.tables;
      t.procs = e.i64v();
      t.block = e.i64v();
      t.stride = e.i64v();
      t.strategy = e.i64v();
      t.degenerate = e.i64v();
      t.fixed_dglobal = e.i64v();
      t.fixed_dlocal = e.i64v();
      t.start_offset = e.i64v();
      ok = e.vec(t.delta, kMaxVecLen) && e.vec(t.next_offset, kMaxVecLen) &&
           e.vec(t.dglobal, kMaxVecLen) && e.vec(t.prev_offset, kMaxVecLen);
    } else {
      WirePlan& p = out.plan;
      p.ranks = e.i64v();
      const i64 nch = e.i64v();
      if (!e.ok || nch < 0 || nch > kMaxVecLen) {
        ok = false;
      } else {
        p.channels.resize(static_cast<std::size_t>(nch));
        for (WirePlan::Channel& c : p.channels) {
          c.count = e.i64v();
          c.src_start = e.i64v();
          c.dst_start = e.i64v();
          c.period = e.i64v();
          c.gap_begin = e.i64v();
          c.src_advance = e.i64v();
          c.dst_advance = e.i64v();
          c.src_contig = e.i64v();
          c.dst_contig = e.i64v();
        }
        ok = e.vec(p.src_off, kMaxVecLen) && e.vec(p.dst_off, kMaxVecLen);
        p.message_count = e.i64v();
        p.remote_elements = e.i64v();
        p.total_elements = e.i64v();
        ok = ok && e.ok;
      }
    }
    if (!ok) {
      error = "truncated plan response entry " + std::to_string(i);
      return std::nullopt;
    }
  }
  return entries;
}

bool scan_response(const std::vector<std::byte>& payload, i64& ok_entries, i64& error_entries) {
  ok_entries = 0;
  error_entries = 0;
  Reader r{payload.data(), payload.size()};
  const i64 n = r.i64v();
  if (!r.ok || n < 0) return false;
  for (i64 i = 0; i < n; ++i) {
    const i64 len = r.i64v();
    if (!r.ok || len < 8 || static_cast<u64>(len) > r.left) return false;
    Reader e{r.p, 8};
    (e.i64v() == 0 ? ok_entries : error_entries) += 1;
    r.p += len;
    r.left -= static_cast<std::size_t>(len);
  }
  return r.left == 0;
}

void send_frame(int fd, net::FrameType type, const std::byte* payload, std::size_t n,
                u64 version) {
  net::FrameHeader h;
  h.version = version;
  h.type = type;
  h.from = 0;
  h.to = 0;
  h.payload_bytes = n;
  h.checksum = net::fnv1a64w(payload, n);
  std::byte hdr[net::kHeaderBytes];
  net::encode_header(h, hdr);
  net::write_fully(fd, hdr, net::kHeaderBytes);
  if (n > 0) net::write_fully(fd, payload, n);
}

std::optional<Frame> recv_frame(int fd, u64 max_payload_bytes) {
  std::byte hdr[net::kHeaderBytes];
  if (!net::read_fully(fd, hdr, net::kHeaderBytes)) return std::nullopt;
  std::string err;
  const auto h = net::decode_header_lenient(hdr, err);
  if (!h) throw TransportError("plan service: " + err);
  // Reject oversized claims before sizing the payload buffer: the lenient
  // header bound is net::kMaxPayloadBytes (1 TB), far past what any plan
  // frame carries, and resizing to a hostile length would throw bad_alloc
  // instead of a named protocol error.
  if (h->payload_bytes > max_payload_bytes)
    throw TransportError("plan service: frame claims " + std::to_string(h->payload_bytes) +
                         " payload bytes (limit " + std::to_string(max_payload_bytes) + ")");
  Frame f;
  f.header = *h;
  f.payload.resize(static_cast<std::size_t>(h->payload_bytes));
  if (h->payload_bytes > 0 && !net::read_fully(fd, f.payload.data(), f.payload.size()))
    throw TransportError("plan service: connection closed mid-frame");
  // Only in-version frames get checksum-verified; a future version may hash
  // differently, and the lenient path exists so we can still *name* the
  // mismatch in a reply. Plan-service frames use the word-folded FNV: a
  // batched response runs to hundreds of kilobytes and the byte-wise walk
  // would dominate the serving cost.
  if (h->version == net::kWireVersion &&
      net::fnv1a64w(f.payload.data(), f.payload.size()) != h->checksum)
    throw TransportError("plan service: frame checksum mismatch");
  return f;
}

}  // namespace cyclick::serve
