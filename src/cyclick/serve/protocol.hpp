// Plan-service wire protocol: the request/response vocabulary `amtool
// serve` speaks on top of the net/ frame layer.
//
// The paper's tables are processor-count/layout-keyed and program-
// independent (Section 6.2), so a daemon can answer every client's
// (p, k, |s|, section) question from one shared cache. The protocol is
// deliberately batch-first: a kPlanRequest frame carries many fixed-size
// PlanQuery records and its kPlanResponse carries one length-prefixed reply
// blob per query, so a closed-loop client amortizes the per-frame syscall
// cost over hundreds of cached lookups.
//
// Session shape (over one Unix-domain connection):
//
//   client                          server
//   kHello (version V) ---------->
//              <----------  kHello (version kWireVersion)     V supported
//              <----------  kError "unsupported protocol..."  V unsupported
//   kPlanRequest [q0 q1 ...] ---->
//              <----------  kPlanResponse [blob0 blob1 ...]
//   ... repeat ...
//
// Per-query failures (invalid p, absurd section) are *entry* errors: the
// response blob carries a nonzero status plus text, and the connection
// stays up. kError frames are connection-fatal (version mismatch, frame
// garbage) and are followed by close.
//
// All integers are little-endian i64 on the wire; reply blobs for
// EngineTables and CommPlan are flat field dumps (see WireTables /
// WirePlan) — stable enough for same-version peers, versioned by the frame
// header for everything else.
//
// Plan-service frames checksum their payload with the word-folded FNV-1a
// (net::fnv1a64w): batched responses run to hundreds of kilobytes, and the
// byte-wise walk kData frames use would dominate the serving cost.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cyclick/net/wire.hpp"
#include "cyclick/support/types.hpp"

namespace cyclick {
struct EngineTables;  // core/engine.hpp
struct CommPlan;      // runtime/comm_plan.hpp
}  // namespace cyclick

namespace cyclick::serve {

/// What a PlanQuery asks the service to compute.
enum class QueryKind : i64 {
  kTables = 0,    ///< EngineTables for (procs, block, |stride|)
  kCopyPlan = 1,  ///< CommPlan for dst(0:|sec|-1) = src(lower:upper:stride)
};

/// One fixed-size query record (7 i64 fields = 56 bytes on the wire).
/// For kTables only (procs, block, stride) matter; lower/upper/dst_block
/// are ignored and should be zeroed so equal questions share a cache key.
struct PlanQuery {
  i64 kind = 0;  ///< QueryKind
  i64 procs = 1;
  i64 block = 1;
  i64 stride = 1;     ///< signed section stride
  i64 lower = 0;      ///< section lower bound (kCopyPlan)
  i64 upper = 0;      ///< section upper bound (kCopyPlan)
  i64 dst_block = 1;  ///< destination cyclic(k') (kCopyPlan)

  friend bool operator==(const PlanQuery&, const PlanQuery&) = default;
};

struct PlanQueryHash {
  std::size_t operator()(const PlanQuery& q) const noexcept {
    // FNV-1a over the record's fields (same scheme as PlanKeyHash).
    u64 h = 1469598103934665603ULL;
    for (const i64 v : {q.kind, q.procs, q.block, q.stride, q.lower, q.upper, q.dst_block}) {
      h ^= static_cast<u64>(v);
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

inline constexpr std::size_t kQueryBytes = 7 * 8;

/// Largest query batch one kPlanRequest may carry; decode_queries rejects
/// anything bigger before allocating, so a hostile count field cannot turn
/// into a giant allocation.
inline constexpr i64 kMaxBatchQueries = 1 << 16;

/// Plan-service payload ceilings, enforced by recv_frame *before* the
/// payload buffer is sized. net::kMaxPayloadBytes (1 TB) exists to keep the
/// rank-to-rank data stream framed; a plan-service peer claiming anywhere
/// near it is hostile or corrupt, and resizing to the claimed length would
/// throw bad_alloc past the connection error handling. Requests are bounded
/// by the batch limit; responses by a generous multiple of the largest
/// reply a maximal batch of ceiling-sized plans can produce.
inline constexpr u64 kMaxRequestPayloadBytes =
    8 + static_cast<u64>(kMaxBatchQueries) * kQueryBytes;
inline constexpr u64 kMaxResponsePayloadBytes = u64{1} << 31;

/// Flat transportable mirror of EngineTables (core/engine.hpp): everything
/// a client needs to rebuild navigation state, none of the in-process-only
/// members (kernel cache, mutex).
struct WireTables {
  i64 procs = 1;
  i64 block = 1;
  i64 stride = 1;
  i64 strategy = 0;  ///< AddressStrategy as ordinal
  i64 degenerate = 0;
  i64 fixed_dglobal = 0;
  i64 fixed_dlocal = 0;
  i64 start_offset = -1;
  std::vector<i64> delta;
  std::vector<i64> next_offset;
  std::vector<i64> dglobal;
  std::vector<i64> prev_offset;

  friend bool operator==(const WireTables&, const WireTables&) = default;
};

/// Flat transportable mirror of CommPlan's run descriptors: the periodic
/// channel descriptors plus the pooled offset tables, and the build-time
/// traffic statistics.
struct WirePlan {
  struct Channel {
    i64 count = 0;
    i64 src_start = 0;
    i64 dst_start = 0;
    i64 period = 0;
    i64 gap_begin = 0;
    i64 src_advance = 0;
    i64 dst_advance = 0;
    i64 src_contig = 0;
    i64 dst_contig = 0;

    friend bool operator==(const Channel&, const Channel&) = default;
  };

  i64 ranks = 0;
  std::vector<Channel> channels;  ///< [receiver * ranks + sender]
  std::vector<i64> src_off;
  std::vector<i64> dst_off;
  i64 message_count = 0;
  i64 remote_elements = 0;
  i64 total_elements = 0;

  friend bool operator==(const WirePlan&, const WirePlan&) = default;
};

/// One decoded response entry: `status` == 0 carries a payload of the
/// requested kind; nonzero carries `error` text and the connection stays up.
struct ReplyEntry {
  i64 status = 0;
  std::string error;
  QueryKind kind = QueryKind::kTables;
  WireTables tables;  ///< valid when status == 0 and kind == kTables
  WirePlan plan;      ///< valid when status == 0 and kind == kCopyPlan
};

// --- request / response payload codecs -------------------------------------

/// Encode a query batch into a kPlanRequest payload (u64 count + records).
[[nodiscard]] std::vector<std::byte> encode_queries(const std::vector<PlanQuery>& qs);

/// Decode a kPlanRequest payload. Returns nullopt (with `error` set) on a
/// malformed payload (count/size mismatch or a batch over kMaxBatchQueries)
/// — a connection-fatal condition.
[[nodiscard]] std::optional<std::vector<PlanQuery>> decode_queries(
    const std::vector<std::byte>& payload, std::string& error);

/// Serialize one EngineTables / CommPlan into a reply blob (status 0).
[[nodiscard]] std::vector<std::byte> serialize_tables(const EngineTables& t);
[[nodiscard]] std::vector<std::byte> serialize_plan(const CommPlan& p);
/// An error reply blob (nonzero status + UTF-8 text).
[[nodiscard]] std::vector<std::byte> serialize_error(i64 status, const std::string& text);

/// Assemble a kPlanResponse payload from per-query blobs.
[[nodiscard]] std::vector<std::byte> encode_response(
    const std::vector<std::vector<std::byte>>& blobs);
/// Assemble the same payload from borrowed blobs (the daemon's cache-hit
/// path: no per-entry copy of the cached vector, one memcpy into the frame).
/// `headroom` zero-bytes are prepended so the daemon can write the frame
/// header in place and send the buffer without a second copy.
[[nodiscard]] std::vector<std::byte> encode_response_shared(
    const std::vector<std::shared_ptr<const std::vector<std::byte>>>& blobs,
    std::size_t headroom = 0);

/// Decode a kPlanResponse payload into typed entries. `kinds` supplies the
/// query kind for each entry (responses do not repeat it). Returns nullopt
/// with `error` set on malformed payloads.
[[nodiscard]] std::optional<std::vector<ReplyEntry>> decode_response(
    const std::vector<std::byte>& payload, const std::vector<QueryKind>& kinds,
    std::string& error);

/// Count the entries of a kPlanResponse payload and their ok/error split
/// without materializing typed entries — the closed-loop driver's fast
/// path. Returns false on a malformed payload.
[[nodiscard]] bool scan_response(const std::vector<std::byte>& payload, i64& ok_entries,
                                 i64& error_entries);

// --- framed I/O over a connected socket ------------------------------------

/// A received frame: header (possibly version/type-mismatched — the serve
/// read path decodes leniently) plus its checksum-unverified payload.
/// Checksums are verified here for in-version frames; lenient frames skip
/// verification because a future version may checksum differently.
struct Frame {
  net::FrameHeader header;
  std::vector<std::byte> payload;
};

/// Write one frame (header + payload). `version` overrides the advertised
/// protocol version — the client's version-mismatch test hook.
void send_frame(int fd, net::FrameType type, const std::byte* payload, std::size_t n,
                u64 version = net::kWireVersion);

/// Read one frame. Returns nullopt on clean EOF before a header byte.
/// Throws TransportError on garbage (bad magic, a claimed payload over
/// `max_payload_bytes`, checksum mismatch of an in-version frame, mid-frame
/// EOF). The daemon passes kMaxRequestPayloadBytes; clients reading
/// responses keep the default.
[[nodiscard]] std::optional<Frame> recv_frame(int fd,
                                              u64 max_payload_bytes = kMaxResponsePayloadBytes);

}  // namespace cyclick::serve
