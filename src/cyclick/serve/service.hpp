// The plan service: compute-once, serve-many answers for address-plan
// queries, and the daemon that exposes them on a Unix-domain socket.
//
// PlanService is the transport-free core: it validates a PlanQuery, builds
// the EngineTables or CommPlan it names, serializes the result once, and
// caches the *serialized reply blob* in a ShardedCache — so a cache
// hit is a hash probe plus one memcpy into the response frame, with no
// re-serialization. ServeDaemon wraps it in the per-endpoint reader/writer
// machinery the socket transport established: an accept loop hands each
// connection a reader thread (parse, answer, enqueue) and a writer thread
// (drain the outbox), so a slow client's socket never blocks computing
// answers for a fast one.
//
// Deployment knobs (also flags on `amtool serve`):
//   CYCLICK_SERVE_CAP     reply-cache capacity in entries   (default 4096)
//   CYCLICK_SERVE_SHARDS  cache shard count, 0 = automatic  (default 0)
//
// Obs counters (per `--metrics`): serve.accepts, serve.queries,
// serve.cache.hits / .misses / .evictions, serve.version_rejects,
// serve.query_errors, serve.bad_frames.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cyclick/net/socket.hpp"
#include "cyclick/serve/protocol.hpp"
#include "cyclick/support/shard_cache.hpp"

namespace cyclick::serve {

/// Validation ceilings for daemon-side plan construction: a query larger
/// than these is answered with an error entry, not computed (one request
/// must not be able to pin the server in an hour-long build).
inline constexpr i64 kMaxServeProcs = 4096;
inline constexpr i64 kMaxServeBlock = i64{1} << 20;
inline constexpr i64 kMaxServeStride = i64{1} << 20;
inline constexpr i64 kMaxServeElements = i64{1} << 20;
inline constexpr i64 kMaxServePlanRanks = 256;

/// Reads CYCLICK_SERVE_CAP / CYCLICK_SERVE_SHARDS (unset or invalid values
/// fall back to the defaults above the knobs' doc block).
[[nodiscard]] std::size_t serve_cap_from_env();
[[nodiscard]] std::size_t serve_shards_from_env();

/// The transport-free query answerer with its sharded reply-blob cache.
/// Thread-safe: many connection readers call answer() concurrently.
class PlanService {
 public:
  explicit PlanService(std::size_t capacity = serve_cap_from_env(),
                       std::size_t shards = serve_shards_from_env())
      : cache_(capacity, shards) {}

  /// Answer one query: cached blob on a hit, validate + build + serialize +
  /// insert on a miss. Invalid queries yield (uncached) error blobs.
  [[nodiscard]] std::shared_ptr<const std::vector<std::byte>> answer(const PlanQuery& q);

  /// Answer a batch into one kPlanResponse payload. `headroom` zero-bytes
  /// are prepended (the daemon reserves frame-header space so the reply is
  /// assembled exactly once and sent without a second copy).
  [[nodiscard]] std::vector<std::byte> answer_batch(const std::vector<PlanQuery>& qs,
                                                    std::size_t headroom = 0);

  [[nodiscard]] ShardedCache<PlanQuery, std::vector<std::byte>, PlanQueryHash>::Stats
  cache_stats() const {
    return cache_.stats();
  }
  [[nodiscard]] std::size_t cache_shards() const noexcept { return cache_.shard_count(); }

 private:
  [[nodiscard]] std::vector<std::byte> compute(const PlanQuery& q) const;

  ShardedCache<PlanQuery, std::vector<std::byte>, PlanQueryHash> cache_;
};

/// `amtool serve`: accept loop + per-connection reader/writer threads over
/// a Unix-domain socket. start() returns once the listener is live; stop()
/// (or destruction) drains every connection thread.
class ServeDaemon {
 public:
  struct Options {
    std::string socket_path;
    std::size_t cache_capacity = serve_cap_from_env();
    std::size_t cache_shards = serve_shards_from_env();
  };

  explicit ServeDaemon(Options opt);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  void start();
  void stop();

  [[nodiscard]] const std::string& socket_path() const noexcept { return opt_.socket_path; }
  [[nodiscard]] PlanService& service() noexcept { return service_; }
  /// Connections accepted since start (monotonic, includes closed ones).
  [[nodiscard]] i64 accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }
  /// Connections currently tracked. Finished connections are reaped by the
  /// accept loop (threads joined, fd closed), so under a churn of
  /// short-lived clients this stays near the live-client count instead of
  /// growing toward fd exhaustion.
  [[nodiscard]] std::size_t live_connections() const {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    return conns_.size();
  }

 private:
  /// One client connection: the reader thread parses requests and enqueues
  /// framed replies; the writer thread drains them. `closing` latches after
  /// a connection-fatal condition (version mismatch, bad frame) once the
  /// pending error frame has been queued.
  struct Connection {
    explicit Connection(net::Fd socket) : fd(std::move(socket)) {}

    net::Fd fd;
    std::thread reader;
    std::thread writer;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<std::byte>> outbox;  ///< pre-framed bytes
    bool closing = false;
    /// Exit markers, set as each loop returns: once both are true the
    /// accept loop reaps the connection (joins the threads, closes the fd).
    std::atomic<bool> reader_done{false};
    std::atomic<bool> writer_done{false};
  };

  void accept_loop();
  /// Erase connections whose reader and writer have both exited, joining
  /// their threads and closing their fds. Runs on the acceptor thread every
  /// accept-poll tick so a long-lived daemon serving short-lived clients
  /// does not accumulate one fd plus two finished threads per connection.
  void reap_finished();
  void reader_loop(Connection& conn);
  void writer_loop(Connection& conn);
  void enqueue(Connection& conn, net::FrameType type, const std::byte* payload, std::size_t n,
               bool then_close);
  /// Enqueue a buffer whose first kHeaderBytes were reserved as headroom:
  /// writes the header in place (no payload copy) and hands it to the
  /// writer thread.
  void enqueue_framed(Connection& conn, net::FrameType type, std::vector<std::byte> framed);

  Options opt_;
  PlanService service_;
  net::Fd listener_;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  std::atomic<i64> accepted_{0};
  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;
};

}  // namespace cyclick::serve
