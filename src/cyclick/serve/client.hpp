// Client side of the plan service: connect, handshake, and run batched
// query round trips against an `amtool serve` daemon.
//
// The client is deliberately synchronous per connection — the closed-loop
// driver gets concurrency by running one PlanClient per client thread, the
// same shape real consumers (one compiler process per connection) have. A
// kError frame from the server surfaces as TransportError carrying the
// server's text, so a version-mismatched client fails with the server's
// named rejection, not a hung read.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cyclick/net/socket.hpp"
#include "cyclick/serve/protocol.hpp"

namespace cyclick::serve {

class PlanClient {
 public:
  struct Options {
    i64 connect_timeout_ms = 5000;
    /// Protocol version to advertise; overriding it exercises the server's
    /// version-mismatch rejection path (tests only).
    u64 advertise_version = net::kWireVersion;
  };

  /// Connect to the daemon at `socket_path` and complete the hello
  /// handshake. Throws TransportError on connection failure or rejection.
  explicit PlanClient(const std::string& socket_path) : PlanClient(socket_path, Options{}) {}
  PlanClient(const std::string& socket_path, Options opt);

  PlanClient(PlanClient&&) = default;
  PlanClient& operator=(PlanClient&&) = default;

  /// One batched round trip, decoded into typed entries.
  [[nodiscard]] std::vector<ReplyEntry> query(const std::vector<PlanQuery>& qs);

  /// One batched round trip, undecoded: returns the raw kPlanResponse
  /// payload after tallying its ok/error entry counts. The driver's hot
  /// path — no per-entry vector materialization.
  [[nodiscard]] std::vector<std::byte> query_raw(const std::vector<PlanQuery>& qs,
                                                 i64& ok_entries, i64& error_entries);

  /// Convenience single-query helpers.
  [[nodiscard]] ReplyEntry query_tables(i64 procs, i64 block, i64 stride);
  [[nodiscard]] ReplyEntry query_copy_plan(i64 procs, i64 block, i64 lower, i64 upper,
                                           i64 stride, i64 dst_block);

 private:
  [[nodiscard]] std::vector<std::byte> round_trip(const std::vector<PlanQuery>& qs);

  net::Fd fd_;
  u64 version_;
};

}  // namespace cyclick::serve
