#include "cyclick/serve/service.hpp"

#include <sys/socket.h>

#include <cstdlib>
#include <cstring>
#include <utility>

#include "cyclick/core/engine.hpp"
#include "cyclick/obs/metrics.hpp"
#include "cyclick/runtime/comm_plan.hpp"
#include "cyclick/runtime/distributed_array.hpp"
#include "cyclick/runtime/spmd.hpp"
#include "cyclick/runtime/transport.hpp"

namespace cyclick::serve {

namespace {

[[nodiscard]] std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<std::size_t>(parsed);
}

/// Validate a query against the service ceilings; returns a human-readable
/// rejection or empty when the query is computable.
[[nodiscard]] std::string validate(const PlanQuery& q) {
  if (q.kind != static_cast<i64>(QueryKind::kTables) &&
      q.kind != static_cast<i64>(QueryKind::kCopyPlan))
    return "unknown query kind " + std::to_string(q.kind);
  if (q.procs < 1 || q.procs > kMaxServeProcs)
    return "procs " + std::to_string(q.procs) + " outside [1, " +
           std::to_string(kMaxServeProcs) + "]";
  if (q.block < 1 || q.block > kMaxServeBlock)
    return "block " + std::to_string(q.block) + " outside [1, " +
           std::to_string(kMaxServeBlock) + "]";
  if (q.stride == 0 || q.stride > kMaxServeStride || q.stride < -kMaxServeStride)
    return "stride " + std::to_string(q.stride) + " outside [-" +
           std::to_string(kMaxServeStride) + ", " + std::to_string(kMaxServeStride) +
           "] \\ {0}";
  if (q.kind == static_cast<i64>(QueryKind::kCopyPlan)) {
    if (q.procs > kMaxServePlanRanks)
      return "copy-plan procs " + std::to_string(q.procs) + " exceeds " +
             std::to_string(kMaxServePlanRanks);
    if (q.dst_block < 1 || q.dst_block > kMaxServeBlock)
      return "dst_block " + std::to_string(q.dst_block) + " outside [1, " +
             std::to_string(kMaxServeBlock) + "]";
    const RegularSection sec{q.lower, q.upper, q.stride};
    if (sec.empty()) return "empty copy-plan section";
    const RegularSection asc = sec.ascending();
    if (asc.lower < 0) return "copy-plan section must be nonnegative";
    if (asc.upper + 1 > kMaxServeElements)
      return "copy-plan extent " + std::to_string(asc.upper + 1) + " exceeds " +
             std::to_string(kMaxServeElements) + " elements";
  }
  return {};
}

}  // namespace

std::size_t serve_cap_from_env() { return env_size("CYCLICK_SERVE_CAP", 4096); }
std::size_t serve_shards_from_env() { return env_size("CYCLICK_SERVE_SHARDS", 0); }

std::vector<std::byte> PlanService::compute(const PlanQuery& q) const {
  if (std::string why = validate(q); !why.empty()) return serialize_error(1, why);
  try {
    if (q.kind == static_cast<i64>(QueryKind::kTables)) {
      const BlockCyclic dist(q.procs, q.block);
      const auto tables = AddressEngine::global().tables(dist, q.stride);
      return serialize_tables(*tables);
    }
    // dst(0 : |sec|-1 : 1) = src(sec): the same shape `amtool xfer`
    // builds, over a cyclic(k) source image of asc.upper + 1 elements.
    const RegularSection ssec{q.lower, q.upper, q.stride};
    const RegularSection asc = ssec.ascending();
    const i64 src_n = asc.upper + 1;
    const i64 dst_n = ssec.size();
    const RegularSection dsec{0, dst_n - 1, 1};
    const SpmdExecutor exec(q.procs);
    const DistributedArray<double> src(BlockCyclic(q.procs, q.block), src_n);
    DistributedArray<double> dst(BlockCyclic(q.procs, q.dst_block), dst_n);
    const CommPlan plan = build_copy_plan(src, ssec, dst, dsec, exec);
    return serialize_plan(plan);
  } catch (const std::exception& e) {
    return serialize_error(2, e.what());
  }
}

std::shared_ptr<const std::vector<std::byte>> PlanService::answer(const PlanQuery& q) {
  CYCLICK_COUNT("serve.queries", 0, 1);
  if (auto hit = cache_.find(q)) {
    CYCLICK_COUNT("serve.cache.hits", 0, 1);
    return hit;
  }
  CYCLICK_COUNT("serve.cache.misses", 0, 1);
  auto blob = std::make_shared<std::vector<std::byte>>(compute(q));
  // Error blobs are answered but never cached: a storm of distinct invalid
  // queries must not evict the plans live clients are hitting. The blob's
  // leading i64 is the status; its low byte is nonzero exactly for errors.
  const bool failed = blob->size() >= 8 && (*blob)[0] != std::byte{0};
  if (failed) {
    CYCLICK_COUNT("serve.query_errors", 0, 1);
    return blob;
  }
  bool evicted = false;
  auto canonical = cache_.insert(q, std::move(blob), &evicted);
  if (evicted) CYCLICK_COUNT("serve.cache.evictions", 0, 1);
  return canonical;
}

std::vector<std::byte> PlanService::answer_batch(const std::vector<PlanQuery>& qs,
                                                 std::size_t headroom) {
  std::vector<std::shared_ptr<const std::vector<std::byte>>> blobs;
  blobs.reserve(qs.size());
  for (const PlanQuery& q : qs) blobs.push_back(answer(q));
  return encode_response_shared(blobs, headroom);
}

ServeDaemon::ServeDaemon(Options opt)
    : opt_(std::move(opt)), service_(opt_.cache_capacity, opt_.cache_shards) {}

ServeDaemon::~ServeDaemon() { stop(); }

void ServeDaemon::start() {
  CYCLICK_REQUIRE(!acceptor_.joinable(), "serve daemon already started");
  listener_ = net::unix_listen(opt_.socket_path, 128);
  stopping_.store(false);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void ServeDaemon::stop() {
  if (!acceptor_.joinable()) return;
  stopping_.store(true);
  acceptor_.join();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    // Shut the socket down so a reader blocked in read_fully sees EOF, and
    // wake the writer so it can observe `closing`.
    {
      const std::lock_guard<std::mutex> lock(c->mu);
      c->closing = true;
    }
    ::shutdown(c->fd.get(), SHUT_RDWR);
    c->cv.notify_all();
    if (c->reader.joinable()) c->reader.join();
    if (c->writer.joinable()) c->writer.join();
  }
  listener_.reset();
}

void ServeDaemon::reap_finished() {
  std::vector<std::unique_ptr<Connection>> dead;
  {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    auto keep = conns_.begin();
    for (auto& c : conns_) {
      if (c->reader_done.load(std::memory_order_acquire) &&
          c->writer_done.load(std::memory_order_acquire)) {
        dead.push_back(std::move(c));
      } else {
        *keep++ = std::move(c);
      }
    }
    conns_.erase(keep, conns_.end());
  }
  // Join (and close, via ~Connection) outside the lock: the threads have
  // already returned past their done flags, so these joins cannot block on
  // connection work.
  for (auto& c : dead) {
    if (c->reader.joinable()) c->reader.join();
    if (c->writer.joinable()) c->writer.join();
  }
}

void ServeDaemon::accept_loop() {
  while (!stopping_.load()) {
    reap_finished();
    net::Fd conn_fd;
    try {
      conn_fd = net::unix_accept(listener_, 100);
    } catch (const TransportError&) {
      continue;  // accept timeout: poll the stop flag and wait again
    }
    CYCLICK_COUNT("serve.accepts", 0, 1);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Connection>(std::move(conn_fd));
    Connection& ref = *conn;
    ref.reader = std::thread([this, &ref] { reader_loop(ref); });
    ref.writer = std::thread([this, &ref] { writer_loop(ref); });
    const std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(std::move(conn));
  }
}

void ServeDaemon::enqueue(Connection& conn, net::FrameType type, const std::byte* payload,
                          std::size_t n, bool then_close) {
  net::FrameHeader h;
  h.type = type;
  h.payload_bytes = n;
  h.checksum = net::fnv1a64w(payload, n);
  std::vector<std::byte> framed(net::kHeaderBytes + n);
  net::encode_header(h, framed.data());
  if (n > 0) std::memcpy(framed.data() + net::kHeaderBytes, payload, n);
  {
    const std::lock_guard<std::mutex> lock(conn.mu);
    conn.outbox.push_back(std::move(framed));
    if (then_close) conn.closing = true;
  }
  conn.cv.notify_all();
}

void ServeDaemon::enqueue_framed(Connection& conn, net::FrameType type,
                                 std::vector<std::byte> framed) {
  net::FrameHeader h;
  h.type = type;
  h.payload_bytes = framed.size() - net::kHeaderBytes;
  h.checksum = net::fnv1a64w(framed.data() + net::kHeaderBytes, h.payload_bytes);
  net::encode_header(h, framed.data());
  {
    const std::lock_guard<std::mutex> lock(conn.mu);
    conn.outbox.push_back(std::move(framed));
  }
  conn.cv.notify_all();
}

void ServeDaemon::reader_loop(Connection& conn) {
  bool saw_hello = false;
  try {
    for (;;) {
      const auto frame = recv_frame(conn.fd.get(), kMaxRequestPayloadBytes);
      if (!frame) break;  // clean disconnect
      if (frame->header.version != net::kWireVersion) {
        CYCLICK_COUNT("serve.version_rejects", 0, 1);
        const std::string text = "unsupported protocol version " +
                                 std::to_string(frame->header.version) + " (this server speaks " +
                                 std::to_string(net::kWireVersion) + ")";
        enqueue(conn, net::FrameType::kError,
                reinterpret_cast<const std::byte*>(text.data()), text.size(),
                /*then_close=*/true);
        break;
      }
      if (frame->header.type == net::FrameType::kHello) {
        saw_hello = true;
        enqueue(conn, net::FrameType::kHello, nullptr, 0, /*then_close=*/false);
        continue;
      }
      if (frame->header.type != net::FrameType::kPlanRequest || !saw_hello) {
        CYCLICK_COUNT("serve.bad_frames", 0, 1);
        const std::string text = saw_hello
                                     ? "unexpected frame type " +
                                           std::to_string(static_cast<u64>(frame->header.type))
                                     : "plan request before hello handshake";
        enqueue(conn, net::FrameType::kError,
                reinterpret_cast<const std::byte*>(text.data()), text.size(),
                /*then_close=*/true);
        break;
      }
      std::string err;
      const auto queries = decode_queries(frame->payload, err);
      if (!queries) {
        CYCLICK_COUNT("serve.bad_frames", 0, 1);
        enqueue(conn, net::FrameType::kError,
                reinterpret_cast<const std::byte*>(err.data()), err.size(),
                /*then_close=*/true);
        break;
      }
      enqueue_framed(conn, net::FrameType::kPlanResponse,
                     service_.answer_batch(*queries, net::kHeaderBytes));
    }
  } catch (const TransportError&) {
    CYCLICK_COUNT("serve.bad_frames", 0, 1);
  } catch (const std::exception&) {
    // Anything else (allocation failure, a decode invariant) must close
    // this one connection, not escape the thread and terminate the daemon.
    CYCLICK_COUNT("serve.bad_frames", 0, 1);
  }
  // Reader is done: after the outbox drains the writer should exit too.
  {
    const std::lock_guard<std::mutex> lock(conn.mu);
    conn.closing = true;
  }
  conn.cv.notify_all();
  conn.reader_done.store(true, std::memory_order_release);
}

void ServeDaemon::writer_loop(Connection& conn) {
  try {
    for (;;) {
      std::vector<std::byte> framed;
      {
        std::unique_lock<std::mutex> lock(conn.mu);
        conn.cv.wait(lock, [&conn] { return !conn.outbox.empty() || conn.closing; });
        if (conn.outbox.empty()) break;  // closing with nothing left to flush
        framed = std::move(conn.outbox.front());
        conn.outbox.pop_front();
      }
      net::write_fully(conn.fd.get(), framed.data(), framed.size());
    }
  } catch (const TransportError&) {
    // Peer vanished mid-write; nothing to flush to.
  }
  ::shutdown(conn.fd.get(), SHUT_RDWR);
  conn.writer_done.store(true, std::memory_order_release);
}

}  // namespace cyclick::serve
