#include "cyclick/runtime/spmd.hpp"

#include <exception>
#include <thread>
#include <vector>

namespace cyclick {

SpmdExecutor::SpmdExecutor(i64 ranks, Mode mode) : ranks_(ranks), mode_(mode) {
  CYCLICK_REQUIRE(ranks >= 1, "executor needs at least one rank");
}

void SpmdExecutor::run(const std::function<void(i64)>& fn) const {
  if (mode_ == Mode::kSequential || ranks_ == 1) {
    for (i64 r = 0; r < ranks_; ++r) fn(r);
    return;
  }

  // One thread per rank, not a worker pool: SPMD rank functions may block
  // on messages from other ranks (e.g. single-phase exchange protocols
  // over a Transport), and multiplexing ranks onto fewer OS threads would
  // deadlock such protocols. Simulated machines are small (tens to a few
  // hundred ranks), so per-rank threads are cheap.
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks_));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(ranks_));
  for (i64 r = 0; r < ranks_; ++r) {
    pool.emplace_back([&, r] {
      try {
        fn(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace cyclick
