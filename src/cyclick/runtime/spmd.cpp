#include "cyclick/runtime/spmd.hpp"

#include <exception>
#include <thread>
#include <vector>

#include "cyclick/obs/metrics.hpp"
#include "cyclick/obs/trace.hpp"

namespace cyclick {

namespace {

// The effective schedule of the innermost run() phase on this thread:
// 0 = outside any phase, 1 = sequential, 2 = one thread per rank. A plain
// int (not optional) keeps the thread_local access trivially cheap.
thread_local int t_spmd_mode = 0;

// RAII so exceptions from rank functions restore the previous state.
struct ModeScope {
  int prev;
  explicit ModeScope(int mode) : prev(t_spmd_mode) { t_spmd_mode = mode; }
  ~ModeScope() { t_spmd_mode = prev; }
  ModeScope(const ModeScope&) = delete;
  ModeScope& operator=(const ModeScope&) = delete;
};

}  // namespace

std::optional<SpmdExecutor::Mode> current_spmd_mode() noexcept {
  switch (t_spmd_mode) {
    case 1: return SpmdExecutor::Mode::kSequential;
    case 2: return SpmdExecutor::Mode::kThreads;
    default: return std::nullopt;
  }
}

SpmdExecutor::SpmdExecutor(i64 ranks, Mode mode) : ranks_(ranks), mode_(mode) {
  CYCLICK_REQUIRE(ranks >= 1, "executor needs at least one rank");
}

void SpmdExecutor::run(const std::function<void(i64)>& fn) const {
  // Every run() is one barrier-delimited phase; telemetry records the
  // phase count, the whole-phase span on the driver row, and a per-rank
  // histogram of rank-function times (all behind a single disabled-state
  // branch each).
  CYCLICK_COUNT("spmd.phases", 0, 1);
  CYCLICK_SPAN("spmd.phase", obs::kMainTid);

  if (mode_ == Mode::kSequential || ranks_ == 1) {
    const ModeScope scope(1);
    for (i64 r = 0; r < ranks_; ++r) {
      CYCLICK_TIME_SCOPE("spmd.rank_us", r);
      fn(r);
    }
    return;
  }

  // One thread per rank, not a worker pool: SPMD rank functions may block
  // on messages from other ranks (e.g. single-phase exchange protocols
  // over a Transport), and multiplexing ranks onto fewer OS threads would
  // deadlock such protocols. Simulated machines are small (tens to a few
  // hundred ranks), so per-rank threads are cheap.
  //
  // Exception contract: every thread is always joined; if several rank
  // functions throw, the first exception *in rank order* propagates (the
  // rest are dropped).
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks_));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(ranks_));
  for (i64 r = 0; r < ranks_; ++r) {
    pool.emplace_back([&, r] {
      try {
        const ModeScope scope(2);
        CYCLICK_TIME_SCOPE("spmd.rank_us", r);
        fn(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace cyclick
