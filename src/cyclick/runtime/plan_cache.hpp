// Keyed cache of compressed communication plans.
//
// A plan for dst(dsec) = src(ssec) depends only on the two mappings
// (distribution + alignment + array extent), the two sections, and the
// rank count — not on the array contents or element type (plans hold
// element-granular addresses). Iterative solvers therefore hit the same
// key every sweep; caching turns the per-sweep O(|section|) plan build
// into a hash lookup. copy_section consults the process-wide cache, so
// cshift / eoshift / DSL statement loops replay plans automatically.
//
// Sharing caveat: cached plans are immutable except for their scratch
// arena, which one execution at a time may use (see comm_plan.hpp).
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "cyclick/obs/metrics.hpp"
#include "cyclick/runtime/redistribute.hpp"

namespace cyclick {

/// Everything a copy plan's shape depends on.
struct PlanKey {
  i64 ranks;
  i64 src_procs, src_block, src_align_a, src_align_b, src_size;
  i64 dst_procs, dst_block, dst_align_a, dst_align_b, dst_size;
  i64 ssec_lower, ssec_upper, ssec_stride;
  i64 dsec_lower, dsec_upper, dsec_stride;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const noexcept {
    // FNV-1a over the key's fields.
    u64 h = 1469598103934665603ULL;
    const auto mix = [&h](i64 v) {
      h ^= static_cast<u64>(v);
      h *= 1099511628211ULL;
    };
    mix(k.ranks);
    mix(k.src_procs); mix(k.src_block); mix(k.src_align_a); mix(k.src_align_b);
    mix(k.src_size);
    mix(k.dst_procs); mix(k.dst_block); mix(k.dst_align_a); mix(k.dst_align_b);
    mix(k.dst_size);
    mix(k.ssec_lower); mix(k.ssec_upper); mix(k.ssec_stride);
    mix(k.dsec_lower); mix(k.dsec_upper); mix(k.dsec_stride);
    return static_cast<std::size_t>(h);
  }
};

template <typename T>
PlanKey make_plan_key(const DistributedArray<T>& src, const RegularSection& ssec,
                      const DistributedArray<T>& dst, const RegularSection& dsec,
                      const SpmdExecutor& exec) {
  return PlanKey{exec.ranks(),
                 src.dist().procs(), src.dist().block_size(),
                 src.alignment().a, src.alignment().b, src.size(),
                 dst.dist().procs(), dst.dist().block_size(),
                 dst.alignment().a, dst.alignment().b, dst.size(),
                 ssec.lower, ssec.upper, ssec.stride,
                 dsec.lower, dsec.upper, dsec.stride};
}

/// Bounded LRU cache PlanKey -> shared immutable CommPlan, with hit / miss
/// / eviction counters for the bench harness. Thread-safe; evicted plans
/// stay alive for as long as callers hold their shared_ptr.
class PlanCache {
 public:
  struct Stats {
    i64 hits = 0;
    i64 misses = 0;
    i64 evictions = 0;
    std::size_t size = 0;
  };

  explicit PlanCache(std::size_t capacity = 128) : capacity_(capacity) {
    CYCLICK_REQUIRE(capacity >= 1, "plan cache needs capacity >= 1");
  }

  /// Look up a plan; counts a hit (and refreshes recency) or a miss.
  /// Instance counters feed stats(); the process-wide telemetry registry
  /// sees the same increments so `--metrics` aggregates across caches.
  [[nodiscard]] std::shared_ptr<const CommPlan> find(const PlanKey& key) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      CYCLICK_COUNT("plancache.misses", 0, 1);
      return nullptr;
    }
    ++hits_;
    CYCLICK_COUNT("plancache.hits", 0, 1);
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }

  /// Insert (or refresh) a plan, evicting the least recently used entry
  /// when over capacity.
  void insert(const PlanKey& key, std::shared_ptr<const CommPlan> plan) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(plan);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, std::move(plan));
    map_.emplace(key, lru_.begin());
    if (map_.size() > capacity_) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
      ++evictions_;
      CYCLICK_COUNT("plancache.evictions", 0, 1);
    }
  }

  [[nodiscard]] Stats stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return {hits_, misses_, evictions_, map_.size()};
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
    hits_ = misses_ = evictions_ = 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// The process-wide cache copy_section consults.
  static PlanCache& global() {
    static PlanCache cache;
    return cache;
  }

 private:
  using Entry = std::pair<PlanKey, std::shared_ptr<const CommPlan>>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<PlanKey, std::list<Entry>::iterator, PlanKeyHash> map_;
  i64 hits_ = 0;
  i64 misses_ = 0;
  i64 evictions_ = 0;
};

/// Key for N-D region plans: arbitrary arity means a flat i64 vector
/// (ranks, spread flag, then per-dimension mapping + grid + section
/// fields) instead of a fixed struct. Built by cached_region_plan in
/// multidim_array.hpp.
using RegionPlanKey = std::vector<i64>;

struct RegionPlanKeyHash {
  std::size_t operator()(const RegionPlanKey& key) const noexcept {
    // FNV-1a over the flattened fields (length included via the seed walk).
    u64 h = 1469598103934665603ULL;
    for (const i64 v : key) {
      h ^= static_cast<u64>(v);
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Bounded LRU cache RegionPlanKey -> shared immutable RedistributionPlan,
/// the N-D sibling of PlanCache: iterative stencils (heat2d's four halo
/// copies per sweep) hit the same keys every iteration. Thread-safe; the
/// same scratch-arena sharing caveat as PlanCache applies.
class RegionPlanCache {
 public:
  explicit RegionPlanCache(std::size_t capacity = 128) : capacity_(capacity) {
    CYCLICK_REQUIRE(capacity >= 1, "plan cache needs capacity >= 1");
  }

  [[nodiscard]] std::shared_ptr<const RedistributionPlan> find(const RegionPlanKey& key) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it == map_.end()) {
      CYCLICK_COUNT("regioncache.misses", 0, 1);
      return nullptr;
    }
    CYCLICK_COUNT("regioncache.hits", 0, 1);
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }

  void insert(const RegionPlanKey& key, std::shared_ptr<const RedistributionPlan> plan) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(plan);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, std::move(plan));
    map_.emplace(key, lru_.begin());
    if (map_.size() > capacity_) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
      CYCLICK_COUNT("regioncache.evictions", 0, 1);
    }
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

  /// The process-wide cache copy_region / spread_region consult.
  static RegionPlanCache& global() {
    static RegionPlanCache cache;
    return cache;
  }

 private:
  using Entry = std::pair<RegionPlanKey, std::shared_ptr<const RedistributionPlan>>;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<RegionPlanKey, std::list<Entry>::iterator, RegionPlanKeyHash> map_;
};

/// Cache-aware plan lookup: returns the shared plan for dst(dsec) =
/// src(ssec), building (and inserting) it on a miss.
template <typename T>
std::shared_ptr<const CommPlan> cached_copy_plan(const DistributedArray<T>& src,
                                                 const RegularSection& ssec,
                                                 DistributedArray<T>& dst,
                                                 const RegularSection& dsec,
                                                 const SpmdExecutor& exec,
                                                 PlanCache& cache = PlanCache::global()) {
  const PlanKey key = make_plan_key(src, ssec, dst, dsec, exec);
  if (auto hit = cache.find(key)) return hit;
  auto plan = std::make_shared<const CommPlan>(build_copy_plan(src, ssec, dst, dsec, exec));
  cache.insert(key, plan);
  return plan;
}

}  // namespace cyclick
