// Keyed cache of compressed communication plans.
//
// A plan for dst(dsec) = src(ssec) depends only on the two mappings
// (distribution + alignment + array extent), the two sections, and the
// rank count — not on the array contents or element type (plans hold
// element-granular addresses). Iterative solvers therefore hit the same
// key every sweep; caching turns the per-sweep O(|section|) plan build
// into a hash lookup. copy_section consults the process-wide cache, so
// cshift / eoshift / DSL statement loops replay plans automatically.
//
// Sharing caveat: cached plans are immutable except for their scratch
// arena, which one execution at a time may use (see comm_plan.hpp).
#pragma once

#include <memory>
#include <utility>

#include "cyclick/obs/metrics.hpp"
#include "cyclick/runtime/redistribute.hpp"
#include "cyclick/support/shard_cache.hpp"

namespace cyclick {

/// Everything a copy plan's shape depends on.
struct PlanKey {
  i64 ranks;
  i64 src_procs, src_block, src_align_a, src_align_b, src_size;
  i64 dst_procs, dst_block, dst_align_a, dst_align_b, dst_size;
  i64 ssec_lower, ssec_upper, ssec_stride;
  i64 dsec_lower, dsec_upper, dsec_stride;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const noexcept {
    // FNV-1a over the key's fields.
    u64 h = 1469598103934665603ULL;
    const auto mix = [&h](i64 v) {
      h ^= static_cast<u64>(v);
      h *= 1099511628211ULL;
    };
    mix(k.ranks);
    mix(k.src_procs); mix(k.src_block); mix(k.src_align_a); mix(k.src_align_b);
    mix(k.src_size);
    mix(k.dst_procs); mix(k.dst_block); mix(k.dst_align_a); mix(k.dst_align_b);
    mix(k.dst_size);
    mix(k.ssec_lower); mix(k.ssec_upper); mix(k.ssec_stride);
    mix(k.dsec_lower); mix(k.dsec_upper); mix(k.dsec_stride);
    return static_cast<std::size_t>(h);
  }
};

template <typename T>
PlanKey make_plan_key(const DistributedArray<T>& src, const RegularSection& ssec,
                      const DistributedArray<T>& dst, const RegularSection& dsec,
                      const SpmdExecutor& exec) {
  return PlanKey{exec.ranks(),
                 src.dist().procs(), src.dist().block_size(),
                 src.alignment().a, src.alignment().b, src.size(),
                 dst.dist().procs(), dst.dist().block_size(),
                 dst.alignment().a, dst.alignment().b, dst.size(),
                 ssec.lower, ssec.upper, ssec.stride,
                 dsec.lower, dsec.upper, dsec.stride};
}

/// Bounded sharded-LRU cache PlanKey -> shared immutable CommPlan, with
/// hit / miss / eviction counters for the bench harness. Thread-safe (lock
/// scope is one shard of ShardedCache); evicted plans stay alive for
/// as long as callers hold their shared_ptr.
class PlanCache {
 public:
  struct Stats {
    i64 hits = 0;
    i64 misses = 0;
    i64 evictions = 0;
    std::size_t size = 0;
  };

  /// `shards` == 0 picks the automatic shard count for the capacity (1 for
  /// small caches, preserving exact global LRU order).
  explicit PlanCache(std::size_t capacity = 128, std::size_t shards = 0)
      : cache_(capacity, shards) {
    CYCLICK_REQUIRE(capacity >= 1, "plan cache needs capacity >= 1");
  }

  /// Look up a plan; counts a hit (and refreshes recency) or a miss.
  /// Instance counters feed stats(); the process-wide telemetry registry
  /// sees the same increments so `--metrics` aggregates across caches.
  [[nodiscard]] std::shared_ptr<const CommPlan> find(const PlanKey& key) {
    auto hit = cache_.find(key);
    if (hit == nullptr) {
      CYCLICK_COUNT("plancache.misses", 0, 1);
      return nullptr;
    }
    CYCLICK_COUNT("plancache.hits", 0, 1);
    return hit;
  }

  /// Insert a plan, evicting the shard's least recently used entry when
  /// over capacity. Keep-existing: a plan already cached under `key` stays
  /// canonical, so racing builders converge on one object.
  void insert(const PlanKey& key, std::shared_ptr<const CommPlan> plan) {
    bool evicted = false;
    cache_.insert(key, std::move(plan), &evicted);
    if (evicted) CYCLICK_COUNT("plancache.evictions", 0, 1);
  }

  [[nodiscard]] Stats stats() const {
    const auto st = cache_.stats();
    return {st.hits, st.misses, st.evictions, st.size};
  }

  void clear() {
    cache_.clear();
    cache_.reset_stats();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return cache_.capacity(); }
  [[nodiscard]] std::size_t shard_count() const noexcept { return cache_.shard_count(); }

  /// The process-wide cache copy_section consults.
  static PlanCache& global() {
    static PlanCache cache;
    return cache;
  }

 private:
  ShardedCache<PlanKey, CommPlan, PlanKeyHash> cache_;
};

/// Key for N-D region plans: arbitrary arity means a flat i64 vector
/// (ranks, spread flag, then per-dimension mapping + grid + section
/// fields) instead of a fixed struct. Built by cached_region_plan in
/// multidim_array.hpp.
using RegionPlanKey = std::vector<i64>;

struct RegionPlanKeyHash {
  std::size_t operator()(const RegionPlanKey& key) const noexcept {
    // FNV-1a over the flattened fields (length included via the seed walk).
    u64 h = 1469598103934665603ULL;
    for (const i64 v : key) {
      h ^= static_cast<u64>(v);
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Bounded LRU cache RegionPlanKey -> shared immutable RedistributionPlan,
/// the N-D sibling of PlanCache: iterative stencils (heat2d's four halo
/// copies per sweep) hit the same keys every iteration. Thread-safe; the
/// same scratch-arena sharing caveat as PlanCache applies.
class RegionPlanCache {
 public:
  explicit RegionPlanCache(std::size_t capacity = 128, std::size_t shards = 0)
      : cache_(capacity, shards) {
    CYCLICK_REQUIRE(capacity >= 1, "plan cache needs capacity >= 1");
  }

  [[nodiscard]] std::shared_ptr<const RedistributionPlan> find(const RegionPlanKey& key) {
    auto hit = cache_.find(key);
    if (hit == nullptr) {
      CYCLICK_COUNT("regioncache.misses", 0, 1);
      return nullptr;
    }
    CYCLICK_COUNT("regioncache.hits", 0, 1);
    return hit;
  }

  void insert(const RegionPlanKey& key, std::shared_ptr<const RedistributionPlan> plan) {
    bool evicted = false;
    cache_.insert(key, std::move(plan), &evicted);
    if (evicted) CYCLICK_COUNT("regioncache.evictions", 0, 1);
  }

  void clear() { cache_.clear(); }

  [[nodiscard]] std::size_t size() const { return cache_.stats().size; }

  /// The process-wide cache copy_region / spread_region consult.
  static RegionPlanCache& global() {
    static RegionPlanCache cache;
    return cache;
  }

 private:
  ShardedCache<RegionPlanKey, RedistributionPlan, RegionPlanKeyHash> cache_;
};

/// Cache-aware plan lookup: returns the shared plan for dst(dsec) =
/// src(ssec), building (and inserting) it on a miss.
template <typename T>
std::shared_ptr<const CommPlan> cached_copy_plan(const DistributedArray<T>& src,
                                                 const RegularSection& ssec,
                                                 DistributedArray<T>& dst,
                                                 const RegularSection& dsec,
                                                 const SpmdExecutor& exec,
                                                 PlanCache& cache = PlanCache::global()) {
  const PlanKey key = make_plan_key(src, ssec, dst, dsec, exec);
  if (auto hit = cache.find(key)) return hit;
  auto plan = std::make_shared<const CommPlan>(build_copy_plan(src, ssec, dst, dsec, exec));
  // Keep-existing insert: if another thread raced this build and cached its
  // plan first, ours is dropped. Safe because PlanKey fully determines the
  // plan's content — returning either copy is equivalent; inserting here is
  // never a refresh. See ShardedCache::insert for the contract.
  cache.insert(key, plan);
  return plan;
}

}  // namespace cyclick
