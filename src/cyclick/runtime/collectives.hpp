// Collective operations over the byte Transport: broadcast, gather,
// all-reduce, all-to-all — the communication layer a real HPF runtime
// builds its array statements and library routines on. All collectives are
// called SPMD (every rank calls with its own rank id inside one executor
// phase) and rely on the transport's blocking receives, so they REQUIRE
// the one-thread-per-rank executor (SpmdExecutor::Mode::kThreads): under a
// sequential schedule a rank would block on a receive whose matching send
// has not run yet.
#pragma once

#include <span>
#include <vector>

#include "cyclick/runtime/transport.hpp"

namespace cyclick {

/// Broadcast `root`'s values to every rank. Call SPMD; on non-root ranks
/// `values` is overwritten with the root's data (it must already have the
/// right size). Fan-out is a simple root-sends-to-all (log-tree topologies
/// are a transport-level optimization a real port would add).
template <typename T>
void bcast(Transport& tr, i64 rank, i64 root, std::vector<T>& values) {
  const i64 p = tr.ranks();
  CYCLICK_REQUIRE(root >= 0 && root < p, "broadcast root out of range");
  if (rank == root) {
    for (i64 r = 0; r < p; ++r)
      if (r != root) send_values<T>(tr, root, r, values);
    return;
  }
  values = recv_values<T>(tr, rank, root);
}

/// Gather every rank's buffer at `root` (concatenated in rank order).
/// Returns the concatenation on the root, an empty vector elsewhere.
template <typename T>
std::vector<T> gather(Transport& tr, i64 rank, i64 root, std::span<const T> mine) {
  const i64 p = tr.ranks();
  CYCLICK_REQUIRE(root >= 0 && root < p, "gather root out of range");
  if (rank != root) {
    send_values<T>(tr, rank, root, mine);
    return {};
  }
  std::vector<T> all;
  for (i64 r = 0; r < p; ++r) {
    if (r == root) {
      all.insert(all.end(), mine.begin(), mine.end());
    } else {
      const std::vector<T> part = recv_values<T>(tr, root, r);
      all.insert(all.end(), part.begin(), part.end());
    }
  }
  return all;
}

/// All-reduce: elementwise op-fold of every rank's buffer, result on all
/// ranks. Reduction happens at rank 0, which broadcasts the result
/// (deterministic association order: rank 0, 1, 2, ...).
template <typename T, typename Op>
void allreduce(Transport& tr, i64 rank, std::vector<T>& values, Op&& op) {
  const i64 p = tr.ranks();
  if (p == 1) return;
  if (rank == 0) {
    for (i64 r = 1; r < p; ++r) {
      const std::vector<T> part = recv_values<T>(tr, 0, r);
      CYCLICK_REQUIRE(part.size() == values.size(), "allreduce buffer size mismatch");
      for (std::size_t i = 0; i < values.size(); ++i) values[i] = op(values[i], part[i]);
    }
    for (i64 r = 1; r < p; ++r) send_values<T>(tr, 0, r, values);
    return;
  }
  send_values<T>(tr, rank, 0, values);
  values = recv_values<T>(tr, rank, 0);
}

/// All-to-all with per-pair payloads: `outgoing[r]` is what this rank sends
/// to rank r; returns `incoming` with incoming[r] = what rank r sent here.
/// Self-payload transfers locally.
template <typename T>
std::vector<std::vector<T>> alltoallv(Transport& tr, i64 rank,
                                      const std::vector<std::vector<T>>& outgoing) {
  const i64 p = tr.ranks();
  CYCLICK_REQUIRE(static_cast<i64>(outgoing.size()) == p, "alltoallv arity mismatch");
  for (i64 r = 0; r < p; ++r)
    if (r != rank) send_values<T>(tr, rank, r, outgoing[static_cast<std::size_t>(r)]);
  std::vector<std::vector<T>> incoming(static_cast<std::size_t>(p));
  incoming[static_cast<std::size_t>(rank)] = outgoing[static_cast<std::size_t>(rank)];
  for (i64 r = 0; r < p; ++r)
    if (r != rank) incoming[static_cast<std::size_t>(r)] = recv_values<T>(tr, rank, r);
  return incoming;
}

}  // namespace cyclick
