// Collective operations over the byte Transport: broadcast, gather,
// all-reduce, all-to-all — the communication layer a real HPF runtime
// builds its array statements and library routines on.
//
// Topologies. bcast/gather/allreduce run over a binomial tree on the
// *relative* rank vr = (rank - root) mod p: vr's parent is vr with its
// lowest set bit cleared, and its children are vr + 2^j for every 2^j
// above that bit (clipped to p). Every collective therefore finishes in
// ceil(log2 p) rounds instead of the p-1 sends of a linear fan-out, and
// non-power-of-two worlds just lose the out-of-range children. All-to-all
// uses the redistribution layer's round-robin rotation: in phase f each
// rank sends to (rank + f) mod p and receives from (rank - f) mod p, a
// perfect matching per phase, so no destination takes p simultaneous
// senders.
//
// Determinism. Every schedule is a pure function of (rank, root, p):
// parents fold children in increasing-distance order (child vr+1 first,
// then vr+2, vr+4, ...), and allreduce folds as acc = op(acc, child_part)
// at each step. The association order of a tree fold differs from the
// linear left fold, so non-associative floating-point reductions can give
// different (equally valid) roundings than `linear::allreduce`; integer
// and exact payloads agree bit-for-bit. The pre-existing linear
// implementations are kept verbatim in namespace `linear` as the
// differential-testing reference.
//
// Scheduling discipline. All collectives are called SPMD (every rank
// calls with its own rank id inside one executor phase) and rely on the
// transport's blocking receives, so they REQUIRE the one-thread-per-rank
// executor (SpmdExecutor::Mode::kThreads) or one OS process per rank.
// Under a sequential schedule a rank would block forever on a receive
// whose matching send has not run yet; rather than hang, every collective
// consults current_spmd_mode() and throws CollectiveDeadlockError when it
// would be called from a sequential phase with more than one rank.
#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "cyclick/runtime/spmd.hpp"
#include "cyclick/runtime/transport.hpp"

namespace cyclick {

/// Thrown instead of deadlocking when a blocking collective is invoked
/// from a sequential SPMD phase with more than one rank: the matching
/// sends of its blocking receives could never be posted.
class CollectiveDeadlockError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

/// Refuse schedules under which a blocking collective cannot complete.
/// Outside any SPMD phase (e.g. a rank process of the proc backend, where
/// peers advance independently) every schedule is fine.
inline void require_collective_schedule(const Transport& tr, const char* op) {
  if (tr.ranks() <= 1) return;
  if (current_spmd_mode() == SpmdExecutor::Mode::kSequential)
    throw CollectiveDeadlockError(
        std::string(op) +
        " called under the sequential SPMD schedule with " + std::to_string(tr.ranks()) +
        " ranks: its blocking receives can never be matched (the sending rank would only "
        "run after this one returns). Use SpmdExecutor::Mode::kThreads or one process per "
        "rank.");
}

}  // namespace detail

/// Broadcast `root`'s values to every rank over the binomial tree. Call
/// SPMD; on non-root ranks `values` is overwritten with the root's data.
/// Each parent sends to its farther child first (distance 2^j before
/// 2^(j-1)), so the whole fan-out completes in ceil(log2 p) rounds.
template <typename T>
void bcast(Transport& tr, i64 rank, i64 root, std::vector<T>& values) {
  const i64 p = tr.ranks();
  CYCLICK_REQUIRE(root >= 0 && root < p, "broadcast root out of range");
  CYCLICK_REQUIRE(rank >= 0 && rank < p, "rank out of range");
  if (p == 1) return;
  detail::require_collective_schedule(tr, "bcast");
  const i64 vr = (rank - root + p) % p;
  // mask ends at the lowest set bit of vr (the distance to the parent);
  // for the root it runs past p, covering every child distance.
  i64 mask = 1;
  while (mask < p && (vr & mask) == 0) mask <<= 1;
  if (vr != 0) values = recv_values<T>(tr, rank, ((vr - mask) + root) % p);
  mask >>= 1;
  for (; mask > 0; mask >>= 1) {
    const i64 child = vr + mask;
    if (child < p) send_values<T>(tr, rank, (child + root) % p, values);
  }
}

/// Gather every rank's buffer at `root` (concatenated in absolute rank
/// order). Returns the concatenation on the root, an empty vector
/// elsewhere. Contributions may differ in size, so each tree edge carries
/// two messages: the per-rank element counts of the sender's subtree
/// (relative-rank order), then the matching concatenated payload; the
/// root reassembles absolute order from the counts.
template <typename T>
std::vector<T> gather(Transport& tr, i64 rank, i64 root, std::span<const T> mine) {
  const i64 p = tr.ranks();
  CYCLICK_REQUIRE(root >= 0 && root < p, "gather root out of range");
  CYCLICK_REQUIRE(rank >= 0 && rank < p, "rank out of range");
  if (p == 1) return std::vector<T>(mine.begin(), mine.end());
  detail::require_collective_schedule(tr, "gather");
  const i64 vr = (rank - root + p) % p;
  // The subtree rooted at vr covers the contiguous relative ranks
  // [vr, vr + 2^h) clipped to p; children arrive in increasing distance
  // order, so `counts`/`data` stay indexed by relative offset from vr.
  std::vector<i64> counts{static_cast<i64>(mine.size())};
  std::vector<T> data(mine.begin(), mine.end());
  for (i64 mask = 1; mask < p; mask <<= 1) {
    if ((vr & mask) != 0) {
      const i64 parent = ((vr - mask) + root) % p;
      send_values<i64>(tr, rank, parent, std::span<const i64>(counts));
      send_values<T>(tr, rank, parent, std::span<const T>(data));
      return {};
    }
    const i64 child = vr + mask;
    if (child < p) {
      const i64 abs_child = (child + root) % p;
      const std::vector<i64> ccounts = recv_values<i64>(tr, rank, abs_child);
      const std::vector<T> cdata = recv_values<T>(tr, rank, abs_child);
      counts.insert(counts.end(), ccounts.begin(), ccounts.end());
      data.insert(data.end(), cdata.begin(), cdata.end());
    }
  }
  // Root: `data` holds relative ranks 0..p-1 in order; emit absolute order.
  CYCLICK_ASSERT(static_cast<i64>(counts.size()) == p);
  std::vector<i64> prefix(static_cast<std::size_t>(p) + 1, 0);
  for (i64 i = 0; i < p; ++i)
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] + counts[static_cast<std::size_t>(i)];
  std::vector<T> all;
  all.reserve(data.size());
  for (i64 a = 0; a < p; ++a) {
    const i64 rel = (a - root + p) % p;
    all.insert(all.end(),
               data.begin() + static_cast<std::ptrdiff_t>(prefix[static_cast<std::size_t>(rel)]),
               data.begin() +
                   static_cast<std::ptrdiff_t>(prefix[static_cast<std::size_t>(rel) + 1]));
  }
  return all;
}

/// All-reduce: elementwise op-fold of every rank's buffer, result on all
/// ranks. Binomial reduce to rank 0 followed by a binomial broadcast:
/// at each distance 2^j a holder with that bit set ships its partial to
/// rank - 2^j, which folds it as values = op(values, incoming) — so the
/// association is the fixed binomial-tree order (rank 0 folds 1, then the
/// 2..3 aggregate, then 4..7, ...). For non-associative ops this rounding
/// differs from linear::allreduce's left fold; both are deterministic.
template <typename T, typename Op>
void allreduce(Transport& tr, i64 rank, std::vector<T>& values, Op&& op) {
  const i64 p = tr.ranks();
  if (p == 1) return;
  detail::require_collective_schedule(tr, "allreduce");
  for (i64 mask = 1; mask < p; mask <<= 1) {
    if ((rank & mask) != 0) {
      send_values<T>(tr, rank, rank - mask, std::span<const T>(values));
      break;
    }
    const i64 peer = rank + mask;
    if (peer < p) {
      const std::vector<T> part = recv_values<T>(tr, rank, peer);
      CYCLICK_REQUIRE(part.size() == values.size(), "allreduce buffer size mismatch");
      for (std::size_t i = 0; i < values.size(); ++i) values[i] = op(values[i], part[i]);
    }
  }
  bcast(tr, rank, 0, values);
}

/// All-to-all with per-pair payloads: `outgoing[r]` is what this rank sends
/// to rank r; returns `incoming` with incoming[r] = what rank r sent here.
/// Self-payload transfers locally in phase 0; phase f of the rotation
/// schedule sends to (rank + f) mod p and receives from (rank - f) mod p,
/// so every phase is a perfect matching (no incast).
template <typename T>
std::vector<std::vector<T>> alltoallv(Transport& tr, i64 rank,
                                      const std::vector<std::vector<T>>& outgoing) {
  const i64 p = tr.ranks();
  CYCLICK_REQUIRE(static_cast<i64>(outgoing.size()) == p, "alltoallv arity mismatch");
  if (p > 1) detail::require_collective_schedule(tr, "alltoallv");
  std::vector<std::vector<T>> incoming(static_cast<std::size_t>(p));
  incoming[static_cast<std::size_t>(rank)] = outgoing[static_cast<std::size_t>(rank)];
  for (i64 f = 1; f < p; ++f) {
    const i64 to = (rank + f) % p;
    const i64 from = (rank - f + p) % p;
    send_values<T>(tr, rank, to, std::span<const T>(outgoing[static_cast<std::size_t>(to)]));
    incoming[static_cast<std::size_t>(from)] = recv_values<T>(tr, rank, from);
  }
  return incoming;
}

// ---------------------------------------------------------------------------
// Linear reference implementations (the pre-tree versions, kept verbatim
// for differential testing): root-sends-to-all fan-out, rank-order gather,
// reduce-at-rank-0 with a linear left fold. O(p) rounds at the root.
// ---------------------------------------------------------------------------
namespace linear {

template <typename T>
void bcast(Transport& tr, i64 rank, i64 root, std::vector<T>& values) {
  const i64 p = tr.ranks();
  CYCLICK_REQUIRE(root >= 0 && root < p, "broadcast root out of range");
  if (p > 1) detail::require_collective_schedule(tr, "linear::bcast");
  if (rank == root) {
    for (i64 r = 0; r < p; ++r)
      if (r != root) send_values<T>(tr, root, r, std::span<const T>(values));
    return;
  }
  values = recv_values<T>(tr, rank, root);
}

template <typename T>
std::vector<T> gather(Transport& tr, i64 rank, i64 root, std::span<const T> mine) {
  const i64 p = tr.ranks();
  CYCLICK_REQUIRE(root >= 0 && root < p, "gather root out of range");
  if (p > 1) detail::require_collective_schedule(tr, "linear::gather");
  if (rank != root) {
    send_values<T>(tr, rank, root, mine);
    return {};
  }
  std::vector<T> all;
  for (i64 r = 0; r < p; ++r) {
    if (r == root) {
      all.insert(all.end(), mine.begin(), mine.end());
    } else {
      const std::vector<T> part = recv_values<T>(tr, root, r);
      all.insert(all.end(), part.begin(), part.end());
    }
  }
  return all;
}

/// Linear left fold at rank 0 (association order: rank 0, 1, 2, ...).
template <typename T, typename Op>
void allreduce(Transport& tr, i64 rank, std::vector<T>& values, Op&& op) {
  const i64 p = tr.ranks();
  if (p == 1) return;
  detail::require_collective_schedule(tr, "linear::allreduce");
  if (rank == 0) {
    for (i64 r = 1; r < p; ++r) {
      const std::vector<T> part = recv_values<T>(tr, 0, r);
      CYCLICK_REQUIRE(part.size() == values.size(), "allreduce buffer size mismatch");
      for (std::size_t i = 0; i < values.size(); ++i) values[i] = op(values[i], part[i]);
    }
    for (i64 r = 1; r < p; ++r) send_values<T>(tr, 0, r, std::span<const T>(values));
    return;
  }
  send_values<T>(tr, rank, 0, std::span<const T>(values));
  values = recv_values<T>(tr, rank, 0);
}

/// Unrotated all-to-all: post every send, then receive in rank order.
template <typename T>
std::vector<std::vector<T>> alltoallv(Transport& tr, i64 rank,
                                      const std::vector<std::vector<T>>& outgoing) {
  const i64 p = tr.ranks();
  CYCLICK_REQUIRE(static_cast<i64>(outgoing.size()) == p, "alltoallv arity mismatch");
  if (p > 1) detail::require_collective_schedule(tr, "linear::alltoallv");
  for (i64 r = 0; r < p; ++r)
    if (r != rank)
      send_values<T>(tr, rank, r, std::span<const T>(outgoing[static_cast<std::size_t>(r)]));
  std::vector<std::vector<T>> incoming(static_cast<std::size_t>(p));
  incoming[static_cast<std::size_t>(rank)] = outgoing[static_cast<std::size_t>(rank)];
  for (i64 r = 0; r < p; ++r)
    if (r != rank) incoming[static_cast<std::size_t>(r)] = recv_values<T>(tr, rank, r);
  return incoming;
}

}  // namespace linear

}  // namespace cyclick
