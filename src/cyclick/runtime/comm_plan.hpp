// Communication plans for dst(dsec) = src(ssec) over distributed arrays.
//
// The paper's Theorem 3 says a processor's access sequence is periodic with
// at most k distinct gaps; the same holds for the per-channel streams of a
// cyclic(k) redistribution (Chatterjee et al., PPoPP'93). The plan
// representation exploits that: instead of one {src_global, dst_local} item
// per element (O(|section|) space, a modular solve per element at execution
// time), each sender->receiver channel stores one run descriptor
//
//   (src_local_start, dst_local_start, count, periodic offset tables)
//
// where the offset tables hold the prefix sums of the shortest period of
// the local-address delta streams on both sides. Plan size is O(p^2 + sum
// of channel periods) — O(p^2 + k)-shaped in practice — and pack/unpack
// replay the offsets through the kernel layer's SIMD gather/scatter
// (core/kernels.hpp): no owner_of / local_address calls, and no serially
// dependent address chain either.
//
// Construction walks each receiver's owned destination elements once with
// an AddressEngine plan (dense unit-stride sections enumerate whole block
// runs; everything else walks the classified lattice path) and resolves the
// matching source owner with an *owner-run* cursor: the source cell moves
// linearly in the section position t, so divisions happen once per
// source-block crossing, not once per element.
//
// Execution lives in redistribute.hpp (the scheduling layer): this header
// owns the *description* of the movement — representation, builders, the
// pack/unpack kernels — while the redistribution layer owns the all-to-all
// schedule the channels execute under and the backend dispatch. Execution
// is zero-copy: values are packed directly into per-channel byte buffers
// (the Transport wire format) owned by the plan's scratch arena and reused
// across executions, so steady-state execution performs no heap
// allocations. The pre-existing per-item representation is kept as
// LegacyCommPlan for differential testing and as the benchmarks' baseline.
//
// Concurrency: a built plan is immutable except for the scratch arena.
// Within one execution the arena is touched per-channel (each channel by
// exactly one sender in phase 1 and one receiver in phase 2, with a
// barrier between), so the threaded executor is safe; two *concurrent
// executions of the same plan object* would race on the arena.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "cyclick/core/engine.hpp"
#include "cyclick/core/kernels.hpp"
#include "cyclick/obs/metrics.hpp"
#include "cyclick/obs/trace.hpp"
#include "cyclick/runtime/distributed_array.hpp"
#include "cyclick/runtime/spmd.hpp"

namespace cyclick {

/// The engine plan for `rank`'s share of `sec` over `arr`'s template cells
/// (ascending cell order). Plan globals are template cells; plan locals are
/// packed addresses only under identity alignment (use index_of_cell /
/// PackedLayout otherwise, as for_each_owned does).
template <typename T>
[[nodiscard]] SectionPlan owned_plan(const DistributedArray<T>& arr, const RegularSection& sec,
                                     i64 rank) {
  return AddressEngine::global().plan(arr.dist(), arr.alignment().image(sec).ascending(),
                                      rank);
}

/// Visit every element of `sec` (array index space) owned by `rank`,
/// passing (t, local_addr) where t is the position within the section and
/// local_addr the element's packed local address. Enumeration is in
/// ascending template-cell order (ownership enumeration; statement-order
/// semantics are the caller's concern). Returns the visit count.
template <typename T, typename Body>
i64 for_each_owned(const DistributedArray<T>& arr, const RegularSection& sec, i64 rank,
                   Body&& body) {
  if (sec.empty()) return 0;
  CYCLICK_REQUIRE(sec.lower >= 0 && sec.lower < arr.size() && sec.last() >= 0 &&
                      sec.last() < arr.size(),
                  "section must lie within the array");
  const AffineAlignment& al = arr.alignment();
  // Hoist the per-rank layout lookup out of the loop: rank() queries are
  // per-element, but the layout object itself is loop-invariant.
  const PackedLayout* layout = arr.packed_layout_or_null(rank);
  const SectionPlan plan = owned_plan(arr, sec, rank);
  if (layout == nullptr && plan.contiguous()) {
    // Identity alignment + unit stride: t and the local address both move
    // by a fixed step within each owned block run — no per-element
    // index_of_cell inversions.
    const i64 dt = sec.stride > 0 ? 1 : -1;
    return plan.for_each_run([&](i64 g0, i64 l0, i64 len) {
      i64 t = (g0 - sec.lower) / sec.stride;
      for (i64 i = 0; i < len; ++i, t += dt) body(t, l0 + i);
    });
  }
  return plan.for_each([&](i64 cell, i64 la) {
    const auto idx = al.index_of_cell(cell);
    CYCLICK_ASSERT(idx.has_value());
    const i64 t = (*idx - sec.lower) / sec.stride;
    body(t, layout ? layout->rank(cell) : la);
  });
}

/// Owner-run cursor: maps a section position t to the owning rank (and
/// packed local address) of `arr`'s element `sec.element(t)`. The template
/// cell is linear in t, so consecutive positions resolve against a cached
/// owner block; the floor-division re-seek runs once per block crossing,
/// not once per element (the "owner-run enumeration" of the plan builder).
class OwnerCursor {
 public:
  template <typename T>
  OwnerCursor(const DistributedArray<T>& arr, const RegularSection& sec)
      : dist_(arr.dist()),
        slope_(arr.alignment().a * sec.stride),
        base_(arr.alignment().a * sec.lower + arr.alignment().b) {
    if (!arr.alignment().is_identity()) {
      layouts_.reserve(static_cast<std::size_t>(dist_.procs()));
      for (i64 m = 0; m < dist_.procs(); ++m)
        layouts_.push_back(arr.packed_layout_or_null(m));
    }
  }

  struct Hit {
    i64 owner;
    i64 local;
  };

  /// Owning rank of position t (no local-address work).
  i64 owner_at(i64 t) {
    seek(base_ + slope_ * t);
    return owner_;
  }

  /// Owning rank and packed local address of position t.
  Hit at(i64 t) {
    const i64 c = base_ + slope_ * t;
    seek(c);
    const i64 local = layouts_.empty()
                          ? row_base_ + (c - blk_lo_)
                          : layouts_[static_cast<std::size_t>(owner_)]->rank(c);
    return {owner_, local};
  }

 private:
  void seek(i64 c) {
    if (c >= blk_lo_ && c < blk_hi_) return;
    const i64 row = floor_div(c, dist_.row_length());
    const i64 x = c - row * dist_.row_length();
    owner_ = x / dist_.block_size();
    blk_lo_ = row * dist_.row_length() + owner_ * dist_.block_size();
    blk_hi_ = blk_lo_ + dist_.block_size();
    row_base_ = row * dist_.block_size();
  }

  BlockCyclic dist_;
  i64 slope_;
  i64 base_;
  i64 owner_ = 0;
  i64 blk_lo_ = 1, blk_hi_ = 0;  // empty range: the first query always seeks
  i64 row_base_ = 0;
  std::vector<const PackedLayout*> layouts_;  // empty for identity alignment
};

namespace detail {

/// Per-channel accumulator used during plan construction: records the two
/// start addresses and the local-address delta streams, which finalization
/// compresses to their shortest period.
struct ChannelAccum {
  i64 count = 0;
  i64 src_start = 0, dst_start = 0;
  i64 prev_src = 0, prev_dst = 0;
  std::vector<i64> src_deltas, dst_deltas;

  void append(i64 sla, i64 la) {
    if (count == 0) {
      src_start = sla;
      dst_start = la;
    } else {
      src_deltas.push_back(sla - prev_src);
      dst_deltas.push_back(la - prev_dst);
    }
    prev_src = sla;
    prev_dst = la;
    ++count;
  }

  /// Append n elements whose source and destination addresses are both
  /// contiguous from (sla, la) — the dense-run build path's bulk insert.
  void append_run(i64 sla, i64 la, i64 n) {
    append(sla, la);
    if (n > 1) {
      src_deltas.insert(src_deltas.end(), static_cast<std::size_t>(n - 1), 1);
      dst_deltas.insert(dst_deltas.end(), static_cast<std::size_t>(n - 1), 1);
      prev_src = sla + n - 1;
      prev_dst = la + n - 1;
      count += n - 1;
    }
  }
};

/// Smallest pi >= 1 such that (a[i], b[i]) == (a[i-pi], b[i-pi]) for all
/// i >= pi (KMP border period over the paired delta stream); 0 for empty
/// streams. The streams need not be a whole number of periods long.
i64 smallest_gap_period(std::span<const i64> a, std::span<const i64> b);

/// Pack `count` values from `local` into `out`. The channel's address
/// stream is start + j*advance + off[r] (off = prefix sums of the gap
/// period), so packing is exactly the kernel layer's periodic gather:
/// contiguous channels memcpy, period-1 channels take the strided SIMD
/// path, everything else replays the offset vector — the same primitives
/// section_ops runs on.
template <typename T>
void pack_channel(i64 count, i64 start, const i64* off, i64 period, i64 advance,
                  bool contig, const T* local, T* out) {
  const T* base = local + start;
  if (contig) {
    std::memcpy(out, base, static_cast<std::size_t>(count) * sizeof(T));
    return;
  }
  if (period == 1) {
    kernel_gather_strided(base, advance, count, out);
    return;
  }
  kernel_gather_offsets(base, off, period, advance, count, out);
}

/// Unpack `count` values from `in` into `local` (scatter mirror of
/// pack_channel, same kernel primitives).
template <typename T>
void unpack_channel(i64 count, i64 start, const i64* off, i64 period, i64 advance,
                    bool contig, const T* in, T* local) {
  T* base = local + start;
  if (contig) {
    std::memcpy(base, in, static_cast<std::size_t>(count) * sizeof(T));
    return;
  }
  if (period == 1) {
    kernel_scatter_strided(base, advance, count, in);
    return;
  }
  kernel_scatter_offsets(base, off, period, advance, count, in);
}

}  // namespace detail

/// Compressed periodic communication plan. One Channel per (receiver m,
/// sender q) pair; the periodic address tables for all channels are pooled
/// in two flat arrays (src side used by pack, dst side by unpack), stored
/// as per-period *offset vectors* (prefix sums of the gap period) so
/// pack/unpack replay them with the kernel layer's offset-indexed
/// gather/scatter instead of a serially dependent gap chain. Message and
/// element statistics are computed once at build time.
struct CommPlan {
  struct Channel {
    i64 count = 0;        ///< elements on this channel
    i64 src_start = 0;    ///< first packed local address on the sender
    i64 dst_start = 0;    ///< first packed local address on the receiver
    i64 period = 0;       ///< offset-table length (0 iff count <= 1)
    i64 gap_begin = 0;    ///< slice start in the pooled offset arrays
    i64 src_advance = 0;  ///< sender local-address advance per period
    i64 dst_advance = 0;  ///< receiver local-address advance per period
    bool src_contig = false;  ///< sender stream is one contiguous span
    bool dst_contig = false;  ///< receiver stream is one contiguous span
  };

  i64 ranks = 0;
  std::vector<Channel> channels;  ///< [receiver * ranks + sender]
  std::vector<i64> src_off;       ///< pooled sender-side offset tables
  std::vector<i64> dst_off;       ///< pooled receiver-side offset tables

  [[nodiscard]] const Channel& channel(i64 receiver, i64 sender) const {
    return channels[static_cast<std::size_t>(receiver * ranks + sender)];
  }
  /// Elements on channel (receiver, sender).
  [[nodiscard]] i64 channel_size(i64 receiver, i64 sender) const {
    return channel(receiver, sender).count;
  }
  /// Number of nonempty sender->receiver channels with sender != receiver.
  [[nodiscard]] i64 message_count() const noexcept { return message_count_; }
  /// Total elements crossing rank boundaries.
  [[nodiscard]] i64 remote_elements() const noexcept { return remote_elements_; }
  /// Total elements moved (equals the section size).
  [[nodiscard]] i64 total_elements() const noexcept { return total_elements_; }
  /// Largest single remote channel, in elements (0 when all traffic is
  /// local) — the dominant per-phase payload the adaptive pipeline window
  /// is sized against. Precomputed so executors read it in O(1).
  [[nodiscard]] i64 max_channel_elements() const noexcept { return max_channel_elements_; }

  /// Heap bytes held by the plan's descriptors and gap tables (the scratch
  /// arena, an execution buffer equivalent to the wire payloads any
  /// executor must materialize, is reported separately).
  [[nodiscard]] std::size_t plan_bytes() const noexcept;
  /// Heap bytes currently held by the scratch arena.
  [[nodiscard]] std::size_t scratch_bytes() const noexcept;

  /// Build-time finalization: compress the accumulated delta streams into
  /// pooled periodic offset tables and precompute the statistics.
  void adopt_channels(std::vector<detail::ChannelAccum>&& accum);

  /// Reusable per-channel pack buffer (execution arena). Mutable so that
  /// executing a shared immutable plan can reuse buffers across calls.
  [[nodiscard]] std::vector<std::byte>& scratch(i64 receiver, i64 sender) const {
    return scratch_[static_cast<std::size_t>(receiver * ranks + sender)];
  }

 private:
  i64 message_count_ = 0;
  i64 remote_elements_ = 0;
  i64 total_elements_ = 0;
  i64 max_channel_elements_ = 0;
  mutable std::vector<std::vector<std::byte>> scratch_;  ///< [m * ranks + q]
};

/// Build the compressed plan for dst(dsec) = src(ssec) (sizes must match).
/// Each receiver enumerates its destination elements with the table-free
/// iterator; the matching source owner and address come from the owner-run
/// cursor — no per-element owner_of / local_address calls anywhere.
template <typename T>
CommPlan build_copy_plan(const DistributedArray<T>& src, const RegularSection& ssec,
                         DistributedArray<T>& dst, const RegularSection& dsec,
                         const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(ssec.size() == dsec.size(), "section size mismatch in copy");
  CYCLICK_REQUIRE(exec.ranks() == dst.dist().procs(), "executor/destination rank mismatch");
  CYCLICK_REQUIRE(exec.ranks() == src.dist().procs(), "executor/source rank mismatch");
  const i64 p = exec.ranks();
  CYCLICK_COUNT("commplan.builds", 0, 1);
  CYCLICK_TIME_SCOPE("commplan.build_us", 0);
  std::vector<detail::ChannelAccum> accum(static_cast<std::size_t>(p * p));
  const bool dense_pair = ssec.stride == 1 && dsec.stride == 1 &&
                          src.alignment().is_identity() && dst.alignment().is_identity();
  if (!dsec.empty() && dense_pair) {
    // Both sides are unit-stride and identity-aligned: every destination
    // block run maps to a contiguous source span, so channels fill in bulk
    // run inserts split only at source block crossings — no owner cursor,
    // no per-element appends.
    CYCLICK_REQUIRE(dsec.lower >= 0 && dsec.last() < dst.size(),
                    "section must lie within the array");
    const BlockCyclic& sd = src.dist();
    const i64 sk = sd.block_size();
    exec.run([&](i64 m) {
      CYCLICK_SPAN("plan_build", m);
      detail::ChannelAccum* row = accum.data() + m * p;
      owned_plan(dst, dsec, m).for_each_run([&](i64 g0, i64 l0, i64 len) {
        i64 emitted = 0;
        while (emitted < len) {
          const i64 c = ssec.lower + (g0 - dsec.lower) + emitted;  // source cell
          const i64 n = std::min(len - emitted, sk - sd.block_offset(c));
          row[sd.owner(c)].append_run(sd.local_index(c), l0 + emitted, n);
          emitted += n;
        }
      });
    });
  } else if (!dsec.empty()) {
    exec.run([&](i64 m) {
      CYCLICK_SPAN("plan_build", m);
      OwnerCursor cur(src, ssec);
      detail::ChannelAccum* row = accum.data() + m * p;
      for_each_owned(dst, dsec, m, [&](i64 t, i64 la) {
        const auto hit = cur.at(t);
        row[hit.owner].append(hit.local, la);
      });
    });
  }
  CommPlan plan;
  plan.ranks = p;
  plan.adopt_channels(std::move(accum));
  return plan;
}

// ---------------------------------------------------------------------------
// Legacy per-item representation. Kept verbatim as the differential-testing
// reference and the benchmarks' baseline; new code should use CommPlan.
// ---------------------------------------------------------------------------

/// Per-element communication plan (the pre-compression representation):
/// one {src_global, dst_local} pair per element, with the source local
/// address recomputed (a modular solve) on every execution.
struct LegacyCommPlan {
  struct Item {
    i64 src_global;  ///< src array index to read
    i64 dst_local;   ///< packed local address on the receiver to write
  };
  i64 ranks = 0;
  std::vector<std::vector<Item>> pairwise;  ///< [receiver * ranks + sender]

  [[nodiscard]] const std::vector<Item>& items(i64 receiver, i64 sender) const {
    return pairwise[static_cast<std::size_t>(receiver * ranks + sender)];
  }
  /// Number of nonempty sender->receiver channels with sender != receiver.
  [[nodiscard]] i64 message_count() const {
    i64 c = 0;
    for (i64 m = 0; m < ranks; ++m)
      for (i64 q = 0; q < ranks; ++q)
        if (q != m && !items(m, q).empty()) ++c;
    return c;
  }
  /// Total elements crossing rank boundaries.
  [[nodiscard]] i64 remote_elements() const {
    i64 c = 0;
    for (i64 m = 0; m < ranks; ++m)
      for (i64 q = 0; q < ranks; ++q)
        if (q != m) c += static_cast<i64>(items(m, q).size());
    return c;
  }
  /// Heap bytes held by the per-item representation.
  [[nodiscard]] std::size_t plan_bytes() const {
    std::size_t bytes = pairwise.capacity() * sizeof(std::vector<Item>);
    for (const auto& v : pairwise) bytes += v.capacity() * sizeof(Item);
    return bytes;
  }
};

/// Build the per-item plan (legacy path: per-element owner_of on the
/// source side).
template <typename T>
LegacyCommPlan build_legacy_copy_plan(const DistributedArray<T>& src,
                                      const RegularSection& ssec, DistributedArray<T>& dst,
                                      const RegularSection& dsec, const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(ssec.size() == dsec.size(), "section size mismatch in copy");
  CYCLICK_REQUIRE(exec.ranks() == dst.dist().procs(), "executor/destination rank mismatch");
  CYCLICK_REQUIRE(exec.ranks() == src.dist().procs(), "executor/source rank mismatch");
  LegacyCommPlan plan;
  plan.ranks = exec.ranks();
  plan.pairwise.resize(static_cast<std::size_t>(plan.ranks * plan.ranks));
  exec.run([&](i64 rank) {
    for_each_owned(dst, dsec, rank, [&](i64 t, i64 la) {
      const i64 g = ssec.element(t);
      const i64 q = src.owner_of(g);
      plan.pairwise[static_cast<std::size_t>(rank * plan.ranks + q)].push_back({g, la});
    });
  });
  return plan;
}

/// Execute a per-item plan (legacy path: a modular local_address solve per
/// element, plus per-call payload allocation).
template <typename T>
void execute_legacy_copy_plan(const LegacyCommPlan& plan, const DistributedArray<T>& src,
                              DistributedArray<T>& dst, const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(plan.ranks == exec.ranks(), "plan built for a different machine");
  const i64 p = plan.ranks;
  std::vector<std::vector<T>> payload(static_cast<std::size_t>(p * p));

  exec.run([&](i64 q) {
    auto local = src.local(q);
    for (i64 m = 0; m < p; ++m) {
      const auto& items = plan.items(m, q);
      auto& buf = payload[static_cast<std::size_t>(m * p + q)];
      buf.reserve(items.size());
      for (const LegacyCommPlan::Item& it : items) {
        CYCLICK_ASSERT(src.owner_of(it.src_global) == q);
        buf.push_back(local[static_cast<std::size_t>(src.local_address(it.src_global))]);
      }
    }
  });

  exec.run([&](i64 m) {
    auto local = dst.local(m);
    for (i64 q = 0; q < p; ++q) {
      const auto& items = plan.items(m, q);
      const auto& buf = payload[static_cast<std::size_t>(m * p + q)];
      for (std::size_t i = 0; i < items.size(); ++i)
        local[static_cast<std::size_t>(items[i].dst_local)] = buf[i];
    }
  });
}

}  // namespace cyclick
