// A small simulated SPMD machine: every "processor" (rank) of the paper's
// distributed-memory model runs the same per-rank function against its own
// local memory. Ranks execute either sequentially (deterministic, used by
// the benchmarks, which time per-rank work and report the max like the
// paper does) or with one OS thread per rank (so rank functions may block
// on Transport messages from other ranks without deadlock). `run` is a
// full phase: it returns only after every rank finished, giving copy/fill
// engines a barrier between communication phases.
#pragma once

#include <functional>
#include <optional>

#include "cyclick/support/types.hpp"

namespace cyclick {

class SpmdExecutor {
 public:
  enum class Mode {
    kSequential,  ///< ranks run one after another on the calling thread
    kThreads,     ///< one OS thread per rank (supports blocking message protocols)
  };

  explicit SpmdExecutor(i64 ranks, Mode mode = Mode::kSequential);

  [[nodiscard]] i64 ranks() const noexcept { return ranks_; }
  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  /// Execute fn(rank) for every rank in [0, ranks); returns after all
  /// complete (barrier semantics). Exceptions from rank functions propagate
  /// to the caller (the first one encountered in rank order).
  void run(const std::function<void(i64)>& fn) const;

 private:
  i64 ranks_;
  Mode mode_;
};

/// The *effective* mode of the innermost SpmdExecutor::run phase the
/// calling thread is executing under, or nullopt outside any phase.
/// "Effective" means the schedule actually used: a kThreads executor with
/// one rank runs sequentially and reports kSequential. Blocking message
/// protocols (runtime/collectives.hpp) consult this to refuse schedules
/// that would deadlock on a receive whose matching send can never run.
[[nodiscard]] std::optional<SpmdExecutor::Mode> current_spmd_mode() noexcept;

}  // namespace cyclick
