// The redistribution layer: every byte the runtime moves between ranks
// flows through here, on every backend.
//
// comm_plan.hpp *describes* data movement (compressed per-channel run
// descriptors built from the paper's access sequences); this layer
// *schedules and executes* it. A CommPlan's channels form an all-to-all
// exchange; executing them in the naive order (every sender walks
// receivers 0, 1, 2, ...) serializes the network into p incast bursts:
// every sender's j-th message targets receiver j, so receiver j takes up
// to p-1 simultaneous arrivals. The schedule here applies round-robin
// phase rotation instead:
//
//   phase f in [0, p):  rank r sends to (r + f) mod p
//                       rank r receives from (r - f + p) mod p
//
// Phase 0 is the self channel; each later phase is a perfect matching of
// senders to receivers (a fixed-point-free rotation), so no destination
// ever takes p simultaneous senders — each phase delivers at most one
// message per receiver. The rule is pure arithmetic on (rank, phase, p),
// identical on every backend, which is what makes the three transports
// (in-process, socket mesh, simulated mesh) execute *the same schedule*
// and produce byte-identical results.
//
// Executors (moved here from comm_plan.hpp, all phase-ordered):
//   execute_copy_plan            backend dispatch: replicated over the
//                                process mesh when a ProcessContext is
//                                active, over the provider transport when
//                                one is installed (sim), else in-process;
//                                picks the pipelined/fused variant unless
//                                CYCLICK_REDIST_WINDOW=0|1 or src/dst alias
//   execute_copy_plan_sequential the strict pack -> barrier -> unpack arena
//                                shape (also the aliased-copy fallback)
//   execute_copy_plan_fused      in-process single pass: src local -> dst
//                                local straight through the joint periodic
//                                descriptors, no arena round trip
//   execute_copy_plan_over       whole machine over one Transport
//   execute_copy_plan_over_pipelined
//                                same, with receives pre-posted W phases
//                                ahead on per-rank completion queues
//   execute_copy_plan_rank       exactly one rank's share (proc backend);
//                                dispatches to _rank_pipelined by window
//   execute_copy_plan_replicated the replicated-machine proc shape
//   execute_copy_plan_replicated_pipelined
//                                same, with this rank's receives pre-posted
//                                before the pack phase so payloads land
//                                while the replica is still packing
//
// Pipeline window: resolve_redist_window — CYCLICK_REDIST_WINDOW (0/1
// forces the sequential executors, >= 2 fixes the depth, unset lets the
// sim cost model size it), clamped by CYCLICK_TRANSPORT_CREDITS.
//
// They are generic over the array type: anything with local(rank) spans
// of a trivially copyable element works (DistributedArray, MultiDimArray),
// so 1-D section copies and N-D region remaps execute through the same
// four entry points.
//
// RedistributionPlan wraps a CommPlan with its schedule metadata (phase
// count, dimensionality); build_redistribution_plan composes the
// per-dimension access sequences the AddressEngine produces into one
// all-to-all schedule. replay_plan_traffic replays just the wire traffic
// of a plan (no arrays) in naive or rotated order — the incast-study
// primitive behind the simulation gate.
#pragma once

#include <algorithm>
#include <memory>

#include "cyclick/obs/trace.hpp"
#include "cyclick/runtime/comm_plan.hpp"
#include "cyclick/runtime/transport.hpp"

namespace cyclick {

/// Peer that `rank` sends to in schedule phase `phase` of a `ranks`-rank
/// exchange. Phase 0 is the self channel.
[[nodiscard]] constexpr i64 redist_peer_to(i64 rank, i64 phase, i64 ranks) noexcept {
  return (rank + phase) % ranks;
}

/// Peer that `rank` receives from in schedule phase `phase` (the inverse
/// matching of redist_peer_to: redist_peer_to(q, f, p) == r iff
/// redist_peer_from(r, f, p) == q).
[[nodiscard]] constexpr i64 redist_peer_from(i64 rank, i64 phase, i64 ranks) noexcept {
  return (rank - phase % ranks + ranks) % ranks;
}

/// Number of schedule phases with at least one nonempty channel (the self
/// phase counts when any rank keeps data). At most `plan.ranks`.
[[nodiscard]] i64 schedule_phase_count(const CommPlan& plan);

/// A CommPlan plus its all-to-all schedule metadata. The channels are the
/// movement description; `phases` is how many rotation phases the schedule
/// actually occupies (sparse exchanges — e.g. a halo shift — touch only a
/// few phases even on a large machine).
struct RedistributionPlan {
  CommPlan comm;
  i64 dims = 1;    ///< dimensionality of the sections it was built from
  i64 phases = 0;  ///< nonempty schedule phases, including the self phase

  [[nodiscard]] i64 ranks() const noexcept { return comm.ranks; }
  [[nodiscard]] i64 message_count() const noexcept { return comm.message_count(); }
  [[nodiscard]] i64 remote_elements() const noexcept { return comm.remote_elements(); }
  [[nodiscard]] i64 total_elements() const noexcept { return comm.total_elements(); }
};

/// Wrap a built CommPlan into a RedistributionPlan (computes the phase
/// count once; O(p^2) over the channel grid).
[[nodiscard]] RedistributionPlan finish_redistribution_plan(CommPlan&& comm, i64 dims);

/// CYCLICK_REDIST_WINDOW as written: -1 when unset (adaptive), 0/1 to
/// force the sequential executors, >= 2 for a fixed pipeline depth.
[[nodiscard]] i64 redist_window_from_env();

/// Pipeline depth predicted from the sim cost model for this plan's
/// dominant per-phase payload: 1 + ceil(wire_time / pack_time), clamped to
/// [2, 8]. Reads the same CYCLICK_SIM_* knobs the simulated mesh uses.
[[nodiscard]] i64 adaptive_redist_window(const CommPlan& plan, i64 elem_bytes);

/// The window one plan execution runs with: the env override (0/1 ->
/// returns 1, sequential) or the adaptive prediction, clamped by the
/// transport credit limit. >= 2 means the pipelined/fused executors run.
[[nodiscard]] i64 resolve_redist_window(const CommPlan& plan, i64 elem_bytes);

/// Build the scheduled plan for the 1-D copy dst(dsec) = src(ssec).
template <typename T>
[[nodiscard]] RedistributionPlan build_redistribution_plan(const DistributedArray<T>& src,
                                                           const RegularSection& ssec,
                                                           DistributedArray<T>& dst,
                                                           const RegularSection& dsec,
                                                           const SpmdExecutor& exec) {
  return finish_redistribution_plan(build_copy_plan(src, ssec, dst, dsec, exec), 1);
}

namespace detail {

/// Element type of an array's local spans.
template <typename Arr>
using local_element_t = std::remove_cvref_t<decltype(std::declval<Arr&>().local(i64{0})[0])>;

/// True when src's and dst's local spans for `rank` share any bytes. The
/// fused/pipelined executors write destinations while sources are still
/// live, so aliased copies (same array, shifted sections) must take the
/// arena-staged sequential path instead.
template <typename SrcArr, typename DstArr>
[[nodiscard]] bool rank_locals_alias(const SrcArr& src, DstArr& dst, i64 rank) {
  const auto s = src.local(rank);
  const auto d = dst.local(rank);
  if (s.empty() || d.empty()) return false;
  const void* s0 = s.data();
  const void* s1 = s.data() + s.size();
  const void* d0 = d.data();
  const void* d1 = d.data() + d.size();
  const std::less<const void*> lt;  // total order even for unrelated objects
  return lt(s0, d1) && lt(d0, s1);
}

template <typename SrcArr, typename DstArr>
[[nodiscard]] bool arrays_alias(const SrcArr& src, DstArr& dst, i64 ranks) {
  for (i64 r = 0; r < ranks; ++r)
    if (rank_locals_alias(src, dst, r)) return true;
  return false;
}

/// Copy one channel straight from the sender's local span to the
/// receiver's — the fused form of pack_channel + unpack_channel with the
/// arena round trip removed. Pack's gather and unpack's scatter share one
/// joint period, so their composition is a single gather/scatter (or
/// memcpy) per channel: one read and one write per element where the
/// staged path does two of each.
template <typename T>
void copy_channel(const CommPlan::Channel& ch, const i64* soff, const i64* doff,
                  const T* src_local, T* dst_local) {
  if (ch.count == 1) {
    dst_local[ch.dst_start] = src_local[ch.src_start];
    return;
  }
  if (ch.src_contig) {
    // The wire stream in channel order IS the contiguous source span:
    // scatter it into the destination directly.
    unpack_channel<T>(ch.count, ch.dst_start, doff, ch.period, ch.dst_advance,
                      ch.dst_contig, src_local + ch.src_start, dst_local);
    return;
  }
  if (ch.dst_contig) {
    // Dual case: gather the source straight into the contiguous
    // destination span.
    pack_channel<T>(ch.count, ch.src_start, soff, ch.period, ch.src_advance,
                    ch.src_contig, src_local, dst_local + ch.dst_start);
    return;
  }
  if (ch.period == 1) {
    // Strided-to-strided: the whole channel is one dual-stride loop.
    const T* s = src_local + ch.src_start;
    T* d = dst_local + ch.dst_start;
    for (i64 j = 0; j < ch.count; ++j) d[j * ch.dst_advance] = s[j * ch.src_advance];
    return;
  }
  // Both sides periodic-noncontiguous: replay the joint offset tables
  // blockwise. Same addressing work as one pack *or* one unpack leg, but
  // it replaces both.
  const T* s = src_local + ch.src_start;
  T* d = dst_local + ch.dst_start;
  const i64 full = ch.count / ch.period;
  for (i64 i = 0; i < full; ++i) {
    for (i64 r = 0; r < ch.period; ++r) d[doff[r]] = s[soff[r]];
    s += ch.src_advance;
    d += ch.dst_advance;
  }
  for (i64 r = 0; r < ch.count % ch.period; ++r) d[doff[r]] = s[soff[r]];
}

/// Manual chrome-trace interval for pipeline stages (per-phase, so the
/// overlap of pack(f+1) with in-flight(f) is visible on the timeline).
/// CYCLICK_SPAN needs a literal name too but records into the span ring;
/// these go straight to the TraceSink like the sim's per-message spans.
struct PipeSpan {
  const char* name;
  i64 tid;
  i64 t0 = -1;
  PipeSpan(const char* name_, i64 tid_) : name(name_), tid(tid_) {
    if (obs::enabled()) t0 = obs::now_ns();
  }
  void close() {
    if (t0 >= 0) {
      obs::TraceSink::global().complete(name, tid, t0, obs::now_ns());
      t0 = -1;
    }
  }
  ~PipeSpan() { close(); }
};

/// Exception-path cleanup: withdraw whatever a dying pipeline still has
/// posted so the transport holds no dangling CompletionQueue pointers.
/// Callers null `cq` out on clean completion (everything reaped).
struct PostedCancelGuard {
  Transport& transport;
  CompletionQueue* cq;
  ~PostedCancelGuard() {
    if (cq != nullptr) transport.cancel_posted(*cq);
  }
};

}  // namespace detail

/// Execute a compressed plan: senders pack values straight into the plan's
/// per-channel byte buffers, then receivers unpack — two barrier-separated
/// SPMD phases, mirroring a message-passing implementation. Both loops walk
/// the rotation schedule (phase order), so the traffic pattern matches the
/// transport-backed paths exactly. Steady-state calls perform no heap
/// allocations (the arena is reused).
template <typename SrcArr, typename DstArr>
void execute_copy_plan_replicated(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                                  const SpmdExecutor& exec, i64 my_rank,
                                  Transport& transport);

template <typename SrcArr, typename DstArr>
void execute_copy_plan_replicated_pipelined(const CommPlan& plan, const SrcArr& src,
                                            DstArr& dst, const SpmdExecutor& exec,
                                            i64 my_rank, Transport& transport, i64 window);

template <typename SrcArr, typename DstArr>
void execute_copy_plan_over(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                            const SpmdExecutor& exec, Transport& transport);

template <typename SrcArr, typename DstArr>
void execute_copy_plan_over_pipelined(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                                      const SpmdExecutor& exec, Transport& transport,
                                      i64 window);

template <typename SrcArr, typename DstArr>
void execute_copy_plan_rank_sequential(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                                       i64 rank, Transport& transport);

template <typename SrcArr, typename DstArr>
void execute_copy_plan_rank_pipelined(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                                      i64 rank, Transport& transport, i64 window);

template <typename SrcArr, typename DstArr>
void execute_copy_plan_sequential(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                                  const SpmdExecutor& exec);

template <typename SrcArr, typename DstArr>
void execute_copy_plan_fused(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                             const SpmdExecutor& exec);

template <typename SrcArr, typename DstArr>
void execute_copy_plan(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                       const SpmdExecutor& exec) {
  using T = detail::local_element_t<DstArr>;
  static_assert(std::is_trivially_copyable_v<T>, "plans move raw bytes");
  CYCLICK_REQUIRE(plan.ranks == exec.ranks(), "plan built for a different machine");
  const i64 window = resolve_redist_window(plan, static_cast<i64>(sizeof(T)));
  // Inside a launched rank process (--backend=proc), route this rank's
  // share of the copy over the wire. Plans for machines of a different
  // size than the process world stay purely local — every rank process
  // computes them identically, so no exchange is needed.
  const ProcessContext& pc = process_context();
  if (pc.active() && plan.ranks == pc.world) {
    if (window >= 2)
      execute_copy_plan_replicated_pipelined(plan, src, dst, exec, pc.rank, *pc.transport,
                                             window);
    else
      execute_copy_plan_replicated(plan, src, dst, exec, pc.rank, *pc.transport);
    return;
  }
  // Under the simulation backend every whole-machine plan execution is
  // replayed over the provided (virtual) transport: identical results,
  // message-shaped movement, predicted timings as a side effect.
  if (TransportProvider* provider = transport_provider(); provider != nullptr) {
    Transport& transport = provider->transport_for(plan.ranks);
    if (window >= 2)
      execute_copy_plan_over_pipelined(plan, src, dst, exec, transport, window);
    else
      execute_copy_plan_over(plan, src, dst, exec, transport);
    return;
  }
  // In-process: the fused single-pass executor, unless pipelining is
  // disabled or the copy aliases (same array, shifted sections — the
  // arena's pack barrier is what makes those correct).
  if (window >= 2 && !detail::arrays_alias(src, dst, plan.ranks)) {
    execute_copy_plan_fused(plan, src, dst, exec);
    return;
  }
  execute_copy_plan_sequential(plan, src, dst, exec);
}

/// Execute a compressed plan in-process without the arena: every channel
/// is copied in one pass, sender local -> receiver local, straight through
/// the joint periodic descriptors (pack's gather and unpack's scatter
/// share one period and gap table, so the composition is a single
/// gather/scatter/memcpy per channel). Halves the memory traffic of the
/// sequential executor — the in-process expression of "overlap": with no
/// wire to hide, the win is not doing the staging pass at all. Requires
/// src and dst not to alias; execute_copy_plan checks and falls back.
template <typename SrcArr, typename DstArr>
void execute_copy_plan_fused(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                             const SpmdExecutor& exec) {
  using T = detail::local_element_t<DstArr>;
  static_assert(std::is_trivially_copyable_v<T>, "plans move raw bytes");
  CYCLICK_REQUIRE(plan.ranks == exec.ranks(), "plan built for a different machine");
  const i64 p = plan.ranks;

  struct Ctx {
    const CommPlan& plan;
    const SrcArr& src;
    DstArr& dst;
    i64 p;
  };
  Ctx ctx{plan, src, dst, p};
  CYCLICK_COUNT("commplan.execs", 0, 1);
  CYCLICK_COUNT("redist.execs", 0, 1);
  CYCLICK_COUNT("redist.fused_execs", 0, 1);

  // One pass: every receiver walks its incoming channels in schedule order
  // and copies each one directly (sources are read-only here, so receivers
  // are independent under the threaded executor too).
  exec.run([&ctx](i64 m) {
    CYCLICK_SPAN("plan_exec.fused", m);
    T* local = ctx.dst.local(m).data();
    for (i64 f = 0; f < ctx.p; ++f) {
      const i64 q = redist_peer_from(m, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      if (ch.count == 0) continue;
      CYCLICK_COUNT("commplan.bytes", m, ch.count * static_cast<i64>(sizeof(T)));
      const i64* soff = ctx.plan.src_off.data() + ch.gap_begin;
      const i64* doff = ctx.plan.dst_off.data() + ch.gap_begin;
      detail::copy_channel<T>(ch, soff, doff, ctx.src.local(q).data(), local);
    }
  });
}

/// The strict two-phase arena executor (pack everything, barrier, unpack
/// everything) — the PR 8 shape, kept as the aliased-copy fallback and the
/// CYCLICK_REDIST_WINDOW=0|1 escape hatch, and as the baseline the fused
/// executor is benchmarked against.
template <typename SrcArr, typename DstArr>
void execute_copy_plan_sequential(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                                  const SpmdExecutor& exec) {
  using T = detail::local_element_t<DstArr>;
  static_assert(std::is_trivially_copyable_v<T>, "plans move raw bytes");
  CYCLICK_REQUIRE(plan.ranks == exec.ranks(), "plan built for a different machine");
  const i64 p = plan.ranks;

  // Context structs keep the SPMD lambdas at one captured reference so the
  // std::function wrapper stays within its small-buffer storage (zero
  // allocations per call in steady state).
  struct Ctx {
    const CommPlan& plan;
    const SrcArr& src;
    DstArr& dst;
    i64 p;
  };
  Ctx ctx{plan, src, dst, p};

  CYCLICK_COUNT("commplan.execs", 0, 1);
  CYCLICK_COUNT("redist.execs", 0, 1);

  // Phase 1: every sender q packs, for every receiver m in schedule order,
  // the requested values out of its own local buffer into the channel's
  // arena buffer.
  exec.run([&ctx](i64 q) {
    CYCLICK_SPAN("plan_exec.pack", q);
    const T* local = ctx.src.local(q).data();
    for (i64 f = 0; f < ctx.p; ++f) {
      const i64 m = redist_peer_to(q, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      if (ch.count == 0) continue;
      std::vector<std::byte>& buf = ctx.plan.scratch(m, q);
      buf.resize(static_cast<std::size_t>(ch.count) * sizeof(T));
      detail::pack_channel<T>(ch.count, ch.src_start,
                              ctx.plan.src_off.data() + ch.gap_begin, ch.period,
                              ch.src_advance, ch.src_contig, local,
                              reinterpret_cast<T*>(buf.data()));
    }
  });

  // Phase 2: every receiver m unpacks in schedule order into its own local
  // buffer. The byte counter attributes channel payloads to the receiving
  // rank, so `--metrics` reports plan traffic even on this transport-less
  // path.
  exec.run([&ctx](i64 m) {
    CYCLICK_SPAN("plan_exec.unpack", m);
    T* local = ctx.dst.local(m).data();
    for (i64 f = 0; f < ctx.p; ++f) {
      const i64 q = redist_peer_from(m, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      if (ch.count == 0) continue;
      CYCLICK_COUNT("commplan.bytes", m, ch.count * static_cast<i64>(sizeof(T)));
      const std::vector<std::byte>& buf = ctx.plan.scratch(m, q);
      detail::unpack_channel<T>(ch.count, ch.dst_start,
                                ctx.plan.dst_off.data() + ch.gap_begin, ch.period,
                                ch.dst_advance, ch.dst_contig,
                                reinterpret_cast<const T*>(buf.data()), local);
    }
  });
}

/// Execute a compressed plan with the data movement routed through a
/// Transport: every remote channel becomes one message whose payload is
/// packed *directly* in wire format (no intermediate value vector); the
/// self channel stages through the plan arena so the pack phase completes
/// before any destination write (alias safety). Senders post messages in
/// rotation-phase order — sender q's f-th departure targets (q + f) mod p —
/// so arrivals at each receiver spread across distinct departure slots
/// instead of piling up (the incast the naive order produces). Identical
/// results to execute_copy_plan; only the movement mechanism differs —
/// this is the entry point an MPI port would rebind.
template <typename SrcArr, typename DstArr>
void execute_copy_plan_over(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                            const SpmdExecutor& exec, Transport& transport) {
  using T = detail::local_element_t<DstArr>;
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  CYCLICK_REQUIRE(plan.ranks == exec.ranks(), "plan built for a different machine");
  CYCLICK_REQUIRE(transport.ranks() == exec.ranks(), "transport/executor rank mismatch");
  const i64 p = plan.ranks;

  struct Ctx {
    const CommPlan& plan;
    const SrcArr& src;
    DstArr& dst;
    Transport& transport;
    i64 p;
  };
  Ctx ctx{plan, src, dst, transport, p};
  CYCLICK_COUNT("commplan.execs", 0, 1);
  CYCLICK_COUNT("redist.execs", 0, 1);

  // Phase 1: senders pack per-receiver messages straight into transport
  // payloads and post them in schedule order (one message per nonempty
  // remote channel).
  exec.run([&ctx](i64 q) {
    CYCLICK_SPAN("plan_exec.pack", q);
    const T* local = ctx.src.local(q).data();
    for (i64 f = 0; f < ctx.p; ++f) {
      const i64 m = redist_peer_to(q, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      if (ch.count == 0) continue;
      const i64* off = ctx.plan.src_off.data() + ch.gap_begin;
      if (m == q) {
        std::vector<std::byte>& buf = ctx.plan.scratch(m, q);
        buf.resize(static_cast<std::size_t>(ch.count) * sizeof(T));
        detail::pack_channel<T>(ch.count, ch.src_start, off, ch.period, ch.src_advance,
                                ch.src_contig, local, reinterpret_cast<T*>(buf.data()));
        continue;
      }
      send_packed<T>(ctx.transport, q, m, ch.count, [&](std::span<T> out) {
        detail::pack_channel<T>(ch.count, ch.src_start, off, ch.period, ch.src_advance,
                                ch.src_contig, local, out.data());
      });
    }
  });

  // Phase 2: receivers drain their channels in schedule order and store;
  // the self channel comes out of the arena at phase 0.
  exec.run([&ctx](i64 m) {
    CYCLICK_SPAN("plan_exec.unpack", m);
    T* local = ctx.dst.local(m).data();
    for (i64 f = 0; f < ctx.p; ++f) {
      const i64 q = redist_peer_from(m, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      if (ch.count == 0) continue;
      CYCLICK_COUNT("commplan.bytes", m, ch.count * static_cast<i64>(sizeof(T)));
      const i64* off = ctx.plan.dst_off.data() + ch.gap_begin;
      if (q == m) {
        const std::vector<std::byte>& buf = ctx.plan.scratch(m, q);
        detail::unpack_channel<T>(ch.count, ch.dst_start, off, ch.period, ch.dst_advance,
                                  ch.dst_contig, reinterpret_cast<const T*>(buf.data()),
                                  local);
        continue;
      }
      const std::vector<std::byte> payload = ctx.transport.recv(m, q);
      CYCLICK_ASSERT(payload.size() == static_cast<std::size_t>(ch.count) * sizeof(T));
      detail::unpack_channel<T>(ch.count, ch.dst_start, off, ch.period, ch.dst_advance,
                                ch.dst_contig, reinterpret_cast<const T*>(payload.data()),
                                local);
    }
  });
}

/// The pipelined whole-machine transport executor: identical traffic and
/// results to execute_copy_plan_over, but every rank pre-posts a window of
/// receives on its own CompletionQueue *before* the pack phase, then
/// unpacks completions as they arrive (possibly out of phase order —
/// payloads carry their phase as the completion tag) while keeping the
/// window full. On the sim backend waiting on the queue advances the
/// virtual clock; on real backends the reader threads complete receives
/// while other ranks are still packing.
template <typename SrcArr, typename DstArr>
void execute_copy_plan_over_pipelined(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                                      const SpmdExecutor& exec, Transport& transport,
                                      i64 window) {
  using T = detail::local_element_t<DstArr>;
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  CYCLICK_REQUIRE(plan.ranks == exec.ranks(), "plan built for a different machine");
  CYCLICK_REQUIRE(transport.ranks() == exec.ranks(), "transport/executor rank mismatch");
  CYCLICK_REQUIRE(window >= 1, "pipeline window must be positive");
  const i64 p = plan.ranks;

  // Per-rank pipeline state: the completion queue, the incoming remote
  // phase list in schedule order, and (telemetry) per-phase post times for
  // the in-flight trace intervals.
  struct RankPipe {
    std::unique_ptr<CompletionQueue> cq;
    std::vector<i64> in_phases;
    std::vector<i64> posted_ns;  ///< [phase] -> post time (-1 untracked)
    std::size_t next = 0;        ///< next in_phases index to post
  };

  struct Ctx {
    const CommPlan& plan;
    const SrcArr& src;
    DstArr& dst;
    Transport& transport;
    i64 p;
    i64 window;
    std::vector<RankPipe>& pipes;

    void post_next(i64 m) {
      RankPipe& rp = pipes[static_cast<std::size_t>(m)];
      if (rp.next >= rp.in_phases.size()) return;
      const i64 f = rp.in_phases[rp.next++];
      if (obs::enabled()) rp.posted_ns[static_cast<std::size_t>(f)] = obs::now_ns();
      transport.irecv(m, redist_peer_from(m, f, p), *rp.cq, f);
    }
  };
  std::vector<RankPipe> pipes(static_cast<std::size_t>(p));
  Ctx ctx{plan, src, dst, transport, p, window, pipes};
  CYCLICK_COUNT("commplan.execs", 0, 1);
  CYCLICK_COUNT("redist.execs", 0, 1);
  CYCLICK_COUNT("redist.pipelined_execs", 0, 1);

  // A throwing phase (deadline expiry, failed channel) must withdraw
  // whatever is still posted before the queues leave scope.
  struct Guard {
    Transport& transport;
    std::vector<RankPipe>& pipes;
    bool armed = true;
    ~Guard() {
      if (!armed) return;
      for (RankPipe& rp : pipes)
        if (rp.cq) transport.cancel_posted(*rp.cq);
    }
  } guard{transport, pipes};

  // Phase A: every receiver enumerates its incoming remote phases and
  // pre-posts the first W receives.
  exec.run([&ctx](i64 m) {
    RankPipe& rp = ctx.pipes[static_cast<std::size_t>(m)];
    for (i64 f = 1; f < ctx.p; ++f) {
      const i64 q = redist_peer_from(m, f, ctx.p);
      if (q != m && ctx.plan.channel(m, q).count > 0) rp.in_phases.push_back(f);
    }
    if (rp.in_phases.empty()) return;
    rp.cq = std::make_unique<CompletionQueue>(ctx.window);
    rp.posted_ns.assign(static_cast<std::size_t>(ctx.p), -1);
    const std::size_t first =
        std::min<std::size_t>(static_cast<std::size_t>(ctx.window), rp.in_phases.size());
    for (std::size_t i = 0; i < first; ++i) ctx.post_next(m);
  });

  // Phase B: pack + post sends in schedule order (identical to the
  // sequential transport executor; the self channel stages through the
  // arena).
  exec.run([&ctx](i64 q) {
    CYCLICK_SPAN("plan_exec.pack", q);
    const T* local = ctx.src.local(q).data();
    for (i64 f = 0; f < ctx.p; ++f) {
      const i64 m = redist_peer_to(q, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      if (ch.count == 0) continue;
      const i64* off = ctx.plan.src_off.data() + ch.gap_begin;
      detail::PipeSpan span("redist.pipe.pack", q);
      if (m == q) {
        std::vector<std::byte>& buf = ctx.plan.scratch(m, q);
        buf.resize(static_cast<std::size_t>(ch.count) * sizeof(T));
        detail::pack_channel<T>(ch.count, ch.src_start, off, ch.period, ch.src_advance,
                                ch.src_contig, local, reinterpret_cast<T*>(buf.data()));
        continue;
      }
      std::vector<std::byte> payload(static_cast<std::size_t>(ch.count) * sizeof(T));
      detail::pack_channel<T>(ch.count, ch.src_start, off, ch.period, ch.src_advance,
                              ch.src_contig, local, reinterpret_cast<T*>(payload.data()));
      ctx.transport.isend(q, m, std::move(payload), nullptr, f);
    }
  });

  // Phase C: reap completions as they arrive, unpack, and keep the window
  // full; the self channel comes out of the arena first (schedule phase 0).
  exec.run([&ctx](i64 m) {
    CYCLICK_SPAN("plan_exec.unpack", m);
    T* local = ctx.dst.local(m).data();
    const CommPlan::Channel& self = ctx.plan.channel(m, m);
    if (self.count > 0) {
      CYCLICK_COUNT("commplan.bytes", m, self.count * static_cast<i64>(sizeof(T)));
      const std::vector<std::byte>& buf = ctx.plan.scratch(m, m);
      detail::unpack_channel<T>(self.count, self.dst_start,
                                ctx.plan.dst_off.data() + self.gap_begin, self.period,
                                self.dst_advance, self.dst_contig,
                                reinterpret_cast<const T*>(buf.data()), local);
    }
    RankPipe& rp = ctx.pipes[static_cast<std::size_t>(m)];
    if (!rp.cq) return;
    const i64 timeout = ctx.transport.recv_timeout_ms();
    for (std::size_t reaped = 0; reaped < rp.in_phases.size(); ++reaped) {
      Completion c = rp.cq->wait(timeout);
      const i64 f = c.tag;
      const i64 q = redist_peer_from(m, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      CYCLICK_REQUIRE(c.payload.size() == static_cast<std::size_t>(ch.count) * sizeof(T),
                      "received payload size disagrees with the plan");
      CYCLICK_COUNT("commplan.bytes", m, ch.count * static_cast<i64>(sizeof(T)));
      const i64 post_ns = rp.posted_ns[static_cast<std::size_t>(f)];
      if (post_ns >= 0)
        obs::TraceSink::global().complete("redist.pipe.inflight", m, post_ns,
                                          obs::now_ns());
      detail::PipeSpan span("redist.pipe.unpack", m);
      detail::unpack_channel<T>(ch.count, ch.dst_start,
                                ctx.plan.dst_off.data() + ch.gap_begin, ch.period,
                                ch.dst_advance, ch.dst_contig,
                                reinterpret_cast<const T*>(c.payload.data()), local);
      span.close();
      ctx.post_next(m);
    }
  });
  guard.armed = false;  // everything reaped; nothing left to withdraw
}

/// Execute exactly one rank's share of a plan — the genuinely distributed
/// entry point, where the calling process *is* rank `rank` of a
/// multi-process machine and `transport` is its endpoint. Dispatches to
/// the sliding-window pipelined body unless CYCLICK_REDIST_WINDOW forces
/// the sequential shape or this rank's src/dst locals alias.
template <typename SrcArr, typename DstArr>
void execute_copy_plan_rank(const CommPlan& plan, const SrcArr& src, DstArr& dst, i64 rank,
                            Transport& transport) {
  using T = detail::local_element_t<DstArr>;
  const i64 window = resolve_redist_window(plan, static_cast<i64>(sizeof(T)));
  if (window >= 2 && !detail::rank_locals_alias(src, dst, rank)) {
    execute_copy_plan_rank_pipelined(plan, src, dst, rank, transport, window);
    return;
  }
  execute_copy_plan_rank_sequential(plan, src, dst, rank, transport);
}

/// The strict two-phase rank executor: packs and posts this rank's
/// outgoing channels in rotation-phase order, then blocks on its incoming
/// ones in the matching order; every remote destination element is filled
/// exclusively from received wire bytes (never recomputed locally), and
/// only src.local(rank) is read / dst.local(rank) written. All sends
/// complete before the first receive, so the protocol is deadlock-free
/// regardless of peer pacing (sends never block; the socket backend
/// buffers them), and all source reads finish before any destination
/// write (alias safety).
template <typename SrcArr, typename DstArr>
void execute_copy_plan_rank_sequential(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                                       i64 rank, Transport& transport) {
  using T = detail::local_element_t<DstArr>;
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  CYCLICK_REQUIRE(transport.ranks() == plan.ranks, "transport/plan rank mismatch");
  CYCLICK_REQUIRE(rank >= 0 && rank < plan.ranks, "rank out of range");
  const i64 p = plan.ranks;
  CYCLICK_COUNT("commplan.execs", rank, 1);
  CYCLICK_COUNT("redist.execs", rank, 1);

  {
    CYCLICK_SPAN("plan_exec.pack", rank);
    const T* local = src.local(rank).data();
    for (i64 f = 0; f < p; ++f) {
      const i64 m = redist_peer_to(rank, f, p);
      const CommPlan::Channel& ch = plan.channel(m, rank);
      if (ch.count == 0) continue;
      const i64* off = plan.src_off.data() + ch.gap_begin;
      if (m == rank) {
        // Self channel stages through the arena so every read of the
        // (possibly aliased) source completes before any write below.
        std::vector<std::byte>& buf = plan.scratch(m, rank);
        buf.resize(static_cast<std::size_t>(ch.count) * sizeof(T));
        detail::pack_channel<T>(ch.count, ch.src_start, off, ch.period, ch.src_advance,
                                ch.src_contig, local, reinterpret_cast<T*>(buf.data()));
        continue;
      }
      send_packed<T>(transport, rank, m, ch.count, [&](std::span<T> out) {
        detail::pack_channel<T>(ch.count, ch.src_start, off, ch.period, ch.src_advance,
                                ch.src_contig, local, out.data());
      });
    }
  }

  {
    CYCLICK_SPAN("plan_exec.unpack", rank);
    T* local = dst.local(rank).data();
    for (i64 f = 0; f < p; ++f) {
      const i64 q = redist_peer_from(rank, f, p);
      const CommPlan::Channel& ch = plan.channel(rank, q);
      if (ch.count == 0) continue;
      CYCLICK_COUNT("commplan.bytes", rank, ch.count * static_cast<i64>(sizeof(T)));
      const i64* off = plan.dst_off.data() + ch.gap_begin;
      const std::vector<std::byte>* bytes;
      std::vector<std::byte> payload;
      if (q == rank) {
        bytes = &plan.scratch(rank, q);
      } else {
        payload = transport.recv(rank, q);
        CYCLICK_REQUIRE(payload.size() == static_cast<std::size_t>(ch.count) * sizeof(T),
                        "received payload size disagrees with the plan");
        bytes = &payload;
      }
      detail::unpack_channel<T>(ch.count, ch.dst_start, off, ch.period, ch.dst_advance,
                                ch.dst_contig, reinterpret_cast<const T*>(bytes->data()),
                                local);
    }
  }
}

/// The sliding-window rank executor: receives are pre-posted `window`
/// phases ahead on a CompletionQueue, sends go out nonblocking in schedule
/// order with opportunistic unpacking between pack phases, and the tail is
/// drained by completion arrival (out of phase order is fine — completions
/// carry their phase as the tag). The dispatcher guarantees src/dst locals
/// do not alias, so the self channel copies directly (no arena round trip)
/// and remote unpacks may interleave with remaining packs.
template <typename SrcArr, typename DstArr>
void execute_copy_plan_rank_pipelined(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                                      i64 rank, Transport& transport, i64 window) {
  using T = detail::local_element_t<DstArr>;
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  CYCLICK_REQUIRE(transport.ranks() == plan.ranks, "transport/plan rank mismatch");
  CYCLICK_REQUIRE(rank >= 0 && rank < plan.ranks, "rank out of range");
  CYCLICK_REQUIRE(window >= 1, "pipeline window must be positive");
  const i64 p = plan.ranks;
  CYCLICK_COUNT("commplan.execs", rank, 1);
  CYCLICK_COUNT("redist.execs", rank, 1);
  CYCLICK_COUNT("redist.pipelined_execs", rank, 1);

  // Incoming remote phases in schedule order.
  std::vector<i64> in_phases;
  for (i64 f = 1; f < p; ++f) {
    const i64 q = redist_peer_from(rank, f, p);
    if (q != rank && plan.channel(rank, q).count > 0) in_phases.push_back(f);
  }

  CompletionQueue cq(window);
  detail::PostedCancelGuard guard{transport, in_phases.empty() ? nullptr : &cq};
  std::vector<i64> posted_ns(static_cast<std::size_t>(p), -1);
  std::size_t next = 0;
  std::size_t reaped = 0;
  T* dlocal = dst.local(rank).data();

  const auto post_next = [&] {
    if (next >= in_phases.size()) return;
    const i64 f = in_phases[next++];
    if (obs::enabled()) posted_ns[static_cast<std::size_t>(f)] = obs::now_ns();
    transport.irecv(rank, redist_peer_from(rank, f, p), cq, f);
  };
  const auto consume = [&](Completion c) {
    const i64 f = c.tag;
    const i64 q = redist_peer_from(rank, f, p);
    const CommPlan::Channel& ch = plan.channel(rank, q);
    CYCLICK_REQUIRE(c.payload.size() == static_cast<std::size_t>(ch.count) * sizeof(T),
                    "received payload size disagrees with the plan");
    CYCLICK_COUNT("commplan.bytes", rank, ch.count * static_cast<i64>(sizeof(T)));
    const i64 post_ns = posted_ns[static_cast<std::size_t>(f)];
    if (post_ns >= 0)
      obs::TraceSink::global().complete("redist.pipe.inflight", rank, post_ns,
                                        obs::now_ns());
    detail::PipeSpan span("redist.pipe.unpack", rank);
    detail::unpack_channel<T>(ch.count, ch.dst_start, plan.dst_off.data() + ch.gap_begin,
                              ch.period, ch.dst_advance, ch.dst_contig,
                              reinterpret_cast<const T*>(c.payload.data()), dlocal);
    span.close();
    ++reaped;
    post_next();
  };

  // Pre-post the first W receives before any packing so arrivals can land
  // (and on the socket backend, be reaped by the reader thread) while this
  // rank is still producing its own outgoing payloads.
  const std::size_t first =
      std::min<std::size_t>(static_cast<std::size_t>(window), in_phases.size());
  for (std::size_t i = 0; i < first; ++i) post_next();

  {
    CYCLICK_SPAN("plan_exec.pack", rank);
    const T* local = src.local(rank).data();
    for (i64 f = 0; f < p; ++f) {
      const i64 m = redist_peer_to(rank, f, p);
      const CommPlan::Channel& ch = plan.channel(m, rank);
      if (ch.count == 0) continue;
      const i64* soff = plan.src_off.data() + ch.gap_begin;
      detail::PipeSpan span("redist.pipe.pack", rank);
      if (m == rank) {
        // Dispatch guarantees no aliasing, so the self channel copies
        // straight across — the fused form, no arena staging.
        CYCLICK_COUNT("commplan.bytes", rank, ch.count * static_cast<i64>(sizeof(T)));
        detail::copy_channel<T>(ch, soff, plan.dst_off.data() + ch.gap_begin, local,
                                dlocal);
      } else {
        std::vector<std::byte> payload(static_cast<std::size_t>(ch.count) * sizeof(T));
        detail::pack_channel<T>(ch.count, ch.src_start, soff, ch.period, ch.src_advance,
                                ch.src_contig, local,
                                reinterpret_cast<T*>(payload.data()));
        transport.isend(rank, m, std::move(payload), nullptr, f);
      }
      span.close();
      // Opportunistic drain: unpack whatever has already arrived so the
      // tail wait after the pack loop starts as short as possible.
      while (std::optional<Completion> c = cq.try_wait()) consume(std::move(*c));
    }
  }

  {
    CYCLICK_SPAN("plan_exec.unpack", rank);
    const i64 timeout = transport.recv_timeout_ms();
    while (reaped < in_phases.size()) consume(cq.wait(timeout));
  }
  guard.cq = nullptr;  // everything reaped; nothing left to withdraw
}

/// Replicated-machine exchange: the shape `--backend=proc` runs. Every
/// rank process executes the whole program against a full replica of the
/// arrays (so plans, statistics and control flow stay byte-identical to
/// the single-process run), but channels that touch *this* process's rank
/// still cross the real wire: its outgoing channels are sent, and its
/// incoming remote channels are unpacked from the received bytes instead
/// of the locally packed ones. Transport corruption therefore shows up as
/// a checksum TransportError or a divergent replica — never silently.
/// Wire traffic is posted and drained in rotation-phase order, matching
/// the other transport-backed executors.
template <typename SrcArr, typename DstArr>
void execute_copy_plan_replicated(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                                  const SpmdExecutor& exec, i64 my_rank,
                                  Transport& transport) {
  using T = detail::local_element_t<DstArr>;
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  CYCLICK_REQUIRE(plan.ranks == exec.ranks(), "plan built for a different machine");
  CYCLICK_REQUIRE(transport.ranks() == plan.ranks, "transport/plan rank mismatch");
  CYCLICK_REQUIRE(my_rank >= 0 && my_rank < plan.ranks, "rank out of range");
  const i64 p = plan.ranks;

  struct Ctx {
    const CommPlan& plan;
    const SrcArr& src;
    DstArr& dst;
    Transport& transport;
    i64 p;
    i64 my_rank;
  };
  Ctx ctx{plan, src, dst, transport, p, my_rank};
  CYCLICK_COUNT("commplan.execs", my_rank, 1);
  CYCLICK_COUNT("redist.execs", my_rank, 1);

  // Phase 1: pack every channel into the arena (the replica needs them
  // all); additionally post this process's outgoing remote channels in
  // schedule order.
  exec.run([&ctx](i64 q) {
    CYCLICK_SPAN("plan_exec.pack", q);
    const T* local = ctx.src.local(q).data();
    for (i64 f = 0; f < ctx.p; ++f) {
      const i64 m = redist_peer_to(q, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      if (ch.count == 0) continue;
      std::vector<std::byte>& buf = ctx.plan.scratch(m, q);
      buf.resize(static_cast<std::size_t>(ch.count) * sizeof(T));
      detail::pack_channel<T>(ch.count, ch.src_start,
                              ctx.plan.src_off.data() + ch.gap_begin, ch.period,
                              ch.src_advance, ch.src_contig, local,
                              reinterpret_cast<T*>(buf.data()));
      if (q == ctx.my_rank && m != q) ctx.transport.send(q, m, buf);  // copies buf
    }
  });

  // Phase 2: unpack every channel in schedule order; the ones arriving at
  // this process's rank from remote senders use the wire bytes.
  exec.run([&ctx](i64 m) {
    CYCLICK_SPAN("plan_exec.unpack", m);
    T* local = ctx.dst.local(m).data();
    for (i64 f = 0; f < ctx.p; ++f) {
      const i64 q = redist_peer_from(m, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      if (ch.count == 0) continue;
      CYCLICK_COUNT("commplan.bytes", m, ch.count * static_cast<i64>(sizeof(T)));
      const i64* off = ctx.plan.dst_off.data() + ch.gap_begin;
      const std::vector<std::byte>* bytes = &ctx.plan.scratch(m, q);
      std::vector<std::byte> payload;
      if (m == ctx.my_rank && q != m) {
        payload = ctx.transport.recv(m, q);
        CYCLICK_REQUIRE(payload.size() == static_cast<std::size_t>(ch.count) * sizeof(T),
                        "received payload size disagrees with the plan");
        bytes = &payload;
      }
      detail::unpack_channel<T>(ch.count, ch.dst_start, off, ch.period, ch.dst_advance,
                                ch.dst_contig, reinterpret_cast<const T*>(bytes->data()),
                                local);
    }
  });
}

/// The pipelined replicated exchange: identical replica semantics and wire
/// traffic to execute_copy_plan_replicated, but this process pre-posts a
/// window of its incoming receives *before* the pack phase, so the socket
/// backend's reader thread completes them while the replica is still
/// packing — genuine pack/in-flight overlap across processes. Arrivals may
/// complete out of phase order; the unpack phase stashes them and consumes
/// in schedule order (replica determinism requires the schedule walk).
template <typename SrcArr, typename DstArr>
void execute_copy_plan_replicated_pipelined(const CommPlan& plan, const SrcArr& src,
                                            DstArr& dst, const SpmdExecutor& exec,
                                            i64 my_rank, Transport& transport, i64 window) {
  using T = detail::local_element_t<DstArr>;
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  CYCLICK_REQUIRE(plan.ranks == exec.ranks(), "plan built for a different machine");
  CYCLICK_REQUIRE(transport.ranks() == plan.ranks, "transport/plan rank mismatch");
  CYCLICK_REQUIRE(my_rank >= 0 && my_rank < plan.ranks, "rank out of range");
  CYCLICK_REQUIRE(window >= 1, "pipeline window must be positive");
  const i64 p = plan.ranks;

  struct Ctx {
    const CommPlan& plan;
    const SrcArr& src;
    DstArr& dst;
    Transport& transport;
    i64 p;
    i64 my_rank;
    CompletionQueue& cq;
    std::vector<i64>& in_phases;
    std::vector<i64>& posted_ns;
    std::size_t next = 0;
    std::vector<std::vector<std::byte>> arrived;  ///< [phase] stashed payloads
    std::vector<char> have;                       ///< [phase] arrival flags

    void post_next() {
      if (next >= in_phases.size()) return;
      const i64 f = in_phases[next++];
      if (obs::enabled()) posted_ns[static_cast<std::size_t>(f)] = obs::now_ns();
      transport.irecv(my_rank, redist_peer_from(my_rank, f, p), cq, f);
    }
  };

  // This process's incoming remote phases, in schedule order.
  std::vector<i64> in_phases;
  for (i64 f = 1; f < p; ++f) {
    const i64 q = redist_peer_from(my_rank, f, p);
    if (q != my_rank && plan.channel(my_rank, q).count > 0) in_phases.push_back(f);
  }
  CompletionQueue cq(window);
  detail::PostedCancelGuard guard{transport, in_phases.empty() ? nullptr : &cq};
  std::vector<i64> posted_ns(static_cast<std::size_t>(p), -1);
  Ctx ctx{plan, src, dst, transport, p, my_rank, cq, in_phases, posted_ns, 0, {}, {}};
  ctx.arrived.resize(static_cast<std::size_t>(p));
  ctx.have.assign(static_cast<std::size_t>(p), 0);
  CYCLICK_COUNT("commplan.execs", my_rank, 1);
  CYCLICK_COUNT("redist.execs", my_rank, 1);
  CYCLICK_COUNT("redist.pipelined_execs", my_rank, 1);

  // Pre-post the first W receives before the pack phase begins: the reader
  // thread lands remote payloads into the queue while this replica packs.
  const std::size_t first =
      std::min<std::size_t>(static_cast<std::size_t>(window), in_phases.size());
  for (std::size_t i = 0; i < first; ++i) ctx.post_next();

  // Phase 1: pack every channel into the arena (the replica needs them
  // all); post this process's outgoing remote channels nonblocking in
  // schedule order.
  exec.run([&ctx](i64 q) {
    CYCLICK_SPAN("plan_exec.pack", q);
    const T* local = ctx.src.local(q).data();
    for (i64 f = 0; f < ctx.p; ++f) {
      const i64 m = redist_peer_to(q, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      if (ch.count == 0) continue;
      detail::PipeSpan span("redist.pipe.pack", q);
      std::vector<std::byte>& buf = ctx.plan.scratch(m, q);
      buf.resize(static_cast<std::size_t>(ch.count) * sizeof(T));
      detail::pack_channel<T>(ch.count, ch.src_start,
                              ctx.plan.src_off.data() + ch.gap_begin, ch.period,
                              ch.src_advance, ch.src_contig, local,
                              reinterpret_cast<T*>(buf.data()));
      if (q == ctx.my_rank && m != q)
        ctx.transport.isend(q, m, std::vector<std::byte>(buf), nullptr, f);
    }
  });

  // Phase 2: unpack every channel in schedule order; channels arriving at
  // this process's rank block on the completion queue the first time their
  // phase has not landed yet (later arrivals were stashed).
  exec.run([&ctx](i64 m) {
    CYCLICK_SPAN("plan_exec.unpack", m);
    T* local = ctx.dst.local(m).data();
    for (i64 f = 0; f < ctx.p; ++f) {
      const i64 q = redist_peer_from(m, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      if (ch.count == 0) continue;
      CYCLICK_COUNT("commplan.bytes", m, ch.count * static_cast<i64>(sizeof(T)));
      const i64* off = ctx.plan.dst_off.data() + ch.gap_begin;
      const std::vector<std::byte>* bytes = &ctx.plan.scratch(m, q);
      if (m == ctx.my_rank && q != m) {
        while (!ctx.have[static_cast<std::size_t>(f)]) {
          Completion c = ctx.cq.wait(ctx.transport.recv_timeout_ms());
          const i64 g = c.tag;
          const i64 post_ns = ctx.posted_ns[static_cast<std::size_t>(g)];
          if (post_ns >= 0)
            obs::TraceSink::global().complete("redist.pipe.inflight", m, post_ns,
                                              obs::now_ns());
          ctx.arrived[static_cast<std::size_t>(g)] = std::move(c.payload);
          ctx.have[static_cast<std::size_t>(g)] = 1;
          ctx.post_next();
        }
        const std::vector<std::byte>& payload = ctx.arrived[static_cast<std::size_t>(f)];
        CYCLICK_REQUIRE(payload.size() == static_cast<std::size_t>(ch.count) * sizeof(T),
                        "received payload size disagrees with the plan");
        bytes = &payload;
      }
      detail::PipeSpan span("redist.pipe.unpack", m);
      detail::unpack_channel<T>(ch.count, ch.dst_start, off, ch.period, ch.dst_advance,
                                ch.dst_contig, reinterpret_cast<const T*>(bytes->data()),
                                local);
    }
  });
  guard.cq = nullptr;  // everything reaped; nothing left to withdraw
}

/// Execute a scheduled plan (records redist.* schedule telemetry on top of
/// the channel-level counters, then dispatches like execute_copy_plan).
template <typename SrcArr, typename DstArr>
void execute_redistribution(const RedistributionPlan& plan, const SrcArr& src, DstArr& dst,
                            const SpmdExecutor& exec) {
  CYCLICK_SPAN("redist.exec", 0);
  CYCLICK_COUNT("redist.phases", 0, plan.phases);
  execute_copy_plan(plan.comm, src, dst, exec);
}

/// Which order replay_plan_traffic posts each sender's messages in.
enum class ScheduleOrder {
  kNaive,    ///< every sender walks receivers 0, 1, ..., p-1 (incast shape)
  kRotated,  ///< sender q's f-th message targets (q + f) mod p
};

/// Replay only the *wire traffic* of a plan through a transport: one
/// zero-filled message per nonempty remote channel, sized like the real
/// payload (`elem_bytes` per element), posted in the given order and then
/// drained. No arrays are touched — this is the incast-study primitive:
/// run it twice over a simulated mesh (kNaive vs kRotated) and compare the
/// transport's congestion report.
void replay_plan_traffic(const CommPlan& plan, Transport& transport, ScheduleOrder order,
                         i64 elem_bytes);

}  // namespace cyclick
