// The redistribution layer: every byte the runtime moves between ranks
// flows through here, on every backend.
//
// comm_plan.hpp *describes* data movement (compressed per-channel run
// descriptors built from the paper's access sequences); this layer
// *schedules and executes* it. A CommPlan's channels form an all-to-all
// exchange; executing them in the naive order (every sender walks
// receivers 0, 1, 2, ...) serializes the network into p incast bursts:
// every sender's j-th message targets receiver j, so receiver j takes up
// to p-1 simultaneous arrivals. The schedule here applies round-robin
// phase rotation instead:
//
//   phase f in [0, p):  rank r sends to (r + f) mod p
//                       rank r receives from (r - f + p) mod p
//
// Phase 0 is the self channel; each later phase is a perfect matching of
// senders to receivers (a fixed-point-free rotation), so no destination
// ever takes p simultaneous senders — each phase delivers at most one
// message per receiver. The rule is pure arithmetic on (rank, phase, p),
// identical on every backend, which is what makes the three transports
// (in-process, socket mesh, simulated mesh) execute *the same schedule*
// and produce byte-identical results.
//
// Executors (moved here from comm_plan.hpp, all phase-ordered):
//   execute_copy_plan            backend dispatch: replicated over the
//                                process mesh when a ProcessContext is
//                                active, over the provider transport when
//                                one is installed (sim), else in-process
//   execute_copy_plan_over       whole machine over one Transport
//   execute_copy_plan_rank       exactly one rank's share (proc backend)
//   execute_copy_plan_replicated the replicated-machine proc shape
//
// They are generic over the array type: anything with local(rank) spans
// of a trivially copyable element works (DistributedArray, MultiDimArray),
// so 1-D section copies and N-D region remaps execute through the same
// four entry points.
//
// RedistributionPlan wraps a CommPlan with its schedule metadata (phase
// count, dimensionality); build_redistribution_plan composes the
// per-dimension access sequences the AddressEngine produces into one
// all-to-all schedule. replay_plan_traffic replays just the wire traffic
// of a plan (no arrays) in naive or rotated order — the incast-study
// primitive behind the simulation gate.
#pragma once

#include "cyclick/runtime/comm_plan.hpp"
#include "cyclick/runtime/transport.hpp"

namespace cyclick {

/// Peer that `rank` sends to in schedule phase `phase` of a `ranks`-rank
/// exchange. Phase 0 is the self channel.
[[nodiscard]] constexpr i64 redist_peer_to(i64 rank, i64 phase, i64 ranks) noexcept {
  return (rank + phase) % ranks;
}

/// Peer that `rank` receives from in schedule phase `phase` (the inverse
/// matching of redist_peer_to: redist_peer_to(q, f, p) == r iff
/// redist_peer_from(r, f, p) == q).
[[nodiscard]] constexpr i64 redist_peer_from(i64 rank, i64 phase, i64 ranks) noexcept {
  return (rank - phase % ranks + ranks) % ranks;
}

/// Number of schedule phases with at least one nonempty channel (the self
/// phase counts when any rank keeps data). At most `plan.ranks`.
[[nodiscard]] i64 schedule_phase_count(const CommPlan& plan);

/// A CommPlan plus its all-to-all schedule metadata. The channels are the
/// movement description; `phases` is how many rotation phases the schedule
/// actually occupies (sparse exchanges — e.g. a halo shift — touch only a
/// few phases even on a large machine).
struct RedistributionPlan {
  CommPlan comm;
  i64 dims = 1;    ///< dimensionality of the sections it was built from
  i64 phases = 0;  ///< nonempty schedule phases, including the self phase

  [[nodiscard]] i64 ranks() const noexcept { return comm.ranks; }
  [[nodiscard]] i64 message_count() const noexcept { return comm.message_count(); }
  [[nodiscard]] i64 remote_elements() const noexcept { return comm.remote_elements(); }
  [[nodiscard]] i64 total_elements() const noexcept { return comm.total_elements(); }
};

/// Wrap a built CommPlan into a RedistributionPlan (computes the phase
/// count once; O(p^2) over the channel grid).
[[nodiscard]] RedistributionPlan finish_redistribution_plan(CommPlan&& comm, i64 dims);

/// Build the scheduled plan for the 1-D copy dst(dsec) = src(ssec).
template <typename T>
[[nodiscard]] RedistributionPlan build_redistribution_plan(const DistributedArray<T>& src,
                                                           const RegularSection& ssec,
                                                           DistributedArray<T>& dst,
                                                           const RegularSection& dsec,
                                                           const SpmdExecutor& exec) {
  return finish_redistribution_plan(build_copy_plan(src, ssec, dst, dsec, exec), 1);
}

namespace detail {

/// Element type of an array's local spans.
template <typename Arr>
using local_element_t = std::remove_cvref_t<decltype(std::declval<Arr&>().local(i64{0})[0])>;

}  // namespace detail

/// Execute a compressed plan: senders pack values straight into the plan's
/// per-channel byte buffers, then receivers unpack — two barrier-separated
/// SPMD phases, mirroring a message-passing implementation. Both loops walk
/// the rotation schedule (phase order), so the traffic pattern matches the
/// transport-backed paths exactly. Steady-state calls perform no heap
/// allocations (the arena is reused).
template <typename SrcArr, typename DstArr>
void execute_copy_plan_replicated(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                                  const SpmdExecutor& exec, i64 my_rank,
                                  Transport& transport);

template <typename SrcArr, typename DstArr>
void execute_copy_plan_over(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                            const SpmdExecutor& exec, Transport& transport);

template <typename SrcArr, typename DstArr>
void execute_copy_plan(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                       const SpmdExecutor& exec) {
  using T = detail::local_element_t<DstArr>;
  static_assert(std::is_trivially_copyable_v<T>, "plans move raw bytes");
  CYCLICK_REQUIRE(plan.ranks == exec.ranks(), "plan built for a different machine");
  // Inside a launched rank process (--backend=proc), route this rank's
  // share of the copy over the wire. Plans for machines of a different
  // size than the process world stay purely local — every rank process
  // computes them identically, so no exchange is needed.
  const ProcessContext& pc = process_context();
  if (pc.active() && plan.ranks == pc.world) {
    execute_copy_plan_replicated(plan, src, dst, exec, pc.rank, *pc.transport);
    return;
  }
  // Under the simulation backend every whole-machine plan execution is
  // replayed over the provided (virtual) transport: identical results,
  // message-shaped movement, predicted timings as a side effect.
  if (TransportProvider* provider = transport_provider(); provider != nullptr) {
    execute_copy_plan_over(plan, src, dst, exec, provider->transport_for(plan.ranks));
    return;
  }
  const i64 p = plan.ranks;

  // Context structs keep the SPMD lambdas at one captured reference so the
  // std::function wrapper stays within its small-buffer storage (zero
  // allocations per call in steady state).
  struct Ctx {
    const CommPlan& plan;
    const SrcArr& src;
    DstArr& dst;
    i64 p;
  };
  Ctx ctx{plan, src, dst, p};

  CYCLICK_COUNT("commplan.execs", 0, 1);
  CYCLICK_COUNT("redist.execs", 0, 1);

  // Phase 1: every sender q packs, for every receiver m in schedule order,
  // the requested values out of its own local buffer into the channel's
  // arena buffer.
  exec.run([&ctx](i64 q) {
    CYCLICK_SPAN("plan_exec.pack", q);
    const T* local = ctx.src.local(q).data();
    for (i64 f = 0; f < ctx.p; ++f) {
      const i64 m = redist_peer_to(q, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      if (ch.count == 0) continue;
      std::vector<std::byte>& buf = ctx.plan.scratch(m, q);
      buf.resize(static_cast<std::size_t>(ch.count) * sizeof(T));
      detail::pack_channel<T>(ch.count, ch.src_start,
                              ctx.plan.src_off.data() + ch.gap_begin, ch.period,
                              ch.src_advance, ch.src_contig, local,
                              reinterpret_cast<T*>(buf.data()));
    }
  });

  // Phase 2: every receiver m unpacks in schedule order into its own local
  // buffer. The byte counter attributes channel payloads to the receiving
  // rank, so `--metrics` reports plan traffic even on this transport-less
  // path.
  exec.run([&ctx](i64 m) {
    CYCLICK_SPAN("plan_exec.unpack", m);
    T* local = ctx.dst.local(m).data();
    for (i64 f = 0; f < ctx.p; ++f) {
      const i64 q = redist_peer_from(m, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      if (ch.count == 0) continue;
      CYCLICK_COUNT("commplan.bytes", m, ch.count * static_cast<i64>(sizeof(T)));
      const std::vector<std::byte>& buf = ctx.plan.scratch(m, q);
      detail::unpack_channel<T>(ch.count, ch.dst_start,
                                ctx.plan.dst_off.data() + ch.gap_begin, ch.period,
                                ch.dst_advance, ch.dst_contig,
                                reinterpret_cast<const T*>(buf.data()), local);
    }
  });
}

/// Execute a compressed plan with the data movement routed through a
/// Transport: every remote channel becomes one message whose payload is
/// packed *directly* in wire format (no intermediate value vector); the
/// self channel stages through the plan arena so the pack phase completes
/// before any destination write (alias safety). Senders post messages in
/// rotation-phase order — sender q's f-th departure targets (q + f) mod p —
/// so arrivals at each receiver spread across distinct departure slots
/// instead of piling up (the incast the naive order produces). Identical
/// results to execute_copy_plan; only the movement mechanism differs —
/// this is the entry point an MPI port would rebind.
template <typename SrcArr, typename DstArr>
void execute_copy_plan_over(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                            const SpmdExecutor& exec, Transport& transport) {
  using T = detail::local_element_t<DstArr>;
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  CYCLICK_REQUIRE(plan.ranks == exec.ranks(), "plan built for a different machine");
  CYCLICK_REQUIRE(transport.ranks() == exec.ranks(), "transport/executor rank mismatch");
  const i64 p = plan.ranks;

  struct Ctx {
    const CommPlan& plan;
    const SrcArr& src;
    DstArr& dst;
    Transport& transport;
    i64 p;
  };
  Ctx ctx{plan, src, dst, transport, p};
  CYCLICK_COUNT("commplan.execs", 0, 1);
  CYCLICK_COUNT("redist.execs", 0, 1);

  // Phase 1: senders pack per-receiver messages straight into transport
  // payloads and post them in schedule order (one message per nonempty
  // remote channel).
  exec.run([&ctx](i64 q) {
    CYCLICK_SPAN("plan_exec.pack", q);
    const T* local = ctx.src.local(q).data();
    for (i64 f = 0; f < ctx.p; ++f) {
      const i64 m = redist_peer_to(q, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      if (ch.count == 0) continue;
      const i64* off = ctx.plan.src_off.data() + ch.gap_begin;
      if (m == q) {
        std::vector<std::byte>& buf = ctx.plan.scratch(m, q);
        buf.resize(static_cast<std::size_t>(ch.count) * sizeof(T));
        detail::pack_channel<T>(ch.count, ch.src_start, off, ch.period, ch.src_advance,
                                ch.src_contig, local, reinterpret_cast<T*>(buf.data()));
        continue;
      }
      send_packed<T>(ctx.transport, q, m, ch.count, [&](std::span<T> out) {
        detail::pack_channel<T>(ch.count, ch.src_start, off, ch.period, ch.src_advance,
                                ch.src_contig, local, out.data());
      });
    }
  });

  // Phase 2: receivers drain their channels in schedule order and store;
  // the self channel comes out of the arena at phase 0.
  exec.run([&ctx](i64 m) {
    CYCLICK_SPAN("plan_exec.unpack", m);
    T* local = ctx.dst.local(m).data();
    for (i64 f = 0; f < ctx.p; ++f) {
      const i64 q = redist_peer_from(m, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      if (ch.count == 0) continue;
      CYCLICK_COUNT("commplan.bytes", m, ch.count * static_cast<i64>(sizeof(T)));
      const i64* off = ctx.plan.dst_off.data() + ch.gap_begin;
      if (q == m) {
        const std::vector<std::byte>& buf = ctx.plan.scratch(m, q);
        detail::unpack_channel<T>(ch.count, ch.dst_start, off, ch.period, ch.dst_advance,
                                  ch.dst_contig, reinterpret_cast<const T*>(buf.data()),
                                  local);
        continue;
      }
      const std::vector<std::byte> payload = ctx.transport.recv(m, q);
      CYCLICK_ASSERT(payload.size() == static_cast<std::size_t>(ch.count) * sizeof(T));
      detail::unpack_channel<T>(ch.count, ch.dst_start, off, ch.period, ch.dst_advance,
                                ch.dst_contig, reinterpret_cast<const T*>(payload.data()),
                                local);
    }
  });
}

/// Execute exactly one rank's share of a plan — the genuinely distributed
/// entry point, where the calling process *is* rank `rank` of a
/// multi-process machine and `transport` is its endpoint. Packs and posts
/// this rank's outgoing channels in rotation-phase order, then blocks on
/// its incoming ones in the matching order; every remote destination
/// element is filled exclusively from received wire bytes (never
/// recomputed locally), and only src.local(rank) is read /
/// dst.local(rank) written. All sends complete before the first receive,
/// so the protocol is deadlock-free regardless of peer pacing (sends never
/// block; the socket backend buffers them), and all source reads finish
/// before any destination write (alias safety).
template <typename SrcArr, typename DstArr>
void execute_copy_plan_rank(const CommPlan& plan, const SrcArr& src, DstArr& dst, i64 rank,
                            Transport& transport) {
  using T = detail::local_element_t<DstArr>;
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  CYCLICK_REQUIRE(transport.ranks() == plan.ranks, "transport/plan rank mismatch");
  CYCLICK_REQUIRE(rank >= 0 && rank < plan.ranks, "rank out of range");
  const i64 p = plan.ranks;
  CYCLICK_COUNT("commplan.execs", rank, 1);
  CYCLICK_COUNT("redist.execs", rank, 1);

  {
    CYCLICK_SPAN("plan_exec.pack", rank);
    const T* local = src.local(rank).data();
    for (i64 f = 0; f < p; ++f) {
      const i64 m = redist_peer_to(rank, f, p);
      const CommPlan::Channel& ch = plan.channel(m, rank);
      if (ch.count == 0) continue;
      const i64* off = plan.src_off.data() + ch.gap_begin;
      if (m == rank) {
        // Self channel stages through the arena so every read of the
        // (possibly aliased) source completes before any write below.
        std::vector<std::byte>& buf = plan.scratch(m, rank);
        buf.resize(static_cast<std::size_t>(ch.count) * sizeof(T));
        detail::pack_channel<T>(ch.count, ch.src_start, off, ch.period, ch.src_advance,
                                ch.src_contig, local, reinterpret_cast<T*>(buf.data()));
        continue;
      }
      send_packed<T>(transport, rank, m, ch.count, [&](std::span<T> out) {
        detail::pack_channel<T>(ch.count, ch.src_start, off, ch.period, ch.src_advance,
                                ch.src_contig, local, out.data());
      });
    }
  }

  {
    CYCLICK_SPAN("plan_exec.unpack", rank);
    T* local = dst.local(rank).data();
    for (i64 f = 0; f < p; ++f) {
      const i64 q = redist_peer_from(rank, f, p);
      const CommPlan::Channel& ch = plan.channel(rank, q);
      if (ch.count == 0) continue;
      CYCLICK_COUNT("commplan.bytes", rank, ch.count * static_cast<i64>(sizeof(T)));
      const i64* off = plan.dst_off.data() + ch.gap_begin;
      const std::vector<std::byte>* bytes;
      std::vector<std::byte> payload;
      if (q == rank) {
        bytes = &plan.scratch(rank, q);
      } else {
        payload = transport.recv(rank, q);
        CYCLICK_REQUIRE(payload.size() == static_cast<std::size_t>(ch.count) * sizeof(T),
                        "received payload size disagrees with the plan");
        bytes = &payload;
      }
      detail::unpack_channel<T>(ch.count, ch.dst_start, off, ch.period, ch.dst_advance,
                                ch.dst_contig, reinterpret_cast<const T*>(bytes->data()),
                                local);
    }
  }
}

/// Replicated-machine exchange: the shape `--backend=proc` runs. Every
/// rank process executes the whole program against a full replica of the
/// arrays (so plans, statistics and control flow stay byte-identical to
/// the single-process run), but channels that touch *this* process's rank
/// still cross the real wire: its outgoing channels are sent, and its
/// incoming remote channels are unpacked from the received bytes instead
/// of the locally packed ones. Transport corruption therefore shows up as
/// a checksum TransportError or a divergent replica — never silently.
/// Wire traffic is posted and drained in rotation-phase order, matching
/// the other transport-backed executors.
template <typename SrcArr, typename DstArr>
void execute_copy_plan_replicated(const CommPlan& plan, const SrcArr& src, DstArr& dst,
                                  const SpmdExecutor& exec, i64 my_rank,
                                  Transport& transport) {
  using T = detail::local_element_t<DstArr>;
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  CYCLICK_REQUIRE(plan.ranks == exec.ranks(), "plan built for a different machine");
  CYCLICK_REQUIRE(transport.ranks() == plan.ranks, "transport/plan rank mismatch");
  CYCLICK_REQUIRE(my_rank >= 0 && my_rank < plan.ranks, "rank out of range");
  const i64 p = plan.ranks;

  struct Ctx {
    const CommPlan& plan;
    const SrcArr& src;
    DstArr& dst;
    Transport& transport;
    i64 p;
    i64 my_rank;
  };
  Ctx ctx{plan, src, dst, transport, p, my_rank};
  CYCLICK_COUNT("commplan.execs", my_rank, 1);
  CYCLICK_COUNT("redist.execs", my_rank, 1);

  // Phase 1: pack every channel into the arena (the replica needs them
  // all); additionally post this process's outgoing remote channels in
  // schedule order.
  exec.run([&ctx](i64 q) {
    CYCLICK_SPAN("plan_exec.pack", q);
    const T* local = ctx.src.local(q).data();
    for (i64 f = 0; f < ctx.p; ++f) {
      const i64 m = redist_peer_to(q, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      if (ch.count == 0) continue;
      std::vector<std::byte>& buf = ctx.plan.scratch(m, q);
      buf.resize(static_cast<std::size_t>(ch.count) * sizeof(T));
      detail::pack_channel<T>(ch.count, ch.src_start,
                              ctx.plan.src_off.data() + ch.gap_begin, ch.period,
                              ch.src_advance, ch.src_contig, local,
                              reinterpret_cast<T*>(buf.data()));
      if (q == ctx.my_rank && m != q) ctx.transport.send(q, m, buf);  // copies buf
    }
  });

  // Phase 2: unpack every channel in schedule order; the ones arriving at
  // this process's rank from remote senders use the wire bytes.
  exec.run([&ctx](i64 m) {
    CYCLICK_SPAN("plan_exec.unpack", m);
    T* local = ctx.dst.local(m).data();
    for (i64 f = 0; f < ctx.p; ++f) {
      const i64 q = redist_peer_from(m, f, ctx.p);
      const CommPlan::Channel& ch = ctx.plan.channel(m, q);
      if (ch.count == 0) continue;
      CYCLICK_COUNT("commplan.bytes", m, ch.count * static_cast<i64>(sizeof(T)));
      const i64* off = ctx.plan.dst_off.data() + ch.gap_begin;
      const std::vector<std::byte>* bytes = &ctx.plan.scratch(m, q);
      std::vector<std::byte> payload;
      if (m == ctx.my_rank && q != m) {
        payload = ctx.transport.recv(m, q);
        CYCLICK_REQUIRE(payload.size() == static_cast<std::size_t>(ch.count) * sizeof(T),
                        "received payload size disagrees with the plan");
        bytes = &payload;
      }
      detail::unpack_channel<T>(ch.count, ch.dst_start, off, ch.period, ch.dst_advance,
                                ch.dst_contig, reinterpret_cast<const T*>(bytes->data()),
                                local);
    }
  });
}

/// Execute a scheduled plan (records redist.* schedule telemetry on top of
/// the channel-level counters, then dispatches like execute_copy_plan).
template <typename SrcArr, typename DstArr>
void execute_redistribution(const RedistributionPlan& plan, const SrcArr& src, DstArr& dst,
                            const SpmdExecutor& exec) {
  CYCLICK_SPAN("redist.exec", 0);
  CYCLICK_COUNT("redist.phases", 0, plan.phases);
  execute_copy_plan(plan.comm, src, dst, exec);
}

/// Which order replay_plan_traffic posts each sender's messages in.
enum class ScheduleOrder {
  kNaive,    ///< every sender walks receivers 0, 1, ..., p-1 (incast shape)
  kRotated,  ///< sender q's f-th message targets (q + f) mod p
};

/// Replay only the *wire traffic* of a plan through a transport: one
/// zero-filled message per nonempty remote channel, sized like the real
/// payload (`elem_bytes` per element), posted in the given order and then
/// drained. No arrays are touched — this is the incast-study primitive:
/// run it twice over a simulated mesh (kNaive vs kRotated) and compare the
/// transport's congestion report.
void replay_plan_traffic(const CommPlan& plan, Transport& transport, ScheduleOrder order,
                         i64 elem_bytes);

}  // namespace cyclick
