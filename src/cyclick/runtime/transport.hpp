// Message transport for the simulated distributed-memory machine.
//
// The section-copy engines can route their pack/unpack phases through this
// interface instead of reading remote memory directly, making the runtime's
// data movement explicit and message-shaped (what an MPI port would swap
// in). The in-process implementation keeps one FIFO channel per (from, to)
// pair, with blocking receives under the threaded executor.
//
// Discipline: with the *sequential* executor, exchanges must be
// phase-structured (all sends complete before any receive — the engines'
// barrier phases guarantee this); a blocking receive with no matching send
// would otherwise never complete. The threaded executor supports
// single-phase protocols (send then receive inside one SPMD region).
#pragma once

#include <condition_variable>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cyclick/obs/metrics.hpp"
#include "cyclick/support/types.hpp"

namespace cyclick {

/// Cumulative per-channel traffic (telemetry; zeros when telemetry is
/// disabled or compiled out).
struct ChannelStats {
  i64 messages = 0;
  i64 bytes = 0;
};

/// Error thrown when message delivery fails or cannot complete: a recv
/// deadline expired, a peer closed its end mid-protocol, a frame failed
/// checksum or protocol validation, or a connection could not be
/// established. The message always names the channel (from->to) involved
/// so a stuck exchange is diagnosable instead of a silent hang.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Deadline for blocking receives, in milliseconds; <= 0 means block
/// forever. The default for every transport comes from the environment
/// (CYCLICK_RECV_TIMEOUT_MS), so a deadlocked run can be re-run with a
/// deadline and fail fast with the stuck channel named.
[[nodiscard]] inline i64 recv_timeout_ms_from_env() {
  const char* env = std::getenv("CYCLICK_RECV_TIMEOUT_MS");
  if (env == nullptr || *env == '\0') return 0;
  return static_cast<i64>(std::atoll(env));
}

[[noreturn]] inline void throw_recv_timeout(i64 from, i64 to, i64 timeout_ms) {
  throw TransportError("recv timeout on channel " + std::to_string(from) + "->" +
                       std::to_string(to) + " after " + std::to_string(timeout_ms) +
                       " ms (no matching send; set CYCLICK_RECV_TIMEOUT_MS=0 to block)");
}

/// Default in-flight credit for completion queues (how many posted
/// operations a queue admits before `post` blocks), overridable with
/// CYCLICK_TRANSPORT_CREDITS. This is the backstop that keeps the
/// pipelined executors' pre-posted receive windows bounded no matter what
/// window the adaptive policy asks for.
[[nodiscard]] inline i64 transport_credits_from_env() {
  const char* env = std::getenv("CYCLICK_TRANSPORT_CREDITS");
  if (env == nullptr || *env == '\0') return 16;
  const i64 v = static_cast<i64>(std::atoll(env));
  return v >= 1 ? v : 16;
}

/// The result of one nonblocking transport operation, reaped from a
/// CompletionQueue. Receives carry the delivered payload; sends carry none.
/// `ok == false` means the operation failed (peer died, frame rejected);
/// the queue rethrows `error` as a TransportError when the completion is
/// reaped, so failures cannot be silently dropped.
struct Completion {
  enum class Kind : unsigned char { kSend, kRecv };
  Kind kind = Kind::kRecv;
  bool ok = true;
  i64 from = -1;  ///< sending rank of the channel
  i64 to = -1;    ///< receiving rank of the channel
  i64 tag = 0;    ///< caller-chosen label (the executors use the phase index)
  std::vector<std::byte> payload;  ///< kRecv only
  std::string error;               ///< set when !ok
};

/// Bounded completion queue for nonblocking transport operations — the
/// per-rank rendezvous point between a pipelined executor and a transport
/// backend. The caller posts operations through Transport::isend/irecv
/// (which call `post` and later `complete`/`fail`); the consumer reaps
/// them with `wait`/`try_wait` in completion order.
///
/// Credit discipline: at most `credits` operations may be outstanding
/// (posted but not yet reaped); `post` blocks until a slot frees, so a
/// runaway window degrades to backpressure instead of unbounded buffering
/// ("window exhaustion blocks instead of dropping"). Credits are released
/// when a completion is *reaped*, not when it arrives — the payload of a
/// completed-but-unreaped receive still occupies its slot.
///
/// Deadline semantics: `wait(timeout_ms)` counts its deadline from the
/// moment the consumer starts waiting — NOT from when the operation was
/// posted — so a receive pre-posted W phases early does not burn its
/// deadline while the pipeline is busy packing. On expiry the error names
/// the oldest pending operation's (from, to, tag) channel.
///
/// Thread safety: all members are safe to call concurrently. Lock order:
/// transports call `post`/`complete`/`fail` while holding their own
/// channel locks, so the queue never calls back into the transport while
/// holding `mu_` (the progress hook runs unlocked).
class CompletionQueue {
 public:
  explicit CompletionQueue(i64 credits = transport_credits_from_env()) : credits_(credits) {
    CYCLICK_REQUIRE(credits >= 1, "completion queue needs at least one credit");
  }

  [[nodiscard]] i64 credits() const noexcept { return credits_; }

  /// Operations posted and not yet reaped.
  [[nodiscard]] i64 in_flight() {
    const std::lock_guard<std::mutex> lock(mu_);
    return static_cast<i64>(pending_.size() + done_.size());
  }

  /// Single-consumer backends that only make progress when *driven* (the
  /// sim's virtual clock) install a hook that `wait`/`try_wait` invoke —
  /// outside the queue lock — whenever no completion is ready.
  void set_progress(std::function<void()> progress) {
    const std::lock_guard<std::mutex> lock(mu_);
    progress_ = std::move(progress);
  }

  /// Transport side: claim a credit and register an in-flight operation.
  /// Blocks while the queue is at its credit limit. Returns the operation
  /// id to later complete/fail/cancel.
  [[nodiscard]] u64 post(Completion::Kind kind, i64 from, i64 to, i64 tag) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return static_cast<i64>(pending_.size() + done_.size()) < credits_;
    });
    const u64 op = next_op_++;
    pending_.emplace(op, Pending{kind, from, to, tag});
    return op;
  }

  /// Transport side: deliver a successful completion for `op`. A no-op if
  /// the operation was cancelled in the meantime.
  void complete(u64 op, std::vector<std::byte> payload = {}) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto it = pending_.find(op);
      if (it == pending_.end()) return;
      Completion c;
      c.kind = it->second.kind;
      c.from = it->second.from;
      c.to = it->second.to;
      c.tag = it->second.tag;
      c.payload = std::move(payload);
      pending_.erase(it);
      done_.push_back(std::move(c));
    }
    cv_.notify_all();
  }

  /// Transport side: deliver a failed completion for `op`; `wait` rethrows
  /// `error` as a TransportError when it is reaped.
  void fail(u64 op, std::string error) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto it = pending_.find(op);
      if (it == pending_.end()) return;
      Completion c;
      c.kind = it->second.kind;
      c.ok = false;
      c.from = it->second.from;
      c.to = it->second.to;
      c.tag = it->second.tag;
      c.error = std::move(error);
      pending_.erase(it);
      done_.push_back(std::move(c));
    }
    cv_.notify_all();
  }

  /// Drop a pending operation without producing a completion (releases its
  /// credit). Used by Transport::cancel_posted.
  void cancel(u64 op) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      pending_.erase(op);
    }
    cv_.notify_all();
  }

  /// Reap the next completion in arrival order; blocks until one is ready.
  /// `timeout_ms <= 0` blocks forever. The deadline counts from this call,
  /// not from the post (satellite: pre-posted receives must not expire
  /// while the pipeline is busy elsewhere); on expiry the TransportError
  /// names the oldest still-pending operation's channel and tag. A reaped
  /// failure rethrows its recorded error.
  Completion wait(i64 timeout_ms = 0) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      if (!done_.empty()) return reap_locked();
      CYCLICK_REQUIRE(!pending_.empty(),
                      "wait on a completion queue with no operations posted");
      if (progress_) {
        // Drive the backend outside the lock (sim: drain the event heap),
        // then re-check; poll in slices so externally produced completions
        // are still picked up promptly.
        const auto hook = progress_;
        lock.unlock();
        hook();
        lock.lock();
        if (!done_.empty()) return reap_locked();
        auto slice = std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
        if (timeout_ms > 0 && deadline < slice) slice = deadline;
        cv_.wait_until(lock, slice);
      } else if (timeout_ms > 0) {
        cv_.wait_until(lock, deadline);
      } else {
        cv_.wait(lock);
      }
      if (timeout_ms > 0 && done_.empty() &&
          std::chrono::steady_clock::now() >= deadline)
        throw_wait_timeout_locked(timeout_ms);
    }
  }

  /// Reap the next completion if one is already available (drives the
  /// progress hook once when none is); never blocks.
  std::optional<Completion> try_wait() {
    std::unique_lock<std::mutex> lock(mu_);
    if (done_.empty() && progress_) {
      const auto hook = progress_;
      lock.unlock();
      hook();
      lock.lock();
    }
    if (done_.empty()) return std::nullopt;
    return reap_locked();
  }

 private:
  struct Pending {
    Completion::Kind kind;
    i64 from, to, tag;
  };

  /// Pop the oldest completion; releases its credit. Caller holds mu_.
  Completion reap_locked() {
    Completion c = std::move(done_.front());
    done_.pop_front();
    cv_.notify_all();  // a credit was released
    if (!c.ok)
      throw TransportError(c.error.empty()
                               ? "transport operation failed on channel " +
                                     std::to_string(c.from) + "->" + std::to_string(c.to)
                               : c.error);
    return c;
  }

  [[noreturn]] void throw_wait_timeout_locked(i64 timeout_ms) {
    // pending_ is keyed by post order, so begin() is the oldest operation —
    // the one the pipeline has waited on longest.
    const Pending& p = pending_.begin()->second;
    throw TransportError(
        std::string(p.kind == Completion::Kind::kRecv ? "recv" : "send") +
        " completion timeout on channel " + std::to_string(p.from) + "->" +
        std::to_string(p.to) + " (phase " + std::to_string(p.tag) + ") after " +
        std::to_string(timeout_ms) +
        " ms waiting (posted operation unmatched; set CYCLICK_RECV_TIMEOUT_MS=0 to block)");
  }

  std::mutex mu_;
  std::condition_variable cv_;
  i64 credits_;
  u64 next_op_ = 0;
  std::map<u64, Pending> pending_;  ///< ordered: begin() is the oldest post
  std::deque<Completion> done_;
  std::function<void()> progress_;
};

/// Abstract point-to-point byte transport with per-channel FIFO order.
///
/// Nonblocking primitives: `isend`/`irecv` register operations on a
/// caller-owned CompletionQueue and return immediately; the backend
/// completes them when the payload is genuinely accepted/delivered (the
/// socket backend's writer/reader threads, the sim's virtual clock, the
/// in-process FIFO at enqueue time). A posted irecv *claims* the next
/// message on its channel: do not mix blocking recv() and posted irecvs on
/// the same channel concurrently (per-channel single consumer, as
/// everywhere else in the runtime). Posted operations hold references into
/// the transport — reap or `cancel_posted` them before destroying either
/// the queue or the transport.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual i64 ranks() const = 0;

  /// Post a message on channel (from -> to). Never blocks.
  virtual void send(i64 from, i64 to, std::vector<std::byte> payload) = 0;

  /// Pop the next message on channel (from -> to); blocks until one arrives.
  virtual std::vector<std::byte> recv(i64 to, i64 from) = 0;

  /// True when a message is waiting on channel (from -> to).
  [[nodiscard]] virtual bool ready(i64 to, i64 from) = 0;

  /// Nonblocking send on channel (from -> to). When `cq` is non-null a
  /// kSend completion (tagged `tag`) is delivered once the payload is
  /// accepted for delivery — after the actual socket write on the wire
  /// backend, at virtual departure time on the sim. Null `cq` is
  /// fire-and-forget (exactly `send`). Base default: send + immediate
  /// completion, correct for any backend whose send() already queues
  /// reliably.
  virtual void isend(i64 from, i64 to, std::vector<std::byte> payload, CompletionQueue* cq,
                     i64 tag) {
    send(from, to, std::move(payload));
    if (cq != nullptr) cq->complete(cq->post(Completion::Kind::kSend, from, to, tag));
  }

  /// Post a receive on channel (from -> to): a kRecv completion carrying
  /// the payload is delivered to `cq` (tagged `tag`) when the matching
  /// send arrives. Completes immediately if a message is already queued.
  /// Posted receives on one channel match senders in FIFO post order.
  virtual void irecv(i64 to, i64 from, CompletionQueue& cq, i64 tag) = 0;

  /// Nonblocking receive: pop the next message on (from -> to) into `out`
  /// if one is waiting. Returns false (out untouched) otherwise.
  [[nodiscard]] virtual bool try_recv(i64 to, i64 from, std::vector<std::byte>& out) {
    if (!ready(to, from)) return false;
    out = recv(to, from);
    return true;
  }

  /// Withdraw every not-yet-completed operation this transport holds for
  /// `cq` (releasing their credits, delivering nothing). The exception-path
  /// cleanup that keeps a dying pipeline from leaving dangling queue
  /// pointers inside the transport.
  virtual void cancel_posted(CompletionQueue& cq) = 0;

  /// The backend's configured blocking-receive deadline in ms (<= 0 blocks
  /// forever) — what pipelined consumers should pass to
  /// CompletionQueue::wait so posted receives observe the same
  /// CYCLICK_RECV_TIMEOUT_MS policy as blocking recv().
  [[nodiscard]] virtual i64 recv_timeout_ms() const { return 0; }
};

/// In-process transport: a mutex-protected deque per channel. An optional
/// recv deadline (default: CYCLICK_RECV_TIMEOUT_MS, off when unset)
/// converts a deadlocked blocking receive into a TransportError naming the
/// stuck channel.
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(i64 ranks, i64 recv_timeout_ms = recv_timeout_ms_from_env())
      : ranks_(ranks), recv_timeout_ms_(recv_timeout_ms) {
    CYCLICK_REQUIRE(ranks >= 1, "transport needs at least one rank");
    channels_ = std::vector<Channel>(static_cast<std::size_t>(ranks * ranks));
  }

  [[nodiscard]] i64 ranks() const override { return ranks_; }

  void send(i64 from, i64 to, std::vector<std::byte> payload) override {
    const i64 bytes = static_cast<i64>(payload.size());
    Channel& ch = channel(from, to);
    PostedRecv matched{};
    {
      const std::lock_guard<std::mutex> lock(ch.mu);
      if (obs::enabled()) {
        // Plain i64s guarded by the channel mutex we already hold; the
        // registry counters attribute traffic to the sending rank.
        ++ch.stats.messages;
        ch.stats.bytes += bytes;
      }
      if (!ch.posted.empty()) {
        // A pre-posted receive claims the message directly; it never
        // touches the FIFO (completion order = send order per channel).
        matched = ch.posted.front();
        ch.posted.pop_front();
      } else {
        ch.queue.push_back(std::move(payload));
      }
    }
    CYCLICK_COUNT("transport.messages", from, 1);
    CYCLICK_COUNT("transport.bytes", from, bytes);
    if (matched.cq != nullptr)
      matched.cq->complete(matched.op, std::move(payload));
    else
      ch.cv.notify_all();
  }

  std::vector<std::byte> recv(i64 to, i64 from) override {
    Channel& ch = channel(from, to);
    std::unique_lock<std::mutex> lock(ch.mu);
    if (recv_timeout_ms_ > 0) {
      if (!ch.cv.wait_for(lock, std::chrono::milliseconds(recv_timeout_ms_),
                          [&] { return !ch.queue.empty(); }))
        throw_recv_timeout(from, to, recv_timeout_ms_);
    } else {
      ch.cv.wait(lock, [&] { return !ch.queue.empty(); });
    }
    std::vector<std::byte> payload = std::move(ch.queue.front());
    ch.queue.pop_front();
    return payload;
  }

  [[nodiscard]] bool ready(i64 to, i64 from) override {
    Channel& ch = channel(from, to);
    const std::lock_guard<std::mutex> lock(ch.mu);
    return !ch.queue.empty();
  }

  void irecv(i64 to, i64 from, CompletionQueue& cq, i64 tag) override {
    // Claim the credit before touching the channel: post() may block on
    // the credit limit, and blocking while holding ch.mu would wedge the
    // sender that should free it.
    const u64 op = cq.post(Completion::Kind::kRecv, from, to, tag);
    Channel& ch = channel(from, to);
    std::vector<std::byte> payload;
    bool immediate = false;
    {
      const std::lock_guard<std::mutex> lock(ch.mu);
      if (!ch.queue.empty()) {
        payload = std::move(ch.queue.front());
        ch.queue.pop_front();
        immediate = true;
      } else {
        ch.posted.push_back(PostedRecv{&cq, op});
      }
    }
    if (immediate) cq.complete(op, std::move(payload));
  }

  [[nodiscard]] bool try_recv(i64 to, i64 from, std::vector<std::byte>& out) override {
    Channel& ch = channel(from, to);
    const std::lock_guard<std::mutex> lock(ch.mu);
    if (ch.queue.empty()) return false;
    out = std::move(ch.queue.front());
    ch.queue.pop_front();
    return true;
  }

  void cancel_posted(CompletionQueue& cq) override {
    for (auto& ch : channels_) {
      std::vector<u64> ops;
      {
        const std::lock_guard<std::mutex> lock(ch.mu);
        for (auto it = ch.posted.begin(); it != ch.posted.end();) {
          if (it->cq == &cq) {
            ops.push_back(it->op);
            it = ch.posted.erase(it);
          } else {
            ++it;
          }
        }
      }
      for (const u64 op : ops) cq.cancel(op);
    }
  }

  [[nodiscard]] i64 recv_timeout_ms() const override { return recv_timeout_ms_; }

  /// Total messages currently in flight (diagnostics).
  [[nodiscard]] i64 in_flight() {
    i64 n = 0;
    for (auto& ch : channels_) {
      const std::lock_guard<std::mutex> lock(ch.mu);
      n += static_cast<i64>(ch.queue.size());
    }
    return n;
  }

  /// Cumulative traffic on channel (from -> to) since construction.
  /// Counts accrue only while telemetry is enabled.
  [[nodiscard]] ChannelStats channel_stats(i64 from, i64 to) {
    Channel& ch = channel(from, to);
    const std::lock_guard<std::mutex> lock(ch.mu);
    return ch.stats;
  }

 private:
  struct PostedRecv {
    CompletionQueue* cq = nullptr;
    u64 op = 0;
  };
  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<std::byte>> queue;
    std::deque<PostedRecv> posted;  ///< pre-posted receives, FIFO match order
    ChannelStats stats;
  };

  Channel& channel(i64 from, i64 to) {
    CYCLICK_REQUIRE(from >= 0 && from < ranks_ && to >= 0 && to < ranks_,
                    "rank out of range");
    return channels_[static_cast<std::size_t>(from * ranks_ + to)];
  }

  i64 ranks_;
  i64 recv_timeout_ms_;
  std::vector<Channel> channels_;
};

/// Identity of the calling OS process within a multi-process SPMD machine,
/// plus the transport its rank owns. Inactive (no transport) in ordinary
/// single-process runs. The rank launcher (net/launcher) installs one in
/// every spawned rank process; the comm-plan executor consults it to route
/// this rank's share of each copy over the wire (see
/// execute_copy_plan_replicated). Not thread-safe to mutate concurrently
/// with SPMD phases — set it once at process startup.
struct ProcessContext {
  i64 rank = -1;                  ///< this process's rank id
  i64 world = 0;                  ///< total rank processes in the machine
  Transport* transport = nullptr; ///< this rank's endpoint (owned elsewhere)
  [[nodiscard]] bool active() const noexcept { return transport != nullptr; }
};

/// The process-wide context (mutable; default-inactive).
[[nodiscard]] inline ProcessContext& process_context() {
  static ProcessContext ctx;
  return ctx;
}

/// Source of whole-machine transports for single-process backends that
/// want every plan execution routed through a Transport — the simulation
/// backend (sim::SimMachine) installs one so `execute_copy_plan` replays
/// every CommPlan over the modelled interconnect while producing results
/// byte-identical to the transport-free path. Unlike ProcessContext (one
/// real rank per OS process), a provider serves *all* ranks of any machine
/// size the program creates.
class TransportProvider {
 public:
  virtual ~TransportProvider() = default;
  /// The transport to route a `ranks`-rank plan execution through.
  virtual Transport& transport_for(i64 ranks) = 0;
};

/// The process-wide provider slot (null when inactive). Set it once at
/// process startup, like process_context(); a live ProcessContext takes
/// precedence in execute_copy_plan.
[[nodiscard]] inline TransportProvider*& transport_provider() {
  static TransportProvider* provider = nullptr;
  return provider;
}

/// Typed convenience: send a span of trivially copyable values.
template <typename T>
void send_values(Transport& transport, i64 from, i64 to, std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  std::vector<std::byte> payload(values.size_bytes());
  if (!values.empty()) std::memcpy(payload.data(), values.data(), values.size_bytes());
  transport.send(from, to, std::move(payload));
}

/// Zero-copy typed send: allocates the wire payload once and hands `fill`
/// a typed span over it, so producers pack values directly into the bytes
/// that go on the wire — no intermediate value vector, no second memcpy.
/// (The heap buffer backing a vector<std::byte> is max-aligned, so the
/// typed view is valid for any trivially copyable T.)
template <typename T, typename Fill>
void send_packed(Transport& transport, i64 from, i64 to, i64 count, Fill&& fill) {
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  CYCLICK_REQUIRE(count >= 0, "negative payload element count");
  std::vector<std::byte> payload(static_cast<std::size_t>(count) * sizeof(T));
  if (count > 0)
    std::forward<Fill>(fill)(
        std::span<T>(reinterpret_cast<T*>(payload.data()), static_cast<std::size_t>(count)));
  transport.send(from, to, std::move(payload));
}

/// Typed convenience: receive a vector of trivially copyable values.
template <typename T>
std::vector<T> recv_values(Transport& transport, i64 to, i64 from) {
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  const std::vector<std::byte> payload = transport.recv(to, from);
  CYCLICK_REQUIRE(payload.size() % sizeof(T) == 0, "payload size not a multiple of T");
  std::vector<T> values(payload.size() / sizeof(T));
  if (!values.empty()) std::memcpy(values.data(), payload.data(), payload.size());
  return values;
}

}  // namespace cyclick
