// Message transport for the simulated distributed-memory machine.
//
// The section-copy engines can route their pack/unpack phases through this
// interface instead of reading remote memory directly, making the runtime's
// data movement explicit and message-shaped (what an MPI port would swap
// in). The in-process implementation keeps one FIFO channel per (from, to)
// pair, with blocking receives under the threaded executor.
//
// Discipline: with the *sequential* executor, exchanges must be
// phase-structured (all sends complete before any receive — the engines'
// barrier phases guarantee this); a blocking receive with no matching send
// would otherwise never complete. The threaded executor supports
// single-phase protocols (send then receive inside one SPMD region).
#pragma once

#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "cyclick/obs/metrics.hpp"
#include "cyclick/support/types.hpp"

namespace cyclick {

/// Cumulative per-channel traffic (telemetry; zeros when telemetry is
/// disabled or compiled out).
struct ChannelStats {
  i64 messages = 0;
  i64 bytes = 0;
};

/// Abstract point-to-point byte transport with per-channel FIFO order.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual i64 ranks() const = 0;

  /// Post a message on channel (from -> to). Never blocks.
  virtual void send(i64 from, i64 to, std::vector<std::byte> payload) = 0;

  /// Pop the next message on channel (from -> to); blocks until one arrives.
  virtual std::vector<std::byte> recv(i64 to, i64 from) = 0;

  /// True when a message is waiting on channel (from -> to).
  [[nodiscard]] virtual bool ready(i64 to, i64 from) = 0;
};

/// In-process transport: a mutex-protected deque per channel.
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(i64 ranks) : ranks_(ranks) {
    CYCLICK_REQUIRE(ranks >= 1, "transport needs at least one rank");
    channels_ = std::vector<Channel>(static_cast<std::size_t>(ranks * ranks));
  }

  [[nodiscard]] i64 ranks() const override { return ranks_; }

  void send(i64 from, i64 to, std::vector<std::byte> payload) override {
    const i64 bytes = static_cast<i64>(payload.size());
    Channel& ch = channel(from, to);
    {
      const std::lock_guard<std::mutex> lock(ch.mu);
      ch.queue.push_back(std::move(payload));
      if (obs::enabled()) {
        // Plain i64s guarded by the channel mutex we already hold; the
        // registry counters attribute traffic to the sending rank.
        ++ch.stats.messages;
        ch.stats.bytes += bytes;
      }
    }
    CYCLICK_COUNT("transport.messages", from, 1);
    CYCLICK_COUNT("transport.bytes", from, bytes);
    ch.cv.notify_all();
  }

  std::vector<std::byte> recv(i64 to, i64 from) override {
    Channel& ch = channel(from, to);
    std::unique_lock<std::mutex> lock(ch.mu);
    ch.cv.wait(lock, [&] { return !ch.queue.empty(); });
    std::vector<std::byte> payload = std::move(ch.queue.front());
    ch.queue.pop_front();
    return payload;
  }

  [[nodiscard]] bool ready(i64 to, i64 from) override {
    Channel& ch = channel(from, to);
    const std::lock_guard<std::mutex> lock(ch.mu);
    return !ch.queue.empty();
  }

  /// Total messages currently in flight (diagnostics).
  [[nodiscard]] i64 in_flight() {
    i64 n = 0;
    for (auto& ch : channels_) {
      const std::lock_guard<std::mutex> lock(ch.mu);
      n += static_cast<i64>(ch.queue.size());
    }
    return n;
  }

  /// Cumulative traffic on channel (from -> to) since construction.
  /// Counts accrue only while telemetry is enabled.
  [[nodiscard]] ChannelStats channel_stats(i64 from, i64 to) {
    Channel& ch = channel(from, to);
    const std::lock_guard<std::mutex> lock(ch.mu);
    return ch.stats;
  }

 private:
  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<std::byte>> queue;
    ChannelStats stats;
  };

  Channel& channel(i64 from, i64 to) {
    CYCLICK_REQUIRE(from >= 0 && from < ranks_ && to >= 0 && to < ranks_,
                    "rank out of range");
    return channels_[static_cast<std::size_t>(from * ranks_ + to)];
  }

  i64 ranks_;
  std::vector<Channel> channels_;
};

/// Typed convenience: send a span of trivially copyable values.
template <typename T>
void send_values(Transport& transport, i64 from, i64 to, std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  std::vector<std::byte> payload(values.size_bytes());
  if (!values.empty()) std::memcpy(payload.data(), values.data(), values.size_bytes());
  transport.send(from, to, std::move(payload));
}

/// Zero-copy typed send: allocates the wire payload once and hands `fill`
/// a typed span over it, so producers pack values directly into the bytes
/// that go on the wire — no intermediate value vector, no second memcpy.
/// (The heap buffer backing a vector<std::byte> is max-aligned, so the
/// typed view is valid for any trivially copyable T.)
template <typename T, typename Fill>
void send_packed(Transport& transport, i64 from, i64 to, i64 count, Fill&& fill) {
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  CYCLICK_REQUIRE(count >= 0, "negative payload element count");
  std::vector<std::byte> payload(static_cast<std::size_t>(count) * sizeof(T));
  if (count > 0)
    std::forward<Fill>(fill)(
        std::span<T>(reinterpret_cast<T*>(payload.data()), static_cast<std::size_t>(count)));
  transport.send(from, to, std::move(payload));
}

/// Typed convenience: receive a vector of trivially copyable values.
template <typename T>
std::vector<T> recv_values(Transport& transport, i64 to, i64 from) {
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  const std::vector<std::byte> payload = transport.recv(to, from);
  CYCLICK_REQUIRE(payload.size() % sizeof(T) == 0, "payload size not a multiple of T");
  std::vector<T> values(payload.size() / sizeof(T));
  if (!values.empty()) std::memcpy(values.data(), payload.data(), payload.size());
  return values;
}

}  // namespace cyclick
