// Message transport for the simulated distributed-memory machine.
//
// The section-copy engines can route their pack/unpack phases through this
// interface instead of reading remote memory directly, making the runtime's
// data movement explicit and message-shaped (what an MPI port would swap
// in). The in-process implementation keeps one FIFO channel per (from, to)
// pair, with blocking receives under the threaded executor.
//
// Discipline: with the *sequential* executor, exchanges must be
// phase-structured (all sends complete before any receive — the engines'
// barrier phases guarantee this); a blocking receive with no matching send
// would otherwise never complete. The threaded executor supports
// single-phase protocols (send then receive inside one SPMD region).
#pragma once

#include <condition_variable>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "cyclick/obs/metrics.hpp"
#include "cyclick/support/types.hpp"

namespace cyclick {

/// Cumulative per-channel traffic (telemetry; zeros when telemetry is
/// disabled or compiled out).
struct ChannelStats {
  i64 messages = 0;
  i64 bytes = 0;
};

/// Error thrown when message delivery fails or cannot complete: a recv
/// deadline expired, a peer closed its end mid-protocol, a frame failed
/// checksum or protocol validation, or a connection could not be
/// established. The message always names the channel (from->to) involved
/// so a stuck exchange is diagnosable instead of a silent hang.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Deadline for blocking receives, in milliseconds; <= 0 means block
/// forever. The default for every transport comes from the environment
/// (CYCLICK_RECV_TIMEOUT_MS), so a deadlocked run can be re-run with a
/// deadline and fail fast with the stuck channel named.
[[nodiscard]] inline i64 recv_timeout_ms_from_env() {
  const char* env = std::getenv("CYCLICK_RECV_TIMEOUT_MS");
  if (env == nullptr || *env == '\0') return 0;
  return static_cast<i64>(std::atoll(env));
}

[[noreturn]] inline void throw_recv_timeout(i64 from, i64 to, i64 timeout_ms) {
  throw TransportError("recv timeout on channel " + std::to_string(from) + "->" +
                       std::to_string(to) + " after " + std::to_string(timeout_ms) +
                       " ms (no matching send; set CYCLICK_RECV_TIMEOUT_MS=0 to block)");
}

/// Abstract point-to-point byte transport with per-channel FIFO order.
class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual i64 ranks() const = 0;

  /// Post a message on channel (from -> to). Never blocks.
  virtual void send(i64 from, i64 to, std::vector<std::byte> payload) = 0;

  /// Pop the next message on channel (from -> to); blocks until one arrives.
  virtual std::vector<std::byte> recv(i64 to, i64 from) = 0;

  /// True when a message is waiting on channel (from -> to).
  [[nodiscard]] virtual bool ready(i64 to, i64 from) = 0;
};

/// In-process transport: a mutex-protected deque per channel. An optional
/// recv deadline (default: CYCLICK_RECV_TIMEOUT_MS, off when unset)
/// converts a deadlocked blocking receive into a TransportError naming the
/// stuck channel.
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(i64 ranks, i64 recv_timeout_ms = recv_timeout_ms_from_env())
      : ranks_(ranks), recv_timeout_ms_(recv_timeout_ms) {
    CYCLICK_REQUIRE(ranks >= 1, "transport needs at least one rank");
    channels_ = std::vector<Channel>(static_cast<std::size_t>(ranks * ranks));
  }

  [[nodiscard]] i64 ranks() const override { return ranks_; }

  void send(i64 from, i64 to, std::vector<std::byte> payload) override {
    const i64 bytes = static_cast<i64>(payload.size());
    Channel& ch = channel(from, to);
    {
      const std::lock_guard<std::mutex> lock(ch.mu);
      ch.queue.push_back(std::move(payload));
      if (obs::enabled()) {
        // Plain i64s guarded by the channel mutex we already hold; the
        // registry counters attribute traffic to the sending rank.
        ++ch.stats.messages;
        ch.stats.bytes += bytes;
      }
    }
    CYCLICK_COUNT("transport.messages", from, 1);
    CYCLICK_COUNT("transport.bytes", from, bytes);
    ch.cv.notify_all();
  }

  std::vector<std::byte> recv(i64 to, i64 from) override {
    Channel& ch = channel(from, to);
    std::unique_lock<std::mutex> lock(ch.mu);
    if (recv_timeout_ms_ > 0) {
      if (!ch.cv.wait_for(lock, std::chrono::milliseconds(recv_timeout_ms_),
                          [&] { return !ch.queue.empty(); }))
        throw_recv_timeout(from, to, recv_timeout_ms_);
    } else {
      ch.cv.wait(lock, [&] { return !ch.queue.empty(); });
    }
    std::vector<std::byte> payload = std::move(ch.queue.front());
    ch.queue.pop_front();
    return payload;
  }

  [[nodiscard]] bool ready(i64 to, i64 from) override {
    Channel& ch = channel(from, to);
    const std::lock_guard<std::mutex> lock(ch.mu);
    return !ch.queue.empty();
  }

  /// Total messages currently in flight (diagnostics).
  [[nodiscard]] i64 in_flight() {
    i64 n = 0;
    for (auto& ch : channels_) {
      const std::lock_guard<std::mutex> lock(ch.mu);
      n += static_cast<i64>(ch.queue.size());
    }
    return n;
  }

  /// Cumulative traffic on channel (from -> to) since construction.
  /// Counts accrue only while telemetry is enabled.
  [[nodiscard]] ChannelStats channel_stats(i64 from, i64 to) {
    Channel& ch = channel(from, to);
    const std::lock_guard<std::mutex> lock(ch.mu);
    return ch.stats;
  }

 private:
  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<std::byte>> queue;
    ChannelStats stats;
  };

  Channel& channel(i64 from, i64 to) {
    CYCLICK_REQUIRE(from >= 0 && from < ranks_ && to >= 0 && to < ranks_,
                    "rank out of range");
    return channels_[static_cast<std::size_t>(from * ranks_ + to)];
  }

  i64 ranks_;
  i64 recv_timeout_ms_;
  std::vector<Channel> channels_;
};

/// Identity of the calling OS process within a multi-process SPMD machine,
/// plus the transport its rank owns. Inactive (no transport) in ordinary
/// single-process runs. The rank launcher (net/launcher) installs one in
/// every spawned rank process; the comm-plan executor consults it to route
/// this rank's share of each copy over the wire (see
/// execute_copy_plan_replicated). Not thread-safe to mutate concurrently
/// with SPMD phases — set it once at process startup.
struct ProcessContext {
  i64 rank = -1;                  ///< this process's rank id
  i64 world = 0;                  ///< total rank processes in the machine
  Transport* transport = nullptr; ///< this rank's endpoint (owned elsewhere)
  [[nodiscard]] bool active() const noexcept { return transport != nullptr; }
};

/// The process-wide context (mutable; default-inactive).
[[nodiscard]] inline ProcessContext& process_context() {
  static ProcessContext ctx;
  return ctx;
}

/// Source of whole-machine transports for single-process backends that
/// want every plan execution routed through a Transport — the simulation
/// backend (sim::SimMachine) installs one so `execute_copy_plan` replays
/// every CommPlan over the modelled interconnect while producing results
/// byte-identical to the transport-free path. Unlike ProcessContext (one
/// real rank per OS process), a provider serves *all* ranks of any machine
/// size the program creates.
class TransportProvider {
 public:
  virtual ~TransportProvider() = default;
  /// The transport to route a `ranks`-rank plan execution through.
  virtual Transport& transport_for(i64 ranks) = 0;
};

/// The process-wide provider slot (null when inactive). Set it once at
/// process startup, like process_context(); a live ProcessContext takes
/// precedence in execute_copy_plan.
[[nodiscard]] inline TransportProvider*& transport_provider() {
  static TransportProvider* provider = nullptr;
  return provider;
}

/// Typed convenience: send a span of trivially copyable values.
template <typename T>
void send_values(Transport& transport, i64 from, i64 to, std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  std::vector<std::byte> payload(values.size_bytes());
  if (!values.empty()) std::memcpy(payload.data(), values.data(), values.size_bytes());
  transport.send(from, to, std::move(payload));
}

/// Zero-copy typed send: allocates the wire payload once and hands `fill`
/// a typed span over it, so producers pack values directly into the bytes
/// that go on the wire — no intermediate value vector, no second memcpy.
/// (The heap buffer backing a vector<std::byte> is max-aligned, so the
/// typed view is valid for any trivially copyable T.)
template <typename T, typename Fill>
void send_packed(Transport& transport, i64 from, i64 to, i64 count, Fill&& fill) {
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  CYCLICK_REQUIRE(count >= 0, "negative payload element count");
  std::vector<std::byte> payload(static_cast<std::size_t>(count) * sizeof(T));
  if (count > 0)
    std::forward<Fill>(fill)(
        std::span<T>(reinterpret_cast<T*>(payload.data()), static_cast<std::size_t>(count)));
  transport.send(from, to, std::move(payload));
}

/// Typed convenience: receive a vector of trivially copyable values.
template <typename T>
std::vector<T> recv_values(Transport& transport, i64 to, i64 from) {
  static_assert(std::is_trivially_copyable_v<T>, "transport carries raw bytes");
  const std::vector<std::byte> payload = transport.recv(to, from);
  CYCLICK_REQUIRE(payload.size() % sizeof(T) == 0, "payload size not a multiple of T");
  std::vector<T> values(payload.size() / sizeof(T));
  if (!values.empty()) std::memcpy(values.data(), payload.data(), payload.size());
  return values;
}

}  // namespace cyclick
