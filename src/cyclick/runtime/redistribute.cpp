#include "cyclick/runtime/redistribute.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace cyclick {

namespace {

/// Per-phase cost predictions for the adaptive pipeline window. The
/// runtime layer cannot depend on sim/, so these mirror the sim cost
/// model's environment knobs (CYCLICK_SIM_LINK_*, CYCLICK_SIM_HOST_* —
/// see sim/topology.hpp) with identical defaults: the window the real
/// executors run with is the one the simulated mesh predicts.
struct PipeCostModel {
  double link_latency_ns = 1000.0;
  double link_bytes_per_ns = 10.0;
  double host_overhead_ns = 500.0;
  double host_bytes_per_ns = 20.0;

  [[nodiscard]] static PipeCostModel from_env() {
    PipeCostModel m;
    const auto knob = [](const char* name, double fallback) {
      const char* env = std::getenv(name);
      if (env == nullptr || *env == '\0') return fallback;
      const double v = std::atof(env);
      return v > 0.0 ? v : fallback;
    };
    m.link_latency_ns = knob("CYCLICK_SIM_LINK_LATENCY_NS", m.link_latency_ns);
    m.link_bytes_per_ns = knob("CYCLICK_SIM_LINK_GBPS", m.link_bytes_per_ns);
    m.host_overhead_ns = knob("CYCLICK_SIM_HOST_OVERHEAD_NS", m.host_overhead_ns);
    m.host_bytes_per_ns = knob("CYCLICK_SIM_HOST_GBPS", m.host_bytes_per_ns);
    return m;
  }
};

}  // namespace

i64 redist_window_from_env() {
  const char* env = std::getenv("CYCLICK_REDIST_WINDOW");
  if (env == nullptr || *env == '\0') return -1;
  const i64 v = static_cast<i64>(std::atoll(env));
  return v < 0 ? -1 : v;
}

i64 adaptive_redist_window(const CommPlan& plan, i64 elem_bytes) {
  // The pipeline hides one phase's wire time behind packing/unpacking
  // work, so the useful depth is how many phases the sender can prepare
  // while the dominant message is in flight: W = 1 + wire/pack, clamped
  // to [2, 8]. All quantities come from the sim's cost model over the
  // plan's largest remote channel (its per-phase matchings carry at most
  // one message per receiver, so the largest channel is the per-phase
  // critical path).
  const i64 bytes = plan.max_channel_elements() * elem_bytes;
  if (bytes <= 0) return 2;
  const PipeCostModel m = PipeCostModel::from_env();
  const double wire_ns = 2.0 * m.host_overhead_ns +
                         static_cast<double>(bytes) / m.link_bytes_per_ns +
                         m.link_latency_ns;
  const double pack_ns =
      std::max(static_cast<double>(bytes) / m.host_bytes_per_ns, 1.0);
  const double w = 1.0 + std::ceil(wire_ns / pack_ns);
  return std::clamp<i64>(static_cast<i64>(w), 2, 8);
}

i64 resolve_redist_window(const CommPlan& plan, i64 elem_bytes) {
  const i64 env = redist_window_from_env();
  if (env == 0 || env == 1) return 1;  // pipelining disabled
  i64 w = env >= 2 ? env : adaptive_redist_window(plan, elem_bytes);
  // The credit limit is the hard cap: incast protection from the phase
  // rotation assumes a bounded number of pre-posted receives per rank.
  w = std::min(w, transport_credits_from_env());
  return std::max<i64>(w, 2);
}

i64 schedule_phase_count(const CommPlan& plan) {
  const i64 p = plan.ranks;
  i64 phases = 0;
  for (i64 f = 0; f < p; ++f) {
    for (i64 q = 0; q < p; ++q) {
      if (plan.channel(redist_peer_to(q, f, p), q).count > 0) {
        ++phases;
        break;
      }
    }
  }
  return phases;
}

RedistributionPlan finish_redistribution_plan(CommPlan&& comm, i64 dims) {
  RedistributionPlan plan;
  plan.comm = std::move(comm);
  plan.dims = dims;
  plan.phases = schedule_phase_count(plan.comm);
  return plan;
}

void replay_plan_traffic(const CommPlan& plan, Transport& transport, ScheduleOrder order,
                         i64 elem_bytes) {
  CYCLICK_REQUIRE(transport.ranks() == plan.ranks, "transport/plan rank mismatch");
  CYCLICK_REQUIRE(elem_bytes >= 1, "element size must be positive");
  const i64 p = plan.ranks;
  // Sends first (they never block), posted phase-major: round f is every
  // sender's f-th departure, which is how the lock-step SPMD machine hits
  // the wire. Who each sender targets in round f is the whole experiment —
  // everyone walking receivers 0, 1, 2, ... (naive, so round f is a p-way
  // incast into receiver f) versus the rotation's perfect matching.
  for (i64 f = 0; f < p; ++f) {
    CYCLICK_SPAN("redist.phase", f);
    for (i64 q = 0; q < p; ++q) {
      const i64 m = order == ScheduleOrder::kRotated ? redist_peer_to(q, f, p) : f;
      if (m == q) continue;
      const CommPlan::Channel& ch = plan.channel(m, q);
      if (ch.count == 0) continue;
      transport.send(q, m,
                     std::vector<std::byte>(
                         static_cast<std::size_t>(ch.count) * static_cast<std::size_t>(
                                                                  elem_bytes)));
    }
  }
  // Drain everything so the transport's clock/report covers all deliveries.
  for (i64 m = 0; m < p; ++m) {
    for (i64 f = 0; f < p; ++f) {
      const i64 q = order == ScheduleOrder::kRotated ? redist_peer_from(m, f, p) : f;
      if (q == m) continue;
      if (plan.channel(m, q).count == 0) continue;
      (void)transport.recv(m, q);
    }
  }
}

}  // namespace cyclick
