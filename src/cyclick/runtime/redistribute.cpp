#include "cyclick/runtime/redistribute.hpp"

namespace cyclick {

i64 schedule_phase_count(const CommPlan& plan) {
  const i64 p = plan.ranks;
  i64 phases = 0;
  for (i64 f = 0; f < p; ++f) {
    for (i64 q = 0; q < p; ++q) {
      if (plan.channel(redist_peer_to(q, f, p), q).count > 0) {
        ++phases;
        break;
      }
    }
  }
  return phases;
}

RedistributionPlan finish_redistribution_plan(CommPlan&& comm, i64 dims) {
  RedistributionPlan plan;
  plan.comm = std::move(comm);
  plan.dims = dims;
  plan.phases = schedule_phase_count(plan.comm);
  return plan;
}

void replay_plan_traffic(const CommPlan& plan, Transport& transport, ScheduleOrder order,
                         i64 elem_bytes) {
  CYCLICK_REQUIRE(transport.ranks() == plan.ranks, "transport/plan rank mismatch");
  CYCLICK_REQUIRE(elem_bytes >= 1, "element size must be positive");
  const i64 p = plan.ranks;
  // Sends first (they never block), posted phase-major: round f is every
  // sender's f-th departure, which is how the lock-step SPMD machine hits
  // the wire. Who each sender targets in round f is the whole experiment —
  // everyone walking receivers 0, 1, 2, ... (naive, so round f is a p-way
  // incast into receiver f) versus the rotation's perfect matching.
  for (i64 f = 0; f < p; ++f) {
    CYCLICK_SPAN("redist.phase", f);
    for (i64 q = 0; q < p; ++q) {
      const i64 m = order == ScheduleOrder::kRotated ? redist_peer_to(q, f, p) : f;
      if (m == q) continue;
      const CommPlan::Channel& ch = plan.channel(m, q);
      if (ch.count == 0) continue;
      transport.send(q, m,
                     std::vector<std::byte>(
                         static_cast<std::size_t>(ch.count) * static_cast<std::size_t>(
                                                                  elem_bytes)));
    }
  }
  // Drain everything so the transport's clock/report covers all deliveries.
  for (i64 m = 0; m < p; ++m) {
    for (i64 f = 0; f < p; ++f) {
      const i64 q = order == ScheduleOrder::kRotated ? redist_peer_from(m, f, p) : f;
      if (q == m) continue;
      if (plan.channel(m, q).count == 0) continue;
      (void)transport.recv(m, q);
    }
  }
}

}  // namespace cyclick
