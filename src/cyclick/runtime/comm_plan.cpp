#include "cyclick/runtime/comm_plan.hpp"

namespace cyclick {
namespace detail {

i64 smallest_gap_period(std::span<const i64> a, std::span<const i64> b) {
  CYCLICK_ASSERT(a.size() == b.size());
  const std::size_t n = a.size();
  if (n == 0) return 0;
  // KMP prefix function over the paired stream; the smallest border period
  // n - fail[n-1] satisfies seq[i] == seq[i - pi] for every i >= pi, which
  // is exactly the property the cyclic gap-table replay needs (the stream
  // need not be a whole number of periods long).
  std::vector<std::size_t> fail(n, 0);
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t j = fail[i - 1];
    while (j > 0 && (a[i] != a[j] || b[i] != b[j])) j = fail[j - 1];
    if (a[i] == a[j] && b[i] == b[j]) ++j;
    fail[i] = j;
  }
  return static_cast<i64>(n - fail[n - 1]);
}

}  // namespace detail

void CommPlan::adopt_channels(std::vector<detail::ChannelAccum>&& accum) {
  CYCLICK_REQUIRE(static_cast<i64>(accum.size()) == ranks * ranks,
                  "channel grid does not match rank count");
  channels.assign(accum.size(), Channel{});
  src_off.clear();
  dst_off.clear();
  message_count_ = 0;
  remote_elements_ = 0;
  total_elements_ = 0;
  for (i64 m = 0; m < ranks; ++m) {
    for (i64 q = 0; q < ranks; ++q) {
      const auto idx = static_cast<std::size_t>(m * ranks + q);
      detail::ChannelAccum& acc = accum[idx];
      Channel& ch = channels[idx];
      ch.count = acc.count;
      if (acc.count == 0) continue;
      ch.src_start = acc.src_start;
      ch.dst_start = acc.dst_start;
      ch.gap_begin = static_cast<i64>(src_off.size());
      ch.period = detail::smallest_gap_period(acc.src_deltas, acc.dst_deltas);
      // Store the period as offsets-from-start (prefix sums of the gaps):
      // element i of the channel then lives at start + (i / P) * advance +
      // off[i mod P], the shape the kernel gather/scatter replays without a
      // serially dependent address chain.
      i64 soff = 0;
      i64 doff = 0;
      for (i64 r = 0; r < ch.period; ++r) {
        src_off.push_back(soff);
        dst_off.push_back(doff);
        soff += acc.src_deltas[static_cast<std::size_t>(r)];
        doff += acc.dst_deltas[static_cast<std::size_t>(r)];
      }
      ch.src_advance = soff;
      ch.dst_advance = doff;
      // A side is contiguous iff the whole stream steps by one (KMP then
      // compresses the gaps to the single entry {1}); single-element
      // channels are trivially contiguous. Those pack/unpack as memcpy.
      ch.src_contig = acc.count == 1 || (ch.period == 1 && ch.src_advance == 1);
      ch.dst_contig = acc.count == 1 || (ch.period == 1 && ch.dst_advance == 1);
      // Release the uncompressed deltas eagerly: construction's transient
      // footprint stays bounded by one receiver's share, not the section.
      acc.src_deltas = {};
      acc.dst_deltas = {};
      total_elements_ += acc.count;
      if (q != m) {
        remote_elements_ += acc.count;
        ++message_count_;
        if (acc.count > max_channel_elements_) max_channel_elements_ = acc.count;
      }
    }
  }
  src_off.shrink_to_fit();
  dst_off.shrink_to_fit();
  scratch_.resize(static_cast<std::size_t>(ranks * ranks));
}

std::size_t CommPlan::plan_bytes() const noexcept {
  return channels.capacity() * sizeof(Channel) +
         (src_off.capacity() + dst_off.capacity()) * sizeof(i64) +
         scratch_.capacity() * sizeof(std::vector<std::byte>);
}

std::size_t CommPlan::scratch_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& buf : scratch_) bytes += buf.capacity();
  return bytes;
}

}  // namespace cyclick
