// Multidimensional distributed arrays and region operations.
//
// HPF distributes each array dimension independently onto one axis of the
// processor grid (paper, Section 2: "the memory access problem simply
// reduces to multiple applications of the algorithm for the
// one-dimensional case"). A rank's share of a multidimensional region is
// the Cartesian product of its per-dimension access sequences; this module
// materializes the per-dimension sequences with the table-free iterator
// and walks their product.
#pragma once

#include <span>
#include <vector>

#include "cyclick/core/engine.hpp"
#include "cyclick/hpf/multidim.hpp"
#include "cyclick/runtime/spmd.hpp"

namespace cyclick {

/// A rectangular region: one regular section per dimension.
using Region = std::vector<RegularSection>;

/// Number of elements in a region (product of per-dim sizes).
inline i64 region_size(const Region& region) {
  i64 n = 1;
  for (const RegularSection& s : region) n *= s.size();
  return n;
}

template <typename T>
class MultiDimArray {
 public:
  explicit MultiDimArray(MultiDimMapping map) : map_(std::move(map)) {
    locals_.resize(static_cast<std::size_t>(map_.grid().rank_count()));
    for (auto& buf : locals_)
      buf.assign(static_cast<std::size_t>(map_.local_capacity()), T{});
  }

  [[nodiscard]] const MultiDimMapping& mapping() const noexcept { return map_; }
  [[nodiscard]] std::size_t dims() const noexcept { return map_.dims(); }

  [[nodiscard]] T get(const std::vector<i64>& index) const {
    return locals_[static_cast<std::size_t>(map_.owner_rank(index))]
                  [static_cast<std::size_t>(map_.local_address(index))];
  }
  void set(const std::vector<i64>& index, const T& value) {
    locals_[static_cast<std::size_t>(map_.owner_rank(index))]
           [static_cast<std::size_t>(map_.local_address(index))] = value;
  }

  [[nodiscard]] std::span<T> local(i64 rank) {
    CYCLICK_REQUIRE(rank >= 0 && rank < map_.grid().rank_count(), "rank out of range");
    return locals_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] std::span<const T> local(i64 rank) const {
    CYCLICK_REQUIRE(rank >= 0 && rank < map_.grid().rank_count(), "rank out of range");
    return locals_[static_cast<std::size_t>(rank)];
  }

  /// Row-major global image (last dimension fastest).
  [[nodiscard]] std::vector<T> gather() const {
    std::vector<T> image(static_cast<std::size_t>(map_.total_elements()));
    std::vector<i64> idx(dims(), 0);
    for (std::size_t flat = 0; flat < image.size(); ++flat) {
      image[flat] = get(idx);
      bump(idx);
    }
    return image;
  }

  void scatter(std::span<const T> image) {
    CYCLICK_REQUIRE(static_cast<i64>(image.size()) == map_.total_elements(),
                    "image size mismatch");
    std::vector<i64> idx(dims(), 0);
    for (std::size_t flat = 0; flat < image.size(); ++flat) {
      set(idx, image[flat]);
      bump(idx);
    }
  }

 private:
  void bump(std::vector<i64>& idx) const {
    for (std::size_t d = dims(); d-- > 0;) {
      if (++idx[d] < map_.dim(d).extent) return;
      idx[d] = 0;
    }
  }

  MultiDimMapping map_;
  std::vector<std::vector<T>> locals_;
};

namespace detail {

/// Per-dimension share of a region on one grid coordinate: the dimension's
/// on-coordinate section elements with their per-dim local indices.
struct DimShare {
  std::vector<i64> index;      ///< array indices in this dimension
  std::vector<i64> local_idx;  ///< matching per-dim local indices
};

inline DimShare dim_share(const DimMapping& dm, const RegularSection& sec, i64 grid_coord) {
  CYCLICK_REQUIRE(!sec.empty(), "region sections must be nonempty");
  CYCLICK_REQUIRE(sec.lower >= 0 && sec.lower < dm.extent && sec.last() >= 0 &&
                      sec.last() < dm.extent,
                  "region section out of bounds");
  DimShare share;
  const SectionPlan plan =
      AddressEngine::global().plan(dm.dist, dm.align.image(sec).ascending(), grid_coord);
  plan.for_each([&](i64 cell, i64 la) {
    const auto idx = dm.align.index_of_cell(cell);
    CYCLICK_ASSERT(idx.has_value());
    share.index.push_back(*idx);
    share.local_idx.push_back(la);
  });
  return share;
}

}  // namespace detail

/// Visit every region element owned by `rank`, passing (index tuple,
/// local address). The tuple reference stays valid only during the call.
/// Returns the visit count. Cost: per-dimension O(k_d + share_d) setup,
/// O(dims) per element.
template <typename T, typename Body>
i64 for_each_owned_region(const MultiDimArray<T>& arr, const Region& region, i64 rank,
                          Body&& body) {
  const MultiDimMapping& map = arr.mapping();
  CYCLICK_REQUIRE(region.size() == map.dims(), "region arity mismatch");
  const auto coords = map.grid().coords_of(rank);

  std::vector<detail::DimShare> shares;
  shares.reserve(map.dims());
  for (std::size_t d = 0; d < map.dims(); ++d) {
    shares.push_back(detail::dim_share(map.dim(d), region[d], coords[d]));
    if (shares.back().index.empty()) return 0;  // this rank owns nothing
  }

  // Walk the Cartesian product (last dimension fastest), composing local
  // addresses from per-dim local indices row-major over local extents.
  const std::size_t nd = map.dims();
  std::vector<std::size_t> pos(nd, 0);
  std::vector<i64> index(nd);
  i64 count = 0;
  while (true) {
    i64 addr = 0;
    for (std::size_t d = 0; d < nd; ++d) {
      index[d] = shares[d].index[pos[d]];
      addr = addr * map.local_extent(d) + shares[d].local_idx[pos[d]];
    }
    body(index, addr);
    ++count;
    std::size_t d = nd;
    while (d-- > 0) {
      if (++pos[d] < shares[d].index.size()) break;
      pos[d] = 0;
      if (d == 0) return count;
    }
  }
}

/// arr(region) = value, executed SPMD.
template <typename T>
void fill_region(MultiDimArray<T>& arr, const Region& region, const T& value,
                 const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(exec.ranks() == arr.mapping().grid().rank_count(),
                  "executor/array rank mismatch");
  exec.run([&](i64 rank) {
    auto local = arr.local(rank);
    for_each_owned_region(arr, region, rank, [&](const std::vector<i64>&, i64 addr) {
      local[static_cast<std::size_t>(addr)] = value;
    });
  });
}

/// arr(region) = f(arr(region)) elementwise, executed SPMD.
template <typename T, typename F>
void transform_region(MultiDimArray<T>& arr, const Region& region, F&& f,
                      const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(exec.ranks() == arr.mapping().grid().rank_count(),
                  "executor/array rank mismatch");
  exec.run([&](i64 rank) {
    auto local = arr.local(rank);
    for_each_owned_region(arr, region, rank, [&](const std::vector<i64>&, i64 addr) {
      auto& slot = local[static_cast<std::size_t>(addr)];
      slot = f(slot);
    });
  });
}

/// dst(dregion) = src(sregion), where the regions have identical per-dim
/// sizes. Message-shaped pull model, as in the 1-D CommPlan engine: each
/// receiver enumerates its destination share and buckets requests by the
/// owning sender; senders pack values from their own local buffers;
/// receivers unpack — three barrier-separated SPMD phases with no remote
/// memory reads.
template <typename T>
void copy_region(const MultiDimArray<T>& src, const Region& sregion, MultiDimArray<T>& dst,
                 const Region& dregion, const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(sregion.size() == src.dims() && dregion.size() == dst.dims(),
                  "region arity mismatch");
  CYCLICK_REQUIRE(sregion.size() == dregion.size(), "copy regions must have equal rank");
  for (std::size_t d = 0; d < sregion.size(); ++d)
    CYCLICK_REQUIRE(sregion[d].size() == dregion[d].size(),
                    "copy region extents must match per dimension");
  CYCLICK_REQUIRE(exec.ranks() == dst.mapping().grid().rank_count(),
                  "executor/destination rank mismatch");
  CYCLICK_REQUIRE(exec.ranks() == src.mapping().grid().rank_count(),
                  "executor/source rank mismatch");
  const i64 p = exec.ranks();

  struct Item {
    i64 src_local;  ///< local address on the sender
    i64 dst_local;  ///< local address on the receiver
  };
  // requests[receiver * p + sender]
  std::vector<std::vector<Item>> requests(static_cast<std::size_t>(p * p));

  // Phase 1: receivers enumerate their destination shares and bucket the
  // matching source elements by owning sender.
  exec.run([&](i64 rank) {
    std::vector<i64> sidx(sregion.size());
    for_each_owned_region(dst, dregion, rank, [&](const std::vector<i64>& didx, i64 addr) {
      for (std::size_t d = 0; d < sregion.size(); ++d) {
        const i64 t = (didx[d] - dregion[d].lower) / dregion[d].stride;
        sidx[d] = sregion[d].element(t);
      }
      const i64 q = src.mapping().owner_rank(sidx);
      requests[static_cast<std::size_t>(rank * p + q)].push_back(
          {src.mapping().local_address(sidx), addr});
    });
  });

  // Phase 2: senders pack the requested values from their local buffers.
  std::vector<std::vector<T>> payload(static_cast<std::size_t>(p * p));
  exec.run([&](i64 q) {
    auto local = src.local(q);
    for (i64 m = 0; m < p; ++m) {
      const auto& items = requests[static_cast<std::size_t>(m * p + q)];
      auto& buf = payload[static_cast<std::size_t>(m * p + q)];
      buf.reserve(items.size());
      for (const Item& it : items) buf.push_back(local[static_cast<std::size_t>(it.src_local)]);
    }
  });

  // Phase 3: receivers unpack.
  exec.run([&](i64 m) {
    auto local = dst.local(m);
    for (i64 q = 0; q < p; ++q) {
      const auto& items = requests[static_cast<std::size_t>(m * p + q)];
      const auto& buf = payload[static_cast<std::size_t>(m * p + q)];
      for (std::size_t i = 0; i < items.size(); ++i)
        local[static_cast<std::size_t>(items[i].dst_local)] = buf[i];
    }
  });
}

/// Reduction over a region.
template <typename T, typename Op>
T reduce_region(const MultiDimArray<T>& arr, const Region& region, T init, Op&& op,
                const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(exec.ranks() == arr.mapping().grid().rank_count(),
                  "executor/array rank mismatch");
  std::vector<T> partial(static_cast<std::size_t>(exec.ranks()), T{});
  std::vector<char> seen(static_cast<std::size_t>(exec.ranks()), 0);
  exec.run([&](i64 rank) {
    auto local = arr.local(rank);
    for_each_owned_region(arr, region, rank, [&](const std::vector<i64>&, i64 addr) {
      const T& v = local[static_cast<std::size_t>(addr)];
      if (!seen[static_cast<std::size_t>(rank)]) {
        partial[static_cast<std::size_t>(rank)] = v;
        seen[static_cast<std::size_t>(rank)] = 1;
      } else {
        partial[static_cast<std::size_t>(rank)] =
            op(partial[static_cast<std::size_t>(rank)], v);
      }
    });
  });
  T out = init;
  for (i64 r = 0; r < exec.ranks(); ++r)
    if (seen[static_cast<std::size_t>(r)]) out = op(out, partial[static_cast<std::size_t>(r)]);
  return out;
}

}  // namespace cyclick
