// Multidimensional distributed arrays and region operations.
//
// HPF distributes each array dimension independently onto one axis of the
// processor grid (paper, Section 2: "the memory access problem simply
// reduces to multiple applications of the algorithm for the
// one-dimensional case"). A rank's share of a multidimensional region is
// the Cartesian product of its per-dimension access sequences; this module
// materializes the per-dimension sequences with the table-free iterator
// and walks their product.
//
// Region copies compose those per-dimension sequences into one CommPlan —
// the same compressed channel representation the 1-D engine uses — and
// execute it through the redistribution layer's phase-rotated executors,
// so N-D remaps run over every backend (in-process, one process per rank,
// simulated mesh) with byte-identical results. Plans are cached in the
// process-wide RegionPlanCache, so iterative stencils rebuild nothing.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "cyclick/core/engine.hpp"
#include "cyclick/hpf/multidim.hpp"
#include "cyclick/runtime/plan_cache.hpp"
#include "cyclick/runtime/redistribute.hpp"
#include "cyclick/runtime/spmd.hpp"

namespace cyclick {

/// A rectangular region: one regular section per dimension.
using Region = std::vector<RegularSection>;

/// Number of elements in a region (product of per-dim sizes).
inline i64 region_size(const Region& region) {
  i64 n = 1;
  for (const RegularSection& s : region) n *= s.size();
  return n;
}

template <typename T>
class MultiDimArray {
 public:
  explicit MultiDimArray(MultiDimMapping map) : map_(std::move(map)) {
    locals_.resize(static_cast<std::size_t>(map_.grid().rank_count()));
    for (auto& buf : locals_)
      buf.assign(static_cast<std::size_t>(map_.local_capacity()), T{});
  }

  [[nodiscard]] const MultiDimMapping& mapping() const noexcept { return map_; }
  [[nodiscard]] std::size_t dims() const noexcept { return map_.dims(); }

  [[nodiscard]] T get(const std::vector<i64>& index) const {
    return locals_[static_cast<std::size_t>(map_.owner_rank(index))]
                  [static_cast<std::size_t>(map_.local_address(index))];
  }
  void set(const std::vector<i64>& index, const T& value) {
    locals_[static_cast<std::size_t>(map_.owner_rank(index))]
           [static_cast<std::size_t>(map_.local_address(index))] = value;
  }

  [[nodiscard]] std::span<T> local(i64 rank) {
    CYCLICK_REQUIRE(rank >= 0 && rank < map_.grid().rank_count(), "rank out of range");
    return locals_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] std::span<const T> local(i64 rank) const {
    CYCLICK_REQUIRE(rank >= 0 && rank < map_.grid().rank_count(), "rank out of range");
    return locals_[static_cast<std::size_t>(rank)];
  }

  /// Row-major global image (last dimension fastest).
  [[nodiscard]] std::vector<T> gather() const {
    std::vector<T> image(static_cast<std::size_t>(map_.total_elements()));
    std::vector<i64> idx(dims(), 0);
    for (std::size_t flat = 0; flat < image.size(); ++flat) {
      image[flat] = get(idx);
      bump(idx);
    }
    return image;
  }

  void scatter(std::span<const T> image) {
    CYCLICK_REQUIRE(static_cast<i64>(image.size()) == map_.total_elements(),
                    "image size mismatch");
    std::vector<i64> idx(dims(), 0);
    for (std::size_t flat = 0; flat < image.size(); ++flat) {
      set(idx, image[flat]);
      bump(idx);
    }
  }

 private:
  void bump(std::vector<i64>& idx) const {
    for (std::size_t d = dims(); d-- > 0;) {
      if (++idx[d] < map_.dim(d).extent) return;
      idx[d] = 0;
    }
  }

  MultiDimMapping map_;
  std::vector<std::vector<T>> locals_;
};

namespace detail {

/// Per-dimension share of a region on one grid coordinate: the dimension's
/// on-coordinate section elements with their per-dim local indices.
struct DimShare {
  std::vector<i64> index;      ///< array indices in this dimension
  std::vector<i64> local_idx;  ///< matching per-dim local indices
};

inline DimShare dim_share(const DimMapping& dm, const RegularSection& sec, i64 grid_coord) {
  CYCLICK_REQUIRE(!sec.empty(), "region sections must be nonempty");
  CYCLICK_REQUIRE(sec.lower >= 0 && sec.lower < dm.extent && sec.last() >= 0 &&
                      sec.last() < dm.extent,
                  "region section out of bounds");
  DimShare share;
  const SectionPlan plan =
      AddressEngine::global().plan(dm.dist, dm.align.image(sec).ascending(), grid_coord);
  plan.for_each([&](i64 cell, i64 la) {
    const auto idx = dm.align.index_of_cell(cell);
    CYCLICK_ASSERT(idx.has_value());
    share.index.push_back(*idx);
    share.local_idx.push_back(la);
  });
  return share;
}

}  // namespace detail

/// Visit every region element owned by `rank`, passing (index tuple,
/// local address). The tuple reference stays valid only during the call.
/// Returns the visit count. Cost: per-dimension O(k_d + share_d) setup,
/// O(dims) per element.
template <typename T, typename Body>
i64 for_each_owned_region(const MultiDimArray<T>& arr, const Region& region, i64 rank,
                          Body&& body) {
  const MultiDimMapping& map = arr.mapping();
  CYCLICK_REQUIRE(region.size() == map.dims(), "region arity mismatch");
  const auto coords = map.grid().coords_of(rank);

  std::vector<detail::DimShare> shares;
  shares.reserve(map.dims());
  for (std::size_t d = 0; d < map.dims(); ++d) {
    shares.push_back(detail::dim_share(map.dim(d), region[d], coords[d]));
    if (shares.back().index.empty()) return 0;  // this rank owns nothing
  }

  // Walk the Cartesian product (last dimension fastest), composing local
  // addresses from per-dim local indices row-major over local extents.
  const std::size_t nd = map.dims();
  std::vector<std::size_t> pos(nd, 0);
  std::vector<i64> index(nd);
  i64 count = 0;
  while (true) {
    i64 addr = 0;
    for (std::size_t d = 0; d < nd; ++d) {
      index[d] = shares[d].index[pos[d]];
      addr = addr * map.local_extent(d) + shares[d].local_idx[pos[d]];
    }
    body(index, addr);
    ++count;
    std::size_t d = nd;
    while (d-- > 0) {
      if (++pos[d] < shares[d].index.size()) break;
      pos[d] = 0;
      if (d == 0) return count;
    }
  }
}

/// arr(region) = value, executed SPMD.
template <typename T>
void fill_region(MultiDimArray<T>& arr, const Region& region, const T& value,
                 const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(exec.ranks() == arr.mapping().grid().rank_count(),
                  "executor/array rank mismatch");
  exec.run([&](i64 rank) {
    auto local = arr.local(rank);
    for_each_owned_region(arr, region, rank, [&](const std::vector<i64>&, i64 addr) {
      local[static_cast<std::size_t>(addr)] = value;
    });
  });
}

/// arr(region) = f(arr(region)) elementwise, executed SPMD.
template <typename T, typename F>
void transform_region(MultiDimArray<T>& arr, const Region& region, F&& f,
                      const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(exec.ranks() == arr.mapping().grid().rank_count(),
                  "executor/array rank mismatch");
  exec.run([&](i64 rank) {
    auto local = arr.local(rank);
    for_each_owned_region(arr, region, rank, [&](const std::vector<i64>&, i64 addr) {
      auto& slot = local[static_cast<std::size_t>(addr)];
      slot = f(slot);
    });
  });
}

namespace detail {

/// Common validation for region plans. With `spread` set, a source
/// dimension of size 1 is allowed to broadcast across the matching
/// destination dimension.
template <typename T>
void require_region_copy_shape(const MultiDimArray<T>& src, const Region& sregion,
                               const MultiDimArray<T>& dst, const Region& dregion,
                               const SpmdExecutor& exec, bool spread) {
  CYCLICK_REQUIRE(sregion.size() == src.dims() && dregion.size() == dst.dims(),
                  "region arity mismatch");
  CYCLICK_REQUIRE(sregion.size() == dregion.size(), "copy regions must have equal rank");
  for (std::size_t d = 0; d < sregion.size(); ++d) {
    if (spread && sregion[d].size() == 1) continue;
    CYCLICK_REQUIRE(sregion[d].size() == dregion[d].size(),
                    "copy region extents must match per dimension");
  }
  CYCLICK_REQUIRE(exec.ranks() == dst.mapping().grid().rank_count(),
                  "executor/destination rank mismatch");
  CYCLICK_REQUIRE(exec.ranks() == src.mapping().grid().rank_count(),
                  "executor/source rank mismatch");
}

/// Everything an N-D region plan's shape depends on, flattened: rank
/// count, spread flag, arity, then per dimension the source and
/// destination mapping fields (extent, alignment, distribution, grid
/// axis extent) and both sections.
template <typename T>
RegionPlanKey make_region_plan_key(const MultiDimArray<T>& src, const Region& sregion,
                                   const MultiDimArray<T>& dst, const Region& dregion,
                                   const SpmdExecutor& exec, bool spread) {
  RegionPlanKey key;
  key.reserve(3 + sregion.size() * 18);
  key.push_back(exec.ranks());
  key.push_back(spread ? 1 : 0);
  key.push_back(static_cast<i64>(sregion.size()));
  const auto mix_dim = [&key](const DimMapping& dm, i64 grid_extent,
                              const RegularSection& sec) {
    key.push_back(dm.extent);
    key.push_back(dm.align.a);
    key.push_back(dm.align.b);
    key.push_back(dm.dist.procs());
    key.push_back(dm.dist.block_size());
    key.push_back(grid_extent);
    key.push_back(sec.lower);
    key.push_back(sec.upper);
    key.push_back(sec.stride);
  };
  for (std::size_t d = 0; d < sregion.size(); ++d) {
    mix_dim(src.mapping().dim(d), src.mapping().grid().extent(d), sregion[d]);
    mix_dim(dst.mapping().dim(d), dst.mapping().grid().extent(d), dregion[d]);
  }
  return key;
}

}  // namespace detail

/// Build the scheduled plan for dst(dregion) = src(sregion): each receiver
/// enumerates its destination share (the Cartesian product of per-dim
/// access sequences) and resolves the matching source owner per element;
/// the per-channel address streams compress to their shortest period
/// exactly like the 1-D builder's. With `spread`, source dimensions of
/// size 1 broadcast across the matching destination dimension (HPF SPREAD
/// semantics — the shape SUMMA's panel broadcasts take).
template <typename T>
[[nodiscard]] RedistributionPlan build_region_plan(const MultiDimArray<T>& src,
                                                   const Region& sregion,
                                                   const MultiDimArray<T>& dst,
                                                   const Region& dregion,
                                                   const SpmdExecutor& exec,
                                                   bool spread = false) {
  detail::require_region_copy_shape(src, sregion, dst, dregion, exec, spread);
  const i64 p = exec.ranks();
  CYCLICK_COUNT("redist.region_builds", 0, 1);
  CYCLICK_TIME_SCOPE("redist.region_build_us", 0);
  std::vector<detail::ChannelAccum> accum(static_cast<std::size_t>(p * p));
  exec.run([&](i64 m) {
    CYCLICK_SPAN("plan_build", m);
    std::vector<i64> sidx(sregion.size());
    detail::ChannelAccum* row = accum.data() + m * p;
    for_each_owned_region(dst, dregion, m, [&](const std::vector<i64>& didx, i64 addr) {
      for (std::size_t d = 0; d < sregion.size(); ++d) {
        // A size-1 source dimension pins its subscript (broadcast); every
        // other dimension maps the destination position back through the
        // section pair.
        if (sregion[d].size() == 1) {
          sidx[d] = sregion[d].lower;
        } else {
          const i64 t = (didx[d] - dregion[d].lower) / dregion[d].stride;
          sidx[d] = sregion[d].element(t);
        }
      }
      row[src.mapping().owner_rank(sidx)].append(src.mapping().local_address(sidx), addr);
    });
  });
  CommPlan plan;
  plan.ranks = p;
  plan.adopt_channels(std::move(accum));
  return finish_redistribution_plan(std::move(plan), static_cast<i64>(dregion.size()));
}

/// Cache-aware region plan lookup (process-wide RegionPlanCache).
template <typename T>
std::shared_ptr<const RedistributionPlan> cached_region_plan(
    const MultiDimArray<T>& src, const Region& sregion, const MultiDimArray<T>& dst,
    const Region& dregion, const SpmdExecutor& exec, bool spread = false,
    RegionPlanCache& cache = RegionPlanCache::global()) {
  const RegionPlanKey key =
      detail::make_region_plan_key(src, sregion, dst, dregion, exec, spread);
  if (auto hit = cache.find(key)) return hit;
  auto plan = std::make_shared<const RedistributionPlan>(
      build_region_plan(src, sregion, dst, dregion, exec, spread));
  // Keep-existing insert: if another thread raced this build and cached its
  // plan first, ours is dropped. Safe because the key fully determines the
  // plan's content — returning either copy is equivalent; inserting here is
  // never a refresh. See ShardedCache::insert for the contract.
  cache.insert(key, plan);
  return plan;
}

/// dst(dregion) = src(sregion), where the regions have identical per-dim
/// sizes. Builds (or replays from cache) the composed N-D CommPlan and
/// executes it through the redistribution layer, so the copy runs
/// message-shaped over whichever backend is active — in-process arena,
/// the process mesh (--backend=proc), or the simulated mesh — with
/// byte-identical results.
template <typename T>
void copy_region(const MultiDimArray<T>& src, const Region& sregion, MultiDimArray<T>& dst,
                 const Region& dregion, const SpmdExecutor& exec) {
  detail::require_region_copy_shape(src, sregion, dst, dregion, exec, /*spread=*/false);
  const auto plan = cached_region_plan(src, sregion, dst, dregion, exec);
  execute_redistribution(*plan, src, dst, exec);
}

/// dst(dregion) = SPREAD(src(sregion)): like copy_region, but any source
/// dimension of size 1 replicates across the matching destination
/// dimension. This is the HPF SPREAD lowering — e.g. SUMMA's panel
/// broadcast ta(i, j) = A(i, t) for all j.
template <typename T>
void spread_region(const MultiDimArray<T>& src, const Region& sregion, MultiDimArray<T>& dst,
                   const Region& dregion, const SpmdExecutor& exec) {
  detail::require_region_copy_shape(src, sregion, dst, dregion, exec, /*spread=*/true);
  const auto plan = cached_region_plan(src, sregion, dst, dregion, exec, /*spread=*/true);
  execute_redistribution(*plan, src, dst, exec);
}

/// Reduction over a region.
template <typename T, typename Op>
T reduce_region(const MultiDimArray<T>& arr, const Region& region, T init, Op&& op,
                const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(exec.ranks() == arr.mapping().grid().rank_count(),
                  "executor/array rank mismatch");
  std::vector<T> partial(static_cast<std::size_t>(exec.ranks()), T{});
  std::vector<char> seen(static_cast<std::size_t>(exec.ranks()), 0);
  exec.run([&](i64 rank) {
    auto local = arr.local(rank);
    for_each_owned_region(arr, region, rank, [&](const std::vector<i64>&, i64 addr) {
      const T& v = local[static_cast<std::size_t>(addr)];
      if (!seen[static_cast<std::size_t>(rank)]) {
        partial[static_cast<std::size_t>(rank)] = v;
        seen[static_cast<std::size_t>(rank)] = 1;
      } else {
        partial[static_cast<std::size_t>(rank)] =
            op(partial[static_cast<std::size_t>(rank)], v);
      }
    });
  });
  T out = init;
  for (i64 r = 0; r < exec.ranks(); ++r)
    if (seen[static_cast<std::size_t>(r)]) out = op(out, partial[static_cast<std::size_t>(r)]);
  return out;
}

}  // namespace cyclick
