// SPMD array-statement engine over distributed arrays: fill, elementwise
// transforms, reductions, and two-sided section copies with explicit
// communication plans — the operations an HPF-like compiler lowers array
// assignment statements into, all driven by the paper's access-sequence
// machinery rather than per-element owner computations.
//
// The communication-plan machinery itself (compressed periodic plans, the
// legacy per-item representation, pack/unpack kernels) lives in
// comm_plan.hpp; the phase-rotated executors and backend dispatch in
// redistribute.hpp; the plan cache in plan_cache.hpp. This header provides
// the statement-level entry points.
#pragma once

#include <algorithm>
#include <utility>
#include <functional>
#include <numeric>
#include <vector>

#include "cyclick/codegen/node_loop.hpp"
#include "cyclick/runtime/distributed_array.hpp"
#include "cyclick/runtime/plan_cache.hpp"
#include "cyclick/runtime/redistribute.hpp"
#include "cyclick/runtime/spmd.hpp"
#include "cyclick/runtime/transport.hpp"

namespace cyclick {

/// A(sec) = value, executed SPMD. Identity-aligned sections run through the
/// compiled kernel for the section's class: contiguous spans are one
/// std::fill_n, strided and periodic-gap shapes replay their offset
/// kernels (core/kernels.hpp) instead of an element-at-a-time table walk.
template <typename T>
void fill_section(DistributedArray<T>& arr, const RegularSection& sec, const T& value,
                  const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(exec.ranks() == arr.dist().procs(), "executor/array rank mismatch");
  exec.run([&](i64 rank) {
    auto local = arr.local(rank);
    if (!sec.empty() && arr.packed_layout_or_null(rank) == nullptr) {
      CYCLICK_REQUIRE(sec.lower >= 0 && sec.lower < arr.size() && sec.last() >= 0 &&
                          sec.last() < arr.size(),
                      "section must lie within the array");
      const KernelPlan kp = compile_kernel(owned_plan(arr, sec, rank));
      if (kp.bulk()) {
        kernel_fill(kp, local.data(), value);
        return;
      }
    }
    for_each_owned(arr, sec, rank,
                   [&](i64, i64 la) { local[static_cast<std::size_t>(la)] = value; });
  });
}

/// A(sec) = f(A(sec)) elementwise, executed SPMD. Elementwise updates are
/// order-free, so identity-aligned sections replay the compiled kernel's
/// ascending address stream.
template <typename T, typename F>
void transform_section(DistributedArray<T>& arr, const RegularSection& sec, F&& f,
                       const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(exec.ranks() == arr.dist().procs(), "executor/array rank mismatch");
  exec.run([&](i64 rank) {
    auto local = arr.local(rank);
    if (!sec.empty() && arr.packed_layout_or_null(rank) == nullptr) {
      CYCLICK_REQUIRE(sec.lower >= 0 && sec.lower < arr.size() && sec.last() >= 0 &&
                          sec.last() < arr.size(),
                      "section must lie within the array");
      const KernelPlan kp = compile_kernel(owned_plan(arr, sec, rank));
      if (kp.bulk()) {
        kernel_for_each_local(kp, [&](i64 la) {
          auto& slot = local[static_cast<std::size_t>(la)];
          slot = f(slot);
        });
        return;
      }
    }
    for_each_owned(arr, sec, rank, [&](i64, i64 la) {
      auto& slot = local[static_cast<std::size_t>(la)];
      slot = f(slot);
    });
  });
}

/// Reduction over A(sec): op-fold of all section elements onto init.
template <typename T, typename Op>
T reduce_section(const DistributedArray<T>& arr, const RegularSection& sec, T init, Op&& op,
                 const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(exec.ranks() == arr.dist().procs(), "executor/array rank mismatch");
  std::vector<T> partial(static_cast<std::size_t>(exec.ranks()), T{});
  // char, not bool: vector<bool> packs bits and is not safe for concurrent
  // writes to distinct elements under the threaded executor.
  std::vector<char> seen(static_cast<std::size_t>(exec.ranks()), 0);
  exec.run([&](i64 rank) {
    auto local = arr.local(rank);
    const auto fold = [&](i64 la) {
      const T& v = local[static_cast<std::size_t>(la)];
      auto& acc = partial[static_cast<std::size_t>(rank)];
      if (!seen[static_cast<std::size_t>(rank)]) {
        acc = v;
        seen[static_cast<std::size_t>(rank)] = 1;
      } else {
        acc = op(acc, v);
      }
    };
    // Kernel replay is ascending-only, so gate on stride > 0 to keep the
    // per-rank fold order identical to the traversal order (op need not be
    // commutative).
    if (!sec.empty() && sec.stride > 0 && arr.packed_layout_or_null(rank) == nullptr) {
      CYCLICK_REQUIRE(sec.lower >= 0 && sec.lower < arr.size() && sec.last() >= 0 &&
                          sec.last() < arr.size(),
                      "section must lie within the array");
      const KernelPlan kp = compile_kernel(owned_plan(arr, sec, rank));
      if (kp.bulk()) {
        kernel_for_each_local(kp, fold);
        return;
      }
    }
    for_each_owned(arr, sec, rank, [&](i64, i64 la) { fold(la); });
  });
  T out = init;
  for (i64 r = 0; r < exec.ranks(); ++r)
    if (seen[static_cast<std::size_t>(r)]) out = op(out, partial[static_cast<std::size_t>(r)]);
  return out;
}

/// dst(dsec) = src(ssec) in one call. When both arrays share the same
/// mapping and the sections coincide, every element already lives on its
/// destination rank at the same local address, so the copy is purely
/// local — no communication plan at all (the engine's dense-run plans turn
/// it into std::copy_n block runs). Otherwise consults the process-wide
/// plan cache, so repeated copies with the same shape (iterative solvers,
/// shift intrinsics in a sweep loop) build their plan once and replay it.
template <typename T>
void copy_section(const DistributedArray<T>& src, const RegularSection& ssec,
                  DistributedArray<T>& dst, const RegularSection& dsec,
                  const SpmdExecutor& exec) {
  if (src.dist() == dst.dist() && src.alignment() == dst.alignment() &&
      src.size() == dst.size() && ssec == dsec) {
    CYCLICK_REQUIRE(exec.ranks() == dst.dist().procs(), "executor/array rank mismatch");
    if (ssec.empty()) return;
    CYCLICK_COUNT("engine.local_copies", 0, 1);
    exec.run([&](i64 rank) {
      auto out = dst.local(rank);
      auto in = src.local(rank);
      if (dst.packed_layout_or_null(rank) == nullptr) {
        CYCLICK_REQUIRE(dsec.lower >= 0 && dsec.lower < dst.size() && dsec.last() >= 0 &&
                            dsec.last() < dst.size(),
                        "section must lie within the array");
        const KernelPlan kp = compile_kernel(owned_plan(dst, dsec, rank));
        if (kp.bulk()) {
          kernel_copy_same(kp, in.data(), out.data());
          return;
        }
      }
      for_each_owned(dst, dsec, rank, [&](i64, i64 la) {
        out[static_cast<std::size_t>(la)] = in[static_cast<std::size_t>(la)];
      });
    });
    return;
  }
  const auto plan = cached_copy_plan(src, ssec, dst, dsec, exec);
  execute_copy_plan(*plan, src, dst, exec);
}

/// Index-free redistribution: dst(dsec) = src(ssec) where *no index
/// metadata crosses ranks* — the communication-set property of Chatterjee
/// et al. Both sides enumerate the section positions t they own in
/// ascending t order (the access-sequence machinery makes this O(1) per
/// element); the sender appends values to per-receiver buffers in that
/// order, and the receiver pops values from per-sender buffers in the same
/// order, so the value streams line up with no (t, address) pairs sent.
template <typename T>
void symmetric_copy_section(const DistributedArray<T>& src, const RegularSection& ssec,
                            DistributedArray<T>& dst, const RegularSection& dsec,
                            const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(ssec.size() == dsec.size(), "section size mismatch in copy");
  CYCLICK_REQUIRE(exec.ranks() == dst.dist().procs(), "executor/destination rank mismatch");
  CYCLICK_REQUIRE(exec.ranks() == src.dist().procs(), "executor/source rank mismatch");
  const i64 p = exec.ranks();

  // Enumerate, in ascending t order, the (t, local address) pairs a rank
  // owns for a section of `arr`. A plan over the *unreversed* alignment
  // image traverses the section positions 0, 1, 2, ... directly (the image
  // element at position t is the section element at position t, and the
  // engine walks descending images backwards), so no buffering or reversal
  // is needed.
  const auto for_each_owned_t = [](const DistributedArray<T>& arr, const RegularSection& sec,
                                   i64 rank, auto&& body) {
    if (sec.empty()) return;
    CYCLICK_REQUIRE(sec.lower >= 0 && sec.lower < arr.size() && sec.last() >= 0 &&
                        sec.last() < arr.size(),
                    "section must lie within the array");
    const AffineAlignment& al = arr.alignment();
    const PackedLayout* layout = arr.packed_layout_or_null(rank);
    const SectionPlan plan = AddressEngine::global().plan(arr.dist(), al.image(sec), rank);
    plan.for_each([&](i64 cell, i64 la) {
      const auto idx = al.index_of_cell(cell);
      CYCLICK_ASSERT(idx.has_value());
      const i64 t = (*idx - sec.lower) / sec.stride;
      body(t, layout ? layout->rank(cell) : la);
    });
  };

  // Phase 1: every sender q walks its source elements in t order and
  // appends the *value only* to the buffer of the receiving rank. The
  // destination owner comes from the owner-run cursor (divisions only at
  // block crossings), and a first counting pass sizes every per-receiver
  // buffer exactly before the fill — no push_back growth reallocations.
  std::vector<std::vector<T>> wire(static_cast<std::size_t>(p * p));  // [m*p + q]
  exec.run([&](i64 q) {
    auto local = src.local(q);
    OwnerCursor dst_owner(dst, dsec);
    std::vector<i64> counts(static_cast<std::size_t>(p), 0);
    for_each_owned_t(src, ssec, q, [&](i64 t, i64) {
      ++counts[static_cast<std::size_t>(dst_owner.owner_at(t))];
    });
    for (i64 m = 0; m < p; ++m)
      if (counts[static_cast<std::size_t>(m)] > 0)
        wire[static_cast<std::size_t>(m * p + q)].reserve(
            static_cast<std::size_t>(counts[static_cast<std::size_t>(m)]));
    for_each_owned_t(src, ssec, q, [&](i64 t, i64 la) {
      const i64 m = dst_owner.owner_at(t);
      wire[static_cast<std::size_t>(m * p + q)].push_back(
          local[static_cast<std::size_t>(la)]);
    });
  });

  // Phase 2: every receiver m walks its destination elements in t order,
  // derives the sender, and consumes that sender's stream in order.
  exec.run([&](i64 m) {
    auto local = dst.local(m);
    OwnerCursor src_owner(src, ssec);
    std::vector<std::size_t> cursor(static_cast<std::size_t>(p), 0);
    for_each_owned_t(dst, dsec, m, [&](i64 t, i64 la) {
      const i64 q = src_owner.owner_at(t);
      auto& stream = wire[static_cast<std::size_t>(m * p + q)];
      auto& pos = cursor[static_cast<std::size_t>(q)];
      CYCLICK_ASSERT(pos < stream.size());
      local[static_cast<std::size_t>(la)] = stream[pos++];
    });
    // Every received value must be consumed — the two sides enumerated the
    // same element sets.
    for (i64 q = 0; q < p; ++q)
      CYCLICK_ASSERT(cursor[static_cast<std::size_t>(q)] ==
                     wire[static_cast<std::size_t>(m * p + q)].size());
  });
}

/// dst(dsec) = f(a(asec), b(bsec)) elementwise. Communication is performed
/// by first landing both operands in dst-shaped temporaries (the standard
/// "communicate then compute locally" lowering), then combining locally.
template <typename T, typename F>
void zip_sections(DistributedArray<T>& dst, const RegularSection& dsec,
                  const DistributedArray<T>& a, const RegularSection& asec,
                  const DistributedArray<T>& b, const RegularSection& bsec, F&& f,
                  const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(dsec.size() == asec.size() && dsec.size() == bsec.size(),
                  "section size mismatch in zip");
  DistributedArray<T> ta(dst.dist(), dst.size(), dst.alignment());
  DistributedArray<T> tb(dst.dist(), dst.size(), dst.alignment());
  copy_section(a, asec, ta, dsec, exec);
  copy_section(b, bsec, tb, dsec, exec);
  exec.run([&](i64 rank) {
    auto out = dst.local(rank);
    auto la = ta.local(rank);
    auto lb = tb.local(rank);
    for_each_owned(dst, dsec, rank, [&](i64, i64 addr) {
      const auto i = static_cast<std::size_t>(addr);
      out[i] = f(la[i], lb[i]);
    });
  });
}

}  // namespace cyclick
