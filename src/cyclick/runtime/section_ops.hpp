// SPMD array-statement engine over distributed arrays: fill, elementwise
// transforms, reductions, and two-sided section copies with explicit
// communication plans — the operations an HPF-like compiler lowers array
// assignment statements into, all driven by the paper's access-sequence
// machinery rather than per-element owner computations.
#pragma once

#include <algorithm>
#include <utility>
#include <functional>
#include <numeric>
#include <vector>

#include "cyclick/codegen/node_loop.hpp"
#include "cyclick/runtime/distributed_array.hpp"
#include "cyclick/runtime/spmd.hpp"
#include "cyclick/runtime/transport.hpp"

namespace cyclick {

/// Visit every element of `sec` (array index space) owned by `rank`,
/// passing (t, local_addr) where t is the position within the section and
/// local_addr the element's packed local address. Enumeration is in
/// ascending template-cell order (ownership enumeration; statement-order
/// semantics are the caller's concern). Returns the visit count.
template <typename T, typename Body>
i64 for_each_owned(const DistributedArray<T>& arr, const RegularSection& sec, i64 rank,
                   Body&& body) {
  if (sec.empty()) return 0;
  CYCLICK_REQUIRE(sec.lower >= 0 && sec.lower < arr.size() && sec.last() >= 0 &&
                      sec.last() < arr.size(),
                  "section must lie within the array");
  const AffineAlignment& al = arr.alignment();
  const BlockCyclic& dist = arr.dist();
  const RegularSection image = al.image(sec).ascending();
  i64 count = 0;
  LocalAccessIterator it(dist, image.lower, image.stride, rank);
  for (; !it.done() && it.global() <= image.upper; it.advance()) {
    const i64 cell = it.global();
    const auto idx = al.index_of_cell(cell);
    CYCLICK_ASSERT(idx.has_value());
    const i64 t = (*idx - sec.lower) / sec.stride;
    const i64 local = al.is_identity()
                          ? it.local()
                          : arr.packed_layout(rank).rank(cell);
    body(t, local);
    ++count;
  }
  return count;
}

/// A(sec) = value, executed SPMD.
template <typename T>
void fill_section(DistributedArray<T>& arr, const RegularSection& sec, const T& value,
                  const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(exec.ranks() == arr.dist().procs(), "executor/array rank mismatch");
  exec.run([&](i64 rank) {
    auto local = arr.local(rank);
    for_each_owned(arr, sec, rank,
                   [&](i64, i64 la) { local[static_cast<std::size_t>(la)] = value; });
  });
}

/// A(sec) = f(A(sec)) elementwise, executed SPMD.
template <typename T, typename F>
void transform_section(DistributedArray<T>& arr, const RegularSection& sec, F&& f,
                       const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(exec.ranks() == arr.dist().procs(), "executor/array rank mismatch");
  exec.run([&](i64 rank) {
    auto local = arr.local(rank);
    for_each_owned(arr, sec, rank, [&](i64, i64 la) {
      auto& slot = local[static_cast<std::size_t>(la)];
      slot = f(slot);
    });
  });
}

/// Reduction over A(sec): op-fold of all section elements onto init.
template <typename T, typename Op>
T reduce_section(const DistributedArray<T>& arr, const RegularSection& sec, T init, Op&& op,
                 const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(exec.ranks() == arr.dist().procs(), "executor/array rank mismatch");
  std::vector<T> partial(static_cast<std::size_t>(exec.ranks()), T{});
  // char, not bool: vector<bool> packs bits and is not safe for concurrent
  // writes to distinct elements under the threaded executor.
  std::vector<char> seen(static_cast<std::size_t>(exec.ranks()), 0);
  exec.run([&](i64 rank) {
    auto local = arr.local(rank);
    for_each_owned(arr, sec, rank, [&](i64, i64 la) {
      const T& v = local[static_cast<std::size_t>(la)];
      auto& acc = partial[static_cast<std::size_t>(rank)];
      if (!seen[static_cast<std::size_t>(rank)]) {
        acc = v;
        seen[static_cast<std::size_t>(rank)] = 1;
      } else {
        acc = op(acc, v);
      }
    });
  });
  T out = init;
  for (i64 r = 0; r < exec.ranks(); ++r)
    if (seen[static_cast<std::size_t>(r)]) out = op(out, partial[static_cast<std::size_t>(r)]);
  return out;
}

/// Communication plan for dst(dsec) = src(ssec): which elements each
/// receiver pulls from each sender, with the destination local address
/// precomputed. Built once, executable repeatedly (e.g. iterative solvers).
struct CommPlan {
  struct Item {
    i64 src_global;  ///< src array index to read
    i64 dst_local;   ///< packed local address on the receiver to write
  };
  i64 ranks = 0;
  std::vector<std::vector<Item>> pairwise;  ///< [receiver * ranks + sender]

  [[nodiscard]] const std::vector<Item>& items(i64 receiver, i64 sender) const {
    return pairwise[static_cast<std::size_t>(receiver * ranks + sender)];
  }
  /// Number of nonempty sender->receiver channels with sender != receiver.
  [[nodiscard]] i64 message_count() const {
    i64 c = 0;
    for (i64 m = 0; m < ranks; ++m)
      for (i64 q = 0; q < ranks; ++q)
        if (q != m && !items(m, q).empty()) ++c;
    return c;
  }
  /// Total elements crossing rank boundaries.
  [[nodiscard]] i64 remote_elements() const {
    i64 c = 0;
    for (i64 m = 0; m < ranks; ++m)
      for (i64 q = 0; q < ranks; ++q)
        if (q != m) c += static_cast<i64>(items(m, q).size());
    return c;
  }
};

/// Build the plan for dst(dsec) = src(ssec) (sizes must match). Receivers
/// enumerate their destination elements with the table-free iterator and
/// compute the owning sender of the matching source element.
template <typename T>
CommPlan build_copy_plan(const DistributedArray<T>& src, const RegularSection& ssec,
                         DistributedArray<T>& dst, const RegularSection& dsec,
                         const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(ssec.size() == dsec.size(), "section size mismatch in copy");
  CYCLICK_REQUIRE(exec.ranks() == dst.dist().procs(), "executor/destination rank mismatch");
  CYCLICK_REQUIRE(exec.ranks() == src.dist().procs(), "executor/source rank mismatch");
  CommPlan plan;
  plan.ranks = exec.ranks();
  plan.pairwise.resize(static_cast<std::size_t>(plan.ranks * plan.ranks));
  exec.run([&](i64 rank) {
    for_each_owned(dst, dsec, rank, [&](i64 t, i64 la) {
      const i64 g = ssec.element(t);
      const i64 q = src.owner_of(g);
      plan.pairwise[static_cast<std::size_t>(rank * plan.ranks + q)].push_back({g, la});
    });
  });
  return plan;
}

/// Execute a copy plan: senders pack values from their local memory, then
/// receivers store them — two barrier-separated SPMD phases, mirroring a
/// message-passing implementation.
template <typename T>
void execute_copy_plan(const CommPlan& plan, const DistributedArray<T>& src,
                       DistributedArray<T>& dst, const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(plan.ranks == exec.ranks(), "plan built for a different machine");
  const i64 p = plan.ranks;
  std::vector<std::vector<T>> payload(static_cast<std::size_t>(p * p));

  // Phase 1: every sender q packs, for every receiver m, the requested
  // values out of its own local buffer.
  exec.run([&](i64 q) {
    auto local = src.local(q);
    for (i64 m = 0; m < p; ++m) {
      const auto& items = plan.items(m, q);
      auto& buf = payload[static_cast<std::size_t>(m * p + q)];
      buf.reserve(items.size());
      for (const CommPlan::Item& it : items) {
        CYCLICK_ASSERT(src.owner_of(it.src_global) == q);
        buf.push_back(local[static_cast<std::size_t>(src.local_address(it.src_global))]);
      }
    }
  });

  // Phase 2: every receiver m unpacks into its own local buffer.
  exec.run([&](i64 m) {
    auto local = dst.local(m);
    for (i64 q = 0; q < p; ++q) {
      const auto& items = plan.items(m, q);
      const auto& buf = payload[static_cast<std::size_t>(m * p + q)];
      for (std::size_t i = 0; i < items.size(); ++i)
        local[static_cast<std::size_t>(items[i].dst_local)] = buf[i];
    }
  });
}

/// Execute a copy plan with the data movement routed through a Transport:
/// every remote pair becomes one message of raw values (self-pairs copy
/// locally). Identical results to execute_copy_plan; only the movement
/// mechanism differs — this is the entry point an MPI port would rebind.
template <typename T>
void execute_copy_plan_over(const CommPlan& plan, const DistributedArray<T>& src,
                            DistributedArray<T>& dst, const SpmdExecutor& exec,
                            Transport& transport) {
  CYCLICK_REQUIRE(plan.ranks == exec.ranks(), "plan built for a different machine");
  CYCLICK_REQUIRE(transport.ranks() == exec.ranks(), "transport/executor rank mismatch");
  const i64 p = plan.ranks;

  // Phase 1: every sender packs per-receiver messages from its local memory
  // and posts them (one message per nonempty remote channel).
  exec.run([&](i64 q) {
    auto local = src.local(q);
    for (i64 m = 0; m < p; ++m) {
      if (m == q) continue;
      const auto& items = plan.items(m, q);
      if (items.empty()) continue;
      std::vector<T> buf;
      buf.reserve(items.size());
      for (const CommPlan::Item& it : items)
        buf.push_back(local[static_cast<std::size_t>(src.local_address(it.src_global))]);
      send_values<T>(transport, q, m, buf);
    }
  });

  // Phase 2: receivers drain their channels and store, then satisfy their
  // self-pair locally.
  exec.run([&](i64 m) {
    auto local = dst.local(m);
    for (i64 q = 0; q < p; ++q) {
      const auto& items = plan.items(m, q);
      if (items.empty()) continue;
      if (q == m) {
        auto src_local = src.local(m);
        for (const CommPlan::Item& it : items)
          local[static_cast<std::size_t>(it.dst_local)] =
              src_local[static_cast<std::size_t>(src.local_address(it.src_global))];
        continue;
      }
      const std::vector<T> buf = recv_values<T>(transport, m, q);
      CYCLICK_ASSERT(buf.size() == items.size());
      for (std::size_t i = 0; i < items.size(); ++i)
        local[static_cast<std::size_t>(items[i].dst_local)] = buf[i];
    }
  });
}

/// dst(dsec) = src(ssec) in one call.
template <typename T>
void copy_section(const DistributedArray<T>& src, const RegularSection& ssec,
                  DistributedArray<T>& dst, const RegularSection& dsec,
                  const SpmdExecutor& exec) {
  const CommPlan plan = build_copy_plan(src, ssec, dst, dsec, exec);
  execute_copy_plan(plan, src, dst, exec);
}

/// Index-free redistribution: dst(dsec) = src(ssec) where *no index
/// metadata crosses ranks* — the communication-set property of Chatterjee
/// et al. Both sides enumerate the section positions t they own in
/// ascending t order (the access-sequence machinery makes this O(1) per
/// element); the sender appends values to per-receiver buffers in that
/// order, and the receiver pops values from per-sender buffers in the same
/// order, so the value streams line up with no (t, address) pairs sent.
template <typename T>
void symmetric_copy_section(const DistributedArray<T>& src, const RegularSection& ssec,
                            DistributedArray<T>& dst, const RegularSection& dsec,
                            const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(ssec.size() == dsec.size(), "section size mismatch in copy");
  CYCLICK_REQUIRE(exec.ranks() == dst.dist().procs(), "executor/destination rank mismatch");
  CYCLICK_REQUIRE(exec.ranks() == src.dist().procs(), "executor/source rank mismatch");
  const i64 p = exec.ranks();

  // Enumerate, in ascending t order, the (t, local address) pairs a rank
  // owns for a section of `arr`. for_each_owned walks ascending template
  // cells, along which t is strictly monotonic — ascending when the image
  // stride is positive, descending otherwise — so at most a reversal is
  // needed.
  const auto owned_in_t_order = [](const DistributedArray<T>& arr, const RegularSection& sec,
                                   i64 rank) {
    std::vector<std::pair<i64, i64>> items;  // (t, local)
    for_each_owned(arr, sec, rank, [&](i64 t, i64 la) { items.emplace_back(t, la); });
    if (items.size() > 1 && items.front().first > items.back().first)
      std::reverse(items.begin(), items.end());
    return items;
  };

  // Phase 1: every sender q walks its source elements in t order and
  // appends the *value only* to the buffer of the receiving rank.
  std::vector<std::vector<T>> wire(static_cast<std::size_t>(p * p));  // [m*p + q]
  exec.run([&](i64 q) {
    auto local = src.local(q);
    for (const auto& [t, la] : owned_in_t_order(src, ssec, q)) {
      const i64 m = dst.owner_of(dsec.element(t));
      wire[static_cast<std::size_t>(m * p + q)].push_back(
          local[static_cast<std::size_t>(la)]);
    }
  });

  // Phase 2: every receiver m walks its destination elements in t order,
  // derives the sender, and consumes that sender's stream in order.
  exec.run([&](i64 m) {
    auto local = dst.local(m);
    std::vector<std::size_t> cursor(static_cast<std::size_t>(p), 0);
    for (const auto& [t, la] : owned_in_t_order(dst, dsec, m)) {
      const i64 q = src.owner_of(ssec.element(t));
      auto& stream = wire[static_cast<std::size_t>(m * p + q)];
      auto& pos = cursor[static_cast<std::size_t>(q)];
      CYCLICK_ASSERT(pos < stream.size());
      local[static_cast<std::size_t>(la)] = stream[pos++];
    }
    // Every received value must be consumed — the two sides enumerated the
    // same element sets.
    for (i64 q = 0; q < p; ++q)
      CYCLICK_ASSERT(cursor[static_cast<std::size_t>(q)] ==
                     wire[static_cast<std::size_t>(m * p + q)].size());
  });
}

/// dst(dsec) = f(a(asec), b(bsec)) elementwise. Communication is performed
/// by first landing both operands in dst-shaped temporaries (the standard
/// "communicate then compute locally" lowering), then combining locally.
template <typename T, typename F>
void zip_sections(DistributedArray<T>& dst, const RegularSection& dsec,
                  const DistributedArray<T>& a, const RegularSection& asec,
                  const DistributedArray<T>& b, const RegularSection& bsec, F&& f,
                  const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(dsec.size() == asec.size() && dsec.size() == bsec.size(),
                  "section size mismatch in zip");
  DistributedArray<T> ta(dst.dist(), dst.size(), dst.alignment());
  DistributedArray<T> tb(dst.dist(), dst.size(), dst.alignment());
  copy_section(a, asec, ta, dsec, exec);
  copy_section(b, bsec, tb, dsec, exec);
  exec.run([&](i64 rank) {
    auto out = dst.local(rank);
    auto la = ta.local(rank);
    auto lb = tb.local(rank);
    for_each_owned(dst, dsec, rank, [&](i64, i64 addr) {
      const auto i = static_cast<std::size_t>(addr);
      out[i] = f(la[i], lb[i]);
    });
  });
}

}  // namespace cyclick
