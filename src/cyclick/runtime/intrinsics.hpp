// Fortran-90 / HPF array intrinsics over distributed arrays: CSHIFT,
// EOSHIFT, DOT_PRODUCT, COUNT, MAXLOC/MINLOC. These are the library
// routines an HPF runtime ships next to the assignment engine; all are
// built on the access-sequence copy/reduce machinery.
#pragma once

#include <limits>

#include "cyclick/runtime/section_ops.hpp"

namespace cyclick {

/// CSHIFT: out(i) = in((i + shift) mod n) elementwise over the whole array.
/// `out` must have the same length as `in` (distributions may differ).
template <typename T>
void cshift(const DistributedArray<T>& in, DistributedArray<T>& out, i64 shift,
            const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(in.size() == out.size(), "cshift arrays must have equal length");
  const i64 n = in.size();
  const i64 s = floor_mod(shift, n);
  if (s == 0) {
    copy_section(in, {0, n - 1, 1}, out, {0, n - 1, 1}, exec);
    return;
  }
  // out(0 : n-s-1) = in(s : n-1);  out(n-s : n-1) = in(0 : s-1).
  copy_section(in, {s, n - 1, 1}, out, {0, n - s - 1, 1}, exec);
  copy_section(in, {0, s - 1, 1}, out, {n - s, n - 1, 1}, exec);
}

/// EOSHIFT: out(i) = in(i + shift) where in range, else `boundary`.
template <typename T>
void eoshift(const DistributedArray<T>& in, DistributedArray<T>& out, i64 shift,
             const T& boundary, const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(in.size() == out.size(), "eoshift arrays must have equal length");
  const i64 n = in.size();
  if (shift >= n || shift <= -n) {
    fill_section(out, {0, n - 1, 1}, boundary, exec);
    return;
  }
  if (shift == 0) {
    copy_section(in, {0, n - 1, 1}, out, {0, n - 1, 1}, exec);
    return;
  }
  if (shift > 0) {
    copy_section(in, {shift, n - 1, 1}, out, {0, n - 1 - shift, 1}, exec);
    fill_section(out, {n - shift, n - 1, 1}, boundary, exec);
  } else {
    copy_section(in, {0, n - 1 + shift, 1}, out, {-shift, n - 1, 1}, exec);
    fill_section(out, {0, -shift - 1, 1}, boundary, exec);
  }
}

/// DOT_PRODUCT over two equally sized sections (arrays may be distributed
/// differently; the b-operand is landed in an a-shaped temporary first).
template <typename T>
T dot_product(const DistributedArray<T>& a, const RegularSection& asec,
              const DistributedArray<T>& b, const RegularSection& bsec,
              const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(asec.size() == bsec.size(), "dot_product sections must match");
  DistributedArray<T> tb(a.dist(), a.size(), a.alignment());
  copy_section(b, bsec, tb, asec, exec);
  std::vector<T> partial(static_cast<std::size_t>(exec.ranks()), T{});
  exec.run([&](i64 rank) {
    auto la = a.local(rank);
    auto lb = tb.local(rank);
    T acc{};
    if (!asec.empty() && a.packed_layout_or_null(rank) == nullptr) {
      CYCLICK_REQUIRE(asec.lower >= 0 && asec.lower < a.size() && asec.last() >= 0 &&
                          asec.last() < a.size(),
                      "section must lie within the array");
      const KernelPlan kp = compile_kernel(owned_plan(a, asec, rank));
      // Kernels accumulate in ascending address order; for descending
      // sections only the run-copy class matches the order the fallback
      // would use (FP sums are order-sensitive).
      if (kp.bulk() && (asec.stride > 0 || kp.cls() == KernelClass::kRunCopy)) {
        partial[static_cast<std::size_t>(rank)] = kernel_dot(kp, la.data(), lb.data());
        return;
      }
    }
    for_each_owned(a, asec, rank, [&](i64, i64 addr) {
      const auto i = static_cast<std::size_t>(addr);
      acc += la[i] * lb[i];
    });
    partial[static_cast<std::size_t>(rank)] = acc;
  });
  T out{};
  for (const T& v : partial) out += v;
  return out;
}

/// COUNT: number of section elements satisfying `pred`.
template <typename T, typename Pred>
i64 count_section(const DistributedArray<T>& arr, const RegularSection& sec, Pred&& pred,
                  const SpmdExecutor& exec) {
  std::vector<i64> partial(static_cast<std::size_t>(exec.ranks()), 0);
  exec.run([&](i64 rank) {
    auto local = arr.local(rank);
    i64 c = 0;
    if (!sec.empty() && arr.packed_layout_or_null(rank) == nullptr) {
      CYCLICK_REQUIRE(sec.lower >= 0 && sec.lower < arr.size() && sec.last() >= 0 &&
                          sec.last() < arr.size(),
                      "section must lie within the array");
      // Counting is order-free, so every kernel class applies regardless of
      // the section's traversal direction.
      const KernelPlan kp = compile_kernel(owned_plan(arr, sec, rank));
      if (kp.bulk()) {
        kernel_for_each_local(kp, [&](i64 addr) {
          if (pred(local[static_cast<std::size_t>(addr)])) ++c;
        });
        partial[static_cast<std::size_t>(rank)] = c;
        return;
      }
    }
    for_each_owned(arr, sec, rank, [&](i64, i64 addr) {
      if (pred(local[static_cast<std::size_t>(addr)])) ++c;
    });
    partial[static_cast<std::size_t>(rank)] = c;
  });
  i64 total = 0;
  for (const i64 c : partial) total += c;
  return total;
}

/// SUM_PREFIX: out(osec element t) = sum of in(sec elements 0..t), the
/// inclusive prefix scan over the section's traversal order.
///
/// Three-phase distributed scan: land the section in a block-distributed
/// t-space array (each rank then owns one contiguous run of positions),
/// scan locally, exclusive-scan the per-rank totals, add the rank offsets,
/// and land the result in the destination section.
template <typename T>
void sum_prefix_section(const DistributedArray<T>& in, const RegularSection& sec,
                        DistributedArray<T>& out, const RegularSection& osec,
                        const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(sec.size() == osec.size(), "prefix sections must have equal length");
  const i64 n = sec.size();
  const i64 p = exec.ranks();
  DistributedArray<T> tspace(BlockCyclic::block(n, p), n);
  copy_section(in, sec, tspace, {0, n - 1, 1}, exec);

  // Phase 1: local inclusive scans; record per-rank totals. Under the
  // block distribution each rank's local buffer holds one contiguous run
  // of t positions, so the local scan is a plain sweep.
  std::vector<T> totals(static_cast<std::size_t>(p), T{});
  exec.run([&](i64 rank) {
    auto local = tspace.local(rank);
    const i64 sz = tspace.dist().local_size(rank, n);
    T acc{};
    for (i64 i = 0; i < sz; ++i) {
      acc += local[static_cast<std::size_t>(i)];
      local[static_cast<std::size_t>(i)] = acc;
    }
    totals[static_cast<std::size_t>(rank)] = acc;
  });

  // Phase 2: exclusive scan of the rank totals (O(p), done once).
  std::vector<T> offset(static_cast<std::size_t>(p), T{});
  for (i64 r = 1; r < p; ++r)
    offset[static_cast<std::size_t>(r)] =
        offset[static_cast<std::size_t>(r - 1)] + totals[static_cast<std::size_t>(r - 1)];

  // Phase 3: add each rank's offset.
  exec.run([&](i64 rank) {
    const T add = offset[static_cast<std::size_t>(rank)];
    auto local = tspace.local(rank);
    const i64 sz = tspace.dist().local_size(rank, n);
    for (i64 i = 0; i < sz; ++i) local[static_cast<std::size_t>(i)] += add;
  });

  copy_section(tspace, {0, n - 1, 1}, out, osec, exec);
}

/// MAXLOC: position t (within the section) of the first maximum value.
/// Requires a nonempty section. Ties resolve to the smallest t, matching
/// Fortran's MAXLOC.
template <typename T>
i64 maxloc_section(const DistributedArray<T>& arr, const RegularSection& sec,
                   const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(!sec.empty(), "maxloc of empty section");
  struct Best {
    T value;
    i64 t;
  };
  std::vector<Best> partial(static_cast<std::size_t>(exec.ranks()),
                            Best{std::numeric_limits<T>::lowest(),
                                 std::numeric_limits<i64>::max()});
  exec.run([&](i64 rank) {
    auto local = arr.local(rank);
    Best& best = partial[static_cast<std::size_t>(rank)];
    for_each_owned(arr, sec, rank, [&](i64 t, i64 addr) {
      const T& v = local[static_cast<std::size_t>(addr)];
      if (v > best.value || (v == best.value && t < best.t)) best = {v, t};
    });
  });
  Best out = partial.front();
  for (const Best& b : partial)
    if (b.t != std::numeric_limits<i64>::max() &&
        (b.value > out.value || (b.value == out.value && b.t < out.t)))
      out = b;
  return out.t;
}

/// MINLOC: position t of the first minimum value.
template <typename T>
i64 minloc_section(const DistributedArray<T>& arr, const RegularSection& sec,
                   const SpmdExecutor& exec) {
  CYCLICK_REQUIRE(!sec.empty(), "minloc of empty section");
  struct Best {
    T value;
    i64 t;
  };
  std::vector<Best> partial(static_cast<std::size_t>(exec.ranks()),
                            Best{std::numeric_limits<T>::max(),
                                 std::numeric_limits<i64>::max()});
  exec.run([&](i64 rank) {
    auto local = arr.local(rank);
    Best& best = partial[static_cast<std::size_t>(rank)];
    for_each_owned(arr, sec, rank, [&](i64 t, i64 addr) {
      const T& v = local[static_cast<std::size_t>(addr)];
      if (v < best.value || (v == best.value && t < best.t)) best = {v, t};
    });
  });
  Best out = partial.front();
  for (const Best& b : partial)
    if (b.t != std::numeric_limits<i64>::max() &&
        (b.value < out.value || (b.value == out.value && b.t < out.t)))
      out = b;
  return out.t;
}

}  // namespace cyclick
