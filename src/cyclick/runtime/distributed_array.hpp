// A one-dimensional array distributed cyclic(k) across the simulated
// machine's ranks, with optional affine alignment to the distributed
// template. Each rank owns a contiguous local buffer holding its elements
// packed in increasing global order — exactly the memory model the access
// sequence algorithms address.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "cyclick/core/aligned.hpp"
#include "cyclick/hpf/alignment.hpp"
#include "cyclick/hpf/distribution.hpp"
#include "cyclick/support/types.hpp"

namespace cyclick {

template <typename T>
class DistributedArray {
 public:
  /// An n-element array aligned by `align` onto a template distributed by
  /// `dist`. Identity alignment uses the distribution's natural packed
  /// layout; non-identity alignments use per-rank packed layouts built by
  /// the two-application machinery.
  DistributedArray(BlockCyclic dist, i64 n, AffineAlignment align = AffineAlignment::identity())
      : dist_(dist), align_(align), n_(n) {
    CYCLICK_REQUIRE(n >= 1, "array must have at least one element");
    locals_.resize(static_cast<std::size_t>(dist_.procs()));
    if (align_.is_identity()) {
      const i64 cap = dist_.local_capacity(n);
      for (auto& buf : locals_) buf.assign(static_cast<std::size_t>(cap), T{});
    } else {
      layouts_.reserve(static_cast<std::size_t>(dist_.procs()));
      for (i64 m = 0; m < dist_.procs(); ++m) {
        layouts_.emplace_back(dist_, align_, n_, m);
        locals_[static_cast<std::size_t>(m)].assign(
            static_cast<std::size_t>(layouts_.back().size()), T{});
      }
    }
  }

  [[nodiscard]] i64 size() const noexcept { return n_; }
  [[nodiscard]] const BlockCyclic& dist() const noexcept { return dist_; }
  [[nodiscard]] const AffineAlignment& alignment() const noexcept { return align_; }

  /// Rank owning array element i.
  [[nodiscard]] i64 owner_of(i64 i) const {
    check_index(i);
    return dist_.owner(align_.cell(i));
  }

  /// Packed local address of array element i on its owning rank.
  [[nodiscard]] i64 local_address(i64 i) const {
    check_index(i);
    const i64 cell = align_.cell(i);
    if (align_.is_identity()) return dist_.local_index(cell);
    return layouts_[static_cast<std::size_t>(dist_.owner(cell))].rank(cell);
  }

  /// Read element i (crosses rank boundaries freely — simulation only).
  [[nodiscard]] T get(i64 i) const {
    return locals_[static_cast<std::size_t>(owner_of(i))]
                  [static_cast<std::size_t>(local_address(i))];
  }

  /// Write element i (crosses rank boundaries freely — simulation only).
  void set(i64 i, const T& value) {
    locals_[static_cast<std::size_t>(owner_of(i))]
           [static_cast<std::size_t>(local_address(i))] = value;
  }

  /// Rank-local storage. SPMD node code must only touch its own rank's span.
  [[nodiscard]] std::span<T> local(i64 rank) {
    CYCLICK_REQUIRE(rank >= 0 && rank < dist_.procs(), "rank out of range");
    return locals_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] std::span<const T> local(i64 rank) const {
    CYCLICK_REQUIRE(rank >= 0 && rank < dist_.procs(), "rank out of range");
    return locals_[static_cast<std::size_t>(rank)];
  }

  /// Assemble the global image (for verification against sequential
  /// reference semantics).
  [[nodiscard]] std::vector<T> gather() const {
    std::vector<T> image(static_cast<std::size_t>(n_));
    for (i64 i = 0; i < n_; ++i) image[static_cast<std::size_t>(i)] = get(i);
    return image;
  }

  /// Distribute a global image into the local buffers.
  void scatter(std::span<const T> image) {
    CYCLICK_REQUIRE(static_cast<i64>(image.size()) == n_, "image size mismatch");
    for (i64 i = 0; i < n_; ++i) set(i, image[static_cast<std::size_t>(i)]);
  }

  /// The packed layout of `rank` (non-identity alignments only).
  [[nodiscard]] const PackedLayout& packed_layout(i64 rank) const {
    CYCLICK_REQUIRE(!align_.is_identity(), "identity arrays have no packed layout object");
    CYCLICK_REQUIRE(rank >= 0 && rank < dist_.procs(), "rank out of range");
    return layouts_[static_cast<std::size_t>(rank)];
  }

  /// The packed layout of `rank`, or nullptr under identity alignment
  /// (where the distribution's O(1) local_index applies instead). Lets
  /// enumeration loops hoist the layout lookup out of their element walk
  /// without branching on the alignment kind at every element.
  [[nodiscard]] const PackedLayout* packed_layout_or_null(i64 rank) const {
    CYCLICK_REQUIRE(rank >= 0 && rank < dist_.procs(), "rank out of range");
    if (align_.is_identity()) return nullptr;
    return &layouts_[static_cast<std::size_t>(rank)];
  }

 private:
  void check_index(i64 i) const {
    CYCLICK_REQUIRE(i >= 0 && i < n_, "array index out of range");
  }

  BlockCyclic dist_;
  AffineAlignment align_;
  i64 n_;
  std::vector<std::vector<T>> locals_;
  std::vector<PackedLayout> layouts_;  // empty for identity alignment
};

}  // namespace cyclick
