// Stream I/O for distributed arrays: portable text images (for tooling and
// golden files) and raw binary images (for checkpoints). Both formats
// carry the global image plus shape metadata; loading redistributes onto
// whatever mapping the target array has, so checkpoints survive
// redistribution decisions.
//
// Text format:
//   cyclick-array v1
//   dims <d> <extent...>
//   <values, whitespace-separated, row-major>
//
// Binary format: the magic "CYA1", a u64 dim count, u64 extents, then the
// row-major payload of raw T values (native endianness — checkpoints, not
// interchange).
#pragma once

#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "cyclick/runtime/distributed_array.hpp"
#include "cyclick/runtime/multidim_array.hpp"

namespace cyclick {

/// Error for malformed array streams.
class io_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

inline void write_text_header(std::ostream& os, std::span<const i64> extents) {
  os << "cyclick-array v1\n";
  os << "dims " << extents.size();
  for (const i64 e : extents) os << ' ' << e;
  os << '\n';
}

inline std::vector<i64> read_text_header(std::istream& is) {
  std::string magic, version;
  is >> magic >> version;
  if (magic != "cyclick-array" || version != "v1")
    throw io_error("not a cyclick-array v1 text stream");
  std::string word;
  is >> word;
  if (word != "dims") throw io_error("missing dims line");
  std::size_t nd = 0;
  is >> nd;
  if (!is || nd == 0 || nd > 16) throw io_error("bad dimension count");
  std::vector<i64> extents(nd);
  for (auto& e : extents) {
    is >> e;
    if (!is || e < 1) throw io_error("bad extent");
  }
  return extents;
}

template <typename T>
void write_text_values(std::ostream& os, const std::vector<T>& image, i64 per_line) {
  for (std::size_t i = 0; i < image.size(); ++i) {
    os << image[i];
    os << (((static_cast<i64>(i) + 1) % per_line == 0) ? '\n' : ' ');
  }
  if (static_cast<i64>(image.size()) % per_line != 0) os << '\n';
}

template <typename T>
std::vector<T> read_text_values(std::istream& is, i64 count) {
  std::vector<T> image(static_cast<std::size_t>(count));
  for (auto& v : image) {
    is >> v;
    if (!is) throw io_error("truncated value payload");
  }
  return image;
}

constexpr char kBinaryMagic[4] = {'C', 'Y', 'A', '1'};

inline void write_binary_header(std::ostream& os, std::span<const i64> extents) {
  os.write(kBinaryMagic, 4);
  const u64 nd = extents.size();
  os.write(reinterpret_cast<const char*>(&nd), sizeof nd);
  for (const i64 e : extents) {
    const u64 ue = static_cast<u64>(e);
    os.write(reinterpret_cast<const char*>(&ue), sizeof ue);
  }
}

inline std::vector<i64> read_binary_header(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  if (!is || std::string_view(magic, 4) != std::string_view(kBinaryMagic, 4))
    throw io_error("not a cyclick-array binary stream");
  u64 nd = 0;
  is.read(reinterpret_cast<char*>(&nd), sizeof nd);
  if (!is || nd == 0 || nd > 16) throw io_error("bad dimension count");
  std::vector<i64> extents(nd);
  for (auto& e : extents) {
    u64 ue = 0;
    is.read(reinterpret_cast<char*>(&ue), sizeof ue);
    if (!is) throw io_error("truncated header");
    e = static_cast<i64>(ue);
    if (e < 1) throw io_error("bad extent");
  }
  return extents;
}

}  // namespace detail

/// Write a 1-D array as a text image.
template <typename T>
void save_text(std::ostream& os, const DistributedArray<T>& arr) {
  const i64 extents[] = {arr.size()};
  detail::write_text_header(os, extents);
  detail::write_text_values(os, arr.gather(), /*per_line=*/16);
}

/// Load a text image into a 1-D array (sizes must match; the data lands in
/// whatever distribution the array already has).
template <typename T>
void load_text(std::istream& is, DistributedArray<T>& arr) {
  const auto extents = detail::read_text_header(is);
  if (extents.size() != 1 || extents[0] != arr.size())
    throw io_error("text image shape does not match the array");
  arr.scatter(detail::read_text_values<T>(is, arr.size()));
}

/// Write a multidimensional array as a text image (row-major payload).
template <typename T>
void save_text(std::ostream& os, const MultiDimArray<T>& arr) {
  std::vector<i64> extents;
  for (std::size_t d = 0; d < arr.dims(); ++d)
    extents.push_back(arr.mapping().dim(d).extent);
  detail::write_text_header(os, extents);
  detail::write_text_values(os, arr.gather(),
                            /*per_line=*/extents.back());
}

template <typename T>
void load_text(std::istream& is, MultiDimArray<T>& arr) {
  const auto extents = detail::read_text_header(is);
  if (extents.size() != arr.dims()) throw io_error("text image rank mismatch");
  for (std::size_t d = 0; d < arr.dims(); ++d)
    if (extents[d] != arr.mapping().dim(d).extent)
      throw io_error("text image shape does not match the array");
  arr.scatter(detail::read_text_values<T>(is, arr.mapping().total_elements()));
}

/// Binary checkpoint of a 1-D array.
template <typename T>
void save_binary(std::ostream& os, const DistributedArray<T>& arr) {
  static_assert(std::is_trivially_copyable_v<T>);
  const i64 extents[] = {arr.size()};
  detail::write_binary_header(os, extents);
  const auto image = arr.gather();
  os.write(reinterpret_cast<const char*>(image.data()),
           static_cast<std::streamsize>(image.size() * sizeof(T)));
}

template <typename T>
void load_binary(std::istream& is, DistributedArray<T>& arr) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto extents = detail::read_binary_header(is);
  if (extents.size() != 1 || extents[0] != arr.size())
    throw io_error("binary image shape does not match the array");
  std::vector<T> image(static_cast<std::size_t>(arr.size()));
  is.read(reinterpret_cast<char*>(image.data()),
          static_cast<std::streamsize>(image.size() * sizeof(T)));
  if (!is) throw io_error("truncated binary payload");
  arr.scatter(image);
}

}  // namespace cyclick
