#include "cyclick/sim/sim_transport.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "cyclick/obs/trace.hpp"

namespace cyclick::sim {

namespace {

/// Endpoint cost of moving `bytes` through a host interface, scaled by the
/// rank's straggler multiplier. Rounded once so all downstream arithmetic
/// is exact integer nanoseconds.
[[nodiscard]] i64 host_cost_ns(const SimParams& p, i64 bytes, double mult) {
  const double cost = (static_cast<double>(p.host_overhead_ns) +
                       static_cast<double>(bytes) / p.host_bytes_per_ns) *
                      mult;
  return static_cast<i64>(std::llround(cost));
}

[[nodiscard]] i64 wire_cost_ns(const SimParams& p, i64 bytes) {
  return static_cast<i64>(
      std::llround(static_cast<double>(bytes) / p.link_bytes_per_ns));
}

}  // namespace

SimTransport::SimTransport(i64 ranks, SimParams params, i64 recv_timeout_ms)
    : world_(ranks),
      params_(std::move(params)),
      mesh_(params_.topology, ranks),
      recv_timeout_ms_(recv_timeout_ms),
      send_free_ns_(static_cast<std::size_t>(ranks), 0),
      recv_free_ns_(static_cast<std::size_t>(ranks), 0),
      in_network_(static_cast<std::size_t>(ranks), 0) {
  CYCLICK_REQUIRE(ranks >= 1, "transport needs at least one rank");
  i64 injected = 0;
  for (const auto& [r, mult] : params_.stragglers)
    if (r < world_ && mult != 1.0) ++injected;
  CYCLICK_COUNT("sim.stragglers", 0, injected);
}

void SimTransport::check_ranks(i64 from, i64 to) const {
  CYCLICK_REQUIRE(from >= 0 && from < world_ && to >= 0 && to < world_,
                  "rank out of range");
}

void SimTransport::send(i64 from, i64 to, std::vector<std::byte> payload) {
  schedule_send(from, to, std::move(payload), nullptr, 0);
}

void SimTransport::isend(i64 from, i64 to, std::vector<std::byte> payload,
                         CompletionQueue* cq, i64 tag) {
  u64 op = 0;
  if (cq != nullptr) {
    // Post before taking mu_ (post may block at the credit limit) and
    // point the queue's progress hook at the event drain so waiting on
    // this queue advances the virtual clock.
    op = cq->post(Completion::Kind::kSend, from, to, tag);
    cq->set_progress([this] {
      const std::lock_guard<std::mutex> lock(mu_);
      drain_locked();
    });
  }
  schedule_send(from, to, std::move(payload), cq, op);
}

void SimTransport::schedule_send(i64 from, i64 to, std::vector<std::byte> payload,
                                 CompletionQueue* cq, u64 op) {
  check_ranks(from, to);
  const i64 bytes = static_cast<i64>(payload.size());
  {
    const std::lock_guard<std::mutex> lock(mu_);

    // Sender endpoint: messages out of one rank serialize.
    const i64 depart =
        send_free_ns_[static_cast<std::size_t>(from)] +
        host_cost_ns(params_, bytes, params_.straggler_multiplier(from));
    send_free_ns_[static_cast<std::size_t>(from)] = depart;

    // Network: the message serializes across every link of its route (the
    // wormhole head waits for each link to free, occupies it for the
    // serialization time, then pays the hop latency).
    i64 at = depart;
    mesh_.route(from, to, [&](i64 link_id) {
      Link& link = links_[link_id];
      const i64 start = std::max(at, link.free_ns);
      const i64 ser = wire_cost_ns(params_, bytes);
      link.free_ns = start + ser;
      link.busy_ns += ser;
      link.bytes += bytes;
      ++link.messages;
      at = start + ser + params_.link_latency_ns;
    });

    // Receiver endpoint: concurrent arrivals (incast) serialize too.
    const i64 arrive =
        std::max(at, recv_free_ns_[static_cast<std::size_t>(to)]) +
        host_cost_ns(params_, bytes, params_.straggler_multiplier(to));
    recv_free_ns_[static_cast<std::size_t>(to)] = arrive;

    const i64 msg = seq_;
    in_flight_[msg] = InFlight{std::move(payload), depart, arrive, cq, op};
    heap_.push(Event{depart, seq_++, Event::Kind::kDepart, from, to, msg});
    heap_.push(Event{arrive, seq_++, Event::Kind::kArrive, from, to, msg});
    horizon_ns_ = std::max(horizon_ns_, arrive);
    ++messages_;
    bytes_ += bytes;
    if (from == to) ++self_messages_;
  }
  CYCLICK_COUNT("sim.messages", from, 1);
  CYCLICK_COUNT("sim.bytes", from, bytes);
  cv_.notify_all();
}

void SimTransport::drain_locked() {
  const i64 before = processed_ns_;
  i64 processed = 0;
  while (!heap_.empty()) {
    const Event e = heap_.pop();
    processed_ns_ = std::max(processed_ns_, e.time_ns);
    ++processed;
    if (e.kind == Event::Kind::kDepart) {
      // The message is in the network (or the loopback path) from its
      // departure until its arrival; the per-destination high-water mark
      // of this count is the incast signal.
      const i64 now = ++in_network_[static_cast<std::size_t>(e.to)];
      if (now > max_in_flight_) {
        CYCLICK_COUNT("sim.max_inflight", e.to, now - max_in_flight_);
        max_in_flight_ = now;
        max_in_flight_rank_ = e.to;
      }
      // An isend completes at its virtual departure time.
      const auto dit = in_flight_.find(e.msg);
      CYCLICK_ASSERT(dit != in_flight_.end());
      if (dit->second.send_cq != nullptr) {
        dit->second.send_cq->complete(dit->second.send_op);
        dit->second.send_cq = nullptr;
      }
      continue;
    }
    --in_network_[static_cast<std::size_t>(e.to)];
    const auto it = in_flight_.find(e.msg);
    CYCLICK_ASSERT(it != in_flight_.end());
    InFlight& msg = it->second;
    if (obs::enabled() && e.to < params_.trace_rank_cap)
      obs::TraceSink::global().complete("sim.msg", e.to, msg.depart_ns,
                                        msg.arrive_ns);
    Channel& ch = channels_[channel_key(e.from, e.to)];
    if (obs::enabled()) {
      ++ch.stats.messages;
      ch.stats.bytes += static_cast<i64>(msg.payload.size());
    }
    if (!ch.posted.empty()) {
      // A pre-posted receive claims the arrival directly (FIFO match
      // order); completing under mu_ is safe — queues never call back
      // into the transport while holding their lock.
      const PostedRecv pr = ch.posted.front();
      ch.posted.pop_front();
      pr.cq->complete(pr.op, std::move(msg.payload));
    } else {
      ch.queue.push_back(std::move(msg.payload));
    }
    in_flight_.erase(it);
  }
  if (processed > 0) {
    events_processed_ += processed;
    CYCLICK_COUNT("sim.events", 0, processed);
    CYCLICK_COUNT("sim.virtual_ns", 0, processed_ns_ - before);
  }
}

std::vector<std::byte> SimTransport::recv(i64 to, i64 from) {
  check_ranks(from, to);
  std::unique_lock<std::mutex> lock(mu_);
  Channel& ch = channels_[channel_key(from, to)];
  const auto has_message = [&] {
    drain_locked();
    return !ch.queue.empty();
  };
  if (recv_timeout_ms_ > 0) {
    if (!cv_.wait_for(lock, std::chrono::milliseconds(recv_timeout_ms_),
                      has_message))
      throw_recv_timeout(from, to, recv_timeout_ms_);
  } else {
    cv_.wait(lock, has_message);
  }
  std::vector<std::byte> payload = std::move(ch.queue.front());
  ch.queue.pop_front();
  return payload;
}

bool SimTransport::ready(i64 to, i64 from) {
  check_ranks(from, to);
  const std::lock_guard<std::mutex> lock(mu_);
  drain_locked();
  const auto it = channels_.find(channel_key(from, to));
  return it != channels_.end() && !it->second.queue.empty();
}

void SimTransport::irecv(i64 to, i64 from, CompletionQueue& cq, i64 tag) {
  check_ranks(from, to);
  // Post before taking mu_ (post may block at the credit limit); aim the
  // progress hook at the drain so cq.wait() advances the virtual clock.
  const u64 op = cq.post(Completion::Kind::kRecv, from, to, tag);
  cq.set_progress([this] {
    const std::lock_guard<std::mutex> lock(mu_);
    drain_locked();
  });
  std::vector<std::byte> payload;
  bool immediate = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    drain_locked();
    Channel& ch = channels_[channel_key(from, to)];
    if (!ch.queue.empty()) {
      payload = std::move(ch.queue.front());
      ch.queue.pop_front();
      immediate = true;
    } else {
      ch.posted.push_back(PostedRecv{&cq, op});
    }
  }
  if (immediate) cq.complete(op, std::move(payload));
}

bool SimTransport::try_recv(i64 to, i64 from, std::vector<std::byte>& out) {
  check_ranks(from, to);
  const std::lock_guard<std::mutex> lock(mu_);
  drain_locked();
  const auto it = channels_.find(channel_key(from, to));
  if (it == channels_.end() || it->second.queue.empty()) return false;
  out = std::move(it->second.queue.front());
  it->second.queue.pop_front();
  return true;
}

void SimTransport::cancel_posted(CompletionQueue& cq) {
  std::vector<u64> ops;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, ch] : channels_) {
      for (auto it = ch.posted.begin(); it != ch.posted.end();) {
        if (it->cq == &cq) {
          ops.push_back(it->op);
          it = ch.posted.erase(it);
        } else {
          ++it;
        }
      }
    }
    // Pending isend completions: the (virtual) message still departs and
    // arrives; only the completion is withdrawn.
    for (auto& [msg_id, msg] : in_flight_) {
      if (msg.send_cq == &cq) {
        ops.push_back(msg.send_op);
        msg.send_cq = nullptr;
      }
    }
  }
  for (const u64 op : ops) cq.cancel(op);
}

i64 SimTransport::virtual_ns() {
  const std::lock_guard<std::mutex> lock(mu_);
  return horizon_ns_;
}

ChannelStats SimTransport::channel_stats(i64 from, i64 to) {
  check_ranks(from, to);
  const std::lock_guard<std::mutex> lock(mu_);
  drain_locked();
  const auto it = channels_.find(channel_key(from, to));
  return it != channels_.end() ? it->second.stats : ChannelStats{};
}

SimTransport::Report SimTransport::report(i64 top_n) {
  const std::lock_guard<std::mutex> lock(mu_);
  drain_locked();
  Report rep;
  rep.virtual_ns = horizon_ns_;
  rep.events = events_processed_;
  rep.messages = messages_;
  rep.bytes = bytes_;
  rep.self_messages = self_messages_;
  rep.max_in_flight = max_in_flight_;
  rep.max_in_flight_rank = max_in_flight_rank_;
  rep.links_used = static_cast<i64>(links_.size());
  if (!links_.empty() && horizon_ns_ > 0) {
    double bytes_sum = 0.0;
    for (const auto& [id, link] : links_) {
      bytes_sum += static_cast<double>(link.bytes);
      rep.link_bytes_max = std::max(rep.link_bytes_max, link.bytes);
      const double util =
          static_cast<double>(link.busy_ns) / static_cast<double>(horizon_ns_);
      rep.utilization_mean += util;
      rep.utilization_max = std::max(rep.utilization_max, util);
    }
    rep.link_bytes_mean = bytes_sum / static_cast<double>(links_.size());
    rep.utilization_mean /= static_cast<double>(links_.size());

    std::vector<LinkStat> all;
    all.reserve(links_.size());
    for (const auto& [id, link] : links_)
      all.push_back(LinkStat{id, mesh_.link_name(id), link.messages, link.bytes,
                             link.busy_ns,
                             static_cast<double>(link.busy_ns) /
                                 static_cast<double>(horizon_ns_)});
    std::sort(all.begin(), all.end(), [](const LinkStat& a, const LinkStat& b) {
      if (a.bytes != b.bytes) return a.bytes > b.bytes;
      return a.id < b.id;
    });
    if (static_cast<i64>(all.size()) > top_n) all.resize(static_cast<std::size_t>(top_n));
    rep.hottest = std::move(all);
  }
  return rep;
}

}  // namespace cyclick::sim
