// Deterministic discrete-event core for the simulated mesh.
//
// The simulator schedules two event kinds per message — a departure (the
// message enters the network) and an arrival (the last byte has cleared
// the receiver's endpoint) — and processes them in global virtual-time
// order. Determinism is load-bearing: two runs of the same schedule must
// produce bit-identical predicted timelines, so ties are broken by a
// monotonically increasing sequence number assigned at scheduling time,
// never by heap insertion accidents or pointer values. Virtual time is
// integral nanoseconds (i64): all cost arithmetic rounds once, at
// scheduling, so event comparisons are exact.
#pragma once

#include <algorithm>
#include <vector>

#include "cyclick/support/types.hpp"

namespace cyclick::sim {

/// One scheduled occurrence in virtual time.
struct Event {
  enum class Kind : i64 {
    kDepart,  ///< message enters the network (in-flight count rises)
    kArrive,  ///< message delivered at the receiver (in-flight count falls)
  };

  i64 time_ns = 0;  ///< virtual nanoseconds since simulation start
  i64 seq = 0;      ///< global scheduling order; breaks time ties
  Kind kind = Kind::kDepart;
  i64 from = 0;
  i64 to = 0;
  i64 msg = 0;  ///< index into the owner's in-flight message table
};

/// Strict weak order: earlier time first, then earlier scheduling order.
/// Two events never compare equal (seq is unique), so processing order is
/// a total order independent of container internals.
[[nodiscard]] constexpr bool event_after(const Event& a, const Event& b) noexcept {
  if (a.time_ns != b.time_ns) return a.time_ns > b.time_ns;
  return a.seq > b.seq;
}

/// Binary min-heap of events ordered by (time_ns, seq). A thin wrapper
/// over the standard heap algorithms rather than std::priority_queue so
/// the simulator can inspect size/top without friend access and clear the
/// storage without reallocating.
class EventHeap {
 public:
  void push(Event e) {
    events_.push_back(e);
    std::push_heap(events_.begin(), events_.end(), event_after);
  }

  [[nodiscard]] const Event& top() const { return events_.front(); }

  Event pop() {
    std::pop_heap(events_.begin(), events_.end(), event_after);
    Event e = events_.back();
    events_.pop_back();
    return e;
  }

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] i64 size() const noexcept { return static_cast<i64>(events_.size()); }

  void clear() noexcept { events_.clear(); }

 private:
  std::vector<Event> events_;
};

}  // namespace cyclick::sim
