// Interconnect models for the simulated mesh: which links a message
// crosses and what each link costs.
//
// Three topologies, all with directed links so utilization is reported per
// direction (an incast hotspot is a property of one direction of a wire):
//
//   - full:   every rank pair is joined by a dedicated directed link; the
//             only shared resources are the two endpoints. The idealized
//             crossbar baseline.
//   - ring:   rank r links to (r±1) mod p; messages take the shorter arc.
//   - mesh2d: ranks fill an R x C grid (C = ceil-ish factor of p chosen so
//             the grid is as square as p allows) with links between grid
//             neighbours; routing is dimension-ordered (X first, then Y),
//             the deadlock-free standard for meshes.
//
// Link ids are dense per topology so per-link state lives in hash maps
// keyed by i64 (a p=4096 full mesh has 16.7M potential links; only the
// ones a schedule touches are ever materialized).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cyclick/support/types.hpp"

namespace cyclick::sim {

enum class Topology {
  kFull,    ///< dedicated link per rank pair (crossbar)
  kRing,    ///< bidirectional ring, shorter-arc routing
  kMesh2D,  ///< 2-D mesh, dimension-ordered (X then Y) routing
};

[[nodiscard]] const char* topology_name(Topology t) noexcept;

/// "full", "ring" or "mesh2d" (case-sensitive); nullopt otherwise.
[[nodiscard]] std::optional<Topology> parse_topology_name(std::string_view name) noexcept;

/// Cost model and fault knobs for a simulated machine. Times are virtual
/// nanoseconds; bandwidths are bytes per virtual nanosecond (1.0 == 1 GB/s).
struct SimParams {
  Topology topology = Topology::kFull;

  i64 link_latency_ns = 1000;       ///< per-hop wire latency
  double link_bytes_per_ns = 10.0;  ///< per-link bandwidth (10 GB/s default)
  i64 host_overhead_ns = 500;       ///< per-message endpoint cost, each side
  double host_bytes_per_ns = 20.0;  ///< endpoint injection/drain bandwidth

  /// Per-rank slowdown multipliers (straggler injection): every endpoint
  /// cost paid by a listed rank is scaled by its multiplier. Unlisted
  /// ranks run at multiplier 1.
  std::vector<std::pair<i64, double>> stragglers;

  /// Virtual ranks whose delivered messages are exported as chrome-trace
  /// spans (one chrome thread per virtual rank). Ranks at or beyond the
  /// cap still simulate fully; only their timeline export is suppressed,
  /// keeping a p=4096 trace loadable.
  i64 trace_rank_cap = 64;

  [[nodiscard]] double straggler_multiplier(i64 rank) const noexcept {
    for (const auto& [r, mult] : stragglers)
      if (r == rank) return mult;
    return 1.0;
  }

  /// Defaults overridden by the environment: CYCLICK_SIM_TOPOLOGY,
  /// CYCLICK_SIM_LINK_LATENCY_NS, CYCLICK_SIM_LINK_GBPS,
  /// CYCLICK_SIM_HOST_OVERHEAD_NS, CYCLICK_SIM_HOST_GBPS and
  /// CYCLICK_SIM_STRAGGLER (e.g. "3:4" or "3:4,17:2.5" — rank:multiplier).
  /// Unknown topology or malformed straggler specs throw a
  /// precondition_error naming the variable.
  [[nodiscard]] static SimParams from_env();
};

/// Parse a "rank:mult[,rank:mult...]" straggler spec.
[[nodiscard]] std::vector<std::pair<i64, double>> parse_straggler_spec(
    std::string_view spec);

/// The routing function of one topology instance: maps a rank pair to the
/// sequence of directed link ids the message serializes through, and
/// decodes link ids back to human-readable endpoints for reports.
class Mesh {
 public:
  Mesh(Topology topology, i64 world);

  [[nodiscard]] Topology topology() const noexcept { return topology_; }
  [[nodiscard]] i64 world() const noexcept { return world_; }

  /// Grid shape (rows, cols); (1, world) for non-mesh topologies.
  [[nodiscard]] i64 rows() const noexcept { return rows_; }
  [[nodiscard]] i64 cols() const noexcept { return cols_; }

  /// Number of hops a (from -> to) message crosses (0 for self sends).
  [[nodiscard]] i64 hop_count(i64 from, i64 to) const;

  /// Visit the directed link ids of the (from -> to) route in traversal
  /// order. Self sends visit nothing (loopback bypasses the network).
  template <typename Visit>
  void route(i64 from, i64 to, Visit&& visit) const {
    if (from == to) return;
    switch (topology_) {
      case Topology::kFull:
        visit(from * world_ + to);
        return;
      case Topology::kRing: {
        // Shorter arc; ties (exactly halfway) go clockwise so the choice
        // is deterministic.
        const i64 fwd = (to - from + world_) % world_;
        const i64 step = fwd * 2 <= world_ ? 1 : -1;
        for (i64 at = from; at != to; at = wrap(at + step))
          visit(ring_link(at, step));
        return;
      }
      case Topology::kMesh2D: {
        // Dimension order: walk the column difference first, then the row.
        i64 r = from / cols_, c = from % cols_;
        const i64 tr = to / cols_, tc = to % cols_;
        while (c != tc) {
          const i64 step = tc > c ? 1 : -1;
          visit(mesh_link(r, c, /*dx=*/step, /*dy=*/0));
          c += step;
        }
        while (r != tr) {
          const i64 step = tr > r ? 1 : -1;
          visit(mesh_link(r, c, /*dx=*/0, /*dy=*/step));
          r += step;
        }
        return;
      }
    }
  }

  /// "a->b" endpoints of a directed link id (report rendering).
  [[nodiscard]] std::string link_name(i64 link) const;

 private:
  [[nodiscard]] i64 wrap(i64 r) const noexcept { return (r + world_) % world_; }
  /// Ring link out of `at` in direction `step` (+1 clockwise, -1 counter).
  [[nodiscard]] i64 ring_link(i64 at, i64 step) const noexcept {
    return at * 2 + (step > 0 ? 0 : 1);
  }
  /// Mesh link out of grid node (r, c) toward (r+dy, c+dx).
  [[nodiscard]] i64 mesh_link(i64 r, i64 c, i64 dx, i64 dy) const noexcept {
    const i64 dir = dx > 0 ? 0 : dx < 0 ? 1 : dy > 0 ? 2 : 3;
    return (r * cols_ + c) * 4 + dir;
  }

  Topology topology_;
  i64 world_;
  i64 rows_ = 1;
  i64 cols_ = 1;
};

}  // namespace cyclick::sim
