// SimMachine: the simulation backend's process hook.
//
// Owns one SimTransport per machine size the program creates (a DSL
// program declares its own `processors P(n)`, and library code may build
// plans for several machine sizes in one process), hands them to
// execute_copy_plan through the TransportProvider slot, and aggregates
// their predictions into one report. `hpfc --backend=sim` wraps the whole
// run in a SimMachine::Scope; everything else — the interpreter, the
// bytecode tier, the plan cache — is untouched.
#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cyclick/runtime/transport.hpp"
#include "cyclick/sim/sim_transport.hpp"

namespace cyclick::sim {

class SimMachine final : public TransportProvider {
 public:
  explicit SimMachine(SimParams params = SimParams::from_env());

  /// The (lazily created) simulated interconnect for a `ranks`-rank
  /// machine. Stable for the life of the SimMachine, so virtual time
  /// accumulates across every plan execution of that machine size.
  Transport& transport_for(i64 ranks) override;

  /// The simulated machine of a given size, or null if no plan of that
  /// size has executed yet.
  [[nodiscard]] SimTransport* transport_or_null(i64 ranks);

  /// Machine sizes simulated so far, ascending.
  [[nodiscard]] std::vector<i64> worlds();

  /// Installs this machine as the process-wide transport provider for the
  /// lifetime of the scope (the shape hpfc's sim backend uses). Nesting is
  /// a bug: the provider slot holds one machine.
  class Scope {
   public:
    explicit Scope(SimMachine& machine) {
      CYCLICK_REQUIRE(transport_provider() == nullptr,
                      "a transport provider is already installed");
      transport_provider() = &machine;
    }
    ~Scope() { transport_provider() = nullptr; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };

 private:
  SimParams params_;
  std::mutex mu_;
  std::unordered_map<i64, std::unique_ptr<SimTransport>> transports_;
};

}  // namespace cyclick::sim
