// SimTransport: a discrete-event simulated interconnect behind the
// cyclick::Transport interface.
//
// One SimTransport multiplexes every rank of a `world`-rank virtual
// machine inside the calling process: send() *schedules* the message
// through the cost model instead of moving it anywhere, and recv() drains
// the event heap — processing departures and arrivals in deterministic
// virtual-time order — until the requested channel holds the payload.
// Because payloads really are queued and delivered per channel in FIFO
// order, the transport satisfies the same contract the in-process and
// socket backends do (the conformance suite runs against all three), and
// `execute_copy_plan` replays real CommPlan schedules through it
// unchanged; only the *timestamps* are virtual.
//
// Cost model (all virtual nanoseconds, see topology.hpp for the knobs):
//
//   depart  = sender endpoint free time
//           + (host_overhead + bytes/host_bw) * straggler(from)
//   per link: start = max(arrival at link, link free time)
//             link busy [start, start + bytes/link_bw), then +latency
//   arrive  = max(last hop exit, receiver endpoint free time)
//           + (host_overhead + bytes/host_bw) * straggler(to)
//
// Endpoints and links are serialization queues: concurrent messages into
// one destination (incast) or across one wire (contention) stack up in
// virtual time exactly as they would at a switch port. Self sends bypass
// the network but still pay both endpoint costs.
//
// Determinism: schedules computed from the same send sequence are
// bit-identical (integral nanoseconds, ties broken by scheduling order).
// Drive the transport from one thread — the sequential SPMD executor, as
// `hpfc --backend=sim` and `amtool simulate` do — and the predicted
// timeline is reproducible run to run. Multi-threaded senders (the
// threaded executor, the conformance suite) stay *correct* (delivery
// order per channel is still FIFO) but interleave nondeterministically,
// so their predicted times may vary.
//
// Telemetry: sim.events / sim.messages / sim.bytes / sim.virtual_ns /
// sim.max_inflight / sim.stragglers counters, plus one chrome-trace span
// per delivered message ("sim.msg", tid = receiving rank) for ranks below
// params.trace_rank_cap — the predicted timeline rides the existing
// --trace machinery.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cyclick/runtime/transport.hpp"
#include "cyclick/sim/event_heap.hpp"
#include "cyclick/sim/topology.hpp"

namespace cyclick::sim {

class SimTransport final : public Transport {
 public:
  explicit SimTransport(i64 ranks, SimParams params = SimParams::from_env(),
                        i64 recv_timeout_ms = recv_timeout_ms_from_env());

  [[nodiscard]] i64 ranks() const override { return world_; }
  void send(i64 from, i64 to, std::vector<std::byte> payload) override;
  std::vector<std::byte> recv(i64 to, i64 from) override;
  [[nodiscard]] bool ready(i64 to, i64 from) override;

  /// Nonblocking primitives on the virtual clock: an isend completes when
  /// its kDepart event is processed (virtual departure time), a posted
  /// irecv when its kArrive event delivers the payload. The queue's
  /// progress hook is pointed at the event-heap drain, so waiting on a
  /// completion *advances virtual time* — exactly how the real backends'
  /// reader threads advance wall time.
  void isend(i64 from, i64 to, std::vector<std::byte> payload, CompletionQueue* cq,
             i64 tag) override;
  void irecv(i64 to, i64 from, CompletionQueue& cq, i64 tag) override;
  [[nodiscard]] bool try_recv(i64 to, i64 from, std::vector<std::byte>& out) override;
  void cancel_posted(CompletionQueue& cq) override;
  [[nodiscard]] i64 recv_timeout_ms() const override { return recv_timeout_ms_; }

  [[nodiscard]] const SimParams& params() const noexcept { return params_; }
  [[nodiscard]] const Mesh& mesh() const noexcept { return mesh_; }

  /// Virtual time of the latest scheduled event (the predicted makespan of
  /// everything sent so far).
  [[nodiscard]] i64 virtual_ns();

  /// Cumulative delivered traffic on channel (from -> to); parity with the
  /// other transports. Counts accrue only while telemetry is enabled.
  [[nodiscard]] ChannelStats channel_stats(i64 from, i64 to);

  /// One directed link's aggregate load.
  struct LinkStat {
    i64 id = 0;
    std::string name;   ///< "a->b" endpoints
    i64 messages = 0;
    i64 bytes = 0;
    i64 busy_ns = 0;    ///< serialization time (latency excluded)
    double utilization = 0.0;  ///< busy_ns / virtual makespan
  };

  /// Aggregate prediction for everything sent so far. Drains all pending
  /// events first, so the report reflects the complete schedule.
  struct Report {
    i64 virtual_ns = 0;        ///< predicted makespan
    i64 events = 0;            ///< events processed
    i64 messages = 0;          ///< messages scheduled
    i64 bytes = 0;             ///< payload bytes scheduled
    i64 self_messages = 0;     ///< loopback sends (no network traversal)
    i64 max_in_flight = 0;     ///< peak concurrent in-network msgs to one rank
    i64 max_in_flight_rank = -1;
    i64 links_used = 0;
    i64 link_bytes_max = 0;
    double link_bytes_mean = 0.0;
    double utilization_mean = 0.0;
    double utilization_max = 0.0;
    std::vector<LinkStat> hottest;  ///< top-N links by bytes, ties by id

    /// max/mean per-link bytes: 1.0 is perfectly balanced, large values
    /// mean a few links carry the schedule (the CI plan-balance gate).
    [[nodiscard]] double balance() const noexcept {
      return link_bytes_mean > 0.0
                 ? static_cast<double>(link_bytes_max) / link_bytes_mean
                 : 0.0;
    }
  };
  [[nodiscard]] Report report(i64 top_n = 5);

 private:
  struct PostedRecv {
    CompletionQueue* cq = nullptr;
    u64 op = 0;
  };
  struct Channel {
    std::deque<std::vector<std::byte>> queue;
    std::deque<PostedRecv> posted;  ///< pre-posted receives, FIFO match order
    ChannelStats stats;
  };
  struct InFlight {
    std::vector<std::byte> payload;
    i64 depart_ns = 0;
    i64 arrive_ns = 0;
    CompletionQueue* send_cq = nullptr;  ///< isend completion target
    u64 send_op = 0;
  };
  struct Link {
    i64 free_ns = 0;
    i64 messages = 0;
    i64 bytes = 0;
    i64 busy_ns = 0;
  };

  [[nodiscard]] i64 channel_key(i64 from, i64 to) const noexcept {
    return from * world_ + to;
  }
  void check_ranks(i64 from, i64 to) const;
  /// Schedule one message through the cost model; `cq`/`op` (optional)
  /// receive the kSend completion at virtual departure.
  void schedule_send(i64 from, i64 to, std::vector<std::byte> payload, CompletionQueue* cq,
                     u64 op);
  /// Process every pending event in (time, seq) order. Caller holds mu_.
  void drain_locked();

  i64 world_;
  SimParams params_;
  Mesh mesh_;
  i64 recv_timeout_ms_;

  std::mutex mu_;
  std::condition_variable cv_;
  EventHeap heap_;
  std::unordered_map<i64, Channel> channels_;
  std::unordered_map<i64, InFlight> in_flight_;
  std::unordered_map<i64, Link> links_;
  std::vector<i64> send_free_ns_;   ///< per-rank sender endpoint
  std::vector<i64> recv_free_ns_;   ///< per-rank receiver endpoint
  std::vector<i64> in_network_;     ///< per-rank concurrent inbound messages
  i64 seq_ = 0;
  i64 horizon_ns_ = 0;     ///< latest scheduled event time
  i64 processed_ns_ = 0;   ///< latest processed event time
  i64 events_processed_ = 0;
  i64 messages_ = 0;
  i64 bytes_ = 0;
  i64 self_messages_ = 0;
  i64 max_in_flight_ = 0;
  i64 max_in_flight_rank_ = -1;
};

}  // namespace cyclick::sim
