#include "cyclick/sim/sim_machine.hpp"

#include <algorithm>

namespace cyclick::sim {

SimMachine::SimMachine(SimParams params) : params_(std::move(params)) {}

Transport& SimMachine::transport_for(i64 ranks) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = transports_[ranks];
  if (slot == nullptr) slot = std::make_unique<SimTransport>(ranks, params_);
  return *slot;
}

SimTransport* SimMachine::transport_or_null(i64 ranks) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = transports_.find(ranks);
  return it != transports_.end() ? it->second.get() : nullptr;
}

std::vector<i64> SimMachine::worlds() {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<i64> out;
  out.reserve(transports_.size());
  for (const auto& [ranks, transport] : transports_) out.push_back(ranks);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cyclick::sim
