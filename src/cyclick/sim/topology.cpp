#include "cyclick/sim/topology.hpp"

#include <cmath>
#include <cstdlib>

namespace cyclick::sim {

const char* topology_name(Topology t) noexcept {
  switch (t) {
    case Topology::kRing: return "ring";
    case Topology::kMesh2D: return "mesh2d";
    case Topology::kFull: break;
  }
  return "full";
}

std::optional<Topology> parse_topology_name(std::string_view name) noexcept {
  if (name == "full") return Topology::kFull;
  if (name == "ring") return Topology::kRing;
  if (name == "mesh2d") return Topology::kMesh2D;
  return std::nullopt;
}

namespace {

[[nodiscard]] double env_double(const char* var, double fallback) {
  const char* env = std::getenv(var);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  CYCLICK_REQUIRE(end != env && *end == '\0' && v > 0.0,
                  "simulation environment knobs must be positive numbers");
  return v;
}

}  // namespace

std::vector<std::pair<i64, double>> parse_straggler_spec(std::string_view spec) {
  std::vector<std::pair<i64, double>> out;
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t end = spec.find(',', at);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(at, end - at);
    const std::size_t colon = entry.find(':');
    CYCLICK_REQUIRE(colon != std::string_view::npos && colon > 0 &&
                        colon + 1 < entry.size(),
                    "straggler spec entries must be rank:multiplier");
    const std::string rank_s(entry.substr(0, colon));
    const std::string mult_s(entry.substr(colon + 1));
    char* rend = nullptr;
    const i64 rank = std::strtoll(rank_s.c_str(), &rend, 10);
    CYCLICK_REQUIRE(rend != rank_s.c_str() && *rend == '\0' && rank >= 0,
                    "straggler rank must be a nonnegative integer");
    char* mend = nullptr;
    const double mult = std::strtod(mult_s.c_str(), &mend);
    CYCLICK_REQUIRE(mend != mult_s.c_str() && *mend == '\0' && mult > 0.0,
                    "straggler multiplier must be a positive number");
    out.emplace_back(rank, mult);
    at = end + 1;
  }
  return out;
}

SimParams SimParams::from_env() {
  SimParams p;
  if (const char* env = std::getenv("CYCLICK_SIM_TOPOLOGY");
      env != nullptr && *env != '\0') {
    const auto parsed = parse_topology_name(env);
    CYCLICK_REQUIRE(parsed.has_value(),
                    "CYCLICK_SIM_TOPOLOGY must be one of: full, ring, mesh2d");
    p.topology = *parsed;
  }
  p.link_latency_ns = static_cast<i64>(
      env_double("CYCLICK_SIM_LINK_LATENCY_NS", static_cast<double>(p.link_latency_ns)));
  p.link_bytes_per_ns = env_double("CYCLICK_SIM_LINK_GBPS", p.link_bytes_per_ns);
  p.host_overhead_ns = static_cast<i64>(
      env_double("CYCLICK_SIM_HOST_OVERHEAD_NS", static_cast<double>(p.host_overhead_ns)));
  p.host_bytes_per_ns = env_double("CYCLICK_SIM_HOST_GBPS", p.host_bytes_per_ns);
  if (const char* env = std::getenv("CYCLICK_SIM_STRAGGLER");
      env != nullptr && *env != '\0')
    p.stragglers = parse_straggler_spec(env);
  return p;
}

Mesh::Mesh(Topology topology, i64 world) : topology_(topology), world_(world) {
  CYCLICK_REQUIRE(world >= 1, "simulated mesh needs at least one rank");
  if (topology_ == Topology::kMesh2D) {
    // The most-square factorization of p: the largest divisor <= sqrt(p)
    // becomes the row count (a prime p degenerates to a 1 x p line, which
    // routes like an unwrapped ring).
    rows_ = 1;
    for (i64 r = static_cast<i64>(std::sqrt(static_cast<double>(world))); r >= 1; --r)
      if (world % r == 0) {
        rows_ = r;
        break;
      }
    cols_ = world / rows_;
  } else {
    rows_ = 1;
    cols_ = world;
  }
}

i64 Mesh::hop_count(i64 from, i64 to) const {
  CYCLICK_REQUIRE(from >= 0 && from < world_ && to >= 0 && to < world_,
                  "rank out of range");
  i64 hops = 0;
  route(from, to, [&](i64) { ++hops; });
  return hops;
}

std::string Mesh::link_name(i64 link) const {
  switch (topology_) {
    case Topology::kFull:
      return std::to_string(link / world_) + "->" + std::to_string(link % world_);
    case Topology::kRing: {
      const i64 at = link / 2;
      const i64 step = (link % 2 == 0) ? 1 : -1;
      return std::to_string(at) + "->" + std::to_string(wrap(at + step));
    }
    case Topology::kMesh2D: {
      const i64 node = link / 4;
      const i64 dir = link % 4;
      const i64 r = node / cols_, c = node % cols_;
      const i64 tr = r + (dir == 2 ? 1 : dir == 3 ? -1 : 0);
      const i64 tc = c + (dir == 0 ? 1 : dir == 1 ? -1 : 0);
      return std::to_string(node) + "->" + std::to_string(tr * cols_ + tc);
    }
  }
  return std::to_string(link);
}

}  // namespace cyclick::sim
