// The integer-lattice view of regular-section accesses (paper, Sections 3-4).
//
// Fix a distribution cyclic(k) over p processors (row length pk) and a
// section stride s > 0. Each regular-section element i (taking lower bound
// l = 0, which Theorem 1 shows is without loss of generality) corresponds to
// the point (b, a) in Z^2 with
//
//     pk * a + b = i * s,
//
// b the offset coordinate and a the row coordinate. The set
// A = { (b, a) : pk*a + b = i*s, i in Z } is an integer lattice (Theorem 1).
// Two lattice points with section indices i1, i2 and row coordinates a1, a2
// form a basis iff |a1*i2 - a2*i1| = 1.
//
// The paper's central construction (Section 4) selects the basis
//   R = (br, ar): smallest *positive* section index ir with 0 < br < k,
//   L = (bl, al): largest *negative* section index il with 0 < bl < k,
// and proves (Theorem 3) that consecutive accesses on any processor differ
// by exactly R, -L, or R - L.
#pragma once

#include <optional>

#include "cyclick/support/math.hpp"
#include "cyclick/support/types.hpp"

namespace cyclick {

/// A point of the section lattice: offset coordinate b, row coordinate a.
struct LatticePoint {
  i64 b;  ///< offset (x) coordinate
  i64 a;  ///< row (y) coordinate

  friend constexpr LatticePoint operator+(LatticePoint u, LatticePoint v) noexcept {
    return {u.b + v.b, u.a + v.a};
  }
  friend constexpr LatticePoint operator-(LatticePoint u, LatticePoint v) noexcept {
    return {u.b - v.b, u.a - v.a};
  }
  friend constexpr bool operator==(LatticePoint, LatticePoint) noexcept = default;

  /// Local-memory gap contributed by moving along this vector on a machine
  /// with block size k: a rows of k local cells each, plus b offsets.
  [[nodiscard]] constexpr i64 memory_gap(i64 k) const noexcept { return a * k + b; }
};

/// A lattice point together with its regular-section index i
/// (pk*a + b = i*s).
struct SectionPoint {
  LatticePoint v;
  i64 index;  ///< the section index i
};

/// The section lattice A for row length pk and stride s (both > 0).
class SectionLattice {
 public:
  SectionLattice(i64 row_length, i64 stride);

  [[nodiscard]] i64 row_length() const noexcept { return pk_; }
  [[nodiscard]] i64 stride() const noexcept { return s_; }

  /// True when (b, a) is a lattice point, i.e. s divides pk*a + b.
  [[nodiscard]] bool contains(LatticePoint pt) const noexcept;

  /// Section index of a lattice point; nullopt when not a lattice point.
  [[nodiscard]] std::optional<i64> index_of(LatticePoint pt) const noexcept;

  /// The point corresponding to section index i: value i*s decomposed as
  /// (i*s mod pk, i*s div pk) — the canonical representative used by the
  /// paper's figures. (Lattice points in general may have b outside
  /// [0, pk); this helper returns the normalized one.)
  [[nodiscard]] SectionPoint point_of_index(i64 i) const noexcept;

  /// Basis test (Section 3): points p1, p2 with indices i1, i2 form a basis
  /// iff |a1*i2 - a2*i1| = 1. Both points must lie in the lattice.
  [[nodiscard]] bool is_basis(const SectionPoint& p1, const SectionPoint& p2) const;

  /// The constructive basis of Section 3: p1 = (s mod pk, s div pk) with
  /// i1 = 1 (no interior lattice point on the segment from the origin since
  /// gcd(a1, 1) = 1), completed via the extended Euclid construction.
  [[nodiscard]] std::pair<SectionPoint, SectionPoint> canonical_basis() const;

 private:
  i64 pk_;
  i64 s_;
};

/// The R/L basis of Section 4, for block size k (k <= pk, pk = p*k).
/// Exists whenever at least two distinct offsets in (0, k) carry section
/// elements (the general case; degenerate cases are reported via nullopt
/// and handled by the algorithm's special-case paths).
struct RlBasis {
  SectionPoint r;  ///< R = (br, ar), smallest positive index with 0 < br < k
  SectionPoint l;  ///< L = (bl, al), largest negative index with 0 < bl < k
  i64 d;           ///< gcd(s, pk)

  /// Memory gaps induced by Theorem 3's three possible steps.
  [[nodiscard]] i64 gap_r(i64 k) const noexcept { return r.v.memory_gap(k); }
  [[nodiscard]] i64 gap_minus_l(i64 k) const noexcept { return -l.v.memory_gap(k); }
  [[nodiscard]] i64 gap_r_minus_l(i64 k) const noexcept {
    return (r.v - l.v).memory_gap(k);
  }
};

/// Compute the R and L basis vectors for cyclic(k) over p processors and
/// stride s > 0 (independent of lower bound and processor number; paper
/// Section 4 and lines 19-30 of Figure 5). Returns nullopt in the
/// degenerate cases where fewer than one interior offset in (0, k) carries
/// section elements (then every processor sees at most one access per cycle
/// and no basis is needed). O(k) time.
std::optional<RlBasis> select_rl_basis(i64 p, i64 k, i64 s);

}  // namespace cyclick
