#include "cyclick/lattice/lattice.hpp"

#include "cyclick/support/residue_scan.hpp"

namespace cyclick {

SectionLattice::SectionLattice(i64 row_length, i64 stride) : pk_(row_length), s_(stride) {
  CYCLICK_REQUIRE(row_length >= 1, "row length must be >= 1");
  CYCLICK_REQUIRE(stride >= 1, "lattice stride must be >= 1 (reduce negative strides first)");
}

bool SectionLattice::contains(LatticePoint pt) const noexcept {
  const i128 value = static_cast<i128>(pk_) * pt.a + pt.b;
  return value % s_ == 0;
}

std::optional<i64> SectionLattice::index_of(LatticePoint pt) const noexcept {
  const i128 value = static_cast<i128>(pk_) * pt.a + pt.b;
  if (value % s_ != 0) return std::nullopt;
  return static_cast<i64>(value / s_);
}

SectionPoint SectionLattice::point_of_index(i64 i) const noexcept {
  const i64 value = i * s_;
  return {{floor_mod(value, pk_), floor_div(value, pk_)}, i};
}

bool SectionLattice::is_basis(const SectionPoint& p1, const SectionPoint& p2) const {
  CYCLICK_REQUIRE(contains(p1.v) && contains(p2.v), "basis candidates must be lattice points");
  CYCLICK_REQUIRE(index_of(p1.v) == p1.index && index_of(p2.v) == p2.index,
                  "section indices must match the points");
  const i128 det = static_cast<i128>(p1.v.a) * p2.index - static_cast<i128>(p2.v.a) * p1.index;
  return det == 1 || det == -1;
}

std::pair<SectionPoint, SectionPoint> SectionLattice::canonical_basis() const {
  // First vector: the point of section index 1. The segment from the origin
  // to it contains no interior lattice point because gcd(a1, i1 = 1) = 1.
  const SectionPoint p1 = point_of_index(1);
  // Complete the basis: find (i2, a2) with a1*i2 - a2*i1 = 1 via extended
  // Euclid on (a1, i1), then b2 = i2*s - pk*a2 (Section 3).
  const EgcdResult eg = extended_euclid(p1.v.a, p1.index);
  CYCLICK_ASSERT(eg.g == 1);
  const i64 i2 = eg.x;
  const i64 a2 = -eg.y;
  const i64 b2 = i2 * s_ - pk_ * a2;
  return {p1, SectionPoint{{b2, a2}, i2}};
}

std::optional<RlBasis> select_rl_basis(i64 p, i64 k, i64 s) {
  CYCLICK_REQUIRE(p >= 1 && k >= 1, "distribution parameters must be positive");
  CYCLICK_REQUIRE(s >= 1, "stride must be positive (reduce negative strides first)");
  const i64 pk = p * k;
  const ResidueScan scan(s, pk);
  const i64 d = scan.d;

  // Offsets in (0, k) carrying section elements are exactly the multiples of
  // d in that range (lines 19-26 of Figure 5, with the "i mod d" conditional
  // removed by stepping i by d — the paper's noted loop simplification).
  if (d >= k) return std::nullopt;

  i64 min_j = INT64_MAX;
  i64 max_j = INT64_MIN;
  scan.for_each_solvable(1, k, [&](i64, i64 j) {
    // j > 0 here: j = 0 solves only residue 0, which is outside (0, k).
    if (j < min_j) min_j = j;
    if (j > max_j) max_j = j;
  });
  const i64 min_loc = min_j * s;  // smallest positive section value with offset in (0, k)
  const i64 max_loc = max_j * s;  // largest value in the initial cycle

  RlBasis basis{
      /*r=*/{{min_loc % pk, min_loc / pk}, min_loc / s},
      /*l=*/{{max_loc % pk, max_loc / pk - s / d}, max_loc / s - pk / d},
      /*d=*/d};
  CYCLICK_ASSERT(basis.r.v.b > 0 && basis.r.v.b < k);
  CYCLICK_ASSERT(basis.l.v.b > 0 && basis.l.v.b < k);
  CYCLICK_ASSERT(basis.r.index > 0 && basis.l.index < 0);
  return basis;
}

}  // namespace cyclick
