// amtool — command-line inspector for cyclic(k) memory access sequences.
//
// Subcommands:
//   amtool table  -p P -k K -s S [-l L] [-m M]   AM gap table(s)
//   amtool basis  -p P -k K -s S                 R/L and canonical lattice basis
//   amtool walk   -p P -k K -s S -u U [-l L] [-m M]   list accesses (global->local)
//   amtool owners -p P -k K -s S -u U [-l L]     per-processor element counts
//   amtool layout -p P -k K -s S -u U [-l L] [-m M]   Figure 1/2/6 style rendering
//   amtool stats  -p P -k K -s S [-l L]          gap histogram + Theorem-3 summary
//   amtool xfer   -p P -k K -s S -u U [-l L] [-d DK]   build and execute the
//                 redistribution dst(0:|sec|-1) = src(sec) from cyclic(K) to
//                 cyclic(DK) over the selected backend, verifying the result
//                 against the transport-free executor
//   amtool simulate -p P -k K -s S -u U [-l L] [-d DK] [--topology=T]
//                 [--straggler=R:M,..] [--top=N]   replay the same
//                 redistribution plan through the discrete-event simulated
//                 mesh: predicted phase time, per-link utilization, plan
//                 balance (max/mean per-link bytes), incast high-water and
//                 the top-N hottest links. p can be thousands of virtual
//                 ranks; the run is single-process and deterministic.
//   amtool serve  --socket=PATH [--cap=N] [--shards=N] [--duration-ms=N]
//                 run the address-plan daemon: answer batched
//                 (p, k, |s|, section) queries with serialized EngineTables
//                 / CommPlan run descriptors from a sharded concurrent
//                 reply cache (capacity --cap / CYCLICK_SERVE_CAP, shard
//                 count --shards / CYCLICK_SERVE_SHARDS, 0 = automatic).
//                 Runs until SIGINT/SIGTERM, or --duration-ms elapses.
//
// Unknown subcommands are rejected by name with the valid list (same
// discipline as unknown --backend values).
//
// All subcommands accept any subset of processors via -m (default: all),
// plus --strategy (print the AddressEngine dispatch class for (p, k, s),
// followed by the bytecode listing of a representative fused statement over
// that distribution — suppressed under --tier=interp),
// --tier=interp|bytecode (CYCLICK_TIER supplies the default),
// --backend=inproc|proc|sim (xfer's execution backend; CYCLICK_BACKEND
// supplies the default; unknown names are rejected with the valid list),
// --metrics[=json] (telemetry report on stderr) and --trace=FILE.json
// (chrome://tracing export). `simulate` additionally honours the
// CYCLICK_SIM_* environment knobs; --topology/--straggler override them.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <algorithm>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <map>
#include <thread>
#include <vector>

#include "cyclick/codegen/node_loop.hpp"
#include "cyclick/compiler/interp.hpp"
#include "cyclick/core/engine.hpp"
#include "cyclick/core/lattice_addresser.hpp"
#include "cyclick/hpf/layout_render.hpp"
#include "cyclick/lattice/lattice.hpp"
#include "cyclick/net/backend.hpp"
#include "cyclick/net/launcher.hpp"
#include "cyclick/net/socket_transport.hpp"
#include "cyclick/obs/report.hpp"
#include "cyclick/runtime/redistribute.hpp"
#include "cyclick/serve/service.hpp"
#include "cyclick/sim/sim_transport.hpp"

namespace {

using namespace cyclick;

struct Options {
  i64 p = 4, k = 8, s = 9, l = 0;
  std::optional<i64> u;
  std::optional<i64> m;
  std::optional<i64> d;  ///< xfer: destination block size (default k)
};

constexpr const char* kSubcommands =
    "table, basis, walk, owners, layout, stats, xfer, simulate, serve";

[[noreturn]] void usage() {
  std::cerr <<
      "usage: amtool <table|basis|walk|owners|layout|stats|xfer|simulate|serve>\n"
      "              -p <procs> -k <block> -s <stride>\n"
      "              [-l <lower>] [-u <upper>] [-m <proc>] [-d <dst block>]\n"
      "              [--strategy] [--tier=interp|bytecode] [--backend=inproc|proc|sim]\n"
      "              [--topology=full|ring|mesh2d] [--straggler=rank:mult,..] [--top=N]\n"
      "       amtool serve --socket=<path> [--cap=N] [--shards=N] [--duration-ms=N]\n";
  std::exit(2);
}

Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 2; i < argc; i += 2) {
    if (i + 1 >= argc) usage();
    const std::string flag = argv[i];
    const i64 value = std::atoll(argv[i + 1]);
    if (flag == "-p") opt.p = value;
    else if (flag == "-k") opt.k = value;
    else if (flag == "-s") opt.s = value;
    else if (flag == "-l") opt.l = value;
    else if (flag == "-u") opt.u = value;
    else if (flag == "-m") opt.m = value;
    else if (flag == "-d") opt.d = value;
    else usage();
  }
  return opt;
}

void print_pattern(const BlockCyclic& dist, const Options& opt, i64 m) {
  const AccessPattern pat = AddressEngine::global().pattern(dist, opt.l, opt.s, m);
  std::cout << "proc " << m << ": ";
  if (pat.empty()) {
    std::cout << "no elements\n";
    return;
  }
  std::cout << "start A(" << pat.start_global << ") local " << pat.start_local
            << ", period " << pat.length << ", AM = [";
  for (std::size_t i = 0; i < pat.gaps.size(); ++i)
    std::cout << (i ? ", " : "") << pat.gaps[i];
  std::cout << "]\n";
}

int cmd_table(const BlockCyclic& dist, const Options& opt) {
  if (opt.m) {
    print_pattern(dist, opt, *opt.m);
  } else {
    for (i64 m = 0; m < opt.p; ++m) print_pattern(dist, opt, m);
  }
  return 0;
}

int cmd_basis(const BlockCyclic& dist, const Options& opt) {
  CYCLICK_REQUIRE(opt.s > 0, "basis requires a positive stride");
  const SectionLattice lattice(dist.row_length(), opt.s);
  const auto [c1, c2] = lattice.canonical_basis();
  std::cout << "section lattice: pk*a + b = i*s with pk = " << dist.row_length()
            << ", s = " << opt.s << ", gcd = " << gcd_i64(opt.s, dist.row_length()) << "\n"
            << "canonical basis: (" << c1.v.b << ", " << c1.v.a << ") index " << c1.index
            << ";  (" << c2.v.b << ", " << c2.v.a << ") index " << c2.index << "\n";
  if (const auto rl = select_rl_basis(opt.p, opt.k, opt.s)) {
    std::cout << "R = (" << rl->r.v.b << ", " << rl->r.v.a << ") index " << rl->r.index
              << ", memory gap " << rl->gap_r(opt.k) << "\n"
              << "L = (" << rl->l.v.b << ", " << rl->l.v.a << ") index " << rl->l.index
              << ", memory gap " << -rl->gap_minus_l(opt.k) << "\n"
              << "Theorem-3 gaps: R " << rl->gap_r(opt.k) << ", -L " << rl->gap_minus_l(opt.k)
              << ", R-L " << rl->gap_r_minus_l(opt.k) << "\n";
  } else {
    std::cout << "degenerate: gcd(s, pk) >= k, at most one offset per block\n";
  }
  return 0;
}

int cmd_walk(const BlockCyclic& dist, const Options& opt) {
  if (!opt.u) {
    std::cerr << "walk requires -u <upper>\n";
    return 2;
  }
  const RegularSection sec{opt.l, *opt.u, opt.s};
  const auto walk_one = [&](i64 m) {
    std::cout << "proc " << m << ":\n";
    for_each_local_access(dist, sec, m, [&](i64 g, i64 la) {
      std::cout << "  A(" << g << ") -> mem[" << la << "]\n";
    });
  };
  if (opt.m) {
    walk_one(*opt.m);
  } else {
    for (i64 m = 0; m < opt.p; ++m) walk_one(m);
  }
  return 0;
}

int cmd_owners(const BlockCyclic& dist, const Options& opt) {
  if (!opt.u) {
    std::cerr << "owners requires -u <upper>\n";
    return 2;
  }
  const RegularSection sec{opt.l, *opt.u, opt.s};
  i64 total = 0;
  for (i64 m = 0; m < opt.p; ++m) {
    i64 count = 0;
    for_each_local_access(dist, sec, m, [&](i64, i64) { ++count; });
    std::cout << "proc " << m << ": " << count << " elements\n";
    total += count;
  }
  std::cout << "total: " << total << " of " << sec.size() << "\n";
  return total == sec.size() ? 0 : 1;
}

int cmd_stats(const BlockCyclic& dist, const Options& opt) {
  // Gap histogram + Theorem-3 structure summary across processors.
  CYCLICK_REQUIRE(opt.s > 0, "stats requires a positive stride");
  std::map<i64, i64> histogram;
  i64 empty_procs = 0;
  i64 total_period = 0;
  for (i64 m = 0; m < opt.p; ++m) {
    const AccessPattern pat = AddressEngine::global().pattern(dist, opt.l, opt.s, m);
    if (pat.empty()) {
      ++empty_procs;
      continue;
    }
    total_period += pat.length;
    for (const i64 g : pat.gaps) ++histogram[g];
  }
  const i64 d = gcd_i64(opt.s, dist.row_length());
  std::cout << "gcd(s, pk) = " << d << ", period sum over processors = " << total_period
            << " (= pk/d = " << dist.row_length() / d << ")\n"
            << "processors with no elements: " << empty_procs << "\n";
  if (const auto basis = select_rl_basis(opt.p, opt.k, opt.s)) {
    std::cout << "Theorem-3 gaps: R " << basis->gap_r(opt.k) << ", -L "
              << basis->gap_minus_l(opt.k) << ", R-L " << basis->gap_r_minus_l(opt.k)
              << "\n";
  }
  std::cout << "gap histogram (gap: count across all AM tables):\n";
  for (const auto& [gap, count] : histogram)
    std::cout << "  " << gap << ": " << count << "\n";
  return 0;
}

int cmd_layout(const BlockCyclic& dist, const Options& opt) {
  if (!opt.u) {
    std::cerr << "layout requires -u <upper>\n";
    return 2;
  }
  const RegularSection sec{opt.l, *opt.u, opt.s};
  const i64 rows = floor_div(sec.ascending().upper, dist.row_length()) + 1;
  if (opt.m) {
    std::cout << "section elements on processor " << *opt.m << " (Figure 6 style; ("
              << sec.lower << ") is the lower bound):\n"
              << render_processor_walk(dist, sec, *opt.m, rows);
  } else {
    std::cout << "section elements across the layout (Figure 1/2 style):\n"
              << render_section_layout(dist, sec, rows);
  }
  return 0;
}

int cmd_xfer(const Options& opt, net::Backend backend) {
  // dst(0 : |sec|-1 : 1) = src(sec): redistribute a strided section of a
  // cyclic(k) source into a densely indexed cyclic(dst_k) destination, then
  // verify the backend's result element-for-element against the
  // transport-free executor.
  if (!opt.u) {
    std::cerr << "xfer requires -u <upper>\n";
    return 2;
  }
  const RegularSection ssec{opt.l, *opt.u, opt.s};
  CYCLICK_REQUIRE(!ssec.empty(), "xfer section is empty");
  const RegularSection asc = ssec.ascending();
  CYCLICK_REQUIRE(asc.lower >= 0, "xfer section must be nonnegative");
  const i64 p = opt.p;
  const i64 dst_k = opt.d.value_or(opt.k);
  const i64 src_n = asc.upper + 1;
  const i64 dst_n = ssec.size();
  const RegularSection dsec{0, dst_n - 1, 1};

  std::vector<double> image(static_cast<std::size_t>(src_n));
  std::iota(image.begin(), image.end(), 1.0);

  const SpmdExecutor exec(p);
  DistributedArray<double> src(BlockCyclic(p, opt.k), src_n);
  src.scatter(image);
  DistributedArray<double> expected(BlockCyclic(p, dst_k), dst_n);
  const CommPlan plan = build_copy_plan(src, ssec, expected, dsec, exec);
  execute_copy_plan(plan, src, expected, exec);

  bool ok = false;
  if (backend == net::Backend::kInProc) {
    DistributedArray<double> dst(BlockCyclic(p, dst_k), dst_n);
    InProcessTransport transport(p);
    const SpmdExecutor threads(p, SpmdExecutor::Mode::kThreads);
    execute_copy_plan_over(plan, src, dst, threads, transport);
    ok = dst.gather() == expected.gather();
  } else {
    // One OS process per rank: each child rebuilds the (deterministic)
    // plan, joins the socket mesh, executes only its own rank's share, and
    // verifies its local buffer against the reference.
    net::ProcessGroup group(p);
    group.spawn([&](i64 rank) -> int {
      DistributedArray<double> csrc(BlockCyclic(p, opt.k), src_n);
      csrc.scatter(image);
      DistributedArray<double> cdst(BlockCyclic(p, dst_k), dst_n);
      const CommPlan cplan = build_copy_plan(csrc, ssec, cdst, dsec, exec);
      const auto transport = net::SocketTransport::connect_mesh(rank, p, group.dir());
      execute_copy_plan_rank(cplan, csrc, cdst, rank, *transport);
      const auto got = cdst.local(rank);
      const auto want = expected.local(rank);
      if (got.size() != want.size() ||
          !std::equal(got.begin(), got.end(), want.begin())) {
        std::cerr << "amtool: rank " << rank << ": transferred bytes diverge\n";
        return 1;
      }
      return 0;
    });
    const auto statuses = group.wait_all();
    const std::string failures = net::describe_failures(statuses);
    if (!failures.empty()) std::cerr << "amtool: rank processes failed:\n" << failures;
    ok = failures.empty();
  }

  std::cout << "xfer src cyclic(" << opt.k << ") sec (" << ssec.lower << ":" << ssec.last()
            << ":" << ssec.stride << ") -> dst cyclic(" << dst_k << ") over "
            << net::backend_name(backend) << ": " << plan.total_elements() << " elements, "
            << plan.message_count() << " messages, "
            << plan.remote_elements() * static_cast<i64>(sizeof(double))
            << " remote bytes; " << (ok ? "verified OK" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}

/// Per-run knobs for `amtool simulate`, stripped from argv as whole tokens.
struct SimulateCli {
  std::string topology;   ///< --topology= override (empty: env/default)
  std::string straggler;  ///< --straggler= override (empty: env/default)
  i64 top_n = 5;          ///< --top=N hottest links to print
};

int cmd_simulate(const Options& opt, const SimulateCli& cli) {
  // Replay the same redistribution plan `xfer` executes — dst(0:|sec|-1:1)
  // = src(sec), cyclic(k) -> cyclic(dk) — through the discrete-event
  // simulated mesh, verify the delivered bytes against the transport-free
  // executor, and print the predicted schedule. The sequential executor
  // drives the transport from one thread, so the prediction is
  // deterministic run to run.
  if (!opt.u) {
    std::cerr << "simulate requires -u <upper>\n";
    return 2;
  }
  sim::SimParams params = sim::SimParams::from_env();
  if (!cli.topology.empty()) {
    const auto parsed = sim::parse_topology_name(cli.topology);
    if (!parsed.has_value())
      throw precondition_error("unknown topology \"" + cli.topology +
                               "\" in --topology; valid topologies are: full, ring, mesh2d");
    params.topology = *parsed;
  }
  if (!cli.straggler.empty()) params.stragglers = sim::parse_straggler_spec(cli.straggler);

  const RegularSection ssec{opt.l, *opt.u, opt.s};
  CYCLICK_REQUIRE(!ssec.empty(), "simulate section is empty");
  const RegularSection asc = ssec.ascending();
  CYCLICK_REQUIRE(asc.lower >= 0, "simulate section must be nonnegative");
  const i64 p = opt.p;
  const i64 dst_k = opt.d.value_or(opt.k);
  const i64 src_n = asc.upper + 1;
  const i64 dst_n = ssec.size();
  const RegularSection dsec{0, dst_n - 1, 1};

  std::vector<double> image(static_cast<std::size_t>(src_n));
  std::iota(image.begin(), image.end(), 1.0);

  const SpmdExecutor exec(p);
  DistributedArray<double> src(BlockCyclic(p, opt.k), src_n);
  src.scatter(image);
  DistributedArray<double> expected(BlockCyclic(p, dst_k), dst_n);
  const CommPlan plan = build_copy_plan(src, ssec, expected, dsec, exec);
  execute_copy_plan(plan, src, expected, exec);

  DistributedArray<double> dst(BlockCyclic(p, dst_k), dst_n);
  sim::SimTransport transport(p, params);
  execute_copy_plan_over(plan, src, dst, exec, transport);
  const bool ok = dst.gather() == expected.gather();
  const auto rep = transport.report(cli.top_n);

  const auto us = [](i64 ns) { return static_cast<double>(ns) / 1000.0; };
  const auto pct = [](double u) { return u * 100.0; };
  std::cout << std::fixed << std::setprecision(3)
            << "simulate src cyclic(" << opt.k << ") sec (" << ssec.lower << ":"
            << ssec.last() << ":" << ssec.stride << ") -> dst cyclic(" << dst_k
            << ") on " << p << " ranks, " << sim::topology_name(params.topology)
            << " topology";
  if (params.topology == sim::Topology::kMesh2D)
    std::cout << " (" << transport.mesh().rows() << "x" << transport.mesh().cols()
              << " grid)";
  std::cout << "\n"
            << "plan: " << plan.total_elements() << " elements, " << plan.message_count()
            << " messages, " << plan.remote_elements() * static_cast<i64>(sizeof(double))
            << " remote bytes\n"
            << "predicted phase time: " << us(rep.virtual_ns) << " us (" << rep.events
            << " events, " << rep.self_messages << " self messages)\n"
            << "links used: " << rep.links_used << ", per-link bytes mean "
            << rep.link_bytes_mean << " max " << rep.link_bytes_max << "\n"
            << "plan balance (max/mean per-link bytes): " << rep.balance() << "\n"
            << "link utilization: mean " << pct(rep.utilization_mean) << "% max "
            << pct(rep.utilization_max) << "%\n"
            << "max in-flight at one destination: " << rep.max_in_flight << " (rank "
            << rep.max_in_flight_rank << ")\n";
  if (!params.stragglers.empty()) {
    std::cout << "stragglers injected:";
    for (const auto& [rank, mult] : params.stragglers)
      std::cout << " " << rank << ":x" << mult;
    std::cout << "\n";
  }
  if (!rep.hottest.empty()) {
    std::cout << "hottest links:\n";
    for (const auto& link : rep.hottest)
      std::cout << "  " << link.name << ": " << link.bytes << " bytes, "
                << link.messages << " messages, busy " << us(link.busy_ns)
                << " us, utilization " << pct(link.utilization) << "%\n";
  }
  std::cout << "result: " << (ok ? "verified OK" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}

// --- amtool serve -----------------------------------------------------------

struct ServeCli {
  std::string socket;
  std::size_t cap = serve::serve_cap_from_env();
  std::size_t shards = serve::serve_shards_from_env();
  i64 duration_ms = 0;  ///< 0: run until SIGINT/SIGTERM
};

std::atomic<bool> g_serve_stop{false};

void handle_serve_signal(int) { g_serve_stop.store(true); }

int cmd_serve(const ServeCli& cli) {
  if (cli.socket.empty()) {
    std::cerr << "serve requires --socket=<path>\n";
    return 2;
  }
  serve::ServeDaemon::Options opt;
  opt.socket_path = cli.socket;
  opt.cache_capacity = cli.cap == 0 ? 1 : cli.cap;
  opt.cache_shards = cli.shards;
  serve::ServeDaemon daemon(opt);
  daemon.start();
  std::signal(SIGINT, handle_serve_signal);
  std::signal(SIGTERM, handle_serve_signal);
  std::cout << "amtool serve: listening on " << cli.socket << " (cache capacity "
            << opt.cache_capacity << ", " << daemon.service().cache_shards() << " shards)"
            << std::endl;
  const auto start = std::chrono::steady_clock::now();
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (cli.duration_ms > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      if (elapsed >= cli.duration_ms) break;
    }
  }
  daemon.stop();
  const auto st = daemon.service().cache_stats();
  std::cout << "amtool serve: handled " << daemon.accepted() << " connections, "
            << (st.hits + st.misses) << " queries (" << st.hits << " hits, " << st.misses
            << " misses, " << st.evictions << " evictions)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Telemetry flags are boolean/valued in one token; strip them before the
  // pairwise flag-value option parse below.
  obs::CliOptions obs_opt;
  bool show_strategy = false;
  net::Backend backend = net::Backend::kInProc;
  dsl::Tier tier = dsl::tier_from_env(dsl::Tier::kBytecode);
  SimulateCli sim_cli;
  ServeCli serve_cli;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  try {
    backend = net::backend_from_env(net::Backend::kInProc);
    for (int i = 0; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (i >= 1 && arg == "--strategy") {
        show_strategy = true;
        continue;
      }
      if (i >= 1 && arg.rfind("--topology=", 0) == 0) {
        sim_cli.topology = arg.substr(11);
        continue;
      }
      if (i >= 1 && arg.rfind("--straggler=", 0) == 0) {
        sim_cli.straggler = arg.substr(12);
        continue;
      }
      if (i >= 1 && arg.rfind("--top=", 0) == 0) {
        sim_cli.top_n = std::atoll(argv[i] + 6);
        if (sim_cli.top_n < 0) usage();
        continue;
      }
      if (i >= 1 && arg.rfind("--socket=", 0) == 0) {
        serve_cli.socket = std::string(arg.substr(9));
        continue;
      }
      if (i >= 1 && arg.rfind("--cap=", 0) == 0) {
        serve_cli.cap = static_cast<std::size_t>(std::atoll(argv[i] + 6));
        continue;
      }
      if (i >= 1 && arg.rfind("--shards=", 0) == 0) {
        serve_cli.shards = static_cast<std::size_t>(std::atoll(argv[i] + 9));
        continue;
      }
      if (i >= 1 && arg.rfind("--duration-ms=", 0) == 0) {
        serve_cli.duration_ms = std::atoll(argv[i] + 14);
        if (serve_cli.duration_ms < 0) usage();
        continue;
      }
      if (i >= 1 && net::parse_backend_flag(arg, backend)) continue;
      if (i >= 1 && dsl::parse_tier_flag(argv[i], tier)) continue;
      if (i >= 1 && obs::parse_cli_flag(arg, obs_opt)) continue;
      args.push_back(argv[i]);
    }
  } catch (const std::exception& e) {
    std::cerr << "amtool: " << e.what() << "\n";
    return 2;
  }
  const int nargs = static_cast<int>(args.size());
  if (nargs < 2) usage();
  if (obs_opt.any()) obs::set_enabled(true);
  const std::string cmd = args[1];
  const Options opt = parse_options(nargs, args.data());
  try {
    const BlockCyclic dist(opt.p, opt.k);
    if (show_strategy) {
      std::cout << "dispatch: "
                << address_strategy_name(AddressEngine::classify(dist, opt.s))
                << ", kernel: " << kernel_class_name(kernel_class_for(dist, opt.s)) << " (p="
                << opt.p << ", k=" << opt.k << ", s=" << opt.s << ")\n";
      if (tier == dsl::Tier::kBytecode) {
        // Representative fused statement over this distribution: shows the
        // per-rank kernel class and fusion decisions the bytecode tier
        // would take for a stride-s access on cyclic(k) x p.
        const i64 count = 16;
        const i64 last = opt.l + (count - 1) * opt.s;
        const i64 lo = std::min(opt.l, last);
        if (lo >= 0) {
          const i64 n = std::max(opt.l, last) + 1;
          std::ostringstream prog;
          prog << "processors P(" << opt.p << ")\n"
               << "template T(" << n << ")\n"
               << "distribute T onto P cyclic(" << opt.k << ")\n"
               << "array A(" << n << ") align with T(i)\n"
               << "array B(" << n << ") align with T(i)\n"
               << "explain B(" << opt.l << ":" << last << ":" << opt.s << ") = A("
               << opt.l << ":" << last << ":" << opt.s << ") * 2 + 1\n";
          try {
            dsl::Machine machine;
            machine.run_source(prog.str());
            std::cout << machine.output();
          } catch (const std::exception& e) {
            std::cerr << "amtool: (strategy listing unavailable: " << e.what() << ")\n";
          }
        }
      }
    }
    int rc = 2;
    if (cmd == "table") rc = cmd_table(dist, opt);
    else if (cmd == "basis") rc = cmd_basis(dist, opt);
    else if (cmd == "walk") rc = cmd_walk(dist, opt);
    else if (cmd == "owners") rc = cmd_owners(dist, opt);
    else if (cmd == "layout") rc = cmd_layout(dist, opt);
    else if (cmd == "stats") rc = cmd_stats(dist, opt);
    else if (cmd == "xfer") rc = cmd_xfer(opt, backend);
    else if (cmd == "simulate") rc = cmd_simulate(opt, sim_cli);
    else if (cmd == "serve") rc = cmd_serve(serve_cli);
    else {
      std::cerr << "amtool: unknown subcommand '" << cmd << "' (valid subcommands are: "
                << kSubcommands << ")\n";
      usage();
    }
    obs::emit_cli_outputs(obs_opt, std::cerr);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "amtool: " << e.what() << "\n";
    return 1;
  }
}
