// hpfc — run a mini-HPF DSL program from a file or stdin.
//
//   hpfc program.hpf          execute a file
//   hpfc -                    execute stdin
//   hpfc -t program.hpf       execute with the threaded SPMD executor
//   hpfc -v program.hpf       also print the lowering trace (one line per
//                             runtime operation each statement lowers to)
//   hpfc --metrics[=json]     print a telemetry report (counters, span
//                             totals, histograms) to stderr after the run
//   hpfc --trace=FILE.json    write a chrome://tracing trace of the run
//
// Prints the program's `print`/`explain` output; compile and runtime
// errors carry source line numbers.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cyclick/compiler/interp.hpp"
#include "cyclick/obs/report.hpp"

int main(int argc, char** argv) {
  using namespace cyclick;

  bool threaded = false;
  bool verbose = false;
  obs::CliOptions obs_opt;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-t") {
      threaded = true;
    } else if (arg == "-v") {
      verbose = true;
    } else if (obs::parse_cli_flag(arg, obs_opt)) {
      // handled
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "usage: hpfc [-t] [-v] [--metrics[=json]] [--trace=FILE.json]"
                   " <program.hpf | ->\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: hpfc [-t] [-v] [--metrics[=json]] [--trace=FILE.json]"
                 " <program.hpf | ->\n";
    return 2;
  }
  if (obs_opt.any()) obs::set_enabled(true);

  std::string source;
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "hpfc: cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  try {
    dsl::Machine machine(threaded ? SpmdExecutor::Mode::kThreads
                                  : SpmdExecutor::Mode::kSequential);
    if (verbose) machine.enable_trace();
    machine.run_source(source);
    std::cout << machine.output();
    if (verbose) std::cerr << "--- lowering trace ---\n" << machine.trace_log();
    obs::emit_cli_outputs(obs_opt, std::cerr);
    return 0;
  } catch (const dsl_error& e) {
    std::cerr << "hpfc: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "hpfc: internal error: " << e.what() << "\n";
    return 1;
  }
}
