// hpfc — run a mini-HPF DSL program from a file or stdin.
//
//   hpfc program.hpf          execute a file
//   hpfc -                    execute stdin
//   hpfc -t program.hpf       execute with the threaded SPMD executor
//   hpfc -v program.hpf       also print the lowering trace (one line per
//                             runtime operation each statement lowers to)
//   hpfc --backend=inproc|proc|sim  execution backend (default inproc, or
//                             CYCLICK_BACKEND): `proc` launches one OS
//                             process per rank and routes each rank's
//                             share of every section copy over the socket
//                             transport; `sim` replays every section copy
//                             over the discrete-event simulated mesh
//                             (CYCLICK_SIM_* knobs: topology, link costs,
//                             stragglers) — program output stays
//                             byte-identical to inproc, and --metrics /
//                             --trace additionally carry the predicted
//                             sim.* timings. An unknown backend name is
//                             rejected with the valid names listed.
//   hpfc --ranks=N            world size for --backend=proc (default 4,
//                             or CYCLICK_WORLD)
//   hpfc --tier=interp|bytecode  execution tier (default bytecode, or
//                             CYCLICK_TIER): bytecode compiles statements
//                             into fused register programs and falls back
//                             to the tree-walking interpreter per statement
//   hpfc --metrics[=json]     print a telemetry report (counters, span
//                             totals, histograms) to stderr after the run
//   hpfc --trace=FILE.json    write a chrome://tracing trace of the run
//
// Prints the program's `print`/`explain` output; compile and runtime
// errors carry source line numbers. Under --backend=proc only rank 0
// prints, and a failed rank (nonzero exit, fatal signal, or a
// TransportError out of a stuck channel) fails the whole run with a
// per-rank diagnostic.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cyclick/compiler/interp.hpp"
#include "cyclick/net/backend.hpp"
#include "cyclick/net/launcher.hpp"
#include "cyclick/net/socket_transport.hpp"
#include "cyclick/obs/report.hpp"
#include "cyclick/sim/sim_machine.hpp"

namespace {

using namespace cyclick;

[[noreturn]] void usage() {
  std::cerr << "usage: hpfc [-t] [-v] [--backend=inproc|proc|sim] [--ranks=N]"
               " [--tier=interp|bytecode] [--metrics[=json]] [--trace=FILE.json]"
               " <program.hpf | ->\n";
  std::exit(2);
}

int run_machine(const std::string& source, bool threaded, bool verbose, bool print_output,
                const obs::CliOptions& obs_opt, dsl::Tier tier) {
  try {
    dsl::Machine machine(threaded ? SpmdExecutor::Mode::kThreads
                                  : SpmdExecutor::Mode::kSequential);
    machine.set_tier(tier);
    if (verbose) machine.enable_trace();
    machine.run_source(source);
    if (print_output) {
      std::cout << machine.output();
      if (verbose) std::cerr << "--- lowering trace ---\n" << machine.trace_log();
      obs::emit_cli_outputs(obs_opt, std::cerr);
    }
    return 0;
  } catch (const dsl_error& e) {
    std::cerr << "hpfc: " << e.what() << "\n";
    return 1;
  } catch (const TransportError& e) {
    std::cerr << "hpfc: transport failure: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "hpfc: internal error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool threaded = false;
  bool verbose = false;
  obs::CliOptions obs_opt;
  net::Backend backend = net::Backend::kInProc;
  dsl::Tier tier = dsl::tier_from_env(dsl::Tier::kBytecode);
  i64 ranks = net::world_from_env(4);
  std::string path;
  try {
    backend = net::backend_from_env(net::Backend::kInProc);
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "-t") {
        threaded = true;
      } else if (arg == "-v") {
        verbose = true;
      } else if (arg.rfind("--ranks=", 0) == 0) {
        ranks = std::atoll(arg.c_str() + 8);
        if (ranks < 1) usage();
      } else if (net::parse_backend_flag(arg, backend)) {
        // handled
      } else if (dsl::parse_tier_flag(arg, tier)) {
        // handled (argv is re-execed verbatim for proc ranks, so the tier
        // choice propagates to every rank process)
      } else if (obs::parse_cli_flag(arg, obs_opt)) {
        // handled
      } else if (path.empty()) {
        path = arg;
      } else {
        usage();
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "hpfc: " << e.what() << "\n";
    return 2;
  }
  if (path.empty()) usage();
  if (obs_opt.any()) obs::set_enabled(true);

  const auto env_rank = net::rank_from_env();
  if (backend == net::Backend::kProc && !env_rank.has_value()) {
    // Launcher role: re-exec this binary once per rank; the children see
    // CYCLICK_RANK/CYCLICK_WORLD/CYCLICK_NET_DIR and take the branch below.
    // Reading from stdin cannot be replayed into the children, so require
    // a file path.
    if (path == "-") {
      std::cerr << "hpfc: --backend=proc cannot read the program from stdin\n";
      return 2;
    }
    try {
      net::ProcessGroup group(ranks);
      std::vector<std::string> args(argv, argv + argc);
      group.spawn_exec(args);
      const auto statuses = group.wait_all();
      const std::string failures = net::describe_failures(statuses);
      if (!failures.empty()) {
        std::cerr << "hpfc: rank processes failed:\n" << failures;
        return 1;
      }
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "hpfc: launcher error: " << e.what() << "\n";
      return 1;
    }
  }

  std::string source;
  if (path == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    source = ss.str();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "hpfc: cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  if (backend == net::Backend::kProc) {
    // Rank role: join the socket mesh, install the process context, and
    // run the whole program as this rank of the replicated machine.
    const i64 world = net::world_from_env(ranks);
    const std::string dir = net::net_dir_from_env();
    if (dir.empty()) {
      std::cerr << "hpfc: CYCLICK_NET_DIR unset (rank processes must be launched)\n";
      return 2;
    }
    try {
      const auto transport = net::SocketTransport::connect_mesh(*env_rank, world, dir);
      process_context() = ProcessContext{*env_rank, world, transport.get()};
      const int rc = run_machine(source, threaded, verbose, *env_rank == 0, obs_opt, tier);
      process_context() = ProcessContext{};
      return rc;
    } catch (const std::exception& e) {
      std::cerr << "hpfc: rank " << *env_rank << ": " << e.what() << "\n";
      return 1;
    }
  }

  if (backend == net::Backend::kSim) {
    // Simulated mesh: the program runs unchanged in this process, but every
    // section copy is replayed through the discrete-event SimTransport, so
    // --metrics / --trace carry the predicted sim.* timeline. Program
    // output is byte-identical to inproc; --ranks is ignored (the world
    // size comes from each plan's processor count).
    try {
      sim::SimMachine machine{sim::SimParams::from_env()};
      sim::SimMachine::Scope scope(machine);
      return run_machine(source, threaded, verbose, /*print_output=*/true, obs_opt, tier);
    } catch (const std::exception& e) {
      std::cerr << "hpfc: sim backend: " << e.what() << "\n";
      return 1;
    }
  }

  return run_machine(source, threaded, verbose, /*print_output=*/true, obs_opt, tier);
}
