# Tier-differential driver: run the same DSL program through hpfc under the
# interpreter tier and the bytecode tier and require identical stdout. Used
# with both execution backends; under --backend=proc this checks that the
# --tier flag propagates to the re-exec'ed rank processes.
#
#   cmake -DHPFC=<hpfc> -DPROGRAM=<file.hpf> [-DBACKEND_ARGS=--backend=proc;--ranks=4]
#         -P tier_diff.cmake
if(NOT DEFINED HPFC OR NOT DEFINED PROGRAM)
  message(FATAL_ERROR "tier_diff.cmake needs -DHPFC=... and -DPROGRAM=...")
endif()
if(NOT DEFINED BACKEND_ARGS)
  set(BACKEND_ARGS "")
endif()

foreach(tier interp bytecode)
  execute_process(
    COMMAND ${HPFC} ${BACKEND_ARGS} --tier=${tier} ${PROGRAM}
    OUTPUT_VARIABLE out_${tier}
    ERROR_VARIABLE err_${tier}
    RESULT_VARIABLE rc_${tier})
  if(NOT rc_${tier} EQUAL 0)
    message(FATAL_ERROR "hpfc --tier=${tier} failed (${rc_${tier}}): ${err_${tier}}")
  endif()
endforeach()

if(NOT out_interp STREQUAL out_bytecode)
  message(FATAL_ERROR "tier outputs differ for ${PROGRAM}\n"
                      "--- interp ---\n${out_interp}\n"
                      "--- bytecode ---\n${out_bytecode}")
endif()
message(STATUS "tiers agree for ${PROGRAM}")
