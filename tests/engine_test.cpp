// Tests for the AddressEngine dispatch layer: strategy classification,
// SectionPlan enumeration against the exhaustive oracle across every
// strategy class, pattern/offset-table parity with the direct Figure-5
// entry points, and the proc-independent table cache.
#include <gtest/gtest.h>

#include <random>
#include <set>
#include <vector>

#include "cyclick/baselines/hiranandani.hpp"
#include "cyclick/baselines/oracle.hpp"
#include "cyclick/core/engine.hpp"
#include "cyclick/core/lattice_addresser.hpp"

namespace cyclick {
namespace {

std::vector<Access> plan_sequence(const SectionPlan& plan) {
  std::vector<Access> out;
  plan.for_each([&](i64 g, i64 la) { out.push_back({g, la}); });
  return out;
}

TEST(AddressEngine, ClassifyCoversEveryCondition) {
  using S = AddressStrategy;
  // p == 1 wins over everything.
  EXPECT_EQ(AddressEngine::classify(BlockCyclic(1, 8), 1), S::kTrivialLocal);
  EXPECT_EQ(AddressEngine::classify(BlockCyclic(1, 8), 9), S::kTrivialLocal);
  EXPECT_EQ(AddressEngine::classify(BlockCyclic(1, 1), -3), S::kTrivialLocal);
  // |s| == 1: dense contiguous runs, either direction.
  EXPECT_EQ(AddressEngine::classify(BlockCyclic(4, 8), 1), S::kDenseRuns);
  EXPECT_EQ(AddressEngine::classify(BlockCyclic(4, 8), -1), S::kDenseRuns);
  // k == 1: pure cyclic.
  EXPECT_EQ(AddressEngine::classify(BlockCyclic(4, 1), 3), S::kPureCyclic);
  // gcd(|s|, pk) >= k: degenerate fixed step.
  EXPECT_EQ(AddressEngine::classify(BlockCyclic(4, 8), 16), S::kFixedStep);
  EXPECT_EQ(AddressEngine::classify(BlockCyclic(3, 4), 6), S::kFixedStep);
  // |s| mod pk < k: the ICS'94 special case.
  EXPECT_EQ(AddressEngine::classify(BlockCyclic(4, 8), 33), S::kHiranandani);
  EXPECT_EQ(AddressEngine::classify(BlockCyclic(4, 8), 34), S::kHiranandani);
  // Everything else: the general lattice.
  EXPECT_EQ(AddressEngine::classify(BlockCyclic(4, 8), 9), S::kGeneralLattice);
  EXPECT_EQ(AddressEngine::classify(BlockCyclic(4, 8), -9), S::kGeneralLattice);

  EXPECT_STREQ(address_strategy_name(S::kDenseRuns), "dense-runs");
  EXPECT_STREQ(address_strategy_name(S::kGeneralLattice), "general-lattice");
}

TEST(AddressEngine, PlanMatchesOracleAcrossEveryStrategy) {
  // A deterministic grid chosen to hit all six classes, both directions,
  // negative lower bounds, and empty shares.
  std::set<AddressStrategy> seen;
  for (i64 p : {1, 2, 4, 5}) {
    for (i64 k : {1, 3, 8}) {
      const BlockCyclic dist(p, k);
      for (i64 s : {1, -1, 2, 7, -9, 15, 16, 33, -33, 48, 64}) {
        for (i64 l : {-37, 0, 5}) {
          const i64 hi = l + 60 * (s > 0 ? s : -s);
          const RegularSection sec = s > 0 ? RegularSection{l, hi, s}
                                           : RegularSection{hi, l, s};
          seen.insert(AddressEngine::classify(dist, s));
          for (i64 m = 0; m < p; ++m) {
            const SectionPlan plan = AddressEngine::global().plan(dist, sec, m);
            const std::vector<Access> want = oracle_local_sequence(dist, sec, m);
            EXPECT_EQ(plan_sequence(plan), want)
                << p << " " << k << " " << s << " " << l << " " << m;
            EXPECT_EQ(plan.empty(), want.empty());
            if (!want.empty()) {
              EXPECT_EQ(plan.first_global(), want.front().global);
              EXPECT_EQ(plan.first_local(), want.front().local);
              EXPECT_EQ(plan.last_global(), want.back().global);
              EXPECT_EQ(plan.last_local(), want.back().local);
            }
          }
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), 6u) << "grid must exercise every strategy class";
}

TEST(AddressEngine, ForEachRunFlattensToAscendingOracle) {
  for (i64 p : {1, 3, 4}) {
    for (i64 k : {1, 4, 8}) {
      const BlockCyclic dist(p, k);
      for (i64 s : {1, -1, 2, 9, 16}) {
        const RegularSection sec = s > 0 ? RegularSection{3, 3 + 50 * s, s}
                                         : RegularSection{3 + 50 * (-s), 3, s};
        const RegularSection asc = sec.ascending();
        for (i64 m = 0; m < p; ++m) {
          const SectionPlan plan = AddressEngine::global().plan(dist, sec, m);
          std::vector<Access> got;
          const i64 n = plan.for_each_run([&](i64 g0, i64 l0, i64 len) {
            for (i64 i = 0; i < len; ++i) got.push_back({g0 + i, l0 + i});
          });
          EXPECT_EQ(n, static_cast<i64>(got.size()));
          EXPECT_EQ(got, oracle_local_sequence(dist, asc, m))
              << p << " " << k << " " << s << " " << m;
        }
      }
    }
  }
}

TEST(AddressEngine, PatternMatchesSignedAndHiranandani) {
  for (i64 p : {2, 4, 5}) {
    for (i64 k : {3, 8}) {
      const BlockCyclic dist(p, k);
      for (i64 s : {2, 7, 9, 33, -9, -33, 48}) {
        for (i64 m = 0; m < p; ++m) {
          const AccessPattern got = AddressEngine::global().pattern(dist, 4, s, m);
          EXPECT_EQ(got, compute_access_pattern_signed(dist, 4, s, m))
              << p << " " << k << " " << s << " " << m;
          if (s > 0 && hiranandani_applicable(dist, s)) {
            EXPECT_EQ(got, hiranandani_access_pattern(dist, 4, s, m));
          }
        }
      }
    }
  }
}

TEST(AddressEngine, OffsetTablesMatchPerProcConstruction) {
  for (i64 s : {2, 9, 15, 33, 48}) {
    const BlockCyclic dist(4, 8);
    const RegularSection sec{4, 4 + 100 * s, s};
    for (i64 m = 0; m < 4; ++m) {
      const SectionPlan plan = AddressEngine::global().plan(dist, sec, m);
      if (plan.empty()) continue;
      const OffsetTables got = plan.offset_tables();
      const OffsetTables want = compute_offset_tables(dist, sec.lower, sec.stride, m);
      ASSERT_EQ(got.start_offset, want.start_offset) << s << " " << m;
      // The per-proc tables populate only visited offsets; the full tables
      // must agree on exactly those slots.
      i64 q = want.start_offset;
      do {
        EXPECT_EQ(got.delta[static_cast<std::size_t>(q)],
                  want.delta[static_cast<std::size_t>(q)])
            << s << " " << m << " " << q;
        EXPECT_EQ(got.next_offset[static_cast<std::size_t>(q)],
                  want.next_offset[static_cast<std::size_t>(q)])
            << s << " " << m << " " << q;
        q = want.next_offset[static_cast<std::size_t>(q)];
      } while (q != want.start_offset);
    }
  }
}

TEST(AddressEngine, TableCacheSharesAcrossProcsAndStrideSign) {
  AddressEngine engine(8);
  const BlockCyclic dist(4, 8);
  const auto t0 = engine.tables(dist, 9);
  const auto t1 = engine.tables(dist, 9);
  EXPECT_EQ(t0.get(), t1.get()) << "same (p, k, s) must share one table object";
  const auto t2 = engine.tables(dist, -9);
  EXPECT_EQ(t0.get(), t2.get()) << "tables are keyed by |s|";
  const auto t3 = engine.tables(dist, 10);
  EXPECT_NE(t0.get(), t3.get());
  const auto st = engine.cache_stats();
  EXPECT_EQ(st.misses, 2);
  EXPECT_EQ(st.hits, 2);
  EXPECT_EQ(st.size, 2u);

  // p ranks planning the same section pay one table construction.
  AddressEngine per_rank(8);
  for (i64 m = 0; m < 4; ++m) (void)per_rank.plan(dist, {4, 300, 9}, m);
  EXPECT_EQ(per_rank.cache_stats().misses, 1);
  EXPECT_EQ(per_rank.cache_stats().hits, 3);
}

TEST(AddressEngine, TableCacheEvictsLeastRecentlyUsed) {
  AddressEngine engine(2);
  const BlockCyclic dist(4, 8);
  (void)engine.tables(dist, 9);
  (void)engine.tables(dist, 10);
  (void)engine.tables(dist, 9);   // refresh 9
  (void)engine.tables(dist, 11);  // evicts 10
  (void)engine.tables(dist, 9);   // still cached
  const auto st = engine.cache_stats();
  EXPECT_EQ(st.evictions, 1);
  EXPECT_EQ(st.size, 2u);
  EXPECT_EQ(st.hits, 2);
  EXPECT_EQ(st.misses, 3);
}

TEST(AddressEngine, RandomizedPlanPropertyGrid) {
  // Randomized (p, k, l, u, s) property check: SectionPlan::for_each must
  // reproduce the oracle byte for byte, and make_pattern must match
  // compute_access_pattern_signed, for every strategy class the draw hits.
  std::mt19937 rng(20250806);
  std::uniform_int_distribution<i64> pd(1, 8), kd(1, 12), sd(-40, 40), ld(-50, 50),
      span(0, 150);
  std::set<AddressStrategy> seen;
  for (int iter = 0; iter < 300; ++iter) {
    const i64 p = pd(rng), k = kd(rng);
    i64 s = sd(rng);
    if (s == 0) s = 41;
    const i64 l = ld(rng);
    const i64 hi = l + span(rng);
    const RegularSection sec = s > 0 ? RegularSection{l, hi, s} : RegularSection{hi, l, s};
    const BlockCyclic dist(p, k);
    seen.insert(AddressEngine::classify(dist, s));
    for (i64 m = 0; m < p; ++m) {
      const SectionPlan plan = AddressEngine::global().plan(dist, sec, m);
      ASSERT_EQ(plan_sequence(plan), oracle_local_sequence(dist, sec, m))
          << p << " " << k << " " << s << " " << l << " " << hi << " " << m;
      if (!sec.empty()) {
        ASSERT_EQ(plan.make_pattern(), compute_access_pattern_signed(dist, sec.lower, s, m))
            << p << " " << k << " " << s << " " << l << " " << m;
      }
    }
  }
  EXPECT_GE(seen.size(), 5u) << "random draw should hit most strategy classes";
}

}  // namespace
}  // namespace cyclick
