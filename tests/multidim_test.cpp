// Tests for processor grids and multidimensional mappings.
#include <gtest/gtest.h>
#include <map>
#include <utility>

#include "cyclick/hpf/multidim.hpp"

namespace cyclick {
namespace {

TEST(ProcessorGrid, RankLinearizationRoundTrips) {
  const ProcessorGrid grid({3, 4, 2});
  EXPECT_EQ(grid.rank_count(), 24);
  EXPECT_EQ(grid.dims(), 3u);
  for (i64 r = 0; r < grid.rank_count(); ++r) {
    const auto c = grid.coords_of(r);
    EXPECT_EQ(grid.rank_of(c), r);
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_GE(c[d], 0);
      EXPECT_LT(c[d], grid.extent(d));
    }
  }
}

TEST(ProcessorGrid, RowMajorOrder) {
  const ProcessorGrid grid({2, 3});
  EXPECT_EQ(grid.rank_of({0, 0}), 0);
  EXPECT_EQ(grid.rank_of({0, 2}), 2);
  EXPECT_EQ(grid.rank_of({1, 0}), 3);
  EXPECT_EQ(grid.rank_of({1, 2}), 5);
}

TEST(ProcessorGrid, RejectsBadInput) {
  EXPECT_THROW(ProcessorGrid({}), precondition_error);
  EXPECT_THROW(ProcessorGrid({2, 0}), precondition_error);
  const ProcessorGrid grid({2, 2});
  EXPECT_THROW((void)grid.rank_of({0}), precondition_error);
  EXPECT_THROW((void)grid.rank_of({0, 2}), precondition_error);
  EXPECT_THROW((void)grid.coords_of(4), precondition_error);
}

MultiDimMapping make_2d() {
  // 12x10 array, rows cyclic(2) over 3 procs, cols cyclic(3) over 2 procs.
  std::vector<DimMapping> dims;
  dims.emplace_back(12, AffineAlignment::identity(), BlockCyclic(3, 2));
  dims.emplace_back(10, AffineAlignment::identity(), BlockCyclic(2, 3));
  return {std::move(dims), ProcessorGrid({3, 2})};
}

TEST(MultiDimMapping, OwnerIsProductOfPerDimOwners) {
  const MultiDimMapping map = make_2d();
  for (i64 i = 0; i < 12; ++i)
    for (i64 j = 0; j < 10; ++j) {
      const i64 want = map.grid().rank_of({BlockCyclic(3, 2).owner(i),
                                           BlockCyclic(2, 3).owner(j)});
      EXPECT_EQ(map.owner_rank({i, j}), want) << i << "," << j;
    }
}

TEST(MultiDimMapping, LocalAddressesAreDistinctPerRank) {
  const MultiDimMapping map = make_2d();
  // Each (rank, local address) pair must identify exactly one element.
  std::map<std::pair<i64, i64>, i64> seen;
  for (i64 i = 0; i < 12; ++i)
    for (i64 j = 0; j < 10; ++j) {
      const i64 r = map.owner_rank({i, j});
      const i64 la = map.local_address({i, j});
      EXPECT_GE(la, 0);
      EXPECT_LT(la, map.local_capacity());
      const auto key = std::make_pair(r, la);
      EXPECT_EQ(seen.count(key), 0u) << "collision at " << i << "," << j;
      seen[key] = i * 10 + j;
    }
  EXPECT_EQ(static_cast<i64>(seen.size()), map.total_elements());
}

TEST(MultiDimMapping, AlignedDimension) {
  // 5-element dim aligned with 2*i+1 onto a 12-cell template dimension.
  std::vector<DimMapping> dims;
  dims.emplace_back(5, AffineAlignment{2, 1}, BlockCyclic(2, 3));
  const MultiDimMapping map{std::move(dims), ProcessorGrid({2})};
  for (i64 i = 0; i < 5; ++i)
    EXPECT_EQ(map.owner_rank({i}), BlockCyclic(2, 3).owner(2 * i + 1)) << i;
}

TEST(MultiDimMapping, RejectsMismatchedGrid) {
  std::vector<DimMapping> dims;
  dims.emplace_back(10, AffineAlignment::identity(), BlockCyclic(3, 2));
  EXPECT_THROW(MultiDimMapping(std::move(dims), ProcessorGrid({4})), precondition_error);
}

TEST(MultiDimMapping, RejectsNegativeCells) {
  std::vector<DimMapping> dims;
  dims.emplace_back(10, AffineAlignment{1, -5}, BlockCyclic(2, 2));
  EXPECT_THROW(MultiDimMapping(std::move(dims), ProcessorGrid({2})), precondition_error);
}

TEST(MultiDimMapping, SubscriptValidation) {
  const MultiDimMapping map = make_2d();
  EXPECT_THROW((void)map.owner_rank({0}), precondition_error);
  EXPECT_THROW((void)map.owner_rank({12, 0}), precondition_error);
  EXPECT_THROW((void)map.local_address({0, -1}), precondition_error);
}

}  // namespace
}  // namespace cyclick
