// End-to-end tests for multidimensional arrays in the mini-HPF DSL.
#include <gtest/gtest.h>

#include "cyclick/compiler/interp.hpp"

namespace cyclick::dsl {
namespace {

constexpr const char* kPrologue = R"(
processors G(2, 3)
template T(24, 30)
distribute T onto G cyclic(4) cyclic(5)
array M(24, 30) align with T(i, j)
array N(24, 30) align with T(i, j)
)";

TEST(Interp2D, FillAndGather) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + "M(0:23, 0:29) = 7\n");
  const auto image = machine.global_image("M");
  ASSERT_EQ(image.size(), 24u * 30u);
  for (const double v : image) EXPECT_EQ(v, 7.0);
}

TEST(Interp2D, StridedSubBoxFill) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
M(0:23, 0:29) = 1
M(2:22:4, 3:27:6) = 9
)");
  const auto image = machine.global_image("M");
  for (i64 i = 0; i < 24; ++i)
    for (i64 j = 0; j < 30; ++j) {
      const bool in_box = i >= 2 && (i - 2) % 4 == 0 && i <= 22 &&
                          j >= 3 && (j - 3) % 6 == 0 && j <= 27;
      EXPECT_EQ(image[static_cast<std::size_t>(i * 30 + j)], in_box ? 9.0 : 1.0)
          << i << "," << j;
    }
}

TEST(Interp2D, RegionCopyAndArithmetic) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
M(0:23, 0:29) = 2
N(0:23, 0:29) = 0
N(0:21, 0:27) = M(2:23, 2:29) * 3 + 1
)");
  const auto image = machine.global_image("N");
  for (i64 i = 0; i < 24; ++i)
    for (i64 j = 0; j < 30; ++j) {
      const double want = (i <= 21 && j <= 27) ? 7.0 : 0.0;
      EXPECT_EQ(image[static_cast<std::size_t>(i * 30 + j)], want) << i << "," << j;
    }
}

TEST(Interp2D, DiagonalShiftStencil) {
  // N(interior) = (M(north) + M(south) + M(west) + M(east)) / 4.
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
M(0:23, 0:29) = 0
M(0:23, 0:0) = 100
N(1:22, 1:28) = (M(0:21, 1:28) + M(2:23, 1:28) + M(1:22, 0:27) + M(1:22, 2:29)) / 4
)");
  const auto image = machine.global_image("N");
  for (i64 i = 1; i <= 22; ++i) {
    EXPECT_EQ(image[static_cast<std::size_t>(i * 30 + 1)], 25.0) << i;  // west neighbour hot
    EXPECT_EQ(image[static_cast<std::size_t>(i * 30 + 2)], 0.0) << i;
  }
}

TEST(Interp2D, ReductionsOverRegions) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
M(0:23, 0:29) = 1
M(0:0, 0:29) = 5
total = sum(M(0:23, 0:29))
top = sum(M(0:0, 0:29))
peak = max(M(0:23, 0:29))
low = min(M(5:10, 5:10))
)");
  EXPECT_EQ(machine.scalar("total"), 23 * 30 + 5 * 30);
  EXPECT_EQ(machine.scalar("top"), 150.0);
  EXPECT_EQ(machine.scalar("peak"), 5.0);
  EXPECT_EQ(machine.scalar("low"), 1.0);
}

TEST(Interp2D, PrintFormatsRows) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
M(0:23, 0:29) = 3
print M(0:1, 0:2)
)");
  EXPECT_EQ(machine.output(), "M(0:1:1, 0:2:1) =\n  3 3 3\n  3 3 3\n");
}

TEST(Interp2D, AlignedDimensionInDsl) {
  Machine machine;
  machine.run_source(R"(
processors G(2, 2)
template T(20, 50)
distribute T onto G cyclic(3) cyclic(7)
array A(20, 24) align with T(i, 2*j+1)
A(0:19, 0:23) = 4
A(1:19:2, 0:22:2) = 8
s = sum(A(0:19, 0:23))
)");
  const auto image = machine.global_image("A");
  double want = 0.0;
  for (i64 i = 0; i < 20; ++i)
    for (i64 j = 0; j < 24; ++j) {
      const bool marked = i % 2 == 1 && j % 2 == 0;
      const double v = marked ? 8.0 : 4.0;
      EXPECT_EQ(image[static_cast<std::size_t>(i * 24 + j)], v) << i << "," << j;
      want += v;
    }
  EXPECT_EQ(machine.scalar("s"), want);
}

TEST(Interp2D, MixedDimensionalityRejected) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + R"(
processors P(6)
template U(100)
distribute U onto P cyclic(4)
array V(100) align with U(i)
)");
  EXPECT_THROW((void)machine.run_source("M(0:23, 0:29) = V(0:99)\n"), dsl_error);
  EXPECT_THROW((void)machine.run_source("M(0:23) = 1\n"), dsl_error);
  EXPECT_THROW((void)machine.run_source("V(0:9, 0:9) = 1\n"), dsl_error);
  EXPECT_THROW((void)machine.run_source("redistribute M onto G cyclic(2)\n"), dsl_error);
  EXPECT_THROW((void)machine.run_source("N(0:23, 0:29) = cshift(M, 1)\n"), dsl_error);
}

TEST(Interp2D, ExplainDumpsPerDimensionPatterns) {
  Machine machine;
  machine.run_source(std::string(kPrologue) + "explain M(2:22:4, 3:27:6)\n");
  const std::string& out = machine.output();
  EXPECT_NE(out.find("2-D; per-dimension patterns"), std::string::npos) << out;
  EXPECT_NE(out.find("dim 0 (2:22:4) over cyclic(4) x 2"), std::string::npos) << out;
  EXPECT_NE(out.find("dim 1 (3:27:6) over cyclic(5) x 3"), std::string::npos) << out;
  // Every grid coordinate appears.
  EXPECT_NE(out.find("coord 0:"), std::string::npos) << out;
  EXPECT_NE(out.find("coord 2:"), std::string::npos) << out;
}

TEST(Interp2D, ShapeMismatchRejected) {
  Machine machine;
  EXPECT_THROW((void)machine.run_source(std::string(kPrologue) +
                                        "N(0:5, 0:5) = M(0:5, 0:6)\n"),
               dsl_error);
  EXPECT_THROW((void)machine.run_source(std::string(kPrologue) + "M(0:40, 0:29) = 1\n"),
               dsl_error);
}

TEST(Interp2D, DistributeClauseArityChecked) {
  Machine machine;
  EXPECT_THROW((void)machine.run_source(R"(
processors G(2, 3)
template T(24, 30)
distribute T onto G cyclic(4)
)"),
               dsl_error);
  EXPECT_THROW((void)machine.run_source(R"(
processors P(6)
template T(24, 30)
distribute T onto P cyclic(4) cyclic(5)
)"),
               dsl_error);
}

TEST(Interp2D, BlockAndCyclicMix) {
  Machine machine;
  machine.run_source(R"(
processors G(3, 2)
template T(27, 16)
distribute T onto G block cyclic
array A(27, 16) align with T(i, j)
A(0:26, 0:15) = 1
A(0:26:3, 0:15:5) = 6
s = sum(A(0:26, 0:15))
)");
  const double marked = 9 * 4;  // i in {0,3,..,24} (9), j in {0,5,10,15} (4)
  EXPECT_EQ(machine.scalar("s"), (27 * 16 - marked) + 6 * marked);
}

TEST(Interp2D, ThreadedMatchesSequential) {
  const std::string program = std::string(kPrologue) + R"(
M(0:23, 0:29) = 1
N(1:22, 1:28) = (M(0:21, 1:28) + M(2:23, 1:28)) / 2 + M(1:22, 1:28)
M(0:11, 0:14) = N(12:23, 15:29) * 2
)";
  Machine seq(SpmdExecutor::Mode::kSequential);
  seq.run_source(program);
  Machine thr(SpmdExecutor::Mode::kThreads);
  thr.run_source(program);
  EXPECT_EQ(seq.global_image("M"), thr.global_image("M"));
  EXPECT_EQ(seq.global_image("N"), thr.global_image("N"));
}

}  // namespace
}  // namespace cyclick::dsl
